// An aggregate "dashboard" maintained with summary-delta tables (the
// paper's aggregation extension): revenue per dimension key, rolled to
// points in time, entirely from the SPJ view's timestamped view delta --
// the underlying SPJ view's own materialization never needs to move.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "capture/log_capture.h"
#include "ivm/aggregate_view.h"
#include "ivm/rolling.h"
#include "ivm/view_manager.h"
#include "workload/schemas.h"

using namespace rollview;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::rollview::Status s_ = (expr);                               \
    if (!s_.ok()) {                                               \
      std::fprintf(stderr, "FATAL: %s\n", s_.ToString().c_str()); \
      return 1;                                                   \
    }                                                             \
  } while (false)

int main() {
  Db db;
  LogCapture capture(&db);
  ViewManager views(&db, &capture);

  StarSchemaConfig config;
  config.num_dims = 1;
  config.dim_rows = 8;
  config.fact_rows = 500;
  config.zipf_theta = 0.7;
  StarSchemaWorkload star =
      StarSchemaWorkload::Create(&db, config, 123).value();
  capture.CatchUp();

  View* view = views.CreateView("sales", star.ViewDef()).value();
  CHECK_OK(views.Materialize(view));

  // Dashboard: GROUP BY dim label (concat col 7), SUM(amount) (col 4).
  // fact schema: fkey(0) d0(1) amount(2); dim: dkey(3) attr(4) label(5).
  AggSpec spec;
  spec.group_columns = {5};
  spec.sum_columns = {2};
  auto dashboard = AggregateView::Create(view, spec).value();
  CHECK_OK(dashboard->InitializeFromBaseMv());

  // Sales keep landing in three bursts; remember the boundaries.
  UpdateStream sales(&db, star.FactStream(1, 9), 9);
  std::vector<Csn> checkpoints{dashboard->csn()};
  for (int burst = 0; burst < 3; ++burst) {
    CHECK_OK(sales.RunTransactions(40));
    capture.CatchUp();
    checkpoints.push_back(db.stable_csn());
  }

  RollingPropagator prop(&views, view, /*uniform_interval=*/50);
  CHECK_OK(prop.RunUntil(checkpoints.back()));

  for (size_t i = 1; i < checkpoints.size(); ++i) {
    CHECK_OK(dashboard->RollTo(checkpoints[i]));
    std::printf("--- dashboard as of csn %llu ---\n",
                static_cast<unsigned long long>(dashboard->csn()));
    auto groups = dashboard->Contents();
    std::vector<std::pair<Tuple, AggState>> sorted(groups.begin(),
                                                   groups.end());
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
      return a.second.sums[0] > b.second.sums[0];
    });
    for (const auto& [key, st] : sorted) {
      std::printf("  %-10s  sales=%5lld  revenue=%10.2f  avg=%6.2f\n",
                  key[0].AsString().c_str(), static_cast<long long>(st.count),
                  st.sums[0], st.avg(0));
    }
  }
  std::printf("(base SPJ view's own MV still at csn %llu -- the dashboard "
              "rolled independently)\n",
              static_cast<unsigned long long>(view->mv->csn()));
  return 0;
}
