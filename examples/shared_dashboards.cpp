// Shared propagation feeding several dashboards: one carrier join stream
// maintains (a) a filtered detail view, (b) a projected view, and (c) an
// aggregate view -- each rolled to its own point in time, all paying for a
// single set of propagation queries.

#include <cstdio>

#include "capture/log_capture.h"
#include "ivm/aggregate_view.h"
#include "ivm/apply.h"
#include "ivm/shared_propagate.h"
#include "ivm/view_manager.h"
#include "workload/schemas.h"

using namespace rollview;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::rollview::Status s_ = (expr);                               \
    if (!s_.ok()) {                                               \
      std::fprintf(stderr, "FATAL: %s\n", s_.ToString().c_str()); \
      return 1;                                                   \
    }                                                             \
  } while (false)

int main() {
  Db db;
  LogCapture capture(&db);
  ViewManager views(&db, &capture);

  StarSchemaConfig config;
  config.num_dims = 1;
  config.dim_rows = 12;
  config.fact_rows = 3000;
  StarSchemaWorkload star = StarSchemaWorkload::Create(&db, config, 5).value();
  capture.CatchUp();

  // Carrier: the raw fact |><| dim join. Concat layout:
  //   fkey(0) d0(1) amount(2) | dkey(3) attr(4) label(5)
  auto group =
      SharedViewGroup::Create(&views, "sales_join", star.ViewDef()).value();

  // Member 1: big-ticket sales only.
  SpjViewDef big = star.ViewDef();
  big.selection = Expr::Compare(Expr::CmpOp::kGe, Expr::Column(2),
                                Expr::Literal(Value(75.0)));
  View* big_view = group->AddMember("big_sales", big).value();

  // Member 2: a narrow (label, amount) feed.
  SpjViewDef narrow = star.ViewDef();
  narrow.projection = {5, 2};
  View* feed_view = group->AddMember("label_amount_feed", narrow).value();

  CHECK_OK(group->MaterializeAll());

  // An aggregate dashboard on top of the *narrow* member's view delta:
  // revenue per label.
  AggSpec spec;
  spec.group_columns = {0};  // label (in the projected schema)
  spec.sum_columns = {1};    // amount
  auto revenue = AggregateView::Create(feed_view, spec).value();
  CHECK_OK(revenue->InitializeFromBaseMv());

  // Load: 120 fact transactions.
  UpdateStream sales(&db, star.FactStream(1, 8), 8);
  CHECK_OK(sales.RunTransactions(120));
  capture.CatchUp();

  // ONE propagation stream settles everything.
  CHECK_OK(group->RunUntil(capture.high_water_mark()));
  std::printf(
      "carrier propagated: %llu queries for %zu member views "
      "(%llu carrier rows -> %llu member rows)\n",
      static_cast<unsigned long long>(
          group->propagator()->runner()->stats().queries),
      group->members().size(),
      static_cast<unsigned long long>(
          group->stats().carrier_rows_distributed),
      static_cast<unsigned long long>(group->stats().member_rows_emitted));

  // Each consumer rolls independently.
  Csn hwm = group->high_water_mark();
  Applier big_applier(&views, big_view);
  CHECK_OK(big_applier.RollTo(hwm));
  Applier feed_applier(&views, feed_view);
  CHECK_OK(feed_applier.RollTo(hwm - (hwm - feed_view->mv->csn()) / 2));
  CHECK_OK(revenue->RollTo(hwm));

  std::printf("big_sales @csn %llu: %zu tuples\n",
              static_cast<unsigned long long>(big_view->mv->csn()),
              big_view->mv->cardinality());
  std::printf("label_amount_feed @csn %llu (deliberately lagging): %zu "
              "tuples\n",
              static_cast<unsigned long long>(feed_view->mv->csn()),
              feed_view->mv->cardinality());
  std::printf("revenue dashboard @csn %llu: %zu labels\n",
              static_cast<unsigned long long>(revenue->csn()),
              revenue->num_groups());
  return 0;
}
