// Crash recovery: run view maintenance with durable checkpoints and
// WAL-logged propagation cursors, "crash" with a torn WAL tail, and bring
// the whole stack back with CrashAndRecover. The view is restored from its
// latest complete checkpoint plus the surviving WAL suffix -- no
// re-materialization, no re-propagation of strips the old engine already
// logged cursors for -- and the resumed MaintenanceService carries on from
// the recovered frontier.

#include <cstdio>

#include "harness/crash_harness.h"
#include "ivm/maintenance.h"
#include "workload/schemas.h"

using namespace rollview;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::rollview::Status s_ = (expr);                               \
    if (!s_.ok()) {                                               \
      std::fprintf(stderr, "FATAL: %s\n", s_.ToString().c_str()); \
      return 1;                                                   \
    }                                                             \
  } while (false)

int main() {
  // ---- Life before the crash -------------------------------------------
  std::string encoded_wal;
  SpjViewDef view_def;
  Csn old_hwm = 0;
  size_t old_cardinality = 0;
  {
    Db db;
    CaptureOptions copts;
    copts.truncate_wal = false;  // keep the log: it IS the durable state
    LogCapture capture(&db, copts);
    ViewManager views(&db, &capture);
    auto workload = TwoTableWorkload::Create(&db, 100, 60, 8, 2026).value();
    view_def = workload.ViewDef();
    capture.CatchUp();

    // Materialize writes the initial durable checkpoint; the maintenance
    // service then checkpoints every 4 propagation steps and logs a cursor
    // record for every step, so the log always holds a recent snapshot plus
    // a replayable suffix.
    View* view = views.CreateView("V", view_def).value();
    CHECK_OK(views.Materialize(view));
    MaintenanceService::Options mopts;
    mopts.checkpoint_every_steps = 4;
    mopts.apply_continuously = true;
    MaintenanceService service(&views, view, mopts);

    UpdateStream updates(&db, workload.RStream(1, 5), 5);
    for (int round = 0; round < 4; ++round) {
      CHECK_OK(updates.RunTransactions(8));
      capture.CatchUp();
      CHECK_OK(service.Drain(db.stable_csn()));
    }
    old_hwm = view->high_water_mark();
    old_cardinality = view->mv->cardinality();

    encoded_wal = SnapshotEncodedWal(&db);
    std::printf("maintained view to hwm %llu (%zu tuples); WAL is %zu "
                "bytes\n",
                static_cast<unsigned long long>(old_hwm), old_cardinality,
                encoded_wal.size());
  }  // <- crash: the first engine is gone

  // The machine died mid-write: the last 2% of the log is a torn tail.
  CrashSpec spec;
  spec.keep_bytes = encoded_wal.size() * 98 / 100;
  std::string damaged = ApplyCrashSpec(encoded_wal, spec);

  // ---- Recovery ---------------------------------------------------------
  // CrashAndRecover decodes the longest valid prefix, replays it into a
  // fresh engine, re-registers the view definition by name (expression
  // trees live in code, not the log), and runs ViewManager::Recover:
  // latest checkpoint + WAL suffix, cursors -> high-water mark, committed
  // rows of steps without a durable cursor discarded (idempotent resume).
  RecoveredSystem sys =
      CrashAndRecover(damaged, {{"V", view_def}}).value();
  View* view = sys.views->Find("V");
  if (view == nullptr || sys.report.views_recovered != 1) {
    std::fprintf(stderr, "FATAL: view did not recover\n");
    return 1;
  }
  std::printf("recovered from torn tail: %zu records replayed, %zu "
              "checkpoints seen, %zu cursor records, %zu mid-flight rows "
              "discarded\n",
              sys.records_recovered, sys.report.checkpoints_seen,
              sys.report.cursor_records, sys.report.rows_discarded);
  std::printf("view restored at hwm %llu (%zu tuples) without "
              "re-materializing\n",
              static_cast<unsigned long long>(view->high_water_mark()),
              view->mv->cardinality());

  // Maintenance picks up from the recovered cursors: new updates flow and
  // only strips past the durable frontier are propagated.
  sys.capture->Start();
  TwoTableWorkload workload;  // reattach the generator to the new engine
  workload.r = sys.db->FindTable("R").value();
  workload.s = sys.db->FindTable("S").value();
  workload.join_domain = 8;
  UpdateStream more(sys.db.get(), workload.RStream(2, 6), 6);
  CHECK_OK(more.RunTransactions(15));

  MaintenanceService service(sys.views.get(), view);
  service.Start();
  CHECK_OK(service.Drain(sys.db->stable_csn()));
  CHECK_OK(service.Stop());
  sys.capture->Stop();

  std::printf("view maintained across the crash: %zu tuples at csn %llu "
              "(%llu propagation steps after recovery)\n",
              view->mv->cardinality(),
              static_cast<unsigned long long>(view->mv->csn()),
              static_cast<unsigned long long>(
                  service.propagate_driver_stats().steps));
  return 0;
}
