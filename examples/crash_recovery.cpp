// Crash recovery: persist the WAL, "crash" with a transaction in flight,
// rebuild the engine by log replay, and carry on with full view
// maintenance -- delta tables, the unit-of-work table, and the view itself
// are all reconstructed from the log (the view delta is derived data).

#include <cstdio>

#include "capture/log_capture.h"
#include "ivm/maintenance.h"
#include "ivm/view_manager.h"
#include "storage/wal_codec.h"
#include "workload/schemas.h"

using namespace rollview;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::rollview::Status s_ = (expr);                               \
    if (!s_.ok()) {                                               \
      std::fprintf(stderr, "FATAL: %s\n", s_.ToString().c_str()); \
      return 1;                                                   \
    }                                                             \
  } while (false)

int main() {
  const std::string wal_path = "/tmp/rollview_example.wal";

  // ---- Life before the crash -------------------------------------------
  Csn crash_point = 0;
  {
    Db db;
    CaptureOptions copts;
    copts.truncate_wal = false;  // keep the log: it IS the durable state
    LogCapture capture(&db, copts);
    auto workload =
        TwoTableWorkload::Create(&db, 100, 60, 8, 2026).value();
    capture.CatchUp();

    UpdateStream updates(&db, workload.RStream(1, 5), 5);
    CHECK_OK(updates.RunTransactions(25));
    crash_point = db.stable_csn();

    // A transaction is mid-flight when the machine dies...
    auto doomed = db.Begin();
    CHECK_OK(db.Insert(doomed.get(), workload.r,
                       {Value(int64_t{666}), Value(int64_t{0}),
                        Value(int64_t{0})}));
    // (never committed)

    std::vector<WalRecord> wal;
    db.wal()->ReadFrom(0, 1u << 24, &wal);
    CHECK_OK(WriteWalFile(wal_path, wal));
    std::printf("persisted %zu WAL records at stable csn %llu "
                "(one txn in flight)\n",
                wal.size(), static_cast<unsigned long long>(crash_point));
    CHECK_OK(db.Abort(doomed.get()));
  }  // <- crash: the first engine is gone

  // ---- Recovery ---------------------------------------------------------
  auto records = ReadWalFile(wal_path).value();
  auto recovered = Db::Recover(records).value();
  std::printf("recovered engine at stable csn %llu (in-flight txn "
              "discarded: %s)\n",
              static_cast<unsigned long long>(recovered->stable_csn()),
              recovered->stable_csn() == crash_point ? "yes" : "NO");

  // Capture re-reads the replayed log; views are derived data, rebuilt by
  // materializing and propagating as usual.
  LogCapture capture(recovered.get());
  capture.Start();
  ViewManager views(recovered.get(), &capture);
  TableId r = recovered->FindTable("R").value();
  TableId s = recovered->FindTable("S").value();
  View* view = views.CreateView("V", ChainJoin({r, s}, {{1, 1}})).value();
  CHECK_OK(views.Materialize(view));

  TwoTableWorkload workload;  // reattach the generator to the new engine
  workload.r = r;
  workload.s = s;
  workload.join_domain = 8;
  UpdateStream more(recovered.get(), workload.RStream(2, 6), 6);
  CHECK_OK(more.RunTransactions(15));

  MaintenanceService service(&views, view);
  service.Start();
  CHECK_OK(service.Drain(recovered->stable_csn()));
  CHECK_OK(service.Stop());
  capture.Stop();

  std::printf("view maintained across the crash: %zu tuples at csn %llu "
              "(%llu propagation queries)\n",
              view->mv->cardinality(),
              static_cast<unsigned long long>(view->mv->csn()),
              static_cast<unsigned long long>(
                  service.runner_stats()->queries));
  std::remove(wal_path.c_str());
  return 0;
}
