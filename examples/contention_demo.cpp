// The long-transaction problem, live: refresh a materialized view while
// updaters hammer the base tables, first with the classic synchronous
// atomic refresh (Eq. 1 in one big S-locking transaction), then with
// asynchronous rolling propagation. Compare updater latencies and lock
// waits. (bench_contention measures this rigorously; this example makes it
// visible in a few seconds.)

#include <cstdio>

#include "capture/log_capture.h"
#include "harness/worker.h"
#include "ivm/apply.h"
#include "ivm/baselines.h"
#include "ivm/rolling.h"
#include "ivm/view_manager.h"
#include "workload/schemas.h"

using namespace rollview;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::rollview::Status s_ = (expr);                               \
    if (!s_.ok()) {                                               \
      std::fprintf(stderr, "FATAL: %s\n", s_.ToString().c_str()); \
      return 1;                                                   \
    }                                                             \
  } while (false)

namespace {

struct Run {
  uint64_t updater_txns = 0;
  uint64_t p99_micros = 0;
  uint64_t max_micros = 0;
  uint64_t lock_wait_millis = 0;
};

}  // namespace

int main() {
  for (const char* mode : {"sync-eq1", "rolling"}) {
    Db db;
    LogCapture capture(&db);
    ViewManager views(&db, &capture);
    auto workload =
        TwoTableWorkload::Create(&db, /*r_rows=*/20000, /*s_rows=*/5000,
                                 /*join_domain=*/64, /*seed=*/1)
            .value();
    capture.CatchUp();
    View* view = views.CreateView("V", workload.ViewDef()).value();
    CHECK_OK(views.Materialize(view));
    capture.Start();
    db.lock_manager()->ResetStats();

    // Two updaters at a fixed offered load.
    UpdateStream u1(&db, workload.RStream(1, 11), 11);
    UpdateStream u2(&db, workload.SStream(2, 12), 12);
    Worker::Options paced;
    paced.target_ops_per_sec = 300;
    Worker w1([&] { return u1.RunTransaction(); }, paced);
    Worker w2([&] { return u2.RunTransaction(); }, paced);
    w1.Start();
    w2.Start();

    // Let updates accumulate, then maintain the view while they continue.
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    if (std::string(mode) == "sync-eq1") {
      SyncRefresher refresher(&views, view);
      for (int i = 0; i < 3; ++i) {
        CHECK_OK(refresher.RefreshEq1().status());
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
      }
    } else {
      RollingPropagator prop(&views, view, /*uniform_interval=*/200);
      Applier applier(&views, view);
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(1200);
      while (std::chrono::steady_clock::now() < deadline) {
        Result<bool> r = prop.Step();
        CHECK_OK(r.status());
        if (view->high_water_mark() > view->mv->csn()) {
          CHECK_OK(applier.RollTo(view->high_water_mark()));
        }
        if (!r.value()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    }

    CHECK_OK(w1.Join());
    CHECK_OK(w2.Join());
    capture.Stop();

    Run run;
    run.updater_txns = u1.stats().txns + u2.stats().txns;
    run.p99_micros =
        std::max(w1.latency().Percentile(0.99), w2.latency().Percentile(0.99)) /
        1000;
    run.max_micros =
        std::max(w1.latency().max_nanos(), w2.latency().max_nanos()) / 1000;
    run.lock_wait_millis = db.lock_manager()->GetStats().wait_nanos / 1000000;

    std::printf(
        "%-9s  updater_txns=%6llu  updater_p99=%7llu us  max=%8llu us  "
        "total_lock_wait=%llu ms\n",
        mode, static_cast<unsigned long long>(run.updater_txns),
        static_cast<unsigned long long>(run.p99_micros),
        static_cast<unsigned long long>(run.max_micros),
        static_cast<unsigned long long>(run.lock_wait_millis));
  }
  std::printf(
      "\nThe synchronous refresh S-locks both base tables for the whole\n"
      "refresh, so updater tail latency tracks the refresh duration;\n"
      "rolling propagation's small transactions keep the tail flat.\n");
  return 0;
}
