// rollview_inspect: drive a live maintenance harness and inspect it through
// the unified telemetry layer.
//
// Spins up the standard two-table join workload, a MaintenanceService with
// step tracing enabled, and paced updaters; scrapes the metrics registry
// mid-flight and at quiescence; then prints the operator report -- per-view
// staleness digest, every registered metric, and the span trees of the last
// N propagation steps.
//
// Build & run:  ./build/examples/rollview_inspect [options]
//
//   --traces N   how many recent step traces to print (default 8)
//   --prom       also print the raw Prometheus exposition text
//   --json       print machine formats instead (metrics JSON + trace JSON)
//   --millis M   how long to run the update storm (default 400)
//   --wal-dir D  back the WAL with a segmented on-disk log in (empty or
//                nonexistent) directory D: commits group-commit through the
//                fsync flusher, a durable checkpoint publishes at
//                quiescence, and the scrape gains the durability metrics
//                (rollview_wal_segments, rollview_wal_bytes{state},
//                group-commit batch/sync histograms, storage fault counters)
//   --watch      live dashboard mode: instead of the one-shot report,
//                redraw a per-view freshness frame (e2e percentiles, stage
//                breakdown, staleness, SLO burn, driver counters) every
//                --interval ms for the duration of the storm
//   --interval I watch refresh period in ms (default 100)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "capture/log_capture.h"
#include "harness/worker.h"
#include "ivm/checkpoint.h"
#include "ivm/maintenance.h"
#include "ivm/view_manager.h"
#include "obs/freshness.h"
#include "obs/inspect.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "storage/wal_segment.h"
#include "workload/schemas.h"

using namespace rollview;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::rollview::Status s_ = (expr);                               \
    if (!s_.ok()) {                                               \
      std::fprintf(stderr, "FATAL: %s\n", s_.ToString().c_str()); \
      return 1;                                                   \
    }                                                             \
  } while (false)

int main(int argc, char** argv) {
  size_t traces = 8;
  bool prom = false;
  bool json = false;
  bool watch = false;
  int run_millis = 400;
  int interval_millis = 100;
  std::string wal_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--traces") == 0 && i + 1 < argc) {
      traces = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--prom") == 0) {
      prom = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      watch = true;
    } else if (std::strcmp(argv[i], "--millis") == 0 && i + 1 < argc) {
      run_millis = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      interval_millis = std::atoi(argv[++i]);
      if (interval_millis < 1) interval_millis = 1;
    } else if (std::strcmp(argv[i], "--wal-dir") == 0 && i + 1 < argc) {
      wal_dir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: rollview_inspect [--traces N] [--prom] [--json] "
                   "[--watch] [--interval I] [--millis M] [--wal-dir D]\n");
      return 2;
    }
  }

  // 1. Engine + capture + the standard two-table join workload. With
  //    --wal-dir the log is file-backed from the first commit; a directory
  //    that already holds a log is refused (recover it instead).
  //    The registry every subsystem reports into is declared FIRST: the
  //    engine's recorders (the WAL flusher's group-commit histograms) hold
  //    raw pointers into it, so it must outlive the Db -- declaring it
  //    after would free those histograms while the flusher still runs.
  obs::MetricsRegistry registry;
  // The freshness tracker follows the same lifetime rule: the Db's commit
  // path and the WAL flusher stamp into it, so it must outlive the Db.
  obs::FreshnessTracker freshness;
  DbOptions dbopts;
  dbopts.wal_dir = wal_dir;
  Db db(dbopts);
  db.SetFreshnessTracker(&freshness);
  if (!wal_dir.empty()) {
    Status writable = db.wal()->CheckWritable();
    if (!writable.ok()) {
      std::fprintf(stderr,
                   "FATAL: cannot open WAL dir %s: %s\n(an existing log must "
                   "be recovered, not overwritten)\n",
                   wal_dir.c_str(), writable.ToString().c_str());
      return 1;
    }
  }
  LogCapture capture(&db);
  ViewManager views(&db, &capture);
  Result<TwoTableWorkload> wl = TwoTableWorkload::Create(
      &db, /*r_rows=*/4000, /*s_rows=*/1000, /*join_domain=*/128, /*seed=*/5);
  CHECK_OK(wl.status());
  TwoTableWorkload workload = std::move(wl).value();
  capture.CatchUp();
  Result<View*> vr = views.CreateView("V", workload.ViewDef());
  CHECK_OK(vr.status());
  View* view = vr.value();
  CHECK_OK(views.Materialize(view));
  capture.Start();

  // 2. A maintenance service with the step-trace journal enabled, wired
  //    into the registry (declared above the engine for lifetime).
  MaintenanceService::Options mopts;
  mopts.interval_mode = MaintenanceService::Options::IntervalMode::kAdaptive;
  mopts.apply_continuously = true;
  mopts.trace_journal_capacity = 128;
  mopts.freshness = &freshness;
  // A 25ms commit-to-visibility SLO with a 10% error budget over a 1s
  // window: generous enough that the storm normally stays green, tight
  // enough that a stall shows up as burn (and, past 1.0, sheds).
  mopts.freshness_slo.target_staleness_nanos = 25ull * 1000 * 1000;
  MaintenanceService service(&views, view, mopts);
  service.RegisterMetrics(&registry);
  db.lock_manager()->RegisterMetrics(&registry, &registry);
  db.wal()->RegisterMetrics(&registry, &registry);
  if (db.build_cache() != nullptr) {
    db.build_cache()->RegisterMetrics(&registry, &registry);
  }
  // Durable backend: let the group-commit flusher emit kWalFlush root
  // traces into the service's journal -- the cross-thread causality link
  // from an fsynced batch's CSN range to the propagation steps that later
  // pick those commits up. Detached below before the service (which owns
  // the journal) is destroyed.
  if (db.wal()->durable() && service.trace_journal() != nullptr) {
    db.wal()->store()->AttachTraceJournal(service.trace_journal());
  }
  service.Start();

  // 3. Paced updaters supply a live delta stream while we scrape.
  std::vector<std::unique_ptr<UpdateStream>> streams;
  std::vector<std::unique_ptr<Worker>> updaters;
  for (int i = 0; i < 2; ++i) {
    streams.push_back(std::make_unique<UpdateStream>(
        &db,
        i == 0 ? workload.RStream(i + 1, 300 + i)
               : workload.SStream(i + 1, 300 + i),
        300 + i));
    UpdateStream* s = streams.back().get();
    Worker::Options opts;
    opts.name = "updater";
    opts.target_ops_per_sec = 500.0;
    updaters.push_back(
        std::make_unique<Worker>([s] { return s->RunTransaction(); }, opts));
  }
  for (auto& u : updaters) u->Start();

  // 4. A mid-flight scrape: this is what a monitoring agent would see
  //    while the storm is still running. In --watch mode the wait is spent
  //    redrawing the live dashboard instead of sleeping through it.
  obs::MetricsSnapshot live;
  if (watch) {
    const int frames = run_millis / interval_millis > 0
                           ? run_millis / interval_millis
                           : 1;
    for (int f = 0; f < frames; ++f) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_millis));
      live = registry.Snapshot();
      // ANSI clear + home, then the frame; a dumb pipe just sees frames
      // separated by the escape sequence.
      std::printf("\x1b[2J\x1b[H%s",
                  obs::RenderWatchFrame(live, static_cast<uint64_t>(f + 1))
                      .c_str());
      std::fflush(stdout);
    }
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(run_millis / 2));
    live = registry.Snapshot();
    std::this_thread::sleep_for(std::chrono::milliseconds(run_millis / 2));
  }
  for (auto& u : updaters) CHECK_OK(u->Join());
  CHECK_OK(service.Drain(db.stable_csn()));

  // 4b. Durable backend: publish a checkpoint at quiescence so segment
  //     retention advances and the checkpoint/prune counters register in
  //     the final scrape, exactly like a production maintenance cycle.
  if (db.wal()->durable()) {
    Result<DurableCheckpointReport> ckpt =
        PublishDurableCheckpoint(&db, &views);
    CHECK_OK(ckpt.status());
    WalSegmentStore::BytesByState bytes = db.wal()->store()->bytes_by_state();
    std::printf(
        "=== durable wal (%s) ===\ncheckpoint covers csn %llu (%llu image "
        "records); segments: %llu bytes active, %llu sealed, %llu "
        "retained\n\n",
        wal_dir.c_str(),
        static_cast<unsigned long long>(ckpt.value().covered_csn),
        static_cast<unsigned long long>(ckpt.value().image_records),
        static_cast<unsigned long long>(bytes.active),
        static_cast<unsigned long long>(bytes.sealed),
        static_cast<unsigned long long>(bytes.retained));
  }

  // 5. The quiescent scrape plus the retained step traces.
  obs::MetricsSnapshot final_snap = registry.Snapshot();
  const obs::TraceJournal* journal = service.trace_journal();

  if (json) {
    std::printf("%s\n", final_snap.ToJson().c_str());
    if (journal != nullptr) {
      std::printf("%s\n", journal->ToJson(traces).c_str());
    }
  } else if (watch) {
    // Close the dashboard with a quiescent frame; the storm frames already
    // scrolled by above.
    std::printf("\n=== quiescent ===\n%s",
                obs::RenderWatchFrame(final_snap, 0).c_str());
  } else {
    std::printf("=== mid-flight (storm still running) ===\n%s\n",
                obs::RenderViewDigest(live).c_str());
    std::printf("=== quiescent ===\n%s",
                obs::RenderInspectReport(final_snap, journal, traces).c_str());
    if (prom) {
      std::printf("\n=== prometheus exposition ===\n%s",
                  final_snap.ToPrometheusText().c_str());
    }
  }

  // The WAL flusher's journal pointer must not outlive the service that
  // owns the journal.
  if (db.wal()->durable()) {
    db.wal()->store()->AttachTraceJournal(nullptr);
  }
  CHECK_OK(service.Stop());
  capture.Stop();
  return 0;
}
