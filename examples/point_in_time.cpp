// Point-in-time refresh -- the paper's motivating scenario (Sec. 1):
//
//   "It is not possible to decide at 8:00 pm to refresh a materialized view
//    from its 4:00 pm state to its 5:00 pm state, because at 8:00 pm the
//    underlying tables may no longer be as they were at 5:00 pm."
//
// With rolling propagation it IS possible: the view delta is timestamped,
// so the apply process selects exactly the 4pm-to-5pm window hours later,
// while the base tables have long since moved on.
//
// A fake wall clock makes the story deterministic.

#include <cstdio>

#include "capture/log_capture.h"
#include "ivm/apply.h"
#include "ivm/rolling.h"
#include "ivm/view_manager.h"
#include "workload/schemas.h"

using namespace rollview;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::rollview::Status s_ = (expr);                               \
    if (!s_.ok()) {                                               \
      std::fprintf(stderr, "FATAL: %s\n", s_.ToString().c_str()); \
      return 1;                                                   \
    }                                                             \
  } while (false)

int main() {
  Db db;
  auto midnight = std::chrono::system_clock::now();
  WallTime fake_now = midnight;
  db.SetWallClock([&fake_now] { return fake_now; });
  auto at_hour = [&](int h) { return midnight + std::chrono::hours(h); };

  LogCapture capture(&db);
  ViewManager views(&db, &capture);

  auto workload =
      TwoTableWorkload::Create(&db, /*r_rows=*/200, /*s_rows=*/100,
                               /*join_domain=*/16, /*seed=*/2026)
          .value();
  capture.CatchUp();
  View* view = views.CreateView("V", workload.ViewDef()).value();
  CHECK_OK(views.Materialize(view));
  std::printf("[00:00] view materialized: %zu tuples\n",
              view->mv->cardinality());

  // Business hours: three batches of updates at 2pm, 4:30pm, and 6pm.
  UpdateStream updates(&db, workload.RStream(1, 99), 99);
  for (int hour : {14, 16, 18}) {
    fake_now = at_hour(hour) + std::chrono::minutes(hour == 16 ? 30 : 0);
    CHECK_OK(updates.RunTransactions(20));
    std::printf("[%02d:%02d] committed a batch of 20 update transactions\n",
                hour, hour == 16 ? 30 : 0);
  }
  capture.CatchUp();

  // 8:00 pm: load is light; NOW run the deferred propagation.
  fake_now = at_hour(20);
  RollingPropagator propagator(&views, view, /*uniform_interval=*/10);
  CHECK_OK(propagator.RunUntil(db.stable_csn()));
  std::printf(
      "[20:00] propagation caught up asynchronously; view delta has %zu "
      "timestamped rows\n",
      view->view_delta->size());

  // ...and refresh the view to its 4:00 pm state (before the 4:30 batch),
  // then to 5:00 pm, then to "now" -- each a transaction-consistent state.
  Applier applier(&views, view);
  for (int target_hour : {16, 17, 20}) {
    Result<Csn> rolled = applier.RollToWallTime(at_hour(target_hour));
    if (!rolled.ok()) {
      std::fprintf(stderr, "FATAL: %s\n", rolled.status().ToString().c_str());
      return 1;
    }
    std::printf("[20:00] view refreshed to its %02d:00 state (csn %llu): "
                "%zu tuples, multiset size %lld\n",
                target_hour,
                static_cast<unsigned long long>(rolled.value()),
                view->mv->cardinality(),
                static_cast<long long>(view->mv->TotalCount()));
  }
  return 0;
}
