// Quickstart: create base tables, define a join view, materialize it, run
// some updates, propagate the view delta asynchronously with rolling join
// propagation, and roll the materialized view forward.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "capture/log_capture.h"
#include "ivm/apply.h"
#include "ivm/rolling.h"
#include "ivm/view_manager.h"
#include "storage/db.h"

using namespace rollview;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::rollview::Status s_ = (expr);                               \
    if (!s_.ok()) {                                               \
      std::fprintf(stderr, "FATAL: %s\n", s_.ToString().c_str()); \
      return 1;                                                   \
    }                                                             \
  } while (false)

int main() {
  // 1. An embedded engine plus the log-capture process (the DPropR
  //    analogue) that populates per-table delta tables from the WAL.
  Db db;
  LogCapture capture(&db);
  capture.Start();
  ViewManager views(&db, &capture);

  // 2. Two base tables: orders(order_id, cust_id, amount) and
  //    customers(cust_id, name). Hash indexes speed up propagation probes.
  TableOptions opts;
  opts.indexed_columns = {0, 1};
  TableId orders =
      db.CreateTable("orders", Schema({Column{"order_id", ValueType::kInt64},
                                       Column{"cust_id", ValueType::kInt64},
                                       Column{"amount", ValueType::kDouble}}),
                     opts)
          .value();
  TableOptions copts;
  copts.indexed_columns = {0};
  TableId customers =
      db.CreateTable("customers",
                     Schema({Column{"cust_id", ValueType::kInt64},
                             Column{"name", ValueType::kString}}),
                     copts)
          .value();

  {
    auto txn = db.Begin();
    CHECK_OK(db.Insert(txn.get(), customers, {Value(int64_t{1}), Value("ada")}));
    CHECK_OK(db.Insert(txn.get(), customers, {Value(int64_t{2}), Value("bob")}));
    CHECK_OK(db.Insert(txn.get(), orders,
                       {Value(int64_t{100}), Value(int64_t{1}), Value(9.99)}));
    CHECK_OK(db.Commit(txn.get()));
  }

  // 3. The view V = orders |><| customers on cust_id, materialized now.
  SpjViewDef def = ChainJoin({orders, customers}, {{1, 0}});
  View* view = views.CreateView("order_names", def).value();
  CHECK_OK(views.Materialize(view));
  std::printf("materialized %zu view tuples at csn %llu\n",
              view->mv->cardinality(),
              static_cast<unsigned long long>(view->mv->csn()));

  // 4. Updates keep flowing...
  {
    auto txn = db.Begin();
    CHECK_OK(db.Insert(txn.get(), orders,
                       {Value(int64_t{101}), Value(int64_t{2}), Value(5.0)}));
    CHECK_OK(db.Insert(txn.get(), orders,
                       {Value(int64_t{102}), Value(int64_t{1}), Value(7.5)}));
    CHECK_OK(db.Commit(txn.get()));
  }
  {
    auto txn = db.Begin();
    int64_t n = db.DeleteTuple(txn.get(), orders,
                               {Value(int64_t{100}), Value(int64_t{1}),
                                Value(9.99)})
                    .value();
    std::printf("deleted %lld order row(s)\n", static_cast<long long>(n));
    CHECK_OK(db.Commit(txn.get()));
  }

  // 5. ...and rolling propagation turns the captured base deltas into a
  //    timestamped view delta, a few small transactions at a time.
  RollingPropagator propagator(&views, view, /*uniform_interval=*/4);
  CHECK_OK(propagator.RunUntil(db.stable_csn()));
  std::printf("view delta: %zu rows, high-water mark csn %llu\n",
              view->view_delta->size(),
              static_cast<unsigned long long>(view->high_water_mark()));

  // 6. Apply is a separate process: roll the stored view to the mark.
  Applier applier(&views, view);
  Csn rolled = applier.RollToLatest().value();
  std::printf("rolled view to csn %llu; contents:\n",
              static_cast<unsigned long long>(rolled));
  for (const DeltaRow& row : view->mv->AsDeltaRows()) {
    std::printf("  %s x%lld\n", TupleToString(row.tuple).c_str(),
                static_cast<long long>(row.count));
  }

  capture.Stop();
  return 0;
}
