// A warehouse star schema under continuous load -- the paper's Sec. 3.4
// motivation for per-relation propagation intervals: the fact table churns,
// the dimension tables barely move. Rolling propagation sizes each
// relation's forward queries independently (adaptive target-rows policies)
// while updaters, capture, propagation, apply, and readers all run
// concurrently.
//
// Build & run:  ./build/examples/warehouse_star

#include <cstdio>

#include "capture/log_capture.h"
#include "harness/mv_reader.h"
#include "harness/worker.h"
#include "ivm/apply.h"
#include "ivm/rolling.h"
#include "ivm/view_manager.h"
#include "workload/schemas.h"

using namespace rollview;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    ::rollview::Status s_ = (expr);                               \
    if (!s_.ok()) {                                               \
      std::fprintf(stderr, "FATAL: %s\n", s_.ToString().c_str()); \
      return 1;                                                   \
    }                                                             \
  } while (false)

int main() {
  Db db;
  LogCapture capture(&db);
  ViewManager views(&db, &capture);

  StarSchemaConfig config;
  config.num_dims = 2;
  config.dim_rows = 100;
  config.fact_rows = 2000;
  config.zipf_theta = 0.9;
  StarSchemaWorkload star = StarSchemaWorkload::Create(&db, config, 7).value();
  capture.CatchUp();

  View* view = views.CreateView("sales_by_dim", star.ViewDef()).value();
  CHECK_OK(views.Materialize(view));
  std::printf("star view materialized: %zu joined tuples\n",
              view->mv->cardinality());

  capture.Start();

  // Hot fact updater (fast), cold dimension updater (slow, key-preserving).
  UpdateStream fact_stream(&db, star.FactStream(1, 11), 11);
  UpdateStream dim_stream(&db, star.DimStream(0, 2, 12), 12);
  Worker::Options fact_opts;
  fact_opts.name = "fact-updater";
  fact_opts.target_ops_per_sec = 400;
  Worker fact_worker([&] { return fact_stream.RunTransaction(); }, fact_opts);
  Worker::Options dim_opts;
  dim_opts.name = "dim-updater";
  dim_opts.target_ops_per_sec = 5;
  Worker dim_worker([&] { return dim_stream.RunTransaction(); }, dim_opts);

  // Per-relation adaptive intervals: ~128 fact delta rows per forward
  // query, ~8 per dimension query.
  std::vector<std::unique_ptr<IntervalPolicy>> policies;
  policies.push_back(std::make_unique<TargetRowsInterval>(128));  // fact
  for (size_t d = 0; d < config.num_dims; ++d) {
    policies.push_back(std::make_unique<TargetRowsInterval>(8));
  }
  RollingPropagator propagator(&views, view, std::move(policies));
  Worker propagate_worker([&]() -> Status {
    Result<bool> r = propagator.Step();
    if (!r.ok()) return r.status();
    if (!r.value()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return Status::OK();
  });

  Applier applier(&views, view, ApplierOptions{.prune_view_delta = true});
  Worker apply_worker([&]() -> Status {
    if (view->high_water_mark() > view->mv->csn()) {
      return applier.RollTo(view->high_water_mark());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return Status::OK();
  });

  MvReader reader(&views, view);
  Worker::Options reader_opts;
  reader_opts.name = "reader";
  reader_opts.target_ops_per_sec = 50;
  Worker read_worker([&] { return reader.ReadOnce(); }, reader_opts);

  fact_worker.Start();
  dim_worker.Start();
  propagate_worker.Start();
  apply_worker.Start();
  read_worker.Start();

  for (int sec = 1; sec <= 3; ++sec) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
    std::printf(
        "t=%ds  stable=%llu captured=%llu hwm=%llu mv@%llu  "
        "fact_txns=%llu dim_txns=%llu reads=%llu\n",
        sec, static_cast<unsigned long long>(db.stable_csn()),
        static_cast<unsigned long long>(capture.high_water_mark()),
        static_cast<unsigned long long>(view->high_water_mark()),
        static_cast<unsigned long long>(view->mv->csn()),
        static_cast<unsigned long long>(fact_stream.stats().txns),
        static_cast<unsigned long long>(dim_stream.stats().txns),
        static_cast<unsigned long long>(reader.reads()));
  }

  CHECK_OK(fact_worker.Join());
  CHECK_OK(dim_worker.Join());
  CHECK_OK(propagate_worker.Join());
  CHECK_OK(apply_worker.Join());
  CHECK_OK(read_worker.Join());
  CHECK_OK(capture.WaitForCsn(db.stable_csn()));
  CHECK_OK(propagator.RunUntil(capture.high_water_mark()));
  CHECK_OK(applier.RollTo(view->high_water_mark()));
  capture.Stop();

  const RunnerStats& rs = propagator.runner()->stats();
  std::printf(
      "\nfinal: view has %zu tuples at csn %llu\n"
      "propagation: %llu queries (%llu forward, %llu compensation), "
      "%llu view-delta rows, %llu input rows, %llu index probes\n"
      "apply: %llu rolls, %llu rows applied, %llu rows pruned\n",
      view->mv->cardinality(),
      static_cast<unsigned long long>(view->mv->csn()),
      static_cast<unsigned long long>(rs.queries),
      static_cast<unsigned long long>(rs.forward_queries),
      static_cast<unsigned long long>(rs.comp_queries),
      static_cast<unsigned long long>(rs.rows_appended),
      static_cast<unsigned long long>(rs.exec.input_rows),
      static_cast<unsigned long long>(rs.exec.index_probes),
      static_cast<unsigned long long>(applier.stats().rolls),
      static_cast<unsigned long long>(applier.stats().rows_selected),
      static_cast<unsigned long long>(applier.stats().rows_pruned));
  return 0;
}
