// Micro-benchmarks (google-benchmark) for the propagation-query execution
// path: index-probe joins vs build-side hash joins vs full-scan baselines,
// as a function of delta-range size and base-table size. These are the
// per-query costs the interval policies of E2/E4 trade off.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ra/executor.h"

namespace rollview {
namespace bench {
namespace {

// Shared fixture state per base-table size.
struct JoinFixture {
  std::unique_ptr<Db> db;
  TableId r = kInvalidTableId;  // indexed on col 0
  TableId r_noindex = kInvalidTableId;
  DeltaRows delta;

  explicit JoinFixture(int64_t base_rows, int64_t delta_rows) {
    db = std::make_unique<Db>();
    Schema schema({Column{"a", ValueType::kInt64},
                   Column{"v", ValueType::kInt64}});
    TableOptions indexed;
    indexed.indexed_columns = {0};
    r = db->CreateTable("R", schema, indexed).value();
    r_noindex = db->CreateTable("Rn", schema).value();
    auto txn = db->Begin();
    Rng rng(7);
    for (int64_t i = 0; i < base_rows; ++i) {
      Tuple t{Value(i), Value(rng.Uniform(0, 1000))};
      CheckOk(db->Insert(txn.get(), r, t), "load");
      CheckOk(db->Insert(txn.get(), r_noindex, std::move(t)), "load");
    }
    CheckOk(db->Commit(txn.get()), "commit");
    for (int64_t i = 0; i < delta_rows; ++i) {
      delta.emplace_back(
          Tuple{Value(rng.Uniform(0, base_rows - 1)), Value(int64_t{1})},
          +1, static_cast<Csn>(i + 1));
    }
  }
};

JoinFixture* GetFixture(int64_t base_rows, int64_t delta_rows) {
  // Benchmarks run single-threaded; cache fixtures across iterations.
  static std::vector<std::tuple<int64_t, int64_t, JoinFixture*>> cache;
  for (auto& [b, d, f] : cache) {
    if (b == base_rows && d == delta_rows) return f;
  }
  auto* f = new JoinFixture(base_rows, delta_rows);
  cache.emplace_back(base_rows, delta_rows, f);
  return f;
}

void BM_DeltaProbeJoin(benchmark::State& state) {
  JoinFixture* f = GetFixture(state.range(0), state.range(1));
  JoinExecutor exec(f->db.get());
  ExecStats stats;
  for (auto _ : state) {
    auto txn = f->db->Begin();
    JoinQuery q;
    q.terms = {TermSource::Rows(f->r, &f->delta),
               TermSource::BaseCurrent(f->r)};
    q.equi_joins = {EquiJoin{0, 0, 1, 0}};
    auto rows = exec.Execute(q, txn.get(), &stats);
    CheckOk(rows.status(), "exec");
    benchmark::DoNotOptimize(rows.value().size());
    CheckOk(f->db->Commit(txn.get()), "commit");
  }
  state.counters["probes/query"] = static_cast<double>(stats.index_probes) /
                                   static_cast<double>(stats.queries);
  state.counters["rows_out/query"] = static_cast<double>(stats.output_rows) /
                                     static_cast<double>(stats.queries);
}
BENCHMARK(BM_DeltaProbeJoin)
    ->ArgNames({"base", "delta"})
    ->Args({10000, 10})
    ->Args({10000, 100})
    ->Args({10000, 1000})
    ->Args({100000, 100})
    ->Unit(benchmark::kMicrosecond);

void BM_DeltaHashJoinNoIndex(benchmark::State& state) {
  JoinFixture* f = GetFixture(state.range(0), state.range(1));
  JoinExecutor exec(f->db.get());
  for (auto _ : state) {
    auto txn = f->db->Begin();
    JoinQuery q;
    q.terms = {TermSource::Rows(f->r_noindex, &f->delta),
               TermSource::BaseCurrent(f->r_noindex)};
    q.equi_joins = {EquiJoin{0, 0, 1, 0}};
    auto rows = exec.Execute(q, txn.get());
    CheckOk(rows.status(), "exec");
    benchmark::DoNotOptimize(rows.value().size());
    CheckOk(f->db->Commit(txn.get()), "commit");
  }
}
BENCHMARK(BM_DeltaHashJoinNoIndex)
    ->ArgNames({"base", "delta"})
    ->Args({10000, 10})
    ->Args({10000, 100})
    ->Args({10000, 1000})
    ->Args({100000, 100})
    ->Unit(benchmark::kMicrosecond);

void BM_SnapshotScan(benchmark::State& state) {
  JoinFixture* f = GetFixture(state.range(0), 10);
  Csn stable = f->db->stable_csn();
  for (auto _ : state) {
    auto rows = f->db->SnapshotScan(f->r, stable);
    CheckOk(rows.status(), "scan");
    benchmark::DoNotOptimize(rows.value().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SnapshotScan)
    ->ArgNames({"base"})
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

void BM_NetEffect(benchmark::State& state) {
  Rng rng(3);
  DeltaRows rows;
  for (int64_t i = 0; i < state.range(0); ++i) {
    rows.emplace_back(Tuple{Value(rng.Uniform(0, state.range(0) / 4))},
                      rng.Bernoulli(0.5) ? +1 : -1,
                      static_cast<Csn>(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(NetEffect(rows).size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NetEffect)->Arg(1000)->Arg(100000)->Unit(benchmark::kMicrosecond);

void BM_LockAcquireRelease(benchmark::State& state) {
  LockManager lm;
  TxnId txn = 1;
  for (auto _ : state) {
    CheckOk(lm.Acquire(txn, ResourceId::Row(1, 42), LockMode::kX), "lock");
    lm.ReleaseAll(txn);
    ++txn;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockAcquireRelease);

}  // namespace
}  // namespace bench
}  // namespace rollview

BENCHMARK_MAIN();
