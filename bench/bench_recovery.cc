// E10 -- recovery time vs checkpoint cadence.
//
// The checkpoint cadence (MaintenanceService::Options::checkpoint_every_steps)
// trades steady-state WAL volume for restart latency: a checkpoint is a full
// MV + view-delta + cursor snapshot, so frequent checkpoints fatten the log
// but shrink the WAL suffix recovery must replay. This bench builds the same
// maintenance history at cadences 0 (initial checkpoint only), 128, 32, and
// 8 steps, then times the full recovery stack (wal_codec prefix decode ->
// Db::Recover -> LogCapture::CatchUp -> ViewManager::Recover) against the
// clean log and against a 97% torn-tail cut, and finally drains the
// recovered service to the frontier to count how many propagation steps the
// crash actually cost.

#include <cstddef>

#include "bench_util.h"
#include "harness/crash_harness.h"
#include "ivm/maintenance.h"

namespace rollview {
namespace bench {
namespace {

constexpr int kRounds = 10;
constexpr size_t kTxnsPerRound = 20;

struct RowResult {
  uint64_t cadence = 0;
  double wal_mb = 0;          // encoded log size at quiescence
  uint64_t checkpoints = 0;   // kViewCheckpoint records in the log
  double ckpt_mb = 0;         // bytes those checkpoints contribute
  double recover_ms = 0;      // clean full-log recovery
  uint64_t rows_restored = 0; // checkpoint rows + replayed appends
  double recover_torn_ms = 0; // recovery from a 97% tail cut
  uint64_t rows_discarded = 0;// mid-flight rows cancelled by omission (torn)
  uint64_t resume_steps = 0;  // steps to re-reach the frontier after the cut
  double resume_ms = 0;
  // Scraped from the resumed service at quiescence; JSON rows flow through
  // the shared RegistryRowEmitter.
  obs::MetricsSnapshot snapshot;
};

RowResult RunCadence(uint64_t cadence) {
  CaptureOptions copts;
  copts.truncate_wal = false;  // the log IS the durable state
  Db db;
  LogCapture capture(&db, copts);
  ViewManager views(&db, &capture);

  TwoTableWorkload workload = ValueOrDie(
      TwoTableWorkload::Create(&db, /*r_rows=*/2000, /*s_rows=*/500,
                               /*join_domain=*/128, /*seed=*/7),
      "workload");
  capture.CatchUp();
  View* view = ValueOrDie(views.CreateView("V", workload.ViewDef()), "view");
  CheckOk(views.Materialize(view), "materialize");

  MaintenanceService::Options mopts;
  mopts.checkpoint_every_steps = cadence;
  mopts.target_rows_per_query = 16;
  mopts.apply_continuously = true;
  // Prune applied delta rows so a checkpoint snapshots only the retained
  // tail; without pruning every checkpoint would carry the full delta and
  // the cadence could not shrink the restored state.
  mopts.prune_view_delta = true;
  MaintenanceService service(&views, view, mopts);

  UpdateStream r_stream(&db, workload.RStream(1, 100), 100);
  UpdateStream s_stream(&db, workload.SStream(2, 101), 101);
  for (int round = 0; round < kRounds; ++round) {
    for (size_t i = 0; i < kTxnsPerRound; ++i) {
      CheckOk(r_stream.RunTransaction(), "R update");
      if (i % 2 == 0) CheckOk(s_stream.RunTransaction(), "S update");
    }
    capture.CatchUp();
    CheckOk(service.Drain(db.stable_csn()), "drain");
  }

  RowResult out;
  out.cadence = cadence;
  std::string encoded = SnapshotEncodedWal(&db);
  out.wal_mb = static_cast<double>(encoded.size()) / (1024.0 * 1024.0);

  std::vector<WalRecord> all;
  db.wal()->ReadFrom(0, static_cast<size_t>(-1), &all);
  size_t ckpt_bytes = 0;
  for (const WalRecord& rec : all) {
    if (rec.kind == WalRecord::Kind::kViewCheckpoint) {
      out.checkpoints++;
      if (rec.blob != nullptr) ckpt_bytes += rec.blob->size();
    }
  }
  out.ckpt_mb = static_cast<double>(ckpt_bytes) / (1024.0 * 1024.0);

  std::vector<ViewDefSpec> defs = {{"V", workload.ViewDef()}};

  // Clean full-log recovery: everything durable is reconstructed; the time
  // is dominated by replaying the suffix past the latest checkpoint.
  {
    Stopwatch timer;
    RecoveredSystem sys =
        ValueOrDie(CrashAndRecover(encoded, defs), "clean recovery");
    out.recover_ms = timer.ElapsedMillis();
    CheckOk(sys.report.views_recovered == 1
                ? Status::OK()
                : Status::Internal("view not recovered"),
            "clean recovery report");
    out.rows_restored = sys.report.delta_rows_restored;
  }

  // Torn-tail recovery: cut at 97% of the log (inside the maintenance
  // suffix), recover, then resume maintenance to the recovered frontier and
  // count the steps the crash cost at this cadence.
  {
    CrashSpec spec;
    spec.keep_bytes = encoded.size() * 97 / 100;
    std::string damaged = ApplyCrashSpec(encoded, spec);
    Stopwatch timer;
    RecoveredSystem sys =
        ValueOrDie(CrashAndRecover(damaged, defs), "torn recovery");
    out.recover_torn_ms = timer.ElapsedMillis();
    out.rows_discarded = sys.report.rows_discarded;

    View* rv = sys.views->Find("V");
    CheckOk(rv != nullptr ? Status::OK()
                          : Status::Internal("view missing after torn cut"),
            "torn recovery view");
    MaintenanceService::Options ropts;
    ropts.checkpoint_every_steps = cadence;
    ropts.target_rows_per_query = 16;
    ropts.apply_continuously = true;
    ropts.prune_view_delta = false;
    // Registry before the service so it outlives the service's
    // deregistration in ~MaintenanceService.
    obs::MetricsRegistry registry;
    MaintenanceService resumed(sys.views.get(), rv, ropts);
    resumed.RegisterMetrics(&registry);
    Stopwatch resume_timer;
    CheckOk(resumed.Drain(sys.db->stable_csn()), "resume drain");
    out.resume_ms = resume_timer.ElapsedMillis();
    out.snapshot = registry.Snapshot();
    out.resume_steps = out.snapshot.CounterValue(
        "rollview_step_total",
        {{"view", "V"}, {"driver", "propagate"}, {"outcome", "ok"}});
  }
  return out;
}

void Main() {
  Banner("E10: bench_recovery",
         "Restart latency vs checkpoint cadence: frequent checkpoints fatten "
         "the WAL but bound the suffix recovery replays, so recovery time "
         "falls as the cadence tightens while log volume rises.");

  TablePrinter table({"cadence", "wal_mb", "ckpts", "ckpt_mb", "recover_ms",
                      "restored", "torn_ms", "discarded", "resume_steps",
                      "resume_ms"},
                     13);
  table.PrintHeader();
  JsonReport report("recovery");
  for (uint64_t cadence : {uint64_t{0}, uint64_t{128}, uint64_t{32},
                           uint64_t{8}}) {
    RowResult r = RunCadence(cadence);
    table.PrintRow({FmtInt(r.cadence), Fmt(r.wal_mb, 2),
                    FmtInt(r.checkpoints), Fmt(r.ckpt_mb, 2),
                    Fmt(r.recover_ms, 1), FmtInt(r.rows_restored),
                    Fmt(r.recover_torn_ms, 1), FmtInt(r.rows_discarded),
                    FmtInt(r.resume_steps), Fmt(r.resume_ms, 1)});
    report.BeginRow();
    RegistryRowEmitter emit(&report, &r.snapshot);
    emit.Int("checkpoint_every_steps", r.cadence);
    emit.Num("wal_mb", r.wal_mb, 4);
    emit.Int("checkpoints", r.checkpoints);
    emit.Num("checkpoint_mb", r.ckpt_mb, 4);
    emit.Num("recover_full_ms", r.recover_ms, 3);
    emit.Int("delta_rows_restored", r.rows_restored);
    emit.Num("recover_torn_ms", r.recover_torn_ms, 3);
    emit.Int("rows_discarded", r.rows_discarded);
    emit.Counter(
        "resume_steps", "rollview_step_total",
        {{"view", "V"}, {"driver", "propagate"}, {"outcome", "ok"}});
    emit.Num("resume_ms", r.resume_ms, 3);
  }
  report.Write();
  std::printf(
      "\nShape: cadence 0 leaves only the Materialize-time checkpoint, so\n"
      "view recovery restores the maximum delta state (max restored rows);\n"
      "tightening the cadence to 8 steps shrinks the restored view state\n"
      "~8x (newer checkpoint + pruned delta) at the price of log volume\n"
      "(wal_mb and ckpt_mb grow). Total recover_ms is dominated by base-log\n"
      "replay in this in-memory prototype, so the wall-clock win is muted\n"
      "here -- in a system with persistent base tables the restored-rows\n"
      "column is the recovery cost. The torn-tail cut exercises idempotent\n"
      "resume: rows of steps without a durable cursor are discarded, and\n"
      "the resumed service re-propagates only strips past the recovered\n"
      "cursors (resume_steps stays a handful at every cadence).\n");
}

}  // namespace
}  // namespace bench
}  // namespace rollview

int main() {
  rollview::bench::Main();
  return 0;
}
