// E2 -- the propagation interval as a tuning knob (paper Sec. 3.3).
//
// "Choosing small intervals leads to many small propagation queries.
//  Choosing larger intervals leads to fewer, larger queries. Thus, the
//  interval acts as a parameter that can be tuned to balance query
//  execution overhead against data contention."
//
// Fixed captured history; sweep the interval length delta and measure the
// query count, per-query cost, and the largest single propagation
// transaction (the contention proxy: how long base-table S locks are held
// in one transaction).

#include <algorithm>

#include "bench_util.h"

namespace rollview {
namespace bench {

void Main() {
  Banner("E2: bench_interval_tuning",
         "Interval length vs query count / per-query cost / largest single "
         "propagation transaction (lock-hold proxy), fixed history.");

  Env env;
  TwoTableWorkload workload = ValueOrDie(
      TwoTableWorkload::Create(&env.db, /*r_rows=*/10000, /*s_rows=*/4000,
                               /*join_domain=*/512, /*seed=*/3),
      "create workload");
  env.capture.CatchUp();

  // One history shared by every sweep point.
  View* base_view =
      ValueOrDie(env.views.CreateView("V0", workload.ViewDef()), "view");
  CheckOk(env.views.Materialize(base_view), "materialize");
  Csn t0 = base_view->propagate_from.load();
  RunTwoTableHistory(&env, workload, /*txns=*/1000, /*seed=*/17);
  Csn t_end = env.capture.high_water_mark();
  std::printf("history: %llu commits, %zu R-delta rows, %zu S-delta rows\n\n",
              static_cast<unsigned long long>(t_end - t0),
              env.db.delta(workload.r)->size(),
              env.db.delta(workload.s)->size());

  TablePrinter table({"interval", "queries", "fwd", "comp", "rows_in",
                      "rows_out", "total_ms", "mean_q_us", "max_step_ms"});
  table.PrintHeader();

  for (Csn delta : {Csn(1), Csn(4), Csn(16), Csn(64), Csn(256),
                    t_end - t0}) {
    View* view = ValueOrDie(
        env.views.CreateView("V_d" + std::to_string(delta),
                             workload.ViewDef()),
        "view");
    view->propagate_from.store(t0);
    view->delta_hwm.store(t0);

    Propagator prop(&env.views, view, std::make_unique<FixedInterval>(delta));
    Stopwatch total;
    double max_step_ms = 0;
    while (prop.high_water_mark() < t_end) {
      Stopwatch step;
      bool advanced = ValueOrDie(prop.Step(), "step");
      max_step_ms = std::max(max_step_ms, step.ElapsedMillis());
      if (!advanced) break;
    }
    double total_ms = total.ElapsedMillis();
    const RunnerStats& rs = prop.runner()->stats();
    double mean_q_us =
        rs.queries == 0 ? 0.0 : total_ms * 1000.0 / static_cast<double>(rs.queries);
    table.PrintRow({FmtInt(delta), FmtInt(rs.queries),
                    FmtInt(rs.forward_queries), FmtInt(rs.comp_queries),
                    FmtInt(rs.exec.input_rows), FmtInt(rs.rows_appended),
                    Fmt(total_ms), Fmt(mean_q_us, 1), Fmt(max_step_ms)});
  }
  std::printf(
      "\nShape: queries fall and per-step cost (lock-hold time) rises with\n"
      "the interval; one-shot propagation is the degenerate 'long\n"
      "transaction'. Pick the interval by tolerable max_step_ms.\n");
}

}  // namespace bench
}  // namespace rollview

int main() {
  rollview::bench::Main();
  return 0;
}
