// E7 -- log capture vs trigger capture (paper Sec. 5).
//
// "[The trigger method] expands the update footprint of any transaction
//  that modifies R to include Delta^R. Thus, the transaction can conflict
//  with propagation queries ... that read the delta table. Note that if a
//  materialized view depends on R, every propagation transaction will read
//  either R or Delta^R."
//
// Identical workload and continuous rolling propagation; the only variable
// is how Delta^R is populated. In trigger mode every update transaction
// X-locks the delta resource that every propagation query S-locks.

#include <thread>

#include "bench_util.h"
#include "harness/worker.h"

namespace rollview {
namespace bench {
namespace {

struct RowResult {
  uint64_t updater_txns = 0;
  uint64_t p50_us = 0, p99_us = 0, max_us = 0;
  uint64_t lock_wait_ms = 0;
  uint64_t lock_waits = 0;
  uint64_t prop_queries = 0;
  uint64_t prop_retries = 0;
};

RowResult RunMode(CaptureMode mode) {
  Env env;
  TwoTableWorkload workload = ValueOrDie(
      TwoTableWorkload::Create(&env.db, /*r_rows=*/20000, /*s_rows=*/6000,
                               /*join_domain=*/512, /*seed=*/8, mode),
      "workload");
  env.capture.CatchUp();
  View* view =
      ValueOrDie(env.views.CreateView("V", workload.ViewDef()), "view");
  CheckOk(env.views.Materialize(view), "materialize");
  env.capture.Start();
  env.db.lock_manager()->ResetStats();

  UpdateStream u1(&env.db, workload.RStream(1, 61), 61);
  UpdateStream u2(&env.db, workload.RStream(2, 62), 62);
  UpdateStream u3(&env.db, workload.SStream(3, 63), 63);
  Worker::Options paced;
  paced.target_ops_per_sec = 250;
  Worker w1([&u1] { return u1.RunTransaction(); }, paced);
  Worker w2([&u2] { return u2.RunTransaction(); }, paced);
  Worker w3([&u3] { return u3.RunTransaction(); }, paced);

  std::vector<std::unique_ptr<IntervalPolicy>> ps;
  ps.push_back(std::make_unique<TargetRowsInterval>(128));
  ps.push_back(std::make_unique<TargetRowsInterval>(128));
  RollingPropagator prop(&env.views, view, std::move(ps));
  Worker maintain(
      [&prop]() -> Status {
        Result<bool> r = prop.Step();
        if (!r.ok()) return r.status();
        if (!r.value()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return Status::OK();
      },
      Worker::Options{.name = "maintain"});

  w1.Start();
  w2.Start();
  w3.Start();
  maintain.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  CheckOk(w1.Join(), "u1");
  CheckOk(w2.Join(), "u2");
  CheckOk(w3.Join(), "u3");
  CheckOk(maintain.Join(), "maintain");
  env.capture.Stop();

  RowResult out;
  out.updater_txns = w1.iterations() + w2.iterations() + w3.iterations();
  // Merge the three updaters' reservoirs and report percentiles over the
  // pooled population (the old max-of-percentiles was only an upper bound).
  LatencyHistogram merged;
  merged.MergeFrom(w1.latency());
  merged.MergeFrom(w2.latency());
  merged.MergeFrom(w3.latency());
  out.p50_us = merged.Percentile(0.5) / 1000;
  out.p99_us = merged.Percentile(0.99) / 1000;
  out.max_us = merged.max_nanos() / 1000;
  LockManager::Stats ls = env.db.lock_manager()->GetStats();
  out.lock_wait_ms = ls.wait_nanos / 1000000;
  out.lock_waits = ls.waits;
  out.prop_queries = prop.runner()->stats().queries;
  out.prop_retries = prop.runner()->stats().retries;
  return out;
}

}  // namespace

void Main() {
  Banner("E7: bench_capture_mode",
         "Delta capture from the log (DPropR) vs triggers: trigger capture "
         "widens every update transaction's footprint to Delta^R, which "
         "every propagation query reads.");

  TablePrinter table({"capture", "upd_txns", "p50_us", "p99_us", "max_ms",
                      "lock_waits", "lockwait_ms", "prop_q", "prop_retry"},
                     13);
  table.PrintHeader();
  for (CaptureMode mode : {CaptureMode::kLog, CaptureMode::kTrigger}) {
    RowResult r = RunMode(mode);
    table.PrintRow({mode == CaptureMode::kLog ? "log" : "trigger",
                    FmtInt(r.updater_txns), FmtInt(r.p50_us),
                    FmtInt(r.p99_us), Fmt(r.max_us / 1000.0, 1),
                    FmtInt(r.lock_waits), FmtInt(r.lock_wait_ms),
                    FmtInt(r.prop_queries), FmtInt(r.prop_retries)});
  }
  std::printf(
      "\nShape: log capture keeps updaters and propagation disjoint at the\n"
      "delta tables; trigger capture serializes them there (more lock\n"
      "waits, fatter update tails), exactly the paper's objection.\n");
}

}  // namespace bench
}  // namespace rollview

int main() {
  rollview::bench::Main();
  return 0;
}
