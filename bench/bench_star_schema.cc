// E4 -- per-relation propagation intervals on a star schema (paper
// Sec. 3.4).
//
// "Consider a star schema in which the central fact table is frequently
//  updated and the surrounding dimension tables are rarely updated. If the
//  propagation interval is the same for all forward queries, the forward
//  queries for the fact table will be much larger than the forward queries
//  for the dimension tables. ... rolling propagation provides n independent
//  tunable parameters, rather than one."
//
// Fixed skewed history (hot fact, cold dims); compare interval strategies.
// The empty-range optimization is ALSO ablated: with it off, a uniform fine
// interval pays a full (empty) forward query per dimension per step --
// exactly the waste the paper describes.

#include "bench_util.h"

namespace rollview {
namespace bench {
namespace {

struct RowResult {
  uint64_t queries = 0;
  uint64_t skipped = 0;
  uint64_t rows_in = 0;
  uint64_t max_fwd_rows = 0;  // largest single forward query's delta input
  double ms = 0;
};

}  // namespace

void Main() {
  Banner("E4: bench_star_schema",
         "Uniform vs per-relation propagation intervals on a star schema "
         "(hot fact table, cold dimensions), with the empty-range pruning "
         "ablation.");

  Env env;
  StarSchemaConfig config;
  config.num_dims = 2;
  config.dim_rows = 200;
  config.fact_rows = 10000;
  config.zipf_theta = 0.8;
  StarSchemaWorkload star =
      ValueOrDie(StarSchemaWorkload::Create(&env.db, config, 9), "star");
  env.capture.CatchUp();

  View* base_view =
      ValueOrDie(env.views.CreateView("V0", star.ViewDef()), "view");
  CheckOk(env.views.Materialize(base_view), "materialize");
  Csn t0 = base_view->propagate_from.load();

  // Skewed history: 1200 fact transactions, 12 dimension transactions.
  UpdateStream fact(&env.db, star.FactStream(1, 31), 31);
  UpdateStream dim0(&env.db, star.DimStream(0, 2, 32), 32);
  UpdateStream dim1(&env.db, star.DimStream(1, 3, 33), 33);
  {
    // Dim updaters mutate preloaded rows.
    std::vector<Tuple> d0, d1;
    for (int64_t k = 0; k < config.dim_rows; ++k) {
      d0.push_back(Tuple{Value(k), Value(int64_t{0}),
                         Value("d0_" + std::to_string(k))});
      d1.push_back(Tuple{Value(k), Value(int64_t{0}),
                         Value("d1_" + std::to_string(k))});
    }
    // NOTE: attr values in the mirror must match what was loaded; reload
    // from the engine instead of reconstructing.
    auto txn = env.db.Begin();
    d0 = ValueOrDie(env.db.Scan(txn.get(), star.dims[0]), "scan d0");
    d1 = ValueOrDie(env.db.Scan(txn.get(), star.dims[1]), "scan d1");
    CheckOk(env.db.Commit(txn.get()), "scan commit");
    dim0.SeedMirror(std::move(d0));
    dim1.SeedMirror(std::move(d1));
  }
  for (int i = 0; i < 1200; ++i) {
    CheckOk(fact.RunTransaction(), "fact txn");
    if (i % 100 == 50) CheckOk(dim0.RunTransaction(), "dim0 txn");
    if (i % 200 == 150) CheckOk(dim1.RunTransaction(), "dim1 txn");
  }
  env.capture.CatchUp();
  Csn t_end = env.capture.high_water_mark();
  std::printf("history: %llu commits; delta rows: fact=%zu dim0=%zu dim1=%zu\n\n",
              static_cast<unsigned long long>(t_end - t0),
              env.db.delta(star.fact)->size(),
              env.db.delta(star.dims[0])->size(),
              env.db.delta(star.dims[1])->size());

  auto run = [&](const std::string& name,
                 std::function<std::vector<std::unique_ptr<IntervalPolicy>>()>
                     make_policies,
                 bool skip_empty) -> RowResult {
    View* view = ValueOrDie(env.views.CreateView(name, star.ViewDef()),
                            "view");
    view->propagate_from.store(t0);
    view->delta_hwm.store(t0);
    RollingOptions options;
    options.compute_delta.skip_empty_ranges = skip_empty;
    RollingPropagator prop(&env.views, view, make_policies(),
                           std::move(options));
    Stopwatch sw;
    CheckOk(prop.RunUntil(t_end), "propagate");
    RowResult out;
    out.ms = sw.ElapsedMillis();
    out.queries = prop.runner()->stats().queries;
    out.skipped = prop.rolling_stats().forward_skipped;
    out.rows_in = prop.runner()->stats().exec.input_rows;
    return out;
  };

  auto uniform = [&](Csn len) {
    return [&, len] {
      std::vector<std::unique_ptr<IntervalPolicy>> ps;
      for (size_t i = 0; i < 1 + config.num_dims; ++i) {
        ps.push_back(std::make_unique<FixedInterval>(len));
      }
      return ps;
    };
  };
  auto per_table = [&](Csn fact_len, Csn dim_len) {
    return [&, fact_len, dim_len] {
      std::vector<std::unique_ptr<IntervalPolicy>> ps;
      ps.push_back(std::make_unique<FixedInterval>(fact_len));
      for (size_t i = 0; i < config.num_dims; ++i) {
        ps.push_back(std::make_unique<FixedInterval>(dim_len));
      }
      return ps;
    };
  };
  auto adaptive = [&](size_t fact_rows, size_t dim_rows) {
    return [&, fact_rows, dim_rows] {
      std::vector<std::unique_ptr<IntervalPolicy>> ps;
      ps.push_back(std::make_unique<TargetRowsInterval>(fact_rows));
      for (size_t i = 0; i < config.num_dims; ++i) {
        ps.push_back(std::make_unique<TargetRowsInterval>(dim_rows));
      }
      return ps;
    };
  };

  TablePrinter table({"strategy", "queries", "fwd_skipped", "rows_in",
                      "total_ms"},
                     17);
  table.PrintHeader();
  struct Case {
    std::string name;
    std::function<std::vector<std::unique_ptr<IntervalPolicy>>()> make;
    bool skip_empty;
  };
  std::vector<Case> cases;
  cases.push_back({"uniform16", uniform(16), true});
  cases.push_back({"uniform16-noskip", uniform(16), false});
  cases.push_back({"uniform128", uniform(128), true});
  cases.push_back({"pertbl16/640", per_table(16, 640), true});
  cases.push_back({"pertbl16/640-ns", per_table(16, 640), false});
  cases.push_back({"adaptive64/16", adaptive(64, 16), true});
  for (auto& c : cases) {
    RowResult r = run("V_" + c.name, c.make, c.skip_empty);
    table.PrintRow({c.name, FmtInt(r.queries), FmtInt(r.skipped),
                    FmtInt(r.rows_in), Fmt(r.ms)});
  }
  std::printf(
      "\nShape: with one knob (uniform), fine intervals spray tiny/empty\n"
      "dimension queries (see -noskip ablation) and coarse intervals make\n"
      "fact queries huge. Per-relation and adaptive intervals get small\n"
      "fact queries AND few dimension queries simultaneously.\n");
}

}  // namespace bench
}  // namespace rollview

int main() {
  rollview::bench::Main();
  return 0;
}
