// E17 -- the freshness pipeline measures itself for (nearly) free, and its
// stage decomposition is exact.
//
// The FreshnessTracker stamps every delta-producing commit, the durable
// frontier, each strip pickup, t_comp, and MV visibility, then decomposes
// commit-to-visibility latency into four stage lags at apply time. Two
// claims:
//
//   overhead   an identically seeded drain with tracking + SLO evaluation
//              enabled stays within ~2% of the untracked drain's
//              throughput (the hot path adds one ring stamp per commit and
//              one boundary push per strip/fold)
//   exactness  the four stage-lag histogram sums telescope to the
//              end-to-end sum *exactly* (clamped stamps, ALGORITHMS.md
//              section 15) -- asserted, not eyeballed, in every arm
//
// Arms interleave rep-by-rep so machine drift hits both equally; the
// reported throughput is best-of-reps (work is deterministic, wall clock
// is not).
//
// Usage:
//   bench_freshness                      full arms, writes
//                                        BENCH_freshness.json
//   bench_freshness --smoke [baseline]   short run; asserts the <= 2%
//                                        overhead bound, the telescoping
//                                        identity, and baseline sanity
//                                        (perf-smoke label)

#include <cstring>
#include <string>

#include "bench_util.h"
#include "ivm/maintenance.h"
#include "obs/freshness.h"

namespace rollview {
namespace bench {
namespace {

obs::Labels LabelsV() { return {{"view", "V"}}; }

struct ArmResult {
  std::string arm;
  uint64_t txns = 0;
  double drain_ms = 0;
  double rows_per_s = 0;
  uint64_t commits = 0;
  uint64_t evicted = 0;
  uint64_t e2e_sum = 0;
  uint64_t stage_sum = 0;
  obs::MetricsSnapshot snapshot;
};

// One rep of one arm: seeded history, then a drained MaintenanceService
// with or without the freshness pipeline attached.
ArmResult RunRep(const std::string& arm, bool tracked, size_t txns) {
  ArmResult out;
  out.arm = arm;
  out.txns = txns;

  // Declared before Env: the Db's commit path holds a raw pointer.
  obs::FreshnessTracker tracker;
  Env env;
  if (tracked) env.db.SetFreshnessTracker(&tracker);
  TwoTableWorkload workload = ValueOrDie(
      TwoTableWorkload::Create(&env.db, /*r_rows=*/2000, /*s_rows=*/500,
                               /*join_domain=*/128, /*seed=*/5),
      "workload");
  env.capture.CatchUp();
  View* view =
      ValueOrDie(env.views.CreateView("V", workload.ViewDef()), "view");
  CheckOk(env.views.Materialize(view), "materialize");

  RunTwoTableHistory(&env, workload, txns, /*seed=*/17, /*s_every=*/2);

  MaintenanceService::Options mopts;
  mopts.target_rows_per_query = 64;
  mopts.checkpoint_every_steps = 8;
  if (tracked) {
    mopts.freshness = &tracker;
    // A wide target: the SLO evaluator runs every iteration (its cost is
    // in the measurement) without ever shedding the drain.
    mopts.freshness_slo.target_staleness_nanos = 30ull * 1000 * 1000 * 1000;
  }
  obs::MetricsRegistry registry;
  MaintenanceService service(&env.views, view, mopts);
  service.RegisterMetrics(&registry);

  Csn frontier = env.db.stable_csn();
  Stopwatch sw;
  CheckOk(service.Drain(frontier), "drain");
  out.drain_ms = sw.ElapsedMillis();

  out.snapshot = registry.Snapshot();
  double rows = static_cast<double>(out.snapshot.CounterValue(
      "rollview_view_delta_rows_total", LabelsV()));
  out.rows_per_s = out.drain_ms > 0 ? rows / (out.drain_ms / 1000.0) : 0;

  if (tracked) {
    obs::ViewFreshness* ch = service.freshness();
    CheckOk(ch != nullptr ? Status::OK()
                          : Status::Internal("tracked arm has no channel"),
            "freshness channel");
    out.commits = ch->commits_total();
    out.evicted = ch->evicted_total();
    out.e2e_sum = ch->e2e_hist()->sum_nanos();
    for (size_t i = 0; i < obs::kFreshnessStageCount; ++i) {
      out.stage_sum +=
          ch->stage_hist(static_cast<obs::FreshnessStage>(i))->sum_nanos();
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      baseline_path = argv[i];
    }
  }

  Banner("E17: bench_freshness",
         "End-to-end freshness tracking (per-commit stamps, stage "
         "decomposition, SLO evaluation) costs <= ~2% of drain throughput, "
         "and the stage lags sum to the end-to-end latency exactly.");

  const size_t txns = smoke ? 150 : 600;
  const int reps = smoke ? 5 : 3;

  // Interleave the arms so slow-machine drift lands on both; keep the
  // best rep of each (identical deterministic work, noisy wall clock).
  ArmResult off, on;
  for (int rep = 0; rep < reps; ++rep) {
    ArmResult o = RunRep("untracked", /*tracked=*/false, txns);
    ArmResult t = RunRep("tracked", /*tracked=*/true, txns);
    if (rep == 0 || o.rows_per_s > off.rows_per_s) off = std::move(o);
    if (rep == 0 || t.rows_per_s > on.rows_per_s) on = std::move(t);
  }

  double overhead_pct =
      off.rows_per_s > 0
          ? (off.rows_per_s - on.rows_per_s) / off.rows_per_s * 100.0
          : 0;

  TablePrinter table({"arm", "txns", "drain_ms", "rows_per_s", "commits",
                      "evicted", "e2e_p50_us", "e2e_p99_us"});
  table.PrintHeader();
  JsonReport report("freshness");
  int failures = 0;
  for (const ArmResult* r : {&off, &on}) {
    const obs::HistogramSummary* e2e =
        r->snapshot.Histogram("rollview_freshness_e2e_nanos", LabelsV());
    table.PrintRow({r->arm, FmtInt(r->txns), Fmt(r->drain_ms, 1),
                    Fmt(r->rows_per_s, 0), FmtInt(r->commits),
                    FmtInt(r->evicted),
                    FmtInt(e2e != nullptr ? e2e->p50 / 1000 : 0),
                    FmtInt(e2e != nullptr ? e2e->p99 / 1000 : 0)});

    report.BeginRow();
    RegistryRowEmitter emit(&report, &r->snapshot);
    emit.Str("arm", r->arm);
    emit.Int("txns", r->txns);
    emit.Num("drain_ms", r->drain_ms, 3);
    emit.Num("rows_per_s", r->rows_per_s, 1);
    emit.Counter("commits", "rollview_freshness_commits_total", LabelsV());
    emit.Counter("evicted", "rollview_freshness_evicted_total", LabelsV());
    emit.PercentileMicros("e2e_p50_us", "rollview_freshness_e2e_nanos",
                          LabelsV(), 0.5);
    emit.PercentileMicros("e2e_p99_us", "rollview_freshness_e2e_nanos",
                          LabelsV(), 0.99);
    emit.Gauge("staleness_usec", "rollview_view_staleness_usec", LabelsV());
    emit.Gauge("slo_burn_x1000", "rollview_slo_burn_x1000", LabelsV());
    emit.Counter("slo_evals", "rollview_slo_events_total",
                 {{"view", "V"}, {"event", "eval"}});
    emit.Int("e2e_sum_nanos", r->e2e_sum);
    emit.Int("stage_sum_nanos", r->stage_sum);
    emit.Num("overhead_pct", r->arm == "tracked" ? overhead_pct : 0, 2);
  }

  // Structural assertions, both modes.
  if (on.commits == 0) {
    std::printf("FAIL: tracked arm measured zero commits\n");
    failures++;
  }
  if (on.snapshot.Histogram("rollview_freshness_e2e_nanos", LabelsV()) ==
      nullptr) {
    std::printf("FAIL: tracked arm exported no e2e histogram\n");
    failures++;
  }
  if (off.snapshot.Histogram("rollview_freshness_e2e_nanos", LabelsV()) !=
      nullptr) {
    std::printf("FAIL: untracked arm exported freshness metrics\n");
    failures++;
  }
  // The telescoping identity is exact by construction; any drift is a bug
  // in the clamped stamp decomposition, not noise.
  if (on.stage_sum != on.e2e_sum) {
    std::printf(
        "FAIL: stage lags do not telescope: stages sum %llu != e2e %llu\n",
        static_cast<unsigned long long>(on.stage_sum),
        static_cast<unsigned long long>(on.e2e_sum));
    failures++;
  }
  if (on.snapshot.GaugeValue("rollview_view_staleness_usec", LabelsV()) !=
      0) {
    std::printf("FAIL: drained tracked arm reports nonzero staleness\n");
    failures++;
  }
  if (on.snapshot.CounterValue("rollview_slo_events_total",
                               {{"view", "V"}, {"event", "shed_entry"}}) !=
      0) {
    std::printf("FAIL: wide-target SLO shed during the drain\n");
    failures++;
  }

  if (smoke) {
    // The headline bound, best-of-interleaved-reps. A negative overhead
    // (tracked arm won the coin toss) passes trivially.
    if (overhead_pct > 2.0) {
      std::printf("SMOKE FAIL: freshness overhead %.2f%% > 2%%\n",
                  overhead_pct);
      failures++;
    }
    if (!baseline_path.empty()) {
      std::string needles[] = {"untracked", "tracked", "stage_sum_nanos"};
      FILE* f = std::fopen(baseline_path.c_str(), "rb");
      if (f == nullptr) {
        std::printf("SMOKE FAIL: cannot open baseline %s\n",
                    baseline_path.c_str());
        failures++;
      } else {
        std::string contents;
        char buf[4096];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
          contents.append(buf, n);
        }
        std::fclose(f);
        for (const std::string& needle : needles) {
          if (contents.find("\"" + needle + "\"") == std::string::npos) {
            std::printf("SMOKE FAIL: baseline %s missing %s\n",
                        baseline_path.c_str(), needle.c_str());
            failures++;
          }
        }
      }
    }
  }

  if (!smoke) report.Write();
  std::printf(
      "\nShape: the tracked drain lands within ~2%% of untracked (%.2f%% "
      "this\nrun) while stamping every commit and decomposing its latency "
      "into\ndurable/pickup/propagate/apply stages whose sums telescope to "
      "the\nend-to-end sum exactly (%llu == %llu nanos).\n",
      overhead_pct, static_cast<unsigned long long>(on.stage_sum),
      static_cast<unsigned long long>(on.e2e_sum));
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace rollview

int main(int argc, char** argv) {
  return rollview::bench::Main(argc, argv);
}
