// F6-F9 -- executable reproduction of the paper's geometric figures.
//
// Figures 6-9 explain propagation as rectangles in a coordinate space with
// one time axis per base relation. This bench replays each figure's
// scenario on a live 2-relation view, records every executed propagation
// query as a signed rectangle, prints the ledger (the textual analogue of
// the figure), and machine-verifies that the signed coverage equals exactly
// the L-shaped target region V_{a,b}:
//
//   Fig 6/7: one ComputeDelta(V, [a,a], b) -- the four-query picture of
//            Equation 3 (forward queries unshaded, compensations shaded).
//   Fig 8:   Propagate -- three consecutive identical ComputeDelta blocks.
//   Fig 9:   RollingPropagate with a wider interval for R2 than R1 --
//            deferred, merged compensations.

#include "bench_util.h"
#include "ivm/compute_delta.h"
#include "ivm/region_tracker.h"

namespace rollview {
namespace bench {
namespace {

struct Scenario {
  Env env;
  TwoTableWorkload workload;
  View* view = nullptr;
  Csn t0 = kNullCsn;

  explicit Scenario(const char* name) {
    workload = ValueOrDie(
        TwoTableWorkload::Create(&env.db, 60, 40, 8, 42), "workload");
    env.capture.CatchUp();
    view = ValueOrDie(env.views.CreateView(name, workload.ViewDef()),
                      "view");
    CheckOk(env.views.Materialize(view), "materialize");
    t0 = view->propagate_from.load();
  }

  // A burst of update transactions against both tables.
  void Burst(size_t txns, uint64_t seed) {
    UpdateStream r(&env.db, workload.RStream(seed, seed), seed);
    UpdateStream s(&env.db, workload.SStream(seed + 50, seed + 1), seed + 1);
    for (size_t i = 0; i < txns; ++i) {
      CheckOk(r.RunTransaction(), "r txn");
      CheckOk(s.RunTransaction(), "s txn");
    }
    env.capture.CatchUp();
  }

  void Verify(const RegionTracker& tracker, Csn frontier) {
    auto violation = tracker.CheckCoverage(t0, frontier);
    if (violation.has_value()) {
      std::printf("  COVERAGE VIOLATION at point (");
      for (size_t i = 0; i < violation->size(); ++i) {
        std::printf("%s%llu", i ? ", " : "",
                    static_cast<unsigned long long>((*violation)[i]));
      }
      std::printf(")\n");
    } else {
      std::printf("  signed coverage == L-region V_(%llu,%llu]  [verified]\n",
                  static_cast<unsigned long long>(t0),
                  static_cast<unsigned long long>(frontier));
    }
  }
};

void Fig7() {
  std::printf("\n--- Figure 6/7: ComputeDelta(V, [a,a], b) over one interval "
              "---\n");
  Scenario sc("fig7");
  sc.Burst(6, 1);
  Csn b = sc.env.capture.high_water_mark();

  RegionTracker tracker;
  QueryRunner runner(&sc.env.views, sc.view);
  runner.set_region_tracker(&tracker);
  ComputeDeltaOptions opts;
  opts.skip_empty_ranges = false;  // record the full Equation 3 picture
  ComputeDeltaOp op(&runner, opts);
  CheckOk(op.PropagateInterval(sc.view, sc.t0, b), "compute delta");

  std::printf("query ledger (+ forward, - compensation), axes = (R1, R2):\n%s",
              tracker.Dump().c_str());
  sc.Verify(tracker, b);
}

void Fig8() {
  std::printf("\n--- Figure 8: Propagate -- consecutive ComputeDelta blocks "
              "---\n");
  Scenario sc("fig8");
  RegionTracker tracker;
  PropagatorOptions popts;
  popts.compute_delta.skip_empty_ranges = false;
  Propagator prop(&sc.env.views, sc.view,
                  std::make_unique<DrainInterval>(), popts);
  prop.runner()->set_region_tracker(&tracker);
  Csn frontier = sc.t0;
  for (int block = 0; block < 3; ++block) {
    sc.Burst(3, 10 + block);
    frontier = sc.env.capture.high_water_mark();
    CheckOk(prop.RunUntil(frontier), "propagate");
  }
  std::printf("query ledger:\n%s", tracker.Dump().c_str());
  sc.Verify(tracker, frontier);
}

void Fig9() {
  std::printf("\n--- Figure 9: RollingPropagate, R2 interval wider than R1 "
              "---\n");
  Scenario sc("fig9");
  sc.Burst(10, 30);
  Csn frontier = sc.env.capture.high_water_mark();

  RegionTracker tracker;
  std::vector<std::unique_ptr<IntervalPolicy>> ps;
  ps.push_back(std::make_unique<FixedInterval>(8));   // R1: narrow strips
  ps.push_back(std::make_unique<FixedInterval>(20));  // R2: wide strips
  RollingOptions ropts;
  // The figure depicts the deferred/merged compensation of Figure 10,
  // which is exact for two-relation views.
  ropts.compensation = CompensationMode::kDeferredFigure10;
  ropts.compute_delta.skip_empty_ranges = false;
  RollingPropagator prop(&sc.env.views, sc.view, std::move(ps), ropts);
  prop.runner()->set_region_tracker(&tracker);
  CheckOk(prop.RunUntil(frontier), "rolling");

  std::printf("query ledger:\n%s", tracker.Dump().c_str());
  std::printf("  forward queries: %llu, compensation segments: %llu, "
              "hwm: %llu\n",
              static_cast<unsigned long long>(
                  prop.rolling_stats().forward_queries),
              static_cast<unsigned long long>(
                  prop.rolling_stats().compensation_segments),
              static_cast<unsigned long long>(prop.high_water_mark()));
  sc.Verify(tracker, prop.high_water_mark());
}

}  // namespace

void Main() {
  Banner("F6-F9: bench_fig_geometry",
         "The paper's coordinate-space figures as machine-checked ledgers: "
         "every propagation query is a signed rectangle; their sum must "
         "tile V_{a,b} exactly.");
  Fig7();
  Fig8();
  Fig9();
}

}  // namespace bench
}  // namespace rollview

int main() {
  rollview::bench::Main();
  return 0;
}
