// E8 -- maintenance cost as the number of views grows (paper Sec. 1: "as
// the number of views to be maintained increases, this problem becomes
// worse" -- for the synchronous approach).
//
// k views over the same two base tables, concurrent paced updaters.
//   sync    -- each view refreshed atomically in turn (k long transactions
//              per refresh round, each S-locking the base tables)
//   rolling -- one MaintenanceService per view, all propagating
//              concurrently in small transactions
//
// The synchronous strategy's updater tail grows with k (more and longer
// lock windows); rolling's stays flat because every transaction stays
// small regardless of k.

#include <thread>

#include "bench_util.h"
#include "harness/worker.h"
#include "ivm/maintenance.h"
#include "ivm/shared_propagate.h"

namespace rollview {
namespace bench {
namespace {

struct RowResult {
  uint64_t upd_txns = 0;
  uint64_t p99_us = 0;
  uint64_t max_us = 0;
  uint64_t lockwait_ms = 0;
  uint64_t total_queries = 0;
};

RowResult RunMode(const std::string& mode, size_t num_views) {
  Env env;
  TwoTableWorkload workload = ValueOrDie(
      TwoTableWorkload::Create(&env.db, /*r_rows=*/20000, /*s_rows=*/6000,
                               /*join_domain=*/512, /*seed=*/4),
      "workload");
  env.capture.CatchUp();
  std::vector<View*> views_list;
  std::unique_ptr<SharedViewGroup> group;
  if (mode == "shared") {
    // One carrier, num_views selection variants (different rval cutoffs).
    group = ValueOrDie(
        SharedViewGroup::Create(&env.views, "carrier", workload.ViewDef()),
        "group");
    for (size_t i = 0; i < num_views; ++i) {
      SpjViewDef def = workload.ViewDef();
      def.selection = Expr::Compare(
          Expr::CmpOp::kGe, Expr::Column(2),
          Expr::Literal(Value(static_cast<int64_t>(i) << 60)));
      views_list.push_back(ValueOrDie(
          group->AddMember("V" + std::to_string(i), def), "member"));
    }
    CheckOk(group->MaterializeAll(), "materialize group");
  } else {
    for (size_t i = 0; i < num_views; ++i) {
      View* v = ValueOrDie(
          env.views.CreateView("V" + std::to_string(i), workload.ViewDef()),
          "view");
      CheckOk(env.views.Materialize(v), "materialize");
      views_list.push_back(v);
    }
  }
  env.capture.Start();
  env.db.lock_manager()->ResetStats();

  UpdateStream u1(&env.db, workload.RStream(1, 71), 71);
  UpdateStream u2(&env.db, workload.SStream(2, 72), 72);
  Worker::Options paced;
  paced.target_ops_per_sec = 300;
  Worker w1([&u1] { return u1.RunTransaction(); }, paced);
  Worker w2([&u2] { return u2.RunTransaction(); }, paced);

  std::vector<std::unique_ptr<MaintenanceService>> services;
  std::unique_ptr<Worker> sync_worker;
  std::vector<std::unique_ptr<SyncRefresher>> sync_refreshers;

  std::unique_ptr<Worker> shared_worker;
  if (mode == "shared") {
    shared_worker = std::make_unique<Worker>(
        [&group]() -> Status {
          Result<bool> r = group->Step();
          if (!r.ok()) return r.status();
          if (!r.value()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          return Status::OK();
        },
        Worker::Options{.name = "shared"});
    shared_worker->Start();
  } else if (mode == "rolling") {
    for (View* v : views_list) {
      MaintenanceService::Options mo;
      mo.target_rows_per_query = 256;
      services.push_back(
          std::make_unique<MaintenanceService>(&env.views, v, mo));
      services.back()->Start();
    }
  } else {
    for (View* v : views_list) {
      sync_refreshers.push_back(
          std::make_unique<SyncRefresher>(&env.views, v));
    }
    sync_worker = std::make_unique<Worker>(
        [&sync_refreshers]() -> Status {
          for (auto& r : sync_refreshers) {
            ROLLVIEW_RETURN_NOT_OK(r->RefreshEq1().status());
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(300));
          return Status::OK();
        },
        Worker::Options{.name = "sync-refresh"});
    sync_worker->Start();
  }

  w1.Start();
  w2.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  CheckOk(w1.Join(), "u1");
  CheckOk(w2.Join(), "u2");
  if (sync_worker) CheckOk(sync_worker->Join(), "sync");
  uint64_t total_queries = 0;
  for (auto& s : services) {
    Csn target = env.db.stable_csn();
    CheckOk(env.capture.WaitForCsn(target), "capture");
    CheckOk(s->Drain(target), "drain");
    CheckOk(s->Stop(), "stop");
    total_queries += s->runner_stats()->queries;
  }
  if (shared_worker) {
    Csn target = env.db.stable_csn();
    CheckOk(env.capture.WaitForCsn(target), "capture");
    CheckOk(shared_worker->Join(), "shared");
    CheckOk(group->RunUntil(target), "drain group");
    total_queries += group->propagator()->runner()->stats().queries;
  }
  for (auto& r : sync_refreshers) total_queries += r->stats().queries;
  env.capture.Stop();

  RowResult out;
  out.upd_txns = w1.iterations() + w2.iterations();
  // Pooled-population percentiles via reservoir merge, not the old
  // max-of-per-worker-percentiles upper bound.
  LatencyHistogram merged;
  merged.MergeFrom(w1.latency());
  merged.MergeFrom(w2.latency());
  out.p99_us = merged.Percentile(0.99) / 1000;
  out.max_us = merged.max_nanos() / 1000;
  out.lockwait_ms = env.db.lock_manager()->GetStats().wait_nanos / 1000000;
  out.total_queries = total_queries;
  return out;
}

}  // namespace

void Main() {
  Banner("E8: bench_multiview",
         "Updater interference vs number of maintained views: k atomic "
         "refreshes per round vs k independent rolling maintainers.");
  TablePrinter table({"mode", "views", "upd_txns", "p99_us", "max_ms",
                      "lockwait_ms", "queries"},
                     13);
  table.PrintHeader();
  for (size_t k : {1u, 2u, 4u}) {
    for (const std::string mode : {"sync", "rolling", "shared"}) {
      RowResult r = RunMode(mode, k);
      table.PrintRow({mode, FmtInt(k), FmtInt(r.upd_txns), FmtInt(r.p99_us),
                      Fmt(r.max_us / 1000.0, 1), FmtInt(r.lockwait_ms),
                      FmtInt(r.total_queries)});
    }
  }
  std::printf(
      "\nShape: synchronous refresh cost (updater tail, lock waits) grows\n"
      "with the view count; independent rolling maintainers add queries\n"
      "linearly in k but each stays small, so the updater tail is flat;\n"
      "shared propagation (one carrier stream, k selection variants) keeps\n"
      "the query count flat in k as well.\n");
}

}  // namespace bench
}  // namespace rollview

int main() {
  rollview::bench::Main();
  return 0;
}
