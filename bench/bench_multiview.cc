// E8 -- maintenance cost as the number of views grows (paper Sec. 1: "as
// the number of views to be maintained increases, this problem becomes
// worse" -- for the synchronous approach).
//
// k views over the same two base tables, concurrent paced updaters.
//   sync    -- each view refreshed atomically in turn (k long transactions
//              per refresh round, each S-locking the base tables)
//   rolling -- one MaintenanceService per view, all propagating
//              concurrently in small transactions
//
// The synchronous strategy's updater tail grows with k (more and longer
// lock windows); rolling's stays flat because every transaction stays
// small regardless of k.

// E13 -- partition scaling: the same single-view backlog drained by 1, 2,
// and 4 hash-partition strips (ivm/parallel_rolling.h). Each strip keeps the
// paper's small-interval contract (the per-query row target is per strip),
// so partitioning multiplies rows retired per barrier round while each
// strip's compensation scans only its own slice of the deferred querylists.

#include <thread>

#include "bench_util.h"
#include "harness/worker.h"
#include "ivm/maintenance.h"
#include "ivm/shared_propagate.h"
#include "workload/update_stream.h"

namespace rollview {
namespace bench {
namespace {

struct RowResult {
  uint64_t upd_txns = 0;
  uint64_t p99_us = 0;
  uint64_t max_us = 0;
  uint64_t lockwait_ms = 0;
  uint64_t total_queries = 0;
};

RowResult RunMode(const std::string& mode, size_t num_views) {
  Env env;
  TwoTableWorkload workload = ValueOrDie(
      TwoTableWorkload::Create(&env.db, /*r_rows=*/20000, /*s_rows=*/6000,
                               /*join_domain=*/512, /*seed=*/4),
      "workload");
  env.capture.CatchUp();
  std::vector<View*> views_list;
  std::unique_ptr<SharedViewGroup> group;
  if (mode == "shared") {
    // One carrier, num_views selection variants (different rval cutoffs).
    group = ValueOrDie(
        SharedViewGroup::Create(&env.views, "carrier", workload.ViewDef()),
        "group");
    for (size_t i = 0; i < num_views; ++i) {
      SpjViewDef def = workload.ViewDef();
      def.selection = Expr::Compare(
          Expr::CmpOp::kGe, Expr::Column(2),
          Expr::Literal(Value(static_cast<int64_t>(i) << 60)));
      views_list.push_back(ValueOrDie(
          group->AddMember("V" + std::to_string(i), def), "member"));
    }
    CheckOk(group->MaterializeAll(), "materialize group");
  } else {
    for (size_t i = 0; i < num_views; ++i) {
      View* v = ValueOrDie(
          env.views.CreateView("V" + std::to_string(i), workload.ViewDef()),
          "view");
      CheckOk(env.views.Materialize(v), "materialize");
      views_list.push_back(v);
    }
  }
  env.capture.Start();
  env.db.lock_manager()->ResetStats();

  UpdateStream u1(&env.db, workload.RStream(1, 71), 71);
  UpdateStream u2(&env.db, workload.SStream(2, 72), 72);
  Worker::Options paced;
  paced.target_ops_per_sec = 300;
  Worker w1([&u1] { return u1.RunTransaction(); }, paced);
  Worker w2([&u2] { return u2.RunTransaction(); }, paced);

  std::vector<std::unique_ptr<MaintenanceService>> services;
  std::unique_ptr<Worker> sync_worker;
  std::vector<std::unique_ptr<SyncRefresher>> sync_refreshers;

  std::unique_ptr<Worker> shared_worker;
  if (mode == "shared") {
    shared_worker = std::make_unique<Worker>(
        [&group]() -> Status {
          Result<bool> r = group->Step();
          if (!r.ok()) return r.status();
          if (!r.value()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          return Status::OK();
        },
        Worker::Options{.name = "shared"});
    shared_worker->Start();
  } else if (mode == "rolling") {
    for (View* v : views_list) {
      MaintenanceService::Options mo;
      mo.target_rows_per_query = 256;
      services.push_back(
          std::make_unique<MaintenanceService>(&env.views, v, mo));
      services.back()->Start();
    }
  } else {
    for (View* v : views_list) {
      sync_refreshers.push_back(
          std::make_unique<SyncRefresher>(&env.views, v));
    }
    sync_worker = std::make_unique<Worker>(
        [&sync_refreshers]() -> Status {
          for (auto& r : sync_refreshers) {
            ROLLVIEW_RETURN_NOT_OK(r->RefreshEq1().status());
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(300));
          return Status::OK();
        },
        Worker::Options{.name = "sync-refresh"});
    sync_worker->Start();
  }

  w1.Start();
  w2.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  CheckOk(w1.Join(), "u1");
  CheckOk(w2.Join(), "u2");
  if (sync_worker) CheckOk(sync_worker->Join(), "sync");
  uint64_t total_queries = 0;
  for (auto& s : services) {
    Csn target = env.db.stable_csn();
    CheckOk(env.capture.WaitForCsn(target), "capture");
    CheckOk(s->Drain(target), "drain");
    CheckOk(s->Stop(), "stop");
    total_queries += s->runner_stats()->queries;
  }
  if (shared_worker) {
    Csn target = env.db.stable_csn();
    CheckOk(env.capture.WaitForCsn(target), "capture");
    CheckOk(shared_worker->Join(), "shared");
    CheckOk(group->RunUntil(target), "drain group");
    total_queries += group->propagator()->runner()->stats().queries;
  }
  for (auto& r : sync_refreshers) total_queries += r->stats().queries;
  env.capture.Stop();

  RowResult out;
  out.upd_txns = w1.iterations() + w2.iterations();
  // Pooled-population percentiles via reservoir merge, not the old
  // max-of-per-worker-percentiles upper bound.
  LatencyHistogram merged;
  merged.MergeFrom(w1.latency());
  merged.MergeFrom(w2.latency());
  out.p99_us = merged.Percentile(0.99) / 1000;
  out.max_us = merged.max_nanos() / 1000;
  out.lockwait_ms = env.db.lock_manager()->GetStats().wait_nanos / 1000000;
  out.total_queries = total_queries;
  return out;
}

struct PartitionArmResult {
  double wall_ms = 0;
  uint64_t delta_rows = 0;
  obs::MetricsSnapshot snapshot;
};

// Simulated log-force wait per commit: propagation steps are small
// transactions, so their durability waits dominate once the join work per
// step is modest -- the regime where partition strips win by overlapping
// their log forces (group commit), not by burning more cores.
constexpr int kCommitLatencyUs = 1000;

// One E13 arm: build an identical seeded backlog, then drain it with
// `partitions` strips and no competing foreground load, so the wall clock
// isolates propagation throughput.
PartitionArmResult RunPartitionArm(uint32_t partitions) {
  DbOptions dbo;
  dbo.commit_latency = std::chrono::microseconds(kCommitLatencyUs);
  Env env(dbo);
  TwoTableWorkload workload = ValueOrDie(
      TwoTableWorkload::Create(&env.db, /*r_rows=*/4000, /*s_rows=*/2000,
                               /*join_domain=*/512, /*seed=*/13),
      "workload");
  env.capture.CatchUp();
  View* view = ValueOrDie(env.views.CreateView("V", workload.ViewDef()),
                          "view");
  CheckOk(env.views.Materialize(view), "materialize");

  UpdateStream u1(&env.db, workload.RStream(1, 131), 131);
  UpdateStream u2(&env.db, workload.SStream(2, 132), 132);
  CheckOk(u1.RunTransactions(500), "backlog R");
  CheckOk(u2.RunTransactions(300), "backlog S");
  env.capture.CatchUp();

  MaintenanceService::Options mo;
  mo.target_rows_per_query = 16;  // the small-interval contract, per strip
  mo.propagate_partitions = partitions;
  // Outlives the service: the service drops its registrations on teardown.
  obs::MetricsRegistry registry;
  MaintenanceService service(&env.views, view, mo);
  if (partitions > 1 && service.propagate_partitions() != partitions) {
    CheckOk(Status::Internal("partition arm fell back to serial"), "arm");
  }
  service.RegisterMetrics(&registry);

  Csn target = env.db.stable_csn();
  Stopwatch sw;
  CheckOk(service.Drain(target), "drain");
  PartitionArmResult out;
  out.wall_ms = sw.ElapsedMillis();
  out.delta_rows = service.runner_stats()->rows_appended;
  out.snapshot = registry.Snapshot();
  return out;
}

void PartitionScalingArm(JsonReport* report) {
  std::printf("\n");
  Banner("E13: bench_multiview --partition-scaling",
         "Propagation throughput of one backlog drained by k disjoint "
         "hash-partition strips on a shared worker pool, with a simulated "
         "1ms log-force per commit (strips overlap their waits).");
  TablePrinter table(
      {"partitions", "wall_ms", "delta_rows", "rows_per_s", "speedup"}, 13);
  table.PrintHeader();
  RegistryRowEmitter emitter(report, nullptr);
  double serial_ms = 0;
  for (uint32_t p : {1u, 2u, 4u}) {
    PartitionArmResult r = RunPartitionArm(p);
    if (p == 1) serial_ms = r.wall_ms;
    double rows_per_s =
        r.wall_ms > 0 ? 1000.0 * static_cast<double>(r.delta_rows) / r.wall_ms
                      : 0;
    double speedup = r.wall_ms > 0 ? serial_ms / r.wall_ms : 0;
    table.PrintRow({FmtInt(p), Fmt(r.wall_ms, 1), FmtInt(r.delta_rows),
                    Fmt(rows_per_s, 0), Fmt(speedup, 2)});
    emitter.set_snapshot(&r.snapshot);
    report->BeginRow();
    emitter.Str("experiment", "E13");
    emitter.Int("partitions", p);
    emitter.Int("commit_latency_us", kCommitLatencyUs);
    emitter.Num("wall_ms", r.wall_ms, 1);
    emitter.Num("rows_per_s", rows_per_s, 0);
    emitter.Num("speedup_vs_serial", speedup, 3);
    obs::Labels lv{{"view", "V"}};
    emitter.Gauge("partitions_gauge", "rollview_view_partitions", lv);
    emitter.Counter("fwd_queries", "rollview_queries_total",
                    {{"view", "V"}, {"kind", "forward"}});
    emitter.Counter("comp_queries", "rollview_queries_total",
                    {{"view", "V"}, {"kind", "compensation"}});
    emitter.Counter("delta_rows", "rollview_view_delta_rows_total", lv);
    emitter.Counter("steps_ok", "rollview_step_total",
                    {{"view", "V"},
                     {"driver", "propagate"},
                     {"outcome", "ok"}});
  }
  std::printf(
      "\nShape: every propagation step is a small transaction whose commit\n"
      "pays a log force; the serial driver pays them end to end, while k\n"
      "partition strips overlap theirs (group commit), so wall-clock drain\n"
      "throughput scales with the strip count until the join CPU or the\n"
      "shared commit path saturates.\n");
}

}  // namespace

void Main() {
  Banner("E8: bench_multiview",
         "Updater interference vs number of maintained views: k atomic "
         "refreshes per round vs k independent rolling maintainers.");
  TablePrinter table({"mode", "views", "upd_txns", "p99_us", "max_ms",
                      "lockwait_ms", "queries"},
                     13);
  table.PrintHeader();
  for (size_t k : {1u, 2u, 4u}) {
    for (const std::string mode : {"sync", "rolling", "shared"}) {
      RowResult r = RunMode(mode, k);
      table.PrintRow({mode, FmtInt(k), FmtInt(r.upd_txns), FmtInt(r.p99_us),
                      Fmt(r.max_us / 1000.0, 1), FmtInt(r.lockwait_ms),
                      FmtInt(r.total_queries)});
    }
  }
  std::printf(
      "\nShape: synchronous refresh cost (updater tail, lock waits) grows\n"
      "with the view count; independent rolling maintainers add queries\n"
      "linearly in k but each stays small, so the updater tail is flat;\n"
      "shared propagation (one carrier stream, k selection variants) keeps\n"
      "the query count flat in k as well.\n");

  JsonReport report("multiview");
  PartitionScalingArm(&report);
  report.Write();
}

}  // namespace bench
}  // namespace rollview

int main() {
  rollview::bench::Main();
  return 0;
}
