// E5 -- point-in-time refresh and propagate/apply independence (paper
// Sec. 1, 3.3).
//
// "Because the tuples are timestamped, the apply process can, at any time,
//  use the view delta to roll the materialized view forward to any time
//  point up to the view delta's high-water mark."
//
// One long, fully propagated history. Part A: the cost of rolling the MV
// scales with the width of the rolled window, not with the total history.
// Part B: stepwise rolls visit a chain of transaction-consistent
// intermediate states whose cumulative cost matches one big roll.

#include "bench_util.h"

namespace rollview {
namespace bench {

void Main() {
  Banner("E5: bench_point_in_time",
         "Cost of rolling the MV to a point in time vs window width; "
         "apply is independent of propagation and of total history length.");

  Env env;
  TwoTableWorkload workload = ValueOrDie(
      TwoTableWorkload::Create(&env.db, /*r_rows=*/10000, /*s_rows=*/4000,
                               /*join_domain=*/512, /*seed=*/13),
      "workload");
  env.capture.CatchUp();
  View* view =
      ValueOrDie(env.views.CreateView("V", workload.ViewDef()), "view");
  CheckOk(env.views.Materialize(view), "materialize");
  Csn t0 = view->propagate_from.load();
  CountMap initial = view->mv->Contents();

  RunTwoTableHistory(&env, workload, /*txns=*/1200, /*seed=*/14);
  Csn t_end = env.capture.high_water_mark();

  RollingPropagator prop(&env.views, view, /*uniform_interval=*/64);
  Stopwatch prop_sw;
  CheckOk(prop.RunUntil(t_end), "propagate");
  std::printf("history: %llu commits; propagation: %.1f ms, %zu view-delta "
              "rows, hwm=%llu\n\n",
              static_cast<unsigned long long>(t_end - t0),
              prop_sw.ElapsedMillis(), view->view_delta->size(),
              static_cast<unsigned long long>(view->high_water_mark()));

  Csn hwm = view->high_water_mark();
  Csn span = hwm - t0;

  std::printf("Part A: one roll of varying width (MV reset to t0 each time)\n");
  TablePrinter table({"window_pct", "window_csns", "rows_applied",
                      "roll_ms", "mv_tuples"});
  table.PrintHeader();
  for (int pct : {1, 5, 10, 25, 50, 75, 100}) {
    view->mv->Replace(initial, t0);
    Csn target = t0 + span * static_cast<Csn>(pct) / 100;
    Applier applier(&env.views, view);
    Stopwatch sw;
    CheckOk(applier.RollTo(target), "roll");
    table.PrintRow({FmtInt(static_cast<uint64_t>(pct)),
                    FmtInt(target - t0),
                    FmtInt(applier.stats().rows_selected),
                    Fmt(sw.ElapsedMillis()),
                    FmtInt(view->mv->cardinality())});
  }

  std::printf("\nPart B: stepwise rolls through 10 consistent intermediate "
              "states\n");
  view->mv->Replace(initial, t0);
  Applier stepper(&env.views, view);
  Stopwatch total;
  for (int step = 1; step <= 10; ++step) {
    CheckOk(stepper.RollTo(t0 + span * static_cast<Csn>(step) / 10), "roll");
  }
  double stepwise_ms = total.ElapsedMillis();
  view->mv->Replace(initial, t0);
  Applier one_shot(&env.views, view);
  Stopwatch one;
  CheckOk(one_shot.RollTo(hwm), "roll");
  double one_ms = one.ElapsedMillis();
  std::printf("10 stepwise rolls: %.2f ms total (%llu rows); one roll: "
              "%.2f ms (%llu rows)\n",
              stepwise_ms,
              static_cast<unsigned long long>(stepper.stats().rows_selected),
              one_ms,
              static_cast<unsigned long long>(one_shot.stats().rows_selected));
  std::printf(
      "\nShape: roll cost grows with the rolled window's delta volume, not\n"
      "the total history; stepwise and one-shot apply the same rows. Apply\n"
      "never touches base tables or delta capture -- full independence.\n");
}

}  // namespace bench
}  // namespace rollview

int main() {
  rollview::bench::Main();
  return 0;
}
