// E16 -- durable ingest: the price of fsync, and the group-commit rebate.
//
// Three arms over an identical multi-client commit storm:
//
//   memory        in-memory WAL (no durability) -- the upper bound
//   single-sync   file-backed log, wal_group_commit=false: every commit
//                 pays its own fsync, serialized through the flusher
//   group-commit  file-backed log, batched flusher: all committers waiting
//                 at the sync point share one fsync
//
// Headline claim: at C concurrent committers, group commit recovers >= 3x
// single-sync throughput (the ~150us fsync is amortized across the whole
// commit group) while acknowledging exactly the same durability -- Commit
// returns only after the commit record's batch is on disk. A separate
// single-client deterministic pass proves all three arms converge to
// identical post-drain views, and a recovery sweep times RecoverFromWalDir
// against the retained log-suffix length (no checkpoint = full replay,
// post-checkpoint = image + empty suffix).
//
// Usage:
//   bench_ingest                      full arms, writes BENCH_ingest.json
//   bench_ingest --smoke [baseline]   short run; asserts the >= 3x speedup,
//                                     cross-arm view equality, and baseline
//                                     sanity (perf-smoke label)

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "harness/crash_harness.h"
#include "ivm/checkpoint.h"
#include "ivm/maintenance.h"
#include "ra/net_effect.h"
#include "storage/wal_segment.h"
#include "workload/update_stream.h"

namespace rollview {
namespace bench {
namespace {

std::string FreshDir(const std::string& tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() / ("bench_ingest_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;  // the Db ctor creates it
}

DbOptions ArmOptions(const std::string& wal_dir, bool group_commit) {
  DbOptions options;
  options.wal_dir = wal_dir;
  options.wal_segment_bytes = 1u << 18;
  options.wal_group_commit = group_commit;
  return options;
}

struct IngestResult {
  std::string arm;
  uint64_t commits = 0;
  double ingest_ms = 0;
  double txns_per_s = 0;
  uint64_t syncs = 0;
  uint64_t batches = 0;
  double commits_per_sync = 0;
  obs::MetricsSnapshot snapshot;
};

// The measured storm: `clients` threads each commit `txns_per_client`
// update transactions against disjoint key partitions. Durability cost is
// the only thing that differs between arms.
IngestResult RunIngestArm(const std::string& arm, const DbOptions& options,
                          size_t clients, size_t txns_per_client, int reps) {
  IngestResult best;
  best.arm = arm;
  best.commits = clients * txns_per_client;
  for (int rep = 0; rep < reps; ++rep) {
    std::string dir = options.wal_dir;
    if (!dir.empty()) {
      std::filesystem::remove_all(dir);
    }
    // Registry before Env: the WAL flusher records into registry-owned
    // histograms, so the registry must outlive the engine.
    obs::MetricsRegistry registry;
    Env env(options);
    TwoTableWorkload workload = ValueOrDie(
        TwoTableWorkload::Create(&env.db, /*r_rows=*/400, /*s_rows=*/200,
                                 /*join_domain=*/64, /*seed=*/7),
        "workload");
    env.capture.CatchUp();
    View* view =
        ValueOrDie(env.views.CreateView("V", workload.ViewDef()), "view");
    CheckOk(env.views.Materialize(view), "materialize");

    env.db.wal()->RegisterMetrics(&registry, &env);

    std::vector<std::thread> committers;
    committers.reserve(clients);
    Stopwatch sw;
    for (size_t c = 0; c < clients; ++c) {
      committers.emplace_back([&, c] {
        UpdateStream stream(&env.db,
                            workload.RStream(static_cast<uint32_t>(c + 1),
                                             /*seed=*/100 + c),
                            /*seed=*/100 + c);
        CheckOk(stream.RunTransactions(txns_per_client), "storm txns");
      });
    }
    for (std::thread& t : committers) t.join();
    double ingest_ms = sw.ElapsedMillis();
    double tps = ingest_ms > 0
                     ? static_cast<double>(best.commits) / (ingest_ms / 1000.0)
                     : 0;

    uint64_t syncs = 0, batches = 0;
    if (env.db.wal()->durable()) {
      WalSegmentStore::CountersSnapshot c2 = env.db.wal()->store()->counters();
      syncs = c2.syncs;
      batches = c2.batches;
    }
    // Best-of-reps: the commit sequence is seeded, the wall clock is not.
    if (rep == 0 || tps > best.txns_per_s) {
      best.ingest_ms = ingest_ms;
      best.txns_per_s = tps;
      best.syncs = syncs;
      best.batches = batches;
      best.commits_per_sync =
          syncs > 0 ? static_cast<double>(best.commits) / syncs : 0;
      best.snapshot = registry.Snapshot();
    }
  }
  return best;
}

// Deterministic single-client history: identical seeds through each arm's
// engine, drained to the stable frontier. Every arm must land on the same
// view contents -- durability must never change query answers.
DeltaRows EquivalencePass(const DbOptions& options, Csn* final_csn) {
  if (!options.wal_dir.empty()) {
    std::filesystem::remove_all(options.wal_dir);
  }
  Env env(options);
  TwoTableWorkload workload = ValueOrDie(
      TwoTableWorkload::Create(&env.db, 120, 80, 32, /*seed=*/21),
      "workload");
  env.capture.CatchUp();
  View* view =
      ValueOrDie(env.views.CreateView("V", workload.ViewDef()), "view");
  CheckOk(env.views.Materialize(view), "materialize");
  UpdateStream updates(&env.db, workload.RStream(1, 0x33), 0x33);
  CheckOk(updates.RunTransactions(40), "history");
  env.capture.CatchUp();
  MaintenanceService service(&env.views, view);
  CheckOk(service.Drain(env.db.stable_csn()), "drain");
  DeltaRows oracle = ValueOrDie(
      SnapshotViewState(&env.db, view->resolved, view->mv->csn()), "oracle");
  if (!NetEquivalent(oracle, view->mv->AsDeltaRows())) {
    CheckOk(Status::Internal("drained view diverges from recomputation"),
            "equivalence");
  }
  *final_csn = view->mv->csn();
  return view->mv->AsDeltaRows();
}

struct RecoveryPoint {
  std::string label;
  uint64_t records_replayed = 0;
  uint64_t wal_bytes = 0;
  double recover_ms = 0;
};

uint64_t DirBytes(const std::string& dir) {
  uint64_t total = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.is_regular_file()) total += e.file_size();
  }
  return total;
}

// Recovery time against suffix length: the same seeded history torn down
// (a) mid-flight with no checkpoint -- recovery replays the whole log --
// and (b) right after PublishDurableCheckpoint -- recovery loads the image
// and replays an empty suffix.
RecoveryPoint RunRecoveryPoint(const std::string& label, bool checkpoint) {
  std::string dir = FreshDir("recover_" + label);
  SpjViewDef def;
  {
    Env env(ArmOptions(dir, /*group_commit=*/true));
    TwoTableWorkload workload = ValueOrDie(
        TwoTableWorkload::Create(&env.db, 120, 80, 32, /*seed=*/21),
        "workload");
    def = workload.ViewDef();
    env.capture.CatchUp();
    View* view =
        ValueOrDie(env.views.CreateView("V", workload.ViewDef()), "view");
    CheckOk(env.views.Materialize(view), "materialize");
    UpdateStream updates(&env.db, workload.RStream(1, 0x33), 0x33);
    CheckOk(updates.RunTransactions(40), "history");
    env.capture.CatchUp();
    MaintenanceService service(&env.views, view);
    CheckOk(service.Drain(env.db.stable_csn()), "drain");
    if (checkpoint) {
      CheckOk(PublishDurableCheckpoint(&env.db, &env.views).status(),
              "checkpoint");
    }
  }  // teardown == crash

  RecoveryPoint point;
  point.label = label;
  point.wal_bytes = DirBytes(dir);
  Stopwatch sw;
  RecoveredSystem sys = ValueOrDie(
      RecoverFromWalDir(dir, {{"V", def}}), "recover");
  point.recover_ms = sw.ElapsedMillis();
  point.records_replayed = sys.records_recovered;
  return point;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      baseline_path = argv[i];
    }
  }

  Banner("E16: bench_ingest",
         "Group commit recovers >= 3x single-sync ingest throughput at "
         "concurrent committers, with identical post-drain views and "
         "checkpoint-bounded recovery time.");

  const size_t clients = smoke ? 6 : 8;
  const size_t txns_per_client = smoke ? 50 : 150;
  const int reps = smoke ? 2 : 3;

  IngestResult memory = RunIngestArm(
      "memory", DbOptions{}, clients, txns_per_client, reps);
  IngestResult single = RunIngestArm(
      "single-sync", ArmOptions(FreshDir("single"), /*group_commit=*/false),
      clients, txns_per_client, reps);
  IngestResult group = RunIngestArm(
      "group-commit", ArmOptions(FreshDir("group"), /*group_commit=*/true),
      clients, txns_per_client, reps);

  double speedup =
      single.txns_per_s > 0 ? group.txns_per_s / single.txns_per_s : 0;

  TablePrinter table({"arm", "commits", "ingest_ms", "txns_per_s", "syncs",
                      "commits_per_sync"});
  table.PrintHeader();
  JsonReport report("ingest");
  int failures = 0;
  for (const IngestResult* r : {&memory, &single, &group}) {
    table.PrintRow({r->arm, FmtInt(r->commits), Fmt(r->ingest_ms, 1),
                    Fmt(r->txns_per_s, 0), FmtInt(r->syncs),
                    Fmt(r->commits_per_sync, 2)});
    report.BeginRow();
    RegistryRowEmitter emit(&report, &r->snapshot);
    emit.Str("arm", r->arm);
    emit.Int("clients", clients);
    emit.Int("commits", r->commits);
    emit.Num("ingest_ms", r->ingest_ms, 3);
    emit.Num("txns_per_s", r->txns_per_s, 1);
    emit.Int("syncs", r->syncs);
    emit.Int("batches", r->batches);
    emit.Num("commits_per_sync", r->commits_per_sync, 2);
    emit.Counter("group_commit_batches",
                 "rollview_wal_group_commit_batches_total");
    emit.Gauge("wal_segments", "rollview_wal_segments");
    emit.PercentileMicros("sync_p50_us", "rollview_wal_sync_nanos", {}, 0.5);
    emit.PercentileMicros("sync_p95_us", "rollview_wal_sync_nanos", {}, 0.95);
    emit.Num("speedup_vs_single", r->arm == "group-commit" ? speedup : 0, 2);
  }

  // Cross-arm equivalence: durability must be invisible to query results.
  Csn csn_memory = 0, csn_single = 0, csn_group = 0;
  DeltaRows view_memory = EquivalencePass(DbOptions{}, &csn_memory);
  DeltaRows view_single = EquivalencePass(
      ArmOptions(FreshDir("eq_single"), false), &csn_single);
  DeltaRows view_group = EquivalencePass(
      ArmOptions(FreshDir("eq_group"), true), &csn_group);
  bool views_equal = NetEquivalent(view_memory, view_single) &&
                     NetEquivalent(view_memory, view_group) &&
                     csn_memory == csn_single && csn_single == csn_group;
  if (!views_equal) {
    std::printf("FAIL: post-drain views diverge across durability arms\n");
    failures++;
  }

  // Recovery cost vs retained suffix.
  RecoveryPoint full = RunRecoveryPoint("no-checkpoint", false);
  RecoveryPoint ckpt = RunRecoveryPoint("checkpointed", true);
  TablePrinter rtable({"recovery", "records", "wal_bytes", "recover_ms"});
  rtable.PrintHeader();
  for (const RecoveryPoint* p : {&full, &ckpt}) {
    rtable.PrintRow({p->label, FmtInt(p->records_replayed),
                     FmtInt(p->wal_bytes), Fmt(p->recover_ms, 2)});
    report.BeginRow();
    report.Str("arm", "recovery-" + p->label);
    report.Int("records_replayed", p->records_replayed);
    report.Int("wal_bytes", p->wal_bytes);
    report.Num("recover_ms", p->recover_ms, 3);
  }

  // Structural assertions (both modes).
  if (single.syncs < single.commits) {
    std::printf("FAIL: single-sync arm batched commits (%llu syncs for "
                "%llu commits)\n",
                static_cast<unsigned long long>(single.syncs),
                static_cast<unsigned long long>(single.commits));
    failures++;
  }
  if (group.commits_per_sync <= 1.0) {
    std::printf("FAIL: group-commit arm never batched (commits_per_sync = "
                "%.2f)\n",
                group.commits_per_sync);
    failures++;
  }
  if (memory.syncs != 0) {
    std::printf("FAIL: memory arm recorded fsyncs\n");
    failures++;
  }
  if (speedup < 3.0) {
    std::printf("FAIL: group-commit speedup %.2fx < 3x over single-sync\n",
                speedup);
    failures++;
  }

  if (smoke && !baseline_path.empty()) {
    // The committed baseline must carry every arm; values are
    // timing-dependent and only representative at full-run length.
    std::string needles[] = {"memory", "single-sync", "group-commit",
                             "recovery-no-checkpoint",
                             "recovery-checkpointed"};
    FILE* f = std::fopen(baseline_path.c_str(), "rb");
    if (f == nullptr) {
      std::printf("SMOKE FAIL: cannot open baseline %s\n",
                  baseline_path.c_str());
      failures++;
    } else {
      std::string contents;
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        contents.append(buf, n);
      }
      std::fclose(f);
      for (const std::string& needle : needles) {
        if (contents.find("\"" + needle + "\"") == std::string::npos) {
          std::printf("SMOKE FAIL: baseline %s missing arm %s\n",
                      baseline_path.c_str(), needle.c_str());
          failures++;
        }
      }
    }
  }

  if (!smoke) report.Write();
  std::printf(
      "\nShape: single-sync fsyncs every record alone (commits_per_sync =\n"
      "%.2f); group commit amortizes it across every committer parked at\n"
      "the sync point (commits_per_sync = %.2f), recovering %.2fx\n"
      "throughput. The deterministic pass lands all three arms on\n"
      "net-equivalent views at the same CSN, and recovery cost tracks the\n"
      "retained suffix: a checkpoint collapses replay to the image.\n",
      single.commits_per_sync, group.commits_per_sync, speedup);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace rollview

int main(int argc, char** argv) {
  return rollview::bench::Main(argc, argv);
}
