// E1 -- propagation-query plan shapes (paper Sec. 3.1-3.2).
//
// Claims reproduced:
//  * Equation 1 computes V_{a,b} with 2^n - 1 queries; Equation 2 with n.
//  * Asynchronous ComputeDelta replaces each synchronous query with a
//    forward query plus a recursively compensated subtree; the total query
//    count is bounded (f(n) = n * (1 + f(n-1))) and in practice far smaller
//    because empty delta ranges prune whole subtrees.
//  * All three produce net-equivalent deltas (verified each row).

#include "bench_util.h"
#include "ivm/compute_delta.h"
#include "ra/net_effect.h"

namespace rollview {
namespace bench {
namespace {

// Builds an n-way chain-join workload: T0(k, j0, v), Ti(j{i-1}, ji, v).
struct ChainWorkload {
  std::vector<TableId> tables;
  SpjViewDef def;
};

ChainWorkload MakeChain(Env* env, size_t n, int64_t rows_per_table,
                        int64_t domain, uint64_t seed) {
  ChainWorkload w;
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    Schema schema({Column{"a", ValueType::kInt64},
                   Column{"b", ValueType::kInt64},
                   Column{"v", ValueType::kInt64}});
    TableOptions opts;
    opts.indexed_columns = {0, 1};
    TableId id = ValueOrDie(
        env->db.CreateTable("T" + std::to_string(i), schema, opts), "create");
    w.tables.push_back(id);
    auto txn = env->db.Begin();
    for (int64_t r = 0; r < rows_per_table; ++r) {
      CheckOk(env->db.Insert(txn.get(), id,
                             Tuple{Value(rng.Uniform(0, domain - 1)),
                                   Value(rng.Uniform(0, domain - 1)),
                                   Value(r)}),
              "load");
    }
    CheckOk(env->db.Commit(txn.get()), "load commit");
  }
  std::vector<std::pair<size_t, size_t>> links;
  for (size_t i = 0; i + 1 < n; ++i) links.push_back({1, 0});  // Ti.b = Ti+1.a
  w.def = ChainJoin(w.tables, links);
  return w;
}

void TouchAllTables(Env* env, const ChainWorkload& w, size_t txns_per_table,
                    int64_t domain, uint64_t seed) {
  Rng rng(seed);
  for (TableId id : w.tables) {
    for (size_t t = 0; t < txns_per_table; ++t) {
      auto txn = env->db.Begin();
      CheckOk(env->db.Insert(txn.get(), id,
                             Tuple{Value(rng.Uniform(0, domain - 1)),
                                   Value(rng.Uniform(0, domain - 1)),
                                   Value(int64_t(1000000 + t))}),
              "update");
      CheckOk(env->db.Commit(txn.get()), "update commit");
    }
  }
  env->capture.CatchUp();
}

}  // namespace

void Main() {
  Banner("E1: bench_query_plans",
         "Query counts per maintenance method vs join width n "
         "(Eq.1 = 2^n - 1, Eq.2 = n, async ComputeDelta = forwards + "
         "pruned compensation subtrees). Deltas cross-checked equivalent.");

  TablePrinter table({"n", "eq1_queries", "eq2_queries", "async_queries",
                      "async_skipped", "async_depth", "eq1_rows_in",
                      "eq2_rows_in", "async_rows_in", "equal"});
  table.PrintHeader();

  for (size_t n = 2; n <= 5; ++n) {
    Env env;
    ChainWorkload w = MakeChain(&env, n, /*rows_per_table=*/400,
                                /*domain=*/40, /*seed=*/n);
    env.capture.CatchUp();
    View* view =
        ValueOrDie(env.views.CreateView("V", w.def), "create view");
    CheckOk(env.views.Materialize(view), "materialize");
    Csn a = view->propagate_from.load();

    TouchAllTables(&env, w, /*txns_per_table=*/8, /*domain=*/40,
                   /*seed=*/77 + n);
    Csn b = env.capture.high_water_mark();

    ExecStats eq1_stats, eq2_stats;
    DeltaRows eq1 = ValueOrDie(
        ComputeDeltaEq1Snapshot(&env.db, view->resolved, a, b, &eq1_stats),
        "eq1");
    DeltaRows eq2 = ValueOrDie(
        ComputeDeltaEq2Snapshot(&env.db, view->resolved, a, b, &eq2_stats),
        "eq2");

    QueryRunner runner(&env.views, view);
    ComputeDeltaOp op(&runner);
    CheckOk(op.PropagateInterval(view, a, b), "async");
    DeltaRows async_delta = view->view_delta->Scan(CsnRange{a, b});

    bool equal = NetEquivalent(eq1, eq2) && NetEquivalent(eq2, async_delta);
    table.PrintRow({FmtInt(n), FmtInt(eq1_stats.queries),
                    FmtInt(eq2_stats.queries),
                    FmtInt(runner.stats().queries),
                    FmtInt(op.stats().queries_skipped),
                    FmtInt(op.stats().max_depth),
                    FmtInt(eq1_stats.input_rows),
                    FmtInt(eq2_stats.input_rows),
                    FmtInt(runner.stats().exec.input_rows),
                    equal ? "yes" : "NO!"});
  }
  std::printf(
      "\nNote: Eq.2's n queries need pre-update snapshots (here: MVCC time\n"
      "travel); the paper notes they are otherwise not realizable. Async\n"
      "ComputeDelta needs no snapshots at all -- that is the contribution.\n");
}

}  // namespace bench
}  // namespace rollview

int main() {
  rollview::bench::Main();
  return 0;
}
