// E14 -- steady-state cost of online consistency scrubbing, and the price
// of a heal.
//
// The scrubber buys silent-corruption detection with extra maintenance
// work: every scrub_every_steps propagation steps it S-locks the view,
// snapshots contents + incremental digest, and recomputes a bucket sample.
// The headline claim is that this stays under 5% of drain throughput at
// the default cadence -- robustness that is effectively free next to the
// propagation queries themselves. Three arms over an identical seeded
// backlog:
//
//   scrub-off    scrub_every_steps = 0 (the baseline drain)
//   scrub-on     default cadence/sample; must drain within ~5% of -off
//   scrub-drill  scrub-on, then one injected MV bit flip at quiescence:
//                reports detection -> quarantine -> repair wall time
//
// Usage:
//   bench_scrub                      full arms, writes BENCH_scrub.json
//   bench_scrub --smoke [baseline]   short run; structural assertions +
//                                    baseline sanity (perf-smoke label)

#include <cstring>
#include <string>

#include "bench_util.h"
#include "ivm/maintenance.h"

namespace rollview {
namespace bench {
namespace {

obs::Labels LabelsV() { return {{"view", "V"}}; }

struct ArmResult {
  std::string arm;
  uint64_t txns = 0;
  double drain_ms = 0;
  double rows_per_s = 0;  // view-delta rows landed per drain second
  double heal_ms = 0;     // scrub-drill only
  obs::MetricsSnapshot snapshot;
};

ArmResult RunArm(const std::string& arm, uint64_t scrub_every_steps,
                 bool drill, size_t txns, int reps) {
  ArmResult best;
  best.arm = arm;
  best.txns = txns;
  for (int rep = 0; rep < reps; ++rep) {
    Env env;
    TwoTableWorkload workload = ValueOrDie(
        TwoTableWorkload::Create(&env.db, /*r_rows=*/2000, /*s_rows=*/500,
                                 /*join_domain=*/128, /*seed=*/5),
        "workload");
    env.capture.CatchUp();
    View* view =
        ValueOrDie(env.views.CreateView("V", workload.ViewDef()), "view");
    CheckOk(env.views.Materialize(view), "materialize");

    // Identical seeded backlog in every arm; the drain below is the
    // measured steady state.
    RunTwoTableHistory(&env, workload, txns, /*seed=*/14, /*s_every=*/2);

    MaintenanceService::Options mopts;
    mopts.target_rows_per_query = 64;
    mopts.checkpoint_every_steps = 8;
    mopts.scrub_every_steps = scrub_every_steps;
    obs::MetricsRegistry registry;
    MaintenanceService service(&env.views, view, mopts);
    service.RegisterMetrics(&registry);

    Csn frontier = env.db.stable_csn();
    Stopwatch sw;
    CheckOk(service.Drain(frontier), "drain");
    double drain_ms = sw.ElapsedMillis();

    double heal_ms = 0;
    if (drill) {
      // Quiescent corruption drill: flip one stored bit, then let the
      // scrubber find and heal it. Wall time covers detection (bucket
      // sampling walks to the damaged bucket), quarantine, and the
      // checkpoint + WAL-suffix replay repair.
      if (!view->mv->CorruptRowBit(/*seed=*/29)) {
        CheckOk(Status::Internal("corruption drill found empty MV"), "drill");
      }
      Scrubber* scrubber = service.scrubber();
      Stopwatch heal;
      ScrubOutcome outcome = ScrubOutcome::kClean;
      for (int pass = 0; pass < 8; ++pass) {
        ScrubStats st = scrubber->GetStats();
        if (st.repairs + st.rebuilds > 0) break;
        CheckOk(scrubber->Pass(&outcome), "scrub pass");
      }
      heal_ms = heal.ElapsedMillis();
      ScrubStats st = scrubber->GetStats();
      if (st.repairs + st.rebuilds == 0 || view->quarantined()) {
        CheckOk(Status::Internal("drill did not heal the view"), "drill");
      }
    }

    obs::MetricsSnapshot snap = registry.Snapshot();
    double rows = static_cast<double>(
        snap.CounterValue("rollview_view_delta_rows_total", LabelsV()));
    double rows_per_s = drain_ms > 0 ? rows / (drain_ms / 1000.0) : 0;
    // Best-of-reps: drain work is deterministic, wall clock is not.
    if (rep == 0 || rows_per_s > best.rows_per_s) {
      best.drain_ms = drain_ms;
      best.rows_per_s = rows_per_s;
      best.heal_ms = heal_ms;
      best.snapshot = std::move(snap);
    }
  }
  return best;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      baseline_path = argv[i];
    }
  }

  Banner("E14: bench_scrub",
         "Online consistency scrubbing at the default cadence costs <= ~5% "
         "of drain throughput, and a corruption drill heals in one sweep.");

  const size_t txns = smoke ? 120 : 600;
  const int reps = smoke ? 1 : 3;
  const uint64_t cadence = 4;  // scrub every 4 propagation steps

  ArmResult off = RunArm("scrub-off", 0, /*drill=*/false, txns, reps);
  ArmResult on = RunArm("scrub-on", cadence, /*drill=*/false, txns, reps);
  ArmResult drill = RunArm("scrub-drill", cadence, /*drill=*/true, txns, reps);

  double overhead_pct =
      off.rows_per_s > 0
          ? (off.rows_per_s - on.rows_per_s) / off.rows_per_s * 100.0
          : 0;

  TablePrinter table({"arm", "txns", "drain_ms", "rows_per_s", "passes",
                      "buckets", "mismatch", "repairs", "heal_ms"});
  table.PrintHeader();
  JsonReport report("scrub");
  int failures = 0;
  for (const ArmResult* r : {&off, &on, &drill}) {
    uint64_t passes =
        r->snapshot.CounterValue("rollview_scrub_passes_total", LabelsV());
    uint64_t buckets = r->snapshot.CounterValue(
        "rollview_scrub_buckets_checked_total", LabelsV());
    uint64_t mismatches =
        r->snapshot.CounterValue("rollview_scrub_mismatches_total", LabelsV());
    uint64_t repairs = r->snapshot.CounterValue(
        "rollview_scrub_repairs_total", {{"view", "V"}, {"kind", "replay"}});
    uint64_t rebuilds = r->snapshot.CounterValue(
        "rollview_scrub_repairs_total", {{"view", "V"}, {"kind", "rebuild"}});
    table.PrintRow({r->arm, FmtInt(r->txns), Fmt(r->drain_ms, 1),
                    Fmt(r->rows_per_s, 0), FmtInt(passes), FmtInt(buckets),
                    FmtInt(mismatches), FmtInt(repairs + rebuilds),
                    Fmt(r->heal_ms, 2)});

    report.BeginRow();
    RegistryRowEmitter emit(&report, &r->snapshot);
    emit.Str("arm", r->arm);
    emit.Int("txns", r->txns);
    emit.Num("drain_ms", r->drain_ms, 3);
    emit.Num("rows_per_s", r->rows_per_s, 1);
    emit.Counter("scrub_passes", "rollview_scrub_passes_total", LabelsV());
    emit.Counter("buckets_checked", "rollview_scrub_buckets_checked_total",
                 LabelsV());
    emit.Counter("mismatches", "rollview_scrub_mismatches_total", LabelsV());
    emit.Counter("deep_checks", "rollview_scrub_deep_checks_total",
                 LabelsV());
    emit.Counter("quarantines", "rollview_scrub_quarantines_total",
                 LabelsV());
    emit.Counter("repairs_replay", "rollview_scrub_repairs_total",
                 {{"view", "V"}, {"kind", "replay"}});
    emit.Counter("repairs_rebuild", "rollview_scrub_repairs_total",
                 {{"view", "V"}, {"kind", "rebuild"}});
    emit.Gauge("quarantined", "rollview_view_quarantined", LabelsV());
    emit.Num("heal_ms", r->heal_ms, 3);
    emit.Num("overhead_pct", r->arm == "scrub-on" ? overhead_pct : 0, 2);
  }

  // Structural assertions (both modes): the measured arms actually did
  // what their labels claim.
  if (on.snapshot.CounterValue("rollview_scrub_passes_total", LabelsV()) ==
      0) {
    std::printf("FAIL: scrub-on arm recorded zero scrub passes\n");
    failures++;
  }
  if (off.snapshot.CounterValue("rollview_scrub_passes_total", LabelsV()) !=
      0) {
    std::printf("FAIL: scrub-off arm recorded scrub passes\n");
    failures++;
  }
  if (on.snapshot.CounterValue("rollview_scrub_mismatches_total",
                               LabelsV()) != 0 ||
      on.snapshot.CounterValue("rollview_scrub_quarantines_total",
                               LabelsV()) != 0) {
    std::printf("FAIL: clean scrub-on arm reported mismatches/quarantines\n");
    failures++;
  }
  if (drill.snapshot.CounterValue("rollview_scrub_mismatches_total",
                                  LabelsV()) == 0) {
    std::printf("FAIL: drill arm detected no mismatch\n");
    failures++;
  }

  if (smoke && !baseline_path.empty()) {
    // The committed baseline must carry all three arms; values are
    // timing-dependent and checked only at full-run length.
    std::string needles[] = {"scrub-off", "scrub-on", "scrub-drill"};
    FILE* f = std::fopen(baseline_path.c_str(), "rb");
    if (f == nullptr) {
      std::printf("SMOKE FAIL: cannot open baseline %s\n",
                  baseline_path.c_str());
      failures++;
    } else {
      std::string contents;
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        contents.append(buf, n);
      }
      std::fclose(f);
      for (const std::string& needle : needles) {
        if (contents.find("\"" + needle + "\"") == std::string::npos) {
          std::printf("SMOKE FAIL: baseline %s missing arm %s\n",
                      baseline_path.c_str(), needle.c_str());
          failures++;
        }
      }
    }
  }

  if (!smoke) report.Write();
  std::printf(
      "\nShape: scrub-on drains within ~5%% of scrub-off (overhead_pct =\n"
      "%.2f%% this run; wall-clock noise dominates at smoke length) while\n"
      "sampling digest buckets every %llu steps with zero false positives.\n"
      "The drill arm detects an injected bit flip, quarantines, and heals\n"
      "by checkpoint + WAL-suffix replay in heal_ms -- milliseconds, not a\n"
      "rebuild.\n",
      overhead_pct, static_cast<unsigned long long>(cadence));
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace rollview

int main(int argc, char** argv) {
  return rollview::bench::Main(argc, argv);
}
