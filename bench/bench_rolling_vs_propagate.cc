// E6 -- rolling propagation vs the Propagate process (paper Sec. 3.4).
//
// "Rolling propagation also tends to generate fewer, larger propagation
//  queries than Propagate does. Although both algorithms are based on
//  ComputeDelta, rolling propagation defers the compensations for some
//  forward queries and combines them with compensations for later queries.
//  As a result, it makes fewer calls to ComputeDelta than Propagate does."
//
// Same captured history, same interval length; compare executed query
// counts, compensation work, and wall time across interval sizes.

#include "bench_util.h"

namespace rollview {
namespace bench {

void Main() {
  Banner("E6: bench_rolling_vs_propagate",
         "Executed propagation queries and wall time: Figure 5 Propagate "
         "(eager per-interval compensation) vs Figure 10 RollingPropagate "
         "(deferred, merged compensation), equal history and intervals.");

  Env env;
  TwoTableWorkload workload = ValueOrDie(
      TwoTableWorkload::Create(&env.db, /*r_rows=*/10000, /*s_rows=*/4000,
                               /*join_domain=*/512, /*seed=*/21),
      "workload");
  env.capture.CatchUp();
  View* base_view =
      ValueOrDie(env.views.CreateView("V0", workload.ViewDef()), "view");
  CheckOk(env.views.Materialize(base_view), "materialize");
  Csn t0 = base_view->propagate_from.load();
  // Both tables update at comparable rates -> compensation work matters.
  RunTwoTableHistory(&env, workload, /*txns=*/800, /*seed=*/22,
                     /*s_every=*/1);
  Csn t_end = env.capture.high_water_mark();
  std::printf("history: %llu commits\n\n",
              static_cast<unsigned long long>(t_end - t0));

  TablePrinter table({"interval", "method", "queries", "fwd", "comp",
                      "rows_in", "vdelta_rows", "ms"});
  table.PrintHeader();

  for (Csn interval : {Csn(8), Csn(32), Csn(128)}) {
    {
      View* v = ValueOrDie(
          env.views.CreateView("Vp" + std::to_string(interval),
                               workload.ViewDef()),
          "view");
      v->propagate_from.store(t0);
      v->delta_hwm.store(t0);
      Propagator prop(&env.views, v,
                      std::make_unique<FixedInterval>(interval));
      Stopwatch sw;
      CheckOk(prop.RunUntil(t_end), "propagate");
      const RunnerStats& rs = prop.runner()->stats();
      table.PrintRow({FmtInt(interval), "propagate", FmtInt(rs.queries),
                      FmtInt(rs.forward_queries), FmtInt(rs.comp_queries),
                      FmtInt(rs.exec.input_rows), FmtInt(rs.rows_appended),
                      Fmt(sw.ElapsedMillis())});
    }
    for (CompensationMode mode :
         {CompensationMode::kDeferredFigure10, CompensationMode::kFrontier}) {
      bool deferred = mode == CompensationMode::kDeferredFigure10;
      View* v = ValueOrDie(
          env.views.CreateView(
              std::string(deferred ? "Vrd" : "Vrf") + std::to_string(interval),
              workload.ViewDef()),
          "view");
      v->propagate_from.store(t0);
      v->delta_hwm.store(t0);
      RollingOptions options;
      options.compensation = mode;
      RollingPropagator prop(&env.views, v, interval, options);
      Stopwatch sw;
      CheckOk(prop.RunUntil(t_end), "rolling");
      const RunnerStats& rs = prop.runner()->stats();
      table.PrintRow({FmtInt(interval),
                      deferred ? "roll-defer" : "roll-front",
                      FmtInt(rs.queries), FmtInt(rs.forward_queries),
                      FmtInt(rs.comp_queries), FmtInt(rs.exec.input_rows),
                      FmtInt(rs.rows_appended), Fmt(sw.ElapsedMillis())});
    }
  }
  std::printf(
      "\nShape: equal forward-query counts, but deferred rolling merges\n"
      "overlap compensation across strips, executing fewer compensation\n"
      "queries than Propagate for the same coverage; the gap widens as\n"
      "intervals shrink. (Deferred merging is exact for 2-relation views\n"
      "only -- see DESIGN.md section 8; frontier mode, exact for all join\n"
      "widths, compensates each strip immediately and sits near Propagate\n"
      "in query count.)\n");
}

}  // namespace bench
}  // namespace rollview

int main() {
  rollview::bench::Main();
  return 0;
}
