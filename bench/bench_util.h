// Copyright 2026 The rollview Authors.
//
// Shared benchmark scaffolding: engine bundles, seeded histories, wall-clock
// timing, and fixed-width table printing so each bench binary emits a
// paper-style table (see EXPERIMENTS.md for the experiment index).

#ifndef ROLLVIEW_BENCH_BENCH_UTIL_H_
#define ROLLVIEW_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "capture/log_capture.h"
#include "ivm/apply.h"
#include "ivm/baselines.h"
#include "ivm/propagate.h"
#include "ivm/rolling.h"
#include "ivm/view_manager.h"
#include "obs/registry.h"
#include "workload/schemas.h"

namespace rollview {
namespace bench {

// Aborts the benchmark on error -- benches assume a working build.
void CheckOk(const Status& s, const char* what);

template <typename T>
T ValueOrDie(Result<T> r, const char* what) {
  CheckOk(r.status(), what);
  return std::move(r).value();
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMillis() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
               d)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Engine + capture + views bundle.
struct Env {
  Env() : capture(&db), views(&db, &capture) {}
  explicit Env(const DbOptions& options)
      : db(options), capture(&db), views(&db, &capture) {}
  Db db;
  LogCapture capture;
  ViewManager views;
};

// Runs `txns` update transactions against R (and every `s_every`-th round
// also against S) of a TwoTableWorkload, then drains capture.
void RunTwoTableHistory(Env* env, const TwoTableWorkload& workload,
                        size_t txns, uint64_t seed, size_t s_every = 2);

// Fixed-width table printing.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns, int width = 14);
  void PrintHeader() const;
  void PrintRow(const std::vector<std::string>& cells) const;

 private:
  std::vector<std::string> columns_;
  int width_;
};

std::string Fmt(double v, int precision = 2);
std::string FmtInt(uint64_t v);

// Prints the standard experiment banner.
void Banner(const char* experiment_id, const char* claim);

// Machine-readable result sink alongside the printed table: accumulates
// one flat object per measured row and writes
// {"experiment": ..., "rows": [...]} to BENCH_<name>.json in the working
// directory, so sweeps can be plotted/diffed without scraping stdout.
class JsonReport {
 public:
  explicit JsonReport(std::string name);

  // Starts a new row; subsequent Num/Int/Str calls fill it.
  void BeginRow();
  void Num(const std::string& key, double value, int precision = 4);
  void Int(const std::string& key, uint64_t value);
  void Str(const std::string& key, const std::string& value);

  // Writes BENCH_<name>.json and prints the path; returns false (after
  // printing a warning) if the file cannot be written.
  bool Write() const;

  // Stamps a "serializer": "registry-snapshot-v1" line into the written
  // JSON, declaring that the rows were produced through RegistryRowEmitter
  // (i.e. sourced from a MetricsRegistry snapshot, not bespoke counters).
  // scripts/regen_benches.sh refuses baselines that lack the marker.
  void MarkRegistrySerializer() { registry_serializer_ = true; }

 private:
  std::string name_;
  bool registry_serializer_ = false;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

// The one row serializer every bench shares: emits row fields into a
// JsonReport sourced from an obs::MetricsSnapshot, mapping each JSON key to
// a (metric name, label set) pair from the unified telemetry schema
// (ALGORITHMS.md section 10). Constructing one marks the report as
// registry-serialized. Plain Int/Num/Str passthroughs let bench-local
// values (wall-clock times, sweep parameters) interleave with
// registry-sourced counters in a single stable key order.
class RegistryRowEmitter {
 public:
  RegistryRowEmitter(JsonReport* report, const obs::MetricsSnapshot* snapshot)
      : report_(report), snapshot_(snapshot) {
    report_->MarkRegistrySerializer();
  }

  // Swaps the snapshot rows are sourced from (one emitter, many arms).
  void set_snapshot(const obs::MetricsSnapshot* snapshot) {
    snapshot_ = snapshot;
  }

  // Counter value for an exact label set; missing samples emit 0.
  void Counter(const std::string& json_key, const std::string& metric,
               const obs::Labels& labels = {});
  // Sum of a counter across all of its label sets.
  void CounterTotal(const std::string& json_key, const std::string& metric);
  // Sum of a counter over an explicit list of label sets (e.g. the
  // transient outcomes of both maintenance drivers).
  void CounterSum(const std::string& json_key, const std::string& metric,
                  const std::vector<obs::Labels>& label_sets);
  void Gauge(const std::string& json_key, const std::string& metric,
             const obs::Labels& labels = {});
  // Histogram percentile as integer microseconds (summaries store
  // nanoseconds); emits 0 when the metric is absent. `q` must be one of
  // the stored summary quantiles: 0.5, 0.95 or 0.99.
  void PercentileMicros(const std::string& json_key, const std::string& metric,
                        const obs::Labels& labels, double q);

  // Bench-local passthroughs.
  void Int(const std::string& json_key, uint64_t value) {
    report_->Int(json_key, value);
  }
  void Num(const std::string& json_key, double value, int precision = 4) {
    report_->Num(json_key, value, precision);
  }
  void Str(const std::string& json_key, const std::string& value) {
    report_->Str(json_key, value);
  }

 private:
  JsonReport* report_;
  const obs::MetricsSnapshot* snapshot_;
};

}  // namespace bench
}  // namespace rollview

#endif  // ROLLVIEW_BENCH_BENCH_UTIL_H_
