// Copyright 2026 The rollview Authors.
//
// Shared benchmark scaffolding: engine bundles, seeded histories, wall-clock
// timing, and fixed-width table printing so each bench binary emits a
// paper-style table (see EXPERIMENTS.md for the experiment index).

#ifndef ROLLVIEW_BENCH_BENCH_UTIL_H_
#define ROLLVIEW_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "capture/log_capture.h"
#include "ivm/apply.h"
#include "ivm/baselines.h"
#include "ivm/propagate.h"
#include "ivm/rolling.h"
#include "ivm/view_manager.h"
#include "workload/schemas.h"

namespace rollview {
namespace bench {

// Aborts the benchmark on error -- benches assume a working build.
void CheckOk(const Status& s, const char* what);

template <typename T>
T ValueOrDie(Result<T> r, const char* what) {
  CheckOk(r.status(), what);
  return std::move(r).value();
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMillis() const {
    auto d = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
               d)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Engine + capture + views bundle.
struct Env {
  Env() : capture(&db), views(&db, &capture) {}
  Db db;
  LogCapture capture;
  ViewManager views;
};

// Runs `txns` update transactions against R (and every `s_every`-th round
// also against S) of a TwoTableWorkload, then drains capture.
void RunTwoTableHistory(Env* env, const TwoTableWorkload& workload,
                        size_t txns, uint64_t seed, size_t s_every = 2);

// Fixed-width table printing.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns, int width = 14);
  void PrintHeader() const;
  void PrintRow(const std::vector<std::string>& cells) const;

 private:
  std::vector<std::string> columns_;
  int width_;
};

std::string Fmt(double v, int precision = 2);
std::string FmtInt(uint64_t v);

// Prints the standard experiment banner.
void Banner(const char* experiment_id, const char* claim);

// Machine-readable result sink alongside the printed table: accumulates
// one flat object per measured row and writes
// {"experiment": ..., "rows": [...]} to BENCH_<name>.json in the working
// directory, so sweeps can be plotted/diffed without scraping stdout.
class JsonReport {
 public:
  explicit JsonReport(std::string name);

  // Starts a new row; subsequent Num/Int/Str calls fill it.
  void BeginRow();
  void Num(const std::string& key, double value, int precision = 4);
  void Int(const std::string& key, uint64_t value);
  void Str(const std::string& key, const std::string& value);

  // Writes BENCH_<name>.json and prints the path; returns false (after
  // printing a warning) if the file cannot be written.
  bool Write() const;

 private:
  std::string name_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

}  // namespace bench
}  // namespace rollview

#endif  // ROLLVIEW_BENCH_BENCH_UTIL_H_
