// E9 -- supervised maintenance under an injected fault storm.
//
// The maintenance drivers of Figure 11 run unattended for days in the
// paper's deployment story, so a transient failure (deadlock-victim abort,
// lock wait timeout, capture lag) must cost backoff time, not the driver.
// This bench arms a seeded FaultInjector against the propagation and apply
// transactions at increasing fault rates while paced updaters run clean,
// then quiesces and reports what recovery cost: injected faults, transient
// errors absorbed, recoveries, time spent backing off, final staleness at
// drain, and the drivers' health -- which must never leave the
// kRunning/kDegraded band (zero permanent deaths).

#include <thread>

#include "bench_util.h"
#include "common/fault_injector.h"
#include "harness/worker.h"
#include "ivm/maintenance.h"

namespace rollview {
namespace bench {
namespace {

constexpr int kRunMillis = 800;
constexpr double kUpdaterRate = 200.0;  // txns/sec per updater
constexpr int kUpdaters = 2;

struct RowResult {
  double abort_pct = 0;
  uint64_t injected = 0;  // faults fired (all kinds)
  // Maintenance-side counters come back as a registry snapshot (scraped at
  // quiescence, after Stop) and flow to JSON through the shared
  // RegistryRowEmitter; the scalar fields cover only bench-local values and
  // the printed table.
  obs::MetricsSnapshot snapshot;
  uint64_t queries = 0;
  uint64_t transient_errors = 0;
  uint64_t recoveries = 0;
  uint64_t degraded_entries = 0;
  double backoff_ms = 0;
  double drain_ms = 0;  // quiescence time with faults still armed
  std::string health;
};

// Both drivers' label sets for one metric, so totals sum in one call.
std::vector<obs::Labels> BothDrivers() {
  return {{{"view", "V"}, {"driver", "propagate"}},
          {{"view", "V"}, {"driver", "apply"}}};
}

uint64_t SumDrivers(const obs::MetricsSnapshot& snap, const std::string& name,
                    const char* extra_key = nullptr,
                    const char* extra_value = nullptr) {
  uint64_t sum = 0;
  for (obs::Labels labels : BothDrivers()) {
    if (extra_key != nullptr) labels.emplace_back(extra_key, extra_value);
    sum += snap.CounterValue(name, labels);
  }
  return sum;
}

RowResult RunStorm(double abort_probability) {
  Env env;
  FaultInjector::Options fopts;
  fopts.seed = 0xfa017;
  fopts.commit_abort_probability = abort_probability;
  fopts.lock_busy_probability = abort_probability / 2;
  fopts.wal_error_probability = abort_probability / 5;
  fopts.capture_lag_probability = 0.01;
  fopts.capture_lag_polls = 10;
  FaultInjector fi(fopts);
  env.db.SetFaultInjector(&fi);

  TwoTableWorkload workload = ValueOrDie(
      TwoTableWorkload::Create(&env.db, /*r_rows=*/2000, /*s_rows=*/500,
                               /*join_domain=*/128, /*seed=*/5),
      "workload");
  env.capture.CatchUp();
  View* view =
      ValueOrDie(env.views.CreateView("V", workload.ViewDef()), "view");
  CheckOk(env.views.Materialize(view), "materialize");
  env.capture.Start();

  MaintenanceService::Options mopts;
  mopts.runner.max_retries = 0;  // the supervisor owns the retry policy
  mopts.runner.capture_wait_timeout = std::chrono::milliseconds(50);
  mopts.target_rows_per_query = 64;
  mopts.backoff.initial = std::chrono::microseconds(100);
  mopts.backoff.max = std::chrono::microseconds(5000);
  // Declared before the service: the service's destructor deregisters its
  // callbacks, so the registry must outlive it.
  obs::MetricsRegistry registry;
  MaintenanceService service(&env.views, view, mopts);
  service.RegisterMetrics(&registry);
  service.Start();

  std::vector<std::unique_ptr<UpdateStream>> streams;
  std::vector<std::unique_ptr<Worker>> updaters;
  for (int i = 0; i < kUpdaters; ++i) {
    streams.push_back(std::make_unique<UpdateStream>(
        &env.db,
        i == 0 ? workload.SStream(i + 1, 700 + i)
               : workload.RStream(i + 1, 700 + i),
        700 + i));
    UpdateStream* s = streams.back().get();
    Worker::Options opts;
    opts.name = "updater";
    opts.target_ops_per_sec = kUpdaterRate;
    updaters.push_back(
        std::make_unique<Worker>([s] { return s->RunTransaction(); }, opts));
  }
  for (auto& u : updaters) u->Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(kRunMillis));
  for (auto& u : updaters) CheckOk(u->Join(), "updater");

  // Quiesce with the injector still armed: the drain time includes every
  // backoff the storm forces on the way to the frontier.
  Csn frontier = env.db.stable_csn();
  Stopwatch drain_timer;
  CheckOk(service.Drain(frontier), "drain");
  double drain_ms = drain_timer.ElapsedMillis();
  CheckOk(service.Stop(), "stop");

  RowResult out;
  out.abort_pct = abort_probability * 100.0;
  FaultInjector::Stats fs = fi.GetStats();
  out.injected = fs.injected_aborts + fs.injected_busy +
                 fs.injected_wal_errors + fs.lag_polls;
  out.snapshot = registry.Snapshot();
  out.queries = out.snapshot.CounterTotal("rollview_queries_total");
  out.transient_errors = SumDrivers(out.snapshot, "rollview_step_total",
                                    "outcome", "transient_error");
  out.recoveries =
      SumDrivers(out.snapshot, "rollview_driver_recoveries_total");
  out.degraded_entries =
      SumDrivers(out.snapshot, "rollview_driver_degraded_total");
  out.backoff_ms = static_cast<double>(SumDrivers(
                       out.snapshot, "rollview_driver_backoff_nanos_total")) /
                   1e6;
  out.drain_ms = drain_ms;
  // Worst health observed at the end; Stop() left both drivers kStopped,
  // so report what Stop() returned instead: OK means neither died.
  out.health = service.last_error().ok() ? "clean" : "recovered";
  if (!service.last_error().ok() &&
      !service.last_error().IsTransient()) {
    out.health = "FAILED";
  }
  env.db.SetFaultInjector(nullptr);
  return out;
}

void Main() {
  Banner("E9: bench_fault_recovery",
         "Supervised maintenance drivers under a seeded fault storm: "
         "transient aborts/timeouts cost backoff time, never the driver. "
         "HWM reaches the update frontier at quiescence at every rate.");

  TablePrinter table({"abort_pct", "injected", "queries", "transients",
                      "recoveries", "degraded", "backoff_ms", "drain_ms",
                      "outcome"},
                     12);
  table.PrintHeader();
  JsonReport report("fault_recovery");
  for (double p : {0.0, 0.05, 0.10, 0.25, 0.50}) {
    RowResult r = RunStorm(p);
    table.PrintRow({Fmt(r.abort_pct, 0), FmtInt(r.injected),
                    FmtInt(r.queries), FmtInt(r.transient_errors),
                    FmtInt(r.recoveries), FmtInt(r.degraded_entries),
                    Fmt(r.backoff_ms, 2), Fmt(r.drain_ms, 1), r.health});
    report.BeginRow();
    RegistryRowEmitter emit(&report, &r.snapshot);
    emit.Num("abort_pct", r.abort_pct, 0);
    emit.Int("injected", r.injected);
    emit.CounterTotal("queries", "rollview_queries_total");
    emit.CounterSum(
        "transient_errors", "rollview_step_total",
        {{{"view", "V"}, {"driver", "propagate"}, {"outcome", "transient_error"}},
         {{"view", "V"}, {"driver", "apply"}, {"outcome", "transient_error"}}});
    emit.CounterSum("recoveries", "rollview_driver_recoveries_total",
                    BothDrivers());
    emit.CounterSum("degraded_entries", "rollview_driver_degraded_total",
                    BothDrivers());
    emit.Num("backoff_ms", r.backoff_ms, 3);
    emit.Num("drain_ms", r.drain_ms, 3);
    emit.Str("outcome", r.health);
  }
  report.Write();
  std::printf(
      "\nShape: injected faults and absorbed transients rise together and\n"
      "recoveries track them; backoff time grows with the fault rate while\n"
      "the drain still reaches the frontier -- 'recovered' means the\n"
      "drivers saw faults and survived, 'FAILED' (never expected) would\n"
      "mean a permanent death. Updaters run clean throughout: injection\n"
      "is scoped to the maintenance transactions.\n");
}

}  // namespace
}  // namespace bench
}  // namespace rollview

int main() {
  rollview::bench::Main();
  return 0;
}
