#include "bench_util.h"

#include <cstdlib>

namespace rollview {
namespace bench {

void CheckOk(const Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "BENCH FATAL (%s): %s\n", what,
                 s.ToString().c_str());
    std::abort();
  }
}

void RunTwoTableHistory(Env* env, const TwoTableWorkload& workload,
                        size_t txns, uint64_t seed, size_t s_every) {
  UpdateStream r_stream(&env->db, workload.RStream(seed % 1000 + 1, seed),
                        seed);
  UpdateStream s_stream(&env->db,
                        workload.SStream(seed % 1000 + 500, seed + 1),
                        seed + 1);
  for (size_t i = 0; i < txns; ++i) {
    CheckOk(r_stream.RunTransaction(), "R update");
    if (s_every != 0 && i % s_every == 0) {
      CheckOk(s_stream.RunTransaction(), "S update");
    }
  }
  env->capture.CatchUp();
}

TablePrinter::TablePrinter(std::vector<std::string> columns, int width)
    : columns_(std::move(columns)), width_(width) {}

void TablePrinter::PrintHeader() const {
  for (const std::string& c : columns_) {
    std::printf("%-*s", width_, c.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (int j = 0; j < width_ - 2; ++j) std::printf("-");
    std::printf("  ");
  }
  std::printf("\n");
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  for (const std::string& c : cells) {
    std::printf("%-*s", width_, c.c_str());
  }
  std::printf("\n");
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FmtInt(uint64_t v) { return std::to_string(v); }

JsonReport::JsonReport(std::string name) : name_(std::move(name)) {}

void JsonReport::BeginRow() { rows_.emplace_back(); }

void JsonReport::Num(const std::string& key, double value, int precision) {
  rows_.back().emplace_back(key, Fmt(value, precision));
}

void JsonReport::Int(const std::string& key, uint64_t value) {
  rows_.back().emplace_back(key, std::to_string(value));
}

void JsonReport::Str(const std::string& key, const std::string& value) {
  std::string quoted = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  rows_.back().emplace_back(key, quoted);
}

bool JsonReport::Write() const {
  std::string path = "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"experiment\": \"%s\",\n", name_.c_str());
  if (registry_serializer_) {
    // Baseline readers skip this line (no row brace, mentions no row keys);
    // regen_benches.sh greps for it to prove the shared serializer ran.
    std::fprintf(f, "  \"serializer\": \"registry-snapshot-v1\",\n");
  }
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows_.size(); ++i) {
    std::fprintf(f, "    {");
    for (size_t j = 0; j < rows_[i].size(); ++j) {
      std::fprintf(f, "%s\"%s\": %s", j == 0 ? "" : ", ",
                   rows_[i][j].first.c_str(), rows_[i][j].second.c_str());
    }
    std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
  return true;
}

void RegistryRowEmitter::Counter(const std::string& json_key,
                                 const std::string& metric,
                                 const obs::Labels& labels) {
  report_->Int(json_key, snapshot_->CounterValue(metric, labels));
}

void RegistryRowEmitter::CounterTotal(const std::string& json_key,
                                      const std::string& metric) {
  report_->Int(json_key, snapshot_->CounterTotal(metric));
}

void RegistryRowEmitter::CounterSum(
    const std::string& json_key, const std::string& metric,
    const std::vector<obs::Labels>& label_sets) {
  uint64_t sum = 0;
  for (const obs::Labels& labels : label_sets) {
    sum += snapshot_->CounterValue(metric, labels);
  }
  report_->Int(json_key, sum);
}

void RegistryRowEmitter::Gauge(const std::string& json_key,
                               const std::string& metric,
                               const obs::Labels& labels) {
  report_->Int(json_key,
               static_cast<uint64_t>(snapshot_->GaugeValue(metric, labels)));
}

void RegistryRowEmitter::PercentileMicros(const std::string& json_key,
                                          const std::string& metric,
                                          const obs::Labels& labels, double q) {
  const obs::HistogramSummary* h = snapshot_->Histogram(metric, labels);
  uint64_t nanos = 0;
  if (h != nullptr) {
    nanos = q <= 0.5 ? h->p50 : (q <= 0.95 ? h->p95 : h->p99);
  }
  report_->Int(json_key, nanos / 1000);
}

void Banner(const char* experiment_id, const char* claim) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n%s\n", experiment_id, claim);
  std::printf("==============================================================="
              "=================\n");
}

}  // namespace bench
}  // namespace rollview
