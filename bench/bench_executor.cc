// E11 -- executor hot-path cost: zero-copy scans + the snapshot-keyed join
// build cache.
//
// Every propagation query used to deep-copy every base tuple it touched and
// rebuild the build-side hash table per query. With the BuildCache, all
// queries at the same (table, last-change CSN, join columns, pushed
// predicate) share one immutable build and borrow its tuples in place.
// This bench runs the E2 interval-tuning workload twice per sweep point --
// cache off (the old behavior) and cache on -- and reports per-query wall
// time, copy vs borrow traffic, and cache hit rates.
//
// The measured view is sigma(R |><| S) with range cuts on the payload
// columns: 1/8-selective on R's rval and 1/1024-selective on S's sval
// (rval/sval are uniform 63-bit values, so the cuts are exact). The
// selection is what the cache's predicate-fingerprint keying exists for:
// without the cache, every propagation query probes the join index and
// re-filters every match, discarding 1023/1024 of the fetched S rows; with
// it, the filtered build is computed once per snapshot and every later
// query probes only admitted rows, borrowing them zero-copy.
//
// Three arms per sweep point:
//   off       interpreted executor, build cache off (the oldest behavior)
//   on        interpreted executor, snapshot-keyed build cache on
//   compiled  compiled delta programs + materialized half-join views for
//             forward queries (ra/delta_program.h); compensations and the
//             build cache behave as in `on`
//
// Modes:
//   bench_executor                      full sweep, writes BENCH_executor.json;
//                                       asserts the compiled arm >= 2x the
//                                       interpreted cache-on arm at the
//                                       smallest interval
//   bench_executor --smoke [baseline]   one sweep point; when a committed
//                                       BENCH_executor.json path is given,
//                                       exits nonzero if deterministic
//                                       counters drift from it or the
//                                       cache-on / compiled speedup floors
//                                       are missed (the perf-smoke ctest
//                                       label).

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "ivm/view_def.h"
#include "ra/build_cache.h"
#include "ra/expr.h"

namespace rollview {
namespace bench {

namespace {

// rval/sval are MixKey outputs, uniform over [0, 2^63), so a range cut has
// exact selectivity: admit 1/8 of R rows and 1/1024 of S rows. The asymmetry
// is deliberate -- delta-driven probes into S fetch `fanout` matches per
// driving row and the S cut then discards 1023/1024 of them, which is the work
// a cached filtered build eliminates. Concatenated-tuple layout is
// R(rkey,jkey,rval) then S(skey,jkey,sval): rval is column 2, sval column 5.
constexpr int64_t kRCut = int64_t{1} << 60;  // 2^63 / 8
constexpr int64_t kSCut = int64_t{1} << 53;  // 2^63 / 1024

SpjViewDef SelectiveViewDef(const TwoTableWorkload& workload) {
  SpjViewDef def = workload.ViewDef();
  def.selection =
      Expr::And(Expr::Compare(Expr::CmpOp::kLt, Expr::Column(2),
                              Expr::Literal(Value(kRCut))),
                Expr::Compare(Expr::CmpOp::kLt, Expr::Column(5),
                              Expr::Literal(Value(kSCut))));
  return def;
}

struct PointResult {
  std::string arm;  // "off" | "on" | "compiled"
  Csn interval = 0;
  // Every counter below is read back out of the registry snapshot -- the
  // one serializer path shared by all benches -- not from bespoke stats
  // plumbing. The scalar copies exist for the table printer, the
  // cross-repetition determinism check, and the smoke baseline diff.
  std::string view_name;
  obs::MetricsSnapshot snapshot;
  uint64_t queries = 0;
  double total_ms = 0;
  double mean_q_us = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t rows_copied = 0;
  uint64_t rows_borrowed = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double build_ms = 0;
  double exec_q_us = 0;  // mean time inside JoinExecutor::Execute per query
  uint64_t compiled_queries = 0;
  uint64_t hj_hits = 0;
  uint64_t hj_misses = 0;
};

struct ArmConfig {
  const char* name;
  bool cache_on;
  bool compiled;
};
constexpr ArmConfig kArms[] = {
    {"off", false, false},
    {"on", true, false},
    {"compiled", true, true},
};
constexpr int kNumArms = 3;

PointResult RunPoint(Env* env, const TwoTableWorkload& workload, Csn t0,
                     Csn t_end, Csn interval, const ArmConfig& arm,
                     int point_id) {
  // Each sweep point starts cold so points (and the smoke subset) are
  // self-contained and exactly reproducible.
  if (env->db.build_cache() != nullptr) env->db.build_cache()->Clear();

  View* view = ValueOrDie(
      env->views.CreateView("V_e11_" + std::to_string(point_id),
                            SelectiveViewDef(workload)),
      "view");
  view->propagate_from.store(t0);
  view->delta_hwm.store(t0);

  PropagatorOptions opts;
  opts.runner.use_build_cache = arm.cache_on;
  opts.runner.use_compiled_programs = arm.compiled;
  Propagator prop(&env->views, view,
                  std::make_unique<FixedInterval>(interval), opts);
  Stopwatch total;
  while (prop.high_water_mark() < t_end) {
    if (!ValueOrDie(prop.Step(), "step")) break;
  }

  PointResult res;
  res.arm = arm.name;
  res.interval = interval;
  res.total_ms = total.ElapsedMillis();
  res.view_name = view->name;

  // The runner is quiescent now, which is exactly the contract
  // QueryRunner::RegisterMetrics documents; the snapshot is value-typed and
  // outlives the registry, runner and view.
  obs::MetricsRegistry registry;
  prop.runner()->RegisterMetrics(&registry, &registry);
  res.snapshot = registry.Snapshot();

  const obs::MetricsSnapshot& snap = res.snapshot;
  const obs::Labels v{{"view", res.view_name}};
  auto with = [&](std::initializer_list<std::pair<std::string, std::string>>
                      extra) {
    obs::Labels labels = v;
    for (const auto& kv : extra) labels.push_back(kv);
    return labels;
  };
  res.queries = snap.CounterValue("rollview_queries_total",
                                  with({{"kind", "forward"}})) +
                snap.CounterValue("rollview_queries_total",
                                  with({{"kind", "compensation"}}));
  res.mean_q_us =
      res.queries == 0
          ? 0.0
          : res.total_ms * 1000.0 / static_cast<double>(res.queries);
  res.rows_in =
      snap.CounterValue("rollview_exec_rows_total", with({{"dir", "in"}}));
  res.rows_out = snap.CounterValue("rollview_view_delta_rows_total", v);
  res.rows_copied = snap.CounterValue("rollview_exec_rows_moved_total",
                                      with({{"path", "copied"}}));
  res.rows_borrowed = snap.CounterValue("rollview_exec_rows_moved_total",
                                        with({{"path", "borrowed"}}));
  res.cache_hits = snap.CounterValue("rollview_build_cache_queries_total",
                                     with({{"outcome", "hit"}}));
  res.cache_misses = snap.CounterValue("rollview_build_cache_queries_total",
                                       with({{"outcome", "miss"}}));
  res.build_ms =
      static_cast<double>(snap.CounterValue("rollview_build_nanos_total", v)) /
      1e6;
  res.exec_q_us =
      res.queries == 0
          ? 0.0
          : static_cast<double>(
                snap.CounterValue("rollview_exec_nanos_total", v)) /
                1e3 / static_cast<double>(res.queries);
  res.compiled_queries =
      snap.CounterValue("rollview_compiled_queries_total", v);
  res.hj_hits = snap.CounterValue("rollview_half_join_probes_total",
                                  with({{"outcome", "hit"}}));
  res.hj_misses = snap.CounterValue("rollview_half_join_probes_total",
                                    with({{"outcome", "miss"}}));
  return res;
}

// Minimal reader for the committed BENCH_executor.json (JsonReport writes
// one flat row object per line): returns the raw value text for `key` in
// the first row whose arm/interval match, or "" if absent.
struct BaselineRow {
  std::string arm;
  uint64_t interval = 0;
  std::vector<std::pair<std::string, std::string>> fields;

  std::string Get(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return v;
    }
    return "";
  }
};

std::vector<BaselineRow> LoadBaseline(const std::string& path) {
  std::vector<BaselineRow> rows;
  std::ifstream in(path);
  if (!in) return rows;
  std::string line;
  while (std::getline(in, line)) {
    size_t open = line.find('{');
    if (open == std::string::npos || line.find("\"experiment\"") !=
        std::string::npos) {
      continue;
    }
    BaselineRow row;
    size_t pos = open;
    while (true) {
      size_t kq = line.find('"', pos);
      if (kq == std::string::npos) break;
      size_t kend = line.find('"', kq + 1);
      if (kend == std::string::npos) break;
      std::string key = line.substr(kq + 1, kend - kq - 1);
      size_t colon = line.find(':', kend);
      if (colon == std::string::npos) break;
      size_t vstart = line.find_first_not_of(' ', colon + 1);
      size_t vend = line.find_first_of(",}", vstart);
      if (vstart == std::string::npos || vend == std::string::npos) break;
      std::string value = line.substr(vstart, vend - vstart);
      if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
        value = value.substr(1, value.size() - 2);
      }
      row.fields.emplace_back(key, value);
      pos = vend;
    }
    if (!row.fields.empty()) {
      row.arm = row.Get("arm");
      row.interval = std::strtoull(row.Get("interval").c_str(), nullptr, 10);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

bool CheckAgainstBaseline(const std::vector<BaselineRow>& baseline,
                          const PointResult& res) {
  const BaselineRow* match = nullptr;
  for (const BaselineRow& row : baseline) {
    if (row.arm == res.arm && row.interval == res.interval) {
      match = &row;
      break;
    }
  }
  if (match == nullptr) {
    std::fprintf(stderr,
                 "SMOKE FAIL: no baseline row for arm=%s interval=%llu\n",
                 res.arm.c_str(),
                 static_cast<unsigned long long>(res.interval));
    return false;
  }
  bool ok = true;
  auto expect_int = [&](const char* key, uint64_t got) {
    std::string want = match->Get(key);
    if (want.empty()) return;  // baseline predates the counter; skip
    if (std::strtoull(want.c_str(), nullptr, 10) != got) {
      std::fprintf(stderr,
                   "SMOKE FAIL: arm=%s interval=%llu %s drifted: baseline %s,"
                   " got %llu\n",
                   res.arm.c_str(),
                   static_cast<unsigned long long>(res.interval), key,
                   want.c_str(), static_cast<unsigned long long>(got));
      ok = false;
    }
  };
  // Deterministic counters only: the workload and propagation schedule are
  // seeded, so any drift is a behavior change, not noise. Wall-clock fields
  // are deliberately not compared.
  expect_int("queries", res.queries);
  expect_int("rows_in", res.rows_in);
  expect_int("rows_out", res.rows_out);
  expect_int("rows_copied", res.rows_copied);
  expect_int("rows_borrowed", res.rows_borrowed);
  expect_int("cache_hits", res.cache_hits);
  expect_int("cache_misses", res.cache_misses);
  expect_int("compiled_queries", res.compiled_queries);
  expect_int("hj_hits", res.hj_hits);
  expect_int("hj_misses", res.hj_misses);
  return ok;
}

}  // namespace

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      baseline_path = argv[i];
    }
  }

  Banner("E11: bench_executor",
         "Per-propagation-query cost with the snapshot-keyed build cache on "
         "vs off (zero-copy scans, shared builds), E2 workload.");

  Env env;
  // join_domain 16 gives each delta row ~500 S matches (8000/16) to probe
  // and discard against the 1/64 cut; the R-heavy update mix (s_every 8)
  // keeps the compensation queries' suffix scans -- identical in both arms
  // -- from flooding the comparison.
  TwoTableWorkload workload = ValueOrDie(
      TwoTableWorkload::Create(&env.db, /*r_rows=*/10000, /*s_rows=*/8000,
                               /*join_domain=*/16, /*seed=*/3),
      "create workload");
  env.capture.CatchUp();

  View* base_view = ValueOrDie(
      env.views.CreateView("V0", SelectiveViewDef(workload)), "view");
  CheckOk(env.views.Materialize(base_view), "materialize");
  Csn t0 = base_view->propagate_from.load();
  RunTwoTableHistory(&env, workload, /*txns=*/2000, /*seed=*/17,
                     /*s_every=*/8);
  Csn t_end = env.capture.high_water_mark();
  std::printf("history: %llu commits, %zu R-delta rows, %zu S-delta rows\n\n",
              static_cast<unsigned long long>(t_end - t0),
              env.db.delta(workload.r)->size(),
              env.db.delta(workload.s)->size());

  std::vector<Csn> intervals =
      smoke ? std::vector<Csn>{Csn(64)}
            : std::vector<Csn>{Csn(4), Csn(64), t_end - t0};

  TablePrinter table({"arm", "interval", "queries", "mean_q_us", "exec_q_us",
                      "rows_cp", "rows_bw", "hits", "misses", "hj_hits",
                      "build_ms", "total_ms"});
  table.PrintHeader();

  JsonReport report("executor");
  std::vector<PointResult> results;
  int point_id = 0;
  const int reps = smoke ? 3 : 5;
  for (Csn interval : intervals) {
    // Wall times are best-of-`reps`, with the arm order rotated per
    // repetition so machine drift (thermal, other tenants) cancels instead
    // of biasing whichever arm runs later. Counters are deterministic and
    // asserted identical across repetitions.
    std::vector<PointResult> best(kNumArms);
    for (int rep = 0; rep < reps; ++rep) {
      for (int pos = 0; pos < kNumArms; ++pos) {
        // Rotate which arm goes first: the engine accumulates state (WAL,
        // view deltas) across runs, so a fixed order would bias the later
        // positions.
        int arm = (pos + rep) % kNumArms;
        PointResult res = RunPoint(&env, workload, t0, t_end, interval,
                                   kArms[arm], point_id++);
        if (rep == 0) {
          best[arm] = std::move(res);
          continue;
        }
        if (res.queries != best[arm].queries ||
            res.rows_out != best[arm].rows_out ||
            res.rows_copied != best[arm].rows_copied ||
            res.cache_hits != best[arm].cache_hits ||
            res.compiled_queries != best[arm].compiled_queries ||
            res.hj_hits != best[arm].hj_hits) {
          std::fprintf(stderr, "FAIL: nondeterministic counters across reps "
                               "(arm=%s interval=%llu)\n",
                       res.arm.c_str(),
                       static_cast<unsigned long long>(res.interval));
          return 1;
        }
        if (res.total_ms < best[arm].total_ms) best[arm] = std::move(res);
      }
    }
    for (PointResult& res : best) {
      table.PrintRow({res.arm, FmtInt(res.interval), FmtInt(res.queries),
                      Fmt(res.mean_q_us, 1), Fmt(res.exec_q_us, 1),
                      FmtInt(res.rows_copied), FmtInt(res.rows_borrowed),
                      FmtInt(res.cache_hits), FmtInt(res.cache_misses),
                      FmtInt(res.hj_hits), Fmt(res.build_ms),
                      Fmt(res.total_ms)});
      report.BeginRow();
      RegistryRowEmitter emit(&report, &res.snapshot);
      const obs::Labels v{{"view", res.view_name}};
      emit.Str("arm", res.arm);
      emit.Int("interval", res.interval);
      emit.CounterSum("queries", "rollview_queries_total",
                      {{{"view", res.view_name}, {"kind", "forward"}},
                       {{"view", res.view_name}, {"kind", "compensation"}}});
      emit.Num("total_ms", res.total_ms);
      emit.Num("mean_q_us", res.mean_q_us, 1);
      emit.Num("exec_q_us", res.exec_q_us, 1);
      emit.Counter("rows_in", "rollview_exec_rows_total",
                   {{"view", res.view_name}, {"dir", "in"}});
      emit.Counter("rows_out", "rollview_view_delta_rows_total", v);
      emit.Counter("rows_copied", "rollview_exec_rows_moved_total",
                   {{"view", res.view_name}, {"path", "copied"}});
      emit.Counter("rows_borrowed", "rollview_exec_rows_moved_total",
                   {{"view", res.view_name}, {"path", "borrowed"}});
      emit.Counter("bytes_copied", "rollview_exec_bytes_moved_total",
                   {{"view", res.view_name}, {"path", "copied"}});
      emit.Counter("bytes_borrowed", "rollview_exec_bytes_moved_total",
                   {{"view", res.view_name}, {"path", "borrowed"}});
      emit.Counter("cache_hits", "rollview_build_cache_queries_total",
                   {{"view", res.view_name}, {"outcome", "hit"}});
      emit.Counter("cache_misses", "rollview_build_cache_queries_total",
                   {{"view", res.view_name}, {"outcome", "miss"}});
      emit.Num("build_ms", res.build_ms);
      emit.Counter("compiled_queries", "rollview_compiled_queries_total", v);
      emit.Counter("compiled_probe_rows", "rollview_compiled_probe_rows_total",
                   v);
      emit.Counter("compiled_kernel_evals",
                   "rollview_compiled_kernel_evals_total", v);
      emit.Counter("hj_hits", "rollview_half_join_probes_total",
                   {{"view", res.view_name}, {"outcome", "hit"}});
      emit.Counter("hj_misses", "rollview_half_join_probes_total",
                   {{"view", res.view_name}, {"outcome", "miss"}});
      emit.Counter("hj_advances", "rollview_half_join_maintenance_total",
                   {{"view", res.view_name}, {"kind", "advance"}});
      emit.Counter("hj_rebuilds", "rollview_half_join_maintenance_total",
                   {{"view", res.view_name}, {"kind", "rebuild"}});
      results.push_back(std::move(res));
    }
  }

  bool ok = true;
  std::printf("\n");
  for (size_t i = 0; i + kNumArms - 1 < results.size(); i += kNumArms) {
    const PointResult& off = results[i];
    const PointResult& on = results[i + 1];
    const PointResult& compiled = results[i + 2];
    double speedup = on.mean_q_us > 0 ? off.mean_q_us / on.mean_q_us : 0;
    std::printf("interval %-6llu per-query speedup (cache on vs off): "
                "%.2fx  (%.1fus -> %.1fus)\n",
                static_cast<unsigned long long>(off.interval), speedup,
                off.mean_q_us, on.mean_q_us);
    double cspeed = compiled.mean_q_us > 0
                        ? on.mean_q_us / compiled.mean_q_us
                        : 0;
    std::printf("interval %-6llu per-query speedup (compiled vs interpreted):"
                " %.2fx  (%.1fus -> %.1fus)\n",
                static_cast<unsigned long long>(off.interval), cspeed,
                on.mean_q_us, compiled.mean_q_us);
    if (off.rows_out != on.rows_out || on.rows_out != compiled.rows_out) {
      std::fprintf(stderr,
                   "FAIL: arms disagree (rows_out %llu / %llu / %llu)\n",
                   static_cast<unsigned long long>(off.rows_out),
                   static_cast<unsigned long long>(on.rows_out),
                   static_cast<unsigned long long>(compiled.rows_out));
      ok = false;
    }
    if (compiled.compiled_queries == 0) {
      std::fprintf(stderr,
                   "FAIL: compiled arm never took the compiled path\n");
      ok = false;
    }
    if (smoke && speedup < 1.1) {
      // Wide floor for CI noise; the committed full-sweep baseline is where
      // the headline >= 2x number lives.
      std::fprintf(stderr, "SMOKE FAIL: speedup %.2fx below 1.1x floor\n",
                   speedup);
      ok = false;
    }
    if (smoke && cspeed < 1.3) {
      std::fprintf(stderr,
                   "SMOKE FAIL: compiled speedup %.2fx below 1.3x floor\n",
                   cspeed);
      ok = false;
    }
    if (!smoke && i == 0 && cspeed < 2.0) {
      // The headline acceptance number: compiled >= 2x interpreted at the
      // smallest interval, where per-query fixed costs dominate.
      std::fprintf(stderr,
                   "FAIL: compiled speedup %.2fx below 2.0x at the smallest "
                   "interval\n",
                   cspeed);
      ok = false;
    }
  }

  if (smoke && !baseline_path.empty()) {
    std::vector<BaselineRow> baseline = LoadBaseline(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "SMOKE FAIL: cannot read baseline %s\n",
                   baseline_path.c_str());
      ok = false;
    } else {
      for (const PointResult& res : results) {
        if (!CheckAgainstBaseline(baseline, res)) ok = false;
      }
      if (ok) std::printf("smoke: counters match %s\n", baseline_path.c_str());
    }
  }

  if (!smoke) report.Write();
  return ok ? 0 : 1;
}

}  // namespace bench
}  // namespace rollview

int main(int argc, char** argv) {
  return rollview::bench::Main(argc, argv);
}
