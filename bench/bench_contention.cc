// E3 -- the long-transaction problem (paper Sec. 1, 3.2).
//
// "The [refresh] transaction may be long-lived, resulting in contention
//  between the refresh process and concurrent updates to the underlying
//  tables, and between the refresh operation and concurrent reads of the
//  materialized view."
//
// Concurrent paced updaters + MV readers run for a fixed wall-clock window
// while the view is maintained by one of:
//   none       -- no maintenance (updater baseline)
//   full       -- periodic atomic full recomputation
//   sync-eq1   -- periodic atomic incremental refresh (Eq. 1, Figure 1)
//   propagate  -- continuous Figure 5 propagation + apply
//   rolling    -- continuous Figure 10 rolling propagation + apply
//
// Reported: achieved updater txns, updater p50/p99/max latency, total lock
// wait, deadlocks, reader p99, and the MV's final staleness (stable CSN
// minus MV CSN).
//
// E12 rides on the same binary: a fixed-vs-adaptive MaintenanceService
// comparison under an *antagonist* OLTP load (paced single-table updaters
// plus cross-table transactions that interleave lock orders with the
// propagation strips, manufacturing real maintenance-vs-OLTP deadlock
// cycles). The fixed arm runs the open-loop rows-per-query target; the
// adaptive arm runs the AIMD IntervalController with a staleness SLO and
// live shedding/backpressure wiring. Claim: the adaptive arm volunteers
// fewer maintenance deadlock victims and keeps OLTP p99 lock waits no
// worse, while staleness stays within the SLO.
//
// Usage:
//   bench_contention                     full E3 + E12 sweep, writes
//                                        BENCH_contention.json
//   bench_contention --smoke [baseline]  E12 arms only at a short run;
//                                        structural assertions + baseline
//                                        sanity (the perf-smoke ctest label)

#include <atomic>
#include <cstring>
#include <thread>

#include "bench_util.h"
#include "harness/mv_reader.h"
#include "harness/worker.h"
#include "ivm/maintenance.h"
#include "ivm/snapshot_propagate.h"

namespace rollview {
namespace bench {
namespace {

constexpr int kRunMillis = 1500;
constexpr double kUpdaterRate = 250.0;  // txns/sec per updater
constexpr int kUpdaters = 3;

struct RowResult {
  std::string mode;
  uint64_t updater_txns = 0;
  uint64_t p50_us = 0, p99_us = 0, max_us = 0;
  uint64_t lock_wait_ms = 0;
  uint64_t reader_p99_us = 0;
  uint64_t staleness = 0;
  uint64_t maint_queries = 0;
  // Lock-manager counters scraped at quiescence; JSON rows flow through
  // the shared RegistryRowEmitter.
  obs::MetricsSnapshot snapshot;
};

RowResult RunMode(const std::string& mode) {
  Env env;
  TwoTableWorkload workload = ValueOrDie(
      TwoTableWorkload::Create(&env.db, /*r_rows=*/30000, /*s_rows=*/8000,
                               /*join_domain=*/1024, /*seed=*/5),
      "workload");
  env.capture.CatchUp();
  View* view =
      ValueOrDie(env.views.CreateView("V", workload.ViewDef()), "view");
  CheckOk(env.views.Materialize(view), "materialize");
  env.capture.Start();
  env.db.lock_manager()->ResetStats();

  std::vector<std::unique_ptr<UpdateStream>> streams;
  std::vector<std::unique_ptr<Worker>> updaters;
  for (int i = 0; i < kUpdaters; ++i) {
    streams.push_back(std::make_unique<UpdateStream>(
        &env.db,
        i == 0 ? workload.SStream(i + 1, 100 + i)
               : workload.RStream(i + 1, 100 + i),
        100 + i));
    UpdateStream* s = streams.back().get();
    Worker::Options opts;
    opts.target_ops_per_sec = kUpdaterRate;
    updaters.push_back(
        std::make_unique<Worker>([s] { return s->RunTransaction(); }, opts));
  }

  MvReader reader(&env.views, view);
  Worker::Options reader_opts;
  reader_opts.target_ops_per_sec = 200;
  Worker read_worker([&reader] { return reader.ReadOnce(); }, reader_opts);

  // Staleness sampler: stable CSN minus MV CSN, every 20 ms.
  Counter staleness_samples;
  Counter staleness_sum;
  Worker staleness_worker(
      [&]() -> Status {
        staleness_sum.Add(env.db.stable_csn() - view->mv->csn());
        staleness_samples.Add();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return Status::OK();
      },
      Worker::Options{.name = "staleness"});

  // Maintenance actors.
  std::unique_ptr<SyncRefresher> refresher;
  std::unique_ptr<Worker> refresh_worker;
  std::unique_ptr<Propagator> plain;
  std::unique_ptr<RollingPropagator> rolling;
  std::unique_ptr<SnapshotPropagator> snap;
  std::unique_ptr<Applier> applier;
  std::unique_ptr<Worker> maintain_worker;

  if (mode == "full" || mode == "sync-eq1") {
    refresher = std::make_unique<SyncRefresher>(&env.views, view);
    SyncRefresher* r = refresher.get();
    bool full = (mode == "full");
    refresh_worker = std::make_unique<Worker>(
        [r, full]() -> Status {
          Status s = full ? r->RefreshFull().status()
                          : r->RefreshEq1().status();
          if (!s.ok()) return s;
          std::this_thread::sleep_for(std::chrono::milliseconds(400));
          return Status::OK();
        },
        Worker::Options{.name = "refresh"});
  } else if (mode == "propagate" || mode == "rolling" ||
             mode == "mvcc-snap") {
    applier = std::make_unique<Applier>(&env.views, view,
                                        ApplierOptions{.prune_view_delta = true});
    if (mode == "propagate") {
      plain = std::make_unique<Propagator>(
          &env.views, view, std::make_unique<TargetRowsInterval>(256));
    } else if (mode == "mvcc-snap") {
      snap = std::make_unique<SnapshotPropagator>(
          &env.views, view, std::make_unique<TargetRowsInterval>(256));
    } else {
      std::vector<std::unique_ptr<IntervalPolicy>> ps;
      ps.push_back(std::make_unique<TargetRowsInterval>(256));
      ps.push_back(std::make_unique<TargetRowsInterval>(64));
      rolling = std::make_unique<RollingPropagator>(&env.views, view,
                                                    std::move(ps));
    }
    maintain_worker = std::make_unique<Worker>(
        [&]() -> Status {
          bool advanced = false;
          if (plain != nullptr) {
            Result<bool> r = plain->Step();
            if (!r.ok()) return r.status();
            advanced = r.value();
          } else if (snap != nullptr) {
            Result<bool> r = snap->Step();
            if (!r.ok()) return r.status();
            advanced = r.value();
          } else {
            Result<bool> r = rolling->Step();
            if (!r.ok()) return r.status();
            advanced = r.value();
          }
          Csn hwm = view->high_water_mark();
          if (hwm > view->mv->csn()) {
            ROLLVIEW_RETURN_NOT_OK(applier->RollTo(hwm));
          }
          if (!advanced) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          return Status::OK();
        },
        Worker::Options{.name = "maintain"});
  }

  for (auto& u : updaters) u->Start();
  read_worker.Start();
  staleness_worker.Start();
  if (refresh_worker) refresh_worker->Start();
  if (maintain_worker) maintain_worker->Start();

  std::this_thread::sleep_for(std::chrono::milliseconds(kRunMillis));

  for (auto& u : updaters) CheckOk(u->Join(), "updater");
  if (refresh_worker) CheckOk(refresh_worker->Join(), "refresher");
  if (maintain_worker) CheckOk(maintain_worker->Join(), "maintainer");
  CheckOk(read_worker.Join(), "reader");
  CheckOk(staleness_worker.Join(), "staleness");
  env.capture.Stop();

  RowResult out;
  out.mode = mode;
  // Pool the updaters' reservoirs and take real percentiles over the merged
  // population, instead of the old max-of-per-worker-percentiles upper
  // bound.
  LatencyHistogram updater_lat;
  for (auto& u : updaters) {
    out.updater_txns += u->iterations();
    updater_lat.MergeFrom(u->latency());
  }
  out.p50_us = updater_lat.Percentile(0.50) / 1000;
  out.p99_us = updater_lat.Percentile(0.99) / 1000;
  out.max_us = updater_lat.max_nanos() / 1000;
  obs::MetricsRegistry registry;
  env.db.lock_manager()->RegisterMetrics(&registry, &registry);
  out.snapshot = registry.Snapshot();
  out.lock_wait_ms =
      out.snapshot.CounterTotal("rollview_lock_wait_nanos_total") / 1000000;
  out.reader_p99_us = read_worker.latency().Percentile(0.99) / 1000;
  out.staleness = staleness_samples.value() == 0
                      ? 0
                      : staleness_sum.value() / staleness_samples.value();
  if (refresher) out.maint_queries = refresher->stats().queries;
  if (plain) out.maint_queries = plain->runner()->stats().queries;
  if (rolling) out.maint_queries = rolling->runner()->stats().queries;
  if (snap) out.maint_queries = snap->stats().exec.queries;
  return out;
}

// --- E12: fixed vs adaptive MaintenanceService under antagonist load ---

constexpr Csn kStalenessSlo = 1500;    // CSN units; generous vs observed
constexpr size_t kFixedTargetRows = 1024;

struct SvcResult {
  std::string arm;
  uint64_t updater_txns = 0;
  uint64_t updater_retries = 0;   // OLTP aborts absorbed by stream retry
  uint64_t oltp_p99_wait_us = 0;  // per-class lock-wait histogram p99
  uint64_t maint_victims = 0;     // maintenance deadlock-victim aborts
  uint64_t maint_timeouts = 0;
  uint64_t transients = 0;        // supervisor-absorbed step failures
  uint64_t queries = 0;
  uint64_t avg_stale = 0;
  uint64_t target_end = 0;
  uint64_t sheds = 0;
  double drain_ms = 0;
  std::string outcome;
  // Everything the service and lock manager export, scraped after the
  // drain; the JSON row reads straight from here via RegistryRowEmitter.
  obs::MetricsSnapshot snapshot;
};

SvcResult RunServiceArm(bool adaptive, int run_millis) {
  Env env;
  // A star view (fact |><| dim0 |><| dim1): every propagation strip's
  // forward query S-locks *two* base tables, so a cross-order OLTP
  // transaction can genuinely deadlock against maintenance. (A two-table
  // chain cannot: each strip locks exactly one base table.)
  StarSchemaConfig scfg;
  scfg.num_dims = 2;
  scfg.dim_rows = 2000;
  scfg.fact_rows = 20000;
  StarSchemaWorkload workload =
      ValueOrDie(StarSchemaWorkload::Create(&env.db, scfg, /*seed=*/5),
                 "workload");
  env.capture.CatchUp();
  View* view =
      ValueOrDie(env.views.CreateView("V", workload.ViewDef()), "view");
  CheckOk(env.views.Materialize(view), "materialize");
  env.capture.Start();
  env.db.lock_manager()->ResetStats();

  MaintenanceService::Options mopts;
  mopts.runner.max_retries = 0;  // the supervisor owns the retry policy
  mopts.runner.capture_wait_timeout = std::chrono::milliseconds(50);
  mopts.backoff.initial = std::chrono::microseconds(100);
  mopts.backoff.max = std::chrono::microseconds(5000);
  if (adaptive) {
    mopts.interval_mode = MaintenanceService::Options::IntervalMode::kAdaptive;
    mopts.controller.initial_target_rows = kFixedTargetRows;
    mopts.controller.min_target_rows = 32;
    mopts.controller.max_target_rows = 4096;
    mopts.controller.staleness_slo = kStalenessSlo;
    // The antagonists never stop, so a fast pause decay just oscillates:
    // calm windows bleed the pace off and the next strip re-collides. Keep
    // the pause sticky and let the SLO state machine bound the staleness
    // cost instead.
    mopts.controller.pause_max = std::chrono::microseconds(50000);
    mopts.controller.pause_decay = 0.9;
  } else {
    mopts.target_rows_per_query = kFixedTargetRows;
  }
  // One registry carries both the service's and the lock manager's metrics;
  // it precedes the service so it survives the service's deregistration.
  obs::MetricsRegistry registry;
  MaintenanceService service(&env.views, view, mopts);
  service.RegisterMetrics(&registry);
  env.db.lock_manager()->RegisterMetrics(&registry, &registry);
  MaintenanceService* svc = &service;

  // Antagonists: the paced single-table updaters of E3, plus cross-table
  // writers whose transactions take R and S intent locks in alternating
  // order. Against a propagation strip holding table S locks across both
  // relations this interleaving forms genuine waits-for cycles, so the
  // deadlock detector must pick victims -- the metric under test.
  std::vector<std::unique_ptr<UpdateStream>> streams;
  std::vector<std::unique_ptr<Worker>> updaters;
  for (int i = 0; i < kUpdaters; ++i) {
    // Two fact writers (volume -> backlog and staleness pressure) and one
    // dimension churner (its delta strips S-lock fact + the other dim).
    // Fat fact transactions keep the captured backlog above the fixed
    // arm's row target, so the open-loop arm really does run 1024-row
    // strips while the adaptive arm shrinks -- the knob under test.
    UpdateStreamConfig cfg = i < 2 ? workload.FactStream(i + 1, 100 + i)
                                   : workload.DimStream(0, i + 1, 100 + i);
    if (i < 2) cfg.ops_per_txn = 24;
    streams.push_back(
        std::make_unique<UpdateStream>(&env.db, std::move(cfg), 100 + i));
    UpdateStream* s = streams.back().get();
    Worker::Options opts;
    opts.name = "updater";
    opts.target_ops_per_sec = kUpdaterRate;
    // The graceful-degradation loop: while the adaptive arm sheds, update
    // intake slows so the backlog can drain. A no-op in the fixed arm.
    opts.backpressure = [svc] { return svc->shedding(); };
    opts.backpressure_delay = std::chrono::microseconds(500);
    updaters.push_back(
        std::make_unique<Worker>([s] { return s->RunTransaction(); }, opts));
  }

  // Strips lock base terms in table order: a fact strip takes S(dim0) then
  // S(dim1); a dim_i strip takes S(fact) then S(dim_{1-i}). A cross writer
  // that intent-locks a *later* table first and then wants an *earlier* one
  // closes a waits-for cycle with whichever strip is mid-acquisition, so
  // rotate through the three cycle-capable orders.
  std::atomic<int64_t> cross_key{9'000'000'000'000LL};  // clear of streams
  std::atomic<uint64_t> cross_flip{0};
  std::atomic<uint64_t> cross_retries{0};
  auto make_row = [&workload](TableId table, int64_t k) {
    if (table == workload.fact) {
      return Tuple{Value(k), Value(int64_t{0}), Value(int64_t{0}),
                   Value(1.0)};
    }
    return Tuple{Value(k), Value(k), Value(std::string("cross"))};
  };
  auto cross_body = [&env, &workload, &cross_key, &cross_flip,
                     &cross_retries, make_row]() -> Status {
    uint64_t pick = cross_flip.fetch_add(1, std::memory_order_relaxed) % 3;
    TableId first = pick == 2 ? workload.dims[0] : workload.dims[1];
    TableId second = pick == 0 ? workload.dims[0] : workload.fact;
    for (int attempt = 0; attempt < 32; ++attempt) {
      std::unique_ptr<Txn> txn = env.db.Begin();
      int64_t k = cross_key.fetch_add(1, std::memory_order_relaxed);
      Status st = env.db.Insert(txn.get(), first, make_row(first, k));
      if (st.ok()) {
        // No think time: the collision window is how long maintenance
        // strips hold their base-table S locks -- the dial delta controls.
        st = env.db.Insert(txn.get(), second, make_row(second, k));
      }
      if (st.ok()) st = env.db.Commit(txn.get());
      if (st.ok()) return Status::OK();
      if (txn->state() == TxnState::kActive) env.db.Abort(txn.get()).ok();
      if (!(st.IsTxnAborted() || st.IsBusy())) return st;
      cross_retries.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(100) * attempt);
    }
    return Status::OK();  // hopelessly contended this round; try next beat
  };
  std::vector<std::unique_ptr<Worker>> cross_workers;
  for (int i = 0; i < 3; ++i) {
    Worker::Options opts;
    opts.name = "cross";
    opts.target_ops_per_sec = 200.0;
    opts.backpressure = [svc] { return svc->shedding(); };
    opts.backpressure_delay = std::chrono::microseconds(500);
    cross_workers.push_back(std::make_unique<Worker>(cross_body, opts));
  }

  // Staleness sampler: stable CSN minus MV CSN, every 20 ms.
  Counter staleness_samples;
  Counter staleness_sum;
  Worker staleness_worker(
      [&]() -> Status {
        staleness_sum.Add(env.db.stable_csn() - view->mv->csn());
        staleness_samples.Add();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return Status::OK();
      },
      Worker::Options{.name = "staleness"});

  service.Start();
  for (auto& u : updaters) u->Start();
  for (auto& c : cross_workers) c->Start();
  staleness_worker.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(run_millis));
  for (auto& u : updaters) CheckOk(u->Join(), "updater");
  for (auto& c : cross_workers) CheckOk(c->Join(), "cross");
  CheckOk(staleness_worker.Join(), "staleness");

  // Liveness: the storm is over, the drivers must reach the frontier.
  Csn frontier = env.db.stable_csn();
  Stopwatch drain_timer;
  CheckOk(service.Drain(frontier), "drain");

  SvcResult out;
  out.arm = adaptive ? "adaptive-svc" : "fixed-svc";
  out.drain_ms = drain_timer.ElapsedMillis();
  for (auto& u : updaters) {
    out.updater_txns += u->iterations();
    out.updater_retries += u->transient_errors();
  }
  for (auto& s : streams) out.updater_retries += s->stats().aborts_retried;
  out.updater_retries += cross_retries.load();
  out.snapshot = registry.Snapshot();
  const obs::MetricsSnapshot& snap = out.snapshot;
  const obs::HistogramSummary* oltp_wait =
      snap.Histogram("rollview_lock_wait_latency", {{"class", "oltp"}});
  out.oltp_p99_wait_us = oltp_wait == nullptr ? 0 : oltp_wait->p99 / 1000;
  out.maint_victims = snap.CounterValue("rollview_lock_deadlock_victims_total",
                                        {{"class", "maintenance"}});
  out.maint_timeouts = snap.CounterValue("rollview_lock_timeouts_total",
                                         {{"class", "maintenance"}});
  out.transients =
      snap.CounterValue(
          "rollview_step_total",
          {{"view", "V"}, {"driver", "propagate"},
           {"outcome", "transient_error"}}) +
      snap.CounterValue("rollview_step_total",
                        {{"view", "V"}, {"driver", "apply"},
                         {"outcome", "transient_error"}});
  out.queries = snap.CounterTotal("rollview_queries_total");
  out.avg_stale = staleness_samples.value() == 0
                      ? 0
                      : staleness_sum.value() / staleness_samples.value();
  out.target_end =
      static_cast<uint64_t>(snap.GaugeValue("rollview_view_target_rows",
                                            {{"view", "V"}}));
  // Fixed arm: the interval-event counters are simply absent, so these
  // lookups come back 0 -- same zeros the IntervalController-less arm
  // always reported.
  out.sheds = snap.CounterValue("rollview_interval_events_total",
                                {{"view", "V"}, {"event", "shed_entry"}});
  out.outcome = "clean";
  if (!service.last_error().ok()) out.outcome = "recovered";
  if (service.propagate_health() == DriverHealth::kFailed ||
      service.apply_health() == DriverHealth::kFailed ||
      (!service.last_error().ok() && !service.last_error().IsTransient())) {
    out.outcome = "FAILED";
  }
  CheckOk(service.Stop(), "stop");
  return out;
}

// Returns true when the committed baseline mentions both arms -- the
// counters here are timing-dependent, so the smoke check asserts the
// baseline's structure rather than exact values.
bool BaselineMentionsArms(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text.find("fixed-svc") != std::string::npos &&
         text.find("adaptive-svc") != std::string::npos;
}

}  // namespace

int RunE12(JsonReport* report, bool smoke) {
  Banner("E12: bench_contention (fixed vs adaptive)",
         "Open-loop vs AIMD interval control under an antagonist OLTP load "
         "with cross-order lock cycles: the adaptive arm volunteers fewer "
         "maintenance deadlock victims at no OLTP p99 cost, staleness "
         "within the SLO.");

  const int run_millis = smoke ? 500 : kRunMillis;
  TablePrinter table({"arm", "upd_txns", "retries", "oltp_p99w_us", "victims",
                      "m_timeouts", "transients", "queries", "avg_stale",
                      "target_end", "sheds", "outcome"},
                     13);
  table.PrintHeader();
  SvcResult rows[2];
  for (int arm = 0; arm < 2; ++arm) {
    SvcResult r = RunServiceArm(/*adaptive=*/arm == 1, run_millis);
    table.PrintRow({r.arm, FmtInt(r.updater_txns), FmtInt(r.updater_retries),
                    FmtInt(r.oltp_p99_wait_us), FmtInt(r.maint_victims),
                    FmtInt(r.maint_timeouts), FmtInt(r.transients),
                    FmtInt(r.queries), FmtInt(r.avg_stale),
                    FmtInt(r.target_end), FmtInt(r.sheds), r.outcome});
    if (report != nullptr) {
      report->BeginRow();
      RegistryRowEmitter emit(report, &r.snapshot);
      emit.Str("mode", r.arm);
      emit.Int("updater_txns", r.updater_txns);
      emit.Int("updater_retries", r.updater_retries);
      emit.PercentileMicros("oltp_p99_wait_us", "rollview_lock_wait_latency",
                            {{"class", "oltp"}}, 0.99);
      emit.Counter("oltp_waits", "rollview_lock_waits_total",
                   {{"class", "oltp"}});
      emit.Counter("maint_victims", "rollview_lock_deadlock_victims_total",
                   {{"class", "maintenance"}});
      emit.Counter("maint_timeouts", "rollview_lock_timeouts_total",
                   {{"class", "maintenance"}});
      emit.CounterSum(
          "transients", "rollview_step_total",
          {{{"view", "V"}, {"driver", "propagate"},
            {"outcome", "transient_error"}},
           {{"view", "V"}, {"driver", "apply"},
            {"outcome", "transient_error"}}});
      emit.CounterTotal("queries", "rollview_queries_total");
      emit.Int("avg_stale", r.avg_stale);
      emit.Int("staleness_slo", kStalenessSlo);
      emit.Gauge("target_end", "rollview_view_target_rows", {{"view", "V"}});
      emit.CounterSum("shrinks", "rollview_interval_events_total",
                      {{{"view", "V"}, {"event", "shrink"}},
                       {{"view", "V"}, {"event", "transient_shrink"}}});
      emit.Counter("grows", "rollview_interval_events_total",
                   {{"view", "V"}, {"event", "grow"}});
      emit.Counter("sheds", "rollview_interval_events_total",
                   {{"view", "V"}, {"event", "shed_entry"}});
      emit.Num("drain_ms", r.drain_ms, 3);
      emit.Str("outcome", r.outcome);
    }
    rows[arm] = std::move(r);
  }

  const SvcResult& fixed = rows[0];
  const SvcResult& adaptive = rows[1];
  double victim_cut =
      fixed.maint_victims == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(adaptive.maint_victims) /
                               static_cast<double>(fixed.maint_victims));
  std::printf(
      "\nadaptive vs fixed: maintenance victim aborts %llu -> %llu "
      "(%.0f%% fewer), OLTP p99 lock wait %lluus -> %lluus, avg staleness "
      "%llu vs SLO %llu\n",
      static_cast<unsigned long long>(fixed.maint_victims),
      static_cast<unsigned long long>(adaptive.maint_victims), victim_cut,
      static_cast<unsigned long long>(fixed.oltp_p99_wait_us),
      static_cast<unsigned long long>(adaptive.oltp_p99_wait_us),
      static_cast<unsigned long long>(adaptive.avg_stale),
      static_cast<unsigned long long>(kStalenessSlo));

  int failures = 0;
  // Structural assertions (timing-independent): no driver death in either
  // arm, the controller demonstrably ran the loop, and the adaptive target
  // respected its clamps. The >= 30% victim-abort headline lives in the
  // committed full-sweep baseline, where the run is long enough to be
  // stable; at smoke length it is printed, not asserted.
  for (const SvcResult& r : rows) {
    if (r.outcome == "FAILED") {
      std::fprintf(stderr, "SMOKE FAIL: %s arm ended FAILED\n",
                   r.arm.c_str());
      failures++;
    }
  }
  if (adaptive.target_end < 32 || adaptive.target_end > 4096) {
    std::fprintf(stderr, "SMOKE FAIL: adaptive target %llu outside clamps\n",
                 static_cast<unsigned long long>(adaptive.target_end));
    failures++;
  }
  if (!smoke && fixed.maint_victims > 0 &&
      adaptive.maint_victims > fixed.maint_victims) {
    std::fprintf(stderr,
                 "WARN: adaptive arm lost more deadlocks than fixed arm\n");
  }
  return failures;
}

void RunE3(JsonReport* report) {
  Banner("E3: bench_contention",
         "Updater/reader interference under five maintenance strategies "
         "(fixed offered load). The paper's long-transaction problem: "
         "atomic refresh inflates updater tails and lock waits.");

  TablePrinter table({"mode", "upd_txns", "p50_us", "p99_us", "max_ms",
                      "lockwait_ms", "deadlocks", "rd_p99_us", "avg_stale",
                      "queries"},
                     13);
  table.PrintHeader();
  for (const std::string mode :
       {"none", "full", "sync-eq1", "propagate", "rolling", "mvcc-snap"}) {
    RowResult r = RunMode(mode);
    uint64_t deadlocks =
        r.snapshot.CounterTotal("rollview_lock_deadlock_victims_total");
    table.PrintRow({r.mode, FmtInt(r.updater_txns), FmtInt(r.p50_us),
                    FmtInt(r.p99_us), Fmt(r.max_us / 1000.0, 1),
                    FmtInt(r.lock_wait_ms), FmtInt(deadlocks),
                    FmtInt(r.reader_p99_us), FmtInt(r.staleness),
                    FmtInt(r.maint_queries)});
    report->BeginRow();
    RegistryRowEmitter emit(report, &r.snapshot);
    emit.Str("mode", r.mode);
    emit.Int("updater_txns", r.updater_txns);
    emit.Int("p50_us", r.p50_us);
    emit.Int("p99_us", r.p99_us);
    emit.Int("max_us", r.max_us);
    emit.Int("lock_wait_ms", r.lock_wait_ms);
    emit.CounterTotal("deadlocks", "rollview_lock_deadlock_victims_total");
    emit.Int("reader_p99_us", r.reader_p99_us);
    emit.Int("avg_stale", r.staleness);
    emit.Int("queries", r.maint_queries);
  }
  std::printf(
      "\nShape: 'full'/'sync-eq1' hold S locks on all base tables per\n"
      "refresh -> updater max latency ~ refresh duration, lock waits pile\n"
      "up. Continuous propagate/rolling bound each transaction, keeping\n"
      "tails near the 'none' baseline while staleness stays low.\n"
      "'mvcc-snap' is the ablation the paper's engine could not run:\n"
      "Eq. 2 over time-travel snapshots takes no locks at all -- its\n"
      "lock-wait column is pure updater-vs-updater noise.\n\n");
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      baseline_path = argv[i];
    }
  }

  JsonReport report("contention");
  if (!smoke) RunE3(&report);
  int failures = RunE12(smoke ? nullptr : &report, smoke);

  if (smoke && !baseline_path.empty() &&
      !BaselineMentionsArms(baseline_path)) {
    std::fprintf(stderr,
                 "SMOKE FAIL: baseline %s missing fixed-svc/adaptive-svc "
                 "rows\n",
                 baseline_path.c_str());
    failures++;
  }
  if (!smoke) report.Write();
  return failures == 0 ? 0 : 1;
}

}  // namespace bench
}  // namespace rollview

int main(int argc, char** argv) {
  return rollview::bench::Main(argc, argv);
}
