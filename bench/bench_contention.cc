// E3 -- the long-transaction problem (paper Sec. 1, 3.2).
//
// "The [refresh] transaction may be long-lived, resulting in contention
//  between the refresh process and concurrent updates to the underlying
//  tables, and between the refresh operation and concurrent reads of the
//  materialized view."
//
// Concurrent paced updaters + MV readers run for a fixed wall-clock window
// while the view is maintained by one of:
//   none       -- no maintenance (updater baseline)
//   full       -- periodic atomic full recomputation
//   sync-eq1   -- periodic atomic incremental refresh (Eq. 1, Figure 1)
//   propagate  -- continuous Figure 5 propagation + apply
//   rolling    -- continuous Figure 10 rolling propagation + apply
//
// Reported: achieved updater txns, updater p50/p99/max latency, total lock
// wait, deadlocks, reader p99, and the MV's final staleness (stable CSN
// minus MV CSN).

#include <thread>

#include "bench_util.h"
#include "harness/mv_reader.h"
#include "harness/worker.h"
#include "ivm/snapshot_propagate.h"

namespace rollview {
namespace bench {
namespace {

constexpr int kRunMillis = 1500;
constexpr double kUpdaterRate = 250.0;  // txns/sec per updater
constexpr int kUpdaters = 3;

struct RowResult {
  std::string mode;
  uint64_t updater_txns = 0;
  uint64_t p50_us = 0, p99_us = 0, max_us = 0;
  uint64_t lock_wait_ms = 0;
  uint64_t deadlocks = 0;
  uint64_t reader_p99_us = 0;
  uint64_t staleness = 0;
  uint64_t maint_queries = 0;
};

RowResult RunMode(const std::string& mode) {
  Env env;
  TwoTableWorkload workload = ValueOrDie(
      TwoTableWorkload::Create(&env.db, /*r_rows=*/30000, /*s_rows=*/8000,
                               /*join_domain=*/1024, /*seed=*/5),
      "workload");
  env.capture.CatchUp();
  View* view =
      ValueOrDie(env.views.CreateView("V", workload.ViewDef()), "view");
  CheckOk(env.views.Materialize(view), "materialize");
  env.capture.Start();
  env.db.lock_manager()->ResetStats();

  std::vector<std::unique_ptr<UpdateStream>> streams;
  std::vector<std::unique_ptr<Worker>> updaters;
  for (int i = 0; i < kUpdaters; ++i) {
    streams.push_back(std::make_unique<UpdateStream>(
        &env.db,
        i == 0 ? workload.SStream(i + 1, 100 + i)
               : workload.RStream(i + 1, 100 + i),
        100 + i));
    UpdateStream* s = streams.back().get();
    Worker::Options opts;
    opts.target_ops_per_sec = kUpdaterRate;
    updaters.push_back(
        std::make_unique<Worker>([s] { return s->RunTransaction(); }, opts));
  }

  MvReader reader(&env.views, view);
  Worker::Options reader_opts;
  reader_opts.target_ops_per_sec = 200;
  Worker read_worker([&reader] { return reader.ReadOnce(); }, reader_opts);

  // Staleness sampler: stable CSN minus MV CSN, every 20 ms.
  Counter staleness_samples;
  Counter staleness_sum;
  Worker staleness_worker(
      [&]() -> Status {
        staleness_sum.Add(env.db.stable_csn() - view->mv->csn());
        staleness_samples.Add();
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return Status::OK();
      },
      Worker::Options{.name = "staleness"});

  // Maintenance actors.
  std::unique_ptr<SyncRefresher> refresher;
  std::unique_ptr<Worker> refresh_worker;
  std::unique_ptr<Propagator> plain;
  std::unique_ptr<RollingPropagator> rolling;
  std::unique_ptr<SnapshotPropagator> snap;
  std::unique_ptr<Applier> applier;
  std::unique_ptr<Worker> maintain_worker;

  if (mode == "full" || mode == "sync-eq1") {
    refresher = std::make_unique<SyncRefresher>(&env.views, view);
    SyncRefresher* r = refresher.get();
    bool full = (mode == "full");
    refresh_worker = std::make_unique<Worker>(
        [r, full]() -> Status {
          Status s = full ? r->RefreshFull().status()
                          : r->RefreshEq1().status();
          if (!s.ok()) return s;
          std::this_thread::sleep_for(std::chrono::milliseconds(400));
          return Status::OK();
        },
        Worker::Options{.name = "refresh"});
  } else if (mode == "propagate" || mode == "rolling" ||
             mode == "mvcc-snap") {
    applier = std::make_unique<Applier>(&env.views, view,
                                        ApplierOptions{.prune_view_delta = true});
    if (mode == "propagate") {
      plain = std::make_unique<Propagator>(
          &env.views, view, std::make_unique<TargetRowsInterval>(256));
    } else if (mode == "mvcc-snap") {
      snap = std::make_unique<SnapshotPropagator>(
          &env.views, view, std::make_unique<TargetRowsInterval>(256));
    } else {
      std::vector<std::unique_ptr<IntervalPolicy>> ps;
      ps.push_back(std::make_unique<TargetRowsInterval>(256));
      ps.push_back(std::make_unique<TargetRowsInterval>(64));
      rolling = std::make_unique<RollingPropagator>(&env.views, view,
                                                    std::move(ps));
    }
    maintain_worker = std::make_unique<Worker>(
        [&]() -> Status {
          bool advanced = false;
          if (plain != nullptr) {
            Result<bool> r = plain->Step();
            if (!r.ok()) return r.status();
            advanced = r.value();
          } else if (snap != nullptr) {
            Result<bool> r = snap->Step();
            if (!r.ok()) return r.status();
            advanced = r.value();
          } else {
            Result<bool> r = rolling->Step();
            if (!r.ok()) return r.status();
            advanced = r.value();
          }
          Csn hwm = view->high_water_mark();
          if (hwm > view->mv->csn()) {
            ROLLVIEW_RETURN_NOT_OK(applier->RollTo(hwm));
          }
          if (!advanced) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          return Status::OK();
        },
        Worker::Options{.name = "maintain"});
  }

  for (auto& u : updaters) u->Start();
  read_worker.Start();
  staleness_worker.Start();
  if (refresh_worker) refresh_worker->Start();
  if (maintain_worker) maintain_worker->Start();

  std::this_thread::sleep_for(std::chrono::milliseconds(kRunMillis));

  for (auto& u : updaters) CheckOk(u->Join(), "updater");
  if (refresh_worker) CheckOk(refresh_worker->Join(), "refresher");
  if (maintain_worker) CheckOk(maintain_worker->Join(), "maintainer");
  CheckOk(read_worker.Join(), "reader");
  CheckOk(staleness_worker.Join(), "staleness");
  env.capture.Stop();

  RowResult out;
  out.mode = mode;
  uint64_t p50 = 0, p99 = 0, max_ns = 0;
  for (auto& u : updaters) {
    out.updater_txns += u->iterations();
    p50 = std::max(p50, u->latency().Percentile(0.50));
    p99 = std::max(p99, u->latency().Percentile(0.99));
    max_ns = std::max(max_ns, u->latency().max_nanos());
  }
  out.p50_us = p50 / 1000;
  out.p99_us = p99 / 1000;
  out.max_us = max_ns / 1000;
  LockManager::Stats ls = env.db.lock_manager()->GetStats();
  out.lock_wait_ms = ls.wait_nanos / 1000000;
  out.deadlocks = ls.deadlocks;
  out.reader_p99_us = read_worker.latency().Percentile(0.99) / 1000;
  out.staleness = staleness_samples.value() == 0
                      ? 0
                      : staleness_sum.value() / staleness_samples.value();
  if (refresher) out.maint_queries = refresher->stats().queries;
  if (plain) out.maint_queries = plain->runner()->stats().queries;
  if (rolling) out.maint_queries = rolling->runner()->stats().queries;
  if (snap) out.maint_queries = snap->stats().exec.queries;
  return out;
}

}  // namespace

void Main() {
  Banner("E3: bench_contention",
         "Updater/reader interference under five maintenance strategies "
         "(fixed offered load). The paper's long-transaction problem: "
         "atomic refresh inflates updater tails and lock waits.");

  TablePrinter table({"mode", "upd_txns", "p50_us", "p99_us", "max_ms",
                      "lockwait_ms", "deadlocks", "rd_p99_us", "avg_stale",
                      "queries"},
                     13);
  table.PrintHeader();
  for (const std::string mode :
       {"none", "full", "sync-eq1", "propagate", "rolling", "mvcc-snap"}) {
    RowResult r = RunMode(mode);
    table.PrintRow({r.mode, FmtInt(r.updater_txns), FmtInt(r.p50_us),
                    FmtInt(r.p99_us), Fmt(r.max_us / 1000.0, 1),
                    FmtInt(r.lock_wait_ms), FmtInt(r.deadlocks),
                    FmtInt(r.reader_p99_us), FmtInt(r.staleness),
                    FmtInt(r.maint_queries)});
  }
  std::printf(
      "\nShape: 'full'/'sync-eq1' hold S locks on all base tables per\n"
      "refresh -> updater max latency ~ refresh duration, lock waits pile\n"
      "up. Continuous propagate/rolling bound each transaction, keeping\n"
      "tails near the 'none' baseline while staleness stays low.\n"
      "'mvcc-snap' is the ablation the paper's engine could not run:\n"
      "Eq. 2 over time-travel snapshots takes no locks at all -- its\n"
      "lock-wait column is pure updater-vs-updater noise.\n");
}

}  // namespace bench
}  // namespace rollview

int main() {
  rollview::bench::Main();
  return 0;
}
