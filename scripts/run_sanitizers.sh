#!/usr/bin/env bash
# Drive the sanitizer presets over the robustness-critical ctest labels:
#
#   tsan   -> scrub + concurrency + parallel + compiled + durability + obs
#             (races in scrub-vs-apply locking, scrape-vs-drop teardown,
#             partition strip barriers, half-join probe-vs-advance
#             latching, group-commit flusher vs committers vs fault storms,
#             freshness stamping across committer/flusher/strip/apply
#             threads, trace ring under concurrent writers and scrapes)
#   asan   -> scrub + recovery + compiled + durability + obs   (WAL replay,
#             checkpoint decode, repair escalation, half-join rebuild
#             memory safety, segment scan over torn/corrupt files,
#             borrowed-instrument registration/drop lifetimes)
#   ubsan  -> scrub + recovery + parallel + compiled + durability
#             (digest mixing arithmetic, cursor folding, partition math,
#             flat-kernel address arithmetic, CRC/LSN framing arithmetic)
#
#   scripts/run_sanitizers.sh [tsan|asan|ubsan]...
#
# With no arguments all three run. Each sanitizer configures/builds its own
# CMake preset tree (build-tsan/, build-asan/, build-ubsan/) so a plain
# `cmake --preset default` build is never polluted. Exits nonzero on the
# first failing sanitizer arm.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(tsan asan ubsan)
fi

labels_for() {
  case "$1" in
    tsan)  echo "scrub|concurrency|parallel|compiled|durability|obs" ;;
    asan)  echo "scrub|recovery|compiled|durability|obs" ;;
    ubsan) echo "scrub|recovery|parallel|compiled|durability" ;;
    *)
      echo "unknown sanitizer '$1' (expected tsan, asan or ubsan)" >&2
      return 1
      ;;
  esac
}

for san in "${sanitizers[@]}"; do
  labels="$(labels_for "${san}")"
  echo "== ${san}: ctest -L '${labels}'"
  cmake --preset "${san}" >/dev/null
  cmake --build --preset "${san}" -j "$(nproc)" >/dev/null
  ctest --test-dir "${repo_root}/build-${san}" -L "${labels}" \
        --output-on-failure -j "$(nproc)"
done

echo "sanitizers clean: ${sanitizers[*]}"
