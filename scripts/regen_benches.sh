#!/usr/bin/env bash
# Regenerate every committed BENCH_*.json baseline from a fresh Release-ish
# build. Run from anywhere; outputs land at the repo root, next to this
# script's parent directory.
#
#   scripts/regen_benches.sh [build_dir]
#
# The perf-smoke ctest label (bench_executor_smoke) compares deterministic
# counters against the committed BENCH_executor.json and enforces wide
# wall-clock floors on the cache-on and compiled-program speedups, so rerun
# this script -- on a quiet machine -- whenever an intentional change
# shifts those counters, then commit the refreshed JSON together with the
# change. The full (non-smoke) bench_executor additionally asserts the
# compiled arm's >= 2x speedup at E11's smallest interval.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
mkdir -p "${build_dir}"
build_dir="$(cd "${build_dir}" && pwd)"  # absolute: we cd away below

cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
cmake --build "${build_dir}" -j "$(nproc)" \
  --target bench_executor bench_fault_recovery bench_recovery \
           bench_contention bench_multiview bench_scrub \
           bench_freshness >/dev/null

# Each bench writes BENCH_<experiment>.json into its working directory.
workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
cd "${workdir}"

for bench in bench_executor bench_fault_recovery bench_recovery \
             bench_contention bench_multiview bench_scrub \
             bench_freshness; do
  echo "== ${bench}"
  "${build_dir}/bench/${bench}"
done

for json in BENCH_*.json; do
  # Every baseline must have been produced by the shared registry-snapshot
  # serializer (bench_util RegistryRowEmitter); a missing marker means a
  # bench regressed to a bespoke emitter and its schema is no longer
  # governed by the unified telemetry layer.
  if ! grep -q '"serializer": "registry-snapshot-v1"' "${json}"; then
    echo "FATAL: ${json} lacks the registry-snapshot-v1 serializer marker" >&2
    echo "       (did a bench stop emitting rows through RegistryRowEmitter?)" >&2
    exit 1
  fi
  cp "${json}" "${repo_root}/${json}"
  echo "updated ${repo_root}/${json}"
done
