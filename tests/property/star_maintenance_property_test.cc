// End-to-end property sweep at the widest join width in the suite: a
// 4-relation star view (fact + 3 dimensions) maintained by the managed
// MaintenanceService (background frontier-rolling propagation + apply)
// under randomized fact/dimension churn, checked against snapshot oracles
// at random roll points.

#include <gtest/gtest.h>

#include "ivm/maintenance.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class StarMaintenancePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StarMaintenancePropertyTest, FourWayStarUnderManagedMaintenance) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 7 + 1);

  TestEnv env;
  StarSchemaConfig config;
  config.num_dims = 3;
  config.dim_rows = 10 + seed % 10;
  config.fact_rows = 150 + seed * 20;
  config.zipf_theta = 0.5 + 0.05 * (seed % 5);
  auto created = StarSchemaWorkload::Create(env.db(), config,
                                            static_cast<uint64_t>(seed));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  StarSchemaWorkload star = created.value();
  env.CatchUpCapture();

  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views()->CreateView("V", star.ViewDef()));
  ASSERT_OK(env.views()->Materialize(view));
  Csn t0 = view->propagate_from.load();

  UpdateStream fact(env.db(), star.FactStream(1, seed + 10), seed + 10);
  std::vector<std::unique_ptr<UpdateStream>> dims;
  for (size_t d = 0; d < config.num_dims; ++d) {
    dims.push_back(std::make_unique<UpdateStream>(
        env.db(), star.DimStream(d, 2 + static_cast<int64_t>(d), seed),
        seed + 20 + d));
    auto txn = env.db()->Begin();
    auto rows = env.db()->Scan(txn.get(), star.dims[d]);
    ASSERT_TRUE(rows.ok());
    ASSERT_OK(env.db()->Commit(txn.get()));
    dims.back()->SeedMirror(std::move(rows).value());
  }

  env.StartCapture();
  MaintenanceService::Options mopts;
  mopts.target_rows_per_query = 16 + 8 * (seed % 4);
  mopts.prune_view_delta = false;  // oracle checks replay history
  MaintenanceService service(env.views(), view, mopts);
  service.Start();

  // Randomized churn: hot fact, occasional key-preserving dim updates.
  const int rounds = 4 + seed % 3;
  for (int round = 0; round < rounds; ++round) {
    int burst = static_cast<int>(rng.Uniform(2, 6));
    for (int i = 0; i < burst; ++i) {
      ASSERT_OK(fact.RunTransaction());
      if (rng.Bernoulli(0.3)) {
        ASSERT_OK(dims[static_cast<size_t>(
                          rng.Uniform(0, config.num_dims - 1))]
                      ->RunTransaction());
      }
    }
    Csn target = env.db()->stable_csn();
    ASSERT_OK(service.Drain(target));
    // MV vs oracle at wherever apply landed.
    DeltaRows oracle = OracleViewState(env.db(), view, view->mv->csn());
    ASSERT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()))
        << "round " << round << " seed " << seed;
  }
  ASSERT_OK(service.Stop());

  // Timed-delta invariant on random windows across the full history.
  Csn hwm = view->high_water_mark();
  for (int i = 0; i < 6; ++i) {
    Csn a = static_cast<Csn>(rng.Uniform(static_cast<int64_t>(t0),
                                         static_cast<int64_t>(hwm)));
    Csn b = static_cast<Csn>(rng.Uniform(static_cast<int64_t>(a),
                                         static_cast<int64_t>(hwm)));
    if (a >= b) continue;
    ASSERT_TRUE(CheckTimedDeltaWindow(env.db(), view, a, b))
        << "seed " << seed;
  }
  ASSERT_TRUE(CheckTimedDeltaWindow(env.db(), view, t0, hwm));
}

INSTANTIATE_TEST_SUITE_P(Sweep, StarMaintenancePropertyTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace rollview
