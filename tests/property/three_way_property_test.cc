// Property sweeps over 3-way join views: deeper compensation recursion
// (depth 3), three interacting query lists in RollingPropagate, and the
// full L-region geometry in 3 dimensions.

#include <gtest/gtest.h>

#include "ivm/propagate.h"
#include "ivm/region_tracker.h"
#include "ivm/rolling.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

struct ThreeWay {
  TableId t0, t1, t2;
  SpjViewDef def;
};

// T0(a,b,v) -- T0.b = T1.a -- T1(a,b,v) -- T1.b = T2.a -- T2(a,b,v).
ThreeWay MakeThreeWay(Db* db, int64_t rows, int64_t domain, uint64_t seed) {
  ThreeWay w{};
  Rng rng(seed);
  Schema schema({Column{"a", ValueType::kInt64},
                 Column{"b", ValueType::kInt64},
                 Column{"v", ValueType::kInt64}});
  TableOptions opts;
  opts.indexed_columns = {0, 1};
  TableId ids[3];
  for (int i = 0; i < 3; ++i) {
    auto r = db->CreateTable("T" + std::to_string(i), schema, opts);
    EXPECT_TRUE(r.ok());
    ids[i] = r.value();
    auto txn = db->Begin();
    for (int64_t k = 0; k < rows; ++k) {
      EXPECT_OK(db->Insert(txn.get(), ids[i],
                           Tuple{Value(rng.Uniform(0, domain - 1)),
                                 Value(rng.Uniform(0, domain - 1)),
                                 Value(k)}));
    }
    EXPECT_OK(db->Commit(txn.get()));
  }
  w.t0 = ids[0];
  w.t1 = ids[1];
  w.t2 = ids[2];
  w.def = ChainJoin({ids[0], ids[1], ids[2]}, {{1, 0}, {1, 0}});
  return w;
}

class ThreeWayPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreeWayPropertyTest, RollingInvariantAndGeometry) {
  const int seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed) * 31 + 7);
  TestEnv env;
  ThreeWay w = MakeThreeWay(env.db(), 25 + seed % 15, 5 + seed % 4,
                            static_cast<uint64_t>(seed));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* view, env.views()->CreateView("V3", w.def));
  ASSERT_OK(env.views()->Materialize(view));
  Csn t0 = view->propagate_from.load();

  // Three independent update streams with different rates.
  auto touch = [&](TableId table, int64_t key_base, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      auto txn = env.db()->Begin();
      int64_t domain = 5 + seed % 4;
      ASSERT_OK(env.db()->Insert(
          txn.get(), table,
          Tuple{Value(rng.Uniform(0, domain - 1)),
                Value(rng.Uniform(0, domain - 1)),
                Value(key_base + static_cast<int64_t>(i))}));
      ASSERT_OK(env.db()->Commit(txn.get()));
    }
  };

  std::vector<std::unique_ptr<IntervalPolicy>> policies;
  policies.push_back(std::make_unique<FixedInterval>(2 + seed % 4));
  policies.push_back(std::make_unique<FixedInterval>(5 + seed % 7));
  policies.push_back(std::make_unique<FixedInterval>(3 + seed % 11));
  RollingOptions options;
  options.compute_delta.skip_empty_ranges = (seed % 2 == 0);
  RollingPropagator prop(env.views(), view, std::move(policies), options);
  RegionTracker tracker;
  prop.runner()->set_region_tracker(&tracker);

  Csn target = t0;
  for (int round = 0; round < 3; ++round) {
    touch(w.t0, 1000 * round, 4);
    touch(w.t1, 2000 * round, 2 + round);
    touch(w.t2, 3000 * round, 1);
    env.CatchUpCapture();
    // Note: with skip_empty_ranges off, propagation queries' own commits
    // advance capture past `target` while RunUntil works -- compare to the
    // snapshot, not to the moving mark.
    target = env.capture()->high_water_mark();
    ASSERT_OK(prop.RunUntil(target));
  }
  Csn hwm = view->high_water_mark();
  ASSERT_GE(hwm, target);

  // Timed-delta invariant on random windows (depth-3 compensation at work).
  for (int i = 0; i < 8; ++i) {
    Csn a = static_cast<Csn>(rng.Uniform(static_cast<int64_t>(t0),
                                         static_cast<int64_t>(hwm)));
    Csn b = static_cast<Csn>(rng.Uniform(static_cast<int64_t>(a),
                                         static_cast<int64_t>(hwm)));
    if (a >= b) continue;
    ASSERT_TRUE(CheckTimedDeltaWindow(env.db(), view, a, b))
        << "seed " << seed;
  }
  ASSERT_TRUE(CheckTimedDeltaWindow(env.db(), view, t0, hwm));

  // 3-D signed-coverage geometry (only exact when nothing was skipped).
  if (!options.compute_delta.skip_empty_ranges) {
    auto violation = tracker.CheckCoverage(t0, hwm);
    EXPECT_FALSE(violation.has_value())
        << "coverage violation, seed " << seed << "\n"
        << tracker.Dump();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ThreeWayPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace rollview
