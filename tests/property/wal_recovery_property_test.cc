// Property sweeps for durability: random histories encode/decode through
// the WAL codec bit-exactly, survive arbitrary tail truncation, and recover
// into an engine whose every historical snapshot matches the original.

#include <gtest/gtest.h>

#include "storage/wal_codec.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

Value RandomValue(Rng& rng) {
  switch (rng.Uniform(0, 3)) {
    case 0:
      return Value(rng.Uniform(-1000000, 1000000));
    case 1:
      return Value(static_cast<double>(rng.Uniform(-1000, 1000)) / 7.0);
    case 2: {
      std::string s;
      int64_t len = rng.Uniform(0, 24);
      for (int64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.Uniform(32, 126)));
      }
      return Value(std::move(s));
    }
    default:
      return Value::Null();
  }
}

WalRecord RandomRecord(Rng& rng) {
  WalRecord rec;
  switch (rng.Uniform(0, 4)) {
    case 0:
      rec.kind = WalRecord::Kind::kInsert;
      break;
    case 1:
      rec.kind = WalRecord::Kind::kDelete;
      break;
    case 2:
      rec.kind = WalRecord::Kind::kCommit;
      rec.commit_csn = static_cast<Csn>(rng.Uniform(1, 1 << 20));
      rec.commit_time = std::chrono::system_clock::time_point(
          std::chrono::seconds(rng.Uniform(0, 1 << 30)));
      break;
    case 3:
      rec.kind = WalRecord::Kind::kAbort;
      break;
    default: {
      rec.kind = WalRecord::Kind::kCreateTable;
      auto payload = std::make_shared<CreateTablePayload>();
      payload->name = "t" + std::to_string(rng.Uniform(0, 1 << 16));
      std::vector<Column> cols;
      int64_t ncols = rng.Uniform(0, 5);
      for (int64_t i = 0; i < ncols; ++i) {
        cols.push_back(Column{
            "c" + std::to_string(i),
            static_cast<ValueType>(rng.Uniform(1, 3))});
      }
      payload->schema = Schema(std::move(cols));
      payload->capture_mode =
          rng.Bernoulli(0.5) ? CaptureMode::kLog : CaptureMode::kTrigger;
      for (int64_t i = 0; i < rng.Uniform(0, 3); ++i) {
        payload->indexed_columns.push_back(
            static_cast<size_t>(rng.Uniform(0, 4)));
      }
      rec.create = std::move(payload);
      break;
    }
  }
  rec.lsn = static_cast<Lsn>(rng.Uniform(0, 1 << 20));
  rec.txn = static_cast<TxnId>(rng.Uniform(1, 1 << 20));
  rec.table = static_cast<TableId>(rng.Uniform(1, 100));
  if (rec.kind == WalRecord::Kind::kInsert ||
      rec.kind == WalRecord::Kind::kDelete) {
    int64_t cells = rng.Uniform(0, 6);
    for (int64_t i = 0; i < cells; ++i) rec.tuple.push_back(RandomValue(rng));
  }
  return rec;
}

bool RecordsEqual(const WalRecord& a, const WalRecord& b) {
  if (!(a.kind == b.kind && a.lsn == b.lsn && a.txn == b.txn &&
        a.table == b.table && a.commit_csn == b.commit_csn &&
        a.tuple == b.tuple)) {
    return false;
  }
  if ((a.create == nullptr) != (b.create == nullptr)) return false;
  if (a.create != nullptr) {
    return a.create->name == b.create->name &&
           a.create->schema == b.create->schema &&
           a.create->capture_mode == b.create->capture_mode &&
           a.create->indexed_columns == b.create->indexed_columns;
  }
  return true;
}

class WalCodecPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(WalCodecPropertyTest, RoundTripAndTruncation) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 1009 + 3);
  std::vector<WalRecord> records;
  int64_t n = rng.Uniform(1, 60);
  for (int64_t i = 0; i < n; ++i) records.push_back(RandomRecord(rng));

  std::string encoded = EncodeWal(records);
  auto decoded = DecodeWal(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_TRUE(RecordsEqual(records[i], (*decoded)[i])) << "record " << i;
  }

  // Any tail truncation yields a clean prefix (never an error, never a
  // mangled record).
  for (int cut = 0; cut < 5; ++cut) {
    size_t keep = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(encoded.size())));
    auto torn = DecodeWal(encoded.substr(0, keep));
    ASSERT_TRUE(torn.ok());
    ASSERT_LE(torn->size(), records.size());
    for (size_t i = 0; i < torn->size(); ++i) {
      EXPECT_TRUE(RecordsEqual(records[i], (*torn)[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WalCodecPropertyTest,
                         ::testing::Range(0, 12));

class RecoveryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryPropertyTest, RecoveredSnapshotsMatchOriginal) {
  const int seed = GetParam();
  CaptureOptions copts;
  copts.truncate_wal = false;
  TestEnv env(copts);
  auto created = TwoTableWorkload::Create(
      env.db(), 20 + seed % 20, 15, 4 + seed % 3,
      static_cast<uint64_t>(seed),
      seed % 2 == 0 ? CaptureMode::kLog : CaptureMode::kTrigger);
  ASSERT_TRUE(created.ok());
  TwoTableWorkload workload = created.value();
  env.CatchUpCapture();

  UpdateStream r_stream(env.db(), workload.RStream(1, seed + 1), seed + 1);
  UpdateStream s_stream(env.db(), workload.SStream(2, seed + 2), seed + 2);
  Rng rng(static_cast<uint64_t>(seed) + 99);
  int txns = 10 + seed % 15;
  for (int i = 0; i < txns; ++i) {
    ASSERT_OK((rng.Bernoulli(0.6) ? r_stream : s_stream).RunTransaction());
  }
  env.CatchUpCapture();
  Csn stable = env.db()->stable_csn();

  std::vector<WalRecord> wal;
  env.db()->wal()->ReadFrom(0, 1u << 24, &wal);
  // Round-trip the log through the codec too.
  auto decoded = DecodeWal(EncodeWal(wal));
  ASSERT_TRUE(decoded.ok());
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Db> recovered,
                       Db::Recover(decoded.value()));
  ASSERT_EQ(recovered->stable_csn(), stable);

  ASSERT_OK_AND_ASSIGN(TableId r2, recovered->FindTable("R"));
  ASSERT_OK_AND_ASSIGN(TableId s2, recovered->FindTable("S"));
  for (int i = 0; i < 8; ++i) {
    Csn c = static_cast<Csn>(rng.Uniform(1, static_cast<int64_t>(stable)));
    ASSERT_OK_AND_ASSIGN(auto orig, env.db()->SnapshotScan(workload.r, c));
    ASSERT_OK_AND_ASSIGN(auto rec, recovered->SnapshotScan(r2, c));
    ASSERT_TRUE(NetEquivalent(FromTuples(orig), FromTuples(rec)))
        << "R@" << c << " seed " << seed;
    ASSERT_OK_AND_ASSIGN(orig, env.db()->SnapshotScan(workload.s, c));
    ASSERT_OK_AND_ASSIGN(rec, recovered->SnapshotScan(s2, c));
    ASSERT_TRUE(NetEquivalent(FromTuples(orig), FromTuples(rec)))
        << "S@" << c << " seed " << seed;
  }

  // Delta tables agree after a capture pass over the recovered log.
  LogCapture capture2(recovered.get());
  capture2.CatchUp();
  EXPECT_TRUE(NetEquivalent(env.db()->delta(workload.r)->ScanAll(),
                            recovered->delta(r2)->ScanAll()));
  EXPECT_EQ(env.db()->delta(workload.r)->size(),
            recovered->delta(r2)->size());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RecoveryPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace rollview
