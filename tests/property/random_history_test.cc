// Property-based sweeps: random update histories x propagator
// configurations x random roll points, all checked against the MVCC
// oracle. This is the broadest correctness net in the suite: any violation
// of Theorems 4.1-4.3 or of the min-timestamp rule shows up here.

#include <gtest/gtest.h>

#include <tuple>

#include "ivm/apply.h"
#include "ivm/propagate.h"
#include "ivm/rolling.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

enum class PropKind {
  kComputeDeltaDrain,   // Figure 4 over one big interval
  kPropagateFixed,      // Figure 5, fixed interval
  kPropagateTiny,       // Figure 5, interval = 1 (every commit)
  kRollingUniform,      // Figure 10, same interval everywhere
  kRollingSkewed,       // Figure 10, hot/cold per-relation intervals
  kRollingAdaptive,     // Figure 10, target-rows policies
};

std::string KindName(PropKind k) {
  switch (k) {
    case PropKind::kComputeDeltaDrain:
      return "ComputeDeltaDrain";
    case PropKind::kPropagateFixed:
      return "PropagateFixed";
    case PropKind::kPropagateTiny:
      return "PropagateTiny";
    case PropKind::kRollingUniform:
      return "RollingUniform";
    case PropKind::kRollingSkewed:
      return "RollingSkewed";
    case PropKind::kRollingAdaptive:
      return "RollingAdaptive";
  }
  return "?";
}

class RandomHistoryTest
    : public ::testing::TestWithParam<std::tuple<int, PropKind>> {};

TEST_P(RandomHistoryTest, InvariantHoldsUnderRandomHistory) {
  const int seed = std::get<0>(GetParam());
  const PropKind kind = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 13);

  TestEnv env;
  ASSERT_OK_AND_ASSIGN(
      TwoTableWorkload workload,
      TwoTableWorkload::Create(env.db(), 30 + seed % 40, 20 + seed % 20,
                               4 + seed % 6, static_cast<uint64_t>(seed)));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views()->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views()->Materialize(view));
  Csn t0 = view->propagate_from.load();

  UpdateStream r_stream(env.db(), workload.RStream(1, seed + 1), seed + 1);
  UpdateStream s_stream(env.db(), workload.SStream(2, seed + 2), seed + 2);

  auto make_rolling = [&](std::vector<Csn> intervals) {
    std::vector<std::unique_ptr<IntervalPolicy>> ps;
    for (Csn len : intervals) {
      ps.push_back(std::make_unique<FixedInterval>(len));
    }
    return std::make_unique<RollingPropagator>(env.views(), view,
                                               std::move(ps));
  };

  std::unique_ptr<Propagator> plain;
  std::unique_ptr<RollingPropagator> rolling;
  switch (kind) {
    case PropKind::kComputeDeltaDrain:
      plain = std::make_unique<Propagator>(
          env.views(), view, std::make_unique<DrainInterval>());
      break;
    case PropKind::kPropagateFixed:
      plain = std::make_unique<Propagator>(
          env.views(), view,
          std::make_unique<FixedInterval>(2 + seed % 7));
      break;
    case PropKind::kPropagateTiny:
      plain = std::make_unique<Propagator>(env.views(), view,
                                           std::make_unique<FixedInterval>(1));
      break;
    case PropKind::kRollingUniform:
      rolling = make_rolling({Csn(2 + seed % 5), Csn(2 + seed % 5)});
      break;
    case PropKind::kRollingSkewed:
      rolling = make_rolling({Csn(1 + seed % 3), Csn(11 + seed % 17)});
      break;
    case PropKind::kRollingAdaptive: {
      std::vector<std::unique_ptr<IntervalPolicy>> ps;
      ps.push_back(std::make_unique<TargetRowsInterval>(3 + seed % 8));
      ps.push_back(std::make_unique<TargetRowsInterval>(2 + seed % 5));
      rolling = std::make_unique<RollingPropagator>(env.views(), view,
                                                    std::move(ps));
      break;
    }
  }

  // Random interleaving of update bursts and propagation catch-up.
  const int rounds = 4 + seed % 4;
  for (int round = 0; round < rounds; ++round) {
    int burst = static_cast<int>(rng.Uniform(1, 6));
    for (int i = 0; i < burst; ++i) {
      ASSERT_OK(r_stream.RunTransaction());
      if (rng.Bernoulli(0.4)) ASSERT_OK(s_stream.RunTransaction());
    }
    env.CatchUpCapture();
    // Sometimes propagate fully, sometimes only partway (leaving drift for
    // the next round to compensate).
    if (rng.Bernoulli(0.7)) {
      Csn target = env.capture()->high_water_mark();
      if (plain != nullptr) {
        ASSERT_OK(plain->RunUntil(target));
      } else {
        ASSERT_OK(rolling->RunUntil(target));
      }
    } else if (rolling != nullptr) {
      ASSERT_OK(rolling->Step().status());
    } else if (plain != nullptr) {
      ASSERT_OK(plain->Step().status());
    }
  }
  env.CatchUpCapture();
  Csn target = env.capture()->high_water_mark();
  if (plain != nullptr) {
    ASSERT_OK(plain->RunUntil(target));
  } else {
    ASSERT_OK(rolling->RunUntil(target));
  }
  Csn hwm = view->high_water_mark();
  ASSERT_GE(hwm, target);

  // Invariant on random windows.
  for (int i = 0; i < 12; ++i) {
    Csn a = static_cast<Csn>(rng.Uniform(static_cast<int64_t>(t0),
                                         static_cast<int64_t>(hwm)));
    Csn b = static_cast<Csn>(rng.Uniform(static_cast<int64_t>(a),
                                         static_cast<int64_t>(hwm)));
    if (a >= b) continue;
    ASSERT_TRUE(CheckTimedDeltaWindow(env.db(), view, a, b))
        << KindName(kind) << " seed " << seed;
  }
  ASSERT_TRUE(CheckTimedDeltaWindow(env.db(), view, t0, hwm));

  // Random point-in-time rolls, forward-monotone.
  Applier applier(env.views(), view);
  Csn pos = t0;
  for (int i = 0; i < 4; ++i) {
    Csn next = static_cast<Csn>(rng.Uniform(static_cast<int64_t>(pos),
                                            static_cast<int64_t>(hwm)));
    ASSERT_OK(applier.RollTo(next));
    DeltaRows oracle = OracleViewState(env.db(), view, next);
    ASSERT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()))
        << "MV wrong at " << next << " (" << KindName(kind) << " seed "
        << seed << ")";
    pos = next;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomHistoryTest,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values(PropKind::kComputeDeltaDrain,
                                         PropKind::kPropagateFixed,
                                         PropKind::kPropagateTiny,
                                         PropKind::kRollingUniform,
                                         PropKind::kRollingSkewed,
                                         PropKind::kRollingAdaptive)),
    [](const ::testing::TestParamInfo<std::tuple<int, PropKind>>& info) {
      return KindName(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace rollview
