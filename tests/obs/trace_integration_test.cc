// Copyright 2026 The rollview Authors.
//
// The tracing acceptance test: a supervised MaintenanceService under an
// armed FaultInjector must journal one complete span tree per propagation
// step attempt -- ok, skipped-empty, retried, and undone alike -- with the
// span structure matching what actually happened: failed attempts carry a
// failed root and an error, retried attempts carry the supervisor's streak
// context, cancelled attempts carry the undo span, and the per-driver
// transient counts line up 1:1 with the journaled error traces.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "harness/worker.h"
#include "ivm/maintenance.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

// Structural invariants every journaled trace must satisfy, whatever its
// outcome: a root at id 1, children id-ordered with earlier parents, and
// every span closed.
void ExpectWellFormed(const obs::StepTrace& t) {
  ASSERT_FALSE(t.spans.empty());
  EXPECT_LE(t.spans.size(), obs::StepTracer::kMaxSpansPerStep);
  EXPECT_EQ(t.root().id, 1u);
  EXPECT_EQ(t.root().parent, 0u);
  EXPECT_EQ(t.root().kind, t.root_kind);
  for (size_t i = 0; i < t.spans.size(); ++i) {
    const obs::Span& s = t.spans[i];
    EXPECT_EQ(s.id, static_cast<uint32_t>(i + 1));
    if (i > 0) {
      EXPECT_GE(s.parent, 1u);
      EXPECT_LT(s.parent, s.id);
    }
    EXPECT_GE(s.end_nanos, s.start_nanos);
  }
}

bool HasSpanOfKind(const obs::StepTrace& t, obs::SpanKind kind) {
  for (const obs::Span& s : t.spans) {
    if (s.id != t.root().id && s.kind == kind) return true;
  }
  return false;
}

TEST(TraceIntegrationTest, FaultStormJournalsCompleteSpanTrees) {
  TestEnv env;

  // Aborts only: every injected fault lands inside a propagation
  // transaction, i.e. inside an active step trace, so the journal must
  // account for every transient the supervisor sees.
  FaultInjector::Options fopts;
  fopts.seed = 0x77ace5;
  fopts.commit_abort_probability = 0.15;
  FaultInjector fi(fopts);
  env.db()->SetFaultInjector(&fi);

  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 80, 40, 8, 311));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views()->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views()->Materialize(view));
  env.StartCapture();

  obs::MetricsRegistry registry;  // declared before the service (DropOwner)
  MaintenanceService::Options mopts;
  mopts.runner.max_retries = 0;  // every transient reaches the supervisor
  mopts.target_rows_per_query = 32;
  mopts.backoff.initial = std::chrono::microseconds(100);
  mopts.backoff.max = std::chrono::microseconds(5000);
  mopts.checkpoint_every_steps = 4;  // cadence checkpoints get root traces
  mopts.apply_continuously = true;
  // Large enough that nothing is evicted: "every step attempt" is only
  // checkable if the ring never wraps.
  mopts.trace_journal_capacity = 1 << 16;
  MaintenanceService service(env.views(), view, mopts);
  service.RegisterMetrics(&registry);
  service.Start();

  std::vector<std::unique_ptr<UpdateStream>> streams;
  streams.push_back(std::make_unique<UpdateStream>(
      env.db(), workload.RStream(1, 411), 411));
  streams.push_back(std::make_unique<UpdateStream>(
      env.db(), workload.SStream(2, 412), 412));
  std::vector<std::unique_ptr<Worker>> updaters;
  for (auto& stream : streams) {
    UpdateStream* s = stream.get();
    Worker::Options opts;
    opts.name = "updater";
    opts.target_ops_per_sec = 150.0;
    updaters.push_back(std::make_unique<Worker>(
        [s] { return s->RunTransaction(); }, opts));
  }
  for (auto& w : updaters) w->Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  for (auto& w : updaters) ASSERT_OK(w->Join());

  ASSERT_OK(service.Drain(env.db()->stable_csn()));
  fi.set_armed(false);
  ASSERT_OK(service.Drain(env.db()->stable_csn()));
  ASSERT_OK(service.Stop());

  const obs::TraceJournal* journal = service.trace_journal();
  ASSERT_NE(journal, nullptr);
  ASSERT_LT(journal->recorded(), journal->capacity());  // nothing evicted
  std::vector<obs::StepTrace> traces = journal->Snapshot();
  ASSERT_EQ(traces.size(), journal->recorded());
  ASSERT_FALSE(traces.empty());

  uint64_t step_ok = 0, step_skipped = 0, step_transient = 0;
  uint64_t ckpt_transient = 0, ckpt_total = 0;
  uint64_t apply_ok = 0, apply_transient = 0;
  uint64_t retried = 0, undone = 0, rows_published = 0;
  for (const obs::StepTrace& t : traces) {
    ExpectWellFormed(t);
    EXPECT_EQ(t.view, "V");
    if (t.retries > 0) ++retried;

    switch (t.root_kind) {
      case obs::SpanKind::kStep: {
        // Root carries the interval the propagator chose.
        EXPECT_GE(t.root().Attr("relation"), 0);
        EXPECT_GT(t.root().Attr("t_b"), t.root().Attr("t_a"));
        if (t.outcome == obs::StepOutcome::kOk) {
          ++step_ok;
          rows_published += t.rows;
          EXPECT_TRUE(t.root().ok);
          EXPECT_TRUE(t.error.empty());
          // A row-publishing step ran at least a forward query and
          // committed its rows through the WAL-append path.
          if (t.rows > 0) {
            EXPECT_TRUE(HasSpanOfKind(t, obs::SpanKind::kForward));
            EXPECT_TRUE(HasSpanOfKind(t, obs::SpanKind::kWalAppend));
          }
          // WAL appends happen inside a query transaction, so their parent
          // must be a query span, never the root.
          for (const obs::Span& s : t.spans) {
            if (s.kind != obs::SpanKind::kWalAppend) continue;
            const obs::Span& parent = t.spans[s.parent - 1];
            EXPECT_TRUE(parent.kind == obs::SpanKind::kForward ||
                        parent.kind == obs::SpanKind::kCompensation)
                << "wal_append parented on " << SpanKindName(parent.kind);
          }
        } else if (t.outcome == obs::StepOutcome::kSkippedEmpty) {
          ++step_skipped;
          EXPECT_TRUE(t.root().ok);  // an empty strip is a healthy outcome
          EXPECT_EQ(t.rows, 0u);
          EXPECT_EQ(t.spans.size(), 1u);  // no queries ran
        } else {
          ASSERT_EQ(t.outcome, obs::StepOutcome::kTransientError)
              << "unexpected permanent error: " << t.error;
          ++step_transient;
          EXPECT_FALSE(t.root().ok);
          EXPECT_FALSE(t.error.empty());
        }
        if (t.undone) {
          ++undone;
          // Cancellation runs while the failing attempt's trace is active,
          // so the undo span sits in the same (failed) trace.
          EXPECT_NE(t.outcome, obs::StepOutcome::kOk);
          EXPECT_TRUE(HasSpanOfKind(t, obs::SpanKind::kUndo) ||
                      t.dropped_spans > 0);
        }
        break;
      }
      case obs::SpanKind::kCheckpoint:
        ++ckpt_total;
        if (t.outcome == obs::StepOutcome::kTransientError) ++ckpt_transient;
        break;
      case obs::SpanKind::kApply:
        EXPECT_GE(t.root().Attr("t_b"), t.root().Attr("t_a"));
        if (t.outcome == obs::StepOutcome::kOk) {
          ++apply_ok;
        } else {
          EXPECT_EQ(t.outcome, obs::StepOutcome::kTransientError);
          ++apply_transient;
        }
        break;
      default:
        ADD_FAILURE() << "unexpected root kind: " << SpanKindName(t.root_kind);
    }
  }

  // The storm happened, and retried/undone attempts are in the journal.
  EXPECT_GT(fi.GetStats().injected_aborts, 0u);
  EXPECT_GT(step_ok, 0u);
  EXPECT_GT(step_transient, 0u);
  EXPECT_GT(retried, 0u);
  EXPECT_GT(undone, 0u);
  EXPECT_GT(rows_published, 0u);
  EXPECT_GT(apply_ok, 0u);
  EXPECT_GT(ckpt_total, 0u);

  // "Every step attempt produces a trace": the only transients the
  // supervisor counted are the ones journaled as error traces, per driver.
  DriverStats ps = service.propagate_driver_stats();
  DriverStats as = service.apply_driver_stats();
  EXPECT_EQ(step_transient + ckpt_transient, ps.transient_errors);
  EXPECT_EQ(apply_transient, as.transient_errors);

  // The derived journal counter a scrape sees agrees with the journal.
  EXPECT_EQ(registry.Snapshot().CounterValue("rollview_trace_steps_total",
                                             {{"view", "V"}}),
            journal->recorded());

  env.db()->SetFaultInjector(nullptr);
}

}  // namespace
}  // namespace rollview
