// Copyright 2026 The rollview Authors.
//
// MetricsRegistry: owned/borrowed/callback registration, label
// canonicalization, owner-scoped deregistration, snapshot value semantics,
// and golden renderings of the two stable export formats. The concurrency
// case runs under TSan via the `concurrency` ctest label.

#include "obs/registry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace rollview {
namespace obs {
namespace {

TEST(MetricsRegistryTest, OwnedInstrumentsAreStableAndShared) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("rollview_step_total", {{"view", "V1"}});
  Counter* c2 = registry.GetCounter("rollview_step_total", {{"view", "V1"}});
  EXPECT_EQ(c1, c2);  // same (name, labels) => same instrument
  Counter* other = registry.GetCounter("rollview_step_total", {{"view", "V2"}});
  EXPECT_NE(c1, other);
  c1->Add(5);
  EXPECT_EQ(registry.Snapshot().CounterValue("rollview_step_total",
                                             {{"view", "V1"}}),
            5u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsRegistryTest, LabelsCanonicalizeAcrossOrderings) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("rollview_step_total",
                                   {{"view", "V1"}, {"outcome", "ok"}});
  c->Add(3);
  // Reversed label order resolves to the same instrument and sample.
  EXPECT_EQ(registry.GetCounter("rollview_step_total",
                                {{"outcome", "ok"}, {"view", "V1"}}),
            c);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("rollview_step_total",
                              {{"outcome", "ok"}, {"view", "V1"}}),
            3u);
  EXPECT_EQ(snap.CounterValue("rollview_step_total",
                              {{"view", "V1"}, {"outcome", "ok"}}),
            3u);
}

TEST(MetricsRegistryTest, BorrowedInstrumentsAndDropOwner) {
  MetricsRegistry registry;
  Counter component_counter;
  Gauge component_gauge;
  int owner_cookie = 0;
  registry.RegisterCounter("rollview_wal_appends_total", {},
                           &component_counter, &owner_cookie);
  registry.RegisterGauge("rollview_wal_records", {}, &component_gauge,
                         &owner_cookie);
  component_counter.Add(7);
  component_gauge.Set(-4);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("rollview_wal_appends_total", {}), 7u);
  EXPECT_EQ(snap.GaugeValue("rollview_wal_records", {}), -4);

  // DropOwner removes exactly this owner's instruments; a later snapshot
  // must not dereference the (about-to-die) component instruments.
  registry.DropOwner(&owner_cookie);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.Snapshot().CounterValue("rollview_wal_appends_total", {}),
            0u);
}

TEST(MetricsRegistryTest, DropOwnerLeavesOtherOwnersAlone) {
  MetricsRegistry registry;
  Counter a, b;
  int owner_a = 0, owner_b = 0;
  registry.RegisterCounter("m_a", {}, &a, &owner_a);
  registry.RegisterCounter("m_b", {}, &b, &owner_b);
  registry.GetCounter("m_owned")->Add(1);
  registry.DropOwner(&owner_a);
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Snapshot().CounterTotal("m_b"), 0u);
  EXPECT_EQ(registry.Snapshot().CounterTotal("m_owned"), 1u);
}

TEST(MetricsRegistryTest, CallbacksSampleAtSnapshotTime) {
  MetricsRegistry registry;
  uint64_t steps = 0;
  int64_t level = 0;
  int owner = 0;
  registry.RegisterCounterFn("cb_counter", {}, [&steps] { return steps; },
                             &owner);
  registry.RegisterGaugeFn("cb_gauge", {}, [&level] { return level; }, &owner);
  steps = 41;
  level = -9;
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("cb_counter", {}), 41u);
  EXPECT_EQ(snap.GaugeValue("cb_gauge", {}), -9);
  steps = 42;  // snapshots are point-in-time copies
  EXPECT_EQ(snap.CounterValue("cb_counter", {}), 41u);
}

TEST(MetricsRegistryTest, CounterTotalSumsAcrossLabelSets) {
  MetricsRegistry registry;
  registry.GetCounter("rollview_queries_total", {{"kind", "forward"}})->Add(10);
  registry.GetCounter("rollview_queries_total", {{"kind", "compensation"}})
      ->Add(4);
  registry.GetCounter("unrelated", {})->Add(100);
  EXPECT_EQ(registry.Snapshot().CounterTotal("rollview_queries_total"), 14u);
}

TEST(MetricsRegistryTest, SnapshotOutlivesRegistry) {
  MetricsSnapshot snap;
  {
    MetricsRegistry registry;
    registry.GetCounter("c", {{"l", "v"}})->Add(2);
    registry.GetHistogram("h")->Record(1000);
    snap = registry.Snapshot();
  }
  EXPECT_EQ(snap.CounterValue("c", {{"l", "v"}}), 2u);
  ASSERT_NE(snap.Histogram("h", {}), nullptr);
  EXPECT_EQ(snap.Histogram("h", {})->count, 1u);
}

// Golden rendering of the Prometheus exposition format: sorted by
// (name, labels), one `# TYPE` header per metric, histograms as summaries.
// This string is the stable scrape contract; update it deliberately.
TEST(MetricsRegistryTest, GoldenPrometheusText) {
  MetricsRegistry registry;
  LatencyHistogram* h =
      registry.GetHistogram("rollview_lock_wait_latency", {{"class", "oltp"}});
  h->Record(1000);
  h->Record(2000);
  h->Record(3000);
  registry.GetCounter("rollview_step_total", {{"view", "V1"}, {"outcome", "ok"}})
      ->Add(3);
  registry
      .GetCounter("rollview_step_total",
                  {{"view", "V1"}, {"outcome", "transient_error"}})
      ->Add(1);
  registry.GetGauge("rollview_view_staleness_csn", {{"view", "V1"}})->Set(7);

  const std::string expected =
      "# TYPE rollview_lock_wait_latency summary\n"
      "rollview_lock_wait_latency{class=\"oltp\",quantile=\"0.5\"} 2000\n"
      "rollview_lock_wait_latency{class=\"oltp\",quantile=\"0.95\"} 3000\n"
      "rollview_lock_wait_latency{class=\"oltp\",quantile=\"0.99\"} 3000\n"
      "rollview_lock_wait_latency_sum{class=\"oltp\"} 6000\n"
      "rollview_lock_wait_latency_count{class=\"oltp\"} 3\n"
      "rollview_lock_wait_latency_max{class=\"oltp\"} 3000\n"
      "# TYPE rollview_step_total counter\n"
      "rollview_step_total{outcome=\"ok\",view=\"V1\"} 3\n"
      "rollview_step_total{outcome=\"transient_error\",view=\"V1\"} 1\n"
      "# TYPE rollview_view_staleness_csn gauge\n"
      "rollview_view_staleness_csn{view=\"V1\"} 7\n";
  EXPECT_EQ(registry.Snapshot().ToPrometheusText(), expected);
}

// Golden rendering of the structured JSON export (one metric per line,
// stable ordering) -- the other half of the exporter contract.
TEST(MetricsRegistryTest, GoldenJson) {
  MetricsRegistry registry;
  registry.GetCounter("rollview_step_total", {{"view", "V1"}})->Add(2);
  registry.GetGauge("rollview_view_hwm_csn", {{"view", "V1"}})->Set(12);
  LatencyHistogram* h = registry.GetHistogram("rollview_lock_wait_latency");
  h->Record(5000);

  const std::string expected =
      "{\n"
      "  \"metrics\": [\n"
      "    {\"name\": \"rollview_lock_wait_latency\", \"labels\": {}, "
      "\"kind\": \"histogram\", \"count\": 1, \"sum_nanos\": 5000, "
      "\"max_nanos\": 5000, \"p50\": 5000, \"p95\": 5000, \"p99\": 5000},\n"
      "    {\"name\": \"rollview_step_total\", \"labels\": "
      "{\"view\":\"V1\"}, \"kind\": \"counter\", \"value\": 2},\n"
      "    {\"name\": \"rollview_view_hwm_csn\", \"labels\": "
      "{\"view\":\"V1\"}, \"kind\": \"gauge\", \"value\": 12}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(registry.Snapshot().ToJson(), expected);
}

TEST(MetricsRegistryTest, PrometheusEscapesLabelValues) {
  MetricsRegistry registry;
  registry.GetCounter("c", {{"view", "a\"b\\c"}})->Add(1);
  std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("view=\"a\\\"b\\\\c\""), std::string::npos);
}

// Hot-path counters keep counting while other threads register, scrape and
// deregister; run under TSan via the `concurrency` label. The assertions
// are deliberately loose -- the point is the interleaving, not the values.
TEST(MetricsRegistryTest, ConcurrentRegistrationScrapeAndCounting) {
  MetricsRegistry registry;
  Counter* hot = registry.GetCounter("hot_total");
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([hot, &stop] {
      while (!stop.load(std::memory_order_relaxed)) hot->Add();
    });
  }
  threads.emplace_back([&registry, &stop] {
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snap = registry.Snapshot();
      uint64_t v = snap.CounterValue("hot_total", {});
      EXPECT_GE(v, last);  // counters are monotonic
      last = v;
    }
  });
  threads.emplace_back([&registry, &stop] {
    // A component that keeps re-registering and dropping its instruments
    // while scrapes run.
    Counter borrowed;
    int owner = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      registry.RegisterCounter("churn_total", {}, &borrowed, &owner);
      registry.RegisterCounterFn("churn_fn_total", {},
                                 [&borrowed] { return borrowed.value(); },
                                 &owner);
      registry.Snapshot();
      registry.DropOwner(&owner);
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_GT(registry.Snapshot().CounterValue("hot_total", {}), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace rollview
