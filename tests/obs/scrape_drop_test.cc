// Scrape-vs-drop race surface: a scraper thread (the rollview_inspect /
// Prometheus endpoint shape -- Snapshot + render, in a loop) hammers a
// MetricsRegistry while MaintenanceService instances register their ~40
// callback instruments, run briefly, and tear down (destructor = Stop +
// DropOwner). Snapshot and DropOwner serialize on the registry mutex, so a
// sampled callback must never touch a dead service; this test exists to
// hold that line under TSan (the "obs" + "concurrency" CI labels).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ivm/maintenance.h"
#include "obs/registry.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

TEST(ScrapeDropTest, ScrapersRaceServiceTeardownSafely) {
  TestEnv env;
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 40, 20, 8, 901));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views()->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views()->Materialize(view));
  env.StartCapture();

  obs::MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> scrapes{0};

  // Scrapers: full Snapshot + both renderings + a point lookup, flat out.
  std::vector<std::thread> scrapers;
  for (int i = 0; i < 3; ++i) {
    scrapers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        obs::MetricsSnapshot snap = registry.Snapshot();
        std::string text = snap.ToPrometheusText();
        std::string json = snap.ToJson();
        EXPECT_EQ(text.empty(), snap.samples().empty());
        EXPECT_FALSE(json.empty());
        snap.CounterTotal("rollview_step_total");
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Churn: build a fully-instrumented service (including scrub metrics),
  // let it take a few steps, destroy it -- DropOwner racing the scrapers.
  for (int cycle = 0; cycle < 12; ++cycle) {
    MaintenanceService::Options mopts;
    mopts.target_rows_per_query = 16;
    mopts.checkpoint_every_steps = 2;
    mopts.scrub_every_steps = 1;
    mopts.trace_journal_capacity = 16;
    auto service =
        std::make_unique<MaintenanceService>(env.views(), view, mopts);
    service->RegisterMetrics(&registry);
    service->Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    service.reset();  // Stop() + DropOwner() under the scrape storm
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : scrapers) t.join();
  EXPECT_GT(scrapes.load(), 0u);
  // All owners dropped: the registry is empty again and a final snapshot
  // samples nothing stale.
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_TRUE(registry.Snapshot().samples().empty());
}

}  // namespace
}  // namespace rollview
