// Copyright 2026 The rollview Authors.
//
// Renderer contract tests: the digest must distinguish a metric that is
// absent from the snapshot (rendered `-`) from one that is present with
// value zero (rendered `0`) -- a bare registry scraping a non-adaptive
// service must not fabricate zeros -- and the --watch frame must degrade
// the same way when a view exports no freshness pipeline.

#include "obs/inspect.h"

#include <gtest/gtest.h>

#include <string>

#include "common/metrics.h"
#include "obs/registry.h"

namespace rollview {
namespace {

// A minimal "view exists" snapshot: only the hwm gauge (which is what the
// digest keys views off), plus whatever the test adds.
class InspectTest : public ::testing::Test {
 protected:
  void AddGauge(const std::string& name, int64_t value) {
    registry_.RegisterGaugeFn(name, {{"view", "V"}}, [value] { return value; },
                              this);
  }
  void AddCounter(const std::string& name, uint64_t value) {
    registry_.RegisterCounterFn(name, {{"view", "V"}},
                                [value] { return value; }, this);
  }

  obs::MetricsRegistry registry_;
};

TEST_F(InspectTest, AbsentMetricsRenderAsDashNotZero) {
  AddGauge("rollview_view_hwm_csn", 12);
  AddGauge("rollview_view_mv_csn", 0);  // present AND zero: must print 0
  // staleness / target_rows / backlog / shedding: never registered.
  std::string digest = obs::RenderViewDigest(registry_.Snapshot());

  EXPECT_NE(digest.find("hwm=12"), std::string::npos) << digest;
  EXPECT_NE(digest.find("mv=0"), std::string::npos) << digest;
  EXPECT_NE(digest.find("staleness=-"), std::string::npos) << digest;
  EXPECT_NE(digest.find("target_rows=-"), std::string::npos) << digest;
  EXPECT_NE(digest.find("backlog=-"), std::string::npos) << digest;
  EXPECT_NE(digest.find("shedding=-"), std::string::npos) << digest;
  // A true zero never degrades to a dash.
  EXPECT_EQ(digest.find("mv=-"), std::string::npos) << digest;
}

TEST_F(InspectTest, PresentZeroVersusAbsentAreDistinguishable) {
  AddGauge("rollview_view_hwm_csn", 5);
  AddGauge("rollview_view_staleness_csn", 0);
  AddGauge("rollview_view_backlog_rows", 0);
  AddGauge("rollview_view_shedding", 0);
  std::string digest = obs::RenderViewDigest(registry_.Snapshot());

  EXPECT_NE(digest.find("staleness=0"), std::string::npos) << digest;
  EXPECT_NE(digest.find("backlog=0"), std::string::npos) << digest;
  EXPECT_NE(digest.find("shedding=no"), std::string::npos) << digest;
  // target_rows stays absent -> dash.
  EXPECT_NE(digest.find("target_rows=-"), std::string::npos) << digest;
}

TEST_F(InspectTest, DigestEmptyWithoutViews) {
  AddGauge("rollview_unrelated_gauge", 3);
  EXPECT_EQ(obs::RenderViewDigest(registry_.Snapshot()), "");
}

TEST_F(InspectTest, FreshnessDigestLineAppearsOnlyWithPipeline) {
  AddGauge("rollview_view_hwm_csn", 9);
  std::string without = obs::RenderViewDigest(registry_.Snapshot());
  EXPECT_EQ(without.find("e2e"), std::string::npos) << without;

  LatencyHistogram e2e;
  e2e.Record(2'000'000);  // 2ms
  registry_.RegisterHistogram("rollview_freshness_e2e_nanos",
                              {{"view", "V"}}, &e2e, this);
  AddGauge("rollview_view_staleness_usec", 150);
  AddCounter("rollview_freshness_commits_total", 7);
  std::string with = obs::RenderViewDigest(registry_.Snapshot());
  EXPECT_NE(with.find("staleness=150us"), std::string::npos) << with;
  EXPECT_NE(with.find("e2e p50=2.0ms"), std::string::npos) << with;
  EXPECT_NE(with.find("commits=7"), std::string::npos) << with;
  // Registered via this-owner histograms; drop before the locals die.
  registry_.DropOwner(this);
}

TEST_F(InspectTest, WatchFrameDegradesToDashes) {
  AddGauge("rollview_view_hwm_csn", 4);
  std::string frame = obs::RenderWatchFrame(registry_.Snapshot(), 3);
  EXPECT_NE(frame.find("frame=3"), std::string::npos) << frame;
  EXPECT_NE(frame.find("views=1"), std::string::npos) << frame;
  EXPECT_NE(frame.find("freshness  -"), std::string::npos) << frame;
  EXPECT_NE(frame.find("shedding=-"), std::string::npos) << frame;
  // No SLO gauges -> no slo line at all.
  EXPECT_EQ(frame.find("slo "), std::string::npos) << frame;
  // Driver counters degrade per-cell.
  EXPECT_NE(frame.find("propagate ok=- err=-"), std::string::npos) << frame;
}

TEST_F(InspectTest, WatchFrameRendersStageSharesFromTelescopingSums) {
  AddGauge("rollview_view_hwm_csn", 20);
  AddGauge("rollview_view_mv_csn", 20);
  LatencyHistogram e2e, durable, pickup, propagate, apply;
  // One 10ms commit decomposed 1/2/3/4 ms: shares 10/20/30/40%.
  e2e.Record(10'000'000);
  durable.Record(1'000'000);
  pickup.Record(2'000'000);
  propagate.Record(3'000'000);
  apply.Record(4'000'000);
  registry_.RegisterHistogram("rollview_freshness_e2e_nanos",
                              {{"view", "V"}}, &e2e, this);
  registry_.RegisterHistogram("rollview_freshness_stage_nanos",
                              {{"view", "V"}, {"stage", "durable"}}, &durable,
                              this);
  registry_.RegisterHistogram("rollview_freshness_stage_nanos",
                              {{"view", "V"}, {"stage", "pickup"}}, &pickup,
                              this);
  registry_.RegisterHistogram("rollview_freshness_stage_nanos",
                              {{"view", "V"}, {"stage", "propagate"}},
                              &propagate, this);
  registry_.RegisterHistogram("rollview_freshness_stage_nanos",
                              {{"view", "V"}, {"stage", "apply"}}, &apply,
                              this);
  AddGauge("rollview_slo_target_usec", 25000);
  AddGauge("rollview_slo_burn_x1000", 250);
  AddGauge("rollview_slo_breaching", 0);

  std::string frame = obs::RenderWatchFrame(registry_.Snapshot(), 1);
  EXPECT_NE(frame.find("durable=10%"), std::string::npos) << frame;
  EXPECT_NE(frame.find("pickup=20%"), std::string::npos) << frame;
  EXPECT_NE(frame.find("propagate=30%"), std::string::npos) << frame;
  EXPECT_NE(frame.find("apply=40%"), std::string::npos) << frame;
  EXPECT_NE(frame.find("p50=10.0ms"), std::string::npos) << frame;
  EXPECT_NE(frame.find("target=25000us"), std::string::npos) << frame;
  EXPECT_NE(frame.find("burn=0.25"), std::string::npos) << frame;
  EXPECT_NE(frame.find("breaching=no"), std::string::npos) << frame;
  registry_.DropOwner(this);
}

}  // namespace
}  // namespace rollview
