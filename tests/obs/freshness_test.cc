// Copyright 2026 The rollview Authors.
//
// The freshness pipeline's acceptance tests. The deterministic core drives
// every stage stamp from a fake clock -- commit ack, WAL durable, strip
// pickup, t_comp, MV visible -- and asserts the exact per-stage lags, the
// telescoping identity (stage lags sum to end-to-end latency exactly, even
// with missing or out-of-order stamps), ring eviction accounting, and the
// time-domain staleness gauge, all without a single sleep. The SLO section
// walks the burn-rate evaluator through breach, shed, and recovery against
// hand-computed burn rates. A threaded smoke races committers, a flusher,
// strips, the apply path, and scrapes for TSan. The integration test wires
// a FreshnessTracker through a real Db + MaintenanceService and checks the
// exported metric family end to end.

#include "obs/freshness.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness/mv_reader.h"
#include "harness/worker.h"
#include "ivm/maintenance.h"
#include "obs/registry.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

uint64_t StageSum(obs::ViewFreshness* ch) {
  uint64_t sum = 0;
  for (size_t i = 0; i < obs::kFreshnessStageCount; ++i) {
    sum += ch->stage_hist(static_cast<obs::FreshnessStage>(i))->sum_nanos();
  }
  return sum;
}

// --------------------------------------------------------------------------
// BoundarySeries.

TEST(BoundarySeriesTest, EarliestCoveringEventWins) {
  obs::BoundarySeries series(8);
  EXPECT_EQ(series.StampFor(1), 0u);  // nothing retained

  series.Push(10, 100);
  series.Push(20, 200);
  series.Push(30, 300);
  // The stamp is the earliest event whose boundary covers the CSN.
  EXPECT_EQ(series.StampFor(5), 100u);
  EXPECT_EQ(series.StampFor(10), 100u);
  EXPECT_EQ(series.StampFor(11), 200u);
  EXPECT_EQ(series.StampFor(20), 200u);
  EXPECT_EQ(series.StampFor(30), 300u);
  EXPECT_EQ(series.StampFor(31), 0u);  // frontier has not reached it
  EXPECT_EQ(series.frontier(), 30u);

  // Non-advancing events never move an existing stamp.
  series.Push(20, 999);
  series.Push(30, 999);
  EXPECT_EQ(series.StampFor(20), 200u);
  EXPECT_EQ(series.StampFor(30), 300u);
  EXPECT_EQ(series.size(), 3u);
}

TEST(BoundarySeriesTest, CapacityAndGc) {
  obs::BoundarySeries series(3);
  for (Csn b = 1; b <= 5; ++b) series.Push(b * 10, b * 100);
  EXPECT_EQ(series.size(), 3u);  // 30, 40, 50 retained
  EXPECT_EQ(series.StampFor(15), 300u);  // evicted events round later
  EXPECT_EQ(series.StampFor(45), 500u);

  series.DropCoveredThrough(40);
  // Only events selectable for some csn > 40 remain.
  EXPECT_EQ(series.size(), 1u);
  EXPECT_EQ(series.StampFor(45), 500u);
  EXPECT_EQ(series.frontier(), 50u);
}

// --------------------------------------------------------------------------
// Deterministic stage decomposition under a fake clock.

TEST(FreshnessTrackerTest, EveryStageStampExactUnderFakeClock) {
  uint64_t now = 0;
  obs::FreshnessOptions opts;
  opts.clock = [&now] { return now; };
  obs::FreshnessTracker tracker(opts);
  obs::ViewFreshness* ch = tracker.RegisterView("V", /*visible_start=*/0);

  // commit ack @100, durable @250, strip starts @300, t_comp @400,
  // visible @500: e2e 400 = durable 150 + pickup 50 + propagate 100
  // + apply 100.
  now = 100;
  tracker.OnCommit(1);
  EXPECT_EQ(tracker.last_commit_csn(), 1u);
  EXPECT_EQ(tracker.commits_stamped(), 1u);
  now = 250;
  tracker.OnDurable(1);
  EXPECT_EQ(tracker.durable_frontier(), 1u);
  ch->OnStripStart(/*start_nanos=*/300, /*boundary=*/1);
  ch->OnHwmAdvance(/*hwm=*/1, /*nanos=*/400);
  now = 500;
  obs::ViewFreshness::VisibleReport rep = ch->OnVisible(1);

  EXPECT_EQ(rep.commits, 1u);
  EXPECT_EQ(rep.evicted, 0u);
  EXPECT_EQ(rep.max_e2e_nanos, 400u);
  EXPECT_EQ(ch->e2e_hist()->count(), 1u);
  EXPECT_EQ(ch->e2e_hist()->sum_nanos(), 400u);
  EXPECT_EQ(ch->stage_hist(obs::FreshnessStage::kDurable)->sum_nanos(), 150u);
  EXPECT_EQ(ch->stage_hist(obs::FreshnessStage::kPickup)->sum_nanos(), 50u);
  EXPECT_EQ(ch->stage_hist(obs::FreshnessStage::kPropagate)->sum_nanos(),
            100u);
  EXPECT_EQ(ch->stage_hist(obs::FreshnessStage::kApply)->sum_nanos(), 100u);
  EXPECT_EQ(ch->visible_csn(), 1u);
  EXPECT_EQ(ch->commits_total(), 1u);
  EXPECT_EQ(ch->evicted_total(), 0u);
}

TEST(FreshnessTrackerTest, TelescopingHoldsWithMissingAndLateStamps) {
  uint64_t now = 0;
  obs::FreshnessOptions opts;
  opts.clock = [&now] { return now; };
  obs::FreshnessTracker tracker(opts);
  obs::ViewFreshness* ch = tracker.RegisterView("V", 0);

  // csn 1: no durable stamp at all (in-memory WAL). The durable stage must
  // contribute zero and pickup absorb the gap.
  now = 100;
  tracker.OnCommit(1);
  ch->OnStripStart(300, 1);
  ch->OnHwmAdvance(1, 350);
  now = 400;
  ch->OnVisible(1);
  EXPECT_EQ(ch->stage_hist(obs::FreshnessStage::kDurable)->sum_nanos(), 0u);
  EXPECT_EQ(ch->stage_hist(obs::FreshnessStage::kPickup)->sum_nanos(), 200u);
  EXPECT_EQ(ch->e2e_hist()->sum_nanos(), 300u);
  EXPECT_EQ(StageSum(ch), ch->e2e_hist()->sum_nanos());

  // csn 2: the strip picked the commit up BEFORE the flusher stamped it
  // durable (group commit lagging behind a fast propagator). Clamping
  // squeezes pickup/propagate to zero rather than going negative, and the
  // telescoping identity still holds exactly.
  now = 1000;
  tracker.OnCommit(2);
  ch->OnStripStart(1050, 2);  // pickup stamp 1050
  ch->OnHwmAdvance(2, 1100);  // t_comp 1100
  now = 1600;
  tracker.OnDurable(2);  // durable stamp 1600, after both
  now = 1700;
  obs::ViewFreshness::VisibleReport rep = ch->OnVisible(2);
  EXPECT_EQ(rep.commits, 1u);
  EXPECT_EQ(rep.max_e2e_nanos, 700u);
  // durable 600, pickup 0 (clamped), propagate 0 (clamped), apply 100.
  EXPECT_EQ(ch->stage_hist(obs::FreshnessStage::kDurable)->sum_nanos(),
            0u + 600u);
  EXPECT_EQ(ch->stage_hist(obs::FreshnessStage::kPickup)->sum_nanos(),
            200u + 0u);
  EXPECT_EQ(ch->stage_hist(obs::FreshnessStage::kPropagate)->sum_nanos(),
            50u + 0u);
  EXPECT_EQ(ch->stage_hist(obs::FreshnessStage::kApply)->sum_nanos(),
            50u + 100u);
  EXPECT_EQ(StageSum(ch), ch->e2e_hist()->sum_nanos());
}

TEST(FreshnessTrackerTest, BatchVisibilityMeasuresEveryCommitOnce) {
  uint64_t now = 0;
  obs::FreshnessOptions opts;
  opts.clock = [&now] { return now; };
  obs::FreshnessTracker tracker(opts);
  obs::ViewFreshness* ch = tracker.RegisterView("V", 0);

  for (Csn c = 1; c <= 5; ++c) {
    now = c * 100;
    tracker.OnCommit(c);
  }
  now = 600;
  tracker.OnDurable(5);
  ch->OnStripStart(700, 5);
  ch->OnHwmAdvance(5, 800);
  now = 1000;
  obs::ViewFreshness::VisibleReport rep = ch->OnVisible(5);
  EXPECT_EQ(rep.commits, 5u);
  EXPECT_EQ(rep.evicted, 0u);
  EXPECT_EQ(ch->e2e_hist()->count(), 5u);
  // e2e per commit: 1000 - c*100 -> 900+800+700+600+500 = 3500.
  EXPECT_EQ(ch->e2e_hist()->sum_nanos(), 3500u);
  EXPECT_EQ(rep.max_e2e_nanos, 900u);
  EXPECT_EQ(StageSum(ch), 3500u);

  // Re-announcing the same visibility measures nothing twice.
  rep = ch->OnVisible(5);
  EXPECT_EQ(rep.commits, 0u);
  EXPECT_EQ(ch->e2e_hist()->count(), 5u);
}

TEST(FreshnessTrackerTest, RingEvictionIsCountedNotMeasured) {
  uint64_t now = 0;
  obs::FreshnessOptions opts;
  opts.clock = [&now] { return now; };
  opts.commit_capacity = 4;
  obs::FreshnessTracker tracker(opts);
  obs::ViewFreshness* ch = tracker.RegisterView("V", 0);
  EXPECT_EQ(tracker.commit_capacity(), 4u);

  for (Csn c = 1; c <= 10; ++c) {
    now = c * 10;
    tracker.OnCommit(c);
  }
  now = 200;
  tracker.OnDurable(10);
  ch->OnStripStart(210, 10);
  ch->OnHwmAdvance(10, 220);
  now = 300;
  obs::ViewFreshness::VisibleReport rep = ch->OnVisible(10);
  // Only the last 4 commits (7..10) still have stamps; 1..6 were evicted.
  EXPECT_EQ(rep.commits + rep.evicted, 10u);
  EXPECT_EQ(rep.commits, 4u);
  EXPECT_EQ(rep.evicted, 6u);
  EXPECT_EQ(ch->commits_total(), 4u);
  EXPECT_EQ(ch->evicted_total(), 6u);
  EXPECT_EQ(ch->e2e_hist()->count(), 4u);
  EXPECT_EQ(StageSum(ch), ch->e2e_hist()->sum_nanos());
}

TEST(FreshnessTrackerTest, StalenessIsAgeOfOldestUnseenCommit) {
  uint64_t now = 0;
  obs::FreshnessOptions opts;
  opts.clock = [&now] { return now; };
  obs::FreshnessTracker tracker(opts);
  obs::ViewFreshness* ch = tracker.RegisterView("V", 0);

  EXPECT_EQ(ch->StalenessNanos(), 0u);  // nothing committed yet
  now = 1000;
  tracker.OnCommit(1);
  now = 2000;
  tracker.OnCommit(2);
  now = 5000;
  // Oldest unseen commit is csn 1, stamped at 1000.
  EXPECT_EQ(ch->StalenessNanos(), 4000u);
  EXPECT_EQ(ch->StalenessMicros(), 4);

  ch->OnHwmAdvance(1, 5000);
  ch->OnVisible(1);
  // csn 1 visible; oldest unseen is now csn 2 (stamped 2000).
  EXPECT_EQ(ch->StalenessNanos(), 3000u);
  ch->OnHwmAdvance(2, 5000);
  ch->OnVisible(2);
  EXPECT_EQ(ch->StalenessNanos(), 0u);  // fully caught up

  // A reader records what it saw into the read-staleness histogram.
  now = 9000;
  tracker.OnCommit(3);
  now = 9500;
  ch->OnRead();
  EXPECT_EQ(ch->read_staleness_hist()->count(), 1u);
  EXPECT_EQ(ch->read_staleness_hist()->sum_nanos(), 500u);
}

TEST(FreshnessTrackerTest, RegisterViewIsIdempotentPerName) {
  obs::FreshnessTracker tracker;
  obs::ViewFreshness* a = tracker.RegisterView("A", 0);
  obs::ViewFreshness* b = tracker.RegisterView("B", 0);
  EXPECT_NE(a, b);
  EXPECT_EQ(tracker.RegisterView("A", 7), a);  // same channel, seed ignored
  EXPECT_EQ(tracker.FindView("A"), a);
  EXPECT_EQ(tracker.FindView("B"), b);
  EXPECT_EQ(tracker.FindView("C"), nullptr);
}

// --------------------------------------------------------------------------
// SLO burn-rate evaluator.

TEST(FreshnessSloTest, BurnRateShedAndRecoveryWithHysteresis) {
  obs::FreshnessSloOptions opts;
  opts.target_staleness_nanos = 100;
  opts.window_nanos = 1000;
  opts.budget_fraction = 0.25;  // 1/4 of samples may violate at burn 1.0
  opts.shed_burn = 1.0;
  opts.recover_burn = 0.5;
  opts.min_samples = 4;
  obs::FreshnessSlo slo(opts);
  ASSERT_TRUE(slo.enabled());

  // Three healthy samples: below min_samples, no action.
  EXPECT_FALSE(slo.Observe(10, 100));
  EXPECT_FALSE(slo.Observe(10, 200));
  EXPECT_FALSE(slo.Observe(10, 300));
  EXPECT_FALSE(slo.shedding());
  EXPECT_FALSE(slo.breaching());

  // Fourth sample violates: 1 of 4 over target -> violating fraction 0.25,
  // burn = 0.25 / 0.25 = 1.0 -> sheds (flip returned).
  EXPECT_TRUE(slo.Observe(500, 400));
  EXPECT_TRUE(slo.shedding());
  EXPECT_TRUE(slo.breaching());
  EXPECT_EQ(slo.burn_x1000(), 1000);

  // Healthy samples dilute the window: 5..7 samples keep burn above the
  // recover threshold (0.8, 0.67, 0.57 -- no flip), the 8th hits exactly
  // 1/8 violating = burn 0.5 <= recover_burn and shedding exits.
  EXPECT_FALSE(slo.Observe(10, 510));
  EXPECT_FALSE(slo.Observe(10, 520));
  EXPECT_FALSE(slo.Observe(10, 530));
  EXPECT_TRUE(slo.shedding());
  EXPECT_TRUE(slo.Observe(10, 540));
  EXPECT_FALSE(slo.shedding());
  EXPECT_EQ(slo.burn_x1000(), 500);

  // The violating sample ages out of the 1000ns window entirely.
  EXPECT_FALSE(slo.Observe(10, 1500));
  EXPECT_EQ(slo.burn_x1000(), 0);

  obs::FreshnessSlo::Stats stats = slo.stats();
  EXPECT_EQ(stats.evals, 9u);
  EXPECT_EQ(stats.violations, 1u);
  EXPECT_EQ(stats.shed_entries, 1u);
  EXPECT_EQ(stats.shed_exits, 1u);
}

TEST(FreshnessSloTest, ZeroTargetDisables) {
  obs::FreshnessSlo slo(obs::FreshnessSloOptions{});
  EXPECT_FALSE(slo.enabled());
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(slo.Observe(1u << 30, 100 + i));
  }
  EXPECT_FALSE(slo.shedding());
  EXPECT_EQ(slo.stats().shed_entries, 0u);
}

// --------------------------------------------------------------------------
// Concurrency smoke: committers, flusher, strips, apply, and scrapes race.
// Run under TSan via the concurrency label; asserts conservation, not
// timing.

TEST(FreshnessTrackerTest, ConcurrentStampingSmoke) {
  obs::FreshnessOptions opts;
  opts.commit_capacity = 1 << 10;
  obs::FreshnessTracker tracker(opts);
  obs::ViewFreshness* ch = tracker.RegisterView("V", 0);

  constexpr int kCommitters = 3;
  constexpr Csn kPerCommitter = 400;
  std::atomic<Csn> next_csn{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < kCommitters; ++t) {
    threads.emplace_back([&] {
      for (Csn i = 0; i < kPerCommitter; ++i) {
        tracker.OnCommit(next_csn.fetch_add(1) + 1);
      }
    });
  }
  threads.emplace_back([&] {  // flusher
    while (!done.load(std::memory_order_acquire)) {
      tracker.OnDurable(tracker.last_commit_csn());
      std::this_thread::yield();
    }
  });
  threads.emplace_back([&] {  // strip + hwm + apply
    Csn seen = 0;
    while (seen < kCommitters * kPerCommitter) {
      Csn target = tracker.last_commit_csn();
      if (target > seen) {
        uint64_t t0 = ch->Now();
        ch->OnStripStart(t0, target);
        ch->OnHwmAdvance(target, ch->Now());
        ch->OnVisible(target);
        seen = target;
      }
      std::this_thread::yield();
    }
  });
  threads.emplace_back([&] {  // scraper
    while (!done.load(std::memory_order_acquire)) {
      (void)ch->StalenessNanos();
      (void)ch->e2e_hist()->count();
      (void)StageSum(ch);
      std::this_thread::yield();
    }
  });

  for (int t = 0; t < kCommitters; ++t) threads[t].join();
  threads[kCommitters + 1].join();  // applier drains every commit
  done.store(true, std::memory_order_release);
  threads[kCommitters].join();
  threads.back().join();

  // Final catch-up pass from the applier thread's perspective.
  ch->OnHwmAdvance(tracker.last_commit_csn(), ch->Now());
  ch->OnVisible(tracker.last_commit_csn());

  const uint64_t total = kCommitters * kPerCommitter;
  EXPECT_EQ(tracker.commits_stamped(), total);
  // Every commit was either measured or evicted, exactly once.
  EXPECT_EQ(ch->commits_total() + ch->evicted_total(), total);
  EXPECT_EQ(ch->e2e_hist()->count(), ch->commits_total());
  // Telescoping survives concurrency: the stages sum to e2e exactly.
  EXPECT_EQ(StageSum(ch), ch->e2e_hist()->sum_nanos());
  EXPECT_EQ(ch->StalenessNanos(), 0u);
}

// --------------------------------------------------------------------------
// Integration: a real Db + MaintenanceService exports the metric family.

TEST(FreshnessIntegrationTest, ServicePipelineExportsFreshnessMetrics) {
  TestEnv env;
  obs::FreshnessTracker tracker;
  env.db()->SetFreshnessTracker(&tracker);

  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 60, 30, 8, 99));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views()->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views()->Materialize(view));
  env.StartCapture();

  obs::MetricsRegistry registry;
  MaintenanceService::Options mopts;
  mopts.apply_continuously = true;
  mopts.freshness = &tracker;
  mopts.freshness_slo.target_staleness_nanos = 1ull * 1000 * 1000 * 1000;
  MaintenanceService service(env.views(), view, mopts);
  service.RegisterMetrics(&registry);
  ASSERT_NE(service.freshness(), nullptr);
  ASSERT_NE(service.freshness_slo(), nullptr);
  service.Start();

  UpdateStream stream(env.db(), workload.RStream(1, 77), 77);
  for (int i = 0; i < 40; ++i) ASSERT_OK(stream.RunTransaction());
  ASSERT_OK(service.Drain(env.db()->stable_csn()));
  ASSERT_OK(service.Stop());

  obs::ViewFreshness* ch = service.freshness();
  EXPECT_GT(ch->commits_total(), 0u);
  EXPECT_GT(ch->e2e_hist()->count(), 0u);
  EXPECT_EQ(StageSum(ch), ch->e2e_hist()->sum_nanos());
  // Drained: the view has seen every delta-producing commit. (stable_csn
  // itself keeps moving past visible_csn -- maintenance's own appends
  // consume CSNs -- but those carry no freshness obligation.)
  EXPECT_GE(ch->visible_csn(), tracker.last_commit_csn());
  EXPECT_EQ(ch->StalenessNanos(), 0u);

  obs::MetricsSnapshot snap = registry.Snapshot();
  const obs::Labels lv{{"view", "V"}};
  const obs::HistogramSummary* e2e =
      snap.Histogram("rollview_freshness_e2e_nanos", lv);
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->count, ch->e2e_hist()->count());
  uint64_t stage_sum = 0;
  for (size_t i = 0; i < obs::kFreshnessStageCount; ++i) {
    const obs::HistogramSummary* h = snap.Histogram(
        "rollview_freshness_stage_nanos",
        {{"view", "V"},
         {"stage", obs::FreshnessStageName(
                       static_cast<obs::FreshnessStage>(i))}});
    ASSERT_NE(h, nullptr);
    stage_sum += h->sum_nanos;
  }
  EXPECT_EQ(stage_sum, e2e->sum_nanos);
  EXPECT_EQ(snap.CounterValue("rollview_freshness_commits_total", lv),
            ch->commits_total());
  EXPECT_EQ(snap.GaugeValue("rollview_view_staleness_usec", lv), 0);
  // SLO gauges: a 1s target against a drained in-memory pipeline is green.
  EXPECT_EQ(snap.GaugeValue("rollview_slo_target_usec", lv), 1000000);
  EXPECT_EQ(snap.GaugeValue("rollview_slo_breaching", lv), 0);
  EXPECT_GT(snap.CounterValue("rollview_slo_events_total",
                              {{"view", "V"}, {"event", "eval"}}),
            0u);

  // Readers feed the read-staleness histogram through MvReader.
  MvReader reader(env.views(), view);
  reader.set_freshness(ch);
  ASSERT_OK(reader.ReadOnce());
  EXPECT_EQ(ch->read_staleness_hist()->count(), 1u);

  env.db()->SetFreshnessTracker(nullptr);
}

}  // namespace
}  // namespace rollview
