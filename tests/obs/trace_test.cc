// Copyright 2026 The rollview Authors.
//
// StepTracer / TraceJournal mechanics: span-tree construction, the
// disabled-tracing no-op contract, the per-step span budget, ring-buffer
// retention, and the rendered/JSON exporters.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace rollview {
namespace obs {
namespace {

TEST(StepTracerTest, DisabledTracerIsANoOp) {
  StepTracer tracer;  // no journal attached
  EXPECT_FALSE(tracer.enabled());
  tracer.SetNextStepContext(3, "degraded", 500);
  tracer.BeginStep(SpanKind::kStep, 1, "V", 7);
  EXPECT_FALSE(tracer.active());
  EXPECT_EQ(tracer.OpenSpan(SpanKind::kForward), 0u);
  tracer.AttrCurrent("rows", 10);
  tracer.AddStepRows(10);
  tracer.MarkUndone();
  tracer.EndStep(StepOutcome::kOk);  // must not crash or record anything
}

TEST(StepTracerTest, BuildsSpanTreeWithParentsAndAttrs) {
  TraceJournal journal(8);
  StepTracer tracer;
  tracer.set_journal(&journal);

  tracer.SetNextStepContext(/*retries=*/2, "degraded", /*target_rows=*/512);
  tracer.BeginStep(SpanKind::kStep, /*view_id=*/4, "V", /*seq=*/11);
  ASSERT_TRUE(tracer.active());

  uint32_t fwd = tracer.OpenSpan(SpanKind::kForward);
  tracer.Attr(fwd, "relation", 0);
  uint32_t wal = tracer.OpenSpan(SpanKind::kWalAppend);  // child of forward
  tracer.AttrCurrent("rows", 42);
  tracer.CloseSpan(wal, true);
  tracer.CloseSpan(fwd, true);

  uint32_t comp = tracer.OpenSpan(SpanKind::kCompensation);
  tracer.Attr(comp, "relation", 1);
  tracer.Attr(comp, "depth", 2);
  tracer.CloseSpan(comp, true);

  tracer.AddStepRows(42);
  tracer.EndStep(StepOutcome::kOk);
  EXPECT_FALSE(tracer.active());

  std::vector<StepTrace> traces = journal.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const StepTrace& t = traces[0];
  EXPECT_EQ(t.trace_id, 1u);
  EXPECT_EQ(t.root_kind, SpanKind::kStep);
  EXPECT_EQ(t.view_id, 4u);
  EXPECT_EQ(t.view, "V");
  EXPECT_EQ(t.seq, 11u);
  EXPECT_EQ(t.outcome, StepOutcome::kOk);
  EXPECT_EQ(t.retries, 2u);
  EXPECT_STREQ(t.health, "degraded");
  EXPECT_EQ(t.target_rows, 512);
  EXPECT_EQ(t.rows, 42u);
  EXPECT_FALSE(t.undone);
  EXPECT_EQ(t.dropped_spans, 0u);

  ASSERT_EQ(t.spans.size(), 4u);
  EXPECT_EQ(t.root().kind, SpanKind::kStep);
  EXPECT_EQ(t.root().parent, 0u);
  EXPECT_TRUE(t.root().ok);
  const Span& s_fwd = t.spans[1];
  const Span& s_wal = t.spans[2];
  const Span& s_comp = t.spans[3];
  EXPECT_EQ(s_fwd.kind, SpanKind::kForward);
  EXPECT_EQ(s_fwd.parent, t.root().id);
  EXPECT_EQ(s_wal.kind, SpanKind::kWalAppend);
  EXPECT_EQ(s_wal.parent, s_fwd.id);  // nested under the open forward span
  EXPECT_EQ(s_wal.Attr("rows"), 42);
  EXPECT_EQ(s_comp.kind, SpanKind::kCompensation);
  EXPECT_EQ(s_comp.parent, t.root().id);
  EXPECT_EQ(s_comp.Attr("relation"), 1);
  EXPECT_EQ(s_comp.Attr("depth"), 2);
  EXPECT_EQ(s_comp.Attr("absent"), -1);
  EXPECT_EQ(s_comp.Attr("absent", 99), 99);
}

TEST(StepTracerTest, ErrorOutcomeMarksRootFailedAndKeepsError) {
  TraceJournal journal(8);
  StepTracer tracer;
  tracer.set_journal(&journal);

  tracer.BeginStep(SpanKind::kStep, 1, "V", 1);
  uint32_t fwd = tracer.OpenSpan(SpanKind::kForward);
  tracer.CloseSpan(fwd, false);
  tracer.EndStep(StepOutcome::kTransientError, "txn aborted by deadlock");

  // The retrying attempt carries the undo activity.
  tracer.SetNextStepContext(1, "recovering", 0);
  tracer.BeginStep(SpanKind::kStep, 1, "V", 1);
  uint32_t undo = tracer.OpenSpan(SpanKind::kUndo);
  tracer.CloseSpan(undo, true);
  tracer.MarkUndone();
  tracer.EndStep(StepOutcome::kOk);

  std::vector<StepTrace> traces = journal.Snapshot();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].outcome, StepOutcome::kTransientError);
  EXPECT_EQ(traces[0].error, "txn aborted by deadlock");
  EXPECT_FALSE(traces[0].root().ok);
  EXPECT_FALSE(traces[0].spans[1].ok);
  EXPECT_EQ(traces[1].retries, 1u);
  EXPECT_TRUE(traces[1].undone);
  EXPECT_EQ(traces[1].spans[1].kind, SpanKind::kUndo);
}

TEST(StepTracerTest, CloseSpanClosesAbandonedChildren) {
  TraceJournal journal(4);
  StepTracer tracer;
  tracer.set_journal(&journal);

  tracer.BeginStep(SpanKind::kStep, 1, "V", 1);
  uint32_t outer = tracer.OpenSpan(SpanKind::kForward);
  tracer.OpenSpan(SpanKind::kWalAppend);  // left open by an error path
  tracer.CloseSpan(outer, false);
  tracer.EndStep(StepOutcome::kTransientError, "boom");

  const StepTrace t = journal.Snapshot()[0];
  ASSERT_EQ(t.spans.size(), 3u);
  // The abandoned child was closed at its parent's end time.
  EXPECT_EQ(t.spans[2].end_nanos, t.spans[1].end_nanos);
  // A new span after the close parents onto the root, not the dead child.
  tracer.BeginStep(SpanKind::kStep, 1, "V", 2);
  tracer.OpenSpan(SpanKind::kForward);
  tracer.CloseSpan(2, true);
  uint32_t next = tracer.OpenSpan(SpanKind::kCompensation);
  tracer.CloseSpan(next, true);
  tracer.EndStep(StepOutcome::kOk);
  const StepTrace t2 = journal.Snapshot()[1];
  EXPECT_EQ(t2.spans[2].parent, 1u);
}

TEST(StepTracerTest, SpanBudgetCountsDrops) {
  TraceJournal journal(2);
  StepTracer tracer;
  tracer.set_journal(&journal);

  tracer.BeginStep(SpanKind::kStep, 1, "V", 1);
  for (size_t i = 0; i < StepTracer::kMaxSpansPerStep + 10; ++i) {
    uint32_t id = tracer.OpenSpan(SpanKind::kCompensation);
    tracer.CloseSpan(id, true);  // id 0 past the budget: no-op
  }
  tracer.EndStep(StepOutcome::kOk);

  const StepTrace t = journal.Snapshot()[0];
  EXPECT_EQ(t.spans.size(), StepTracer::kMaxSpansPerStep);
  // Root occupies one slot, so 10 + 1 opens were over budget.
  EXPECT_EQ(t.dropped_spans, 11u);
}

TEST(StepTracerTest, BeginStepDropsAbandonedTrace) {
  TraceJournal journal(4);
  StepTracer tracer;
  tracer.set_journal(&journal);

  tracer.BeginStep(SpanKind::kStep, 1, "V", 1);
  tracer.OpenSpan(SpanKind::kForward);
  // Abandoned (driver bailed without EndStep); the next step must start
  // clean and the abandoned trace must not reach the journal.
  tracer.BeginStep(SpanKind::kStep, 1, "V", 2);
  tracer.EndStep(StepOutcome::kSkippedEmpty);

  std::vector<StepTrace> traces = journal.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].seq, 2u);
  EXPECT_EQ(traces[0].outcome, StepOutcome::kSkippedEmpty);
  EXPECT_TRUE(traces[0].root().ok);  // skipped-empty is a healthy outcome
  EXPECT_EQ(traces[0].spans.size(), 1u);
}

TEST(TraceJournalTest, RingRetainsNewestInOrder) {
  TraceJournal journal(3);
  StepTracer tracer;
  tracer.set_journal(&journal);
  for (uint64_t seq = 1; seq <= 7; ++seq) {
    tracer.BeginStep(SpanKind::kStep, 1, "V", seq);
    tracer.EndStep(StepOutcome::kOk);
  }
  EXPECT_EQ(journal.recorded(), 7u);
  EXPECT_EQ(journal.capacity(), 3u);

  std::vector<StepTrace> all = journal.Snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].trace_id, 5u);  // oldest retained first
  EXPECT_EQ(all[1].trace_id, 6u);
  EXPECT_EQ(all[2].trace_id, 7u);

  std::vector<StepTrace> last = journal.Last(2);
  ASSERT_EQ(last.size(), 2u);
  EXPECT_EQ(last[0].trace_id, 6u);
  EXPECT_EQ(last[1].trace_id, 7u);
  EXPECT_EQ(journal.Last(99).size(), 3u);
}

TEST(TraceJournalTest, DumpTraceRendersTreeAndContext) {
  TraceJournal journal(4);
  StepTracer tracer;
  tracer.set_journal(&journal);

  tracer.SetNextStepContext(1, "degraded", 256);
  tracer.BeginStep(SpanKind::kStep, 1, "orders_by_day", 9);
  uint32_t fwd = tracer.OpenSpan(SpanKind::kForward);
  tracer.Attr(fwd, "relation", 0);
  uint32_t wal = tracer.OpenSpan(SpanKind::kWalAppend);
  tracer.CloseSpan(wal, true);
  tracer.CloseSpan(fwd, true);
  tracer.AddStepRows(17);
  tracer.EndStep(StepOutcome::kOk);

  std::string dump = journal.DumpTrace(4);
  EXPECT_NE(dump.find("view=orders_by_day"), std::string::npos);
  EXPECT_NE(dump.find("seq=9"), std::string::npos);
  EXPECT_NE(dump.find("outcome=ok"), std::string::npos);
  EXPECT_NE(dump.find("retries=1"), std::string::npos);
  EXPECT_NE(dump.find("health=degraded"), std::string::npos);
  EXPECT_NE(dump.find("target_rows=256"), std::string::npos);
  EXPECT_NE(dump.find("rows=17"), std::string::npos);
  EXPECT_NE(dump.find("\n  step"), std::string::npos);
  EXPECT_NE(dump.find("\n    forward"), std::string::npos);  // depth 1
  EXPECT_NE(dump.find("relation=0"), std::string::npos);
  EXPECT_NE(dump.find("\n      wal_append"), std::string::npos);  // depth 2
}

TEST(TraceJournalTest, ToJsonEmitsSpansWithAttrs) {
  TraceJournal journal(4);
  StepTracer tracer;
  tracer.set_journal(&journal);
  tracer.BeginStep(SpanKind::kStep, 1, "V", 3);
  uint32_t comp = tracer.OpenSpan(SpanKind::kCompensation);
  tracer.Attr(comp, "depth", 2);
  tracer.CloseSpan(comp, true);
  tracer.EndStep(StepOutcome::kTransientError, "boom");

  std::string json = journal.ToJson(4);
  EXPECT_NE(json.find("\"traces\": ["), std::string::npos);
  EXPECT_NE(json.find("\"view\": \"V\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\": \"transient_error\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"compensation\""), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);  // failed root
}

TEST(TraceJournalTest, ZeroCapacityRecordsButRetainsNothing) {
  TraceJournal journal(0);
  StepTracer tracer;
  tracer.set_journal(&journal);
  tracer.BeginStep(SpanKind::kStep, 1, "V", 1);
  tracer.EndStep(StepOutcome::kOk);
  EXPECT_EQ(journal.recorded(), 1u);
  EXPECT_TRUE(journal.Snapshot().empty());
  EXPECT_EQ(journal.DumpTrace(5), "");
}

}  // namespace
}  // namespace obs
}  // namespace rollview
