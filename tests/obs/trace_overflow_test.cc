// Copyright 2026 The rollview Authors.
//
// Bounds-and-accounting tests for the tracing layer and the histogram
// merge path. The span budget must be exact: a step that opens more spans
// than kMaxSpansPerStep journals precisely the overflow count in
// dropped_spans, an abandoned BeginStep never reaches the journal, and a
// ring under concurrent writers plus Snapshot/DumpTrace readers neither
// loses nor duplicates a trace id. LatencyHistogram::MergeFrom must
// combine count/sum/max exactly regardless of merge order, and reproduce
// identical percentiles for identical merge sequences (the deterministic
// reservoir).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "obs/trace.h"

namespace rollview {
namespace {

// --------------------------------------------------------------------------
// Span-budget overflow accounting.

TEST(TraceOverflowTest, DroppedSpanCountIsExact) {
  obs::TraceJournal journal(4);
  obs::StepTracer tracer;
  tracer.set_journal(&journal);

  constexpr size_t kOverflow = 37;
  tracer.BeginStep(obs::SpanKind::kStep, 1, "V", 1);
  // The root occupies slot 1; this fills the budget exactly...
  for (size_t i = 1; i < obs::StepTracer::kMaxSpansPerStep; ++i) {
    uint32_t id = tracer.OpenSpan(obs::SpanKind::kForward);
    ASSERT_NE(id, 0u) << "span " << i << " should fit the budget";
    tracer.CloseSpan(id, true);
  }
  // ...and every one of these must be dropped and counted.
  for (size_t i = 0; i < kOverflow; ++i) {
    uint32_t id = tracer.OpenSpan(obs::SpanKind::kCompensation);
    EXPECT_EQ(id, 0u);
    tracer.CloseSpan(id, true);   // no-op handle: must not corrupt the tree
    tracer.Attr(id, "rows", 1);   // ditto
  }
  tracer.EndStep(obs::StepOutcome::kOk);

  std::vector<obs::StepTrace> traces = journal.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].spans.size(), obs::StepTracer::kMaxSpansPerStep);
  EXPECT_EQ(traces[0].dropped_spans, kOverflow);
  // The renderers surface the loss instead of hiding it.
  EXPECT_NE(journal.DumpTrace(1).find("dropped_spans=37"), std::string::npos);
  EXPECT_NE(journal.ToJson(1).find("\"dropped_spans\": 37"),
            std::string::npos);
}

TEST(TraceOverflowTest, AbandonedBeginStepNeverReachesJournal) {
  obs::TraceJournal journal(8);
  obs::StepTracer tracer;
  tracer.set_journal(&journal);

  tracer.BeginStep(obs::SpanKind::kStep, 1, "V", 1);
  tracer.OpenSpan(obs::SpanKind::kForward);  // left open, never ended
  // A new step abandons the active trace: it must vanish, not be recorded
  // half-built.
  tracer.BeginStep(obs::SpanKind::kStep, 1, "V", 2);
  tracer.EndStep(obs::StepOutcome::kOk);

  EXPECT_EQ(journal.recorded(), 1u);
  std::vector<obs::StepTrace> traces = journal.Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].seq, 2u);
}

TEST(TraceOverflowTest, ConcurrentWritersAndReadersConserveTraceIds) {
  constexpr size_t kCapacity = 16;  // far smaller than the write volume
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 200;
  obs::TraceJournal journal(kCapacity);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Hammer the exporters while writers overwrite the ring; TSan (the
    // concurrency label) checks the locking, the assertions below check
    // the accounting.
    while (!stop.load(std::memory_order_acquire)) {
      (void)journal.Snapshot();
      (void)journal.DumpTrace(4);
      (void)journal.Last(3);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&journal, w] {
      obs::StepTracer tracer;  // builders are per-thread; the ring is shared
      tracer.set_journal(&journal);
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        tracer.BeginStep(obs::SpanKind::kStep, static_cast<uint32_t>(w),
                         "V", i);
        uint32_t id = tracer.OpenSpan(obs::SpanKind::kForward);
        tracer.AttrCurrent("writer", w);
        tracer.CloseSpan(id, true);
        tracer.AddStepRows(1);
        tracer.EndStep(obs::StepOutcome::kOk);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  const uint64_t total = kWriters * kPerWriter;
  EXPECT_EQ(journal.recorded(), total);
  std::vector<obs::StepTrace> retained = journal.Snapshot();
  ASSERT_EQ(retained.size(), kCapacity);
  // Exactly the `capacity` highest trace ids survive, each exactly once,
  // oldest first.
  std::set<uint64_t> ids;
  for (const obs::StepTrace& t : retained) ids.insert(t.trace_id);
  EXPECT_EQ(ids.size(), kCapacity);
  EXPECT_EQ(*ids.rbegin(), total);
  EXPECT_EQ(*ids.begin(), total - kCapacity + 1);
  for (size_t i = 1; i < retained.size(); ++i) {
    EXPECT_EQ(retained[i].trace_id, retained[i - 1].trace_id + 1);
  }
}

// --------------------------------------------------------------------------
// LatencyHistogram::MergeFrom determinism.

TEST(MergeFromTest, CountSumMaxExactUnderAnyMergeOrder) {
  // Three shards with disjoint, recognizable sample sets.
  constexpr size_t kShards = 3;
  LatencyHistogram shards[kShards];
  uint64_t expect_count = 0, expect_sum = 0, expect_max = 0;
  for (size_t s = 0; s < kShards; ++s) {
    for (uint64_t i = 1; i <= 500; ++i) {
      const uint64_t v = (s + 1) * 1000 + i;
      shards[s].Record(v);
      ++expect_count;
      expect_sum += v;
      expect_max = std::max(expect_max, v);
    }
  }

  std::vector<std::vector<size_t>> orders = {
      {0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {2, 0, 1}};
  for (const auto& order : orders) {
    LatencyHistogram merged;
    for (size_t s : order) merged.MergeFrom(shards[s]);
    EXPECT_EQ(merged.count(), expect_count);
    EXPECT_EQ(merged.sum_nanos(), expect_sum);
    EXPECT_EQ(merged.max_nanos(), expect_max);
    // 1500 samples fit the reservoir, so percentiles are exact and
    // therefore order-independent too: the p50 of 1000+i / 2000+i / 3000+i
    // interleaved lands in the middle shard's range.
    const uint64_t p50 = merged.Percentile(0.5);
    EXPECT_GE(p50, 2000u);
    EXPECT_LE(p50, 3000u);
    EXPECT_EQ(merged.Percentile(1.0), expect_max);
  }
}

TEST(MergeFromTest, IdenticalMergeSequencesAreBitIdentical) {
  // Push well past the reservoir so percentiles depend on sampling, then
  // verify the deterministic reservoir makes equal histories equal --
  // replaying the same shards in the same order twice must agree on every
  // percentile, not just the exact aggregates.
  constexpr size_t kShards = 4;
  LatencyHistogram shards[kShards];
  for (size_t s = 0; s < kShards; ++s) {
    for (uint64_t i = 0; i < 3000; ++i) {
      shards[s].Record((i * 2654435761u + s * 40503u) % 1000000);
    }
  }

  LatencyHistogram a, b;
  for (size_t s = 0; s < kShards; ++s) {
    a.MergeFrom(shards[s]);
    b.MergeFrom(shards[s]);
  }
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum_nanos(), b.sum_nanos());
  EXPECT_EQ(a.max_nanos(), b.max_nanos());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(a.Percentile(q), b.Percentile(q)) << "q=" << q;
  }

  // And merging an empty histogram is a no-op in both directions.
  LatencyHistogram empty;
  const uint64_t before = a.count();
  a.MergeFrom(empty);
  EXPECT_EQ(a.count(), before);
  empty.MergeFrom(LatencyHistogram{});
  EXPECT_EQ(empty.count(), 0u);
}

}  // namespace
}  // namespace rollview
