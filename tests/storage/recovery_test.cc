// WAL serialization and log-replay recovery: a recovered engine reproduces
// the committed state (at every historical CSN), drops in-flight tails,
// rebuilds capture state, and carries on -- including full IVM on top.

#include <gtest/gtest.h>

#include <cstdio>

#include "ivm/maintenance.h"
#include "storage/wal_codec.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

std::vector<WalRecord> DumpWal(Db* db) {
  std::vector<WalRecord> out;
  db->wal()->ReadFrom(0, 1u << 24, &out);
  return out;
}

TEST(WalCodecTest, RecordRoundTrip) {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kInsert;
  rec.lsn = 7;
  rec.txn = 42;
  rec.table = 3;
  rec.tuple = Tuple{Value(int64_t{-5}), Value(2.25), Value("abc"),
                    Value::Null()};
  std::string buf;
  EncodeWalRecord(rec, &buf);

  size_t consumed = 0;
  auto decoded = DecodeWalRecord(buf, 0, &consumed);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(decoded->kind, rec.kind);
  EXPECT_EQ(decoded->lsn, rec.lsn);
  EXPECT_EQ(decoded->txn, rec.txn);
  EXPECT_EQ(decoded->table, rec.table);
  EXPECT_EQ(decoded->tuple, rec.tuple);
}

TEST(WalCodecTest, CreateTableRoundTrip) {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kCreateTable;
  rec.table = 9;
  rec.create = std::make_shared<CreateTablePayload>(CreateTablePayload{
      "orders",
      Schema({Column{"k", ValueType::kInt64},
              Column{"s", ValueType::kString}}),
      CaptureMode::kTrigger,
      {0, 1}});
  std::string buf;
  EncodeWalRecord(rec, &buf);
  size_t consumed = 0;
  auto decoded = DecodeWalRecord(buf, 0, &consumed);
  ASSERT_TRUE(decoded.ok());
  ASSERT_NE(decoded->create, nullptr);
  EXPECT_EQ(decoded->create->name, "orders");
  EXPECT_TRUE(decoded->create->schema ==
              Schema({Column{"k", ValueType::kInt64},
                      Column{"s", ValueType::kString}}));
  EXPECT_EQ(decoded->create->capture_mode, CaptureMode::kTrigger);
  EXPECT_EQ(decoded->create->indexed_columns, (std::vector<size_t>{0, 1}));
}

TEST(WalCodecTest, TornTailIsDropped) {
  WalRecord a;
  a.kind = WalRecord::Kind::kCommit;
  a.txn = 1;
  a.commit_csn = 4;
  WalRecord b = a;
  b.txn = 2;
  b.commit_csn = 5;
  std::string buf = EncodeWal({a, b});
  // Chop the last few bytes (crash mid-write).
  std::string torn = buf.substr(0, buf.size() - 3);
  auto decoded = DecodeWal(torn);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0].commit_csn, 4u);
}

TEST(WalCodecTest, CorruptInteriorFails) {
  WalRecord a;
  a.kind = WalRecord::Kind::kCommit;
  a.commit_csn = 4;
  std::string buf = EncodeWal({a, a});
  buf[4] = static_cast<char>(0xee);  // mangle the first record's kind
  auto decoded = DecodeWal(buf);
  EXPECT_FALSE(decoded.ok());
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Keep the WAL intact: recovery needs the full history.
    CaptureOptions copts;
    copts.truncate_wal = false;
    env_ = std::make_unique<TestEnv>(copts);
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_->db(), 30, 20, 5, 77));
    env_->CatchUpCapture();
  }

  std::unique_ptr<TestEnv> env_;
  TwoTableWorkload workload_;
};

TEST_F(RecoveryTest, RecoveredStateMatchesAtEveryCsn) {
  UpdateStream stream(env_->db(), workload_.RStream(1, 5), 5);
  ASSERT_OK(stream.RunTransactions(20));
  Csn stable = env_->db()->stable_csn();

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Db> recovered,
                       Db::Recover(DumpWal(env_->db())));
  EXPECT_EQ(recovered->stable_csn(), stable);

  ASSERT_OK_AND_ASSIGN(TableId r2, recovered->FindTable("R"));
  ASSERT_OK_AND_ASSIGN(TableId s2, recovered->FindTable("S"));
  for (Csn c = 1; c <= stable; c += 3) {
    ASSERT_OK_AND_ASSIGN(auto orig_r, env_->db()->SnapshotScan(workload_.r, c));
    ASSERT_OK_AND_ASSIGN(auto rec_r, recovered->SnapshotScan(r2, c));
    ASSERT_TRUE(NetEquivalent(FromTuples(orig_r), FromTuples(rec_r)))
        << "R state diverges at csn " << c;
    ASSERT_OK_AND_ASSIGN(auto orig_s, env_->db()->SnapshotScan(workload_.s, c));
    ASSERT_OK_AND_ASSIGN(auto rec_s, recovered->SnapshotScan(s2, c));
    ASSERT_TRUE(NetEquivalent(FromTuples(orig_s), FromTuples(rec_s)))
        << "S state diverges at csn " << c;
  }
}

TEST_F(RecoveryTest, InFlightTailIsDiscarded) {
  UpdateStream stream(env_->db(), workload_.RStream(1, 6), 6);
  ASSERT_OK(stream.RunTransactions(5));
  Csn committed = env_->db()->stable_csn();

  // Crash with a transaction in flight: data records, no commit record.
  auto txn = env_->db()->Begin();
  ASSERT_OK(env_->db()->Insert(
      txn.get(), workload_.r,
      Tuple{Value(int64_t{424242}), Value(int64_t{0}), Value(int64_t{0})}));
  // (no Commit)

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Db> recovered,
                       Db::Recover(DumpWal(env_->db())));
  EXPECT_EQ(recovered->stable_csn(), committed);
  ASSERT_OK_AND_ASSIGN(TableId r2, recovered->FindTable("R"));
  ASSERT_OK_AND_ASSIGN(auto rows, recovered->SnapshotScan(r2, committed));
  for (const Tuple& t : rows) {
    EXPECT_NE(t[0], Value(int64_t{424242}));
  }
  ASSERT_OK(env_->db()->Abort(txn.get()));
}

TEST_F(RecoveryTest, CaptureRebuildsDeltasAndUow) {
  UpdateStream stream(env_->db(), workload_.RStream(1, 7), 7);
  ASSERT_OK(stream.RunTransactions(15));
  env_->CatchUpCapture();
  DeltaRows original = env_->db()->delta(workload_.r)->ScanAll();
  size_t uow_size = env_->db()->uow()->size();

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Db> recovered,
                       Db::Recover(DumpWal(env_->db())));
  LogCapture capture(recovered.get());
  capture.CatchUp();
  ASSERT_OK_AND_ASSIGN(TableId r2, recovered->FindTable("R"));
  DeltaRows rebuilt = recovered->delta(r2)->ScanAll();
  ASSERT_EQ(rebuilt.size(), original.size());
  for (size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_EQ(rebuilt[i], original[i]) << "delta row " << i;
  }
  EXPECT_EQ(recovered->uow()->size(), uow_size);
}

TEST_F(RecoveryTest, TriggerModeDeltasRegenerated) {
  TableOptions topts;
  topts.capture_mode = CaptureMode::kTrigger;
  topts.indexed_columns = {0};
  ASSERT_OK_AND_ASSIGN(
      TableId trig,
      env_->db()->CreateTable("trig",
                              Schema({Column{"k", ValueType::kInt64}}),
                              topts));
  for (int i = 0; i < 6; ++i) {
    auto txn = env_->db()->Begin();
    ASSERT_OK(env_->db()->Insert(txn.get(), trig, Tuple{Value(int64_t{i})}));
    ASSERT_OK(env_->db()->Commit(txn.get()));
  }
  DeltaRows original = env_->db()->delta(trig)->ScanAll();
  ASSERT_EQ(original.size(), 6u);

  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Db> recovered,
                       Db::Recover(DumpWal(env_->db())));
  ASSERT_OK_AND_ASSIGN(TableId trig2, recovered->FindTable("trig"));
  DeltaRows rebuilt = recovered->delta(trig2)->ScanAll();
  ASSERT_EQ(rebuilt.size(), original.size());
  for (size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_EQ(rebuilt[i], original[i]);
  }
  // UOW entries were regenerated directly (no capture pass needed).
  EXPECT_GE(recovered->uow()->size(), 6u);
}

TEST_F(RecoveryTest, FileRoundTripAndContinueWithIvm) {
  UpdateStream stream(env_->db(), workload_.RStream(1, 8), 8);
  ASSERT_OK(stream.RunTransactions(10));
  Csn crash_point = env_->db()->stable_csn();

  std::string path = ::testing::TempDir() + "/rollview_recovery_test.wal";
  ASSERT_OK(WriteWalFile(path, DumpWal(env_->db())));
  ASSERT_OK_AND_ASSIGN(std::vector<WalRecord> read_back, ReadWalFile(path));
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Db> recovered,
                       Db::Recover(read_back));
  std::remove(path.c_str());
  EXPECT_EQ(recovered->stable_csn(), crash_point);

  // Life goes on: capture, a view, new updates, full IVM, golden invariant.
  LogCapture capture(recovered.get());
  capture.CatchUp();
  ViewManager views(recovered.get(), &capture);
  ASSERT_OK_AND_ASSIGN(TableId r2, recovered->FindTable("R"));
  ASSERT_OK_AND_ASSIGN(TableId s2, recovered->FindTable("S"));
  ASSERT_OK_AND_ASSIGN(View* view,
                       views.CreateView("V", ChainJoin({r2, s2}, {{1, 1}})));
  ASSERT_OK(views.Materialize(view));
  Csn t0 = view->propagate_from.load();

  TwoTableWorkload recovered_workload = workload_;
  recovered_workload.r = r2;
  recovered_workload.s = s2;
  UpdateStream more(recovered.get(), recovered_workload.RStream(2, 9), 9);
  ASSERT_OK(more.RunTransactions(8));
  capture.CatchUp();
  Csn target = capture.high_water_mark();
  EXPECT_GT(target, crash_point);

  MaintenanceService::Options mopts;
  mopts.prune_view_delta = false;  // the invariant check replays the window
  MaintenanceService service(&views, view, mopts);
  ASSERT_OK(service.Drain(target));
  DeltaRows oracle = OracleViewState(recovered.get(), view, view->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()));
  EXPECT_TRUE(CheckTimedDeltaWindow(recovered.get(), view, t0, target));
}

}  // namespace
}  // namespace rollview
