// Snapshot pinning vs garbage collection, and lock escalation.

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace rollview {
namespace {

class SnapshotPinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableOptions opts;
    opts.indexed_columns = {0};
    auto r = db_.CreateTable("t", Schema({Column{"k", ValueType::kInt64}}),
                             opts);
    ASSERT_TRUE(r.ok());
    t_ = r.value();
  }

  Csn InsertAndDelete(int64_t k) {
    auto ins = db_.Begin();
    EXPECT_OK(db_.Insert(ins.get(), t_, {Value(k)}));
    EXPECT_OK(db_.Commit(ins.get()));
    Csn at = ins->commit_csn();
    auto del = db_.Begin();
    auto n = db_.DeleteTuple(del.get(), t_, {Value(k)});
    EXPECT_TRUE(n.ok() && n.value() == 1);
    EXPECT_OK(db_.Commit(del.get()));
    return at;
  }

  Db db_;
  TableId t_ = kInvalidTableId;
};

TEST_F(SnapshotPinTest, PinProtectsVersionsFromGc) {
  // Insert, pin while the row is alive, then delete it.
  auto ins = db_.Begin();
  ASSERT_OK(db_.Insert(ins.get(), t_, {Value(int64_t{1})}));
  ASSERT_OK(db_.Commit(ins.get()));
  Db::SnapshotHandle pin = db_.PinSnapshot();
  ASSERT_EQ(pin.csn(), ins->commit_csn());
  auto del = db_.Begin();
  ASSERT_OK_AND_ASSIGN(int64_t n,
                       db_.DeleteTuple(del.get(), t_, {Value(int64_t{1})}));
  ASSERT_EQ(n, 1);
  ASSERT_OK(db_.Commit(del.get()));

  // GC at the stable CSN would drop the deleted version; the pin clamps it.
  db_.GarbageCollect(db_.stable_csn());
  ASSERT_OK_AND_ASSIGN(auto rows, db_.SnapshotScan(t_, pin.csn()));
  ASSERT_EQ(rows.size(), 1u) << "pinned snapshot lost a visible row to GC";
  EXPECT_EQ(rows[0][0], Value(int64_t{1}));

  pin.Release();
  EXPECT_EQ(db_.OldestPinnedSnapshot(), kMaxCsn);
  db_.GarbageCollect(db_.stable_csn());
  EXPECT_EQ(db_.table(t_)->VersionCount(), 0u);  // everything dead now
}

TEST_F(SnapshotPinTest, OldestPinWins) {
  InsertAndDelete(1);
  Db::SnapshotHandle old_pin = db_.PinSnapshot();
  InsertAndDelete(2);
  Db::SnapshotHandle new_pin = db_.PinSnapshot();
  EXPECT_EQ(db_.OldestPinnedSnapshot(), old_pin.csn());
  new_pin.Release();
  EXPECT_EQ(db_.OldestPinnedSnapshot(), old_pin.csn());
  old_pin.Release();
  EXPECT_EQ(db_.OldestPinnedSnapshot(), kMaxCsn);
}

TEST_F(SnapshotPinTest, HandleMoveSemantics) {
  Db::SnapshotHandle a = db_.PinSnapshot();
  Csn csn = a.csn();
  Db::SnapshotHandle b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.csn(), csn);
  EXPECT_EQ(db_.OldestPinnedSnapshot(), csn);
  b.Release();
  EXPECT_EQ(db_.OldestPinnedSnapshot(), kMaxCsn);
}

TEST(LockEscalationTest, EscalatesAfterThreshold) {
  DbOptions options;
  options.lock_escalation_threshold = 5;
  Db db(options);
  auto r = db.CreateTable("t", Schema({Column{"k", ValueType::kInt64}}));
  ASSERT_TRUE(r.ok());
  TableId t = r.value();

  auto txn = db.Begin();
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_OK(db.Insert(txn.get(), t, {Value(i)}));
  }
  // Past the threshold the transaction holds a table-level X lock.
  EXPECT_TRUE(db.lock_manager()->Holds(txn->id(), ResourceId::Table(t),
                                       LockMode::kX));
  ASSERT_OK(db.Commit(txn.get()));
  // After commit the escalated lock is released like any other.
  auto reader = db.Begin();
  ASSERT_OK(db.LockTableShared(reader.get(), t));
  ASSERT_OK(db.Commit(reader.get()));
}

TEST(LockEscalationTest, DisabledByDefault) {
  Db db;
  auto r = db.CreateTable("t", Schema({Column{"k", ValueType::kInt64}}));
  ASSERT_TRUE(r.ok());
  TableId t = r.value();
  auto txn = db.Begin();
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_OK(db.Insert(txn.get(), t, {Value(i)}));
  }
  EXPECT_FALSE(db.lock_manager()->Holds(txn->id(), ResourceId::Table(t),
                                        LockMode::kX));
  ASSERT_OK(db.Commit(txn.get()));
}

TEST(LockEscalationTest, ConcurrentWritersStillSerializable) {
  DbOptions options;
  options.lock_escalation_threshold = 4;
  options.lock_options.wait_timeout = std::chrono::milliseconds(5000);
  Db db(options);
  TableOptions topts;
  topts.indexed_columns = {0};
  auto r = db.CreateTable("t", Schema({Column{"k", ValueType::kInt64}}),
                          topts);
  ASSERT_TRUE(r.ok());
  TableId t = r.value();

  constexpr int kThreads = 4;
  constexpr int kTxns = 30;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> committed{0};
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th] {
      for (int i = 0; i < kTxns; ++i) {
        for (int attempt = 0; attempt < 64; ++attempt) {
          auto txn = db.Begin();
          Status s;
          for (int j = 0; j < 6 && s.ok(); ++j) {
            s = db.Insert(txn.get(), t,
                          {Value(int64_t(th * 100000 + i * 100 + j))});
          }
          if (s.ok()) s = db.Commit(txn.get());
          if (s.ok()) {
            committed.fetch_add(1);
            break;
          }
          db.Abort(txn.get()).ok();
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(committed.load(), static_cast<uint64_t>(kThreads) * kTxns);
  EXPECT_EQ(db.table(t)->LiveSize(),
            static_cast<size_t>(kThreads) * kTxns * 6);
}

}  // namespace
}  // namespace rollview
