// File-backed segmented WAL: group-commit batching, rotation/seal, torn
// tails, checkpoint-gated retention, the fsyncgate poison-and-rotate path,
// ENOSPC fail-fast, seeded crash points on every durability transition, and
// a random-damage sweep over the on-disk bytes. Everything here drives
// WalSegmentStore/ScanWalDir directly; the engine-level paths are covered
// by tests/integration/file_crash_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/rng.h"
#include "storage/wal.h"
#include "storage/wal_codec.h"
#include "storage/wal_segment.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "wal_segment_" + tag;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// A commit record: the only kind whose CSN matters to segment metadata.
WalRecord MakeCommit(Lsn lsn, Csn csn) {
  WalRecord r;
  r.kind = WalRecord::Kind::kCommit;
  r.lsn = lsn;
  r.txn = lsn + 1;
  r.commit_csn = csn;
  r.commit_time = std::chrono::system_clock::time_point{};
  return r;
}

std::string Encode(const WalRecord& r) {
  std::string bytes;
  EncodeWalRecord(r, &bytes);
  return bytes;
}

// Enqueues commit records lsn in [0, n) with csn = lsn + 1.
void EnqueueCommits(WalSegmentStore* store, Lsn from, Lsn to) {
  for (Lsn lsn = from; lsn < to; ++lsn) {
    WalRecord r = MakeCommit(lsn, lsn + 1);
    store->Enqueue(lsn, r.commit_csn, Encode(r));
  }
}

std::vector<std::string> SegmentFiles(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 5000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(WalSegmentTest, FreshDirRoundtrip) {
  std::string dir = FreshDir("roundtrip");
  DurableWalOptions opts;
  opts.dir = dir;
  WalSegmentStore store;
  ASSERT_OK(store.Open(opts, /*generation=*/1, /*next_lsn=*/0,
                       /*require_empty=*/true));
  store.Start();
  EnqueueCommits(&store, 0, 10);
  ASSERT_OK(store.SyncTo(9));
  EXPECT_EQ(store.durable_end_lsn(), 10u);
  auto c = store.counters();
  EXPECT_EQ(c.records_flushed, 10u);
  EXPECT_GE(c.syncs, 1u);
  EXPECT_EQ(c.segments_created, 1u);
  store.Stop();

  ASSERT_OK_AND_ASSIGN(WalDirScan scan, ScanWalDir(dir));
  EXPECT_EQ(scan.max_generation, 1u);
  EXPECT_EQ(scan.covered_end_lsn, 0u);
  EXPECT_TRUE(scan.image.empty());
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.suffix.size(), 10u);
  for (size_t i = 0; i < scan.suffix.size(); ++i) {
    EXPECT_EQ(scan.suffix[i].lsn, i);
    EXPECT_EQ(scan.suffix[i].commit_csn, i + 1);
  }
}

TEST(WalSegmentTest, RequireEmptyRejectsExistingLog) {
  std::string dir = FreshDir("require_empty");
  DurableWalOptions opts;
  opts.dir = dir;
  {
    WalSegmentStore store;
    ASSERT_OK(store.Open(opts, 1, 0, true));
    store.Start();
    EnqueueCommits(&store, 0, 3);
    ASSERT_OK(store.SyncTo(2));
    store.Stop();
  }
  WalSegmentStore second;
  Status s = second.Open(opts, 1, 0, true);
  EXPECT_TRUE(s.IsAlreadyExists()) << s.ToString();
  // The failed store stays failed: syncs surface the open error rather than
  // silently pretending to be durable.
  EXPECT_FALSE(second.SyncTo(0).ok());
  // Reopening without require_empty (the recovery reattach path) works.
  WalSegmentStore third;
  EXPECT_OK(third.Open(opts, 2, 3, false));
}

// Records queued before the flusher starts drain as one group-commit batch
// with one sync; in single-sync mode every record pays its own sync.
TEST(WalSegmentTest, GroupCommitBatchesQueuedRecords) {
  std::string dir = FreshDir("group_commit");
  DurableWalOptions opts;
  opts.dir = dir;
  WalSegmentStore store;
  ASSERT_OK(store.Open(opts, 1, 0, true));
  EnqueueCommits(&store, 0, 16);  // queued: the flusher is not running yet
  store.Start();
  ASSERT_OK(store.SyncTo(15));
  auto c = store.counters();
  EXPECT_EQ(c.batches, 1u);
  EXPECT_EQ(c.records_flushed, 16u);
  EXPECT_EQ(c.syncs, 1u);
  store.Stop();

  std::string dir2 = FreshDir("single_sync");
  DurableWalOptions sopts;
  sopts.dir = dir2;
  sopts.group_commit = false;
  WalSegmentStore single;
  ASSERT_OK(single.Open(sopts, 1, 0, true));
  EnqueueCommits(&single, 0, 8);
  single.Start();
  ASSERT_OK(single.SyncTo(7));
  auto sc = single.counters();
  EXPECT_EQ(sc.batches, 8u);
  EXPECT_EQ(sc.syncs, 8u);
  single.Stop();
}

TEST(WalSegmentTest, RotationSealsSegments) {
  std::string dir = FreshDir("rotation");
  DurableWalOptions opts;
  opts.dir = dir;
  opts.segment_bytes = 256;  // a handful of records per segment
  WalSegmentStore store;
  ASSERT_OK(store.Open(opts, 1, 0, true));
  store.Start();
  for (Lsn lsn = 0; lsn < 40; ++lsn) {
    WalRecord r = MakeCommit(lsn, lsn + 1);
    store.Enqueue(lsn, r.commit_csn, Encode(r));
    ASSERT_OK(store.SyncTo(lsn));  // one record per batch: forces rotation
  }
  auto c = store.counters();
  EXPECT_GT(c.segments_created, 2u);
  EXPECT_GE(c.segments_sealed, 2u);
  EXPECT_GT(store.segment_count(), 2u);
  auto bytes = store.bytes_by_state();
  EXPECT_GT(bytes.sealed, 0u);
  store.Stop();

  // Sealed headers carry the exact LSN/CSN range of their records.
  std::vector<std::string> files = SegmentFiles(dir);
  ASSERT_GT(files.size(), 2u);
  {
    std::ifstream in(files[0], std::ios::binary);
    std::string head(kSegmentHeaderBytes, '\0');
    in.read(head.data(), static_cast<std::streamsize>(head.size()));
    ASSERT_OK_AND_ASSIGN(SegmentHeader h, DecodeSegmentHeader(head));
    EXPECT_TRUE(h.sealed);
    EXPECT_EQ(h.generation, 1u);
    EXPECT_EQ(h.first_lsn, 0u);
    EXPECT_GE(h.last_lsn, h.first_lsn);
    EXPECT_EQ(h.min_csn, 1u);
    EXPECT_EQ(h.max_csn, h.last_lsn + 1);
    EXPECT_FALSE(h.prev_poisoned);
  }

  ASSERT_OK_AND_ASSIGN(WalDirScan scan, ScanWalDir(dir));
  EXPECT_GT(scan.segments_read, 2u);
  ASSERT_EQ(scan.suffix.size(), 40u);
  for (size_t i = 0; i < 40; ++i) EXPECT_EQ(scan.suffix[i].lsn, i);
}

TEST(WalSegmentTest, TornTailInLastSegmentTolerated) {
  std::string dir = FreshDir("torn_tail");
  DurableWalOptions opts;
  opts.dir = dir;
  WalSegmentStore store;
  ASSERT_OK(store.Open(opts, 1, 0, true));
  store.Start();
  EnqueueCommits(&store, 0, 10);
  ASSERT_OK(store.SyncTo(9));
  store.Stop();

  std::vector<std::string> files = SegmentFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  // Cut into the final record: the classic torn tail of a power cut.
  fs::resize_file(files[0], fs::file_size(files[0]) - 3);

  ASSERT_OK_AND_ASSIGN(WalDirScan scan, ScanWalDir(dir));
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.suffix.size(), 9u);
  for (size_t i = 0; i < scan.suffix.size(); ++i) {
    EXPECT_EQ(scan.suffix[i].lsn, i);
  }
}

// Damage inside a *sealed* segment is not a torn tail -- it is data loss in
// the middle of acknowledged history, and recovery must refuse to invent a
// gap silently.
TEST(WalSegmentTest, MidStreamCorruptionFailsLoudly) {
  std::string dir = FreshDir("mid_corrupt");
  DurableWalOptions opts;
  opts.dir = dir;
  opts.segment_bytes = 256;
  WalSegmentStore store;
  ASSERT_OK(store.Open(opts, 1, 0, true));
  store.Start();
  for (Lsn lsn = 0; lsn < 40; ++lsn) {
    WalRecord r = MakeCommit(lsn, lsn + 1);
    store.Enqueue(lsn, r.commit_csn, Encode(r));
    ASSERT_OK(store.SyncTo(lsn));
  }
  store.Stop();

  std::vector<std::string> files = SegmentFiles(dir);
  ASSERT_GT(files.size(), 2u);
  {
    // Flip a byte in the record area of the first (sealed) segment.
    std::fstream f(files[0], std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kSegmentHeaderBytes + 7));
    char b = 0;
    f.seekg(static_cast<std::streamoff>(kSegmentHeaderBytes + 7));
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(static_cast<std::streamoff>(kSegmentHeaderBytes + 7));
    f.write(&b, 1);
  }
  Result<WalDirScan> scan = ScanWalDir(dir);
  ASSERT_FALSE(scan.ok());
  EXPECT_TRUE(scan.status().IsInternal()) << scan.status().ToString();
}

TEST(WalSegmentTest, CheckpointGatesPruningAndScanReplaysFromCoverage) {
  std::string dir = FreshDir("ckpt_prune");
  DurableWalOptions opts;
  opts.dir = dir;
  opts.segment_bytes = 256;
  WalSegmentStore store;
  ASSERT_OK(store.Open(opts, 1, 0, true));
  store.Start();
  for (Lsn lsn = 0; lsn < 40; ++lsn) {
    WalRecord r = MakeCommit(lsn, lsn + 1);
    store.Enqueue(lsn, r.commit_csn, Encode(r));
    ASSERT_OK(store.SyncTo(lsn));
  }
  size_t before = store.segment_count();
  ASSERT_GT(before, 2u);

  // Cover the first half: the image stands in for records [0, 20).
  std::vector<WalRecord> image;
  for (Lsn lsn = 0; lsn < 20; ++lsn) image.push_back(MakeCommit(lsn, lsn + 1));
  ASSERT_OK(store.PublishCheckpoint(/*covered_end_lsn=*/20, /*covered_csn=*/20,
                                    EncodeWal(image)));
  EXPECT_EQ(store.covered_end_lsn(), 20u);
  EXPECT_EQ(store.covered_csn(), 20u);
  store.PruneSegments();
  size_t after_half = store.segment_count();
  EXPECT_LT(after_half, before);
  EXPECT_GE(store.counters().segments_deleted, 1u);

  {
    ASSERT_OK_AND_ASSIGN(WalDirScan scan, ScanWalDir(dir));
    EXPECT_EQ(scan.covered_end_lsn, 20u);
    EXPECT_EQ(scan.covered_csn, 20u);
    ASSERT_EQ(scan.image.size(), 20u);
    ASSERT_EQ(scan.suffix.size(), 20u);
    EXPECT_EQ(scan.suffix.front().lsn, 20u);
    EXPECT_EQ(scan.suffix.back().lsn, 39u);
  }

  // A retention floor below the coverage CSN holds otherwise-covered
  // segments on disk (the RetentionManager's prune floor, forwarded here).
  store.SetRetentionFloor(25);
  std::vector<WalRecord> full;
  for (Lsn lsn = 0; lsn < 40; ++lsn) full.push_back(MakeCommit(lsn, lsn + 1));
  ASSERT_OK(store.PublishCheckpoint(40, 40, EncodeWal(full)));
  store.PruneSegments();
  // Segments whose max CSN exceeds the floor must survive.
  EXPECT_GT(store.bytes_by_state().retained, 0u);
  size_t held = store.segment_count();
  store.SetRetentionFloor(kMaxCsn);
  store.PruneSegments();
  EXPECT_LT(store.segment_count(), held);
  store.Stop();

  // After full coverage everything replays from the image alone.
  ASSERT_OK_AND_ASSIGN(WalDirScan scan, ScanWalDir(dir));
  EXPECT_EQ(scan.covered_end_lsn, 40u);
  EXPECT_EQ(scan.image.size(), 40u);
  EXPECT_TRUE(scan.suffix.empty());
}

TEST(WalSegmentTest, CheckpointCoverageMustBeMonotone) {
  std::string dir = FreshDir("ckpt_monotone");
  DurableWalOptions opts;
  opts.dir = dir;
  WalSegmentStore store;
  ASSERT_OK(store.Open(opts, 1, 0, true));
  store.Start();
  EnqueueCommits(&store, 0, 5);
  ASSERT_OK(store.SyncTo(4));
  ASSERT_OK(store.PublishCheckpoint(5, 5, EncodeWal({})));
  Status s = store.PublishCheckpoint(3, 3, EncodeWal({}));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  store.Stop();
}

TEST(WalSegmentTest, EnospcParksFlusherAndFailsCommitsFast) {
  std::string dir = FreshDir("enospc");
  DurableWalOptions opts;
  opts.dir = dir;
  opts.enospc_retry = std::chrono::milliseconds(1);
  WalSegmentStore store;
  ASSERT_OK(store.Open(opts, 1, 0, true));
  store.Start();
  // First record lands clean so the active segment exists.
  EnqueueCommits(&store, 0, 1);
  ASSERT_OK(store.SyncTo(0));

  FaultInjector::Options fopts;
  fopts.seed = 0x5A5A;
  fopts.storage_enospc_probability = 1.0;
  fopts.scoped_only = false;  // the flusher thread never enters a Scope
  FaultInjector fi(fopts);
  store.SetFaultInjector(&fi);
  EnqueueCommits(&store, 1, 2);

  ASSERT_TRUE(WaitFor([&] { return store.out_of_space(); }));
  Status s = store.CheckWritable();
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_TRUE(s.IsTransient());
  EXPECT_FALSE(store.crashed());
  EXPECT_GE(store.counters().faults_enospc, 1u);

  // Space returns: the parked batch drains and the gate reopens.
  fi.set_armed(false);
  ASSERT_OK(store.SyncTo(1));
  EXPECT_FALSE(store.out_of_space());
  EXPECT_OK(store.CheckWritable());
  store.SetFaultInjector(nullptr);
  store.Stop();

  ASSERT_OK_AND_ASSIGN(WalDirScan scan, ScanWalDir(dir));
  ASSERT_EQ(scan.suffix.size(), 2u);
}

// fsyncgate semantics: an EIO (or short write) on the append path poisons
// the active segment and rotates; the unacked batch is re-appended to the
// successor, which records prev_poisoned so recovery accepts the
// predecessor's unsealed header. No acknowledged record is lost.
TEST(WalSegmentTest, EioPoisonsAndRotates) {
  for (bool short_write : {false, true}) {
    SCOPED_TRACE(short_write ? "short-write" : "eio");
    std::string dir = FreshDir(short_write ? "shortw" : "eio");
    DurableWalOptions opts;
    opts.dir = dir;
    opts.enospc_retry = std::chrono::milliseconds(1);
    WalSegmentStore store;
    ASSERT_OK(store.Open(opts, 1, 0, true));
    store.Start();
    EnqueueCommits(&store, 0, 1);
    ASSERT_OK(store.SyncTo(0));  // segment exists; next fault hits the append

    FaultInjector::Options fopts;
    fopts.seed = 0xE10;
    if (short_write) {
      fopts.storage_short_write_probability = 1.0;
    } else {
      fopts.storage_eio_probability = 1.0;
    }
    fopts.scoped_only = false;
    FaultInjector fi(fopts);
    store.SetFaultInjector(&fi);
    EnqueueCommits(&store, 1, 2);
    // The injector also fails segment *creation*, so the flusher loops
    // poison -> retry-create; disarm once the poison is observed.
    ASSERT_TRUE(WaitFor([&] {
      return store.counters().segments_poisoned >= 1;
    }));
    fi.set_armed(false);
    ASSERT_OK(store.SyncTo(1));
    EXPECT_FALSE(store.crashed());
    auto c = store.counters();
    EXPECT_GE(c.segments_poisoned, 1u);
    if (short_write) {
      EXPECT_GE(c.faults_short_write, 1u);
    } else {
      EXPECT_GE(c.faults_eio, 1u);
    }
    store.SetFaultInjector(nullptr);
    store.Stop();

    // Recovery reads across the poisoned boundary: both records, no gap,
    // any torn bytes in the poisoned file discarded via prev_poisoned.
    ASSERT_OK_AND_ASSIGN(WalDirScan scan, ScanWalDir(dir));
    ASSERT_EQ(scan.suffix.size(), 2u);
    EXPECT_EQ(scan.suffix[0].lsn, 0u);
    EXPECT_EQ(scan.suffix[1].lsn, 1u);
    bool successor_poisoned = false;
    for (const std::string& path : SegmentFiles(dir)) {
      std::ifstream in(path, std::ios::binary);
      std::string head(kSegmentHeaderBytes, '\0');
      in.read(head.data(), static_cast<std::streamsize>(head.size()));
      auto h = DecodeSegmentHeader(head);
      if (h.ok() && h->prev_poisoned) successor_poisoned = true;
    }
    EXPECT_TRUE(successor_poisoned);
  }
}

// A transient EIO on the seal marker alone (every record in the segment is
// already durable) must not make the log unrecoverable: the seal failure
// poisons the segment, and the successor created by a *later* batch still
// has to carry prev_poisoned so recovery accepts the unsealed mid-stream
// header. Regression: the poison state used to live in a per-batch local
// and was lost before the successor was created.
TEST(WalSegmentTest, SealFailureMarksSuccessorPrevPoisoned) {
  std::string dir = FreshDir("seal_fail");
  DurableWalOptions opts;
  opts.dir = dir;
  opts.segment_bytes = 256;
  WalSegmentStore store;
  ASSERT_OK(store.Open(opts, 1, 0, true));
  std::atomic<int> seal_attempts{0};
  store.SetFailHook([&](const char* at) {
    return std::string_view(at) == "rotate.seal" &&
           seal_attempts.fetch_add(1) == 0;  // only the first seal fails
  });
  store.Start();
  for (Lsn lsn = 0; lsn < 40; ++lsn) {
    WalRecord r = MakeCommit(lsn, lsn + 1);
    store.Enqueue(lsn, r.commit_csn, Encode(r));
    ASSERT_OK(store.SyncTo(lsn));
  }
  ASSERT_GE(seal_attempts.load(), 1);
  EXPECT_GE(store.counters().segments_poisoned, 1u);
  EXPECT_FALSE(store.crashed());
  store.Stop();

  ASSERT_OK_AND_ASSIGN(WalDirScan scan, ScanWalDir(dir));
  ASSERT_EQ(scan.suffix.size(), 40u);
  for (size_t i = 0; i < 40; ++i) EXPECT_EQ(scan.suffix[i].lsn, i);
  bool successor_poisoned = false;
  for (const std::string& path : SegmentFiles(dir)) {
    std::ifstream in(path, std::ios::binary);
    std::string head(kSegmentHeaderBytes, '\0');
    in.read(head.data(), static_cast<std::streamsize>(head.size()));
    auto h = DecodeSegmentHeader(head);
    if (h.ok() && h->prev_poisoned) successor_poisoned = true;
  }
  EXPECT_TRUE(successor_poisoned);
}

// Retention must never punch a mid-stream hole. A commit-less segment has
// max_csn == 0 and always clears the CSN gate, so the old per-segment
// predicate deleted it even when an *earlier* segment was held back by the
// retention floor -- recovery then refused the log with an LSN gap. Only a
// contiguous prefix may be pruned.
TEST(WalSegmentTest, PruneStopsAtRetainedSegmentInsteadOfPunchingHoles) {
  std::string dir = FreshDir("prune_prefix");
  DurableWalOptions opts;
  opts.dir = dir;
  opts.segment_bytes = 256;
  WalSegmentStore store;
  ASSERT_OK(store.Open(opts, 1, 0, true));
  store.Start();
  // Commit segments first (max_csn > 0)...
  Lsn lsn = 0;
  for (; lsn < 12; ++lsn) {
    WalRecord r = MakeCommit(lsn, lsn + 1);
    store.Enqueue(lsn, r.commit_csn, Encode(r));
    ASSERT_OK(store.SyncTo(lsn));
  }
  // ...then commit-less segments (aborts only: max_csn stays 0)...
  for (; lsn < 24; ++lsn) {
    WalRecord r;
    r.kind = WalRecord::Kind::kAbort;
    r.lsn = lsn;
    r.txn = lsn + 1;
    store.Enqueue(lsn, kNullCsn, Encode(r));
    ASSERT_OK(store.SyncTo(lsn));
  }
  // ...then commits again.
  for (; lsn < 36; ++lsn) {
    WalRecord r = MakeCommit(lsn, lsn + 1);
    store.Enqueue(lsn, r.commit_csn, Encode(r));
    ASSERT_OK(store.SyncTo(lsn));
  }
  ASSERT_GT(store.segment_count(), 3u);

  // Cover everything, but keep a low retention floor: a lagging view still
  // needs commits above CSN 1, so the early commit segments must stay.
  store.SetRetentionFloor(1);
  std::vector<WalRecord> image;
  for (Lsn l = 0; l < 36; ++l) image.push_back(MakeCommit(l, l + 1));
  ASSERT_OK(store.PublishCheckpoint(36, 36, EncodeWal(image)));
  store.PruneSegments();
  // At most the first segment (if it holds only CSN 1) may go; in
  // particular the covered commit-less segments behind the retained ones
  // survive, and the directory still scans without a gap.
  EXPECT_LE(store.counters().segments_deleted, 1u);
  {
    ASSERT_OK_AND_ASSIGN(WalDirScan scan, ScanWalDir(dir));
    EXPECT_EQ(scan.covered_end_lsn, 36u);
    EXPECT_TRUE(scan.suffix.empty());
  }

  // Lifting the floor releases the whole covered prefix.
  store.SetRetentionFloor(kMaxCsn);
  store.PruneSegments();
  EXPECT_GE(store.counters().segments_deleted, 3u);
  store.Stop();
  ASSERT_OK_AND_ASSIGN(WalDirScan scan, ScanWalDir(dir));
  EXPECT_EQ(scan.covered_end_lsn, 36u);
  EXPECT_TRUE(scan.suffix.empty());
}

// A poison that lands before any record in the segment is acknowledged
// (creation succeeded, first append failed) must not leak a stale meta:
// the replacement segment reuses the identical file name, so a kept entry
// would alias the live one's path and inflate segment_count/bytes_by_state
// forever.
TEST(WalSegmentTest, EmptySegmentPoisonLeavesNoStaleMeta) {
  std::string dir = FreshDir("empty_poison");
  DurableWalOptions opts;
  opts.dir = dir;
  opts.enospc_retry = std::chrono::milliseconds(1);
  WalSegmentStore store;
  ASSERT_OK(store.Open(opts, 1, 0, true));
  std::atomic<int> append_attempts{0};
  store.SetFailHook([&](const char* at) {
    return std::string_view(at) == "segment.append" &&
           append_attempts.fetch_add(1) < 3;  // first three appends fail
  });
  store.Start();
  EnqueueCommits(&store, 0, 1);
  ASSERT_OK(store.SyncTo(0));
  auto c = store.counters();
  EXPECT_EQ(c.segments_poisoned, 3u);
  EXPECT_EQ(c.segments_created, 4u);
  // Exactly one live segment tracked -- the active one -- and one file.
  EXPECT_EQ(store.segment_count(), 1u);
  auto bytes = store.bytes_by_state();
  EXPECT_GT(bytes.active, 0u);
  EXPECT_EQ(bytes.sealed, 0u);
  EXPECT_EQ(bytes.retained, 0u);
  EXPECT_EQ(SegmentFiles(dir).size(), 1u);
  store.Stop();

  ASSERT_OK_AND_ASSIGN(WalDirScan scan, ScanWalDir(dir));
  ASSERT_EQ(scan.suffix.size(), 1u);
  EXPECT_EQ(scan.suffix[0].lsn, 0u);
  EXPECT_EQ(scan.suffix[0].commit_csn, 1u);
}

// Every durability transition has a seeded crash point; a crash at any of
// them must leave a directory that scans to a clean prefix of the enqueued
// records (checkpoint points may instead surface the pre-publish state --
// atomic rename means there is no in-between).
TEST(WalSegmentTest, CrashPointsLeaveScannableState) {
  const char* kPoints[] = {
      "segment.create",       "segment.append",        "segment.sync",
      "checkpoint.pre_temp",  "checkpoint.post_temp_sync",
      "checkpoint.pre_rename", "checkpoint.post_rename",
      "checkpoint.dir_sync",
  };
  for (const char* point : kPoints) {
    SCOPED_TRACE(point);
    std::string dir = FreshDir(std::string("crash_") +
                               std::string(point).substr(0, 3) +
                               std::to_string(std::string_view(point).size()));
    DurableWalOptions opts;
    opts.dir = dir;
    WalSegmentStore store;
    ASSERT_OK(store.Open(opts, 1, 0, true));
    bool is_ckpt = std::string_view(point).rfind("checkpoint.", 0) == 0;
    if (!is_ckpt) {
      store.SetCrashHook([point](const char* at) {
        return std::string_view(at) == point;
      });
    }
    store.Start();
    EnqueueCommits(&store, 0, 6);
    Status synced = store.SyncTo(5);
    if (is_ckpt) {
      ASSERT_OK(synced);
      store.SetCrashHook([point](const char* at) {
        return std::string_view(at) == point;
      });
      std::vector<WalRecord> image;
      for (Lsn lsn = 0; lsn < 6; ++lsn) {
        image.push_back(MakeCommit(lsn, lsn + 1));
      }
      Status pub = store.PublishCheckpoint(6, 6, EncodeWal(image));
      EXPECT_FALSE(pub.ok());
      EXPECT_TRUE(store.crashed());
    } else {
      EXPECT_FALSE(synced.ok()) << synced.ToString();
      EXPECT_TRUE(store.crashed());
      // The store stays dead after a crash: no further acknowledgments.
      EnqueueCommits(&store, 6, 7);
      EXPECT_FALSE(store.SyncTo(6).ok());
    }
    store.Stop();

    ASSERT_OK_AND_ASSIGN(WalDirScan scan, ScanWalDir(dir));
    // Replay = image + suffix is always a clean prefix of the enqueued
    // records, with LSNs contiguous from 0.
    std::vector<WalRecord> replay = scan.image;
    replay.insert(replay.end(), scan.suffix.begin(), scan.suffix.end());
    EXPECT_LE(replay.size(), 6u);
    for (size_t i = 0; i < replay.size(); ++i) {
      EXPECT_EQ(replay[i].lsn, i);
      EXPECT_EQ(replay[i].commit_csn, i + 1);
    }
    if (is_ckpt) {
      // Before the rename lands the old state is visible; after it, the
      // new checkpoint is. Either way all six records replay.
      EXPECT_EQ(replay.size(), 6u);
      bool published = scan.covered_end_lsn == 6u;
      bool pre_publish = scan.covered_end_lsn == 0u;
      EXPECT_TRUE(published || pre_publish)
          << "coverage " << scan.covered_end_lsn;
    }
  }
}

// Random byte-level damage to segment and checkpoint files: the scanner
// must never crash, never fabricate records, and either return a clean
// replayable prefix or fail loudly.
TEST(WalSegmentTest, RandomDamageNeverCrashesScan) {
  std::string golden = FreshDir("fuzz_golden");
  DurableWalOptions opts;
  opts.dir = golden;
  opts.segment_bytes = 256;
  WalSegmentStore store;
  ASSERT_OK(store.Open(opts, 1, 0, true));
  store.Start();
  for (Lsn lsn = 0; lsn < 30; ++lsn) {
    WalRecord r = MakeCommit(lsn, lsn + 1);
    store.Enqueue(lsn, r.commit_csn, Encode(r));
    ASSERT_OK(store.SyncTo(lsn));
  }
  std::vector<WalRecord> image;
  for (Lsn lsn = 0; lsn < 12; ++lsn) image.push_back(MakeCommit(lsn, lsn + 1));
  ASSERT_OK(store.PublishCheckpoint(12, 12, EncodeWal(image)));
  store.Stop();

  // Snapshot every file's bytes once.
  std::vector<std::pair<std::string, std::string>> files;  // name -> bytes
  for (const auto& entry : fs::directory_iterator(golden)) {
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    files.emplace_back(entry.path().filename().string(), std::move(bytes));
  }
  ASSERT_GT(files.size(), 2u);

  Rng rng(0xDA3A6E);
  std::string scratch = FreshDir("fuzz_scratch");
  for (int iter = 0; iter < 120; ++iter) {
    SCOPED_TRACE("iter " + std::to_string(iter));
    fs::remove_all(scratch);
    fs::create_directories(scratch);
    size_t victim = static_cast<size_t>(
        rng.Uniform(0, static_cast<int64_t>(files.size()) - 1));
    for (size_t i = 0; i < files.size(); ++i) {
      std::string bytes = files[i].second;
      if (i == victim && !bytes.empty()) {
        if (rng.Uniform(0, 1) == 0) {
          size_t at = static_cast<size_t>(
              rng.Uniform(0, static_cast<int64_t>(bytes.size()) - 1));
          bytes[at] = static_cast<char>(
              static_cast<unsigned char>(bytes[at]) ^
              (1u << rng.Uniform(0, 7)));
        } else {
          bytes.resize(static_cast<size_t>(
              rng.Uniform(0, static_cast<int64_t>(bytes.size()))));
        }
      }
      std::ofstream out(scratch + "/" + files[i].first, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    Result<WalDirScan> scan = ScanWalDir(scratch);
    if (!scan.ok()) continue;  // loud failure is an acceptable outcome
    // Whatever survives must be internally consistent.
    if (!scan->suffix.empty()) {
      EXPECT_EQ(scan->suffix.front().lsn, scan->covered_end_lsn);
      for (size_t i = 1; i < scan->suffix.size(); ++i) {
        EXPECT_EQ(scan->suffix[i].lsn, scan->suffix[i - 1].lsn + 1);
      }
    }
  }
}

}  // namespace
}  // namespace rollview
