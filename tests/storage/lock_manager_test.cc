#include "storage/lock_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace rollview {
namespace {

TEST(LockModeTest, CompatibilityMatrix) {
  using M = LockMode;
  // IS compatible with all but X.
  EXPECT_TRUE(LockCompatible(M::kIS, M::kIS));
  EXPECT_TRUE(LockCompatible(M::kIS, M::kIX));
  EXPECT_TRUE(LockCompatible(M::kIS, M::kS));
  EXPECT_TRUE(LockCompatible(M::kIS, M::kSIX));
  EXPECT_FALSE(LockCompatible(M::kIS, M::kX));
  // IX with IS/IX only.
  EXPECT_TRUE(LockCompatible(M::kIX, M::kIX));
  EXPECT_FALSE(LockCompatible(M::kIX, M::kS));
  EXPECT_FALSE(LockCompatible(M::kIX, M::kSIX));
  // S with IS/S.
  EXPECT_TRUE(LockCompatible(M::kS, M::kS));
  EXPECT_FALSE(LockCompatible(M::kS, M::kIX));
  // SIX with IS only.
  EXPECT_TRUE(LockCompatible(M::kSIX, M::kIS));
  EXPECT_FALSE(LockCompatible(M::kSIX, M::kSIX));
  // X with nothing.
  for (M m : {M::kIS, M::kIX, M::kS, M::kSIX, M::kX}) {
    EXPECT_FALSE(LockCompatible(M::kX, m));
  }
}

TEST(LockModeTest, Supremum) {
  using M = LockMode;
  EXPECT_EQ(LockSupremum(M::kIS, M::kIX), M::kIX);
  EXPECT_EQ(LockSupremum(M::kS, M::kIX), M::kSIX);
  EXPECT_EQ(LockSupremum(M::kIX, M::kS), M::kSIX);
  EXPECT_EQ(LockSupremum(M::kS, M::kS), M::kS);
  EXPECT_EQ(LockSupremum(M::kS, M::kX), M::kX);
  EXPECT_EQ(LockSupremum(M::kIS, M::kIS), M::kIS);
}

TEST(LockManagerTest, GrantAndReacquire) {
  LockManager lm;
  ResourceId r = ResourceId::Table(1);
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kS).ok());
  EXPECT_TRUE(lm.Holds(1, r, LockMode::kS));
  // Re-acquiring the same or weaker mode is a no-op.
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kIS).ok());
  EXPECT_TRUE(lm.Holds(1, r, LockMode::kS));
  lm.ReleaseAll(1);
  EXPECT_FALSE(lm.Holds(1, r, LockMode::kIS));
}

TEST(LockManagerTest, SharedGrantsCoexist) {
  LockManager lm;
  ResourceId r = ResourceId::Table(1);
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(2, r, LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(3, r, LockMode::kIS).ok());
  EXPECT_TRUE(lm.Holds(2, r, LockMode::kS));
}

TEST(LockManagerTest, ConflictBlocksUntilRelease) {
  LockManager lm;
  ResourceId r = ResourceId::Table(1);
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kX).ok());

  std::atomic<bool> granted{false};
  std::thread t([&] {
    Status s = lm.Acquire(2, r, LockMode::kS);
    EXPECT_TRUE(s.ok()) << s.ToString();
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted.load());
  lm.ReleaseAll(1);
  t.join();
  EXPECT_TRUE(granted.load());
  EXPECT_GT(lm.GetStats().wait_nanos, 0u);
}

TEST(LockManagerTest, FifoPreventsWriterStarvation) {
  LockManager lm;
  ResourceId r = ResourceId::Table(1);
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kS).ok());

  std::atomic<bool> x_granted{false};
  std::thread writer([&] {
    EXPECT_TRUE(lm.Acquire(2, r, LockMode::kX).ok());
    x_granted.store(true);
    lm.ReleaseAll(2);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_FALSE(x_granted.load());

  // A fresh S request must queue behind the waiting X, not jump it.
  std::atomic<bool> s_granted{false};
  std::thread reader([&] {
    EXPECT_TRUE(lm.Acquire(3, r, LockMode::kS).ok());
    s_granted.store(true);
    lm.ReleaseAll(3);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(s_granted.load());

  lm.ReleaseAll(1);  // X goes first, then S
  writer.join();
  reader.join();
  EXPECT_TRUE(x_granted.load());
  EXPECT_TRUE(s_granted.load());
}

TEST(LockManagerTest, DeadlockDetectedAndVictimAborted) {
  LockManager lm;
  ResourceId a = ResourceId::Table(1);
  ResourceId b = ResourceId::Table(2);
  ASSERT_TRUE(lm.Acquire(1, a, LockMode::kX).ok());
  ASSERT_TRUE(lm.Acquire(2, b, LockMode::kX).ok());

  std::atomic<int> aborted{0};
  std::atomic<int> granted{0};
  std::thread t1([&] {
    Status s = lm.Acquire(1, b, LockMode::kX);  // waits for txn 2
    if (s.IsTxnAborted()) {
      aborted++;
      lm.ReleaseAll(1);
    } else if (s.ok()) {
      granted++;
      lm.ReleaseAll(1);
    }
  });
  std::thread t2([&] {
    Status s = lm.Acquire(2, a, LockMode::kX);  // waits for txn 1 -> cycle
    if (s.IsTxnAborted()) {
      aborted++;
      lm.ReleaseAll(2);
    } else if (s.ok()) {
      granted++;
      lm.ReleaseAll(2);
    }
  });
  t1.join();
  t2.join();
  EXPECT_GE(aborted.load(), 1);
  EXPECT_GE(lm.GetStats().deadlocks, 1u);
}

TEST(LockManagerTest, UpgradeSToX) {
  LockManager lm;
  ResourceId r = ResourceId::Table(1);
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kX).ok());  // immediate upgrade
  EXPECT_TRUE(lm.Holds(1, r, LockMode::kX));

  // Another reader must now block.
  std::atomic<bool> granted{false};
  std::thread t([&] {
    EXPECT_TRUE(lm.Acquire(2, r, LockMode::kS).ok());
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(granted.load());
  lm.ReleaseAll(1);
  t.join();
}

TEST(LockManagerTest, UpgradeWaitsForOtherReaders) {
  LockManager lm;
  ResourceId r = ResourceId::Table(1);
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kS).ok());
  ASSERT_TRUE(lm.Acquire(2, r, LockMode::kS).ok());

  std::atomic<bool> upgraded{false};
  std::thread t([&] {
    EXPECT_TRUE(lm.Acquire(1, r, LockMode::kX).ok());
    upgraded.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(upgraded.load());
  lm.ReleaseAll(2);
  t.join();
  EXPECT_TRUE(upgraded.load());
  EXPECT_TRUE(lm.Holds(1, r, LockMode::kX));
}

TEST(LockManagerTest, TimeoutReturnsBusy) {
  LockManager::Options opts;
  opts.wait_timeout = std::chrono::milliseconds(30);
  LockManager lm(opts);
  ResourceId r = ResourceId::Table(1);
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kX).ok());
  Status s = lm.Acquire(2, r, LockMode::kX);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_GE(lm.GetStats().timeouts, 1u);
}

TEST(LockManagerTest, RowAndTableResourcesAreIndependent) {
  LockManager lm;
  ASSERT_TRUE(lm.Acquire(1, ResourceId::Row(1, 42), LockMode::kX).ok());
  ASSERT_TRUE(lm.Acquire(2, ResourceId::Row(1, 43), LockMode::kX).ok());
  ASSERT_TRUE(lm.Acquire(3, ResourceId::Table(1), LockMode::kIX).ok());
  // Named resources live in their own space.
  ASSERT_TRUE(lm.Acquire(4, ResourceId::Named(1), LockMode::kX).ok());
}

// Builds a two-member deadlock (txn `first` holds a and wants b, txn
// `second` holds b and wants a) and returns which transaction was aborted
// as the victim. Extra resources in `first_extra`/`second_extra` are
// acquired up front to manipulate the cost (held-lock count) tie-breaker.
TxnId RunTwoTxnDeadlock(LockManager* lm, TxnId first, TxnClass first_cls,
                        TxnId second, TxnClass second_cls,
                        int first_extra = 0, int second_extra = 0) {
  ResourceId a = ResourceId::Table(1);
  ResourceId b = ResourceId::Table(2);
  EXPECT_TRUE(lm->Acquire(first, a, LockMode::kX, first_cls).ok());
  EXPECT_TRUE(lm->Acquire(second, b, LockMode::kX, second_cls).ok());
  for (int i = 0; i < first_extra; ++i) {
    EXPECT_TRUE(lm->Acquire(first, ResourceId::Table(100 + i), LockMode::kX,
                            first_cls)
                    .ok());
  }
  for (int i = 0; i < second_extra; ++i) {
    EXPECT_TRUE(lm->Acquire(second, ResourceId::Table(200 + i), LockMode::kX,
                            second_cls)
                    .ok());
  }

  std::atomic<TxnId> victim{0};
  std::thread t1([&] {
    Status s = lm->Acquire(first, b, LockMode::kX, first_cls);
    if (s.IsTxnAborted()) victim.store(first);
    lm->ReleaseAll(first);
  });
  std::thread t2([&] {
    Status s = lm->Acquire(second, a, LockMode::kX, second_cls);
    if (s.IsTxnAborted()) victim.store(second);
    lm->ReleaseAll(second);
  });
  t1.join();
  t2.join();
  return victim.load();
}

TEST(LockManagerTest, MaintenanceTxnIsTheDeadlockVictim) {
  // OLTP vs maintenance: the maintenance member volunteers, whichever
  // waiter runs the detection.
  LockManager lm;
  EXPECT_EQ(RunTwoTxnDeadlock(&lm, 1, TxnClass::kOltp, 2,
                              TxnClass::kMaintenance),
            2u);
  LockManager::Stats st = lm.GetStats();
  EXPECT_EQ(st.cls(TxnClass::kMaintenance).deadlock_victims, 1u);
  EXPECT_EQ(st.cls(TxnClass::kOltp).deadlock_victims, 0u);
  EXPECT_GE(st.deadlocks, 1u);
}

TEST(LockManagerTest, MaintenanceVolunteersEvenWithHigherCost) {
  // Class dominates cost: the maintenance txn holds MORE locks (more work
  // to redo) and a lower id (older), yet still loses to the OLTP member.
  LockManager lm;
  EXPECT_EQ(RunTwoTxnDeadlock(&lm, 1, TxnClass::kMaintenance, 2,
                              TxnClass::kOltp, /*first_extra=*/3),
            1u);
  EXPECT_EQ(lm.GetStats().cls(TxnClass::kOltp).deadlock_victims, 0u);
}

TEST(LockManagerTest, CheaperTxnLosesAllMaintenanceCycle) {
  // Both maintenance: the member holding fewer locks is cheapest to redo
  // and is chosen, even though it is the older (lower) id.
  LockManager lm;
  EXPECT_EQ(RunTwoTxnDeadlock(&lm, 1, TxnClass::kMaintenance, 2,
                              TxnClass::kMaintenance,
                              /*first_extra=*/0, /*second_extra=*/2),
            1u);
}

TEST(LockManagerTest, VictimTieBreaksToYoungestTxn) {
  // Same class, same cost: the higher (younger) TxnId is the victim, so
  // repeated detection passes always agree on one victim.
  LockManager lm;
  EXPECT_EQ(
      RunTwoTxnDeadlock(&lm, 5, TxnClass::kOltp, 9, TxnClass::kOltp), 9u);
}

TEST(LockManagerTest, PerClassWaitAndTimeoutAccounting) {
  LockManager::Options opts;
  opts.wait_timeout = std::chrono::milliseconds(30);
  LockManager lm(opts);
  ResourceId r = ResourceId::Table(1);
  ASSERT_TRUE(lm.Acquire(1, r, LockMode::kX).ok());  // OLTP holder
  Status s = lm.Acquire(2, r, LockMode::kX, TxnClass::kMaintenance);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();

  LockManager::Stats st = lm.GetStats();
  EXPECT_EQ(st.cls(TxnClass::kOltp).acquires, 1u);
  EXPECT_EQ(st.cls(TxnClass::kOltp).waits, 0u);
  EXPECT_EQ(st.cls(TxnClass::kMaintenance).waits, 1u);
  EXPECT_EQ(st.cls(TxnClass::kMaintenance).timeouts, 1u);
  EXPECT_GT(st.cls(TxnClass::kMaintenance).wait_nanos, 0u);
  // The per-class histogram recorded exactly the blocking acquire.
  EXPECT_EQ(lm.WaitHistogram(TxnClass::kMaintenance).count(), 1u);
  EXPECT_EQ(lm.WaitHistogram(TxnClass::kOltp).count(), 0u);
  lm.ReleaseAll(1);

  lm.ResetStats();
  EXPECT_EQ(lm.GetStats().cls(TxnClass::kMaintenance).timeouts, 0u);
  EXPECT_EQ(lm.WaitHistogram(TxnClass::kMaintenance).count(), 0u);
}

TEST(LockManagerTest, ManyThreadsRowLockStress) {
  LockManager lm;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<uint64_t> counter{0};
  uint64_t unprotected = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        TxnId txn = static_cast<TxnId>(t * kIters + i + 1);
        Status s = lm.Acquire(txn, ResourceId::Row(9, 7), LockMode::kX);
        ASSERT_TRUE(s.ok()) << s.ToString();
        // X lock makes this critical section exclusive.
        unprotected++;
        counter.fetch_add(1);
        lm.ReleaseAll(txn);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.load(), static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(unprotected, static_cast<uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace rollview
