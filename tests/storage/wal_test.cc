#include "storage/wal.h"

#include <gtest/gtest.h>

namespace rollview {
namespace {

WalRecord Insert(TxnId txn, TableId table) {
  return WalRecord{WalRecord::Kind::kInsert, 0, txn, table,
                   Tuple{Value(int64_t{1})}, kNullCsn};
}

TEST(WalTest, AppendAssignsSequentialLsns) {
  Wal wal;
  EXPECT_EQ(wal.Append(Insert(1, 1)), 0u);
  EXPECT_EQ(wal.Append(Insert(1, 1)), 1u);
  EXPECT_EQ(wal.Append(Insert(2, 1)), 2u);
  EXPECT_EQ(wal.next_lsn(), 3u);
  EXPECT_EQ(wal.size(), 3u);
}

TEST(WalTest, ReadFromReturnsCursor) {
  Wal wal;
  for (int i = 0; i < 10; ++i) wal.Append(Insert(1, 1));
  std::vector<WalRecord> out;
  Lsn next = wal.ReadFrom(0, 4, &out);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(next, 4u);
  out.clear();
  next = wal.ReadFrom(next, 100, &out);
  EXPECT_EQ(out.size(), 6u);
  EXPECT_EQ(next, 10u);
  // Reading at the end returns nothing, same cursor.
  out.clear();
  EXPECT_EQ(wal.ReadFrom(10, 5, &out), 10u);
  EXPECT_TRUE(out.empty());
}

TEST(WalTest, TruncatePreservesLsnSpace) {
  Wal wal;
  for (int i = 0; i < 10; ++i) wal.Append(Insert(1, 1));
  wal.Truncate(6);
  EXPECT_EQ(wal.size(), 4u);
  std::vector<WalRecord> out;
  // Reads below the truncation point clamp forward.
  Lsn next = wal.ReadFrom(0, 100, &out);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].lsn, 6u);
  EXPECT_EQ(next, 10u);
  // New appends continue the LSN sequence.
  EXPECT_EQ(wal.Append(Insert(2, 1)), 10u);
}

TEST(WalTest, RecordsRoundTripPayload) {
  Wal wal;
  WalRecord rec;
  rec.kind = WalRecord::Kind::kCommit;
  rec.txn = 42;
  rec.commit_csn = 17;
  wal.Append(rec);
  std::vector<WalRecord> out;
  wal.ReadFrom(0, 1, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, WalRecord::Kind::kCommit);
  EXPECT_EQ(out[0].txn, 42u);
  EXPECT_EQ(out[0].commit_csn, 17u);
}

}  // namespace
}  // namespace rollview
