// Direct unit tests of the MVCC heap (visibility rules, abort markers,
// bounded deletes, GC slot remapping) below the Db facade.

#include "storage/versioned_table.h"

#include <gtest/gtest.h>

namespace rollview {
namespace {

Schema OneCol() { return Schema({Column{"k", ValueType::kInt64}}); }

class VersionedTableTest : public ::testing::Test {
 protected:
  VersionedTableTest() : table_(1, "t", OneCol(), {0}) {}

  size_t CommittedInsert(int64_t k, Csn csn, TxnId txn = 7) {
    size_t slot = table_.AddPendingInsert(txn, Tuple{Value(k)});
    table_.CommitInsert(slot, csn);
    return slot;
  }

  VersionedTable table_;
};

TEST_F(VersionedTableTest, PendingInsertVisibleOnlyToOwner) {
  table_.AddPendingInsert(/*txn=*/5, Tuple{Value(int64_t{1})});
  EXPECT_EQ(table_.CurrentScan(5).size(), 1u);
  EXPECT_TRUE(table_.CurrentScan(6).empty());
  EXPECT_TRUE(table_.SnapshotScan(100).empty());
}

TEST_F(VersionedTableTest, AbortedInsertInvisibleEverywhere) {
  size_t slot = table_.AddPendingInsert(5, Tuple{Value(int64_t{1})});
  table_.AbortInsert(slot);
  EXPECT_TRUE(table_.CurrentScan(5).empty());
  EXPECT_TRUE(table_.SnapshotScan(100).empty());
  EXPECT_TRUE(table_.CurrentProbe(5, 0, Value(int64_t{1})).empty());
}

TEST_F(VersionedTableTest, PendingDeleteHidesFromOwnerOnly) {
  CommittedInsert(1, 10);
  std::vector<size_t> slots;
  std::vector<Tuple> tuples;
  int64_t n = table_.MarkPendingDeletes(
      /*txn=*/5, [](const Tuple&) { return true; }, -1, &slots, &tuples);
  ASSERT_EQ(n, 1);
  EXPECT_TRUE(table_.CurrentScan(5).empty());      // owner sees the delete
  EXPECT_EQ(table_.CurrentScan(6).size(), 1u);     // others do not (yet)
  table_.AbortDelete(slots[0]);
  EXPECT_EQ(table_.CurrentScan(5).size(), 1u);     // rollback restores
}

TEST_F(VersionedTableTest, DeleteLimitAndDoubleMarkProtection) {
  CommittedInsert(1, 10);
  CommittedInsert(1, 10);
  CommittedInsert(1, 10);
  std::vector<size_t> slots;
  std::vector<Tuple> tuples;
  EXPECT_EQ(table_.MarkPendingDeletes(
                5, [](const Tuple&) { return true; }, 2, &slots, &tuples),
            2);
  // Already-marked rows are not re-marked by a second call.
  std::vector<size_t> slots2;
  std::vector<Tuple> tuples2;
  EXPECT_EQ(table_.MarkPendingDeletes(
                5, [](const Tuple&) { return true; }, -1, &slots2, &tuples2),
            1);
}

TEST_F(VersionedTableTest, SnapshotVisibilityWindow) {
  CommittedInsert(1, 10);
  std::vector<size_t> slots;
  std::vector<Tuple> tuples;
  table_.MarkPendingDeletes(5, [](const Tuple&) { return true; }, 1, &slots,
                            &tuples);
  table_.CommitDelete(slots[0], 20);
  EXPECT_TRUE(table_.SnapshotScan(9).empty());
  EXPECT_EQ(table_.SnapshotScan(10).size(), 1u);
  EXPECT_EQ(table_.SnapshotScan(19).size(), 1u);
  EXPECT_TRUE(table_.SnapshotScan(20).empty());
  EXPECT_EQ(table_.SnapshotProbe(15, 0, Value(int64_t{1})).size(), 1u);
  EXPECT_TRUE(table_.SnapshotProbe(25, 0, Value(int64_t{1})).empty());
}

TEST_F(VersionedTableTest, LiveSizeAndVersionCount) {
  CommittedInsert(1, 10);
  CommittedInsert(2, 11);
  std::vector<size_t> slots;
  std::vector<Tuple> tuples;
  table_.MarkPendingDeletes(
      5, [](const Tuple& t) { return t[0] == Value(int64_t{1}); }, 1, &slots,
      &tuples);
  table_.CommitDelete(slots[0], 12);
  EXPECT_EQ(table_.LiveSize(), 1u);
  EXPECT_EQ(table_.VersionCount(), 2u);
}

TEST_F(VersionedTableTest, GcRemapsIndexSlots) {
  // Interleave dead and live versions so GC compaction remaps slots.
  CommittedInsert(1, 10);
  CommittedInsert(2, 11);
  CommittedInsert(3, 12);
  std::vector<size_t> slots;
  std::vector<Tuple> tuples;
  table_.MarkPendingDeletes(
      5, [](const Tuple& t) { return t[0] == Value(int64_t{2}); }, 1, &slots,
      &tuples);
  table_.CommitDelete(slots[0], 13);
  table_.GarbageCollect(13);
  EXPECT_EQ(table_.VersionCount(), 2u);
  // Probes through the index must still find the survivors.
  EXPECT_EQ(table_.SnapshotProbe(13, 0, Value(int64_t{1})).size(), 1u);
  EXPECT_EQ(table_.SnapshotProbe(13, 0, Value(int64_t{3})).size(), 1u);
  EXPECT_TRUE(table_.SnapshotProbe(13, 0, Value(int64_t{2})).empty());
}

}  // namespace
}  // namespace rollview
