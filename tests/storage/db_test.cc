// Engine-level transaction semantics: visibility, atomicity, MVCC time
// travel, commit ordering, rollback, and garbage collection.

#include "storage/db.h"

#include <gtest/gtest.h>

#include <thread>

#include "tests/test_util.h"

namespace rollview {
namespace {

class DbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema({Column{"k", ValueType::kInt64},
                   Column{"v", ValueType::kString}});
    TableOptions opts;
    opts.indexed_columns = {0};
    auto r = db_.CreateTable("t", schema, opts);
    ASSERT_TRUE(r.ok());
    t_ = r.value();
  }

  Tuple Row(int64_t k, const std::string& v) {
    return Tuple{Value(k), Value(v)};
  }

  Db db_;
  TableId t_ = kInvalidTableId;
};

TEST_F(DbTest, InsertCommitScan) {
  auto txn = db_.Begin();
  ASSERT_OK(db_.Insert(txn.get(), t_, Row(1, "a")));
  ASSERT_OK(db_.Insert(txn.get(), t_, Row(2, "b")));
  ASSERT_OK(db_.Commit(txn.get()));
  EXPECT_GT(txn->commit_csn(), 0u);

  auto reader = db_.Begin();
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> rows, db_.Scan(reader.get(), t_));
  EXPECT_EQ(rows.size(), 2u);
  ASSERT_OK(db_.Commit(reader.get()));
}

TEST_F(DbTest, OwnWritesVisibleBeforeCommit) {
  auto txn = db_.Begin();
  ASSERT_OK(db_.Insert(txn.get(), t_, Row(1, "a")));
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> rows, db_.Scan(txn.get(), t_));
  EXPECT_EQ(rows.size(), 1u);
  ASSERT_OK_AND_ASSIGN(int64_t n, db_.DeleteTuple(txn.get(), t_, Row(1, "a")));
  EXPECT_EQ(n, 1);
  ASSERT_OK_AND_ASSIGN(rows, db_.Scan(txn.get(), t_));
  EXPECT_TRUE(rows.empty());
  ASSERT_OK(db_.Commit(txn.get()));
}

TEST_F(DbTest, AbortRollsBackInsertsAndDeletes) {
  auto setup = db_.Begin();
  ASSERT_OK(db_.Insert(setup.get(), t_, Row(1, "keep")));
  ASSERT_OK(db_.Commit(setup.get()));

  auto txn = db_.Begin();
  ASSERT_OK(db_.Insert(txn.get(), t_, Row(2, "junk")));
  ASSERT_OK_AND_ASSIGN(int64_t n,
                       db_.DeleteTuple(txn.get(), t_, Row(1, "keep")));
  EXPECT_EQ(n, 1);
  ASSERT_OK(db_.Abort(txn.get()));

  auto reader = db_.Begin();
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> rows, db_.Scan(reader.get(), t_));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].AsString(), "keep");
  ASSERT_OK(db_.Commit(reader.get()));
}

TEST_F(DbTest, MultisetDuplicatesAndBoundedDelete) {
  auto txn = db_.Begin();
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(db_.Insert(txn.get(), t_, Row(7, "dup")));
  }
  ASSERT_OK(db_.Commit(txn.get()));

  auto del = db_.Begin();
  ASSERT_OK_AND_ASSIGN(int64_t n,
                       db_.DeleteTuple(del.get(), t_, Row(7, "dup"), 2));
  EXPECT_EQ(n, 2);
  ASSERT_OK(db_.Commit(del.get()));

  auto reader = db_.Begin();
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> rows, db_.Scan(reader.get(), t_));
  EXPECT_EQ(rows.size(), 1u);
  ASSERT_OK(db_.Commit(reader.get()));
}

TEST_F(DbTest, SnapshotScansAreStable) {
  auto t1 = db_.Begin();
  ASSERT_OK(db_.Insert(t1.get(), t_, Row(1, "v1")));
  ASSERT_OK(db_.Commit(t1.get()));
  Csn c1 = t1->commit_csn();

  auto t2 = db_.Begin();
  ASSERT_OK(db_.Update(t2.get(), t_, Row(1, "v1"), Row(1, "v2")));
  ASSERT_OK(db_.Commit(t2.get()));
  Csn c2 = t2->commit_csn();

  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> at1, db_.SnapshotScan(t_, c1));
  ASSERT_EQ(at1.size(), 1u);
  EXPECT_EQ(at1[0][1].AsString(), "v1");

  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> at2, db_.SnapshotScan(t_, c2));
  ASSERT_EQ(at2.size(), 1u);
  EXPECT_EQ(at2[0][1].AsString(), "v2");

  // Before any commit: empty.
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> at0, db_.SnapshotScan(t_, 0));
  EXPECT_TRUE(at0.empty());

  // Beyond stable: rejected.
  auto bad = db_.SnapshotScan(t_, db_.stable_csn() + 1);
  EXPECT_TRUE(bad.status().IsOutOfRange());
}

TEST_F(DbTest, UpdateIsDeletePlusInsertInWal) {
  auto txn = db_.Begin();
  ASSERT_OK(db_.Insert(txn.get(), t_, Row(1, "old")));
  ASSERT_OK(db_.Commit(txn.get()));

  Lsn before = db_.wal()->next_lsn();
  auto upd = db_.Begin();
  ASSERT_OK(db_.Update(upd.get(), t_, Row(1, "old"), Row(1, "new")));
  ASSERT_OK(db_.Commit(upd.get()));

  std::vector<WalRecord> recs;
  db_.wal()->ReadFrom(before, 100, &recs);
  ASSERT_EQ(recs.size(), 3u);  // delete + insert + commit
  EXPECT_EQ(recs[0].kind, WalRecord::Kind::kDelete);
  EXPECT_EQ(recs[1].kind, WalRecord::Kind::kInsert);
  EXPECT_EQ(recs[2].kind, WalRecord::Kind::kCommit);
  EXPECT_EQ(recs[2].commit_csn, upd->commit_csn());
}

TEST_F(DbTest, CommitOrderMatchesCsnOrder) {
  // Writers to disjoint rows run concurrently; their WAL commit records
  // must appear in CSN order (capture depends on it).
  constexpr int kThreads = 6;
  constexpr int kTxns = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kTxns; ++i) {
        auto txn = db_.Begin();
        Status s = db_.Insert(txn.get(), t_,
                              Tuple{Value(int64_t(t * 1000 + i)),
                                    Value(std::string("x"))});
        ASSERT_TRUE(s.ok()) << s.ToString();
        s = db_.Commit(txn.get());
        ASSERT_TRUE(s.ok()) << s.ToString();
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<WalRecord> recs;
  db_.wal()->ReadFrom(0, 1u << 20, &recs);
  Csn last = 0;
  size_t commits = 0;
  for (const WalRecord& r : recs) {
    if (r.kind != WalRecord::Kind::kCommit) continue;
    EXPECT_GT(r.commit_csn, last);
    last = r.commit_csn;
    ++commits;
  }
  EXPECT_EQ(commits, static_cast<size_t>(kThreads) * kTxns);
}

TEST_F(DbTest, IndexProbeSeesOnlyVisibleVersions) {
  auto txn = db_.Begin();
  ASSERT_OK(db_.Insert(txn.get(), t_, Row(5, "a")));
  ASSERT_OK(db_.Commit(txn.get()));
  auto del = db_.Begin();
  ASSERT_OK_AND_ASSIGN(int64_t n, db_.DeleteTuple(del.get(), t_, Row(5, "a")));
  EXPECT_EQ(n, 1);
  ASSERT_OK(db_.Commit(del.get()));

  auto reader = db_.Begin();
  ASSERT_OK(db_.LockTableShared(reader.get(), t_));
  std::vector<Tuple> hits =
      db_.table(t_)->CurrentProbe(reader->id(), 0, Value(int64_t{5}));
  EXPECT_TRUE(hits.empty());
  ASSERT_OK(db_.Commit(reader.get()));

  // Time travel still finds the old version through the index.
  std::vector<Tuple> old_hits =
      db_.table(t_)->SnapshotProbe(txn->commit_csn(), 0, Value(int64_t{5}));
  EXPECT_EQ(old_hits.size(), 1u);
}

TEST_F(DbTest, GarbageCollectionDropsDeadVersions) {
  auto ins = db_.Begin();
  ASSERT_OK(db_.Insert(ins.get(), t_, Row(1, "x")));
  ASSERT_OK(db_.Commit(ins.get()));
  auto del = db_.Begin();
  ASSERT_OK_AND_ASSIGN(int64_t n, db_.DeleteTuple(del.get(), t_, Row(1, "x")));
  ASSERT_EQ(n, 1);
  ASSERT_OK(db_.Commit(del.get()));

  EXPECT_EQ(db_.table(t_)->VersionCount(), 1u);
  db_.GarbageCollect(db_.stable_csn());
  EXPECT_EQ(db_.table(t_)->VersionCount(), 0u);

  // Survivors keep working after compaction remaps index slots.
  auto ins2 = db_.Begin();
  ASSERT_OK(db_.Insert(ins2.get(), t_, Row(2, "y")));
  ASSERT_OK(db_.Commit(ins2.get()));
  db_.GarbageCollect(db_.stable_csn());
  auto reader = db_.Begin();
  ASSERT_OK(db_.LockTableShared(reader.get(), t_));
  std::vector<Tuple> hits =
      db_.table(t_)->CurrentProbe(reader->id(), 0, Value(int64_t{2}));
  EXPECT_EQ(hits.size(), 1u);
  ASSERT_OK(db_.Commit(reader.get()));
}

TEST_F(DbTest, SchemaValidationRejectsBadTuples) {
  auto txn = db_.Begin();
  Status s = db_.Insert(txn.get(), t_, Tuple{Value("notint"), Value("x")});
  EXPECT_TRUE(s.IsInvalidArgument());
  s = db_.Insert(txn.get(), t_, Tuple{Value(int64_t{1})});
  EXPECT_TRUE(s.IsInvalidArgument());
  ASSERT_OK(db_.Abort(txn.get()));
}

TEST_F(DbTest, ReadByKeyProbesThroughTheIndex) {
  auto setup = db_.Begin();
  ASSERT_OK(db_.Insert(setup.get(), t_, Row(1, "a")));
  ASSERT_OK(db_.Insert(setup.get(), t_, Row(1, "b")));
  ASSERT_OK(db_.Insert(setup.get(), t_, Row(2, "c")));
  ASSERT_OK(db_.Commit(setup.get()));

  auto txn = db_.Begin();
  ASSERT_OK_AND_ASSIGN(auto rows,
                       db_.ReadByKey(txn.get(), t_, 0, Value(int64_t{1})));
  EXPECT_EQ(rows.size(), 2u);
  ASSERT_OK_AND_ASSIGN(rows,
                       db_.ReadByKey(txn.get(), t_, 0, Value(int64_t{9})));
  EXPECT_TRUE(rows.empty());
  // Non-indexed column rejected.
  EXPECT_TRUE(db_.ReadByKey(txn.get(), t_, 1, Value("a"))
                  .status()
                  .IsInvalidArgument());
  ASSERT_OK(db_.Commit(txn.get()));
}

TEST_F(DbTest, ReadByKeyCoexistsWithOtherKeyWriters) {
  auto setup = db_.Begin();
  ASSERT_OK(db_.Insert(setup.get(), t_, Row(1, "a")));
  ASSERT_OK(db_.Commit(setup.get()));

  // A writer holds key 2's X row lock and the table IX lock...
  auto writer = db_.Begin();
  ASSERT_OK(db_.Insert(writer.get(), t_, Row(2, "b")));
  // ...and a reader of key 1 is NOT blocked (IS + S(row 1)).
  auto reader = db_.Begin();
  ASSERT_OK_AND_ASSIGN(auto rows,
                       db_.ReadByKey(reader.get(), t_, 0, Value(int64_t{1})));
  EXPECT_EQ(rows.size(), 1u);
  // A full Scan (table S) WOULD conflict with the writer's IX -- that is
  // precisely what ReadByKey avoids. (Not exercised here: it would block.)
  ASSERT_OK(db_.Commit(reader.get()));
  ASSERT_OK(db_.Commit(writer.get()));
}

TEST_F(DbTest, CatalogErrors) {
  EXPECT_TRUE(db_.CreateTable("t", Schema()).status().IsAlreadyExists());
  EXPECT_TRUE(db_.FindTable("nope").status().IsNotFound());
  auto txn = db_.Begin();
  EXPECT_TRUE(db_.Insert(txn.get(), 9999, Tuple{}).IsNotFound());
  ASSERT_OK(db_.Abort(txn.get()));
}

}  // namespace
}  // namespace rollview
