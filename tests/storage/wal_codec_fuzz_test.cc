// Corruption fuzz for the WAL codec (the recovery entry point): random
// truncations and single-bit flips over a realistic log -- one containing
// every record kind, including the view-maintenance records -- must always
// come back as a clean prefix decode. Never a crash, never a silently
// decoded garbage record: the CRC (body damage) or the structural checks
// (header damage) stop the scan at the damaged record, and everything
// before it is returned bit-exact.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ivm/checkpoint.h"
#include "ivm/maintenance.h"
#include "storage/wal_codec.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

// A WAL with creates, inserts, deletes, commits, aborts, and all five view
// record kinds, produced by running real maintenance.
std::string BuildRealisticWal(std::vector<WalRecord>* records) {
  CaptureOptions copts;
  copts.truncate_wal = false;
  TestEnv env(copts);
  auto workload =
      TwoTableWorkload::Create(env.db(), 40, 30, 8, /*seed=*/2026).value();
  env.CatchUpCapture();
  View* view =
      env.views()->CreateView("V", workload.ViewDef()).value();
  EXPECT_TRUE(env.views()->Materialize(view).ok());

  UpdateStream updates(env.db(), workload.RStream(1, 5), 5);
  EXPECT_TRUE(updates.RunTransactions(12).ok());
  // One doomed transaction so the log has an abort record.
  {
    auto txn = env.db()->Begin();
    EXPECT_TRUE(env.db()
                    ->Insert(txn.get(), workload.r,
                             {Value(int64_t{123456}), Value(int64_t{0}),
                              Value(int64_t{0})})
                    .ok());
    EXPECT_TRUE(env.db()->Abort(txn.get()).ok());
  }
  env.CatchUpCapture();

  MaintenanceService::Options mopts;
  mopts.checkpoint_every_steps = 2;
  MaintenanceService service(env.views(), view, mopts);
  EXPECT_TRUE(service.Drain(env.db()->stable_csn()).ok());

  records->clear();
  env.db()->wal()->ReadFrom(0, 1u << 24, records);
  return EncodeWal(*records);
}

class WalCodecFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    encoded_ = BuildRealisticWal(&records_);
    ASSERT_GT(records_.size(), 40u);
    // Record start offsets, for boundary-targeted cuts.
    size_t pos = 0;
    while (pos < encoded_.size()) {
      boundaries_.push_back(pos);
      size_t consumed = 0;
      auto rec = DecodeWalRecord(encoded_, pos, &consumed);
      ASSERT_TRUE(rec.ok()) << rec.status().ToString();
      pos += consumed;
    }
    ASSERT_EQ(boundaries_.size(), records_.size());
  }

  // The core invariant: whatever the damage, DecodeWalPrefix returns a
  // prefix that re-encodes to the exact leading bytes of the damaged image,
  // and flags anything it dropped.
  void CheckPrefixInvariant(const std::string& damaged) {
    WalPrefix prefix = DecodeWalPrefix(damaged);
    ASSERT_LE(prefix.valid_bytes, damaged.size());
    EXPECT_EQ(EncodeWal(prefix.records),
              damaged.substr(0, prefix.valid_bytes));
    if (prefix.valid_bytes < damaged.size()) {
      // Something was dropped; it must be accounted for.
      EXPECT_TRUE(prefix.torn_tail || !prefix.corruption.ok());
    } else {
      EXPECT_FALSE(prefix.torn_tail);
      EXPECT_TRUE(prefix.corruption.ok());
    }
    // Decoded records are bit-exact originals.
    for (size_t i = 0; i < prefix.records.size(); ++i) {
      std::string a, b;
      EncodeWalRecord(records_[i], &a);
      EncodeWalRecord(prefix.records[i], &b);
      EXPECT_EQ(a, b) << "record " << i << " decoded differently";
    }
  }

  std::vector<WalRecord> records_;
  std::string encoded_;
  std::vector<size_t> boundaries_;
};

TEST_F(WalCodecFuzzTest, CleanLogDecodesCompletely) {
  WalPrefix prefix = DecodeWalPrefix(encoded_);
  EXPECT_EQ(prefix.records.size(), records_.size());
  EXPECT_EQ(prefix.valid_bytes, encoded_.size());
  EXPECT_FALSE(prefix.torn_tail);
  EXPECT_TRUE(prefix.corruption.ok());
}

TEST_F(WalCodecFuzzTest, TruncationAtEveryBoundary) {
  for (size_t i = 0; i < boundaries_.size(); ++i) {
    std::string cut = encoded_.substr(0, boundaries_[i]);
    WalPrefix prefix = DecodeWalPrefix(cut);
    EXPECT_EQ(prefix.records.size(), i);
    EXPECT_FALSE(prefix.torn_tail) << "clean cut flagged torn at " << i;
    EXPECT_TRUE(prefix.corruption.ok());
    CheckPrefixInvariant(cut);
  }
}

TEST_F(WalCodecFuzzTest, RandomMidRecordTruncations) {
  Rng rng(0x7461696c);  // "tail"
  for (int trial = 0; trial < 300; ++trial) {
    size_t at = rng.Uniform(0, encoded_.size());
    std::string cut = encoded_.substr(0, at);
    WalPrefix prefix = DecodeWalPrefix(cut);
    // A pure truncation can only produce a torn tail, never "corruption":
    // the bytes that survive are genuine.
    EXPECT_TRUE(prefix.corruption.ok());
    EXPECT_EQ(prefix.torn_tail, prefix.valid_bytes < cut.size());
    CheckPrefixInvariant(cut);
  }
}

TEST_F(WalCodecFuzzTest, RandomSingleBitFlips) {
  Rng flips(0x666c6970);  // "flip"
  for (int trial = 0; trial < 500; ++trial) {
    size_t at = flips.Uniform(0, encoded_.size() - 1);
    int bit = static_cast<int>(flips.Uniform(0, 7));
    std::string damaged = encoded_;
    damaged[at] = static_cast<char>(
        static_cast<unsigned char>(damaged[at]) ^ (1u << bit));

    WalPrefix prefix = DecodeWalPrefix(damaged);
    // Nothing at or past the flipped byte may have been accepted: the CRC
    // (or a structural check) must stop the scan at the damaged record.
    EXPECT_LE(prefix.valid_bytes, at);
    EXPECT_TRUE(prefix.torn_tail || !prefix.corruption.ok())
        << "flip at byte " << at << " bit " << bit << " went unnoticed";
    CheckPrefixInvariant(damaged);
  }
}

TEST_F(WalCodecFuzzTest, RandomGarbageNeverDecodes) {
  Rng rng(0x6a756e6b);  // "junk"
  for (int trial = 0; trial < 50; ++trial) {
    std::string junk(rng.Uniform(1, 512), '\0');
    for (char& c : junk) c = static_cast<char>(rng.Uniform(0, 255));
    WalPrefix prefix = DecodeWalPrefix(junk);  // must not crash
    EXPECT_EQ(EncodeWal(prefix.records),
              junk.substr(0, prefix.valid_bytes));
  }
}

}  // namespace
}  // namespace rollview
