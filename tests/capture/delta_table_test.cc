#include "capture/delta_table.h"

#include <gtest/gtest.h>

namespace rollview {
namespace {

Schema OneCol() { return Schema({Column{"k", ValueType::kInt64}}); }

DeltaRow Row(int64_t k, int64_t count, Csn ts) {
  return DeltaRow(Tuple{Value(k)}, count, ts);
}

TEST(DeltaTableTest, SortedRangeScan) {
  DeltaTable dt("d", OneCol(), /*ts_sorted=*/true);
  for (Csn ts = 1; ts <= 10; ++ts) {
    dt.Append(Row(static_cast<int64_t>(ts), +1, ts));
  }
  EXPECT_EQ(dt.size(), 10u);
  EXPECT_EQ(dt.max_ts(), 10u);

  DeltaRows rows = dt.Scan(CsnRange{3, 7});  // (3, 7]
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows.front().ts, 4u);
  EXPECT_EQ(rows.back().ts, 7u);
  EXPECT_EQ(dt.CountInRange(CsnRange{3, 7}), 4u);
  EXPECT_EQ(dt.CountInRange(CsnRange{10, 20}), 0u);
  EXPECT_TRUE(dt.Scan(CsnRange{5, 5}).empty());
}

TEST(DeltaTableTest, DuplicateTimestampsAllInRange) {
  DeltaTable dt("d", OneCol(), true);
  dt.Append(Row(1, +1, 5));
  dt.Append(Row(2, +1, 5));
  dt.Append(Row(3, +1, 5));
  EXPECT_EQ(dt.CountInRange(CsnRange{4, 5}), 3u);
  EXPECT_EQ(dt.CountInRange(CsnRange{5, 6}), 0u);
}

TEST(DeltaTableTest, UnsortedScanFilters) {
  DeltaTable dt("vd", OneCol(), /*ts_sorted=*/false);
  dt.Append(Row(1, +1, 9));
  dt.Append(Row(2, -1, 2));  // out of order: the min-ts rule does this
  dt.Append(Row(3, +1, 5));
  DeltaRows rows = dt.Scan(CsnRange{1, 5});
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(dt.CountInRange(CsnRange{0, 100}), 3u);
}

TEST(DeltaTableTest, PruneSortedDropsPrefix) {
  DeltaTable dt("d", OneCol(), true);
  for (Csn ts = 1; ts <= 10; ++ts) dt.Append(Row(1, +1, ts));
  EXPECT_EQ(dt.Prune(4), 4u);
  EXPECT_EQ(dt.size(), 6u);
  EXPECT_EQ(dt.Scan(CsnRange{0, 100}).front().ts, 5u);
}

TEST(DeltaTableTest, PruneUnsortedFilters) {
  DeltaTable dt("vd", OneCol(), false);
  dt.Append(Row(1, +1, 9));
  dt.Append(Row(2, +1, 2));
  dt.Append(Row(3, +1, 5));
  EXPECT_EQ(dt.Prune(5), 2u);
  ASSERT_EQ(dt.size(), 1u);
  EXPECT_EQ(dt.ScanAll()[0].ts, 9u);
}

TEST(DeltaTableTest, TsAfterRowsSizesAdaptiveIntervals) {
  DeltaTable dt("d", OneCol(), true);
  // 3 rows at ts 2, then one row each at 5, 6, 7.
  dt.Append(Row(1, +1, 2));
  dt.Append(Row(2, +1, 2));
  dt.Append(Row(3, +1, 2));
  dt.Append(Row(4, +1, 5));
  dt.Append(Row(5, +1, 6));
  dt.Append(Row(6, +1, 7));

  // From 0, 2 rows land inside ts<=2.
  EXPECT_EQ(dt.TsAfterRows(0, 2, 100), 2u);
  // 4 rows reach ts=5.
  EXPECT_EQ(dt.TsAfterRows(0, 4, 100), 5u);
  // More rows than exist: the cap.
  EXPECT_EQ(dt.TsAfterRows(0, 100, 42), 42u);
  // Starting past the cluster.
  EXPECT_EQ(dt.TsAfterRows(2, 1, 100), 5u);
  // Cap clamps.
  EXPECT_EQ(dt.TsAfterRows(0, 6, 6), 6u);
}

TEST(DeltaTableTest, AppendBatchKeepsOrderAndMaxTs) {
  DeltaTable dt("d", OneCol(), true);
  dt.AppendBatch({Row(1, +1, 1), Row(2, +1, 3), Row(3, -1, 3)});
  EXPECT_EQ(dt.size(), 3u);
  EXPECT_EQ(dt.max_ts(), 3u);
}

TEST(DeltaTableTest, ScanRefsMatchesScan) {
  DeltaTable dt("d", OneCol(), true);
  for (Csn ts = 1; ts <= 10; ++ts) {
    dt.Append(Row(static_cast<int64_t>(ts), +1, ts));
  }
  DeltaTable::Pin pin;
  DeltaRowRefs refs = dt.ScanRefs(CsnRange{3, 7}, &pin);
  DeltaRows rows = dt.Scan(CsnRange{3, 7});
  ASSERT_EQ(refs.size(), rows.size());
  for (size_t i = 0; i < refs.size(); ++i) EXPECT_EQ(*refs[i], rows[i]);
}

TEST(DeltaTableTest, ScanRefsSurviveAppendsAndPinDefersPrune) {
  DeltaTable dt("d", OneCol(), true);
  for (Csn ts = 1; ts <= 100; ++ts) {
    dt.Append(Row(static_cast<int64_t>(ts), +1, ts));
  }
  DeltaTable::Pin pin;
  DeltaRowRefs refs = dt.ScanRefs(CsnRange{0, 100}, &pin);
  ASSERT_EQ(refs.size(), 100u);

  // Concurrent-append simulation: enough growth to force reallocation in a
  // vector-backed store; deque storage must keep the borrowed refs valid.
  for (Csn ts = 101; ts <= 2000; ++ts) {
    dt.Append(Row(static_cast<int64_t>(ts), +1, ts));
  }
  // Pruning is deferred while the pin is live.
  EXPECT_EQ(dt.Prune(50), 0u);
  EXPECT_EQ(dt.size(), 2000u);
  for (size_t i = 0; i < refs.size(); ++i) {
    EXPECT_EQ(refs[i]->ts, static_cast<Csn>(i + 1));
    EXPECT_EQ(refs[i]->tuple[0], Value(static_cast<int64_t>(i + 1)));
  }

  // Releasing the pin re-enables pruning.
  pin = DeltaTable::Pin();
  EXPECT_EQ(dt.Prune(50), 50u);
  EXPECT_EQ(dt.size(), 1950u);
}

TEST(DeltaTableTest, PinIsMoveOnlyAndReleasesOnce) {
  DeltaTable dt("d", OneCol(), true);
  dt.Append(Row(1, +1, 1));
  DeltaTable::Pin outer;
  {
    DeltaTable::Pin a;
    DeltaRowRefs refs = dt.ScanRefs(CsnRange{0, 10}, &a);
    ASSERT_EQ(refs.size(), 1u);
    EXPECT_EQ(dt.Prune(10), 0u);
    outer = std::move(a);  // a no longer holds the pin
  }
  // `a` destructed but the pin moved out of it: still deferred.
  EXPECT_EQ(dt.Prune(10), 0u);
  outer = DeltaTable::Pin();
  EXPECT_EQ(dt.Prune(10), 1u);
}

}  // namespace
}  // namespace rollview
