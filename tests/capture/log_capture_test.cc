// The DPropR analogue: delta tables populated from the WAL, unit-of-work
// bookkeeping, high-water mark semantics, trigger-capture mode.

#include "capture/log_capture.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/fault_injector.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class CaptureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema({Column{"k", ValueType::kInt64}});
    auto log = db_.CreateTable("log_mode", schema);
    ASSERT_TRUE(log.ok());
    log_ = log.value();
    TableOptions trig;
    trig.capture_mode = CaptureMode::kTrigger;
    auto t = db_.CreateTable("trig_mode", schema, trig);
    ASSERT_TRUE(t.ok());
    trig_ = t.value();
  }

  Csn CommitOne(TableId table, int64_t k, bool del = false) {
    auto txn = db_.Begin();
    if (del) {
      auto n = db_.DeleteTuple(txn.get(), table, Tuple{Value(k)});
      EXPECT_TRUE(n.ok() && n.value() == 1);
    } else {
      EXPECT_OK(db_.Insert(txn.get(), table, Tuple{Value(k)}));
    }
    EXPECT_OK(db_.Commit(txn.get()));
    return txn->commit_csn();
  }

  Db db_;
  TableId log_ = kInvalidTableId;
  TableId trig_ = kInvalidTableId;
};

TEST_F(CaptureTest, DeltaRowsAppearOnlyAfterPoll) {
  LogCapture capture(&db_);
  Csn c = CommitOne(log_, 1);
  EXPECT_EQ(db_.delta(log_)->size(), 0u);  // not yet captured
  capture.CatchUp();
  ASSERT_EQ(db_.delta(log_)->size(), 1u);
  DeltaRows rows = db_.delta(log_)->ScanAll();
  EXPECT_EQ(rows[0].count, 1);
  EXPECT_EQ(rows[0].ts, c);
  EXPECT_EQ(capture.high_water_mark(), c);
}

TEST_F(CaptureTest, DeletesCaptureNegativeCounts) {
  LogCapture capture(&db_);
  CommitOne(log_, 7);
  Csn c2 = CommitOne(log_, 7, /*del=*/true);
  capture.CatchUp();
  DeltaRows rows = db_.delta(log_)->ScanAll();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1].count, -1);
  EXPECT_EQ(rows[1].ts, c2);
}

TEST_F(CaptureTest, AbortedTransactionsLeaveNoDelta) {
  LogCapture capture(&db_);
  auto txn = db_.Begin();
  ASSERT_OK(db_.Insert(txn.get(), log_, Tuple{Value(int64_t{1})}));
  ASSERT_OK(db_.Abort(txn.get()));
  CommitOne(log_, 2);
  capture.CatchUp();
  DeltaRows rows = db_.delta(log_)->ScanAll();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple[0].AsInt64(), 2);
}

TEST_F(CaptureTest, UowRecordsOnlyRelevantTransactions) {
  LogCapture capture(&db_);
  Csn c1 = CommitOne(log_, 1);
  // A transaction touching no log-capture table is not "relevant".
  auto txn = db_.Begin();
  ASSERT_OK(db_.Commit(txn.get()));
  capture.CatchUp();
  EXPECT_EQ(db_.uow()->size(), 1u);
  auto entry = db_.uow()->LookupCsn(c1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->csn, c1);
  // The empty commit still advanced the high-water mark.
  EXPECT_EQ(capture.high_water_mark(), txn->commit_csn());
}

TEST_F(CaptureTest, HwmAdvancesMonotonically) {
  LogCapture capture(&db_);
  Csn last = 0;
  for (int i = 0; i < 20; ++i) {
    CommitOne(log_, i);
    capture.Poll();
    Csn hwm = capture.high_water_mark();
    EXPECT_GE(hwm, last);
    last = hwm;
  }
  capture.CatchUp();
  EXPECT_EQ(capture.high_water_mark(), db_.stable_csn());
}

TEST_F(CaptureTest, TriggerModePublishesAtCommit) {
  // No capture polling at all: trigger-mode delta rows appear the moment
  // the transaction commits, stamped with its CSN, and the commit path
  // maintains the UOW table.
  Csn c = CommitOne(trig_, 5);
  ASSERT_EQ(db_.delta(trig_)->size(), 1u);
  EXPECT_EQ(db_.delta(trig_)->ScanAll()[0].ts, c);
  auto entry = db_.uow()->LookupCsn(c);
  ASSERT_TRUE(entry.has_value());
}

TEST_F(CaptureTest, TriggerModeAbortDropsDeltaRows) {
  auto txn = db_.Begin();
  ASSERT_OK(db_.Insert(txn.get(), trig_, Tuple{Value(int64_t{9})}));
  ASSERT_OK(db_.Abort(txn.get()));
  EXPECT_EQ(db_.delta(trig_)->size(), 0u);
}

TEST_F(CaptureTest, TriggerModeWidensLockFootprint) {
  // The paper's complaint about trigger capture: the update transaction's
  // footprint now includes Delta^R, so it conflicts with delta readers.
  auto writer = db_.Begin();
  ASSERT_OK(db_.Insert(writer.get(), trig_, Tuple{Value(int64_t{1})}));
  EXPECT_TRUE(db_.lock_manager()->Holds(writer->id(),
                                        ResourceId::Named(trig_),
                                        LockMode::kX));
  // A log-mode writer holds no such lock.
  auto log_writer = db_.Begin();
  ASSERT_OK(db_.Insert(log_writer.get(), log_, Tuple{Value(int64_t{1})}));
  EXPECT_FALSE(db_.lock_manager()->Holds(log_writer->id(),
                                         ResourceId::Named(log_),
                                         LockMode::kX));
  ASSERT_OK(db_.Commit(writer.get()));
  ASSERT_OK(db_.Commit(log_writer.get()));
}

TEST_F(CaptureTest, BackgroundThreadKeepsUp) {
  LogCapture capture(&db_);
  capture.Start();
  constexpr int kTxns = 300;
  for (int i = 0; i < kTxns; ++i) CommitOne(log_, i);
  ASSERT_OK(capture.WaitForCsn(db_.stable_csn()));
  capture.Stop();
  EXPECT_EQ(db_.delta(log_)->size(), static_cast<size_t>(kTxns));
  EXPECT_GE(capture.GetStats().txns_captured, static_cast<uint64_t>(kTxns));
}

TEST_F(CaptureTest, WaitForCsnTimesOutOnMissingCsn) {
  LogCapture capture(&db_);
  Status s = capture.WaitForCsn(999, std::chrono::milliseconds(50));
  EXPECT_TRUE(s.IsBusy());
}

TEST_F(CaptureTest, WaitForCsnWakesPromptlyOnBackgroundAdvance) {
  LogCapture capture(&db_);
  capture.Start();
  Csn target = db_.stable_csn() + 1;
  std::thread committer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    CommitOne(log_, 1);
  });
  auto start = std::chrono::steady_clock::now();
  ASSERT_OK(capture.WaitForCsn(target, std::chrono::milliseconds(5000)));
  auto elapsed = std::chrono::steady_clock::now() - start;
  committer.join();
  capture.Stop();
  EXPECT_GE(capture.high_water_mark(), target);
  // The waiter is notified by Poll(), not spinning to the timeout: even on
  // a loaded machine this should be far below the 5 s budget.
  EXPECT_LT(elapsed, std::chrono::milliseconds(2000));
}

TEST_F(CaptureTest, WaitForCsnTimesOutInBackgroundMode) {
  LogCapture capture(&db_);
  capture.Start();
  Status s = capture.WaitForCsn(db_.stable_csn() + 100,
                                std::chrono::milliseconds(50));
  capture.Stop();
  EXPECT_TRUE(s.IsBusy());
}

TEST_F(CaptureTest, InjectedLagStallsPollsButCatchUpStillDrains) {
  FaultInjector::Options fopts;
  fopts.capture_lag_probability = 1.0;
  fopts.capture_lag_polls = 3;
  FaultInjector fi(fopts);
  db_.SetFaultInjector(&fi);
  LogCapture capture(&db_);
  CommitOne(log_, 1);
  // Every poll during the spike consumes nothing and the HWM stalls.
  EXPECT_EQ(capture.Poll(), 0u);
  EXPECT_EQ(capture.Poll(), 0u);
  EXPECT_EQ(capture.high_water_mark(), 0u);
  fi.set_armed(false);
  capture.CatchUp();
  EXPECT_EQ(db_.delta(log_)->size(), 1u);
  EXPECT_EQ(capture.high_water_mark(), db_.stable_csn());
  EXPECT_EQ(capture.GetStats().lag_stalls, 2u);
  EXPECT_EQ(fi.GetStats().lag_polls, 2u);
  db_.SetFaultInjector(nullptr);
}

TEST_F(CaptureTest, ConcurrentWritersAllCaptured) {
  LogCapture capture(&db_);
  capture.Start();
  constexpr int kThreads = 6;
  constexpr int kTxns = 60;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kTxns; ++i) {
        auto txn = db_.Begin();
        Status s = db_.Insert(txn.get(), log_,
                              Tuple{Value(int64_t(t * 1000 + i))});
        ASSERT_TRUE(s.ok());
        ASSERT_TRUE(db_.Commit(txn.get()).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_OK(capture.WaitForCsn(db_.stable_csn()));
  capture.Stop();
  EXPECT_EQ(db_.delta(log_)->size(),
            static_cast<size_t>(kThreads) * kTxns);
  // Delta rows must be in commit (ts) order -- the sorted invariant that
  // range scans rely on.
  DeltaRows rows = db_.delta(log_)->ScanAll();
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].ts, rows[i - 1].ts);
  }
}

TEST(UowTableTest, WallTimeResolution) {
  UowTable uow;
  auto base = std::chrono::system_clock::now();
  uow.Record(1, 10, base + std::chrono::seconds(1));
  uow.Record(2, 20, base + std::chrono::seconds(2));
  uow.Record(3, 30, base + std::chrono::seconds(3));
  EXPECT_EQ(uow.CsnAtOrBefore(base), kNullCsn);
  EXPECT_EQ(uow.CsnAtOrBefore(base + std::chrono::seconds(1)), 10u);
  EXPECT_EQ(uow.CsnAtOrBefore(base + std::chrono::milliseconds(2500)), 20u);
  EXPECT_EQ(uow.CsnAtOrBefore(base + std::chrono::seconds(9)), 30u);
  EXPECT_TRUE(uow.LookupTxn(2).has_value());
  EXPECT_EQ(uow.LookupTxn(2)->csn, 20u);
  EXPECT_FALSE(uow.LookupTxn(99).has_value());
}

}  // namespace
}  // namespace rollview
