// The net-effect operator phi (Definition 4.1) and its algebraic laws.

#include "ra/net_effect.h"

#include <gtest/gtest.h>

namespace rollview {
namespace {

DeltaRow Row(int64_t k, int64_t count, Csn ts = kNullCsn) {
  return DeltaRow(Tuple{Value(k)}, count, ts);
}

TEST(NetEffectTest, GroupsSumsAndDropsZeros) {
  DeltaRows in{Row(1, +1, 5), Row(1, +2, 7), Row(2, +1, 3), Row(2, -1, 9),
               Row(3, -4, 1)};
  DeltaRows out = NetEffect(in);
  ASSERT_EQ(out.size(), 2u);  // key 2 nets to zero
  EXPECT_EQ(out[0].tuple[0].AsInt64(), 1);
  EXPECT_EQ(out[0].count, 3);
  EXPECT_EQ(out[0].ts, kNullCsn);  // timestamps nulled
  EXPECT_EQ(out[1].tuple[0].AsInt64(), 3);
  EXPECT_EQ(out[1].count, -4);
}

TEST(NetEffectTest, Idempotent) {
  DeltaRows in{Row(1, +1), Row(1, +1), Row(2, -1)};
  EXPECT_TRUE(NetEquivalent(NetEffect(in), NetEffect(NetEffect(in))));
}

TEST(NetEffectTest, DistributesOverUnion) {
  // phi(R + S) == phi(phi(R) + phi(S)).
  DeltaRows r{Row(1, +2), Row(2, -1)};
  DeltaRows s{Row(1, -2), Row(3, +5)};
  DeltaRows lhs = NetEffect(Union(DeltaRows(r), s));
  DeltaRows rhs = NetEffect(Union(NetEffect(r), NetEffect(s)));
  EXPECT_TRUE(NetEquivalent(lhs, rhs));
}

TEST(NetEffectTest, NegationCancels) {
  DeltaRows r{Row(1, +2, 4), Row(2, -1, 6)};
  DeltaRows sum = Union(DeltaRows(r), Negate(DeltaRows(r)));
  EXPECT_TRUE(NetEffect(sum).empty());
}

TEST(NetEffectTest, EquivalentRepresentationsCompareEqual) {
  // "+1" vs "+2 then -1" (the paper's example of equivalent deltas).
  DeltaRows a{Row(1, +1)};
  DeltaRows b{Row(1, +2), Row(1, -1)};
  EXPECT_TRUE(NetEquivalent(a, b));
  DeltaRows c{Row(1, +2)};
  EXPECT_FALSE(NetEquivalent(a, c));
  EXPECT_FALSE(NetEquivalent(a, DeltaRows{}));
  EXPECT_TRUE(NetEquivalent(DeltaRows{Row(1, 0)}, DeltaRows{}));
}

TEST(NetEffectTest, ApplyDeltaRollsState) {
  DeltaRows state{Row(1, +1), Row(2, +3)};
  DeltaRows delta{Row(1, -1), Row(2, -1), Row(3, +2)};
  DeltaRows next = ApplyDelta(state, delta);
  CountMap m = ToCountMap(next);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m[Tuple{Value(int64_t{2})}], 2);
  EXPECT_EQ(m[Tuple{Value(int64_t{3})}], 2);
}

TEST(NetEffectTest, FromTuplesLiftsMultisets) {
  std::vector<Tuple> ts{Tuple{Value(int64_t{1})}, Tuple{Value(int64_t{1})},
                        Tuple{Value(int64_t{2})}};
  DeltaRows rows = FromTuples(ts);
  CountMap m = ToCountMap(rows);
  EXPECT_EQ(m[Tuple{Value(int64_t{1})}], 2);
  EXPECT_EQ(m[Tuple{Value(int64_t{2})}], 1);
}

TEST(NetEffectTest, DeterministicOrdering) {
  DeltaRows in{Row(3, 1), Row(1, 1), Row(2, 1)};
  DeltaRows out = NetEffect(in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].tuple[0].AsInt64(), 1);
  EXPECT_EQ(out[1].tuple[0].AsInt64(), 2);
  EXPECT_EQ(out[2].tuple[0].AsInt64(), 3);
}

}  // namespace
}  // namespace rollview
