// Concurrent BuildCache use: racing builders, LRU churn, invalidation, and
// cached executor queries racing garbage collection. Runs under the
// `concurrency` ctest label (TSAN preset).

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ra/build_cache.h"
#include "ra/executor.h"
#include "ra/net_effect.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

TEST(BuildCacheConcurrentTest, RacingBuildersConvergeToOneEntryPerKey) {
  BuildCache cache(1 << 20);
  constexpr int kThreads = 8;
  constexpr int kKeys = 4;
  constexpr int kIters = 200;
  std::atomic<uint64_t> sum{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &sum, t] {
      for (int i = 0; i < kIters; ++i) {
        uint64_t k = static_cast<uint64_t>((t + i) % kKeys) + 1;
        BuildCache::Key key{TableId{1}, Csn{k}, {}, ""};
        auto lookup = cache.GetOrBuild(key, [k](BuildCache::Entry* e) {
          e->tuples.push_back(Tuple{Value(static_cast<int64_t>(k))});
          return Status::OK();
        });
        ASSERT_TRUE(lookup.ok());
        ASSERT_EQ(lookup.value().entry->tuples.size(), 1u);
        // Losers of a build race must still observe the winner's (identical)
        // contents; any torn entry shows up here or under TSAN.
        sum += lookup.value().entry->tuples[0][0].AsInt64();
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(cache.entry_count(), static_cast<size_t>(kKeys));
  BuildCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_GE(stats.builds, static_cast<uint64_t>(kKeys));
}

TEST(BuildCacheConcurrentTest, ReadersSurviveEvictionAndInvalidationChurn) {
  // Tiny budget forces constant eviction while an invalidator sweeps; held
  // entries must stay readable throughout (immutability contract).
  BuildCache cache(256);
  std::atomic<bool> stop{false};

  std::thread invalidator([&] {
    uint64_t horizon = 0;
    while (!stop.load()) {
      cache.InvalidateBelow(Csn{++horizon % 64});
      if (horizon % 16 == 0) cache.Clear();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        uint64_t k = static_cast<uint64_t>((t * 7 + i) % 64) + 1;
        BuildCache::Key key{TableId{2}, Csn{k}, {0}, "p"};
        auto lookup = cache.GetOrBuild(key, [k](BuildCache::Entry* e) {
          for (int64_t v = 0; v < 8; ++v) {
            e->tuples.push_back(Tuple{Value(v), Value(static_cast<int64_t>(k))});
          }
          JoinKey jk;
          jk.values.push_back(Value(int64_t{0}));
          e->index[jk] = {0};
          return Status::OK();
        });
        ASSERT_TRUE(lookup.ok());
        const BuildCache::Entry& e = *lookup.value().entry;
        ASSERT_EQ(e.tuples.size(), 8u);
        for (const Tuple& tup : e.tuples) {
          ASSERT_EQ(tup[1].AsInt64(), static_cast<int64_t>(k));
        }
      }
    });
  }
  for (std::thread& th : readers) th.join();
  stop.store(true);
  invalidator.join();
}

TEST(BuildCacheConcurrentTest, GcNeverResurrectsCollectedSnapshots) {
  // Regression for the GC admission race: GetOrBuild builds outside the
  // cache lock, so an InvalidateBelow (Db::GarbageCollect) can run between
  // the build and its insert. Pre-fix, the late insert admitted an entry
  // keyed at a collected snapshot, which later lookups would trust even
  // though the version store can no longer rebuild it. The fix raises an
  // admission floor under the lock; this hammers builds across a moving
  // floor and then proves nothing below it stayed resident.
  BuildCache cache(1 << 20);
  std::atomic<uint64_t> floor{1};
  std::atomic<bool> stop{false};

  std::thread gc([&] {
    for (uint64_t h = 2; h <= 4096 && !stop.load(std::memory_order_relaxed);
         ++h) {
      cache.InvalidateBelow(Csn{h});
      floor.store(h, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> builders;
  for (int t = 0; t < 4; ++t) {
    builders.emplace_back([&cache, &floor, t] {
      for (int i = 0; i < 400; ++i) {
        // Aim at the moving floor -- keys at and just above it -- so builds
        // routinely overlap the InvalidateBelow that collects them.
        uint64_t csn =
            floor.load(std::memory_order_relaxed) +
            static_cast<uint64_t>((t + i) % 3);
        BuildCache::Key key{TableId{3}, Csn{csn}, {}, ""};
        auto lookup = cache.GetOrBuild(key, [csn](BuildCache::Entry* e) {
          // Dawdle so the floor can pass this snapshot mid-build.
          std::this_thread::yield();
          e->tuples.push_back(Tuple{Value(static_cast<int64_t>(csn))});
          return Status::OK();
        });
        ASSERT_TRUE(lookup.ok());
        // A below-floor build is still served to its own caller (it read
        // the version store before the horizon moved); it just must never
        // be admitted for later lookups.
        ASSERT_EQ(lookup.value().entry->tuples[0][0].AsInt64(),
                  static_cast<int64_t>(csn));
      }
    });
  }
  for (std::thread& th : builders) th.join();
  stop.store(true);
  gc.join();

  uint64_t final_floor = floor.load();
  for (uint64_t csn = 1; csn < final_floor; ++csn) {
    BuildCache::Key key{TableId{3}, Csn{csn}, {}, ""};
    EXPECT_EQ(cache.Peek(key), nullptr)
        << "entry below the GC floor stayed resident at csn " << csn;
  }
}

TEST(BuildCacheConcurrentTest, CachedQueriesRaceGarbageCollection) {
  Db db;
  auto created = db.CreateTable("R", Schema({Column{"a", ValueType::kInt64},
                                             Column{"rv", ValueType::kInt64}}));
  ASSERT_TRUE(created.ok());
  TableId r = created.value();
  created = db.CreateTable("S", Schema({Column{"a", ValueType::kInt64},
                                        Column{"sv", ValueType::kInt64}}));
  ASSERT_TRUE(created.ok());
  TableId s = created.value();
  {
    auto txn = db.Begin();
    for (int64_t i = 0; i < 16; ++i) {
      ASSERT_OK(db.Insert(txn.get(), r, {Value(i % 4), Value(i)}));
      ASSERT_OK(db.Insert(txn.get(), s, {Value(i % 4), Value(100 + i)}));
    }
    ASSERT_OK(db.Commit(txn.get()));
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int64_t v = 1000;
    while (!stop.load()) {
      auto txn = db.Begin();
      Status st = db.Insert(txn.get(), r, {Value(v % 4), Value(v)});
      if (st.ok()) {
        db.Commit(txn.get()).ok();
      } else {
        db.Abort(txn.get()).ok();
      }
      ++v;
      db.GarbageCollect(db.stable_csn());
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&db, r, s] {
      JoinExecutor cached(&db);
      JoinExecutor uncached(&db, nullptr);
      for (int i = 0; i < 100; ++i) {
        // Pin before choosing the snapshot so GC cannot collect under us
        // (the standard snapshot-reader contract; cache builds inherit it).
        Db::SnapshotHandle pin = db.PinSnapshot();
        Csn t_snap = pin.csn();
        JoinQuery q;
        q.terms = {TermSource::BaseSnapshot(r, t_snap),
                   TermSource::BaseSnapshot(s, t_snap)};
        q.equi_joins = {EquiJoin{0, 0, 1, 0}};
        auto a = cached.Execute(q, nullptr);
        auto b = uncached.Execute(q, nullptr);
        ASSERT_TRUE(a.ok()) << a.status().ToString();
        ASSERT_TRUE(b.ok()) << b.status().ToString();
        // Cache-served and raw snapshot reads agree at every racing CSN.
        ASSERT_EQ(NetEffect(a.value()), NetEffect(b.value())) << "t=" << t_snap;
      }
    });
  }
  for (std::thread& th : readers) th.join();
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace rollview
