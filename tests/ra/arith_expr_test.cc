#include <gtest/gtest.h>

#include "ivm/rolling.h"
#include "ra/expr.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

using A = Expr::ArithOp;
using C = Expr::CmpOp;

Tuple Row(int64_t a, int64_t b, double d) {
  return Tuple{Value(a), Value(b), Value(d)};
}

TEST(ArithExprTest, IntegerArithmetic) {
  Tuple t = Row(10, 3, 0.0);
  auto eval = [&](A op) {
    return Expr::Arith(op, Expr::Column(0), Expr::Column(1))->Eval(t);
  };
  EXPECT_EQ(eval(A::kAdd), Value(int64_t{13}));
  EXPECT_EQ(eval(A::kSub), Value(int64_t{7}));
  EXPECT_EQ(eval(A::kMul), Value(int64_t{30}));
  EXPECT_EQ(eval(A::kDiv), Value(int64_t{3}));
  EXPECT_EQ(eval(A::kMod), Value(int64_t{1}));
  // Integral ops stay integral.
  EXPECT_EQ(eval(A::kDiv).type(), ValueType::kInt64);
}

TEST(ArithExprTest, DoublePromotion) {
  Tuple t = Row(10, 0, 2.5);
  auto e = Expr::Arith(A::kMul, Expr::Column(0), Expr::Column(2));
  EXPECT_EQ(e->Eval(t), Value(25.0));
  EXPECT_EQ(e->Eval(t).type(), ValueType::kDouble);
  // Modulo on doubles is NULL.
  EXPECT_TRUE(Expr::Arith(A::kMod, Expr::Column(2), Expr::Column(0))
                  ->Eval(t)
                  .is_null());
}

TEST(ArithExprTest, NullAndErrorPropagation) {
  Tuple t{Value(int64_t{4}), Value::Null(), Value("str")};
  EXPECT_TRUE(Expr::Arith(A::kAdd, Expr::Column(0), Expr::Column(1))
                  ->Eval(t)
                  .is_null());
  EXPECT_TRUE(Expr::Arith(A::kAdd, Expr::Column(0), Expr::Column(2))
                  ->Eval(t)
                  .is_null());
  // Division by zero -> NULL (and a NULL comparand makes predicates false).
  auto div0 = Expr::Arith(A::kDiv, Expr::Column(0),
                          Expr::Literal(Value(int64_t{0})));
  EXPECT_TRUE(div0->Eval(t).is_null());
  auto pred = Expr::Compare(C::kGt, div0, Expr::Literal(Value(int64_t{0})));
  EXPECT_FALSE(pred->EvalBool(t));
}

TEST(ArithExprTest, ComposesWithComparisonsAndShift) {
  // (c0 + c1) % 2 == 0
  auto expr = Expr::Compare(
      C::kEq,
      Expr::Arith(A::kMod,
                  Expr::Arith(A::kAdd, Expr::Column(4), Expr::Column(5)),
                  Expr::Literal(Value(int64_t{2}))),
      Expr::Literal(Value(int64_t{0})));
  auto shifted = expr->ShiftColumns(4);
  EXPECT_TRUE(shifted->EvalBool(Tuple{Value(int64_t{3}), Value(int64_t{5})}));
  EXPECT_FALSE(shifted->EvalBool(Tuple{Value(int64_t{3}), Value(int64_t{4})}));
  EXPECT_EQ(expr->MaxColumnIndex(), 5u);
  EXPECT_EQ(expr->MinColumnIndex(), 4u);
  EXPECT_EQ(shifted->ToString(), "((($0 + $1) % 2) = 0)");
}

TEST(ArithExprTest, WorksAsViewSelectionEndToEnd) {
  // A view whose selection uses arithmetic across terms:
  //   sigma(R.rval % 2 = S.sval % 2) -- parity match.
  TestEnv env;
  auto created = TwoTableWorkload::Create(env.db(), 30, 20, 4, 66);
  ASSERT_TRUE(created.ok());
  TwoTableWorkload workload = created.value();
  env.CatchUpCapture();

  SpjViewDef def = workload.ViewDef();
  auto parity = [](size_t col) {
    return Expr::Arith(A::kMod, Expr::Column(col),
                       Expr::Literal(Value(int64_t{2})));
  };
  def.selection = Expr::Compare(C::kEq, parity(2), parity(5));
  ASSERT_OK_AND_ASSIGN(View* view, env.views()->CreateView("V", def));
  ASSERT_OK(env.views()->Materialize(view));
  Csn t0 = view->propagate_from.load();

  UpdateStream stream(env.db(), workload.RStream(1, 9), 9);
  ASSERT_OK(stream.RunTransactions(10));
  env.CatchUpCapture();
  Csn target = env.capture()->high_water_mark();

  RollingPropagator prop(env.views(), view, /*uniform_interval=*/5);
  ASSERT_OK(prop.RunUntil(target));
  EXPECT_TRUE(CheckTimedDeltaSweep(env.db(), view, t0, target, 4));
}

}  // namespace
}  // namespace rollview
