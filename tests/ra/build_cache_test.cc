// BuildCache: hit/miss accounting, key aliasing, LRU eviction, GC
// invalidation, and the executor's zero-copy cached-build path.

#include "ra/build_cache.h"

#include <gtest/gtest.h>

#include "ra/executor.h"
#include "ra/net_effect.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

Tuple T(int64_t a, int64_t b) { return Tuple{Value(a), Value(b)}; }

BuildCache::Builder OneTupleBuilder(int64_t tag) {
  return [tag](BuildCache::Entry* e) {
    e->tuples.push_back(T(tag, tag * 10));
    return Status::OK();
  };
}

TEST(BuildCacheTest, MissBuildsThenHits) {
  BuildCache cache(1 << 20);
  BuildCache::Key key{TableId{1}, Csn{7}, {}, ""};

  ASSERT_OK_AND_ASSIGN(BuildCache::Lookup first,
                       cache.GetOrBuild(key, OneTupleBuilder(1)));
  EXPECT_FALSE(first.hit);
  ASSERT_NE(first.entry, nullptr);
  ASSERT_EQ(first.entry->tuples.size(), 1u);
  EXPECT_GT(first.entry->bytes, 0u);

  // The second lookup must return the same entry and must not rebuild.
  ASSERT_OK_AND_ASSIGN(BuildCache::Lookup second,
                       cache.GetOrBuild(key, OneTupleBuilder(2)));
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(second.entry.get(), first.entry.get());
  EXPECT_EQ(second.entry->tuples[0][0], Value(int64_t{1}));

  BuildCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.builds, 1u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(BuildCacheTest, DistinctPredicateFingerprintsDoNotAlias) {
  BuildCache cache(1 << 20);
  BuildCache::Key base{TableId{1}, Csn{7}, {0}, "(c0 >= 10)"};
  BuildCache::Key other = base;
  other.pred_fingerprint = "(c0 >= 11)";

  ASSERT_OK_AND_ASSIGN(BuildCache::Lookup a,
                       cache.GetOrBuild(base, OneTupleBuilder(10)));
  ASSERT_OK_AND_ASSIGN(BuildCache::Lookup b,
                       cache.GetOrBuild(other, OneTupleBuilder(11)));
  EXPECT_FALSE(b.hit);
  EXPECT_NE(a.entry.get(), b.entry.get());
  EXPECT_EQ(a.entry->tuples[0][0], Value(int64_t{10}));
  EXPECT_EQ(b.entry->tuples[0][0], Value(int64_t{11}));
  EXPECT_EQ(cache.entry_count(), 2u);

  // Same for differing join-column sets and snapshots.
  BuildCache::Key cols = base;
  cols.join_cols = {1};
  ASSERT_OK_AND_ASSIGN(BuildCache::Lookup c,
                       cache.GetOrBuild(cols, OneTupleBuilder(12)));
  EXPECT_FALSE(c.hit);
  BuildCache::Key csn = base;
  csn.snapshot_csn = Csn{8};
  ASSERT_OK_AND_ASSIGN(BuildCache::Lookup d,
                       cache.GetOrBuild(csn, OneTupleBuilder(13)));
  EXPECT_FALSE(d.hit);
  EXPECT_EQ(cache.entry_count(), 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(BuildCacheTest, LruEvictionRespectsByteBudgetAndRecency) {
  // Budget fits roughly two one-tuple entries; entry bytes are approximate,
  // so size the budget from a probe entry.
  BuildCache probe(1 << 20);
  ASSERT_OK_AND_ASSIGN(
      BuildCache::Lookup sized,
      probe.GetOrBuild(BuildCache::Key{TableId{9}, Csn{1}, {}, ""},
                       OneTupleBuilder(0)));
  size_t one = probe.resident_bytes();
  ASSERT_GT(one, 0u);
  (void)sized;

  BuildCache cache(2 * one + one / 2);
  auto key = [](uint64_t csn) {
    return BuildCache::Key{TableId{1}, Csn{csn}, {}, ""};
  };
  ASSERT_OK(cache.GetOrBuild(key(1), OneTupleBuilder(1)).status());
  ASSERT_OK(cache.GetOrBuild(key(2), OneTupleBuilder(2)).status());
  EXPECT_EQ(cache.entry_count(), 2u);

  // Touch key(1) so key(2) is the LRU victim when key(3) arrives.
  ASSERT_OK_AND_ASSIGN(BuildCache::Lookup touch,
                       cache.GetOrBuild(key(1), OneTupleBuilder(1)));
  EXPECT_TRUE(touch.hit);
  ASSERT_OK(cache.GetOrBuild(key(3), OneTupleBuilder(3)).status());

  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_NE(cache.Peek(key(1)), nullptr);
  EXPECT_EQ(cache.Peek(key(2)), nullptr);
  EXPECT_NE(cache.Peek(key(3)), nullptr);
  EXPECT_LE(cache.resident_bytes(), cache.byte_budget());
}

TEST(BuildCacheTest, EvictionDoesNotInvalidateBorrowedEntries) {
  BuildCache cache(1);  // everything over budget: next insert evicts
  BuildCache::Key key{TableId{1}, Csn{1}, {}, ""};
  ASSERT_OK_AND_ASSIGN(BuildCache::Lookup held,
                       cache.GetOrBuild(key, OneTupleBuilder(42)));
  const Tuple* borrowed = &held.entry->tuples[0];

  BuildCache::Key other{TableId{1}, Csn{2}, {}, ""};
  ASSERT_OK(cache.GetOrBuild(other, OneTupleBuilder(43)).status());
  EXPECT_EQ(cache.Peek(key), nullptr);  // evicted...
  // ...but the held shared_ptr keeps the tuples alive and unchanged.
  EXPECT_EQ((*borrowed)[0], Value(int64_t{42}));
}

TEST(BuildCacheTest, InvalidateBelowDropsOnlyOlderSnapshots) {
  BuildCache cache(1 << 20);
  auto key = [](uint64_t csn) {
    return BuildCache::Key{TableId{1}, Csn{csn}, {}, ""};
  };
  for (uint64_t c : {5u, 10u, 15u}) {
    ASSERT_OK(cache.GetOrBuild(key(c), OneTupleBuilder(c)).status());
  }
  cache.InvalidateBelow(Csn{10});
  EXPECT_EQ(cache.Peek(key(5)), nullptr);
  EXPECT_NE(cache.Peek(key(10)), nullptr);  // horizon itself survives
  EXPECT_NE(cache.Peek(key(15)), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.entry_count(), 2u);

  cache.InvalidateTable(TableId{1});
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Engine integration.

class BuildCacheDbTest : public ::testing::Test {
 protected:
  // Tables deliberately have no hash index, so snapshot-keyed terms go
  // through the cached-join path rather than per-row index probes.
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        r_, db_.CreateTable("R", Schema({Column{"a", ValueType::kInt64},
                                         Column{"rv", ValueType::kInt64}})));
    ASSERT_OK_AND_ASSIGN(
        s_, db_.CreateTable("S", Schema({Column{"a", ValueType::kInt64},
                                         Column{"sv", ValueType::kInt64}})));
    auto txn = db_.Begin();
    for (int64_t i = 0; i < 8; ++i) {
      ASSERT_OK(db_.Insert(txn.get(), r_, T(i % 4, i)));
      ASSERT_OK(db_.Insert(txn.get(), s_, T(i % 4, 100 + i)));
    }
    ASSERT_OK(db_.Commit(txn.get()));
    load_csn_ = txn->commit_csn();
  }

  JoinQuery SnapshotJoin(Csn t) const {
    JoinQuery q;
    q.terms = {TermSource::BaseSnapshot(r_, t), TermSource::BaseSnapshot(s_, t)};
    q.equi_joins = {EquiJoin{0, 0, 1, 0}};
    return q;
  }

  Db db_;
  TableId r_ = kInvalidTableId;
  TableId s_ = kInvalidTableId;
  Csn load_csn_ = kNullCsn;
};

TEST_F(BuildCacheDbTest, CachedSnapshotQueryBorrowsEverythingCopiesNothing) {
  ASSERT_NE(db_.build_cache(), nullptr);
  JoinExecutor cached(&db_);
  ExecStats stats;
  ASSERT_OK_AND_ASSIGN(DeltaRows first,
                       cached.Execute(SnapshotJoin(load_csn_), nullptr, &stats));
  EXPECT_EQ(first.size(), 16u);  // 4 keys x 2 x 2
  // Acceptance: zero tuple deep-copies on the snapshot-scan path when every
  // base term is served by a cached build.
  EXPECT_EQ(stats.rows_copied, 0u);
  EXPECT_EQ(stats.bytes_copied, 0u);
  EXPECT_GT(stats.rows_borrowed, 0u);
  EXPECT_GT(stats.build_cache_misses, 0u);
  EXPECT_EQ(stats.build_cache_hits, 0u);

  // Same query again: every build is served from the cache.
  ExecStats again;
  ASSERT_OK_AND_ASSIGN(DeltaRows second,
                       cached.Execute(SnapshotJoin(load_csn_), nullptr, &again));
  EXPECT_EQ(again.build_cache_misses, 0u);
  EXPECT_GT(again.build_cache_hits, 0u);
  EXPECT_EQ(again.rows_copied, 0u);

  // Cached and uncached execution are observationally identical.
  JoinExecutor uncached(&db_, nullptr);
  ExecStats raw;
  ASSERT_OK_AND_ASSIGN(DeltaRows plain,
                       uncached.Execute(SnapshotJoin(load_csn_), nullptr, &raw));
  EXPECT_EQ(raw.build_cache_hits + raw.build_cache_misses, 0u);
  EXPECT_GT(raw.rows_copied, 0u);  // the old copy-everything path
  EXPECT_EQ(NetEffect(first), NetEffect(plain));
  EXPECT_EQ(NetEffect(second), NetEffect(plain));
}

TEST_F(BuildCacheDbTest, PushedPredicatesKeySeparateEntries) {
  JoinExecutor exec(&db_);
  // Single-term predicate on S's payload column (global column 3) is pushed
  // down into S's build; a different constant must not reuse the entry.
  for (int64_t cut : {104, 106}) {
    JoinQuery q = SnapshotJoin(load_csn_);
    q.residual = Expr::Compare(Expr::CmpOp::kGe, Expr::Column(3),
                               Expr::Literal(Value(cut)));
    ExecStats stats;
    ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, nullptr, &stats));
    JoinExecutor uncached(&db_, nullptr);
    ASSERT_OK_AND_ASSIGN(DeltaRows plain, uncached.Execute(q, nullptr));
    EXPECT_EQ(NetEffect(rows), NetEffect(plain)) << "cut=" << cut;
    for (const DeltaRow& row : rows) {
      EXPECT_GE(row.tuple[3], Value(cut));
    }
  }
  // The S builds were distinct keys (no cross-predicate aliasing): three
  // entries total (predicate-free R scan + one S build per cut), and the
  // only hit is the second query reusing the R scan.
  EXPECT_EQ(db_.build_cache()->entry_count(), 3u);
  EXPECT_EQ(db_.build_cache()->stats().hits, 1u);
  EXPECT_EQ(db_.build_cache()->stats().misses, 3u);
}

TEST_F(BuildCacheDbTest, CurrentTermsWithHintServeFromCacheUnderSLock) {
  JoinQuery q;
  q.terms = {TermSource::BaseCurrent(r_), TermSource::BaseCurrent(s_)};
  q.equi_joins = {EquiJoin{0, 0, 1, 0}};
  q.current_snapshot_hint = db_.stable_csn();

  JoinExecutor exec(&db_);
  ExecStats stats;
  for (int round = 0; round < 2; ++round) {
    auto txn = db_.Begin();
    ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, txn.get(), &stats));
    ASSERT_OK(db_.Commit(txn.get()));
    EXPECT_EQ(rows.size(), 16u);
  }
  // Both rounds used snapshot-keyed builds; the second round hit for both
  // terms even though no snapshot CSN was spelled out in the query.
  EXPECT_GT(stats.build_cache_misses, 0u);
  EXPECT_GE(stats.build_cache_hits, 2u);
  EXPECT_EQ(stats.rows_copied, 0u);
}

TEST_F(BuildCacheDbTest, HintIsIgnoredWhenTxnHasPendingWritesOnTheTable) {
  auto txn = db_.Begin();
  ASSERT_OK(db_.Insert(txn.get(), r_, T(0, 999)));  // uncommitted write on R

  JoinQuery q;
  q.terms = {TermSource::BaseCurrent(r_), TermSource::BaseCurrent(s_)};
  q.equi_joins = {EquiJoin{0, 0, 1, 0}};
  q.current_snapshot_hint = db_.stable_csn();
  JoinExecutor exec(&db_);
  ExecStats stats;
  ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, txn.get(), &stats));
  ASSERT_OK(db_.Abort(txn.get()));

  // The R term must read the transaction's own uncommitted row (current
  // semantics), not a cached snapshot: the 2 S rows with key 0 join it.
  EXPECT_EQ(rows.size(), 16u + 2u);
}

TEST_F(BuildCacheDbTest, GarbageCollectInvalidatesStaleSnapshots) {
  JoinExecutor exec(&db_);
  ASSERT_OK(exec.Execute(SnapshotJoin(load_csn_), nullptr).status());
  ASSERT_GT(db_.build_cache()->entry_count(), 0u);

  // Advance history past load_csn_, then GC above it: entries keyed at
  // load_csn_ describe snapshots the version store can no longer rebuild,
  // so they must be dropped.
  auto txn = db_.Begin();
  ASSERT_OK(db_.Insert(txn.get(), r_, T(0, 1000)));
  ASSERT_OK(db_.Commit(txn.get()));
  db_.GarbageCollect(db_.stable_csn());

  EXPECT_EQ(db_.build_cache()->entry_count(), 0u);
  EXPECT_GE(db_.build_cache()->stats().invalidations, 1u);

  // Post-GC queries at the new snapshot rebuild and still agree with the
  // uncached executor.
  Csn now = db_.stable_csn();
  ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(SnapshotJoin(now), nullptr));
  JoinExecutor uncached(&db_, nullptr);
  ASSERT_OK_AND_ASSIGN(DeltaRows plain,
                       uncached.Execute(SnapshotJoin(now), nullptr));
  EXPECT_EQ(NetEffect(rows), NetEffect(plain));
}

TEST_F(BuildCacheDbTest, LargeDeltaUpgradesIndexedProbeToCachedBuild) {
  // An indexed table is normally probed per delta row; once the driving set
  // reaches kCachedBuildThreshold the executor builds (and caches) a hash
  // table instead, and later small queries reuse it via Peek.
  TableOptions opts;
  opts.indexed_columns = {0};
  ASSERT_OK_AND_ASSIGN(
      TableId big,
      db_.CreateTable("Big", Schema({Column{"a", ValueType::kInt64},
                                     Column{"bv", ValueType::kInt64}}),
                      opts));
  auto txn = db_.Begin();
  for (int64_t i = 0; i < 32; ++i) {
    ASSERT_OK(db_.Insert(txn.get(), big, T(i, i)));
  }
  ASSERT_OK(db_.Commit(txn.get()));
  Csn t = txn->commit_csn();

  DeltaRows delta;
  const int64_t drive =
      2 * static_cast<int64_t>(JoinExecutor::kCachedBuildThreshold);
  for (int64_t i = 0; i < drive; ++i) {
    delta.push_back(DeltaRow(T(i % 32, i), 1, Csn{5}));
  }
  JoinQuery q;
  q.terms = {TermSource::Rows(big, &delta), TermSource::BaseSnapshot(big, t)};
  q.equi_joins = {EquiJoin{0, 0, 1, 0}};

  JoinExecutor exec(&db_);
  ExecStats stats;
  ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, nullptr, &stats));
  EXPECT_EQ(rows.size(), delta.size());
  EXPECT_EQ(stats.index_probes, 0u);  // upgraded away from per-row probes
  EXPECT_EQ(stats.build_cache_misses, 1u);
  EXPECT_EQ(stats.rows_copied, 0u);

  // A 1-row follow-up reuses the resident build instead of probing.
  DeltaRows one{DeltaRow(T(3, 0), 1, Csn{6})};
  JoinQuery q2 = q;
  q2.terms[0] = TermSource::Rows(big, &one);
  ExecStats small;
  ASSERT_OK_AND_ASSIGN(DeltaRows rows2, exec.Execute(q2, nullptr, &small));
  EXPECT_EQ(rows2.size(), 1u);
  EXPECT_EQ(small.build_cache_hits, 1u);
  EXPECT_EQ(small.index_probes, 0u);
}

}  // namespace
}  // namespace rollview
