// Copyright 2026 The rollview Authors.
//
// Compiled delta programs (ra/delta_program.h): golden plan dumps for the
// lowering (byte-stable across runs -- the plan-drift tripwire), half-join
// de-duplication on self-join shapes, compiled-vs-interpreted equivalence
// under Definition 4.2, BuildCache bypass on the half-join maintenance
// path, graceful per-term fallback for unflattenable residuals, and the
// incremental-advance / reset-rebuild lifecycle.

#include "ra/delta_program.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "ivm/propagate.h"
#include "ra/expr.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

// --- Golden dumps -------------------------------------------------------
//
// The dump depends only on the definition (table names, expression text),
// so two independently constructed engines with the same creation order
// must produce byte-identical text, and that text must match the goldens
// below exactly. A diff here means the lowering changed -- update the
// golden deliberately, never incidentally.

std::string CompileTwoTableDump(uint64_t seed) {
  TestEnv env;
  Result<TwoTableWorkload> w =
      TwoTableWorkload::Create(env.db(), 10, 10, 4, seed);
  EXPECT_TRUE(w.ok()) << w.status().ToString();
  SpjViewDef def = w.value().ViewDef();
  auto programs =
      ViewPrograms::Compile(env.db(), def.tables, def.joins, def.selection,
                            def.projection, "V");
  return programs->Dump();
}

TEST(DeltaProgramGoldenTest, TwoTableDumpIsByteStable) {
  const std::string kGolden =
      "== compiled delta programs: V ==\n"
      "half_join[0]: members=[S] joins=[] key=[c1] residual=(none)\n"
      "half_join[1]: members=[R] joins=[] key=[c1] residual=(none)\n"
      "program[0]: delta=R\n"
      "  status: compiled\n"
      "  delta_pred: (none)\n"
      "  delta_checks: (none)\n"
      "  probe: g0 <- half_join[0] on d(c1)\n"
      "  cross_checks: (none)\n"
      "  project: d.c0 d.c1 d.c2 g0.c0 g0.c1 g0.c2\n"
      "program[1]: delta=S\n"
      "  status: compiled\n"
      "  delta_pred: (none)\n"
      "  delta_checks: (none)\n"
      "  probe: g0 <- half_join[1] on d(c1)\n"
      "  cross_checks: (none)\n"
      "  project: g0.c0 g0.c1 g0.c2 d.c0 d.c1 d.c2\n";
  std::string first = CompileTwoTableDump(1);
  EXPECT_EQ(first, kGolden);
  // Independent engine, different data, same definition: identical bytes.
  EXPECT_EQ(CompileTwoTableDump(2), first);
}

TEST(DeltaProgramGoldenTest, StarSchemaDump) {
  TestEnv env;
  StarSchemaConfig config;
  config.num_dims = 2;
  config.dim_rows = 10;
  config.fact_rows = 20;
  ASSERT_OK_AND_ASSIGN(StarSchemaWorkload w,
                       StarSchemaWorkload::Create(env.db(), config, 7));
  SpjViewDef def = w.ViewDef();
  auto programs =
      ViewPrograms::Compile(env.db(), def.tables, def.joins, def.selection,
                            def.projection, "VSTAR");
  // fact(fkey,d0,d1,amount) |><| dim0(dkey,attr,label)
  //                         |><| dim1(dkey,attr,label):
  //  * delta on fact probes the two (disconnected) dimension groups;
  //  * delta on a dimension probes ONE half-join spanning fact and the
  //    other dimension (connected through the fact table).
  const std::string kGolden =
      "== compiled delta programs: VSTAR ==\n"
      "half_join[0]: members=[dim0] joins=[] key=[c0] residual=(none)\n"
      "half_join[1]: members=[dim1] joins=[] key=[c0] residual=(none)\n"
      "half_join[2]: members=[fact dim1] joins=[m0.c2=m1.c0] key=[c1] "
      "residual=(none)\n"
      "half_join[3]: members=[fact dim0] joins=[m0.c1=m1.c0] key=[c2] "
      "residual=(none)\n"
      "program[0]: delta=fact\n"
      "  status: compiled\n"
      "  delta_pred: (none)\n"
      "  delta_checks: (none)\n"
      "  probe: g0 <- half_join[0] on d(c1)\n"
      "  probe: g1 <- half_join[1] on d(c2)\n"
      "  cross_checks: (none)\n"
      "  project: d.c0 d.c1 d.c2 d.c3 g0.c0 g0.c1 g0.c2 g1.c0 g1.c1 g1.c2\n"
      "program[1]: delta=dim0\n"
      "  status: compiled\n"
      "  delta_pred: (none)\n"
      "  delta_checks: (none)\n"
      "  probe: g0 <- half_join[2] on d(c0)\n"
      "  cross_checks: (none)\n"
      "  project: g0.c0 g0.c1 g0.c2 g0.c3 d.c0 d.c1 d.c2 g0.c4 g0.c5 g0.c6\n"
      "program[2]: delta=dim1\n"
      "  status: compiled\n"
      "  delta_pred: (none)\n"
      "  delta_checks: (none)\n"
      "  probe: g0 <- half_join[3] on d(c0)\n"
      "  cross_checks: (none)\n"
      "  project: g0.c0 g0.c1 g0.c2 g0.c3 g0.c4 g0.c5 g0.c6 d.c0 d.c1 "
      "d.c2\n";
  EXPECT_EQ(programs->Dump(), kGolden);
  EXPECT_EQ(programs->num_compiled(), 3u);
  EXPECT_EQ(programs->num_half_joins(), 4u);
}

TEST(DeltaProgramGoldenTest, SelfJoinSharesOneHalfJoin) {
  TestEnv env;
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload w,
                       TwoTableWorkload::Create(env.db(), 10, 10, 4, 3));
  // R |><|_{jkey} R: the two symmetric programs' half-join specs are
  // structurally identical and must share one materialized view.
  SpjViewDef def;
  def.tables = {w.r, w.r};
  def.joins = {EquiJoin{0, 1, 1, 1}};
  auto programs =
      ViewPrograms::Compile(env.db(), def.tables, def.joins, def.selection,
                            def.projection, "VSELF");
  const std::string kGolden =
      "== compiled delta programs: VSELF ==\n"
      "half_join[0]: members=[R] joins=[] key=[c1] residual=(none)\n"
      "program[0]: delta=R\n"
      "  status: compiled\n"
      "  delta_pred: (none)\n"
      "  delta_checks: (none)\n"
      "  probe: g0 <- half_join[0] on d(c1)\n"
      "  cross_checks: (none)\n"
      "  project: d.c0 d.c1 d.c2 g0.c0 g0.c1 g0.c2\n"
      "program[1]: delta=R\n"
      "  status: compiled\n"
      "  delta_pred: (none)\n"
      "  delta_checks: (none)\n"
      "  probe: g0 <- half_join[0] on d(c1)\n"
      "  cross_checks: (none)\n"
      "  project: g0.c0 g0.c1 g0.c2 d.c0 d.c1 d.c2\n";
  EXPECT_EQ(programs->Dump(), kGolden);
  EXPECT_EQ(programs->num_half_joins(), 1u);
  EXPECT_EQ(programs->num_compiled(), 2u);
}

TEST(DeltaProgramGoldenTest, PushdownAndLocalPredicatesCompile) {
  TestEnv env;
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload w,
                       TwoTableWorkload::Create(env.db(), 10, 10, 4, 5));
  SpjViewDef def = w.ViewDef();
  // sval >= 0: local to S (concat col 5). For delta-on-R it is pushed into
  // the S half-join's residual (remapped to member-concat col 2); for
  // delta-on-S it compiles into the flat delta predicate (local col 2).
  def.selection = Expr::Compare(Expr::CmpOp::kGe, Expr::Column(5),
                                Expr::Literal(Value(int64_t{0})));
  auto programs =
      ViewPrograms::Compile(env.db(), def.tables, def.joins, def.selection,
                            def.projection, "VSEL");
  std::string dump = programs->Dump();
  EXPECT_EQ(programs->num_compiled(), 2u) << dump;
  EXPECT_NE(dump.find("residual=($2 >= 0)"), std::string::npos) << dump;
  EXPECT_NE(dump.find("delta_pred: ($2 >= 0)"), std::string::npos) << dump;
}

TEST(DeltaProgramGoldenTest, UnflattenableResidualStaysInterpreted) {
  TestEnv env;
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload w,
                       TwoTableWorkload::Create(env.db(), 10, 10, 4, 9));
  SpjViewDef def = w.ViewDef();
  // rval + sval < 100 spans both terms through an arithmetic node: not a
  // flat column/column comparison, so neither program compiles.
  def.selection = Expr::Compare(
      Expr::CmpOp::kLt,
      Expr::Arith(Expr::ArithOp::kAdd, Expr::Column(2), Expr::Column(5)),
      Expr::Literal(Value(int64_t{100})));
  auto programs =
      ViewPrograms::Compile(env.db(), def.tables, def.joins, def.selection,
                            def.projection, "VX");
  EXPECT_EQ(programs->num_compiled(), 0u) << programs->Dump();
  EXPECT_FALSE(programs->compiled(0));
  EXPECT_FALSE(programs->compiled(1));
  EXPECT_NE(programs->Dump().find("status: interpreted"), std::string::npos);
}

// --- End-to-end propagation --------------------------------------------

class DeltaProgramPropagationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 40, 30, 6, 19));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
    ASSERT_NE(view_->programs, nullptr)
        << "CreateView must compile delta programs by default";
    t0_ = view_->propagate_from.load();
  }

  void RunUpdates(size_t txns, uint64_t seed, bool touch_s = true) {
    UpdateStream r_stream(env_.db(), workload_.RStream(1, seed), seed);
    UpdateStream s_stream(env_.db(), workload_.SStream(2, seed + 1),
                          seed + 1);
    for (size_t i = 0; i < txns; ++i) {
      ASSERT_OK(r_stream.RunTransaction());
      if (touch_s && i % 2 == 1) ASSERT_OK(s_stream.RunTransaction());
    }
    env_.CatchUpCapture();
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
  Csn t0_ = kNullCsn;
};

TEST_F(DeltaProgramPropagationTest, CompiledMatchesInterpreted) {
  RunUpdates(14, 21);
  Csn ready = env_.capture()->high_water_mark();

  // Compiled path, small strips (many forward queries through the probes).
  Propagator compiled(env_.views(), view_,
                      std::make_unique<FixedInterval>(2));
  ASSERT_OK(compiled.RunUntil(ready));
  EXPECT_GT(compiled.runner()->stats().exec.compiled_queries, 0u);
  EXPECT_GT(compiled.runner()->stats().exec.compiled_probe_rows, 0u);
  DeltaRows compiled_delta = view_->view_delta->Scan(CsnRange{t0_, ready});

  // Interpreted path over the identical history.
  ASSERT_OK_AND_ASSIGN(View* v2,
                       env_.views()->CreateView("V2", workload_.ViewDef()));
  v2->propagate_from.store(t0_);
  v2->delta_hwm.store(t0_);
  PropagatorOptions interp_opts;
  interp_opts.runner.use_compiled_programs = false;
  Propagator interpreted(env_.views(), v2,
                         std::make_unique<FixedInterval>(2), interp_opts);
  ASSERT_OK(interpreted.RunUntil(ready));
  EXPECT_EQ(interpreted.runner()->stats().exec.compiled_queries, 0u);
  DeltaRows interpreted_delta = v2->view_delta->Scan(CsnRange{t0_, ready});

  EXPECT_TRUE(NetEquivalent(compiled_delta, interpreted_delta));
  // Definition 4.2 over the compiled view's whole window.
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, ready,
                                   std::max<Csn>(1, (ready - t0_) / 5)));
}

TEST_F(DeltaProgramPropagationTest, HalfJoinMaintenanceBypassesBuildCache) {
  // Forward-only workload (R changes, S is quiet): every propagation query
  // takes the compiled path, whose half-join rebuilds/advances must NOT
  // touch the BuildCache -- admission and hit-rate metrics stay meaningful.
  RunUpdates(10, 31, /*touch_s=*/false);
  Csn ready = env_.capture()->high_water_mark();
  Propagator prop(env_.views(), view_, std::make_unique<FixedInterval>(2));
  ASSERT_OK(prop.RunUntil(ready));

  const ExecStats& es = prop.runner()->stats().exec;
  EXPECT_GT(es.compiled_queries, 0u);
  EXPECT_GT(es.half_join_hits + es.half_join_misses, 0u);
  EXPECT_EQ(es.build_cache_hits, 0u);
  EXPECT_EQ(es.build_cache_misses, 0u);
  EXPECT_GE(es.half_join_rebuilds, 1u);  // first query built HJ(S)
  EXPECT_TRUE(CheckTimedDeltaWindow(env_.db(), view_, t0_, ready));
}

TEST_F(DeltaProgramPropagationTest, HalfJoinAdvancesIncrementally) {
  RunUpdates(8, 41);
  Propagator prop(env_.views(), view_, std::make_unique<DrainInterval>());
  ASSERT_OK(prop.RunUntil(env_.capture()->high_water_mark()));
  const ExecStats& es = prop.runner()->stats().exec;
  uint64_t rebuilds_after_first = es.half_join_rebuilds;
  EXPECT_GE(rebuilds_after_first, 1u);

  // Both members change; the next round must advance the half-joins
  // incrementally (telescoping expansion), not rebuild them.
  RunUpdates(8, 43);
  Csn ready = env_.capture()->high_water_mark();
  ASSERT_OK(prop.RunUntil(ready));
  EXPECT_GE(es.half_join_advances, 1u);
  EXPECT_EQ(es.half_join_rebuilds, rebuilds_after_first);
  EXPECT_TRUE(CheckTimedDeltaWindow(env_.db(), view_, t0_, ready));

  // Reset drops the derived state (the crash-recovery hook); the next
  // round deterministically rebuilds and stays correct.
  view_->programs->Reset();
  EXPECT_EQ(view_->programs->half_join_rows(), 0u);
  RunUpdates(4, 47);
  ready = env_.capture()->high_water_mark();
  ASSERT_OK(prop.RunUntil(ready));
  EXPECT_GT(es.half_join_rebuilds, rebuilds_after_first);
  EXPECT_TRUE(CheckTimedDeltaWindow(env_.db(), view_, t0_, ready));
}

TEST_F(DeltaProgramPropagationTest, UncompiledViewFallsBackSilently) {
  // A view whose residual cannot be flattened keeps programs (for Dump)
  // but every term is interpreted; propagation with the compiled option ON
  // must transparently use the interpreted executor and stay correct.
  SpjViewDef def = workload_.ViewDef();
  def.selection = Expr::Compare(
      Expr::CmpOp::kLt,
      Expr::Arith(Expr::ArithOp::kAdd, Expr::Column(2), Expr::Column(5)),
      Expr::Literal(Value(int64_t{1'000'000})));
  ASSERT_OK_AND_ASSIGN(View* vx, env_.views()->CreateView("VX", def));
  ASSERT_OK(env_.views()->Materialize(vx));
  ASSERT_NE(vx->programs, nullptr);
  EXPECT_EQ(vx->programs->num_compiled(), 0u);
  Csn tx0 = vx->propagate_from.load();

  RunUpdates(10, 51);
  Csn ready = env_.capture()->high_water_mark();
  Propagator prop(env_.views(), vx, std::make_unique<FixedInterval>(3));
  ASSERT_OK(prop.RunUntil(ready));
  EXPECT_EQ(prop.runner()->stats().exec.compiled_queries, 0u);
  EXPECT_TRUE(CheckTimedDeltaWindow(env_.db(), vx, tx0, ready));
}

TEST_F(DeltaProgramPropagationTest, CompileFlagOffSkipsPrograms) {
  // TestEnv owns its Db with default options; build a flag-off engine
  // directly instead.
  DbOptions options;
  options.compile_delta_programs = false;
  auto db = std::make_unique<Db>(options);
  auto capture = std::make_unique<LogCapture>(db.get(), CaptureOptions{});
  auto views = std::make_unique<ViewManager>(db.get(), capture.get());
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload w,
                       TwoTableWorkload::Create(db.get(), 20, 20, 4, 61));
  capture->CatchUp();
  ASSERT_OK_AND_ASSIGN(View* v, views->CreateView("V", w.ViewDef()));
  ASSERT_OK(views->Materialize(v));
  EXPECT_EQ(v->programs, nullptr);
  Csn v0 = v->propagate_from.load();

  UpdateStream updates(db.get(), w.RStream(1, 62), 62);
  for (int i = 0; i < 6; ++i) ASSERT_OK(updates.RunTransaction());
  capture->CatchUp();
  Csn ready = capture->high_water_mark();
  Propagator prop(views.get(), v, std::make_unique<DrainInterval>());
  ASSERT_OK(prop.RunUntil(ready));
  EXPECT_EQ(prop.runner()->stats().exec.compiled_queries, 0u);
  EXPECT_TRUE(CheckTimedDeltaWindow(db.get(), v, v0, ready));
}

}  // namespace
}  // namespace rollview
