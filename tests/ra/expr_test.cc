#include "ra/expr.h"

#include <gtest/gtest.h>

namespace rollview {
namespace {

using Cmp = Expr::CmpOp;

Tuple Row(int64_t a, int64_t b, const std::string& s) {
  return Tuple{Value(a), Value(b), Value(s)};
}

TEST(ExprTest, ColumnAndLiteral) {
  Tuple t = Row(10, 20, "x");
  EXPECT_EQ(Expr::Column(0)->Eval(t), Value(int64_t{10}));
  EXPECT_EQ(Expr::Column(2)->Eval(t), Value("x"));
  EXPECT_EQ(Expr::Literal(Value(int64_t{5}))->Eval(t), Value(int64_t{5}));
}

TEST(ExprTest, Comparisons) {
  Tuple t = Row(10, 20, "x");
  auto lt = Expr::Compare(Cmp::kLt, Expr::Column(0), Expr::Column(1));
  EXPECT_TRUE(lt->EvalBool(t));
  auto ge = Expr::Compare(Cmp::kGe, Expr::Column(0), Expr::Column(1));
  EXPECT_FALSE(ge->EvalBool(t));
  auto eq = Expr::Compare(Cmp::kEq, Expr::Column(2),
                          Expr::Literal(Value("x")));
  EXPECT_TRUE(eq->EvalBool(t));
  auto ne = Expr::Compare(Cmp::kNe, Expr::Column(0),
                          Expr::Literal(Value(int64_t{10})));
  EXPECT_FALSE(ne->EvalBool(t));
  auto le = Expr::Compare(Cmp::kLe, Expr::Column(0),
                          Expr::Literal(Value(int64_t{10})));
  EXPECT_TRUE(le->EvalBool(t));
  auto gt = Expr::Compare(Cmp::kGt, Expr::Column(1), Expr::Column(0));
  EXPECT_TRUE(gt->EvalBool(t));
}

TEST(ExprTest, BooleanConnectives) {
  Tuple t = Row(10, 20, "x");
  auto yes = Expr::Compare(Cmp::kLt, Expr::Column(0), Expr::Column(1));
  auto no = Expr::Compare(Cmp::kGt, Expr::Column(0), Expr::Column(1));
  EXPECT_TRUE(Expr::And(yes, yes)->EvalBool(t));
  EXPECT_FALSE(Expr::And(yes, no)->EvalBool(t));
  EXPECT_TRUE(Expr::Or(no, yes)->EvalBool(t));
  EXPECT_FALSE(Expr::Or(no, no)->EvalBool(t));
  EXPECT_TRUE(Expr::Not(no)->EvalBool(t));
  EXPECT_FALSE(Expr::Not(yes)->EvalBool(t));
}

TEST(ExprTest, NullComparesFalse) {
  Tuple t{Value::Null(), Value(int64_t{1})};
  auto eq = Expr::Compare(Cmp::kEq, Expr::Column(0), Expr::Column(0));
  EXPECT_FALSE(eq->EvalBool(t));  // NULL = NULL is not true in predicates
  auto lt = Expr::Compare(Cmp::kLt, Expr::Column(0), Expr::Column(1));
  EXPECT_FALSE(lt->EvalBool(t));
}

TEST(ExprTest, MixedNumericComparison) {
  Tuple t{Value(int64_t{3}), Value(3.5)};
  auto lt = Expr::Compare(Cmp::kLt, Expr::Column(0), Expr::Column(1));
  EXPECT_TRUE(lt->EvalBool(t));
}

TEST(ExprTest, MaxColumnIndex) {
  auto e = Expr::And(
      Expr::Compare(Cmp::kEq, Expr::Column(4), Expr::Literal(Value(1.0))),
      Expr::Compare(Cmp::kLt, Expr::Column(2), Expr::Column(7)));
  EXPECT_EQ(e->MaxColumnIndex(), 7u);
  EXPECT_EQ(Expr::Literal(Value(int64_t{1}))->MaxColumnIndex(), SIZE_MAX);
}

TEST(ExprTest, ToStringReadable) {
  auto e = Expr::Compare(Cmp::kLe, Expr::Column(1),
                         Expr::Literal(Value(int64_t{9})));
  EXPECT_EQ(e->ToString(), "($1 <= 9)");
}

}  // namespace
}  // namespace rollview
