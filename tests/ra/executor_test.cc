// The join executor: count products, the min-timestamp rule, index probes
// vs hash joins, selections, projections, signs, snapshots.

#include "ra/executor.h"

#include <gtest/gtest.h>

#include "ra/net_effect.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableOptions opts;
    opts.indexed_columns = {0};
    ASSERT_OK_AND_ASSIGN(
        r_, db_.CreateTable("R",
                            Schema({Column{"a", ValueType::kInt64},
                                    Column{"rv", ValueType::kInt64}}),
                            opts));
    ASSERT_OK_AND_ASSIGN(
        s_, db_.CreateTable("S",
                            Schema({Column{"a", ValueType::kInt64},
                                    Column{"sv", ValueType::kInt64}}),
                            opts));
    auto txn = db_.Begin();
    // R: (1,10) (2,20) (2,21); S: (1,100) (2,200) (3,300)
    ASSERT_OK(db_.Insert(txn.get(), r_, {Value(int64_t{1}), Value(int64_t{10})}));
    ASSERT_OK(db_.Insert(txn.get(), r_, {Value(int64_t{2}), Value(int64_t{20})}));
    ASSERT_OK(db_.Insert(txn.get(), r_, {Value(int64_t{2}), Value(int64_t{21})}));
    ASSERT_OK(db_.Insert(txn.get(), s_, {Value(int64_t{1}), Value(int64_t{100})}));
    ASSERT_OK(db_.Insert(txn.get(), s_, {Value(int64_t{2}), Value(int64_t{200})}));
    ASSERT_OK(db_.Insert(txn.get(), s_, {Value(int64_t{3}), Value(int64_t{300})}));
    ASSERT_OK(db_.Commit(txn.get()));
    load_csn_ = txn->commit_csn();
  }

  Db db_;
  TableId r_ = kInvalidTableId;
  TableId s_ = kInvalidTableId;
  Csn load_csn_ = kNullCsn;
};

TEST_F(ExecutorTest, BasicEquiJoin) {
  JoinQuery q;
  q.terms = {TermSource::BaseCurrent(r_), TermSource::BaseCurrent(s_)};
  q.equi_joins = {EquiJoin{0, 0, 1, 0}};
  auto txn = db_.Begin();
  JoinExecutor exec(&db_);
  ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, txn.get()));
  ASSERT_OK(db_.Commit(txn.get()));
  EXPECT_EQ(rows.size(), 3u);  // (1), (2)x2
  for (const DeltaRow& row : rows) {
    EXPECT_EQ(row.count, 1);
    EXPECT_EQ(row.ts, kNullCsn);
    ASSERT_EQ(row.tuple.size(), 4u);
    EXPECT_EQ(row.tuple[0], row.tuple[2]);  // join key equal
  }
}

TEST_F(ExecutorTest, DeltaDrivenProbeMultipliesCountsAndMinsTimestamps) {
  DeltaRows delta{DeltaRow({Value(int64_t{2}), Value(int64_t{999})}, -2, 42)};
  JoinQuery q;
  q.terms = {TermSource::Rows(r_, &delta), TermSource::BaseCurrent(s_)};
  q.equi_joins = {EquiJoin{0, 0, 1, 0}};
  auto txn = db_.Begin();
  JoinExecutor exec(&db_);
  ExecStats stats;
  ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, txn.get(), &stats));
  ASSERT_OK(db_.Commit(txn.get()));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].count, -2);  // -2 x +1
  EXPECT_EQ(rows[0].ts, 42u);    // min(42, null) = 42
  EXPECT_GE(stats.index_probes, 1u);  // S probed through its hash index
  EXPECT_EQ(stats.queries, 1u);
}

TEST_F(ExecutorTest, TwoDeltaTermsTakeMinTimestamp) {
  DeltaRows d1{DeltaRow({Value(int64_t{1}), Value(int64_t{0})}, +1, 30)};
  DeltaRows d2{DeltaRow({Value(int64_t{1}), Value(int64_t{0})}, -1, 20)};
  JoinQuery q;
  q.terms = {TermSource::Rows(r_, &d1), TermSource::Rows(s_, &d2)};
  q.equi_joins = {EquiJoin{0, 0, 1, 0}};
  JoinExecutor exec(&db_);
  ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, nullptr));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].count, -1);
  EXPECT_EQ(rows[0].ts, 20u);
}

TEST_F(ExecutorTest, SignNegatesOutput) {
  DeltaRows delta{DeltaRow({Value(int64_t{1}), Value(int64_t{0})}, +1, 5)};
  JoinQuery q;
  q.terms = {TermSource::Rows(r_, &delta), TermSource::BaseCurrent(s_)};
  q.equi_joins = {EquiJoin{0, 0, 1, 0}};
  q.sign = -1;
  auto txn = db_.Begin();
  JoinExecutor exec(&db_);
  ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, txn.get()));
  ASSERT_OK(db_.Commit(txn.get()));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].count, -1);
}

TEST_F(ExecutorTest, ResidualSelectionAndProjection) {
  JoinQuery q;
  q.terms = {TermSource::BaseCurrent(r_), TermSource::BaseCurrent(s_)};
  q.equi_joins = {EquiJoin{0, 0, 1, 0}};
  // sigma: rv >= 20; pi: (a, sv) = concat columns 0 and 3.
  q.residual = Expr::Compare(Expr::CmpOp::kGe, Expr::Column(1),
                             Expr::Literal(Value(int64_t{20})));
  q.projection = {0, 3};
  auto txn = db_.Begin();
  JoinExecutor exec(&db_);
  ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, txn.get()));
  ASSERT_OK(db_.Commit(txn.get()));
  ASSERT_EQ(rows.size(), 2u);  // the two rv=2x rows
  for (const DeltaRow& row : rows) {
    ASSERT_EQ(row.tuple.size(), 2u);
    EXPECT_EQ(row.tuple[0].AsInt64(), 2);
    EXPECT_EQ(row.tuple[1].AsInt64(), 200);
  }
}

TEST_F(ExecutorTest, SnapshotTermsSeeThePast) {
  // Delete S(2,200), then join against the pre-delete snapshot.
  auto del = db_.Begin();
  ASSERT_OK_AND_ASSIGN(
      int64_t n,
      db_.DeleteTuple(del.get(), s_, {Value(int64_t{2}), Value(int64_t{200})}));
  ASSERT_EQ(n, 1);
  ASSERT_OK(db_.Commit(del.get()));

  JoinQuery q;
  q.terms = {TermSource::BaseSnapshot(r_, load_csn_),
             TermSource::BaseSnapshot(s_, load_csn_)};
  q.equi_joins = {EquiJoin{0, 0, 1, 0}};
  JoinExecutor exec(&db_);
  ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, nullptr));
  EXPECT_EQ(rows.size(), 3u);  // pre-delete state

  q.terms = {TermSource::BaseSnapshot(r_, db_.stable_csn()),
             TermSource::BaseSnapshot(s_, db_.stable_csn())};
  ASSERT_OK_AND_ASSIGN(DeltaRows now, exec.Execute(q, nullptr));
  EXPECT_EQ(now.size(), 1u);  // only key 1 joins now
}

TEST_F(ExecutorTest, EmptyDeltaShortCircuits) {
  DeltaRows empty;
  JoinQuery q;
  q.terms = {TermSource::Rows(r_, &empty), TermSource::BaseCurrent(s_)};
  q.equi_joins = {EquiJoin{0, 0, 1, 0}};
  auto txn = db_.Begin();
  JoinExecutor exec(&db_);
  ExecStats stats;
  ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, txn.get(), &stats));
  ASSERT_OK(db_.Commit(txn.get()));
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(stats.index_probes, 0u);  // never touched S
}

TEST_F(ExecutorTest, CartesianFallbackWhenNoPredicate) {
  JoinQuery q;
  q.terms = {TermSource::BaseCurrent(r_), TermSource::BaseCurrent(s_)};
  auto txn = db_.Begin();
  JoinExecutor exec(&db_);
  ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, txn.get()));
  ASSERT_OK(db_.Commit(txn.get()));
  EXPECT_EQ(rows.size(), 9u);  // 3 x 3
}

TEST_F(ExecutorTest, ThreeWayChainWithIntermediateDelta) {
  TableOptions opts;
  opts.indexed_columns = {0};
  ASSERT_OK_AND_ASSIGN(
      TableId t, db_.CreateTable("T",
                                 Schema({Column{"a", ValueType::kInt64},
                                         Column{"tv", ValueType::kInt64}}),
                                 opts));
  auto load = db_.Begin();
  ASSERT_OK(db_.Insert(load.get(), t, {Value(int64_t{2}), Value(int64_t{7})}));
  ASSERT_OK(db_.Commit(load.get()));

  // Delta on the MIDDLE term: probes must extend both left and right.
  DeltaRows mid{DeltaRow({Value(int64_t{2}), Value(int64_t{0})}, +1, 3)};
  JoinQuery q;
  q.terms = {TermSource::BaseCurrent(r_), TermSource::Rows(s_, &mid),
             TermSource::BaseCurrent(t)};
  q.equi_joins = {EquiJoin{0, 0, 1, 0}, EquiJoin{1, 0, 2, 0}};
  auto txn = db_.Begin();
  JoinExecutor exec(&db_);
  ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, txn.get()));
  ASSERT_OK(db_.Commit(txn.get()));
  ASSERT_EQ(rows.size(), 2u);  // R has two a=2 rows
  for (const DeltaRow& row : rows) {
    EXPECT_EQ(row.ts, 3u);
    EXPECT_EQ(row.tuple.size(), 6u);
  }
}

TEST_F(ExecutorTest, CompositeJoinKeyAcrossTwoPredicates) {
  // Two equi predicates between the same pair of terms form a composite
  // hash-join key: R.a = S.a AND R.rv = S.sv.
  auto txn0 = db_.Begin();
  ASSERT_OK(db_.Insert(txn0.get(), r_, {Value(int64_t{9}), Value(int64_t{9})}));
  ASSERT_OK(db_.Insert(txn0.get(), s_, {Value(int64_t{9}), Value(int64_t{9})}));
  ASSERT_OK(db_.Insert(txn0.get(), s_, {Value(int64_t{9}), Value(int64_t{8})}));
  ASSERT_OK(db_.Commit(txn0.get()));

  DeltaRows delta{DeltaRow({Value(int64_t{9}), Value(int64_t{9})}, +1, 1)};
  JoinQuery q;
  // kRows term on the LEFT so S is hash-joined (no index on col 1 pair).
  q.terms = {TermSource::Rows(r_, &delta), TermSource::BaseCurrent(s_)};
  q.equi_joins = {EquiJoin{0, 0, 1, 0}, EquiJoin{0, 1, 1, 1}};
  auto txn = db_.Begin();
  JoinExecutor exec(&db_);
  ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, txn.get()));
  ASSERT_OK(db_.Commit(txn.get()));
  // Only the (9,9)x(9,9) pair matches both columns.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple[3].AsInt64(), 9);
}

TEST_F(ExecutorTest, DeltaCountsBeyondUnitMultiplyThrough) {
  DeltaRows d1{DeltaRow({Value(int64_t{1}), Value(int64_t{0})}, +3, 4)};
  DeltaRows d2{DeltaRow({Value(int64_t{1}), Value(int64_t{0})}, -2, 9)};
  JoinQuery q;
  q.terms = {TermSource::Rows(r_, &d1), TermSource::Rows(s_, &d2)};
  q.equi_joins = {EquiJoin{0, 0, 1, 0}};
  JoinExecutor exec(&db_);
  ASSERT_OK_AND_ASSIGN(DeltaRows rows, exec.Execute(q, nullptr));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].count, -6);  // +3 x -2
  EXPECT_EQ(rows[0].ts, 4u);
}

TEST_F(ExecutorTest, ErrorsOnBadQueries) {
  JoinQuery empty;
  JoinExecutor exec(&db_);
  EXPECT_TRUE(exec.Execute(empty, nullptr).status().IsInvalidArgument());

  JoinQuery no_txn;
  no_txn.terms = {TermSource::BaseCurrent(r_)};
  EXPECT_TRUE(exec.Execute(no_txn, nullptr).status().IsInvalidArgument());

  JoinQuery future;
  future.terms = {TermSource::BaseSnapshot(r_, db_.stable_csn() + 10)};
  EXPECT_TRUE(exec.Execute(future, nullptr).status().IsOutOfRange());
}

}  // namespace
}  // namespace rollview
