// Selection pushdown: single-term conjuncts of the residual filter term
// rows before the join; cross-term conjuncts stay post-join. Results must
// be identical either way.

#include <gtest/gtest.h>

#include "ra/executor.h"
#include "ra/net_effect.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

using Cmp = Expr::CmpOp;

class PushdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableOptions opts;
    opts.indexed_columns = {0};
    ASSERT_OK_AND_ASSIGN(
        r_, db_.CreateTable("R",
                            Schema({Column{"a", ValueType::kInt64},
                                    Column{"rv", ValueType::kInt64}}),
                            opts));
    ASSERT_OK_AND_ASSIGN(
        s_, db_.CreateTable("S",
                            Schema({Column{"a", ValueType::kInt64},
                                    Column{"sv", ValueType::kInt64}}),
                            opts));
    auto txn = db_.Begin();
    for (int64_t i = 0; i < 40; ++i) {
      ASSERT_OK(db_.Insert(txn.get(), r_, {Value(i % 8), Value(i)}));
      ASSERT_OK(db_.Insert(txn.get(), s_, {Value(i % 8), Value(i * 10)}));
    }
    ASSERT_OK(db_.Commit(txn.get()));
  }

  // Concat layout: R.a=0 R.rv=1 S.a=2 S.sv=3.
  JoinQuery BaseQuery() {
    JoinQuery q;
    q.terms = {TermSource::BaseCurrent(r_), TermSource::BaseCurrent(s_)};
    q.equi_joins = {EquiJoin{0, 0, 1, 0}};
    return q;
  }

  DeltaRows Run(const JoinQuery& q, ExecStats* stats = nullptr) {
    auto txn = db_.Begin();
    JoinExecutor exec(&db_);
    auto rows = exec.Execute(q, txn.get(), stats);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_OK(db_.Commit(txn.get()));
    return rows.ok() ? std::move(rows).value() : DeltaRows{};
  }

  Db db_;
  TableId r_ = kInvalidTableId;
  TableId s_ = kInvalidTableId;
};

TEST_F(PushdownTest, SingleTermConjunctIsPushed) {
  JoinQuery q = BaseQuery();
  // R.rv < 10 is entirely within term 0: pushable.
  q.residual = Expr::Compare(Cmp::kLt, Expr::Column(1),
                             Expr::Literal(Value(int64_t{10})));
  ExecStats stats;
  DeltaRows rows = Run(q, &stats);
  EXPECT_GT(stats.pushdown_filtered, 0u);
  for (const DeltaRow& row : rows) {
    EXPECT_LT(row.tuple[1].AsInt64(), 10);
  }
  // Same result as evaluating post-join (disable pushdown by making the
  // conjunct reference both terms trivially via OR with a cross-term
  // always-false comparison).
  JoinQuery q2 = BaseQuery();
  q2.residual = Expr::Or(
      Expr::Compare(Cmp::kLt, Expr::Column(1),
                    Expr::Literal(Value(int64_t{10}))),
      Expr::Compare(Cmp::kGt, Expr::Column(0), Expr::Column(2)));
  ExecStats stats2;
  DeltaRows rows2 = Run(q2, &stats2);
  EXPECT_EQ(stats2.pushdown_filtered, 0u);  // cross-term: not pushed
  EXPECT_TRUE(NetEquivalent(rows, rows2));
}

TEST_F(PushdownTest, MixedConjunctionSplits) {
  JoinQuery q = BaseQuery();
  // (R.rv >= 4) AND (S.sv <= 300) AND (R.rv*1 <= S.sv -> cross-term).
  q.residual = Expr::And(
      Expr::And(Expr::Compare(Cmp::kGe, Expr::Column(1),
                              Expr::Literal(Value(int64_t{4}))),
                Expr::Compare(Cmp::kLe, Expr::Column(3),
                              Expr::Literal(Value(int64_t{300})))),
      Expr::Compare(Cmp::kLe, Expr::Column(1), Expr::Column(3)));
  ExecStats stats;
  DeltaRows rows = Run(q, &stats);
  EXPECT_GT(stats.pushdown_filtered, 0u);
  for (const DeltaRow& row : rows) {
    EXPECT_GE(row.tuple[1].AsInt64(), 4);
    EXPECT_LE(row.tuple[3].AsInt64(), 300);
    EXPECT_LE(row.tuple[1].AsInt64(), row.tuple[3].AsInt64());
  }
}

TEST_F(PushdownTest, PushdownAppliesToProbedTerm) {
  // Delta drives probes into S; S's pushed predicate must filter the
  // probe results (not just scans).
  DeltaRows delta{DeltaRow({Value(int64_t{3}), Value(int64_t{0})}, +1, 1)};
  JoinQuery q;
  q.terms = {TermSource::Rows(r_, &delta), TermSource::BaseCurrent(s_)};
  q.equi_joins = {EquiJoin{0, 0, 1, 0}};
  q.residual = Expr::Compare(Cmp::kLt, Expr::Column(3),
                             Expr::Literal(Value(int64_t{200})));
  ExecStats stats;
  DeltaRows rows = Run(q, &stats);
  EXPECT_GT(stats.index_probes, 0u);
  EXPECT_GT(stats.pushdown_filtered, 0u);
  for (const DeltaRow& row : rows) {
    EXPECT_LT(row.tuple[3].AsInt64(), 200);
  }
}

TEST_F(PushdownTest, LiteralOnlyConjunctStaysResidual) {
  JoinQuery q = BaseQuery();
  // A constant-false conjunct references no columns: kept post-join,
  // result empty.
  q.residual = Expr::Literal(Value(int64_t{0}));
  ExecStats stats;
  DeltaRows rows = Run(q, &stats);
  EXPECT_TRUE(rows.empty());
  EXPECT_EQ(stats.pushdown_filtered, 0u);
}

TEST(ExprShiftTest, ShiftColumns) {
  auto e = Expr::And(
      Expr::Compare(Expr::CmpOp::kEq, Expr::Column(4),
                    Expr::Literal(Value(int64_t{1}))),
      Expr::Not(Expr::Compare(Expr::CmpOp::kLt, Expr::Column(5),
                              Expr::Column(6))));
  auto shifted = e->ShiftColumns(4);
  EXPECT_EQ(shifted->MinColumnIndex(), 0u);
  EXPECT_EQ(shifted->MaxColumnIndex(), 2u);
  Tuple t{Value(int64_t{1}), Value(int64_t{9}), Value(int64_t{3})};
  EXPECT_TRUE(shifted->EvalBool(t));  // 1==1 && !(9<3)
}

}  // namespace
}  // namespace rollview
