// The Propagate process (Figure 5): stepwise interval consumption,
// high-water-mark semantics (Theorem 4.2), interval policies.

#include "ivm/propagate.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace rollview {
namespace {

class PropagateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 40, 30, 6, 19));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
    t0_ = view_->propagate_from.load();
  }

  void RunUpdates(size_t txns, uint64_t seed) {
    UpdateStream r_stream(env_.db(), workload_.RStream(1, seed), seed);
    UpdateStream s_stream(env_.db(), workload_.SStream(2, seed + 1),
                          seed + 1);
    for (size_t i = 0; i < txns; ++i) {
      ASSERT_OK(r_stream.RunTransaction());
      if (i % 2 == 1) ASSERT_OK(s_stream.RunTransaction());
    }
    env_.CatchUpCapture();
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
  Csn t0_ = kNullCsn;
};

TEST_F(PropagateTest, StepConsumesOneInterval) {
  RunUpdates(10, 1);
  Csn ready = env_.capture()->high_water_mark();
  Propagator prop(env_.views(), view_, std::make_unique<FixedInterval>(5));
  ASSERT_OK_AND_ASSIGN(bool advanced, prop.Step());
  EXPECT_TRUE(advanced);
  EXPECT_EQ(prop.high_water_mark(), std::min<Csn>(t0_ + 5, ready));
  EXPECT_EQ(view_->high_water_mark(), prop.high_water_mark());
}

TEST_F(PropagateTest, StepWithNothingReadyIsNoop) {
  Propagator prop(env_.views(), view_, std::make_unique<FixedInterval>(5));
  ASSERT_OK_AND_ASSIGN(bool advanced, prop.Step());
  EXPECT_FALSE(advanced);
}

TEST_F(PropagateTest, HwmValidAfterEveryStep) {
  RunUpdates(12, 2);
  Csn ready = env_.capture()->high_water_mark();
  Propagator prop(env_.views(), view_, std::make_unique<FixedInterval>(3));
  while (prop.high_water_mark() < ready) {
    ASSERT_OK_AND_ASSIGN(bool advanced, prop.Step());
    ASSERT_TRUE(advanced);
    // Theorem 4.2: after each complete iteration the delta is a timed delta
    // table from t_initial to t_cur.
    ASSERT_TRUE(CheckTimedDeltaWindow(env_.db(), view_, t0_,
                                      prop.high_water_mark()));
  }
}

TEST_F(PropagateTest, SmallAndLargeIntervalsAgree) {
  RunUpdates(15, 3);
  Csn ready = env_.capture()->high_water_mark();

  Propagator fine(env_.views(), view_, std::make_unique<FixedInterval>(1));
  ASSERT_OK(fine.RunUntil(ready));
  DeltaRows fine_delta = view_->view_delta->Scan(CsnRange{t0_, ready});

  ASSERT_OK_AND_ASSIGN(View* v2,
                       env_.views()->CreateView("V2", workload_.ViewDef()));
  v2->propagate_from.store(t0_);
  v2->delta_hwm.store(t0_);
  Propagator coarse(env_.views(), v2, std::make_unique<DrainInterval>());
  ASSERT_OK(coarse.RunUntil(ready));
  DeltaRows coarse_delta = v2->view_delta->Scan(CsnRange{t0_, ready});

  // delta=1 issues many more queries than drain-all...
  EXPECT_GT(fine.runner()->stats().queries,
            coarse.runner()->stats().queries);
  // ...but the results are net-equivalent.
  EXPECT_TRUE(NetEquivalent(fine_delta, coarse_delta));
}

TEST_F(PropagateTest, TargetRowsPolicyBoundsQuerySizes) {
  RunUpdates(20, 4);
  Csn ready = env_.capture()->high_water_mark();
  Propagator prop(env_.views(), view_,
                  std::make_unique<TargetRowsInterval>(6));
  ASSERT_OK(prop.RunUntil(ready));
  EXPECT_TRUE(CheckTimedDeltaWindow(env_.db(), view_, t0_, ready));
  EXPECT_GE(prop.runner()->stats().queries, 2u);
}

TEST_F(PropagateTest, SpecialTableCsnResolutionAgrees) {
  // The prototype's round-trip for discovering a propagation query's
  // serialization time (Sec. 5) must agree with the engine's commit CSN.
  RunUpdates(6, 5);
  Csn ready = env_.capture()->high_water_mark();
  PropagatorOptions options;
  options.runner.use_special_table_csn_resolution = true;
  Propagator prop(env_.views(), view_, std::make_unique<DrainInterval>(),
                  options);
  ASSERT_OK(prop.RunUntil(ready));
  EXPECT_TRUE(CheckTimedDeltaWindow(env_.db(), view_, t0_, ready));
}

TEST_F(PropagateTest, RunnerStatsClassifyQueries) {
  RunUpdates(8, 6);
  Csn ready = env_.capture()->high_water_mark();
  Propagator prop(env_.views(), view_, std::make_unique<DrainInterval>());
  ASSERT_OK(prop.RunUntil(ready));
  const RunnerStats& rs = prop.runner()->stats();
  EXPECT_EQ(rs.queries, rs.forward_queries + rs.comp_queries);
  EXPECT_GT(rs.forward_queries, 0u);
  EXPECT_GT(rs.comp_queries, 0u);  // both tables changed: compensation ran
  EXPECT_GT(rs.exec.queries, 0u);
}

}  // namespace
}  // namespace rollview
