// Aggregate views via summary-delta tables (the paper's aggregation
// extension): COUNT/SUM maintenance from the timestamped view delta, with
// point-in-time rolls checked against snapshot oracles.

#include "ivm/aggregate_view.h"

#include <gtest/gtest.h>

#include "ivm/propagate.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class AggregateViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 40, 25, 5, 4));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
    t0_ = view_->propagate_from.load();
    // Group by R.jkey (concat col 1), SUM over R.rval (col 2) and
    // S.sval (col 5).
    spec_.group_columns = {1};
    spec_.sum_columns = {2, 5};
  }

  Csn UpdateAndPropagate(size_t txns, uint64_t seed) {
    UpdateStream r_stream(env_.db(), workload_.RStream(seed, seed), seed);
    UpdateStream s_stream(env_.db(), workload_.SStream(seed + 40, seed + 1),
                          seed + 1);
    for (size_t i = 0; i < txns; ++i) {
      EXPECT_OK(r_stream.RunTransaction());
      if (i % 2 == 0) EXPECT_OK(s_stream.RunTransaction());
    }
    env_.CatchUpCapture();
    Propagator prop(env_.views(), view_, std::make_unique<DrainInterval>());
    EXPECT_OK(prop.RunUntil(env_.capture()->high_water_mark()));
    return view_->high_water_mark();
  }

  // Oracle: aggregate the snapshot view state at `t`.
  std::unordered_map<Tuple, AggState, TupleHasher> OracleAgg(Csn t) {
    std::unordered_map<Tuple, AggState, TupleHasher> out;
    for (const DeltaRow& row : OracleViewState(env_.db(), view_, t)) {
      Tuple key{row.tuple[spec_.group_columns[0]]};
      AggState& st = out[key];
      if (st.sums.empty()) st.sums.resize(spec_.sum_columns.size(), 0.0);
      st.count += row.count;
      for (size_t i = 0; i < spec_.sum_columns.size(); ++i) {
        st.sums[i] += static_cast<double>(row.count) *
                      row.tuple[spec_.sum_columns[i]].NumericValue();
      }
    }
    return out;
  }

  ::testing::AssertionResult AggMatchesOracle(const AggregateView& agg) {
    auto oracle = OracleAgg(agg.csn());
    auto actual = agg.Contents();
    if (oracle.size() != actual.size()) {
      return ::testing::AssertionFailure()
             << "group count " << actual.size() << " vs oracle "
             << oracle.size() << " at csn " << agg.csn();
    }
    for (const auto& [key, st] : oracle) {
      auto it = actual.find(key);
      if (it == actual.end()) {
        return ::testing::AssertionFailure()
               << "missing group " << TupleToString(key);
      }
      if (it->second.count != st.count) {
        return ::testing::AssertionFailure()
               << "group " << TupleToString(key) << " count "
               << it->second.count << " vs " << st.count;
      }
      for (size_t i = 0; i < st.sums.size(); ++i) {
        // Relative tolerance: measures are 63-bit mixed keys, so sums reach
        // ~1e20 and accumulation order perturbs the last few ulps.
        double tol = 1e-9 * std::max({1.0, std::abs(st.sums[i]),
                                      std::abs(it->second.sums[i])});
        if (std::abs(it->second.sums[i] - st.sums[i]) > tol) {
          return ::testing::AssertionFailure()
                 << "group " << TupleToString(key) << " sum[" << i << "] "
                 << it->second.sums[i] << " vs " << st.sums[i];
        }
      }
    }
    return ::testing::AssertionSuccess();
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
  Csn t0_ = kNullCsn;
  AggSpec spec_;
};

TEST_F(AggregateViewTest, CreateValidatesSpec) {
  AggSpec bad_group;
  EXPECT_TRUE(AggregateView::Create(view_, bad_group)
                  .status()
                  .IsInvalidArgument());
  AggSpec oob;
  oob.group_columns = {99};
  EXPECT_TRUE(AggregateView::Create(view_, oob).status().IsInvalidArgument());
  AggSpec bad_sum;
  bad_sum.group_columns = {1};
  bad_sum.sum_columns = {99};
  EXPECT_TRUE(
      AggregateView::Create(view_, bad_sum).status().IsInvalidArgument());
}

TEST_F(AggregateViewTest, InitializeMatchesOracle) {
  ASSERT_OK_AND_ASSIGN(auto agg, AggregateView::Create(view_, spec_));
  ASSERT_OK(agg->InitializeFromBaseMv());
  EXPECT_EQ(agg->csn(), view_->mv->csn());
  EXPECT_TRUE(AggMatchesOracle(*agg));
}

TEST_F(AggregateViewTest, RollTracksUpdates) {
  ASSERT_OK_AND_ASSIGN(auto agg, AggregateView::Create(view_, spec_));
  ASSERT_OK(agg->InitializeFromBaseMv());
  Csn hwm = UpdateAndPropagate(12, 50);
  ASSERT_OK(agg->RollTo(hwm));
  EXPECT_TRUE(AggMatchesOracle(*agg));
  EXPECT_GT(agg->stats().window_rows, 0u);
}

TEST_F(AggregateViewTest, PointInTimeRollsAreConsistent) {
  ASSERT_OK_AND_ASSIGN(auto agg, AggregateView::Create(view_, spec_));
  ASSERT_OK(agg->InitializeFromBaseMv());
  Csn hwm = UpdateAndPropagate(10, 51);
  Csn third = t0_ + (hwm - t0_) / 3;
  Csn two_thirds = t0_ + 2 * (hwm - t0_) / 3;
  for (Csn stop : {third, two_thirds, hwm}) {
    ASSERT_OK(agg->RollTo(stop));
    ASSERT_TRUE(AggMatchesOracle(*agg)) << "at " << stop;
  }
}

TEST_F(AggregateViewTest, IndependentOfBaseViewApply) {
  // The aggregate rolls ahead while the base MV stays at t0 -- apply
  // processes are fully independent consumers of the view delta.
  ASSERT_OK_AND_ASSIGN(auto agg, AggregateView::Create(view_, spec_));
  ASSERT_OK(agg->InitializeFromBaseMv());
  Csn hwm = UpdateAndPropagate(8, 52);
  ASSERT_OK(agg->RollTo(hwm));
  EXPECT_EQ(view_->mv->csn(), t0_);  // base MV untouched
  EXPECT_TRUE(AggMatchesOracle(*agg));
}

TEST_F(AggregateViewTest, RollValidation) {
  ASSERT_OK_AND_ASSIGN(auto agg, AggregateView::Create(view_, spec_));
  EXPECT_TRUE(agg->RollTo(5).IsInvalidArgument());  // not initialized
  ASSERT_OK(agg->InitializeFromBaseMv());
  EXPECT_TRUE(agg->RollTo(agg->csn() + 100).IsOutOfRange());
  ASSERT_OK(agg->RollTo(agg->csn()));  // no-op ok
}

TEST(SummaryDeltaTest, GroupsAndCancels) {
  AggSpec spec;
  spec.group_columns = {0};
  spec.sum_columns = {1};
  DeltaRows window{
      DeltaRow({Value(int64_t{1}), Value(2.0)}, +1, 5),
      DeltaRow({Value(int64_t{1}), Value(3.0)}, +2, 6),
      DeltaRow({Value(int64_t{2}), Value(9.0)}, +1, 7),
      DeltaRow({Value(int64_t{2}), Value(9.0)}, -1, 8),  // churn cancels
  };
  auto r = ComputeSummaryDelta(window, spec);
  ASSERT_TRUE(r.ok());
  const SummaryDelta& sd = r.value();
  ASSERT_EQ(sd.size(), 1u);
  const AggState& g1 = sd.at(Tuple{Value(int64_t{1})});
  EXPECT_EQ(g1.count, 3);
  EXPECT_DOUBLE_EQ(g1.sums[0], 2.0 + 2 * 3.0);
  EXPECT_DOUBLE_EQ(g1.avg(0), 8.0 / 3.0);
}

}  // namespace
}  // namespace rollview
