#include "ivm/region_tracker.h"

#include <gtest/gtest.h>

namespace rollview {
namespace {

RegionTracker::Region Rect(CsnRange x, CsnRange y, int64_t sign,
                           const std::string& label = "") {
  return RegionTracker::Region{{x, y}, sign, label};
}

TEST(RegionTrackerTest, Figure7ComputeDeltaGeometry) {
  // The exact four-query picture of Figure 7 / Equation 3 for V_{a,b}:
  //   + R1(a,b] x R2(0,c]      (forward, executed at c)
  //   - R1(a,b] x R2(b,c]      (compensation)
  //   + R1(0,d] x R2(a,b]      (forward, executed at d)
  //   - R1(a,d] x R2(a,b]      (compensation)
  // with a < b < c < d. Net coverage must be the L-region V_{a,b}.
  const Csn a = 10, b = 20, c = 30, d = 40;
  RegionTracker t;
  t.Record(Rect({a, b}, {0, c}, +1, "fwd R1"));
  t.Record(Rect({a, b}, {b, c}, -1, "comp R1"));
  t.Record(Rect({0, d}, {a, b}, +1, "fwd R2"));
  t.Record(Rect({a, d}, {a, b}, -1, "comp R2"));
  EXPECT_FALSE(t.CheckCoverage(a, b).has_value()) << t.Dump();
}

TEST(RegionTrackerTest, DetectsDoubleCounting) {
  const Csn a = 10, b = 20, c = 30;
  RegionTracker t;
  t.Record(Rect({a, b}, {0, c}, +1));
  t.Record(Rect({0, c}, {a, b}, +1));
  // Missing the overlap compensation: the square (a,b] x (a,b] counts 2.
  auto violation = t.CheckCoverage(a, b);
  ASSERT_TRUE(violation.has_value());
  EXPECT_GT((*violation)[0], a);
  EXPECT_LE((*violation)[0], b);
}

TEST(RegionTrackerTest, DetectsProtrusionBeyondTarget) {
  const Csn a = 10, b = 20;
  RegionTracker t;
  // Covers below a on both axes -- that region must net zero.
  t.Record(Rect({0, b}, {0, b}, +1));
  EXPECT_TRUE(t.CheckCoverage(a, b).has_value());
}

TEST(RegionTrackerTest, CoverageAtPoint) {
  RegionTracker t;
  t.Record(Rect({0, 10}, {0, 10}, +1));
  t.Record(Rect({5, 10}, {5, 10}, -1));
  EXPECT_EQ(t.CoverageAt({3, 3}), 1);
  EXPECT_EQ(t.CoverageAt({7, 7}), 0);
  EXPECT_EQ(t.CoverageAt({11, 3}), 0);
}

TEST(RegionTrackerTest, ThreeDimensional) {
  // A 3D box minus an inner box leaves the L-shell: simulate V_{a,b} built
  // from one big +box(b) and one -box(a).
  const Csn a = 5, b = 12;
  RegionTracker t;
  t.Record(RegionTracker::Region{{{0, b}, {0, b}, {0, b}}, +1, "box b"});
  t.Record(RegionTracker::Region{{{0, a}, {0, a}, {0, a}}, -1, "box a"});
  EXPECT_FALSE(t.CheckCoverage(a, b).has_value());
}

TEST(RegionTrackerTest, DumpIsHumanReadable) {
  RegionTracker t;
  t.Record(Rect({1, 2}, {0, 9}, -1, "comp"));
  std::string dump = t.Dump();
  EXPECT_NE(dump.find("- (1, 2] x (0, 9]"), std::string::npos);
  EXPECT_NE(dump.find("comp"), std::string::npos);
}

TEST(RegionTrackerTest, ClearAndSize) {
  RegionTracker t;
  t.Record(Rect({0, 1}, {0, 1}, +1));
  EXPECT_EQ(t.size(), 1u);
  t.Clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.CheckCoverage(0, 10).has_value());  // vacuous
}

}  // namespace
}  // namespace rollview
