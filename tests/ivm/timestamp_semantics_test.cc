// Directed reproductions of the paper's Section 3.3 timestamp scenarios:
// why the *minimum* timestamp is the correct choice for view-delta tuples,
// and how the wrong rule (maximum) breaks point-in-time refresh.

#include <gtest/gtest.h>

#include "ivm/compute_delta.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class TimestampSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableOptions opts;
    opts.indexed_columns = {0};
    ASSERT_OK_AND_ASSIGN(
        r1_, env_.db()->CreateTable(
                 "R1", Schema({Column{"j", ValueType::kInt64},
                               Column{"v1", ValueType::kInt64}}),
                 opts));
    ASSERT_OK_AND_ASSIGN(
        r2_, env_.db()->CreateTable(
                 "R2", Schema({Column{"j", ValueType::kInt64},
                               Column{"v2", ValueType::kInt64}}),
                 opts));
    ASSERT_OK_AND_ASSIGN(
        view_, env_.views()->CreateView(
                   "V", ChainJoin({r1_, r2_}, {{0, 0}})));
  }

  Csn Commit(TableId t, int64_t j, int64_t v, bool del = false) {
    auto txn = env_.db()->Begin();
    if (del) {
      auto n = env_.db()->DeleteTuple(txn.get(), t, {Value(j), Value(v)});
      EXPECT_TRUE(n.ok() && n.value() == 1) << n.status().ToString();
    } else {
      EXPECT_OK(env_.db()->Insert(txn.get(), t, {Value(j), Value(v)}));
    }
    EXPECT_OK(env_.db()->Commit(txn.get()));
    return txn->commit_csn();
  }

  TestEnv env_;
  TableId r1_ = kInvalidTableId;
  TableId r2_ = kInvalidTableId;
  View* view_ = nullptr;
};

TEST_F(TimestampSemanticsTest, DeletionPairTimestampedAtFirstDeletion) {
  // Paper Sec. 3.3, deletion scenario: V_0 contains r1 r2. r1 is deleted at
  // t_a, r2 at t_b (t_a < t_b). The view tuple must leave V at t_a -- when
  // the first participant disappeared.
  Commit(r1_, 1, 11);
  Commit(r2_, 1, 22);
  env_.CatchUpCapture();
  ASSERT_OK(env_.views()->Materialize(view_));
  Csn t0 = view_->propagate_from.load();

  Csn ta = Commit(r1_, 1, 11, /*del=*/true);
  Csn tb = Commit(r2_, 1, 22, /*del=*/true);
  ASSERT_LT(ta, tb);
  env_.CatchUpCapture();

  QueryRunner runner(env_.views(), view_);
  ComputeDeltaOp op(&runner);
  ASSERT_OK(op.PropagateInterval(view_, t0, tb));

  // Net effect of the (t0, ta] window alone: the deletion already visible.
  DeltaRows upto_ta = NetEffect(view_->view_delta->Scan(CsnRange{t0, ta}));
  ASSERT_EQ(upto_ta.size(), 1u);
  EXPECT_EQ(upto_ta[0].count, -1);
  // Nothing further happens to the view in (ta, tb].
  DeltaRows after = NetEffect(view_->view_delta->Scan(CsnRange{ta, tb}));
  EXPECT_TRUE(after.empty());
  // And the full window agrees with the oracle.
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0, tb));
}

TEST_F(TimestampSemanticsTest, InsertionPairAppearsAtSecondInsertion) {
  // Insertion scenario: x1 inserted into R1 at t_a, x2 into R2 at t_b.
  // The joined tuple exists only once both do -- the net insertion lands at
  // t_b. (The forward queries place +1 at t_a and +1 at t_b; the minimum-
  // timestamped -1 compensation at t_a cancels the early one.)
  ASSERT_OK(env_.views()->Materialize(view_));
  Csn t0 = view_->propagate_from.load();

  Csn ta = Commit(r1_, 5, 55);
  Csn tb = Commit(r2_, 5, 66);
  ASSERT_LT(ta, tb);
  env_.CatchUpCapture();

  QueryRunner runner(env_.views(), view_);
  ComputeDeltaOp op(&runner);
  ASSERT_OK(op.PropagateInterval(view_, t0, tb));

  // At ta the pair does not exist yet.
  DeltaRows at_ta = NetEffect(view_->view_delta->Scan(CsnRange{t0, ta}));
  EXPECT_TRUE(at_ta.empty());
  // At tb it does.
  DeltaRows at_tb = NetEffect(view_->view_delta->Scan(CsnRange{t0, tb}));
  ASSERT_EQ(at_tb.size(), 1u);
  EXPECT_EQ(at_tb[0].count, +1);
  // The raw (unnetted) delta contains the canceling +1/-1 pair at ta.
  DeltaRows raw = view_->view_delta->Scan(CsnRange{t0, tb});
  int64_t at_ta_sum = 0;
  size_t at_ta_rows = 0;
  for (const DeltaRow& r : raw) {
    if (r.ts == ta) {
      at_ta_sum += r.count;
      ++at_ta_rows;
    }
  }
  EXPECT_EQ(at_ta_sum, 0);
  EXPECT_GE(at_ta_rows, 2u);
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0, tb));
}

TEST_F(TimestampSemanticsTest, MaxTimestampRuleWouldBeWrong) {
  // Ablation: rewrite the deletion scenario's view delta with max-rule
  // timestamps and show Definition 4.2 breaks on an interior window.
  Commit(r1_, 1, 11);
  Commit(r2_, 1, 22);
  env_.CatchUpCapture();
  ASSERT_OK(env_.views()->Materialize(view_));
  Csn t0 = view_->propagate_from.load();
  Csn ta = Commit(r1_, 1, 11, true);
  Csn tb = Commit(r2_, 1, 22, true);
  env_.CatchUpCapture();

  // Build the max-rule delta by hand: the compensation query's row (the one
  // joining the two deletions) gets max(ta, tb) = tb instead of ta.
  // Forward queries contribute nothing here (both tuples already deleted at
  // execution time), so the delta is a single -1 at tb under max -- leaving
  // the (t0, ta] window empty when the oracle says the view tuple vanished
  // at ta.
  DeltaRows max_rule{DeltaRow(
      Tuple{Value(int64_t{1}), Value(int64_t{11}), Value(int64_t{1}),
            Value(int64_t{22})},
      -1, tb)};
  DeltaRows va = OracleViewState(env_.db(), view_, ta);
  DeltaRows v0 = OracleViewState(env_.db(), view_, t0);
  DeltaRows rolled_max = ApplyDelta(v0, DeltaRows{});  // sigma_{t0,ta} empty
  (void)max_rule;
  EXPECT_FALSE(NetEquivalent(rolled_max, va))
      << "max-rule delta should fail the (t0, ta] window";

  // Whereas the real propagation (min rule) passes everywhere.
  QueryRunner runner(env_.views(), view_);
  ComputeDeltaOp op(&runner);
  ASSERT_OK(op.PropagateInterval(view_, t0, tb));
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0, tb));
}

TEST_F(TimestampSemanticsTest, UpdateSplitsIntoDeleteAndInsert) {
  // An update to a joining row must flow through the view as a delete of
  // the old joined tuple and an insert of the new one, at the same CSN.
  Commit(r1_, 9, 90);
  Commit(r2_, 9, 91);
  env_.CatchUpCapture();
  ASSERT_OK(env_.views()->Materialize(view_));
  Csn t0 = view_->propagate_from.load();

  auto txn = env_.db()->Begin();
  ASSERT_OK(env_.db()->Update(txn.get(), r1_,
                              {Value(int64_t{9}), Value(int64_t{90})},
                              {Value(int64_t{9}), Value(int64_t{95})}));
  ASSERT_OK(env_.db()->Commit(txn.get()));
  Csn tu = txn->commit_csn();
  env_.CatchUpCapture();

  QueryRunner runner(env_.views(), view_);
  ComputeDeltaOp op(&runner);
  ASSERT_OK(op.PropagateInterval(view_, t0, tu));

  DeltaRows net = NetEffect(view_->view_delta->Scan(CsnRange{t0, tu}));
  ASSERT_EQ(net.size(), 2u);
  EXPECT_EQ(net[0].count + net[1].count, 0);  // one -1, one +1
  EXPECT_TRUE(CheckTimedDeltaWindow(env_.db(), view_, t0, tu));
}

}  // namespace
}  // namespace rollview
