// RetentionManager: pruning base deltas, view deltas, and MVCC versions
// without ever breaking in-flight maintenance.

#include "ivm/retention.h"

#include <gtest/gtest.h>

#include "ivm/apply.h"
#include "ivm/propagate.h"
#include "ivm/rolling.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class RetentionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 30, 20, 5, 9));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
  }

  void RunUpdates(size_t txns, uint64_t seed) {
    UpdateStream r_stream(env_.db(), workload_.RStream(seed, seed), seed);
    for (size_t i = 0; i < txns; ++i) ASSERT_OK(r_stream.RunTransaction());
    env_.CatchUpCapture();
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
};

TEST_F(RetentionTest, NothingPrunableBeforeProgress) {
  RunUpdates(10, 1);
  size_t post_mv_rows = env_.db()->delta(workload_.r)->CountInRange(
      CsnRange{view_->mv->csn(), kMaxCsn});
  ASSERT_GT(post_mv_rows, 0u);
  RetentionManager retention(env_.views());
  auto report = retention.PruneOnce();
  // Only rows from the initial bulk load (before materialization) go; every
  // delta row newer than the MV time must survive for propagation.
  EXPECT_EQ(report.base_floor, view_->mv->csn());
  EXPECT_EQ(env_.db()->delta(workload_.r)->size(), post_mv_rows);
}

TEST_F(RetentionTest, AppliedPolicyPrunesBehindTheMv) {
  RunUpdates(10, 2);
  Propagator prop(env_.views(), view_, std::make_unique<DrainInterval>());
  ASSERT_OK(prop.RunUntil(env_.capture()->high_water_mark()));
  Applier applier(env_.views(), view_);
  ASSERT_OK(applier.RollTo(view_->high_water_mark()));

  size_t base_before = env_.db()->delta(workload_.r)->size() +
                       env_.db()->delta(workload_.s)->size();
  size_t vdelta_before = view_->view_delta->size();
  ASSERT_GT(base_before, 0u);
  ASSERT_GT(vdelta_before, 0u);

  RetentionManager retention(env_.views());
  auto report = retention.PruneOnce();
  EXPECT_EQ(report.base_delta_rows, base_before);      // all behind the MV
  EXPECT_EQ(report.view_delta_rows, vdelta_before);
  EXPECT_EQ(env_.db()->delta(workload_.r)->size(), 0u);
  EXPECT_EQ(env_.db()->delta(workload_.s)->size(), 0u);
  EXPECT_EQ(view_->view_delta->size(), 0u);
}

TEST_F(RetentionTest, PropagatedPolicyIgnoresLaggingApply) {
  RunUpdates(10, 3);
  Propagator prop(env_.views(), view_, std::make_unique<DrainInterval>());
  ASSERT_OK(prop.RunUntil(env_.capture()->high_water_mark()));
  // Apply never ran: kApplied keeps everything, kPropagated prunes base
  // deltas (propagation will not re-read them) but the view delta stays
  // (apply still needs it).
  RetentionOptions opts;
  opts.base_delta_policy = RetentionOptions::BaseDeltaPolicy::kPropagated;
  RetentionManager retention(env_.views(), opts);
  size_t vdelta_before = view_->view_delta->size();
  auto report = retention.PruneOnce();
  EXPECT_GT(report.base_delta_rows, 0u);
  EXPECT_EQ(view_->view_delta->size(), vdelta_before);
  EXPECT_EQ(report.view_delta_rows, 0u);
}

TEST_F(RetentionTest, SharedTableUsesMinimumFloor) {
  // Two views over the same tables, one lagging: the laggard pins the
  // base deltas.
  ASSERT_OK_AND_ASSIGN(View* v2,
                       env_.views()->CreateView("V2", workload_.ViewDef()));
  ASSERT_OK(env_.views()->Materialize(v2));
  Csn v2_start = v2->mv->csn();
  RunUpdates(10, 4);

  Propagator prop(env_.views(), view_, std::make_unique<DrainInterval>());
  ASSERT_OK(prop.RunUntil(env_.capture()->high_water_mark()));
  Applier applier(env_.views(), view_);
  ASSERT_OK(applier.RollTo(view_->high_water_mark()));
  // v2 never progressed past its materialization.

  RetentionManager retention(env_.views());
  auto report = retention.PruneOnce();
  EXPECT_EQ(report.base_floor, v2_start);
  // Rows after v2's floor survive so v2 can still propagate...
  ASSERT_GT(env_.db()->delta(workload_.r)->size(), 0u);
  // ...and it can: propagate v2 and check the invariant.
  Propagator prop2(env_.views(), v2, std::make_unique<FixedInterval>(5));
  ASSERT_OK(prop2.RunUntil(env_.capture()->high_water_mark()));
  EXPECT_TRUE(CheckTimedDeltaWindow(env_.db(), v2, v2_start,
                                    v2->high_water_mark()));
}

TEST_F(RetentionTest, ContinuousMaintenanceWithRetention) {
  // Interleave updates, rolling propagation, apply, and retention; the
  // system stays correct and the delta tables stay bounded.
  RollingPropagator prop(env_.views(), view_, /*uniform_interval=*/5);
  Applier applier(env_.views(), view_);
  RetentionOptions opts;
  opts.gc_versions = false;  // keep versions for the final oracle check
  RetentionManager retention(env_.views(), opts);

  size_t max_base_delta = 0;
  for (int round = 0; round < 6; ++round) {
    RunUpdates(5, 100 + round);
    ASSERT_OK(prop.RunUntil(env_.capture()->high_water_mark()));
    ASSERT_OK(applier.RollTo(view_->high_water_mark()));
    retention.PruneOnce();
    max_base_delta =
        std::max(max_base_delta, env_.db()->delta(workload_.r)->size());
  }
  // Bounded: never more than one round's worth of rows outstanding.
  EXPECT_LT(max_base_delta, 400u);
  DeltaRows oracle = OracleViewState(env_.db(), view_, view_->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view_->mv->AsDeltaRows()));
}

}  // namespace
}  // namespace rollview
