// MaintenanceService / RetentionService: background drivers, pause/resume,
// drain semantics, error propagation.

#include "ivm/maintenance.h"

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 40, 25, 6, 12));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
    env_.StartCapture();
  }

  void RunUpdates(size_t txns, uint64_t seed) {
    UpdateStream r_stream(env_.db(), workload_.RStream(seed, seed), seed);
    for (size_t i = 0; i < txns; ++i) ASSERT_OK(r_stream.RunTransaction());
  }

  ::testing::AssertionResult MvMatchesOracle() {
    DeltaRows oracle = OracleViewState(env_.db(), view_, view_->mv->csn());
    if (!NetEquivalent(oracle, view_->mv->AsDeltaRows())) {
      return ::testing::AssertionFailure() << "MV diverges from oracle";
    }
    return ::testing::AssertionSuccess();
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
};

TEST_F(MaintenanceTest, DrainWithoutStartWorksSynchronously) {
  RunUpdates(10, 1);
  ASSERT_OK(env_.capture()->WaitForCsn(env_.db()->stable_csn()));
  MaintenanceService service(env_.views(), view_);
  // Propagation queries commit too, advancing the stable CSN past the
  // drain target; compare against the target we asked for.
  Csn target = env_.db()->stable_csn();
  ASSERT_OK(service.Drain(target));
  EXPECT_GE(view_->mv->csn(), target);
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(MaintenanceTest, BackgroundDriversChaseUpdates) {
  MaintenanceService service(env_.views(), view_);
  service.Start();
  RunUpdates(30, 2);
  Csn target = env_.db()->stable_csn();
  ASSERT_OK(service.Drain(target));
  ASSERT_OK(service.Stop());
  EXPECT_GE(view_->mv->csn(), target);
  EXPECT_TRUE(MvMatchesOracle());
  EXPECT_GT(service.runner_stats()->queries, 0u);
  EXPECT_GT(service.apply_stats().rolls, 0u);
}

TEST_F(MaintenanceTest, PropagateAlgorithmOptionWorksToo) {
  MaintenanceService::Options opts;
  opts.algorithm = MaintenanceService::Options::Algorithm::kPropagate;
  MaintenanceService service(env_.views(), view_, opts);
  service.Start();
  RunUpdates(20, 3);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(MaintenanceTest, PausedApplyHoldsTheMvStill) {
  MaintenanceService service(env_.views(), view_);
  service.PauseApply();
  service.Start();
  Csn mv_before = view_->mv->csn();
  RunUpdates(15, 4);
  // Propagation proceeds...
  Csn target = env_.db()->stable_csn();
  while (view_->high_water_mark() < target) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...but the MV does not move while apply is paused.
  EXPECT_EQ(view_->mv->csn(), mv_before);
  service.ResumeApply();
  ASSERT_OK(service.Drain(target));
  ASSERT_OK(service.Stop());
  EXPECT_GE(view_->mv->csn(), target);
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(MaintenanceTest, PausedPropagationFreezesHwm) {
  MaintenanceService service(env_.views(), view_);
  service.Start();
  RunUpdates(10, 5);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  service.PausePropagation();
  Csn hwm_before = view_->high_water_mark();
  RunUpdates(10, 6);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(view_->high_water_mark(), hwm_before);
  service.ResumePropagation();
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(MaintenanceTest, DrainReturnsBusyWhenPropagationIsPaused) {
  MaintenanceService service(env_.views(), view_);
  service.PausePropagation();
  service.Start();
  RunUpdates(5, 8);
  ASSERT_OK(env_.capture()->WaitForCsn(env_.db()->stable_csn()));
  Csn target = env_.db()->stable_csn();
  // The driver that must advance the HWM is paused: Drain must report Busy
  // instead of livelocking.
  Status s = service.Drain(target);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  service.ResumePropagation();
  ASSERT_OK(service.Drain(target));
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(MaintenanceTest, DrainReturnsBusyWhenApplyIsPaused) {
  MaintenanceService service(env_.views(), view_);
  service.PauseApply();
  service.Start();
  RunUpdates(5, 9);
  Csn target = env_.db()->stable_csn();
  while (view_->high_water_mark() < target) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Status s = service.Drain(target);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  service.ResumeApply();
  ASSERT_OK(service.Drain(target));
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(MaintenanceTest, SupervisorAbsorbsTransientAbortBurst) {
  FaultInjector::Options fopts;
  fopts.seed = 7;
  // High enough that a burst of aborts is certain across the dozens of
  // maintenance commits below, low enough that multi-commit rolling steps
  // still complete promptly (success rate per commit is 1 - p).
  fopts.commit_abort_probability = 0.3;
  FaultInjector fi(fopts);
  env_.db()->SetFaultInjector(&fi);

  MaintenanceService::Options opts;
  opts.runner.max_retries = 0;  // the supervisor owns the whole retry policy
  opts.target_rows_per_query = 8;  // many small strips -> many fault draws
  opts.backoff.initial = std::chrono::microseconds(20);
  opts.backoff.max = std::chrono::microseconds(1000);
  MaintenanceService service(env_.views(), view_, opts);
  service.Start();
  RunUpdates(30, 8);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));

  // Let the burst end and verify the service recovered fully.
  fi.set_armed(false);
  RunUpdates(5, 9);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  EXPECT_EQ(service.Health(), DriverHealth::kRunning);
  EXPECT_EQ(service.propagate_health(), DriverHealth::kRunning);
  ASSERT_OK(service.Stop());  // no terminal error despite the burst

  DriverStats ps = service.propagate_driver_stats();
  EXPECT_GT(ps.steps, 0u);
  EXPECT_GT(ps.transient_errors, 0u);
  EXPECT_GT(ps.errors_aborted, 0u);
  EXPECT_GT(ps.recoveries, 0u);
  EXPECT_GT(ps.backoff_nanos, 0u);
  EXPECT_GT(fi.GetStats().injected_aborts, 0u);
  EXPECT_TRUE(service.last_error().IsTxnAborted());  // observable history
  EXPECT_TRUE(MvMatchesOracle());
  env_.db()->SetFaultInjector(nullptr);
}

TEST_F(MaintenanceTest, PermanentFailureSurfacesAndRestartClearsIt) {
  FaultInjector::Options fopts;
  fopts.commit_abort_probability = 1.0;
  FaultInjector fi(fopts);
  env_.db()->SetFaultInjector(&fi);

  MaintenanceService::Options opts;
  opts.runner.max_retries = 0;
  opts.degraded_after = 2;
  opts.failed_after = 4;
  opts.backoff.initial = std::chrono::microseconds(20);
  opts.backoff.max = std::chrono::microseconds(500);
  MaintenanceService service(env_.views(), view_, opts);
  RunUpdates(5, 10);
  service.Start();
  while (service.propagate_health() != DriverHealth::kFailed) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(service.Health(), DriverHealth::kFailed);
  EXPECT_TRUE(service.last_error().IsTxnAborted());
  // Drain against a failed driver reports the driver's error, not a hang.
  Status drain = service.Drain(env_.db()->stable_csn());
  EXPECT_TRUE(drain.IsTxnAborted()) << drain.ToString();
  Status stop = service.Stop();
  EXPECT_TRUE(stop.IsTxnAborted()) << stop.ToString();
  DriverStats ps = service.propagate_driver_stats();
  EXPECT_GE(ps.transient_errors, 3u);  // the failures before giving up
  EXPECT_GE(ps.degraded_entries, 1u);  // walked through kDegraded

  // Restart after the fault cleared: no stale error from the previous run.
  fi.set_armed(false);
  service.Start();
  EXPECT_OK(service.last_error());
  EXPECT_EQ(service.propagate_health(), DriverHealth::kRunning);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
  env_.db()->SetFaultInjector(nullptr);
}

TEST_F(MaintenanceTest, RestartAfterPermanentFailureResumesFromCursors) {
  // Progress a first service to a frontier and destroy it; then fail a
  // second service permanently under a 100% injected-abort storm. Every
  // (re)start in this sequence must pick up from the view's durable cursor
  // state -- never from CSN 0. A restart that re-propagated the old strips
  // would duplicate their view-delta rows and break the oracle check.
  RunUpdates(8, 21);
  ASSERT_OK(env_.capture()->WaitForCsn(env_.db()->stable_csn()));
  {
    MaintenanceService warm(env_.views(), view_);
    ASSERT_OK(warm.Drain(env_.db()->stable_csn()));
  }  // destroyed: the propagator is gone, only the cursor state survives
  Csn h1 = view_->high_water_mark();
  CursorState resume = view_->LoadCursors();
  ASSERT_TRUE(resume.valid);
  uint64_t seq1 = resume.next_step_seq;
  ASSERT_GT(seq1, 1u);

  FaultInjector::Options fopts;
  fopts.seed = 0x5eed;
  fopts.commit_abort_probability = 1.0;  // nothing can commit
  FaultInjector fi(fopts);
  env_.db()->SetFaultInjector(&fi);

  MaintenanceService::Options opts;
  opts.runner.max_retries = 0;
  opts.failed_after = 3;
  opts.backoff.initial = std::chrono::microseconds(20);
  opts.backoff.max = std::chrono::microseconds(200);
  MaintenanceService service(env_.views(), view_, opts);
  // Fresh construction resumed from the cursors: the hwm did not reset.
  EXPECT_EQ(view_->high_water_mark(), h1);

  RunUpdates(6, 22);
  service.Start();
  while (service.propagate_health() != DriverHealth::kFailed) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Status stop = service.Stop();
  EXPECT_FALSE(stop.ok());
  EXPECT_GE(view_->high_water_mark(), h1);  // failure never regressed it

  // Fault cleared: the same service restarts and finishes the job from
  // wherever the failed run got to.
  fi.set_armed(false);
  service.Start();
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
  EXPECT_GT(view_->high_water_mark(), h1);
  CursorState after = view_->LoadCursors();
  EXPECT_GE(after.next_step_seq, seq1);  // step sequence continued
  env_.db()->SetFaultInjector(nullptr);
}

TEST_F(MaintenanceTest, RestartAfterFailureResetsControllerState) {
  // An abort storm drives the AIMD row target to its floor before the
  // driver gives up (kFailed). Restarting the service resets backoff -- and
  // must reset the controller too: resuming with the collapsed target (or a
  // stale shedding posture) would start the new run throttled by a regime
  // that no longer exists.
  FaultInjector::Options fopts;
  fopts.seed = 0xabcd;
  fopts.commit_abort_probability = 1.0;
  FaultInjector fi(fopts);
  env_.db()->SetFaultInjector(&fi);

  MaintenanceService::Options opts;
  opts.interval_mode = MaintenanceService::Options::IntervalMode::kAdaptive;
  opts.controller.initial_target_rows = 64;
  opts.controller.min_target_rows = 2;
  opts.runner.max_retries = 0;
  opts.failed_after = 8;
  opts.backoff.initial = std::chrono::microseconds(20);
  opts.backoff.max = std::chrono::microseconds(200);
  MaintenanceService service(env_.views(), view_, opts);
  RunUpdates(5, 30);
  service.Start();
  while (service.propagate_health() != DriverHealth::kFailed) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_OK(env_.capture()->WaitForCsn(env_.db()->stable_csn()));
  // Each transient failure shrank the target multiplicatively; by kFailed
  // it has collapsed below the configured initial.
  const size_t collapsed = service.interval_controller()->target_rows();
  EXPECT_LT(collapsed, opts.controller.initial_target_rows);
  Status stop = service.Stop();
  EXPECT_FALSE(stop.ok());

  fi.set_armed(false);
  service.Start();
  // Health transitioned kFailed -> kRunning: the controller restarted from
  // its configured initial target, not the collapsed one.
  EXPECT_EQ(service.interval_controller()->target_rows(),
            opts.controller.initial_target_rows);
  EXPECT_EQ(service.propagate_health(), DriverHealth::kRunning);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
  // Cumulative controller history survived the reset.
  EXPECT_GT(service.interval_controller()->GetStats().transient_shrinks, 0u);
  env_.db()->SetFaultInjector(nullptr);
}

TEST_F(MaintenanceTest, AdaptiveIntervalModeConverges) {
  MaintenanceService::Options opts;
  opts.interval_mode = MaintenanceService::Options::IntervalMode::kAdaptive;
  opts.controller.initial_target_rows = 8;
  MaintenanceService service(env_.views(), view_, opts);
  ASSERT_NE(service.interval_controller(), nullptr);
  EXPECT_FALSE(service.shedding());  // SLO disabled by default
  service.Start();
  RunUpdates(30, 13);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
  IntervalController::Stats cs = service.interval_controller()->GetStats();
  EXPECT_GT(cs.observations, 0u);
  EXPECT_GE(service.interval_controller()->target_rows(),
            opts.controller.min_target_rows);
  EXPECT_GT(service.target_rows_gauge().value(), 0);
}

TEST_F(MaintenanceTest, AdaptiveSheddingPausesRetentionAndRecovers) {
  // Deterministic end-to-end shedding: a manufactured OLTP lock wait plus a
  // large backlog makes the first observed window a contended SLO
  // violation (shed); draining the backlog brings staleness back under the
  // SLO (recover). Synchronous Drain keeps it single-threaded.
  MaintenanceService::Options opts;
  opts.interval_mode = MaintenanceService::Options::IntervalMode::kAdaptive;
  opts.controller.initial_target_rows = 4;
  opts.controller.min_target_rows = 2;
  opts.controller.staleness_slo = 8;
  opts.controller.violations_to_shed = 1;
  opts.controller.ok_to_recover = 1;
  opts.controller.recover_fraction = 1.0;  // recover anywhere under the SLO
  RetentionService retention(env_.views(), RetentionOptions{},
                             std::chrono::milliseconds(100000));
  std::vector<bool> transitions;
  opts.on_shedding = [&](bool on) {
    if (on) {
      retention.Pause();
    } else {
      retention.Resume();
    }
    transitions.push_back(on);
  };
  MaintenanceService service(env_.views(), view_, opts);

  RunUpdates(30, 11);
  ASSERT_OK(env_.capture()->WaitForCsn(env_.db()->stable_csn()));

  // One real OLTP lock wait inside the controller's observation window.
  LockManager* lm = env_.db()->lock_manager();
  ResourceId contended = ResourceId::Named(777);
  ASSERT_OK(lm->Acquire(990001, contended, LockMode::kX));
  std::thread waiter([&] {
    EXPECT_TRUE(lm->Acquire(990002, contended, LockMode::kX).ok());
    lm->ReleaseAll(990002);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  lm->ReleaseAll(990001);
  waiter.join();

  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  // If the tail observation was still over the SLO, trickle a little more
  // work through: with the backlog gone, the next windows must recover.
  for (int i = 0; i < 5 && service.shedding(); ++i) {
    RunUpdates(2, 100 + i);
    ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  }

  ASSERT_GE(transitions.size(), 2u);
  EXPECT_TRUE(transitions.front());   // entered shedding...
  EXPECT_FALSE(transitions.back());   // ...and recovered
  EXPECT_FALSE(service.shedding());
  EXPECT_FALSE(retention.paused());
  IntervalController::Stats cs = service.interval_controller()->GetStats();
  EXPECT_GE(cs.slo_violations, 1u);
  EXPECT_EQ(cs.shed_entries, cs.shed_exits);
  EXPECT_GE(cs.shrinks, 1u);  // the contended window also shrank the target
  // The gauges tracked the observations (values are workload-dependent).
  EXPECT_GE(service.target_rows_gauge().value(),
            static_cast<int64_t>(opts.controller.min_target_rows));
  EXPECT_GE(service.staleness_gauge().value(), 0);
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(MaintenanceTest, DrainCompletesWhileShedding) {
  // Regression: shedding turns off non-critical work (retention, stretched
  // checkpoints) but must never gate Drain -- CheckDrainProgress only fails
  // on kFailed or paused propagation, and a shedding service keeps rolling
  // strips. Configure the SLO machine so the very first observed window
  // violates and recovery is unreachable within the test (ok_to_recover
  // huge), then drain the whole backlog while the posture stays "shedding".
  MaintenanceService::Options opts;
  opts.interval_mode = MaintenanceService::Options::IntervalMode::kAdaptive;
  opts.controller.initial_target_rows = 2;
  opts.controller.min_target_rows = 2;
  opts.controller.staleness_slo = 4;
  opts.controller.violations_to_shed = 1;
  opts.controller.ok_to_recover = 1000;  // stays shedding for the whole drain
  opts.checkpoint_every_steps = 2;
  opts.shedding_checkpoint_stretch = 8;  // stretched cadence, still progresses
  std::vector<bool> transitions;
  opts.on_shedding = [&](bool on) { transitions.push_back(on); };
  MaintenanceService service(env_.views(), view_, opts);

  RunUpdates(30, 17);
  ASSERT_OK(env_.capture()->WaitForCsn(env_.db()->stable_csn()));

  // Shedding engages only for contention-driven staleness: manufacture one
  // real OLTP lock wait inside the controller's first observation window.
  LockManager* lm = env_.db()->lock_manager();
  ResourceId contended = ResourceId::Named(778);
  ASSERT_OK(lm->Acquire(990011, contended, LockMode::kX));
  std::thread waiter([&] {
    EXPECT_TRUE(lm->Acquire(990012, contended, LockMode::kX).ok());
    lm->ReleaseAll(990012);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  lm->ReleaseAll(990011);
  waiter.join();

  Csn target = env_.db()->stable_csn();
  ASSERT_OK(service.Drain(target));  // must complete despite shedding

  EXPECT_GE(view_->high_water_mark(), target);
  EXPECT_GE(view_->mv->csn(), target);
  ASSERT_FALSE(transitions.empty());
  EXPECT_TRUE(transitions.front());
  EXPECT_TRUE(service.shedding());  // never recovered -- and never needed to
  IntervalController::Stats cs = service.interval_controller()->GetStats();
  EXPECT_GE(cs.shed_entries, 1u);
  EXPECT_EQ(cs.shed_exits, 0u);
  EXPECT_TRUE(MvMatchesOracle());
}

// Standalone (short lock-wait timeout needs its own Db): a propagation step
// that times out waiting on an OLTP table lock surfaces as transient Busy,
// is counted, and is retried by the supervisor -- never kFailed, and the
// cancelled step leaves no partial rows behind (MV still matches oracle).
TEST(MaintenanceOverloadTest, LockWaitTimeoutIsRetriedNotFatal) {
  DbOptions dopts;
  dopts.lock_options.wait_timeout = std::chrono::milliseconds(40);
  Db db(dopts);
  LogCapture capture(&db, CaptureOptions{});
  ViewManager views(&db, &capture);
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(&db, 40, 25, 6, 33));
  capture.CatchUp();
  ASSERT_OK_AND_ASSIGN(View* view, views.CreateView("V", workload.ViewDef()));
  ASSERT_OK(views.Materialize(view));
  capture.Start();

  {
    UpdateStream stream(&db, workload.RStream(33, 34), 34);
    for (int i = 0; i < 12; ++i) ASSERT_OK(stream.RunTransaction());
  }
  ASSERT_OK(capture.WaitForCsn(db.stable_csn()));

  // An OLTP transaction parks X locks on both base tables, so whichever
  // relation the next strip's forward query reads, it blocks and times out.
  std::unique_ptr<Txn> blocker = db.Begin();
  ASSERT_OK(db.LockTableExclusive(blocker.get(), workload.r));
  ASSERT_OK(db.LockTableExclusive(blocker.get(), workload.s));

  MaintenanceService::Options mopts;
  mopts.runner.max_retries = 0;  // every timeout reaches the supervisor
  mopts.backoff.initial = std::chrono::microseconds(50);
  mopts.backoff.max = std::chrono::microseconds(2000);
  MaintenanceService service(&views, view, mopts);
  service.Start();

  while (service.propagate_driver_stats().errors_busy < 2) {
    ASSERT_NE(service.propagate_health(), DriverHealth::kFailed);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(service.last_error().IsBusy()) <<
      service.last_error().ToString();

  ASSERT_OK(db.Abort(blocker.get()));  // release; the retry goes through
  ASSERT_OK(service.Drain(db.stable_csn()));
  EXPECT_EQ(service.propagate_health(), DriverHealth::kRunning);
  ASSERT_OK(service.Stop());  // no terminal error from the timeout burst

  DriverStats ps = service.propagate_driver_stats();
  EXPECT_GE(ps.errors_busy, 2u);
  EXPECT_GE(ps.recoveries, 1u);
  EXPECT_GE(db.lock_manager()->GetStats().cls(TxnClass::kMaintenance).timeouts,
            2u);
  DeltaRows oracle = OracleViewState(&db, view, view->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()))
      << "cancelled timed-out steps left partial rows behind";
}

TEST_F(MaintenanceTest, RetentionServicePrunesInBackground) {
  MaintenanceService service(env_.views(), view_);
  RetentionService retention(env_.views(), RetentionOptions{},
                             std::chrono::milliseconds(5));
  service.Start();
  retention.Start();
  RunUpdates(25, 7);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  // Give retention a few periods after the drain.
  uint64_t passes = retention.passes();
  while (retention.passes() < passes + 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  retention.Stop();
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
  // Everything at or below the MV time is gone.
  EXPECT_EQ(env_.db()->delta(workload_.r)->CountInRange(
                CsnRange{0, view_->mv->csn()}),
            0u);
  EXPECT_GT(retention.passes(), 0u);
}

}  // namespace
}  // namespace rollview
