// MaintenanceService / RetentionService: background drivers, pause/resume,
// drain semantics, error propagation.

#include "ivm/maintenance.h"

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class MaintenanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 40, 25, 6, 12));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
    env_.StartCapture();
  }

  void RunUpdates(size_t txns, uint64_t seed) {
    UpdateStream r_stream(env_.db(), workload_.RStream(seed, seed), seed);
    for (size_t i = 0; i < txns; ++i) ASSERT_OK(r_stream.RunTransaction());
  }

  ::testing::AssertionResult MvMatchesOracle() {
    DeltaRows oracle = OracleViewState(env_.db(), view_, view_->mv->csn());
    if (!NetEquivalent(oracle, view_->mv->AsDeltaRows())) {
      return ::testing::AssertionFailure() << "MV diverges from oracle";
    }
    return ::testing::AssertionSuccess();
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
};

TEST_F(MaintenanceTest, DrainWithoutStartWorksSynchronously) {
  RunUpdates(10, 1);
  ASSERT_OK(env_.capture()->WaitForCsn(env_.db()->stable_csn()));
  MaintenanceService service(env_.views(), view_);
  // Propagation queries commit too, advancing the stable CSN past the
  // drain target; compare against the target we asked for.
  Csn target = env_.db()->stable_csn();
  ASSERT_OK(service.Drain(target));
  EXPECT_GE(view_->mv->csn(), target);
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(MaintenanceTest, BackgroundDriversChaseUpdates) {
  MaintenanceService service(env_.views(), view_);
  service.Start();
  RunUpdates(30, 2);
  Csn target = env_.db()->stable_csn();
  ASSERT_OK(service.Drain(target));
  ASSERT_OK(service.Stop());
  EXPECT_GE(view_->mv->csn(), target);
  EXPECT_TRUE(MvMatchesOracle());
  EXPECT_GT(service.runner_stats()->queries, 0u);
  EXPECT_GT(service.apply_stats().rolls, 0u);
}

TEST_F(MaintenanceTest, PropagateAlgorithmOptionWorksToo) {
  MaintenanceService::Options opts;
  opts.algorithm = MaintenanceService::Options::Algorithm::kPropagate;
  MaintenanceService service(env_.views(), view_, opts);
  service.Start();
  RunUpdates(20, 3);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(MaintenanceTest, PausedApplyHoldsTheMvStill) {
  MaintenanceService service(env_.views(), view_);
  service.PauseApply();
  service.Start();
  Csn mv_before = view_->mv->csn();
  RunUpdates(15, 4);
  // Propagation proceeds...
  Csn target = env_.db()->stable_csn();
  while (view_->high_water_mark() < target) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // ...but the MV does not move while apply is paused.
  EXPECT_EQ(view_->mv->csn(), mv_before);
  service.ResumeApply();
  ASSERT_OK(service.Drain(target));
  ASSERT_OK(service.Stop());
  EXPECT_GE(view_->mv->csn(), target);
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(MaintenanceTest, PausedPropagationFreezesHwm) {
  MaintenanceService service(env_.views(), view_);
  service.Start();
  RunUpdates(10, 5);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  service.PausePropagation();
  Csn hwm_before = view_->high_water_mark();
  RunUpdates(10, 6);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(view_->high_water_mark(), hwm_before);
  service.ResumePropagation();
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(MaintenanceTest, DrainReturnsBusyWhenPropagationIsPaused) {
  MaintenanceService service(env_.views(), view_);
  service.PausePropagation();
  service.Start();
  RunUpdates(5, 8);
  ASSERT_OK(env_.capture()->WaitForCsn(env_.db()->stable_csn()));
  Csn target = env_.db()->stable_csn();
  // The driver that must advance the HWM is paused: Drain must report Busy
  // instead of livelocking.
  Status s = service.Drain(target);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  service.ResumePropagation();
  ASSERT_OK(service.Drain(target));
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(MaintenanceTest, DrainReturnsBusyWhenApplyIsPaused) {
  MaintenanceService service(env_.views(), view_);
  service.PauseApply();
  service.Start();
  RunUpdates(5, 9);
  Csn target = env_.db()->stable_csn();
  while (view_->high_water_mark() < target) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Status s = service.Drain(target);
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  service.ResumeApply();
  ASSERT_OK(service.Drain(target));
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(MaintenanceTest, SupervisorAbsorbsTransientAbortBurst) {
  FaultInjector::Options fopts;
  fopts.seed = 7;
  // High enough that a burst of aborts is certain across the dozens of
  // maintenance commits below, low enough that multi-commit rolling steps
  // still complete promptly (success rate per commit is 1 - p).
  fopts.commit_abort_probability = 0.3;
  FaultInjector fi(fopts);
  env_.db()->SetFaultInjector(&fi);

  MaintenanceService::Options opts;
  opts.runner.max_retries = 0;  // the supervisor owns the whole retry policy
  opts.target_rows_per_query = 8;  // many small strips -> many fault draws
  opts.backoff.initial = std::chrono::microseconds(20);
  opts.backoff.max = std::chrono::microseconds(1000);
  MaintenanceService service(env_.views(), view_, opts);
  service.Start();
  RunUpdates(30, 8);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));

  // Let the burst end and verify the service recovered fully.
  fi.set_armed(false);
  RunUpdates(5, 9);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  EXPECT_EQ(service.Health(), DriverHealth::kRunning);
  EXPECT_EQ(service.propagate_health(), DriverHealth::kRunning);
  ASSERT_OK(service.Stop());  // no terminal error despite the burst

  DriverStats ps = service.propagate_driver_stats();
  EXPECT_GT(ps.steps, 0u);
  EXPECT_GT(ps.transient_errors, 0u);
  EXPECT_GT(ps.errors_aborted, 0u);
  EXPECT_GT(ps.recoveries, 0u);
  EXPECT_GT(ps.backoff_nanos, 0u);
  EXPECT_GT(fi.GetStats().injected_aborts, 0u);
  EXPECT_TRUE(service.last_error().IsTxnAborted());  // observable history
  EXPECT_TRUE(MvMatchesOracle());
  env_.db()->SetFaultInjector(nullptr);
}

TEST_F(MaintenanceTest, PermanentFailureSurfacesAndRestartClearsIt) {
  FaultInjector::Options fopts;
  fopts.commit_abort_probability = 1.0;
  FaultInjector fi(fopts);
  env_.db()->SetFaultInjector(&fi);

  MaintenanceService::Options opts;
  opts.runner.max_retries = 0;
  opts.degraded_after = 2;
  opts.failed_after = 4;
  opts.backoff.initial = std::chrono::microseconds(20);
  opts.backoff.max = std::chrono::microseconds(500);
  MaintenanceService service(env_.views(), view_, opts);
  RunUpdates(5, 10);
  service.Start();
  while (service.propagate_health() != DriverHealth::kFailed) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(service.Health(), DriverHealth::kFailed);
  EXPECT_TRUE(service.last_error().IsTxnAborted());
  // Drain against a failed driver reports the driver's error, not a hang.
  Status drain = service.Drain(env_.db()->stable_csn());
  EXPECT_TRUE(drain.IsTxnAborted()) << drain.ToString();
  Status stop = service.Stop();
  EXPECT_TRUE(stop.IsTxnAborted()) << stop.ToString();
  DriverStats ps = service.propagate_driver_stats();
  EXPECT_GE(ps.transient_errors, 3u);  // the failures before giving up
  EXPECT_GE(ps.degraded_entries, 1u);  // walked through kDegraded

  // Restart after the fault cleared: no stale error from the previous run.
  fi.set_armed(false);
  service.Start();
  EXPECT_OK(service.last_error());
  EXPECT_EQ(service.propagate_health(), DriverHealth::kRunning);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
  env_.db()->SetFaultInjector(nullptr);
}

TEST_F(MaintenanceTest, RestartAfterPermanentFailureResumesFromCursors) {
  // Progress a first service to a frontier and destroy it; then fail a
  // second service permanently under a 100% injected-abort storm. Every
  // (re)start in this sequence must pick up from the view's durable cursor
  // state -- never from CSN 0. A restart that re-propagated the old strips
  // would duplicate their view-delta rows and break the oracle check.
  RunUpdates(8, 21);
  ASSERT_OK(env_.capture()->WaitForCsn(env_.db()->stable_csn()));
  {
    MaintenanceService warm(env_.views(), view_);
    ASSERT_OK(warm.Drain(env_.db()->stable_csn()));
  }  // destroyed: the propagator is gone, only the cursor state survives
  Csn h1 = view_->high_water_mark();
  CursorState resume = view_->LoadCursors();
  ASSERT_TRUE(resume.valid);
  uint64_t seq1 = resume.next_step_seq;
  ASSERT_GT(seq1, 1u);

  FaultInjector::Options fopts;
  fopts.seed = 0x5eed;
  fopts.commit_abort_probability = 1.0;  // nothing can commit
  FaultInjector fi(fopts);
  env_.db()->SetFaultInjector(&fi);

  MaintenanceService::Options opts;
  opts.runner.max_retries = 0;
  opts.failed_after = 3;
  opts.backoff.initial = std::chrono::microseconds(20);
  opts.backoff.max = std::chrono::microseconds(200);
  MaintenanceService service(env_.views(), view_, opts);
  // Fresh construction resumed from the cursors: the hwm did not reset.
  EXPECT_EQ(view_->high_water_mark(), h1);

  RunUpdates(6, 22);
  service.Start();
  while (service.propagate_health() != DriverHealth::kFailed) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Status stop = service.Stop();
  EXPECT_FALSE(stop.ok());
  EXPECT_GE(view_->high_water_mark(), h1);  // failure never regressed it

  // Fault cleared: the same service restarts and finishes the job from
  // wherever the failed run got to.
  fi.set_armed(false);
  service.Start();
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
  EXPECT_GT(view_->high_water_mark(), h1);
  CursorState after = view_->LoadCursors();
  EXPECT_GE(after.next_step_seq, seq1);  // step sequence continued
  env_.db()->SetFaultInjector(nullptr);
}

TEST_F(MaintenanceTest, RetentionServicePrunesInBackground) {
  MaintenanceService service(env_.views(), view_);
  RetentionService retention(env_.views(), RetentionOptions{},
                             std::chrono::milliseconds(5));
  service.Start();
  retention.Start();
  RunUpdates(25, 7);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  // Give retention a few periods after the drain.
  uint64_t passes = retention.passes();
  while (retention.passes() < passes + 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  retention.Stop();
  ASSERT_OK(service.Stop());
  EXPECT_TRUE(MvMatchesOracle());
  // Everything at or below the MV time is gone.
  EXPECT_EQ(env_.db()->delta(workload_.r)->CountInRange(
                CsnRange{0, view_->mv->csn()}),
            0u);
  EXPECT_GT(retention.passes(), 0u);
}

}  // namespace
}  // namespace rollview
