// IntervalController: AIMD target adjustment and the staleness-SLO shedding
// state machine, driven entirely by synthetic ContentionSnapshot sequences.
// The controller is clock-free, so every test here is deterministic.

#include "ivm/interval_policy.h"

#include <gtest/gtest.h>

namespace rollview {
namespace {

ContentionSnapshot Calm(Csn staleness = 0) {
  ContentionSnapshot s;
  s.steps = 1;
  s.staleness = staleness;
  return s;
}

ContentionSnapshot OltpContended(Csn staleness = 0, uint64_t waits = 2) {
  ContentionSnapshot s = Calm(staleness);
  s.oltp_waits = waits;
  return s;
}

TEST(IntervalControllerTest, StartsAtClampedInitialTarget) {
  IntervalController::Options opts;
  opts.initial_target_rows = 10000;
  opts.max_target_rows = 4096;
  EXPECT_EQ(IntervalController(opts).target_rows(), 4096u);
  opts.initial_target_rows = 1;
  opts.min_target_rows = 16;
  EXPECT_EQ(IntervalController(opts).target_rows(), 16u);
}

TEST(IntervalControllerTest, ShrinksMultiplicativelyOnOltpWaits) {
  IntervalController::Options opts;
  opts.initial_target_rows = 256;
  opts.min_target_rows = 16;
  opts.shrink_factor = 0.5;
  IntervalController c(opts);
  c.Observe(OltpContended());
  EXPECT_EQ(c.target_rows(), 128u);
  c.Observe(OltpContended());
  EXPECT_EQ(c.target_rows(), 64u);
  // Timeouts count toward the same OLTP-suffering signal as waits.
  ContentionSnapshot timeouts = Calm();
  timeouts.oltp_timeouts = 1;
  c.Observe(timeouts);
  EXPECT_EQ(c.target_rows(), 32u);
  IntervalController::Stats st = c.GetStats();
  EXPECT_EQ(st.observations, 3u);
  EXPECT_EQ(st.shrinks, 3u);
  EXPECT_EQ(st.grows, 0u);
}

TEST(IntervalControllerTest, ClampsAtMinUnderSustainedContention) {
  IntervalController::Options opts;
  opts.initial_target_rows = 64;
  opts.min_target_rows = 16;
  IntervalController c(opts);
  for (int i = 0; i < 10; ++i) c.Observe(OltpContended());
  EXPECT_EQ(c.target_rows(), 16u);
  // At the floor further contention is not counted as a shrink.
  EXPECT_EQ(c.GetStats().shrinks, 2u);  // 64 -> 32 -> 16
}

TEST(IntervalControllerTest, GrowsAdditivelyWhenCalmAndClampsAtMax) {
  IntervalController::Options opts;
  opts.initial_target_rows = 256;
  opts.grow_rows = 32;
  opts.max_target_rows = 300;
  IntervalController c(opts);
  c.Observe(Calm());
  EXPECT_EQ(c.target_rows(), 288u);
  c.Observe(Calm());
  EXPECT_EQ(c.target_rows(), 300u);
  c.Observe(Calm());
  EXPECT_EQ(c.target_rows(), 300u);
  EXPECT_EQ(c.GetStats().grows, 2u);
}

TEST(IntervalControllerTest, MaintenanceVictimAbortsShrink) {
  IntervalController::Options opts;
  opts.initial_target_rows = 256;
  IntervalController c(opts);
  ContentionSnapshot s = Calm();
  s.maintenance_deadlock_victims = 1;
  c.Observe(s);
  EXPECT_EQ(c.target_rows(), 128u);
  // Maintenance *waits* alone are not contention: waiting is fine, losing
  // deadlocks is not.
  ContentionSnapshot w = Calm();
  w.maintenance_waits = 50;
  c.Observe(w);
  EXPECT_EQ(c.target_rows(), 128u + opts.grow_rows);
}

TEST(IntervalControllerTest, ThresholdsGateTheSignals) {
  IntervalController::Options opts;
  opts.initial_target_rows = 256;
  opts.oltp_wait_threshold = 5;
  opts.victim_threshold = 3;
  IntervalController c(opts);
  c.Observe(OltpContended(0, /*waits=*/4));  // below threshold -> calm
  EXPECT_EQ(c.target_rows(), 256u + opts.grow_rows);
  c.Observe(OltpContended(0, /*waits=*/5));  // at threshold -> shrink
  EXPECT_EQ(c.target_rows(), (256u + opts.grow_rows) / 2);
}

TEST(IntervalControllerTest, TransientStepFailureShrinksImmediately) {
  IntervalController::Options opts;
  opts.initial_target_rows = 256;
  opts.min_target_rows = 16;
  IntervalController c(opts);
  c.OnTransientStepFailure();
  EXPECT_EQ(c.target_rows(), 128u);
  IntervalController::Stats st = c.GetStats();
  EXPECT_EQ(st.transient_shrinks, 1u);
  EXPECT_EQ(st.observations, 0u);  // not an observation window
  // A windowed step_transient_failures count is also a contention signal.
  ContentionSnapshot s = Calm();
  s.step_transient_failures = 1;
  c.Observe(s);
  EXPECT_EQ(c.target_rows(), 64u);
}

TEST(IntervalControllerTest, PacingEscalatesUnderContentionAndDecaysCalm) {
  IntervalController::Options opts;
  opts.pause_initial = std::chrono::microseconds(500);
  opts.pause_max = std::chrono::microseconds(2000);
  IntervalController c(opts);
  EXPECT_EQ(c.recommended_pause().count(), 0);
  c.Observe(OltpContended());
  EXPECT_EQ(c.recommended_pause().count(), 500);
  c.Observe(OltpContended());
  EXPECT_EQ(c.recommended_pause().count(), 1000);
  // A transient step failure escalates through the same ladder ...
  c.OnTransientStepFailure();
  EXPECT_EQ(c.recommended_pause().count(), 2000);
  // ... and is capped at pause_max.
  c.Observe(OltpContended());
  EXPECT_EQ(c.recommended_pause().count(), 2000);
  EXPECT_EQ(c.GetStats().pace_escalations, 4u);
  // Calm windows halve the pause; below pause_initial it snaps to zero.
  c.Observe(Calm());
  EXPECT_EQ(c.recommended_pause().count(), 1000);
  c.Observe(Calm());
  EXPECT_EQ(c.recommended_pause().count(), 500);
  c.Observe(Calm());
  EXPECT_EQ(c.recommended_pause().count(), 0);
}

TEST(IntervalControllerTest, PacingStaysLiveAtTheRowFloor) {
  // At min_target_rows the row knob is exhausted; the pause must still
  // escalate -- it is the only remaining contention lever.
  IntervalController::Options opts;
  opts.initial_target_rows = 16;
  opts.min_target_rows = 16;
  opts.pause_initial = std::chrono::microseconds(100);
  IntervalController c(opts);
  c.OnTransientStepFailure();
  c.OnTransientStepFailure();
  EXPECT_EQ(c.target_rows(), 16u);
  EXPECT_EQ(c.GetStats().transient_shrinks, 0u);  // nothing to shrink
  EXPECT_EQ(c.recommended_pause().count(), 200);
}

TEST(IntervalControllerTest, PacingDisabledWhenInitialIsZero) {
  IntervalController::Options opts;
  opts.pause_initial = std::chrono::microseconds(0);
  IntervalController c(opts);
  c.OnTransientStepFailure();
  for (int i = 0; i < 5; ++i) c.Observe(OltpContended());
  EXPECT_EQ(c.recommended_pause().count(), 0);
  EXPECT_EQ(c.GetStats().pace_escalations, 0u);
}

TEST(IntervalControllerTest, SloDisabledMeansNoSheddingEver) {
  IntervalController c;  // staleness_slo = 0
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(c.Observe(OltpContended(/*staleness=*/1000000)));
  }
  EXPECT_FALSE(c.shedding());
  EXPECT_EQ(c.GetStats().slo_violations, 0u);
}

TEST(IntervalControllerTest, ShedsAfterConsecutiveContendedViolations) {
  IntervalController::Options opts;
  opts.staleness_slo = 100;
  opts.violations_to_shed = 3;
  IntervalController c(opts);
  EXPECT_FALSE(c.Observe(OltpContended(/*staleness=*/200)));
  EXPECT_FALSE(c.Observe(OltpContended(200)));
  EXPECT_FALSE(c.shedding());
  EXPECT_TRUE(c.Observe(OltpContended(200)));  // third strike: state change
  EXPECT_TRUE(c.shedding());
  IntervalController::Stats st = c.GetStats();
  EXPECT_EQ(st.slo_violations, 3u);
  EXPECT_EQ(st.shed_entries, 1u);
  EXPECT_EQ(st.shed_exits, 0u);
}

TEST(IntervalControllerTest, QuietButStaleDoesNotShed) {
  // Staleness without contention means the intervals are too small, not
  // that load must be shed; the controller grows instead.
  IntervalController::Options opts;
  opts.staleness_slo = 100;
  opts.violations_to_shed = 1;
  opts.initial_target_rows = 64;
  IntervalController c(opts);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(c.Observe(Calm(/*staleness=*/100000)));
  }
  EXPECT_FALSE(c.shedding());
  EXPECT_EQ(c.target_rows(), 64u + 10 * opts.grow_rows);
}

TEST(IntervalControllerTest, ViolationStreakResetsOnCleanWindow) {
  IntervalController::Options opts;
  opts.staleness_slo = 100;
  opts.violations_to_shed = 3;
  IntervalController c(opts);
  c.Observe(OltpContended(200));
  c.Observe(OltpContended(200));
  c.Observe(Calm(0));  // streak broken
  c.Observe(OltpContended(200));
  c.Observe(OltpContended(200));
  EXPECT_FALSE(c.shedding());
  c.Observe(OltpContended(200));
  EXPECT_TRUE(c.shedding());
}

TEST(IntervalControllerTest, RecoveryIsHysteretic) {
  IntervalController::Options opts;
  opts.staleness_slo = 100;
  opts.violations_to_shed = 1;
  opts.ok_to_recover = 3;
  opts.recover_fraction = 0.5;  // must dip to <= 50 to count
  IntervalController c(opts);
  ASSERT_TRUE(c.Observe(OltpContended(200)));
  ASSERT_TRUE(c.shedding());

  // Back under the SLO but above the recovery band: not good enough.
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(c.Observe(Calm(80)));
  EXPECT_TRUE(c.shedding());

  // Two good windows, then a regression: the ok-streak resets.
  EXPECT_FALSE(c.Observe(Calm(40)));
  EXPECT_FALSE(c.Observe(Calm(40)));
  EXPECT_FALSE(c.Observe(Calm(80)));
  EXPECT_FALSE(c.Observe(Calm(40)));
  EXPECT_FALSE(c.Observe(Calm(40)));
  EXPECT_TRUE(c.shedding());
  EXPECT_TRUE(c.Observe(Calm(40)));  // third consecutive: recovered
  EXPECT_FALSE(c.shedding());
  IntervalController::Stats st = c.GetStats();
  EXPECT_EQ(st.shed_entries, 1u);
  EXPECT_EQ(st.shed_exits, 1u);
}

TEST(IntervalControllerTest, ReshedAfterRecoveryWorks) {
  IntervalController::Options opts;
  opts.staleness_slo = 10;
  opts.violations_to_shed = 1;
  opts.ok_to_recover = 1;
  opts.recover_fraction = 1.0;
  IntervalController c(opts);
  EXPECT_TRUE(c.Observe(OltpContended(20)));
  EXPECT_TRUE(c.Observe(Calm(5)));
  EXPECT_FALSE(c.shedding());
  EXPECT_TRUE(c.Observe(OltpContended(20)));
  EXPECT_TRUE(c.shedding());
  EXPECT_EQ(c.GetStats().shed_entries, 2u);
}

}  // namespace
}  // namespace rollview
