// Online consistency scrubbing: the digest algebra (order-independent,
// count-linear, bucket-localized), clean passes, detection and three-way
// adjudication of injected damage (MV row bit flips vs digest tampering),
// the quarantine read policies, and self-healing repair via checkpoint +
// WAL-suffix replay.

#include "ivm/scrub.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "common/fault_injector.h"
#include "harness/mv_reader.h"
#include "ivm/checkpoint.h"
#include "ivm/digest.h"
#include "ivm/maintenance.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

Tuple MakeTuple(int64_t a, int64_t b) {
  return Tuple{Value(a), Value(b)};
}

std::vector<WalRecord> WalRecordsOfKind(Db* db, WalRecord::Kind kind) {
  std::vector<WalRecord> all;
  db->wal()->ReadFrom(0, 1u << 24, &all);
  std::vector<WalRecord> out;
  for (WalRecord& rec : all) {
    if (rec.kind == kind) out.push_back(std::move(rec));
  }
  return out;
}

std::vector<ViewScrubBlob> ScrubBlobs(Db* db) {
  std::vector<ViewScrubBlob> out;
  for (const WalRecord& rec :
       WalRecordsOfKind(db, WalRecord::Kind::kViewScrub)) {
    ViewScrubBlob blob;
    EXPECT_TRUE(rec.blob != nullptr && DecodeViewScrubBlob(*rec.blob, &blob));
    out.push_back(std::move(blob));
  }
  return out;
}

std::vector<ViewQuarantineBlob> QuarantineBlobs(Db* db) {
  std::vector<ViewQuarantineBlob> out;
  for (const WalRecord& rec :
       WalRecordsOfKind(db, WalRecord::Kind::kViewQuarantine)) {
    ViewQuarantineBlob blob;
    EXPECT_TRUE(rec.blob != nullptr &&
                DecodeViewQuarantineBlob(*rec.blob, &blob));
    out.push_back(std::move(blob));
  }
  return out;
}

// --- Digest algebra ---

TEST(ViewDigestTest, OrderIndependentAndCountLinear) {
  // Build the same multiset along three different update orders; every
  // path must land on the same digest, and each must equal the full
  // recompute -- the phi-multiset algebra of Def. 4.2 restated for digests.
  CountMap contents;
  for (int64_t i = 0; i < 40; ++i) contents[MakeTuple(i, i * 7)] = (i % 5) + 1;
  ViewDigest recompute = ViewDigest::Compute(contents);

  std::vector<std::pair<Tuple, int64_t>> items(contents.begin(),
                                               contents.end());
  for (uint64_t seed : {1u, 2u, 3u}) {
    std::shuffle(items.begin(), items.end(), std::mt19937(seed));
    ViewDigest d;
    for (const auto& [tuple, count] : items) {
      // Count-linear: walk to the final count in two hops.
      int64_t mid = count / 2;
      d.Update(tuple, 0, mid);
      d.Update(tuple, mid, count);
    }
    EXPECT_EQ(d, recompute);
  }
}

TEST(ViewDigestTest, ZeroCountsVanish) {
  ViewDigest d;
  d.Update(MakeTuple(1, 2), 0, 3);
  d.Update(MakeTuple(4, 5), 0, 1);
  d.Update(MakeTuple(1, 2), 3, 0);
  d.Update(MakeTuple(4, 5), 1, 0);
  EXPECT_EQ(d, ViewDigest{});
  EXPECT_EQ(d.total_rows(), 0);
}

TEST(ViewDigestTest, DamageIsBucketLocal) {
  CountMap contents;
  for (int64_t i = 0; i < 64; ++i) contents[MakeTuple(i, i)] = 1;
  ViewDigest before = ViewDigest::Compute(contents);

  Tuple victim = MakeTuple(11, 11);
  contents[victim] = 2;  // silent multiplicity change
  ViewDigest after = ViewDigest::Compute(contents);

  uint32_t damaged = ViewDigest::BucketOf(victim);
  for (uint32_t b = 0; b < ViewDigest::kBuckets; ++b) {
    if (b == damaged) {
      EXPECT_NE(before.bucket(b), after.bucket(b));
    } else {
      EXPECT_EQ(before.bucket(b), after.bucket(b));
    }
  }
}

TEST(ViewDigestTest, TamperFlipsExactlyOneBucket) {
  CountMap contents;
  for (int64_t i = 0; i < 32; ++i) contents[MakeTuple(i, i + 1)] = 1;
  ViewDigest d = ViewDigest::Compute(contents);
  ViewDigest pristine = d;
  d.FlipBitForTest(123);
  EXPECT_NE(d, pristine);
  int differing = 0;
  for (uint32_t b = 0; b < ViewDigest::kBuckets; ++b) {
    if (d.bucket(b) != pristine.bucket(b)) ++differing;
  }
  EXPECT_EQ(differing, 1);
}

// --- Scrub passes against a live view ---

class ScrubTest : public ::testing::Test {
 protected:
  ScrubTest()
      : env_([] {
          CaptureOptions copts;
          copts.truncate_wal = false;  // repair replays the WAL
          return copts;
        }()) {}

  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 60, 30, 8, /*seed=*/5));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
  }

  // Runs `n` update transactions and drains maintenance to the frontier,
  // so the view has delta/cursor/applied WAL history past its initial
  // checkpoint.
  void Advance(int n, uint64_t seed) {
    UpdateStream updates(env_.db(), workload_.RStream(1, seed), seed);
    ASSERT_OK(updates.RunTransactions(n));
    env_.CatchUpCapture();
    MaintenanceService::Options mopts;
    mopts.target_rows_per_query = 8;
    MaintenanceService service(env_.views(), view_, mopts);
    ASSERT_OK(service.Drain(env_.db()->stable_csn()));
    ASSERT_OK(service.Stop());
  }

  ScrubOptions FullSweep(DeepCheckMode mode = DeepCheckMode::kOnMismatch) {
    ScrubOptions o;
    o.buckets_per_pass = ViewDigest::kBuckets;  // one pass covers everything
    o.deep_check = mode;
    return o;
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
};

TEST_F(ScrubTest, CleanPassesStayClean) {
  Advance(10, 21);
  Scrubber scrubber(env_.views(), view_, ScrubOptions{});
  // Four passes at the default 4 buckets/pass cover all 16 buckets.
  for (int i = 0; i < 4; ++i) {
    ScrubOutcome outcome = ScrubOutcome::kRepairFailed;
    ASSERT_OK(scrubber.Pass(&outcome));
    EXPECT_EQ(outcome, ScrubOutcome::kClean);
  }
  ScrubStats stats = scrubber.GetStats();
  EXPECT_EQ(stats.passes, 4u);
  EXPECT_EQ(stats.buckets_checked, ViewDigest::kBuckets);
  EXPECT_EQ(stats.mismatches, 0u);
  EXPECT_EQ(stats.deep_checks, 0u);
  EXPECT_EQ(stats.quarantines, 0u);
  EXPECT_FALSE(view_->quarantined());
  EXPECT_TRUE(ScrubBlobs(env_.db()).empty());
}

TEST_F(ScrubTest, DetectsAndRepairsMvRowCorruption) {
  Advance(12, 22);
  DeltaRows oracle_before =
      OracleViewState(env_.db(), view_, view_->mv->csn());

  ASSERT_TRUE(view_->mv->CorruptRowBit(/*seed=*/7));
  Scrubber scrubber(env_.views(), view_, FullSweep());
  ScrubOutcome outcome = ScrubOutcome::kClean;
  ASSERT_OK(scrubber.Pass(&outcome));
  EXPECT_EQ(outcome, ScrubOutcome::kRepaired);

  // Repaired, verified, quarantine cleared; contents match the oracle.
  EXPECT_FALSE(view_->quarantined());
  EXPECT_TRUE(NetEquivalent(oracle_before, view_->mv->AsDeltaRows()));
  EXPECT_EQ(view_->mv->digest(),
            ViewDigest::Compute(view_->mv->Contents()));

  ScrubStats stats = scrubber.GetStats();
  EXPECT_EQ(stats.mismatches, 1u);
  EXPECT_GE(stats.deep_checks, 1u);
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(stats.repairs, 1u);
  EXPECT_EQ(stats.digest_resets, 0u);
  EXPECT_EQ(stats.repair_failures, 0u);

  // Audit trail: mismatch then repaired, quarantine entered then cleared.
  std::vector<ViewScrubBlob> scrubs = ScrubBlobs(env_.db());
  ASSERT_EQ(scrubs.size(), 2u);
  EXPECT_EQ(scrubs[0].outcome, "mismatch");
  EXPECT_EQ(scrubs[1].outcome, "repaired");
  EXPECT_EQ(scrubs[0].view_name, "V");
  std::vector<ViewQuarantineBlob> quarantines = QuarantineBlobs(env_.db());
  ASSERT_EQ(quarantines.size(), 2u);
  EXPECT_TRUE(quarantines[0].entered);
  EXPECT_FALSE(quarantines[1].entered);

  // A follow-up pass is clean.
  ASSERT_OK(scrubber.Pass(&outcome));
  EXPECT_EQ(outcome, ScrubOutcome::kClean);
}

TEST_F(ScrubTest, TamperedDigestIsRepairedInPlace) {
  Advance(8, 23);
  CountMap contents_before = view_->mv->Contents();

  view_->mv->TamperDigest(/*seed=*/3);
  Scrubber scrubber(env_.views(), view_, FullSweep());
  ScrubOutcome outcome = ScrubOutcome::kClean;
  ASSERT_OK(scrubber.Pass(&outcome));
  EXPECT_EQ(outcome, ScrubOutcome::kDigestRepaired);

  // The oracle vouched for the contents: no quarantine, no replay, just a
  // digest rebuild. Readers never saw damage.
  EXPECT_FALSE(view_->quarantined());
  EXPECT_EQ(view_->mv->Contents(), contents_before);
  EXPECT_EQ(view_->mv->digest(),
            ViewDigest::Compute(view_->mv->Contents()));
  ScrubStats stats = scrubber.GetStats();
  EXPECT_EQ(stats.mismatches, 1u);
  EXPECT_EQ(stats.digest_resets, 1u);
  EXPECT_EQ(stats.quarantines, 0u);
  EXPECT_EQ(stats.repairs, 0u);
  std::vector<ViewScrubBlob> scrubs = ScrubBlobs(env_.db());
  ASSERT_EQ(scrubs.size(), 2u);
  EXPECT_EQ(scrubs[1].outcome, "digest_reset");
}

TEST_F(ScrubTest, WithoutOracleTamperIsConservativelyRepaired) {
  Advance(8, 24);
  view_->mv->TamperDigest(/*seed=*/9);
  // kNever: no oracle to adjudicate, so even digest-only damage takes the
  // conservative quarantine + replay path -- correctness over cheapness.
  Scrubber scrubber(env_.views(), view_, FullSweep(DeepCheckMode::kNever));
  ScrubOutcome outcome = ScrubOutcome::kClean;
  ASSERT_OK(scrubber.Pass(&outcome));
  EXPECT_EQ(outcome, ScrubOutcome::kRepaired);
  EXPECT_FALSE(view_->quarantined());
  ScrubStats stats = scrubber.GetStats();
  EXPECT_EQ(stats.deep_checks, 0u);
  EXPECT_EQ(stats.quarantines, 1u);
  EXPECT_EQ(stats.repairs, 1u);
  EXPECT_EQ(view_->mv->digest(),
            ViewDigest::Compute(view_->mv->Contents()));
}

TEST_F(ScrubTest, QuarantineGatesFailFastReadsUntilRepair) {
  Advance(8, 25);
  ASSERT_TRUE(view_->mv->CorruptRowBit(/*seed=*/11));

  // repair=false: detection quarantines and stops.
  ScrubOptions opts = FullSweep();
  opts.repair = false;
  Scrubber scrubber(env_.views(), view_, opts);
  ScrubOutcome outcome = ScrubOutcome::kClean;
  ASSERT_OK(scrubber.Pass(&outcome));
  EXPECT_EQ(outcome, ScrubOutcome::kQuarantined);
  ASSERT_TRUE(view_->quarantined());
  auto [bucket, reason] = view_->quarantine_info();
  EXPECT_FALSE(reason.empty());
  EXPECT_LT(bucket, ViewDigest::kBuckets);

  // Default policy is fail-fast: reads bounce with a transient Busy.
  MvReader reader(env_.views(), view_);
  Status s = reader.ReadOnce();
  EXPECT_TRUE(s.IsBusy()) << s.ToString();
  EXPECT_TRUE(s.IsTransient());
  EXPECT_EQ(reader.quarantine_rejects(), 1u);

  // A pass on an already-quarantined view goes straight to repair once
  // repair is enabled.
  opts.repair = true;
  Scrubber repairer(env_.views(), view_, opts);
  ASSERT_OK(repairer.Pass(&outcome));
  EXPECT_EQ(outcome, ScrubOutcome::kRepaired);
  EXPECT_FALSE(view_->quarantined());
  ASSERT_OK(reader.ReadOnce());
  EXPECT_EQ(reader.quarantine_rejects(), 1u);
}

TEST(ScrubServeStaleTest, ServeStalePolicyReadsThroughQuarantine) {
  DbOptions dopts;
  dopts.quarantine_read_policy = QuarantineReadPolicy::kServeStale;
  Db db(dopts);
  CaptureOptions copts;
  copts.truncate_wal = false;
  LogCapture capture(&db, copts);
  ViewManager views(&db, &capture);

  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(&db, 40, 20, 8, /*seed=*/6));
  capture.CatchUp();
  ASSERT_OK_AND_ASSIGN(View* view, views.CreateView("V", workload.ViewDef()));
  ASSERT_OK(views.Materialize(view));

  view->Quarantine(3, "drill");
  MvReader reader(&views, view);
  ASSERT_OK(reader.ReadOnce());  // stale-but-available beats unavailable
  EXPECT_EQ(reader.quarantine_rejects(), 0u);
  view->ClearQuarantine();
}

TEST_F(ScrubTest, RepairSurfacesInjectedStorageFaultsAsTransient) {
  Advance(8, 26);
  ASSERT_TRUE(view_->mv->CorruptRowBit(/*seed=*/13));
  view_->Quarantine(0, "drill: detected by an earlier pass");

  // Every scoped WAL write fails (EIO): the repair's finishing checkpoint
  // inside RecoverView cannot commit, so the pass must surface a transient
  // error and KEEP the quarantine -- half-repaired is not repaired.
  FaultInjector::Options fopts;
  fopts.seed = 77;
  fopts.storage_eio_probability = 1.0;
  FaultInjector fi(fopts);
  env_.db()->SetFaultInjector(&fi);

  Scrubber scrubber(env_.views(), view_, FullSweep());
  ScrubOutcome outcome = ScrubOutcome::kClean;
  Status s = scrubber.Pass(&outcome);  // quarantined: goes straight to repair
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsTransient()) << s.ToString();
  EXPECT_TRUE(view_->quarantined());
  EXPECT_GT(fi.GetStats().injected_eio, 0u);

  fi.set_armed(false);
  ASSERT_OK(scrubber.Pass(&outcome));  // supervised retry: fault cleared
  EXPECT_EQ(outcome, ScrubOutcome::kRepaired);
  EXPECT_FALSE(view_->quarantined());
  EXPECT_TRUE(NetEquivalent(
      OracleViewState(env_.db(), view_, view_->mv->csn()),
      view_->mv->AsDeltaRows()));
  env_.db()->SetFaultInjector(nullptr);
}

}  // namespace
}  // namespace rollview
