// QueryRunner: the Execute primitive -- capture gating, stats
// classification, region recording, empty results, and the ComputeDelta
// recursion envelope without empty-range pruning.

#include "ivm/query_runner.h"

#include <gtest/gtest.h>

#include "ivm/compute_delta.h"
#include "ivm/region_tracker.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class QueryRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 20, 15, 4, 88));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
};

TEST_F(QueryRunnerTest, ExecutionTimeIsACommitCsn) {
  QueryRunner runner(env_.views(), view_);
  PropQuery q = PropQuery::AllBase(view_);
  q.terms[0] = PropTerm::Delta(0, view_->propagate_from.load());
  Csn before = env_.db()->stable_csn();
  ASSERT_OK_AND_ASSIGN(Csn t_exec, runner.Execute(q));
  EXPECT_GT(t_exec, before);
  EXPECT_EQ(t_exec, env_.db()->stable_csn());  // ours was the last commit
}

TEST_F(QueryRunnerTest, WaitsForCaptureBeforeReadingDeltaRanges) {
  // Commit a change but do NOT catch capture up manually; Execute must do
  // the waiting itself (the capture is polled inline by WaitForCsn).
  auto txn = env_.db()->Begin();
  ASSERT_OK(env_.db()->Insert(
      txn.get(), workload_.r,
      Tuple{Value(int64_t{900}), Value(int64_t{1}), Value(int64_t{1})}));
  ASSERT_OK(env_.db()->Commit(txn.get()));
  Csn committed = txn->commit_csn();
  ASSERT_LT(env_.capture()->high_water_mark(), committed);

  QueryRunner runner(env_.views(), view_);
  PropQuery q = PropQuery::AllBase(view_);
  q.terms[0] = PropTerm::Delta(committed - 1, committed);
  ASSERT_OK(runner.Execute(q).status());
  EXPECT_GE(env_.capture()->high_water_mark(), committed);
  EXPECT_EQ(runner.stats().rows_appended, view_->view_delta->size());
}

TEST_F(QueryRunnerTest, StatsClassifyForwardAndCompensation) {
  QueryRunner runner(env_.views(), view_);
  Csn t0 = view_->propagate_from.load();
  PropQuery fwd = PropQuery::AllBase(view_);
  fwd.terms[0] = PropTerm::Delta(0, t0);
  ASSERT_OK(runner.Execute(fwd).status());
  PropQuery comp = PropQuery::AllBase(view_, -1);
  comp.terms[0] = PropTerm::Delta(0, t0);
  comp.terms[1] = PropTerm::Delta(0, t0);
  ASSERT_OK(runner.Execute(comp).status());
  EXPECT_EQ(runner.stats().queries, 2u);
  EXPECT_EQ(runner.stats().forward_queries, 1u);
  EXPECT_EQ(runner.stats().comp_queries, 1u);
}

TEST_F(QueryRunnerTest, RegionRecordingUsesExecTimeForBaseTerms) {
  QueryRunner runner(env_.views(), view_);
  RegionTracker tracker;
  runner.set_region_tracker(&tracker);
  // The delta range must lie within captured history or Execute blocks
  // waiting for capture to reach it.
  Csn hi = view_->propagate_from.load();
  PropQuery q = PropQuery::AllBase(view_, -1);
  q.terms[1] = PropTerm::Delta(1, hi);
  ASSERT_OK_AND_ASSIGN(Csn t_exec, runner.Execute(q));
  auto regions = tracker.regions();
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].sign, -1);
  EXPECT_EQ(regions[0].extent[0], (CsnRange{0, t_exec}));
  EXPECT_EQ(regions[0].extent[1], (CsnRange{1, hi}));
}

TEST_F(QueryRunnerTest, ComputeDeltaRecursionEnvelopeWithoutPruning) {
  // Without empty-range pruning, ComputeDelta(Q, tau, t) over an n-term
  // all-base query issues f(n) = n * (1 + f(n-1)) queries when every
  // interval is considered non-empty... here intervals ARE empty so every
  // level still executes (pruning disabled). For n = 2: f(2) = 4.
  QueryRunner runner(env_.views(), view_);
  ComputeDeltaOptions opts;
  opts.skip_empty_ranges = false;
  ComputeDeltaOp op(&runner, opts);
  Csn t0 = view_->propagate_from.load();
  // Advance time so there is an interval to propagate over.
  auto txn = env_.db()->Begin();
  ASSERT_OK(env_.db()->Commit(txn.get()));
  env_.CatchUpCapture();
  ASSERT_OK(op.PropagateInterval(view_, t0, env_.db()->stable_csn()));
  EXPECT_EQ(op.stats().queries_issued, 4u);  // f(2) = 2 * (1 + f(1)) = 4
  EXPECT_EQ(op.stats().max_depth, 2u);
  EXPECT_EQ(op.stats().queries_skipped, 0u);
}

}  // namespace
}  // namespace rollview
