// Tests of PartitionedRollingPropagator: partitioned strips preserve the
// timed-delta invariant (Definition 4.2 per slice), the view-level
// high-water mark is the minimum over the strips, non-partitionable views
// are rejected (and MaintenanceService falls back to serial), and
// repartitioning is legal exactly from a settled uniform frontier.

#include "ivm/parallel_rolling.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ivm/maintenance.h"
#include "ivm/partition.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class ParallelRollingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), /*r_rows=*/60,
                                            /*s_rows=*/40, /*join_domain=*/8,
                                            /*seed=*/17));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
    t0_ = view_->propagate_from.load();
  }

  void RunUpdates(size_t txns, uint64_t seed) {
    UpdateStream r_stream(env_.db(), workload_.RStream(1, seed), seed);
    UpdateStream s_stream(env_.db(), workload_.SStream(2, seed + 1),
                          seed + 1);
    for (size_t i = 0; i < txns; ++i) {
      ASSERT_OK(r_stream.RunTransaction());
      if (i % 3 == 0) ASSERT_OK(s_stream.RunTransaction());
    }
    env_.CatchUpCapture();
  }

  PartitionedRollingPropagator::PolicyFactory UniformPolicies(Csn interval) {
    size_t n = view_->resolved.num_terms();
    return [n, interval]() {
      std::vector<std::unique_ptr<IntervalPolicy>> policies;
      for (size_t i = 0; i < n; ++i) {
        policies.push_back(std::make_unique<FixedInterval>(interval));
      }
      return policies;
    };
  }

  Result<std::unique_ptr<PartitionedRollingPropagator>> Make(
      uint32_t partitions, Csn interval = 5, WorkerPool* pool = nullptr) {
    ParallelRollingOptions options;
    options.partitions = partitions;
    options.pool = pool;
    return PartitionedRollingPropagator::Create(
        env_.views(), view_, UniformPolicies(interval), std::move(options));
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
  Csn t0_ = kNullCsn;
};

TEST_F(ParallelRollingTest, PartitionedPropagationSatisfiesInvariant) {
  RunUpdates(20, 41);
  Csn target = env_.capture()->high_water_mark();
  ASSERT_OK_AND_ASSIGN(auto prop, Make(4));
  EXPECT_EQ(prop->partitions(), 4u);
  ASSERT_OK(prop->RunUntil(target));
  EXPECT_GE(prop->high_water_mark(), target);
  EXPECT_GE(view_->high_water_mark(), target);
  // The strips' outputs must tile the serial result: the view delta as a
  // whole satisfies Definition 4.2 over every sampled sub-window.
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, target,
                                   /*stride=*/4));
}

TEST_F(ParallelRollingTest, HwmIsMinOverPartitions) {
  RunUpdates(12, 42);
  Csn target = env_.capture()->high_water_mark();
  ASSERT_OK_AND_ASSIGN(auto prop, Make(3, /*interval=*/4));
  Csn last = prop->high_water_mark();
  while (prop->high_water_mark() < target) {
    ASSERT_OK_AND_ASSIGN(bool any, prop->Step());
    if (!any) {
      ASSERT_OK_AND_ASSIGN(bool settled, prop->TryFinish());
      if (settled) break;
    }
    Csn hwm = prop->high_water_mark();
    EXPECT_GE(hwm, last) << "view-level mark went backwards";
    // The coordinator's mark is the min over the strips' local marks, and
    // the view never advertises more than that minimum.
    Csn min_strip = kMaxCsn;
    for (uint32_t p = 0; p < prop->partitions(); ++p) {
      min_strip = std::min(min_strip, prop->strip(p)->high_water_mark());
    }
    EXPECT_EQ(hwm, min_strip);
    EXPECT_LE(view_->high_water_mark(), min_strip);
    // Theorem 4.3 holds mid-flight at the partition-min mark.
    ASSERT_TRUE(CheckTimedDeltaWindow(env_.db(), view_, t0_, hwm));
    last = hwm;
  }
  EXPECT_GE(prop->high_water_mark(), target);
}

TEST_F(ParallelRollingTest, InterleavedUpdatesAndParallelRounds) {
  ASSERT_OK_AND_ASSIGN(auto prop, Make(4, /*interval=*/6));
  Csn target = t0_;
  for (int round = 0; round < 5; ++round) {
    RunUpdates(4, 500 + round);
    target = env_.capture()->high_water_mark();
    ASSERT_OK(prop->RunUntil(target));
  }
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, target,
                                   /*stride=*/6));
}

TEST_F(ParallelRollingTest, SharedPoolServesThePropagator) {
  RunUpdates(10, 43);
  Csn target = env_.capture()->high_water_mark();
  WorkerPool pool(2);
  ASSERT_OK_AND_ASSIGN(auto prop, Make(4, /*interval=*/5, &pool));
  ASSERT_OK(prop->RunUntil(target));
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, target,
                                   /*stride=*/5));
}

TEST_F(ParallelRollingTest, AggregateStatsSumOverStrips) {
  RunUpdates(12, 44);
  Csn target = env_.capture()->high_water_mark();
  ASSERT_OK_AND_ASSIGN(auto prop, Make(4));
  ASSERT_OK(prop->RunUntil(target));
  RunnerStats rs = prop->runner_stats();
  RollingPropagator::Stats roll = prop->rolling_stats();
  uint64_t strip_queries = 0;
  uint64_t strip_steps = 0;
  for (uint32_t p = 0; p < prop->partitions(); ++p) {
    strip_queries += prop->strip(p)->runner()->stats().queries;
    strip_steps += prop->strip(p)->rolling_stats().steps;
  }
  EXPECT_EQ(rs.queries, strip_queries);
  EXPECT_EQ(roll.steps, strip_steps);
  EXPECT_GT(rs.queries, 0u);
}

TEST_F(ParallelRollingTest, ZeroPartitionsRejected) {
  Result<std::unique_ptr<PartitionedRollingPropagator>> r = Make(0);
  EXPECT_FALSE(r.ok());
}

TEST_F(ParallelRollingTest, RepartitionFromSettledFrontierContinues) {
  RunUpdates(10, 45);
  Csn mid = env_.capture()->high_water_mark();
  {
    ASSERT_OK_AND_ASSIGN(auto prop, Make(2));
    ASSERT_OK(prop->RunUntil(mid));
    // Settle the tail so every strip reaches one uniform frontier.
    bool settled = false;
    while (!settled) {
      ASSERT_OK_AND_ASSIGN(settled, prop->TryFinish());
    }
  }
  uint64_t seq_before = 0;
  for (const auto& [p, state] : view_->LoadAllCursors()) {
    (void)p;
    seq_before = std::max(seq_before, state.next_step_seq);
  }

  // A different partition count resumes from the settled frontier.
  RunUpdates(8, 46);
  Csn target = env_.capture()->high_water_mark();
  ASSERT_OK_AND_ASSIGN(auto prop, Make(4));
  ASSERT_OK(prop->RunUntil(target));
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, target,
                                   /*stride=*/5));
  // The reseeded chains continued past the old generation's sequences, so
  // (partition, seq) stays globally unique across generations.
  for (const auto& [p, state] : view_->LoadAllCursors()) {
    (void)p;
    if (state.valid) {
      EXPECT_GE(state.next_step_seq, seq_before);
    }
  }
}

TEST_F(ParallelRollingTest, RepartitionFromUnsettledStateRefused) {
  RunUpdates(10, 47);
  {
    ASSERT_OK_AND_ASSIGN(auto prop, Make(2, /*interval=*/3));
    // Advance only strip 0: the two partitions' durable frontiers diverge,
    // which is exactly the state repartitioning must refuse.
    ASSERT_OK_AND_ASSIGN(bool advanced, prop->strip(0)->Step());
    ASSERT_TRUE(advanced);
  }
  Result<std::unique_ptr<PartitionedRollingPropagator>> r = Make(4);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
}

TEST_F(ParallelRollingTest, StarJoinIsNotPartitionable) {
  StarSchemaConfig config;
  config.num_dims = 2;
  config.dim_rows = 20;
  config.fact_rows = 100;
  config.prefix = "star_";
  ASSERT_OK_AND_ASSIGN(StarSchemaWorkload star,
                       StarSchemaWorkload::Create(env_.db(), config, 48));
  env_.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* sv,
                       env_.views()->CreateView("VStar", star.ViewDef()));
  ASSERT_OK(env_.views()->Materialize(sv));
  // No join-equivalence class touches both dimensions, so there is no
  // column set to hash-partition every term by.
  EXPECT_FALSE(ResolvePartitionColumns(sv->resolved).ok());
  ParallelRollingOptions options;
  options.partitions = 2;
  size_t n = sv->resolved.num_terms();
  Result<std::unique_ptr<PartitionedRollingPropagator>> r =
      PartitionedRollingPropagator::Create(
          env_.views(), sv,
          [n]() {
            std::vector<std::unique_ptr<IntervalPolicy>> policies;
            for (size_t i = 0; i < n; ++i) {
              policies.push_back(std::make_unique<FixedInterval>(5));
            }
            return policies;
          },
          std::move(options));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
}

// --- MaintenanceService integration ---

class PartitionedMaintenanceTest : public ParallelRollingTest {
 protected:
  ::testing::AssertionResult MvMatchesOracle() {
    DeltaRows oracle = OracleViewState(env_.db(), view_, view_->mv->csn());
    if (!NetEquivalent(oracle, view_->mv->AsDeltaRows())) {
      return ::testing::AssertionFailure() << "MV diverges from oracle";
    }
    return ::testing::AssertionSuccess();
  }
};

TEST_F(PartitionedMaintenanceTest, BackgroundPartitionedDriversDrain) {
  env_.StartCapture();
  MaintenanceService::Options opts;
  opts.propagate_partitions = 4;
  MaintenanceService service(env_.views(), view_, opts);
  EXPECT_EQ(service.propagate_partitions(), 4u);
  ASSERT_NE(service.parallel(), nullptr);
  EXPECT_OK(service.partition_fallback());
  service.Start();
  UpdateStream r_stream(env_.db(), workload_.RStream(1, 61), 61);
  UpdateStream s_stream(env_.db(), workload_.SStream(2, 62), 62);
  for (int i = 0; i < 25; ++i) {
    ASSERT_OK(r_stream.RunTransaction());
    if (i % 3 == 0) ASSERT_OK(s_stream.RunTransaction());
  }
  Csn target = env_.db()->stable_csn();
  ASSERT_OK(service.Drain(target));
  ASSERT_OK(service.Stop());
  EXPECT_GE(view_->mv->csn(), target);
  EXPECT_TRUE(MvMatchesOracle());
  EXPECT_GT(service.runner_stats()->queries, 0u);
  // Every partition slot published a mark, and the view's mark is their
  // minimum (never more).
  Csn min_slot = kMaxCsn;
  for (uint32_t p = 0; p < 4; ++p) {
    min_slot = std::min(min_slot, service.parallel()->partition_hwm(p));
  }
  EXPECT_GE(min_slot, target);
}

TEST_F(PartitionedMaintenanceTest, SynchronousPartitionedDrainWorks) {
  RunUpdates(12, 63);
  ASSERT_OK(env_.capture()->WaitForCsn(env_.db()->stable_csn()));
  MaintenanceService::Options opts;
  opts.propagate_partitions = 3;
  opts.checkpoint_every_steps = 2;
  MaintenanceService service(env_.views(), view_, opts);
  Csn target = env_.db()->stable_csn();
  ASSERT_OK(service.Drain(target));
  EXPECT_GE(view_->mv->csn(), target);
  EXPECT_TRUE(MvMatchesOracle());
  ASSERT_NE(service.checkpointer(), nullptr);
  EXPECT_GT(service.checkpointer()->checkpoints_written(), 0u);
}

TEST_F(PartitionedMaintenanceTest, NonPartitionableViewFallsBackToSerial) {
  StarSchemaConfig config;
  config.num_dims = 2;
  config.dim_rows = 20;
  config.fact_rows = 80;
  config.prefix = "fb_";
  ASSERT_OK_AND_ASSIGN(StarSchemaWorkload star,
                       StarSchemaWorkload::Create(env_.db(), config, 64));
  env_.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* sv,
                       env_.views()->CreateView("VFb", star.ViewDef()));
  ASSERT_OK(env_.views()->Materialize(sv));

  MaintenanceService::Options opts;
  opts.propagate_partitions = 4;
  MaintenanceService service(env_.views(), sv, opts);
  // Serial fallback, with the reason recorded.
  EXPECT_EQ(service.propagate_partitions(), 1u);
  EXPECT_EQ(service.parallel(), nullptr);
  EXPECT_FALSE(service.partition_fallback().ok());

  UpdateStream fact_stream(env_.db(), star.FactStream(1, 65), 65);
  for (int i = 0; i < 10; ++i) ASSERT_OK(fact_stream.RunTransaction());
  env_.CatchUpCapture();
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  DeltaRows oracle = OracleViewState(env_.db(), sv, sv->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, sv->mv->AsDeltaRows()));
}

TEST_F(PartitionedMaintenanceTest, PartitionMetricsExported) {
  env_.StartCapture();
  obs::MetricsRegistry registry;
  MaintenanceService::Options opts;
  opts.propagate_partitions = 2;
  opts.trace_journal_capacity = 64;
  MaintenanceService service(env_.views(), view_, opts);
  service.RegisterMetrics(&registry);
  service.Start();
  RunUpdates(10, 66);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  ASSERT_OK(service.Stop());

  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.GaugeValue("rollview_view_partitions", {{"view", "V"}}), 2);
  Csn view_hwm = view_->high_water_mark();
  for (uint32_t p = 0; p < 2; ++p) {
    const obs::Sample* hwm =
        snap.Find("rollview_view_partition_hwm_csn",
                  {{"view", "V"}, {"partition", std::to_string(p)}});
    ASSERT_NE(hwm, nullptr);
    EXPECT_GE(hwm->gauge, static_cast<int64_t>(view_hwm));
  }
  // The strips traced into the shared journal.
  ASSERT_NE(service.trace_journal(), nullptr);
  EXPECT_GT(service.trace_journal()->recorded(), 0u);
}

}  // namespace
}  // namespace rollview
