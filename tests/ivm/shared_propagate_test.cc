// SharedViewGroup: one propagation stream feeding several
// selection/projection variants of the same join.

#include "ivm/shared_propagate.h"

#include <gtest/gtest.h>

#include "ivm/apply.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class SharedPropagateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 40, 25, 6, 44));
    env_.CatchUpCapture();
    // Tests replay history through the carrier's delta, so keep it.
    SharedViewGroup::Options gopts;
    gopts.prune_carrier_delta = false;
    ASSERT_OK_AND_ASSIGN(group_,
                         SharedViewGroup::Create(env_.views(), "carrier",
                                                 workload_.ViewDef(), gopts));
    // Member 1: selection on R.rval parity-ish (rval >= threshold).
    SpjViewDef m1 = workload_.ViewDef();
    m1.selection = Expr::Compare(Expr::CmpOp::kGe, Expr::Column(2),
                                 Expr::Literal(Value(int64_t{1} << 62)));
    ASSERT_OK_AND_ASSIGN(big_, group_->AddMember("big_vals", m1));
    // Member 2: projection to (rkey, sval).
    SpjViewDef m2 = workload_.ViewDef();
    m2.projection = {0, 5};
    ASSERT_OK_AND_ASSIGN(narrow_, group_->AddMember("narrow", m2));
    ASSERT_OK(group_->MaterializeAll());
    t0_ = group_->carrier()->propagate_from.load();
  }

  void RunUpdates(size_t txns, uint64_t seed) {
    UpdateStream r_stream(env_.db(), workload_.RStream(seed, seed), seed);
    UpdateStream s_stream(env_.db(), workload_.SStream(seed + 60, seed + 1),
                          seed + 1);
    for (size_t i = 0; i < txns; ++i) {
      ASSERT_OK(r_stream.RunTransaction());
      if (i % 2 == 0) ASSERT_OK(s_stream.RunTransaction());
    }
    env_.CatchUpCapture();
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  std::unique_ptr<SharedViewGroup> group_;
  View* big_ = nullptr;
  View* narrow_ = nullptr;
  Csn t0_ = kNullCsn;
};

TEST_F(SharedPropagateTest, CreateValidation) {
  SpjViewDef filtered = workload_.ViewDef();
  filtered.selection = Expr::Literal(Value(int64_t{1}));
  EXPECT_TRUE(SharedViewGroup::Create(env_.views(), "bad", filtered)
                  .status()
                  .IsInvalidArgument());

  SpjViewDef other_joins = workload_.ViewDef();
  other_joins.joins[0].left_col = 0;
  EXPECT_TRUE(
      group_->AddMember("bad", other_joins).status().IsInvalidArgument());
}

TEST_F(SharedPropagateTest, MaterializeAllIsConsistent) {
  EXPECT_EQ(big_->mv->csn(), group_->carrier()->mv->csn());
  EXPECT_EQ(narrow_->mv->csn(), group_->carrier()->mv->csn());
  EXPECT_TRUE(NetEquivalent(OracleViewState(env_.db(), big_, big_->mv->csn()),
                            big_->mv->AsDeltaRows()));
  EXPECT_TRUE(
      NetEquivalent(OracleViewState(env_.db(), narrow_, narrow_->mv->csn()),
                    narrow_->mv->AsDeltaRows()));
}

TEST_F(SharedPropagateTest, MembersSatisfyInvariantAfterSharedPropagation) {
  RunUpdates(12, 1);
  Csn target = env_.capture()->high_water_mark();
  ASSERT_OK(group_->RunUntil(target));
  EXPECT_GE(group_->high_water_mark(), target);
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), group_->carrier(), t0_,
                                   target, 5));
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), big_, t0_, target, 5));
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), narrow_, t0_, target, 5));
}

TEST_F(SharedPropagateTest, MembersApplyIndependently) {
  RunUpdates(10, 2);
  Csn target = env_.capture()->high_water_mark();
  ASSERT_OK(group_->RunUntil(target));
  // Roll the narrow member halfway, the big member fully; the carrier's MV
  // stays put.
  Csn mid = t0_ + (big_->high_water_mark() - t0_) / 2;
  Applier narrow_applier(env_.views(), narrow_);
  ASSERT_OK(narrow_applier.RollTo(mid));
  Applier big_applier(env_.views(), big_);
  ASSERT_OK(big_applier.RollTo(big_->high_water_mark()));

  EXPECT_TRUE(
      NetEquivalent(OracleViewState(env_.db(), narrow_, mid),
                    narrow_->mv->AsDeltaRows()));
  EXPECT_TRUE(NetEquivalent(
      OracleViewState(env_.db(), big_, big_->mv->csn()),
      big_->mv->AsDeltaRows()));
  EXPECT_EQ(group_->carrier()->mv->csn(), t0_);
}

TEST_F(SharedPropagateTest, OnePropagationStreamForAllMembers) {
  RunUpdates(12, 3);
  Csn target = env_.capture()->high_water_mark();
  ASSERT_OK(group_->RunUntil(target));
  uint64_t shared_queries = group_->propagator()->runner()->stats().queries;

  // An equivalent independent view costs the same number of propagation
  // queries *per view*; the group pays once for both members.
  ASSERT_OK_AND_ASSIGN(View* solo,
                       env_.views()->CreateView("solo", workload_.ViewDef()));
  solo->propagate_from.store(t0_);
  solo->delta_hwm.store(t0_);
  std::vector<std::unique_ptr<IntervalPolicy>> ps;
  ps.push_back(std::make_unique<TargetRowsInterval>(256));
  ps.push_back(std::make_unique<TargetRowsInterval>(256));
  RollingPropagator solo_prop(env_.views(), solo, std::move(ps));
  ASSERT_OK(solo_prop.RunUntil(target));
  uint64_t solo_queries = solo_prop.runner()->stats().queries;

  EXPECT_LE(shared_queries, solo_queries * 2);
  EXPECT_GT(group_->stats().carrier_rows_distributed, 0u);
}

TEST(SharedPropagateDefaultsTest, CarrierPruningKeepsMembersCorrect) {
  TestEnv env;
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 30, 20, 5, 45));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(
      auto group,
      SharedViewGroup::Create(env.views(), "carrier", workload.ViewDef()));
  SpjViewDef proj = workload.ViewDef();
  proj.projection = {0, 5};
  ASSERT_OK_AND_ASSIGN(View* member, group->AddMember("m", proj));
  ASSERT_OK(group->MaterializeAll());
  Csn t0 = group->carrier()->propagate_from.load();

  UpdateStream stream(env.db(), workload.RStream(1, 5), 5);
  for (int round = 0; round < 5; ++round) {
    ASSERT_OK(stream.RunTransactions(4));
    env.CatchUpCapture();
    ASSERT_OK(group->RunUntil(env.capture()->high_water_mark()));
    // The carrier's delta stays bounded (pruned behind distribution)...
    EXPECT_EQ(group->carrier()->view_delta->CountInRange(
                  CsnRange{0, group->high_water_mark()}),
              0u);
  }
  // ...while members keep the full replayable history.
  EXPECT_TRUE(CheckTimedDeltaSweep(env.db(), member, t0,
                                   member->high_water_mark(), 4));
}

}  // namespace
}  // namespace rollview
