// SnapshotPropagator: Eq. 2 over MVCC time travel -- lock-free propagation.

#include "ivm/snapshot_propagate.h"

#include <gtest/gtest.h>

#include "ivm/apply.h"
#include "ivm/rolling.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class SnapshotPropagateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 40, 25, 6, 33));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
    t0_ = view_->propagate_from.load();
  }

  void RunUpdates(size_t txns, uint64_t seed) {
    UpdateStream r_stream(env_.db(), workload_.RStream(seed, seed), seed);
    UpdateStream s_stream(env_.db(), workload_.SStream(seed + 40, seed + 1),
                          seed + 1);
    for (size_t i = 0; i < txns; ++i) {
      ASSERT_OK(r_stream.RunTransaction());
      if (i % 2 == 0) ASSERT_OK(s_stream.RunTransaction());
    }
    env_.CatchUpCapture();
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
  Csn t0_ = kNullCsn;
};

TEST_F(SnapshotPropagateTest, Eq1FormIsFullyTimed) {
  RunUpdates(12, 1);
  Csn target = env_.capture()->high_water_mark();
  SnapshotPropagator prop(env_.views(), view_,
                          std::make_unique<FixedInterval>(5));
  ASSERT_OK(prop.RunUntil(target));
  EXPECT_GE(view_->high_water_mark(), target);
  // Eq. 1's inclusion-exclusion terms make every sub-window exact.
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, target, 4));
  EXPECT_EQ(prop.stats().exec.queries, prop.stats().intervals * 3);  // 2^2-1
}

TEST_F(SnapshotPropagateTest, Eq2FormIsExactOnlyAtIntervalBoundaries) {
  // The Sec. 3.3 granularity story, measured: without the all-delta
  // correction terms, the n-query Eq. 2 expansion is a correct delta
  // between interval endpoints but NOT inside intervals -- a pair whose
  // participants changed at different times within one interval is stamped
  // at the earliest change.
  RunUpdates(12, 1);
  Csn target = env_.capture()->high_water_mark();
  SnapshotPropagator prop(env_.views(), view_,
                          std::make_unique<FixedInterval>(5),
                          SnapshotForm::kEq2Endpoints);
  ASSERT_OK(prop.RunUntil(target));
  // Every (boundary, boundary] window is exact...
  const std::vector<Csn>& bounds = prop.boundaries();
  ASSERT_GE(bounds.size(), 3u);
  for (size_t i = 0; i + 1 < bounds.size(); ++i) {
    ASSERT_TRUE(
        CheckTimedDeltaWindow(env_.db(), view_, bounds[i], bounds[i + 1]));
  }
  ASSERT_TRUE(CheckTimedDeltaWindow(env_.db(), view_, bounds.front(),
                                    bounds.back()));
  // ...but at least one intra-interval window is not (with enough churn,
  // some interval contains a multi-relation pair change).
  bool some_interior_wrong = false;
  for (size_t i = 0; i + 1 < bounds.size() && !some_interior_wrong; ++i) {
    for (Csn b = bounds[i] + 1; b < bounds[i + 1]; ++b) {
      if (!CheckTimedDeltaWindow(env_.db(), view_, bounds[i], b)) {
        some_interior_wrong = true;
        break;
      }
    }
  }
  EXPECT_TRUE(some_interior_wrong)
      << "expected Eq.2's coarse timestamps to miss at least one interior "
         "window on this workload";
}

TEST_F(SnapshotPropagateTest, TakesNoLocks) {
  RunUpdates(10, 2);
  Csn target = env_.capture()->high_water_mark();
  env_.db()->lock_manager()->ResetStats();
  SnapshotPropagator prop(env_.views(), view_,
                          std::make_unique<DrainInterval>());
  ASSERT_OK(prop.RunUntil(target));
  // Zero contention: the propagator never touched the lock manager.
  EXPECT_EQ(env_.db()->lock_manager()->GetStats().acquires, 0u);
  EXPECT_TRUE(CheckTimedDeltaWindow(env_.db(), view_, t0_, target));
}

TEST_F(SnapshotPropagateTest, InterleavedWithUpdatesAndApply) {
  SnapshotPropagator prop(env_.views(), view_,
                          std::make_unique<TargetRowsInterval>(10));
  Applier applier(env_.views(), view_);
  Csn target = t0_;
  for (int round = 0; round < 5; ++round) {
    RunUpdates(4, 10 + round);
    target = env_.capture()->high_water_mark();
    ASSERT_OK(prop.RunUntil(target));
    ASSERT_OK(applier.RollTo(view_->high_water_mark()));
    DeltaRows oracle = OracleViewState(env_.db(), view_, view_->mv->csn());
    ASSERT_TRUE(NetEquivalent(oracle, view_->mv->AsDeltaRows()))
        << "round " << round;
  }
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, target, 6));
}

TEST_F(SnapshotPropagateTest, AgreesWithCompensationBasedPropagation) {
  RunUpdates(10, 3);
  Csn target = env_.capture()->high_water_mark();
  SnapshotPropagator snap(env_.views(), view_,
                          std::make_unique<FixedInterval>(4));
  ASSERT_OK(snap.RunUntil(target));
  DeltaRows snap_delta = view_->view_delta->Scan(CsnRange{t0_, target});

  ASSERT_OK_AND_ASSIGN(View* v2,
                       env_.views()->CreateView("V2", workload_.ViewDef()));
  v2->propagate_from.store(t0_);
  v2->delta_hwm.store(t0_);
  RollingPropagator rolling(env_.views(), v2, /*uniform_interval=*/4);
  ASSERT_OK(rolling.RunUntil(target));
  DeltaRows rolling_delta = v2->view_delta->Scan(CsnRange{t0_, target});

  EXPECT_TRUE(NetEquivalent(snap_delta, rolling_delta));
  // Per-window agreement too (both are timed delta tables).
  Csn mid = t0_ + (target - t0_) / 2;
  EXPECT_TRUE(NetEquivalent(
      NetEffect(view_->view_delta->Scan(CsnRange{t0_, mid})),
      NetEffect(v2->view_delta->Scan(CsnRange{t0_, mid}))));
}

TEST_F(SnapshotPropagateTest, GcBelowFrontierIsSafe) {
  SnapshotPropagator prop(env_.views(), view_,
                          std::make_unique<DrainInterval>());
  for (int round = 0; round < 4; ++round) {
    RunUpdates(4, 50 + round);
    ASSERT_OK(prop.RunUntil(env_.capture()->high_water_mark()));
    // Versions below the frontier are never time-traveled to again.
    env_.db()->GarbageCollect(prop.high_water_mark());
  }
  Applier applier(env_.views(), view_);
  ASSERT_OK(applier.RollTo(view_->high_water_mark()));
  DeltaRows oracle = OracleViewState(env_.db(), view_, view_->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view_->mv->AsDeltaRows()));
}

}  // namespace
}  // namespace rollview
