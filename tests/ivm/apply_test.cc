// The apply driver: point-in-time refresh, monotone rolls, wall-clock
// resolution through the unit-of-work table, pruning, and MV merge safety.

#include "ivm/apply.h"

#include <gtest/gtest.h>

#include "ivm/propagate.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class ApplyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 40, 30, 6, 3));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
    t0_ = view_->propagate_from.load();
  }

  // Update + propagate everything available; returns the settled HWM.
  Csn UpdateAndPropagate(size_t txns, uint64_t seed) {
    UpdateStream r_stream(env_.db(), workload_.RStream(seed % 97 + 1, seed),
                          seed);
    for (size_t i = 0; i < txns; ++i) {
      EXPECT_OK(r_stream.RunTransaction());
    }
    env_.CatchUpCapture();
    Csn target = env_.capture()->high_water_mark();
    Propagator prop(env_.views(), view_, std::make_unique<DrainInterval>());
    EXPECT_OK(prop.RunUntil(target));
    return view_->high_water_mark();
  }

  // The MV should equal the oracle state at its materialization time.
  ::testing::AssertionResult MvMatchesOracle() {
    DeltaRows oracle = OracleViewState(env_.db(), view_, view_->mv->csn());
    DeltaRows actual = view_->mv->AsDeltaRows();
    if (!NetEquivalent(oracle, actual)) {
      return ::testing::AssertionFailure()
             << "MV at csn " << view_->mv->csn() << " has "
             << actual.size() << " tuples, oracle has " << oracle.size();
    }
    return ::testing::AssertionSuccess();
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
  Csn t0_ = kNullCsn;
};

TEST_F(ApplyTest, InitialMaterializationMatchesOracle) {
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(ApplyTest, RollToLatestTracksUpdates) {
  Csn hwm = UpdateAndPropagate(10, 1);
  Applier applier(env_.views(), view_);
  ASSERT_OK_AND_ASSIGN(Csn rolled, applier.RollToLatest());
  EXPECT_EQ(rolled, hwm);
  EXPECT_EQ(view_->mv->csn(), hwm);
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(ApplyTest, PointInTimeRollsToInteriorPoints) {
  Csn hwm = UpdateAndPropagate(12, 2);
  Applier applier(env_.views(), view_);
  // Roll in three hops through interior points; each stop must match the
  // oracle exactly (transaction-consistent intermediate states).
  Csn third = t0_ + (hwm - t0_) / 3;
  Csn two_thirds = t0_ + 2 * (hwm - t0_) / 3;
  for (Csn stop : {third, two_thirds, hwm}) {
    ASSERT_OK(applier.RollTo(stop));
    EXPECT_EQ(view_->mv->csn(), stop);
    EXPECT_TRUE(MvMatchesOracle()) << "at stop " << stop;
  }
  EXPECT_EQ(applier.stats().rolls, 3u);
}

TEST_F(ApplyTest, EveryReachablePointIsConsistent) {
  Csn hwm = UpdateAndPropagate(8, 3);
  // A fresh applier per target since rolls are forward-only.
  for (Csn stop = t0_; stop <= hwm; ++stop) {
    Applier applier(env_.views(), view_);
    ASSERT_OK(applier.RollTo(stop));
    ASSERT_TRUE(MvMatchesOracle()) << "at stop " << stop;
    // Reset the MV for the next iteration by re-materializing state at t0.
    view_->mv->Replace(ToCountMap(OracleViewState(env_.db(), view_, t0_)),
                       t0_);
  }
}

TEST_F(ApplyTest, RollBackwardsRejected) {
  Csn hwm = UpdateAndPropagate(5, 4);
  Applier applier(env_.views(), view_);
  ASSERT_OK(applier.RollTo(hwm));
  Status s = applier.RollTo(hwm - 1);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(ApplyTest, RollBeyondHwmRejected) {
  Csn hwm = UpdateAndPropagate(5, 5);
  Applier applier(env_.views(), view_);
  Status s = applier.RollTo(hwm + 100);
  EXPECT_TRUE(s.IsOutOfRange()) << s.ToString();
}

TEST_F(ApplyTest, PruningKeepsFutureRollsIntact) {
  Csn hwm = UpdateAndPropagate(10, 6);
  ApplierOptions opts;
  opts.prune_view_delta = true;
  Applier applier(env_.views(), view_, opts);
  Csn mid = t0_ + (hwm - t0_) / 2;
  ASSERT_OK(applier.RollTo(mid));
  EXPECT_GT(applier.stats().rows_pruned, 0u);
  // Rows at or below mid are gone, but the rest still rolls correctly.
  ASSERT_OK(applier.RollTo(hwm));
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(ApplyTest, WallClockPointInTimeRefresh) {
  // The paper's 8:00pm scenario: pick a wall-clock instant between two
  // batches of updates and refresh the view to exactly that moment, hours
  // later. We use a fake clock to make the instants deterministic.
  auto base = std::chrono::system_clock::now();
  WallTime fake_now = base;
  env_.db()->SetWallClock([&fake_now] { return fake_now; });

  fake_now = base + std::chrono::hours(16);  // 4:00pm
  UpdateStream r1(env_.db(), workload_.RStream(50, 71), 71);
  ASSERT_OK(r1.RunTransactions(5));
  env_.CatchUpCapture();
  Csn four_pm_csn = env_.db()->stable_csn();

  fake_now = base + std::chrono::hours(17);  // 5:00pm
  ASSERT_OK(r1.RunTransactions(5));
  env_.CatchUpCapture();

  // "Decide at 8:00pm to refresh the view to its 5:00pm state."
  fake_now = base + std::chrono::hours(20);
  Propagator prop(env_.views(), view_, std::make_unique<DrainInterval>());
  ASSERT_OK(prop.RunUntil(env_.capture()->high_water_mark()));

  Applier applier(env_.views(), view_);
  ASSERT_OK_AND_ASSIGN(
      Csn rolled,
      applier.RollToWallTime(base + std::chrono::hours(16) +
                             std::chrono::minutes(30)));  // 4:30pm
  EXPECT_EQ(rolled, four_pm_csn);  // last commit at or before 4:30pm
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(ApplyTest, MergeRejectsNegativeCounts) {
  MaterializedView mv(view_->resolved.view_schema());
  mv.Replace({}, 1);
  DeltaRows bad{DeltaRow(Tuple{Value(int64_t{1}), Value(int64_t{1}),
                               Value(int64_t{1}), Value(int64_t{1}),
                               Value(int64_t{1}), Value(int64_t{1})},
                         -1, 2)};
  Status s = mv.Merge(bad, 2);
  EXPECT_TRUE(s.IsInternal());
  EXPECT_EQ(mv.csn(), 1u);  // untouched
  EXPECT_EQ(mv.cardinality(), 0u);
}

}  // namespace
}  // namespace rollview
