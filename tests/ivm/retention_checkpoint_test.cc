// Durable-checkpoint retention clamp (the prune-ahead-of-checkpoint
// hazard): after a checkpoint covering CSN C is published, deletions above
// C live only in the retained log suffix -- recovery replays them against
// the image, so the MVCC versions they closed must survive garbage
// collection until the *next* checkpoint widens coverage. RetentionManager
// clamps every prune/GC floor to the durable coverage CSN; these tests
// provoke the hazard deliberately (delete rows that were alive at C, then
// run gc_versions retention whose unclamped floor is far above C) and prove
// (a) the snapshot at C stays reconstructible and (b) a full
// publish -> prune -> recover cycle reproduces the live view, i.e. deleted
// segments were never needed.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "harness/crash_harness.h"
#include "ivm/checkpoint.h"
#include "ivm/maintenance.h"
#include "ivm/retention.h"
#include "storage/wal_segment.h"
#include "tests/test_util.h"
#include "workload/update_stream.h"

namespace rollview {
namespace {

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "retention_ckpt_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Engine bundle over a file-backed WAL directory. Capture keeps the
// in-memory log intact (truncate_wal=false): checkpoint images are built
// from MVCC state, but the reattach after recovery snapshots from LSN 0.
struct DurableEnv {
  std::string dir;
  std::unique_ptr<Db> db;
  std::unique_ptr<LogCapture> capture;
  std::unique_ptr<ViewManager> views;

  explicit DurableEnv(const std::string& wal_dir, size_t segment_bytes) {
    dir = wal_dir;
    DbOptions dopts;
    dopts.wal_dir = wal_dir;
    dopts.wal_segment_bytes = segment_bytes;
    db = std::make_unique<Db>(dopts);
    CaptureOptions copts;
    copts.truncate_wal = false;
    capture = std::make_unique<LogCapture>(db.get(), copts);
    views = std::make_unique<ViewManager>(db.get(), capture.get());
  }
};

TEST(RetentionCheckpointTest, ClampBlocksGcAboveDurableCoverage) {
  std::string dir = FreshDir("clamp");
  DurableEnv env(dir, /*segment_bytes=*/4096);
  Db* db = env.db.get();
  ASSERT_TRUE(db->wal()->durable());

  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(db, 40, 30, 8, 0xC1A3));
  env.capture->CatchUp();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views->Materialize(view));

  MaintenanceService::Options mopts;
  mopts.target_rows_per_query = 16;
  mopts.prune_view_delta = false;
  MaintenanceService service(env.views.get(), view, mopts);
  UpdateStream updates(db, workload.RStream(1, 0x11), 0x11);
  ASSERT_OK(updates.RunTransactions(4));
  env.capture->CatchUp();
  ASSERT_OK(service.Drain(db->stable_csn()));

  // Publish: coverage = everything up to here.
  ASSERT_OK_AND_ASSIGN(DurableCheckpointReport ckpt,
                       PublishDurableCheckpoint(db, env.views.get()));
  Csn c1 = ckpt.covered_csn;
  ASSERT_EQ(c1, db->stable_csn());
  ASSERT_EQ(db->wal()->durable_covered_csn(), c1);
  ASSERT_GT(ckpt.image_records, 0u);

  DeltaRows view_at_c1 = OracleViewState(db, view, c1);
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> r_at_c1,
                       db->SnapshotScan(workload.r, c1));
  ASSERT_GE(r_at_c1.size(), 4u);

  // Provoke the hazard: delete rows that were alive at coverage, so their
  // versions now end strictly above c1, then advance the view well past
  // the deletions.
  {
    auto txn = db->Begin();
    for (size_t i = 0; i < 4; ++i) {
      ASSERT_OK_AND_ASSIGN(int64_t n,
                           db->DeleteTuple(txn.get(), workload.r, r_at_c1[i]));
      ASSERT_EQ(n, 1);
    }
    ASSERT_OK(db->Commit(txn.get()));
  }
  ASSERT_OK(updates.RunTransactions(4));
  env.capture->CatchUp();
  ASSERT_OK(service.Drain(db->stable_csn()));
  ASSERT_GT(view->high_water_mark(), c1);

  // gc_versions retention with an unclamped floor at the view's HWM would
  // collect exactly those versions. The clamp must cap it at c1.
  RetentionOptions ropts;
  ropts.base_delta_policy = RetentionOptions::BaseDeltaPolicy::kPropagated;
  ropts.gc_versions = true;
  RetentionManager retention(env.views.get(), ropts);
  RetentionManager::PruneReport report = retention.PruneOnce();
  EXPECT_TRUE(report.durable_clamp_applied)
      << "floor " << report.base_floor << " vs coverage " << c1;

  // The coverage snapshot is still fully reconstructible: the deleted
  // rows' versions survived GC.
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> r_after_gc,
                       db->SnapshotScan(workload.r, c1));
  EXPECT_EQ(r_after_gc.size(), r_at_c1.size());
  DeltaRows view_at_c1_after = OracleViewState(db, view, c1);
  EXPECT_TRUE(NetEquivalent(view_at_c1, view_at_c1_after))
      << "version GC above durable coverage destroyed the checkpoint "
         "snapshot";

  // The next publish widens coverage past the deletions; only now may
  // retention advance (and the covered segments be pruned).
  ASSERT_OK_AND_ASSIGN(DurableCheckpointReport ckpt2,
                       PublishDurableCheckpoint(db, env.views.get()));
  EXPECT_GT(ckpt2.covered_csn, c1);
  EXPECT_EQ(db->wal()->durable_covered_csn(), ckpt2.covered_csn);
  retention.PruneOnce();

  // Full cycle: tear the live system down and recover from the directory.
  // Every segment deleted by the publishes must be genuinely redundant.
  DeltaRows live = view->mv->AsDeltaRows();
  Csn live_csn = view->mv->csn();
  env.views.reset();
  env.capture.reset();
  env.db.reset();

  DbOptions ropts2;
  ropts2.wal_segment_bytes = 4096;
  ASSERT_OK_AND_ASSIGN(
      RecoveredSystem sys,
      RecoverFromWalDir(dir, {{"V", workload.ViewDef()}}, ropts2));
  View* rv = sys.views->Find("V");
  ASSERT_NE(rv, nullptr);
  ASSERT_EQ(sys.report.views_recovered, 1u);
  MaintenanceService rservice(sys.views.get(), rv, mopts);
  ASSERT_OK(rservice.Drain(sys.db->stable_csn()));
  EXPECT_GE(rv->mv->csn(), live_csn);
  DeltaRows oracle = OracleViewState(sys.db.get(), rv, rv->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, rv->mv->AsDeltaRows()))
      << "recovered view diverges from recomputation";
  EXPECT_TRUE(NetEquivalent(live, OracleViewState(sys.db.get(), rv, live_csn)))
      << "recovered history lost the live view's state";
}

// Without a durable backend the coverage CSN is kMaxCsn: retention runs
// exactly as before (no clamp, flag never set).
TEST(RetentionCheckpointTest, InMemoryWalUnconstrained) {
  TestEnv env;
  ASSERT_FALSE(env.db()->wal()->durable());
  EXPECT_EQ(env.db()->wal()->durable_covered_csn(), kMaxCsn);

  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 20, 15, 8, 0xF00));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views()->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views()->Materialize(view));
  MaintenanceService service(env.views(), view);
  ASSERT_OK(service.Drain(env.db()->stable_csn()));

  RetentionOptions ropts;
  ropts.gc_versions = true;
  RetentionManager retention(env.views(), ropts);
  RetentionManager::PruneReport report = retention.PruneOnce();
  EXPECT_FALSE(report.durable_clamp_applied);
}

// PublishDurableCheckpoint on an in-memory WAL is a contract violation.
TEST(RetentionCheckpointTest, PublishRequiresDurableBackend) {
  TestEnv env;
  Result<DurableCheckpointReport> r =
      PublishDurableCheckpoint(env.db(), env.views());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
}

}  // namespace
}  // namespace rollview
