#include "ivm/materialized_view.h"

#include <gtest/gtest.h>

namespace rollview {
namespace {

Schema OneCol() { return Schema({Column{"k", ValueType::kInt64}}); }

DeltaRow Row(int64_t k, int64_t count, Csn ts = kNullCsn) {
  return DeltaRow(Tuple{Value(k)}, count, ts);
}

TEST(MaterializedViewTest, ReplaceInstallsContents) {
  MaterializedView mv(OneCol());
  EXPECT_EQ(mv.csn(), kNullCsn);
  CountMap contents;
  contents[Tuple{Value(int64_t{1})}] = 2;
  contents[Tuple{Value(int64_t{2})}] = 1;
  mv.Replace(contents, 5);
  EXPECT_EQ(mv.csn(), 5u);
  EXPECT_EQ(mv.cardinality(), 2u);
  EXPECT_EQ(mv.TotalCount(), 3);
}

TEST(MaterializedViewTest, MergeAddsRemovesAndDropsZeros) {
  MaterializedView mv(OneCol());
  mv.Replace({{Tuple{Value(int64_t{1})}, 2}}, 5);
  ASSERT_TRUE(mv.Merge({Row(1, -1, 6), Row(2, +3, 6)}, 6).ok());
  EXPECT_EQ(mv.csn(), 6u);
  CountMap m = mv.Contents();
  EXPECT_EQ(m[Tuple{Value(int64_t{1})}], 1);
  EXPECT_EQ(m[Tuple{Value(int64_t{2})}], 3);
  // Drive key 1 to zero: it disappears entirely.
  ASSERT_TRUE(mv.Merge({Row(1, -1, 7)}, 7).ok());
  EXPECT_EQ(mv.Contents().count(Tuple{Value(int64_t{1})}), 0u);
  EXPECT_EQ(mv.cardinality(), 1u);
}

TEST(MaterializedViewTest, MergeIsAtomicOnFailure) {
  MaterializedView mv(OneCol());
  mv.Replace({{Tuple{Value(int64_t{1})}, 1}}, 5);
  // The batch nets key 1 to -1 (invalid) but also touches key 2; neither
  // change may land.
  Status s = mv.Merge({Row(2, +5, 6), Row(1, -2, 6)}, 6);
  EXPECT_TRUE(s.IsInternal());
  EXPECT_EQ(mv.csn(), 5u);
  EXPECT_EQ(mv.cardinality(), 1u);
  EXPECT_EQ(mv.TotalCount(), 1);
}

TEST(MaterializedViewTest, NegativeCountErrorNamesTupleAndCsn) {
  MaterializedView mv(OneCol());
  mv.Replace({{Tuple{Value(int64_t{7})}, 1}}, 5);
  Status s = mv.Merge({Row(7, -3, 9)}, 9);
  ASSERT_TRUE(s.IsInternal());
  // Debugging a maintenance bug starts from this message: it must identify
  // the offending tuple, the merge target CSN, the view's CSN, and the
  // count the merge would have produced.
  std::string msg = s.ToString();
  EXPECT_NE(msg.find(TupleToString(Tuple{Value(int64_t{7})})),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("csn 9"), std::string::npos) << msg;
  EXPECT_NE(msg.find("view at csn 5"), std::string::npos) << msg;
  EXPECT_NE(msg.find("to -2"), std::string::npos) << msg;
}

TEST(MaterializedViewTest, MergeNetsWithinTheBatchFirst) {
  MaterializedView mv(OneCol());
  mv.Replace({}, 1);
  // -1 then +1 for an absent key nets to zero: legal even though a bare -1
  // would not be.
  ASSERT_TRUE(mv.Merge({Row(9, -1, 2), Row(9, +1, 2)}, 2).ok());
  EXPECT_EQ(mv.cardinality(), 0u);
  EXPECT_EQ(mv.csn(), 2u);
}

TEST(MaterializedViewTest, AsDeltaRowsRoundTrips) {
  MaterializedView mv(OneCol());
  mv.Replace({{Tuple{Value(int64_t{1})}, 2}, {Tuple{Value(int64_t{2})}, 1}},
             3);
  DeltaRows rows = mv.AsDeltaRows();
  EXPECT_TRUE(NetEquivalent(rows, DeltaRows{Row(1, 2), Row(2, 1)}));
  for (const DeltaRow& r : rows) EXPECT_EQ(r.ts, kNullCsn);
}

}  // namespace
}  // namespace rollview
