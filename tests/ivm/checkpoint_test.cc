// Durable maintenance state: blob codecs round-trip, Materialize writes an
// initial checkpoint, the CheckpointManager cadence fires on schedule, and
// a checkpoint's contents agree with the live view it snapshots.

#include "ivm/checkpoint.h"

#include <gtest/gtest.h>

#include "ivm/maintenance.h"
#include "storage/wal_codec.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

std::vector<WalRecord> WalRecordsOfKind(Db* db, WalRecord::Kind kind) {
  std::vector<WalRecord> all;
  db->wal()->ReadFrom(0, 1u << 24, &all);
  std::vector<WalRecord> out;
  for (WalRecord& rec : all) {
    if (rec.kind == kind) out.push_back(std::move(rec));
  }
  return out;
}

TEST(CheckpointBlobTest, CursorBlobRoundTrip) {
  ViewCursorBlob b;
  b.view_name = "V";
  b.completed_step_seq = 17;
  b.tfwd = {5, 9, 3};
  b.tcomp = {4, 9, 3};
  b.strips = {{{1, 5, 8}, {5, 9, 12}}, {}, {{2, 3, 6}}};

  ViewCursorBlob out;
  ASSERT_TRUE(DecodeViewCursorBlob(EncodeViewCursorBlob(b), &out));
  EXPECT_EQ(out.view_name, "V");
  EXPECT_EQ(out.completed_step_seq, 17u);
  EXPECT_EQ(out.tfwd, b.tfwd);
  EXPECT_EQ(out.tcomp, b.tcomp);
  ASSERT_EQ(out.strips.size(), 3u);
  EXPECT_EQ(out.strips[0].size(), 2u);
  EXPECT_TRUE(out.strips[1].empty());
  EXPECT_EQ(out.strips[2][0].lo, 2u);
  EXPECT_EQ(out.strips[2][0].hi, 3u);
  EXPECT_EQ(out.strips[2][0].exec, 6u);
  // Trailing garbage must be rejected, not ignored.
  EXPECT_FALSE(DecodeViewCursorBlob(EncodeViewCursorBlob(b) + "x", &out));
}

TEST(CheckpointBlobTest, AppliedBlobRoundTrip) {
  ViewAppliedBlob b;
  b.view_name = "orders_by_region";
  b.applied_csn = 12345;
  ViewAppliedBlob out;
  ASSERT_TRUE(DecodeViewAppliedBlob(EncodeViewAppliedBlob(b), &out));
  EXPECT_EQ(out.view_name, b.view_name);
  EXPECT_EQ(out.applied_csn, b.applied_csn);
  EXPECT_FALSE(DecodeViewAppliedBlob("", &out));
}

TEST(CheckpointBlobTest, CheckpointBlobRoundTrip) {
  ViewCheckpointBlob b;
  b.view_name = "V";
  b.mv_csn = 42;
  b.mv_rows = {{Tuple{Value(int64_t{1}), Value("a")}, 2},
               {Tuple{Value(int64_t{2}), Value("b")}, -1}};
  b.view_delta = {DeltaRow(Tuple{Value(int64_t{7})}, +1, 40),
                  DeltaRow(Tuple{Value(int64_t{7})}, -1, 41)};
  b.delta_hwm = 44;
  b.propagate_from = 10;
  b.tfwd = {44, 43};
  b.tcomp = {44, 43};
  b.next_step_seq = 9;
  b.strips = {{}, {{40, 43, 44}}};

  ViewCheckpointBlob out;
  ASSERT_TRUE(DecodeViewCheckpointBlob(EncodeViewCheckpointBlob(b), &out));
  EXPECT_EQ(out.view_name, b.view_name);
  EXPECT_EQ(out.mv_csn, b.mv_csn);
  ASSERT_EQ(out.mv_rows.size(), 2u);
  EXPECT_EQ(out.mv_rows[0].first, b.mv_rows[0].first);
  EXPECT_EQ(out.mv_rows[1].second, -1);
  ASSERT_EQ(out.view_delta.size(), 2u);
  EXPECT_EQ(out.view_delta[1].count, -1);
  EXPECT_EQ(out.view_delta[1].ts, 41u);
  EXPECT_EQ(out.delta_hwm, 44u);
  EXPECT_EQ(out.propagate_from, 10u);
  EXPECT_EQ(out.next_step_seq, 9u);
  ASSERT_EQ(out.strips.size(), 2u);
  EXPECT_EQ(out.strips[1][0].exec, 44u);
  // A truncated blob fails cleanly.
  std::string enc = EncodeViewCheckpointBlob(b);
  EXPECT_FALSE(DecodeViewCheckpointBlob(enc.substr(0, enc.size() / 2), &out));
}

class CheckpointTest : public ::testing::Test {
 protected:
  CheckpointTest() : env_([] {
          CaptureOptions copts;
          copts.truncate_wal = false;  // tests read the WAL back
          return copts;
        }()) {}

  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_,
        TwoTableWorkload::Create(env_.db(), 50, 30, 8, /*seed=*/7));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_, env_.views()->CreateView(
                                    "V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
};

TEST_F(CheckpointTest, MaterializeWritesInitialCheckpoint) {
  auto checkpoints =
      WalRecordsOfKind(env_.db(), WalRecord::Kind::kViewCheckpoint);
  ASSERT_EQ(checkpoints.size(), 1u);
  ASSERT_NE(checkpoints[0].blob, nullptr);
  ViewCheckpointBlob blob;
  ASSERT_TRUE(DecodeViewCheckpointBlob(*checkpoints[0].blob, &blob));
  EXPECT_EQ(blob.view_name, "V");
  EXPECT_EQ(blob.mv_csn, view_->mv->csn());
  EXPECT_EQ(blob.mv_rows.size(), view_->mv->cardinality());
  EXPECT_EQ(blob.propagate_from,
            view_->propagate_from.load(std::memory_order_acquire));
  EXPECT_EQ(blob.next_step_seq, 1u);
  // The create record precedes it, binding id -> name.
  auto creates = WalRecordsOfKind(env_.db(), WalRecord::Kind::kCreateView);
  ASSERT_EQ(creates.size(), 1u);
  EXPECT_EQ(*creates[0].blob, "V");
  EXPECT_EQ(creates[0].view, view_->id);
}

TEST_F(CheckpointTest, CadenceWritesEveryNSteps) {
  UpdateStream updates(env_.db(), workload_.RStream(1, 11), 11);
  ASSERT_OK(updates.RunTransactions(20));
  env_.CatchUpCapture();

  MaintenanceService::Options mopts;
  mopts.checkpoint_every_steps = 2;
  mopts.target_rows_per_query = 4;  // force several steps
  MaintenanceService service(env_.views(), view_, mopts);
  ASSERT_NE(service.checkpointer(), nullptr);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  ASSERT_OK(service.Stop());

  uint64_t steps = service.propagate_driver_stats().steps;
  uint64_t written = service.checkpointer()->checkpoints_written();
  EXPECT_GE(written, 1u);
  EXPECT_LE(written, steps / 2 + 1);
  // 1 initial (Materialize) + the cadence ones.
  auto checkpoints =
      WalRecordsOfKind(env_.db(), WalRecord::Kind::kViewCheckpoint);
  EXPECT_EQ(checkpoints.size(), 1 + written);
}

TEST_F(CheckpointTest, CheckpointNowSnapshotsLiveState) {
  UpdateStream updates(env_.db(), workload_.SStream(1, 13), 13);
  ASSERT_OK(updates.RunTransactions(10));
  env_.CatchUpCapture();
  MaintenanceService::Options mopts;
  mopts.apply_continuously = true;
  MaintenanceService service(env_.views(), view_, mopts);
  ASSERT_OK(service.Drain(env_.db()->stable_csn()));
  ASSERT_OK(service.Stop());

  CheckpointManager manager(env_.db(), view_, CheckpointManager::Options{});
  ASSERT_OK(manager.CheckpointNow());
  EXPECT_EQ(manager.checkpoints_written(), 1u);

  auto checkpoints =
      WalRecordsOfKind(env_.db(), WalRecord::Kind::kViewCheckpoint);
  ASSERT_FALSE(checkpoints.empty());
  ViewCheckpointBlob blob;
  ASSERT_TRUE(
      DecodeViewCheckpointBlob(*checkpoints.back().blob, &blob));
  EXPECT_EQ(blob.mv_csn, view_->mv->csn());
  EXPECT_EQ(blob.mv_rows.size(), view_->mv->cardinality());
  EXPECT_EQ(blob.delta_hwm, view_->high_water_mark());
  // Cursors mirrored from the live propagator's control state.
  CursorState cursors = view_->LoadCursors();
  ASSERT_TRUE(cursors.valid);
  EXPECT_EQ(blob.tfwd, cursors.tfwd);
  EXPECT_EQ(blob.tcomp, cursors.tcomp);
  EXPECT_EQ(blob.next_step_seq, cursors.next_step_seq);
}

TEST(CheckpointCadenceTest, ZeroDisablesCadence) {
  // OnStep with every_steps=0 never writes (needs no engine at all: the
  // early-out precedes any Db access).
  CheckpointManager::Options opts;
  opts.every_steps = 0;
  CheckpointManager manager(nullptr, nullptr, opts);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(manager.OnStep().ok());
  }
  EXPECT_EQ(manager.checkpoints_written(), 0u);
}

}  // namespace
}  // namespace rollview
