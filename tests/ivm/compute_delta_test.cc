// End-to-end tests of ComputeDelta (Figure 4): asynchronous propagation by
// recursive compensation, checked against the timed-delta-table invariant
// (Definition 4.2, Theorem 4.1) with MVCC-snapshot oracles.

#include "ivm/compute_delta.h"

#include <gtest/gtest.h>

#include "ivm/propagate.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class ComputeDeltaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), /*r_rows=*/60,
                                            /*s_rows=*/40, /*join_domain=*/8,
                                            /*seed=*/7));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
    t0_ = view_->propagate_from.load();
  }

  // Runs `txns` update transactions against both tables and captures them.
  void RunUpdates(size_t txns, uint64_t seed) {
    UpdateStream r_stream(env_.db(), workload_.RStream(1, seed), seed);
    UpdateStream s_stream(env_.db(), workload_.SStream(2, seed + 1),
                          seed + 1);
    for (size_t i = 0; i < txns; ++i) {
      ASSERT_OK(r_stream.RunTransaction());
      if (i % 2 == 0) ASSERT_OK(s_stream.RunTransaction());
    }
    env_.CatchUpCapture();
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
  Csn t0_ = kNullCsn;
};

TEST_F(ComputeDeltaTest, EmptyIntervalProducesNothing) {
  QueryRunner runner(env_.views(), view_);
  ComputeDeltaOp op(&runner);
  ASSERT_OK(op.PropagateInterval(view_, t0_, t0_));
  EXPECT_EQ(view_->view_delta->size(), 0u);
  EXPECT_EQ(op.stats().queries_issued, 0u);
}

TEST_F(ComputeDeltaTest, QuietHistoryIsSkippedEntirely) {
  // Commits that touch no captured table still advance time; propagating
  // over them must be free under the empty-range optimization.
  ASSERT_OK_AND_ASSIGN(TableId other,
                       env_.db()->CreateTable(
                           "other", Schema({Column{"x", ValueType::kInt64}})));
  for (int i = 0; i < 5; ++i) {
    auto txn = env_.db()->Begin();
    ASSERT_OK(env_.db()->Insert(txn.get(), other, Tuple{Value(int64_t{i})}));
    ASSERT_OK(env_.db()->Commit(txn.get()));
  }
  env_.CatchUpCapture();

  QueryRunner runner(env_.views(), view_);
  ComputeDeltaOp op(&runner);
  ASSERT_OK(op.PropagateInterval(view_, t0_, env_.db()->stable_csn()));
  EXPECT_EQ(op.stats().queries_issued, 0u);
  EXPECT_GT(op.stats().queries_skipped, 0u);
  EXPECT_EQ(view_->view_delta->size(), 0u);
}

TEST_F(ComputeDeltaTest, SingleIntervalMatchesOracle) {
  RunUpdates(10, 42);
  Csn t1 = env_.capture()->high_water_mark();

  QueryRunner runner(env_.views(), view_);
  ComputeDeltaOp op(&runner);
  ASSERT_OK(op.PropagateInterval(view_, t0_, t1));

  EXPECT_TRUE(CheckTimedDeltaWindow(env_.db(), view_, t0_, t1));
}

TEST_F(ComputeDeltaTest, TimedDeltaHoldsOnSubWindows) {
  RunUpdates(12, 1234);
  Csn t1 = env_.capture()->high_water_mark();

  QueryRunner runner(env_.views(), view_);
  ComputeDeltaOp op(&runner);
  ASSERT_OK(op.PropagateInterval(view_, t0_, t1));

  // Definition 4.2 demands the invariant for *every* (a, b] sub-window, not
  // just the whole interval -- this is what timestamps buy (Lemma 4.1).
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, t1, /*stride=*/3));
}

TEST_F(ComputeDeltaTest, ConsecutiveIntervalsConcatenate) {
  // Lemma 4.2: deltas over (t0,t1] and (t1,t2] concatenate to (t0,t2].
  RunUpdates(6, 5);
  Csn t1 = env_.capture()->high_water_mark();
  QueryRunner runner(env_.views(), view_);
  ComputeDeltaOp op(&runner);
  ASSERT_OK(op.PropagateInterval(view_, t0_, t1));

  RunUpdates(6, 6);
  Csn t2 = env_.capture()->high_water_mark();
  ASSERT_OK(op.PropagateInterval(view_, t1, t2));

  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, t2, /*stride=*/4));
}

TEST_F(ComputeDeltaTest, ConcurrentUpdatesDuringPropagationAreCompensated) {
  // The asynchronous setting: base tables continue to evolve between the
  // propagation queries. Interleave updates with per-interval propagation.
  QueryRunner runner(env_.views(), view_);
  ComputeDeltaOp op(&runner);
  Csn cur = t0_;
  for (int round = 0; round < 5; ++round) {
    RunUpdates(3, 100 + round);
    Csn next = env_.capture()->high_water_mark();
    ASSERT_OK(op.PropagateInterval(view_, cur, next));
    // More updates land *after* t_new but *before* the next interval's
    // propagation -- exactly the drift compensation corrects.
    cur = next;
  }
  RunUpdates(2, 999);  // trailing updates beyond the last interval
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, cur, /*stride=*/5));
}

TEST_F(ComputeDeltaTest, MatchesEq1AndEq2SnapshotBaselines) {
  RunUpdates(10, 77);
  Csn t1 = env_.capture()->high_water_mark();

  QueryRunner runner(env_.views(), view_);
  ComputeDeltaOp op(&runner);
  ASSERT_OK(op.PropagateInterval(view_, t0_, t1));
  DeltaRows async_delta = view_->view_delta->Scan(CsnRange{t0_, t1});

  ASSERT_OK_AND_ASSIGN(
      DeltaRows eq1, ComputeDeltaEq1Snapshot(env_.db(), view_->resolved,
                                             t0_, t1));
  ASSERT_OK_AND_ASSIGN(
      DeltaRows eq2, ComputeDeltaEq2Snapshot(env_.db(), view_->resolved,
                                             t0_, t1));
  EXPECT_TRUE(NetEquivalent(async_delta, eq1));
  EXPECT_TRUE(NetEquivalent(async_delta, eq2));
  EXPECT_TRUE(NetEquivalent(eq1, eq2));
}

TEST_F(ComputeDeltaTest, ThreeWayJoinView) {
  // Add a third relation T(jkey, tval) joined on S.jkey = T.jkey.
  TableOptions opts;
  opts.indexed_columns = {0};
  ASSERT_OK_AND_ASSIGN(
      TableId t_id, env_.db()->CreateTable(
                        "T", Schema({Column{"jkey", ValueType::kInt64},
                                     Column{"tval", ValueType::kInt64}}),
                        opts));
  {
    auto txn = env_.db()->Begin();
    for (int64_t k = 0; k < 8; ++k) {
      ASSERT_OK(env_.db()->Insert(txn.get(), t_id,
                                  Tuple{Value(k), Value(k * 100)}));
    }
    ASSERT_OK(env_.db()->Commit(txn.get()));
  }
  env_.CatchUpCapture();

  SpjViewDef def = ChainJoin({workload_.r, workload_.s, t_id},
                             {{1, 1}, {1, 0}});
  ASSERT_OK_AND_ASSIGN(View* v3, env_.views()->CreateView("V3", def));
  ASSERT_OK(env_.views()->Materialize(v3));
  Csn start = v3->propagate_from.load();

  RunUpdates(8, 31);
  // Touch T as well.
  {
    auto txn = env_.db()->Begin();
    ASSERT_OK(env_.db()->Insert(txn.get(), t_id,
                                Tuple{Value(int64_t{3}), Value(int64_t{999})}));
    ASSERT_OK_AND_ASSIGN(
        int64_t n, env_.db()->DeleteTuple(txn.get(), t_id,
                                          Tuple{Value(int64_t{5}),
                                                Value(int64_t{500})}));
    EXPECT_EQ(n, 1);
    ASSERT_OK(env_.db()->Commit(txn.get()));
  }
  env_.CatchUpCapture();
  Csn t1 = env_.capture()->high_water_mark();

  QueryRunner runner(env_.views(), v3);
  ComputeDeltaOp op(&runner);
  ASSERT_OK(op.PropagateInterval(v3, start, t1));
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), v3, start, t1, /*stride=*/6));
  // Compensation depth for a 3-way view reaches 3 when all tables change.
  EXPECT_GE(op.stats().max_depth, 2u);
}

}  // namespace
}  // namespace rollview
