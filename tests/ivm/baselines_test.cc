// The synchronous baselines: Eq. 1 atomic refresh, full recomputation, and
// their agreement with asynchronous propagation + apply.

#include "ivm/baselines.h"

#include <gtest/gtest.h>

#include <thread>

#include "ivm/apply.h"
#include "ivm/propagate.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 50, 30, 6, 29));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
  }

  void RunUpdates(size_t txns, uint64_t seed) {
    UpdateStream r_stream(env_.db(), workload_.RStream(1, seed), seed);
    UpdateStream s_stream(env_.db(), workload_.SStream(2, seed + 1),
                          seed + 1);
    for (size_t i = 0; i < txns; ++i) {
      ASSERT_OK(r_stream.RunTransaction());
      if (i % 2 == 1) ASSERT_OK(s_stream.RunTransaction());
    }
    env_.CatchUpCapture();
  }

  ::testing::AssertionResult MvMatchesOracle() {
    DeltaRows oracle = OracleViewState(env_.db(), view_, view_->mv->csn());
    if (!NetEquivalent(oracle, view_->mv->AsDeltaRows())) {
      return ::testing::AssertionFailure() << "MV diverges from oracle";
    }
    return ::testing::AssertionSuccess();
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
};

TEST_F(BaselinesTest, Eq1RefreshMatchesOracle) {
  RunUpdates(10, 1);
  SyncRefresher refresher(env_.views(), view_);
  ASSERT_OK_AND_ASSIGN(Csn t_b, refresher.RefreshEq1());
  EXPECT_EQ(view_->mv->csn(), t_b);
  EXPECT_TRUE(MvMatchesOracle());
  EXPECT_EQ(refresher.stats().queries, 3u);  // 2^2 - 1
}

TEST_F(BaselinesTest, Eq1RefreshIsIncrementallyRepeatable) {
  SyncRefresher refresher(env_.views(), view_);
  for (int round = 0; round < 4; ++round) {
    RunUpdates(4, 10 + round);
    ASSERT_OK(refresher.RefreshEq1().status());
    ASSERT_TRUE(MvMatchesOracle()) << "round " << round;
  }
}

TEST_F(BaselinesTest, FullRefreshMatchesOracle) {
  RunUpdates(10, 2);
  SyncRefresher refresher(env_.views(), view_);
  ASSERT_OK_AND_ASSIGN(Csn t_b, refresher.RefreshFull());
  EXPECT_EQ(view_->mv->csn(), t_b);
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(BaselinesTest, SyncAndAsyncConverge) {
  // Same history, two views: one refreshed synchronously, one rolled via
  // asynchronous propagation. They must agree at equal CSNs.
  ASSERT_OK_AND_ASSIGN(View* v2,
                       env_.views()->CreateView("V2", workload_.ViewDef()));
  ASSERT_OK(env_.views()->Materialize(v2));
  RunUpdates(10, 3);

  SyncRefresher refresher(env_.views(), view_);
  ASSERT_OK_AND_ASSIGN(Csn t_sync, refresher.RefreshEq1());

  Propagator prop(env_.views(), v2, std::make_unique<DrainInterval>());
  ASSERT_OK(prop.RunUntil(t_sync));
  Applier applier(env_.views(), v2);
  ASSERT_OK(applier.RollTo(t_sync));

  EXPECT_TRUE(NetEquivalent(view_->mv->AsDeltaRows(), v2->mv->AsDeltaRows()));
}

TEST_F(BaselinesTest, Eq1RefreshBlocksConcurrentWriters) {
  // The long-transaction problem in miniature: a writer that tries to
  // commit mid-refresh must wait for the refresh's S locks.
  RunUpdates(30, 4);

  std::atomic<bool> refresh_started{false};
  std::atomic<bool> refresh_done{false};
  std::thread refresher_thread([&] {
    SyncRefresher refresher(env_.views(), view_);
    refresh_started.store(true);
    ASSERT_TRUE(refresher.RefreshEq1().ok());
    refresh_done.store(true);
  });

  while (!refresh_started.load()) std::this_thread::yield();
  UpdateStream writer(env_.db(), workload_.RStream(9, 99), 99);
  // Writers serialize behind the refresh; all must eventually succeed.
  ASSERT_OK(writer.RunTransactions(5));
  refresher_thread.join();
  EXPECT_TRUE(refresh_done.load());
  env_.CatchUpCapture();
  EXPECT_TRUE(MvMatchesOracle());
}

TEST_F(BaselinesTest, Eq1AndEq2SnapshotFormsAgreeOnLongHistory) {
  Csn a = view_->propagate_from.load();
  RunUpdates(20, 5);
  Csn b = env_.capture()->high_water_mark();
  ExecStats eq1_stats, eq2_stats;
  ASSERT_OK_AND_ASSIGN(
      DeltaRows eq1,
      ComputeDeltaEq1Snapshot(env_.db(), view_->resolved, a, b, &eq1_stats));
  ASSERT_OK_AND_ASSIGN(
      DeltaRows eq2,
      ComputeDeltaEq2Snapshot(env_.db(), view_->resolved, a, b, &eq2_stats));
  EXPECT_TRUE(NetEquivalent(eq1, eq2));
  EXPECT_EQ(eq1_stats.queries, 3u);  // 2^n - 1
  EXPECT_EQ(eq2_stats.queries, 2u);  // n
  // And both equal the oracle difference.
  DeltaRows va = OracleViewState(env_.db(), view_, a);
  DeltaRows vb = OracleViewState(env_.db(), view_, b);
  EXPECT_TRUE(NetEquivalent(ApplyDelta(va, eq2), vb));
}

}  // namespace
}  // namespace rollview
