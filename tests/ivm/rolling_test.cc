// Tests of RollingPropagate (Figure 10): per-relation intervals, deferred
// compensation, query-list pruning, and the high-water mark of Theorem 4.3.

#include "ivm/rolling.h"

#include <gtest/gtest.h>

#include "ivm/propagate.h"
#include "ivm/region_tracker.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class RollingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), /*r_rows=*/50,
                                            /*s_rows=*/30, /*join_domain=*/6,
                                            /*seed=*/11));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
    ASSERT_OK(env_.views()->Materialize(view_));
    t0_ = view_->propagate_from.load();
  }

  void RunUpdates(size_t txns, uint64_t seed, bool touch_s = true) {
    UpdateStream r_stream(env_.db(), workload_.RStream(1, seed), seed);
    UpdateStream s_stream(env_.db(), workload_.SStream(2, seed + 1),
                          seed + 1);
    for (size_t i = 0; i < txns; ++i) {
      ASSERT_OK(r_stream.RunTransaction());
      if (touch_s && i % 3 == 0) ASSERT_OK(s_stream.RunTransaction());
    }
    env_.CatchUpCapture();
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
  Csn t0_ = kNullCsn;
};

TEST_F(RollingTest, NoUpdatesNoProgressNeeded) {
  RollingPropagator prop(env_.views(), view_, /*uniform_interval=*/5);
  ASSERT_OK_AND_ASSIGN(bool advanced, prop.Step());
  // Frontiers may advance over the quiet prefix via the skip path, or not
  // at all; either way the HWM must never pass the capture mark and nothing
  // may be appended to the view delta.
  (void)advanced;
  EXPECT_LE(prop.high_water_mark(), env_.db()->stable_csn());
  EXPECT_EQ(view_->view_delta->size(), 0u);
}

TEST_F(RollingTest, UniformIntervalsSatisfyInvariant) {
  RunUpdates(15, 21);
  Csn target = env_.capture()->high_water_mark();
  RollingPropagator prop(env_.views(), view_, /*uniform_interval=*/7);
  ASSERT_OK(prop.RunUntil(target));
  EXPECT_GE(prop.high_water_mark(), target);
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, target,
                                   /*stride=*/4));
}

TEST_F(RollingTest, PerRelationIntervalsSatisfyInvariant) {
  RunUpdates(15, 22);
  Csn target = env_.capture()->high_water_mark();
  // Fine-grained on R (hot), coarse on S (cold) -- the star-schema shape.
  std::vector<std::unique_ptr<IntervalPolicy>> policies;
  policies.push_back(std::make_unique<FixedInterval>(3));
  policies.push_back(std::make_unique<FixedInterval>(50));
  RollingPropagator prop(env_.views(), view_, std::move(policies));
  ASSERT_OK(prop.RunUntil(target));
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, target,
                                   /*stride=*/4));
}

TEST_F(RollingTest, AdaptiveTargetRowsPolicy) {
  RunUpdates(15, 23);
  Csn target = env_.capture()->high_water_mark();
  std::vector<std::unique_ptr<IntervalPolicy>> policies;
  policies.push_back(std::make_unique<TargetRowsInterval>(8));
  policies.push_back(std::make_unique<TargetRowsInterval>(8));
  RollingPropagator prop(env_.views(), view_, std::move(policies));
  ASSERT_OK(prop.RunUntil(target));
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, target,
                                   /*stride=*/5));
}

TEST_F(RollingTest, HwmNeverExceedsSettledWork) {
  RunUpdates(10, 24);
  Csn target = env_.capture()->high_water_mark();
  RollingPropagator prop(env_.views(), view_, /*uniform_interval=*/4);
  Csn last_hwm = prop.high_water_mark();
  while (prop.high_water_mark() < target) {
    ASSERT_OK_AND_ASSIGN(bool advanced, prop.Step());
    if (!advanced) break;
    Csn hwm = prop.high_water_mark();
    EXPECT_GE(hwm, last_hwm) << "high-water mark went backwards";
    // Theorem 4.3: everything up to the mark must already satisfy the
    // invariant *mid-flight*, while query lists still hold uncompensated
    // strips.
    ASSERT_TRUE(CheckTimedDeltaWindow(env_.db(), view_, t0_, hwm));
    last_hwm = hwm;
  }
  EXPECT_GE(prop.high_water_mark(), target);
}

TEST_F(RollingTest, InterleavedUpdatesAndRolling) {
  RollingPropagator prop(env_.views(), view_, /*uniform_interval=*/5);
  Csn target = t0_;
  for (int round = 0; round < 6; ++round) {
    RunUpdates(4, 300 + round);
    target = env_.capture()->high_water_mark();
    ASSERT_OK(prop.RunUntil(target));
  }
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, target,
                                   /*stride=*/7));
}

TEST_F(RollingTest, SignedRegionCoverageMatchesFigures) {
  // The geometric claim of Figs 6-9: signed query rectangles tile exactly
  // the L-shaped region V_{t0, hwm}. Both compensation modes are exact for
  // two-relation views.
  RunUpdates(12, 25);
  Csn target = env_.capture()->high_water_mark();

  for (CompensationMode mode :
       {CompensationMode::kFrontier, CompensationMode::kDeferredFigure10}) {
    ASSERT_OK_AND_ASSIGN(
        View* v, env_.views()->CreateView(
                     mode == CompensationMode::kFrontier ? "Vf" : "Vd",
                     workload_.ViewDef()));
    v->propagate_from.store(t0_);
    v->delta_hwm.store(t0_);
    std::vector<std::unique_ptr<IntervalPolicy>> policies;
    policies.push_back(std::make_unique<FixedInterval>(4));
    policies.push_back(std::make_unique<FixedInterval>(9));
    RollingOptions options;
    options.compute_delta.skip_empty_ranges = false;  // record everything
    options.compensation = mode;
    RollingPropagator prop(env_.views(), v, std::move(policies), options);
    RegionTracker tracker;
    prop.runner()->set_region_tracker(&tracker);
    ASSERT_OK(prop.RunUntil(target));

    auto violation = tracker.CheckCoverage(t0_, prop.high_water_mark());
    EXPECT_FALSE(violation.has_value())
        << "signed coverage wrong at point (" << (*violation)[0] << ", "
        << (*violation)[1] << ")\nledger:\n"
        << tracker.Dump();
    EXPECT_TRUE(CheckTimedDeltaWindow(env_.db(), v, t0_,
                                      prop.high_water_mark()));
  }
}

TEST_F(RollingTest, FewerComputeDeltaCallsThanPropagateForSameHistory) {
  // Sec. 3.4: rolling defers and merges compensations, so it makes fewer
  // ComputeDelta calls than Propagate for the same history and interval.
  RunUpdates(20, 26);
  Csn target = env_.capture()->high_water_mark();

  // Deferred merging is the mechanism behind the fewer-queries claim; it
  // is exact for this two-relation view.
  RollingOptions options;
  options.compensation = CompensationMode::kDeferredFigure10;
  RollingPropagator rolling(env_.views(), view_, /*uniform_interval=*/5,
                            options);
  ASSERT_OK(rolling.RunUntil(target));
  uint64_t rolling_queries = rolling.runner()->stats().queries;

  ASSERT_OK_AND_ASSIGN(View* v2, env_.views()->CreateView(
                                     "V2", workload_.ViewDef()));
  v2->propagate_from.store(t0_);
  v2->delta_hwm.store(t0_);
  Propagator plain(env_.views(), v2,
                   std::make_unique<FixedInterval>(5));
  ASSERT_OK(plain.RunUntil(target));
  uint64_t plain_queries = plain.runner()->stats().queries;

  // Propagate compensates every forward query immediately; rolling defers
  // compensations and merges several strips' overlap into one query, so it
  // executes no more (usually fewer) propagation queries for the same
  // coverage.
  EXPECT_LE(rolling_queries, plain_queries);
  // And both maintained a correct delta.
  EXPECT_TRUE(CheckTimedDeltaWindow(env_.db(), view_, t0_, target));
  EXPECT_TRUE(CheckTimedDeltaWindow(env_.db(), v2, t0_, target));
}

}  // namespace
}  // namespace rollview
