#include "ivm/prop_query.h"

#include <gtest/gtest.h>

#include "ivm/interval_policy.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class PropQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 5, 5, 3, 1));
    env_.CatchUpCapture();
    ASSERT_OK_AND_ASSIGN(view_,
                         env_.views()->CreateView("V", workload_.ViewDef()));
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* view_ = nullptr;
};

TEST_F(PropQueryTest, AllBaseShape) {
  PropQuery q = PropQuery::AllBase(view_);
  EXPECT_EQ(q.num_terms(), 2u);
  EXPECT_TRUE(q.HasBaseTerm());
  EXPECT_EQ(q.NumDeltaTerms(), 0u);
  EXPECT_EQ(q.sign, 1);
  EXPECT_EQ(q.ToString(), "R1 * R2");
}

TEST_F(PropQueryTest, ForwardAndCompensationClassification) {
  PropQuery fwd = PropQuery::AllBase(view_);
  fwd.terms[0] = PropTerm::Delta(3, 7);
  EXPECT_EQ(fwd.NumDeltaTerms(), 1u);  // forward query
  EXPECT_TRUE(fwd.HasBaseTerm());
  EXPECT_EQ(fwd.ToString(), "R1(3, 7] * R2");

  PropQuery comp = fwd;
  comp.terms[1] = PropTerm::Delta(7, 9);
  EXPECT_EQ(comp.NumDeltaTerms(), 2u);  // compensation query
  EXPECT_FALSE(comp.HasBaseTerm());
}

TEST_F(PropQueryTest, NegationFlipsSignOnly) {
  PropQuery q = PropQuery::AllBase(view_);
  q.terms[0] = PropTerm::Delta(1, 2);
  PropQuery n = q.Negated();
  EXPECT_EQ(n.sign, -1);
  EXPECT_EQ(n.Negated().sign, 1);
  EXPECT_EQ(n.ToString(), "-R1(1, 2] * R2");
  EXPECT_TRUE(n.terms[0].is_delta);
  EXPECT_EQ(n.terms[0].range, (CsnRange{1, 2}));
}

TEST(IntervalPolicyTest, FixedClampss) {
  DeltaTable dt("d", Schema({Column{"k", ValueType::kInt64}}), true);
  FixedInterval fixed(10);
  EXPECT_EQ(fixed.NextBoundary(5, 100, dt), 15u);
  EXPECT_EQ(fixed.NextBoundary(95, 100, dt), 100u);
  EXPECT_EQ(fixed.NextBoundary(100, 100, dt), 100u);  // no progress
}

TEST(IntervalPolicyTest, DrainTakesEverything) {
  DeltaTable dt("d", Schema({Column{"k", ValueType::kInt64}}), true);
  DrainInterval drain;
  EXPECT_EQ(drain.NextBoundary(5, 100, dt), 100u);
  EXPECT_EQ(drain.NextBoundary(100, 100, dt), 100u);
}

TEST(IntervalPolicyTest, TargetRowsFollowsDensity) {
  DeltaTable dt("d", Schema({Column{"k", ValueType::kInt64}}), true);
  // Dense burst at ts 10, then sparse.
  for (int i = 0; i < 5; ++i) {
    dt.Append(DeltaRow(Tuple{Value(int64_t{i})}, +1, 10));
  }
  dt.Append(DeltaRow(Tuple{Value(int64_t{9})}, +1, 50));
  TargetRowsInterval policy(5);
  // From 0: the 5th row lands at ts 10 -> short interval in dense times.
  EXPECT_EQ(policy.NextBoundary(0, 100, dt), 10u);
  // From 10: only one row remains -> stretch to the cap.
  EXPECT_EQ(policy.NextBoundary(10, 100, dt), 100u);
  // No progress possible.
  EXPECT_EQ(policy.NextBoundary(100, 100, dt), 100u);
}

}  // namespace
}  // namespace rollview
