// Union views (the paper's union extension): branches propagate
// independently; the union rolls to min(branch high-water marks).

#include "ivm/union_view.h"

#include <gtest/gtest.h>

#include "ivm/propagate.h"
#include "ivm/rolling.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class UnionViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 40, 25, 6, 6));
    env_.CatchUpCapture();

    // Two branches over the same join, partitioned by a selection on
    // S.sval parity -- a classic union-of-selections view.
    SpjViewDef low = workload_.ViewDef();
    low.selection = Expr::Compare(Expr::CmpOp::kLt, Expr::Column(5),
                                  Expr::Literal(Value(int64_t{1} << 62)));
    SpjViewDef high = workload_.ViewDef();
    high.selection = Expr::Compare(Expr::CmpOp::kGe, Expr::Column(5),
                                   Expr::Literal(Value(int64_t{1} << 62)));
    ASSERT_OK_AND_ASSIGN(b1_, env_.views()->CreateView("Vlow", low));
    ASSERT_OK_AND_ASSIGN(b2_, env_.views()->CreateView("Vhigh", high));
    ASSERT_OK(env_.views()->Materialize(b1_));
    ASSERT_OK(env_.views()->Materialize(b2_));
  }

  void RunUpdates(size_t txns, uint64_t seed) {
    UpdateStream r_stream(env_.db(), workload_.RStream(seed, seed), seed);
    UpdateStream s_stream(env_.db(), workload_.SStream(seed + 70, seed + 1),
                          seed + 1);
    for (size_t i = 0; i < txns; ++i) {
      ASSERT_OK(r_stream.RunTransaction());
      if (i % 2 == 0) ASSERT_OK(s_stream.RunTransaction());
    }
    env_.CatchUpCapture();
  }

  // Oracle: multiset union of the branches' snapshot states.
  DeltaRows OracleUnion(Csn t) {
    DeltaRows a = OracleViewState(env_.db(), b1_, t);
    DeltaRows b = OracleViewState(env_.db(), b2_, t);
    return NetEffect(Union(std::move(a), b));
  }

  TestEnv env_;
  TwoTableWorkload workload_;
  View* b1_ = nullptr;
  View* b2_ = nullptr;
};

TEST_F(UnionViewTest, CreateRejectsIncompatibleSchemas) {
  SpjViewDef projected = workload_.ViewDef();
  projected.projection = {0, 1};
  ASSERT_OK_AND_ASSIGN(View* narrow,
                       env_.views()->CreateView("Vnarrow", projected));
  EXPECT_TRUE(UnionView::Create({b1_, narrow}).status().IsInvalidArgument());
  EXPECT_TRUE(UnionView::Create({}).status().IsInvalidArgument());
}

TEST_F(UnionViewTest, InitializeAndRollMatchOracle) {
  ASSERT_OK_AND_ASSIGN(auto u, UnionView::Create({b1_, b2_}));
  ASSERT_OK(u->AlignAndInitialize(env_.views()));
  EXPECT_TRUE(NetEquivalent(OracleUnion(u->mv()->csn()),
                            u->mv()->AsDeltaRows()));

  RunUpdates(10, 80);
  Csn target = env_.capture()->high_water_mark();
  // Branches propagate with *different* algorithms and intervals.
  Propagator p1(env_.views(), b1_, std::make_unique<FixedInterval>(3));
  RollingPropagator p2(env_.views(), b2_, /*uniform_interval=*/7);
  ASSERT_OK(p1.RunUntil(target));
  ASSERT_OK(p2.RunUntil(target));
  EXPECT_GE(u->high_water_mark(), target);

  ASSERT_OK(u->RollTo(target));
  EXPECT_TRUE(NetEquivalent(OracleUnion(target), u->mv()->AsDeltaRows()));
}

TEST_F(UnionViewTest, HwmIsMinOverBranches) {
  ASSERT_OK_AND_ASSIGN(auto u, UnionView::Create({b1_, b2_}));
  ASSERT_OK(u->AlignAndInitialize(env_.views()));
  RunUpdates(8, 81);
  Csn target = env_.capture()->high_water_mark();
  // Only the first branch propagates: the union is pinned to branch 2.
  Propagator p1(env_.views(), b1_, std::make_unique<DrainInterval>());
  ASSERT_OK(p1.RunUntil(target));
  EXPECT_EQ(u->high_water_mark(), b2_->high_water_mark());
  EXPECT_LT(u->high_water_mark(), target);
  EXPECT_TRUE(u->RollTo(target).IsOutOfRange());

  // Branch 2 catches up; now the union can roll.
  Propagator p2(env_.views(), b2_, std::make_unique<DrainInterval>());
  ASSERT_OK(p2.RunUntil(target));
  ASSERT_OK(u->RollTo(target));
  EXPECT_TRUE(NetEquivalent(OracleUnion(target), u->mv()->AsDeltaRows()));
}

TEST_F(UnionViewTest, PointInTimeAcrossBranches) {
  ASSERT_OK_AND_ASSIGN(auto u, UnionView::Create({b1_, b2_}));
  ASSERT_OK(u->AlignAndInitialize(env_.views()));
  Csn t0 = u->mv()->csn();
  RunUpdates(9, 82);
  Csn target = env_.capture()->high_water_mark();
  Propagator p1(env_.views(), b1_, std::make_unique<FixedInterval>(4));
  Propagator p2(env_.views(), b2_, std::make_unique<FixedInterval>(4));
  ASSERT_OK(p1.RunUntil(target));
  ASSERT_OK(p2.RunUntil(target));
  for (Csn stop = t0 + 3; stop <= target; stop += 5) {
    ASSERT_OK(u->RollTo(stop));
    ASSERT_TRUE(NetEquivalent(OracleUnion(stop), u->mv()->AsDeltaRows()))
        << "at " << stop;
  }
}

}  // namespace
}  // namespace rollview
