// Directed stress of the hardest rolling-propagation corner: three-way
// views where changes to all three relations land *between* maintenance
// query execution times, so pairwise-overlap compensation must account for
// strips whose execution times bound different slabs of the coordinate
// space. This is the scenario where a naive reading of Figure 10's
// compensation vector over- or under-counts.

#include <gtest/gtest.h>

#include "ivm/rolling.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class RollingTripleOverlapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema schema({Column{"j", ValueType::kInt64},
                   Column{"v", ValueType::kInt64}});
    TableOptions opts;
    opts.indexed_columns = {0};
    ASSERT_OK_AND_ASSIGN(r1_, env_.db()->CreateTable("R1", schema, opts));
    ASSERT_OK_AND_ASSIGN(r2_, env_.db()->CreateTable("R2", schema, opts));
    ASSERT_OK_AND_ASSIGN(r3_, env_.db()->CreateTable("R3", schema, opts));
    ASSERT_OK_AND_ASSIGN(
        view_, env_.views()->CreateView(
                   "V", ChainJoin({r1_, r2_, r3_}, {{0, 0}, {0, 0}})));
    ASSERT_OK(env_.views()->Materialize(view_));
    t0_ = view_->propagate_from.load();
  }

  Csn Insert(TableId t, int64_t j, int64_t v) {
    auto txn = env_.db()->Begin();
    EXPECT_OK(env_.db()->Insert(txn.get(), t, {Value(j), Value(v)}));
    EXPECT_OK(env_.db()->Commit(txn.get()));
    env_.CatchUpCapture();
    return txn->commit_csn();
  }

  TestEnv env_;
  TableId r1_ = kInvalidTableId, r2_ = kInvalidTableId,
          r3_ = kInvalidTableId;
  View* view_ = nullptr;
  Csn t0_ = kNullCsn;
};

TEST_F(RollingTripleOverlapTest, ChangeLandsBetweenMaintenanceCommits) {
  // Interval policies sized so each relation's pending change is consumed
  // by its own forward strip, with strips executing at different times.
  std::vector<std::unique_ptr<IntervalPolicy>> policies;
  for (int i = 0; i < 3; ++i) {
    policies.push_back(std::make_unique<TargetRowsInterval>(1));
  }
  RollingPropagator prop(env_.views(), view_, std::move(policies));

  // Change R1, let rolling run exactly one step (the R1 forward strip,
  // executed at te1).
  Insert(r1_, /*j=*/7, /*v=*/100);
  ASSERT_OK_AND_ASSIGN(bool advanced, prop.Step());
  ASSERT_TRUE(advanced);

  // NOW change R3 (its commit lands after te1) and then R2 (after that).
  // The joined tuple (r1, r2, r3) comes into existence at the R2 change.
  Insert(r3_, 7, 300);
  Insert(r2_, 7, 200);

  // Let rolling finish the history, however many steps it takes.
  Csn target = env_.capture()->high_water_mark();
  ASSERT_OK(prop.RunUntil(target));
  Csn hwm = view_->high_water_mark();
  ASSERT_GE(hwm, target);

  // The golden invariant on every sub-window. The view has exactly one
  // tuple; it must appear exactly once, at the time of the last of the
  // three changes.
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, hwm, 1));
  DeltaRows net = NetEffect(view_->view_delta->Scan(CsnRange{t0_, hwm}));
  ASSERT_EQ(net.size(), 1u);
  EXPECT_EQ(net[0].count, +1);
}

TEST_F(RollingTripleOverlapTest, RepeatedInterleavedTripleChanges) {
  std::vector<std::unique_ptr<IntervalPolicy>> policies;
  policies.push_back(std::make_unique<FixedInterval>(1));
  policies.push_back(std::make_unique<FixedInterval>(2));
  policies.push_back(std::make_unique<FixedInterval>(3));
  RollingPropagator prop(env_.views(), view_, std::move(policies));

  Rng rng(99);
  Csn target = t0_;
  for (int round = 0; round < 12; ++round) {
    // One change to a random relation, joining key drawn from a tiny
    // domain so three-way matches are common...
    TableId tables[3] = {r1_, r2_, r3_};
    Insert(tables[rng.Uniform(0, 2)], rng.Uniform(0, 2), round);
    // ...then a bounded number of rolling steps so maintenance commits
    // interleave tightly with the updates.
    int steps = static_cast<int>(rng.Uniform(0, 3));
    for (int s = 0; s < steps; ++s) {
      ASSERT_OK(prop.Step().status());
    }
    target = env_.capture()->high_water_mark();
  }
  ASSERT_OK(prop.RunUntil(target));
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_,
                                   view_->high_water_mark(), 1));
}

TEST_F(RollingTripleOverlapTest, DeleteVariantAcrossMaintenanceCommits) {
  // Preload a full join, then delete the three participants with the R1
  // strip executing between the deletions.
  Insert(r1_, 5, 1);
  Insert(r2_, 5, 2);
  Insert(r3_, 5, 3);
  std::vector<std::unique_ptr<IntervalPolicy>> policies;
  for (int i = 0; i < 3; ++i) {
    policies.push_back(std::make_unique<TargetRowsInterval>(1));
  }
  RollingPropagator prop(env_.views(), view_, std::move(policies));
  ASSERT_OK(prop.RunUntil(env_.capture()->high_water_mark()));

  auto del = [&](TableId t, int64_t v) {
    auto txn = env_.db()->Begin();
    auto n = env_.db()->DeleteTuple(txn.get(), t,
                                    {Value(int64_t{5}), Value(v)});
    ASSERT_TRUE(n.ok() && n.value() == 1);
    ASSERT_OK(env_.db()->Commit(txn.get()));
    env_.CatchUpCapture();
  };
  del(r1_, 1);
  ASSERT_OK(prop.Step().status());  // R1 strip between the deletions
  del(r3_, 3);
  del(r2_, 2);
  ASSERT_OK(prop.RunUntil(env_.capture()->high_water_mark()));

  Csn hwm = view_->high_water_mark();
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), view_, t0_, hwm, 1));
  DeltaRows net = NetEffect(view_->view_delta->Scan(CsnRange{t0_, hwm}));
  EXPECT_TRUE(net.empty());  // the tuple appeared and disappeared
}

TEST_F(RollingTripleOverlapTest, DeferredModeCounterexample) {
  // The minimal interleaving where the literal Figure 10 compensation
  // (higher axes bounded by the forward query's execution time) loses a
  // tuple on a 3-way view:
  //   1. r1 and r2 commit;
  //   2. the R1 forward strip executes (at te1);
  //   3. r3 commits (between te1 and the R2 strip's execution);
  //   4. propagation finishes.
  // The R2 strip's compensation then subtracts the (S1, S2) pair overlap
  // over an R3 slab (te1, te2] that S1 -- which saw R3 at te1, before r3
  // existed -- never actually covered, and nothing ever re-adds it.
  //
  // This test PINS the misbehavior so the deviation from the paper's
  // pseudocode stays documented; the frontier mode (default, asserted
  // below) handles the same history correctly.
  for (CompensationMode mode :
       {CompensationMode::kFrontier, CompensationMode::kDeferredFigure10}) {
    TestEnv env;
    Schema schema({Column{"j", ValueType::kInt64},
                   Column{"v", ValueType::kInt64}});
    TableOptions opts;
    opts.indexed_columns = {0};
    ASSERT_OK_AND_ASSIGN(TableId a, env.db()->CreateTable("A", schema, opts));
    ASSERT_OK_AND_ASSIGN(TableId b, env.db()->CreateTable("B", schema, opts));
    ASSERT_OK_AND_ASSIGN(TableId c, env.db()->CreateTable("C", schema, opts));
    ASSERT_OK_AND_ASSIGN(
        View* view, env.views()->CreateView(
                        "V", ChainJoin({a, b, c}, {{0, 0}, {0, 0}})));
    ASSERT_OK(env.views()->Materialize(view));
    Csn t0 = view->propagate_from.load();

    auto ins = [&](TableId t, int64_t v) {
      auto txn = env.db()->Begin();
      ASSERT_OK(env.db()->Insert(txn.get(), t,
                                 {Value(int64_t{7}), Value(v)}));
      ASSERT_OK(env.db()->Commit(txn.get()));
      env.CatchUpCapture();
    };

    std::vector<std::unique_ptr<IntervalPolicy>> ps;
    for (int i = 0; i < 3; ++i) {
      ps.push_back(std::make_unique<TargetRowsInterval>(1));
    }
    RollingOptions options;
    options.compensation = mode;
    RollingPropagator prop(env.views(), view, std::move(ps), options);

    ins(a, 100);
    ins(b, 200);
    ASSERT_OK(prop.Step().status());  // the R1 strip, executed now
    ins(c, 300);                      // lands between maintenance commits
    ASSERT_OK(prop.RunUntil(env.capture()->high_water_mark()));

    Csn hwm = view->high_water_mark();
    DeltaRows net = NetEffect(view->view_delta->Scan(CsnRange{t0, hwm}));
    if (mode == CompensationMode::kFrontier) {
      ASSERT_EQ(net.size(), 1u) << "frontier mode must keep the tuple";
      EXPECT_EQ(net[0].count, +1);
      EXPECT_TRUE(CheckTimedDeltaSweep(env.db(), view, t0, hwm, 1));
    } else {
      // The documented hole: the tuple is lost. If this ever starts
      // passing, the deferred implementation changed -- re-evaluate
      // whether it became exact and update DESIGN.md accordingly.
      EXPECT_TRUE(net.empty())
          << "deferred Figure-10 mode unexpectedly produced "
          << net.size() << " tuples -- counterexample no longer applies";
    }
  }
}

}  // namespace
}  // namespace rollview
