#include "ivm/view_manager.h"

#include <gtest/gtest.h>

#include "ivm/compute_delta.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

class ViewManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 30, 20, 4, 2));
    env_.CatchUpCapture();
  }

  TestEnv env_;
  TwoTableWorkload workload_;
};

TEST_F(ViewManagerTest, CreateFindAndDuplicate) {
  ASSERT_OK_AND_ASSIGN(View* v,
                       env_.views()->CreateView("V", workload_.ViewDef()));
  EXPECT_EQ(env_.views()->Find("V"), v);
  EXPECT_EQ(env_.views()->Find("missing"), nullptr);
  EXPECT_TRUE(env_.views()
                  ->CreateView("V", workload_.ViewDef())
                  .status()
                  .IsAlreadyExists());
}

TEST_F(ViewManagerTest, ResolveRejectsBadDefinitions) {
  SpjViewDef empty;
  EXPECT_TRUE(env_.views()->CreateView("E", empty)
                  .status()
                  .IsInvalidArgument());

  SpjViewDef bad_table;
  bad_table.tables = {9999};
  EXPECT_TRUE(
      env_.views()->CreateView("T", bad_table).status().IsNotFound());

  SpjViewDef bad_join = workload_.ViewDef();
  bad_join.joins[0].right_col = 99;
  EXPECT_TRUE(env_.views()->CreateView("J", bad_join)
                  .status()
                  .IsInvalidArgument());

  SpjViewDef bad_proj = workload_.ViewDef();
  bad_proj.projection = {55};
  EXPECT_TRUE(env_.views()->CreateView("P", bad_proj)
                  .status()
                  .IsInvalidArgument());

  SpjViewDef bad_sel = workload_.ViewDef();
  bad_sel.selection = Expr::Compare(Expr::CmpOp::kEq, Expr::Column(77),
                                    Expr::Literal(Value(int64_t{1})));
  EXPECT_TRUE(env_.views()->CreateView("S", bad_sel)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(ViewManagerTest, MaterializeSetsControlState) {
  ASSERT_OK_AND_ASSIGN(View* v,
                       env_.views()->CreateView("V", workload_.ViewDef()));
  EXPECT_EQ(v->mv->csn(), kNullCsn);
  ASSERT_OK(env_.views()->Materialize(v));
  Csn csn = v->mv->csn();
  EXPECT_GT(csn, 0u);
  EXPECT_EQ(v->propagate_from.load(), csn);
  EXPECT_EQ(v->high_water_mark(), csn);
  EXPECT_TRUE(NetEquivalent(OracleViewState(env_.db(), v, csn),
                            v->mv->AsDeltaRows()));
}

TEST_F(ViewManagerTest, ViewWithSelectionAndProjection) {
  // V = pi_{R.rkey, S.sval}(sigma_{R.rval >= S.sval}(R |><| S)).
  SpjViewDef def = workload_.ViewDef();
  def.selection = Expr::Compare(Expr::CmpOp::kGe, Expr::Column(2),
                                Expr::Column(5));
  def.projection = {0, 5};
  ASSERT_OK_AND_ASSIGN(View* v, env_.views()->CreateView("VSP", def));
  EXPECT_EQ(v->resolved.view_schema().num_columns(), 2u);
  EXPECT_EQ(v->resolved.view_schema().column(0).name, "rkey");
  EXPECT_EQ(v->resolved.view_schema().column(1).name, "sval");
  ASSERT_OK(env_.views()->Materialize(v));

  // The projection can merge distinct join results into one tuple with
  // count > 1; verify against the oracle.
  EXPECT_TRUE(NetEquivalent(OracleViewState(env_.db(), v, v->mv->csn()),
                            v->mv->AsDeltaRows()));

  // And the full propagate/apply cycle still works under projection.
  UpdateStream stream(env_.db(), workload_.RStream(1, 5), 5);
  ASSERT_OK(stream.RunTransactions(10));
  env_.CatchUpCapture();
  Csn target = env_.capture()->high_water_mark();
  QueryRunner runner(env_.views(), v);
  ComputeDeltaOp op(&runner);
  ASSERT_OK(op.PropagateInterval(v, v->propagate_from.load(), target));
  EXPECT_TRUE(CheckTimedDeltaSweep(env_.db(), v, v->propagate_from.load(),
                                   target, 4));
}

TEST_F(ViewManagerTest, ConcatIndexArithmetic) {
  ASSERT_OK_AND_ASSIGN(View* v,
                       env_.views()->CreateView("V", workload_.ViewDef()));
  const ResolvedView& rv = v->resolved;
  EXPECT_EQ(rv.num_terms(), 2u);
  EXPECT_EQ(rv.term_offset(0), 0u);
  EXPECT_EQ(rv.term_width(0), 3u);
  EXPECT_EQ(rv.term_offset(1), 3u);
  EXPECT_EQ(rv.ConcatIndex(1, 2), 5u);
  EXPECT_EQ(rv.view_schema().num_columns(), 6u);
}

}  // namespace
}  // namespace rollview
