// Crash-injection recovery: a full maintenance history (updates, capture,
// rolling propagation, apply, periodic checkpoints) is crashed at dozens of
// seeded byte positions -- record boundaries, torn mid-record tails, and
// single-bit corruptions -- and recovered into a fresh engine. After every
// crash, resumed maintenance must converge to a view identical to
// from-scratch recomputation in the recovered engine, with zero
// re-propagated strips: a duplicated strip would double-count its rows and
// break both the MV-vs-oracle equality and the Definition 4.2 timed-delta
// window checks. Deterministic under the fixed seeds.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/rng.h"
#include "harness/crash_harness.h"
#include "ivm/maintenance.h"
#include "storage/wal_codec.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

// History + crash-image bundle shared by the tests below.
struct History {
  std::unique_ptr<TestEnv> env;
  TwoTableWorkload workload;
  View* view = nullptr;
  std::string encoded_wal;  // the full log at quiescence
  Csn frontier = kNullCsn;  // high-water mark the live view reached
};

// Builds a braided log: bulk load, materialization (initial checkpoint),
// then rounds of update transactions interleaved with propagation drains so
// commits, view-delta appends, cursor records, applied marks, and periodic
// checkpoints alternate throughout the log -- a cut anywhere lands in the
// middle of something.
History BuildHistory(uint64_t seed) {
  History h;
  CaptureOptions copts;
  copts.truncate_wal = false;  // the log IS the durable state
  h.env = std::make_unique<TestEnv>(copts);
  Db* db = h.env->db();

  auto workload = TwoTableWorkload::Create(db, 60, 40, 8, seed);
  EXPECT_TRUE(workload.ok());
  h.workload = workload.value();
  h.env->CatchUpCapture();
  auto view = h.env->views()->CreateView("V", h.workload.ViewDef());
  EXPECT_TRUE(view.ok());
  h.view = view.value();
  EXPECT_TRUE(h.env->views()->Materialize(h.view).ok());

  MaintenanceService::Options mopts;
  mopts.checkpoint_every_steps = 4;
  mopts.target_rows_per_query = 8;  // several strips per round
  mopts.apply_continuously = true;
  mopts.prune_view_delta = false;  // keep the full delta checkable
  MaintenanceService service(h.env->views(), h.view, mopts);

  UpdateStream r_updates(db, h.workload.RStream(1, seed + 1), seed + 1);
  UpdateStream s_updates(db, h.workload.SStream(2, seed + 2), seed + 2);
  for (int round = 0; round < 6; ++round) {
    EXPECT_TRUE(r_updates.RunTransactions(3).ok());
    EXPECT_TRUE(s_updates.RunTransactions(2).ok());
    h.env->CatchUpCapture();
    EXPECT_TRUE(service.Drain(db->stable_csn()).ok());
  }
  // stable_csn keeps advancing past the drain target (each propagation
  // step commits its own transactions), so the HWM the view actually
  // reached -- not stable_csn -- is what recovery must not lose.
  h.frontier = h.view->high_water_mark();
  h.encoded_wal = SnapshotEncodedWal(db);
  return h;
}

// Recovers from `damaged`, resumes maintenance to the recovered frontier,
// and checks the MV against from-scratch recomputation in the recovered
// engine. Returns false (without failing the test) only when the cut fell
// so early that the view's base tables do not exist yet; every other
// outcome must verify. `deep` additionally runs the timed-delta sweep and
// pushes fresh post-recovery updates through the resumed pipeline.
bool RecoverAndVerify(const History& h, const std::string& damaged,
                      bool deep, uint64_t seed) {
  auto recovered =
      CrashAndRecover(damaged, {{"V", h.workload.ViewDef()}});
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
  if (!recovered.ok()) return true;  // failure recorded above
  RecoveredSystem sys = std::move(recovered).value();

  View* view = sys.views->Find("V");
  if (view == nullptr) {
    // The cut predates the base tables; nothing view-shaped to verify.
    EXPECT_FALSE(sys.unregistered_views.empty());
    return false;
  }
  if (sys.report.views_recovered == 0) {
    // The cut predates the first checkpoint: cold-start fallback. The view
    // must still reach a correct state, just not incrementally.
    EXPECT_TRUE(sys.views->Materialize(view).ok());
  }

  MaintenanceService::Options mopts;
  mopts.checkpoint_every_steps = 3;
  mopts.apply_continuously = true;
  mopts.prune_view_delta = false;
  MaintenanceService service(sys.views.get(), view, mopts);
  Csn frontier = sys.db->stable_csn();
  EXPECT_TRUE(service.Drain(frontier).ok());
  EXPECT_GE(view->high_water_mark(), frontier);
  EXPECT_GE(view->mv->csn(), frontier);

  // MV == from-scratch recomputation at the MV's CSN. A re-propagated
  // (duplicate) strip would double-count its rows here.
  DeltaRows oracle = OracleViewState(sys.db.get(), view, view->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()))
      << "recovered MV diverges from recomputation";

  if (deep) {
    // Definition 4.2 over the whole maintained window: every sub-window of
    // the recovered+resumed delta rolls the oracle correctly (this is the
    // strongest duplicate-strip detector: a duplicate breaks the windows
    // that straddle it even when the endpoint states happen to agree).
    Csn from = view->propagate_from.load(std::memory_order_acquire);
    Csn to = view->high_water_mark();
    if (to > from) {
      EXPECT_TRUE(CheckTimedDeltaSweep(sys.db.get(), view, from, to,
                                       std::max<Csn>(1, (to - from) / 7)));
    }

    // The resumed pipeline is live, not just replayed: new updates flow
    // end to end through the recovered cursors.
    UpdateStream fresh(sys.db.get(), h.workload.RStream(9, seed), seed);
    EXPECT_TRUE(fresh.RunTransactions(4).ok());
    sys.capture->CatchUp();
    Csn frontier2 = sys.db->stable_csn();
    EXPECT_TRUE(service.Drain(frontier2).ok());
    EXPECT_GE(view->mv->csn(), frontier2);
    DeltaRows oracle2 =
        OracleViewState(sys.db.get(), view, view->mv->csn());
    EXPECT_TRUE(NetEquivalent(oracle2, view->mv->AsDeltaRows()))
        << "post-recovery updates diverge from recomputation";
  }
  return true;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { history_ = new History(BuildHistory(0xC0FFEE)); }
  static void TearDownTestSuite() {
    delete history_;
    history_ = nullptr;
  }
  static History* history_;
};

History* CrashRecoveryTest::history_ = nullptr;

// The acceptance property: >= 50 random crash points -- truncations at
// arbitrary byte offsets (torn tails included) and single-bit corruptions --
// all recover to a view identical to recomputation, deterministically under
// the fixed seed.
TEST_F(CrashRecoveryTest, FiftyRandomCrashPointsRecoverExactly) {
  const History& h = *history_;
  ASSERT_GT(h.encoded_wal.size(), 1000u);

  Rng rng(0x63726173);  // "cras"
  int verified = 0;
  const int kTrials = 80;
  for (int trial = 0; trial < kTrials; ++trial) {
    CrashSpec spec;
    spec.keep_bytes = rng.Uniform(0, h.encoded_wal.size());
    if (trial % 3 == 2) {
      // Bit-flip corruption somewhere in the surviving bytes.
      spec.flip_bit = true;
      spec.flip_offset = rng.Uniform(0, h.encoded_wal.size() - 1);
    }
    std::string damaged = ApplyCrashSpec(h.encoded_wal, spec);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": keep " +
                 std::to_string(spec.keep_bytes) + "/" +
                 std::to_string(h.encoded_wal.size()) +
                 (spec.flip_bit
                      ? " flip@" + std::to_string(spec.flip_offset)
                      : ""));
    if (RecoverAndVerify(h, damaged, /*deep=*/trial % 10 == 0,
                         /*seed=*/0xD00D + trial)) {
      ++verified;
    }
    if (HasFatalFailure()) return;
  }
  EXPECT_GE(verified, 50) << "too few crash points produced a verifiable "
                             "view (cuts landed before the base tables)";
}

// A clean "crash" (full log, no damage) is pure recovery: everything the
// old engine knew is reconstructed, nothing is re-propagated, and the
// recovered view matches without running a single propagation step.
TEST_F(CrashRecoveryTest, CleanShutdownRecoversWithoutRepropagation) {
  const History& h = *history_;
  auto recovered =
      CrashAndRecover(h.encoded_wal, {{"V", h.workload.ViewDef()}});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  RecoveredSystem sys = std::move(recovered).value();
  EXPECT_FALSE(sys.torn_tail);
  EXPECT_TRUE(sys.corruption.empty());
  EXPECT_EQ(sys.report.views_recovered, 1u);
  EXPECT_GT(sys.report.checkpoints_seen, 1u);  // initial + cadence
  EXPECT_GT(sys.report.cursor_records, 0u);

  View* view = sys.views->Find("V");
  ASSERT_NE(view, nullptr);
  // Cursors put the high-water mark at the old frontier with no new steps.
  EXPECT_GE(view->high_water_mark(), h.frontier);
  // Rolling the recovered delta to the frontier reproduces the oracle.
  MaintenanceService service(sys.views.get(), view);
  ASSERT_OK(service.Drain(sys.db->stable_csn()));
  DeltaRows oracle = OracleViewState(sys.db.get(), view, view->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()));
}

// Crashing a recovered system again (including with zero new work) must be
// idempotent: the recovery checkpoint written at the end of Recover shadows
// the first generation's discarded tail, so generation two starts from
// exactly the state generation one recovered to.
TEST_F(CrashRecoveryTest, RecrashIsIdempotent) {
  const History& h = *history_;
  Rng rng(0x72657065);  // "repe"
  for (int trial = 0; trial < 5; ++trial) {
    CrashSpec first;
    // Land inside the maintenance suffix (past the bulk load).
    first.keep_bytes =
        rng.Uniform(h.encoded_wal.size() / 2, h.encoded_wal.size());
    std::string damaged = ApplyCrashSpec(h.encoded_wal, first);
    auto gen1 = CrashAndRecover(damaged, {{"V", h.workload.ViewDef()}});
    ASSERT_TRUE(gen1.ok()) << gen1.status().ToString();
    View* v1 = gen1.value().views->Find("V");
    ASSERT_NE(v1, nullptr);
    ASSERT_EQ(gen1.value().report.views_recovered, 1u);

    // Crash generation one immediately -- no new work, full surviving log.
    std::string wal2 = SnapshotEncodedWal(gen1.value().db.get());
    auto gen2 = CrashAndRecover(wal2, {{"V", h.workload.ViewDef()}});
    ASSERT_TRUE(gen2.ok()) << gen2.status().ToString();
    View* v2 = gen2.value().views->Find("V");
    ASSERT_NE(v2, nullptr);
    ASSERT_EQ(gen2.value().report.views_recovered, 1u);
    // Nothing recovered by generation one may be re-discarded or lost.
    EXPECT_EQ(v2->mv->csn(), v1->mv->csn());
    EXPECT_TRUE(NetEquivalent(v1->mv->AsDeltaRows(), v2->mv->AsDeltaRows()));
    EXPECT_EQ(v2->high_water_mark(), v1->high_water_mark());
    CursorState c1 = v1->LoadCursors();
    CursorState c2 = v2->LoadCursors();
    EXPECT_EQ(c2.tfwd, c1.tfwd);
    EXPECT_EQ(c2.tcomp, c1.tcomp);

    // Both generations converge to the same recomputation.
    MaintenanceService service(gen2.value().views.get(), v2);
    ASSERT_OK(service.Drain(gen2.value().db->stable_csn()));
    DeltaRows oracle =
        OracleViewState(gen2.value().db.get(), v2, v2->mv->csn());
    EXPECT_TRUE(NetEquivalent(oracle, v2->mv->AsDeltaRows()));
  }
}

// Live crash schedule: a seeded FaultInjector decides *when* to crash while
// updaters and background maintenance are actually running, so the snapshot
// catches genuinely mid-flight strips (not just offline byte positions).
TEST(CrashScheduleTest, InjectedCrashPointsDuringLiveMaintenance) {
  CaptureOptions copts;
  copts.truncate_wal = false;
  TestEnv env(copts);
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 50, 30, 8, 0xBEEF));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views()->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views()->Materialize(view));
  env.StartCapture();

  FaultInjector::Options fopts;
  fopts.seed = 0xCAFE;
  fopts.crash_probability = 0.15;
  FaultInjector fi(fopts);
  env.db()->SetFaultInjector(&fi);

  MaintenanceService::Options mopts;
  mopts.checkpoint_every_steps = 4;
  mopts.target_rows_per_query = 8;
  MaintenanceService service(env.views(), view, mopts);
  service.Start();

  UpdateStream updates(env.db(), workload.RStream(1, 77), 77);
  std::vector<std::string> snapshots;
  for (int txn = 0; txn < 40 && snapshots.size() < 6; ++txn) {
    ASSERT_OK(updates.RunTransaction());
    if (fi.MaybeCrashPoint()) {
      // Crash "now": whatever the WAL holds at this instant is the image.
      // Background propagation is mid-whatever-it-was-doing; the snapshot
      // is record-atomic (the log mutex), like a crash between writes.
      snapshots.push_back(SnapshotEncodedWal(env.db()));
    }
  }
  ASSERT_OK(service.Stop());
  env.db()->SetFaultInjector(nullptr);
  EXPECT_GE(fi.GetStats().crash_points, snapshots.size());
  ASSERT_GE(snapshots.size(), 3u) << "crash schedule fired too rarely";

  History h;
  h.workload = workload;  // only the def is needed by RecoverAndVerify
  for (size_t i = 0; i < snapshots.size(); ++i) {
    SCOPED_TRACE("live snapshot " + std::to_string(i));
    EXPECT_TRUE(RecoverAndVerify(h, snapshots[i], /*deep=*/i == 0,
                                 /*seed=*/0xF00D + i));
  }
}

}  // namespace
}  // namespace rollview
