// Full-system concurrency: updater threads, background capture, a rolling
// propagation thread, an apply thread, and MV readers all running against
// the same engine -- the deployment shape of the paper's prototype
// (Figure 11). Afterwards, quiesce and check the golden invariant.

#include <gtest/gtest.h>

#include <atomic>

#include "harness/mv_reader.h"
#include "harness/worker.h"
#include "ivm/apply.h"
#include "ivm/rolling.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

TEST(ConcurrentTest, UpdatersPropagatorApplierReadersCoexist) {
  TestEnv env;
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 80, 40, 8, 101));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views()->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views()->Materialize(view));
  Csn t0 = view->propagate_from.load();

  env.StartCapture();

  // Updaters: two on R, one on S, each in its own key partition.
  std::vector<std::unique_ptr<UpdateStream>> streams;
  streams.push_back(std::make_unique<UpdateStream>(
      env.db(), workload.RStream(1, 201), 201));
  streams.push_back(std::make_unique<UpdateStream>(
      env.db(), workload.RStream(2, 202), 202));
  streams.push_back(std::make_unique<UpdateStream>(
      env.db(), workload.SStream(3, 203), 203));
  std::vector<std::unique_ptr<Worker>> updaters;
  for (auto& stream : streams) {
    UpdateStream* s = stream.get();
    Worker::Options opts;
    opts.name = "updater";
    // Paced: unpaced updaters would generate history orders of magnitude
    // faster than a small-interval propagator can chase; the benchmarks
    // explore that regime deliberately, the test just needs coexistence.
    opts.target_ops_per_sec = 120.0;
    updaters.push_back(std::make_unique<Worker>(
        [s] { return s->RunTransaction(); }, opts));
  }

  // Rolling propagation, continuously chasing capture with adaptive
  // (target-rows) intervals so it keeps up regardless of update rate.
  std::vector<std::unique_ptr<IntervalPolicy>> policies;
  policies.push_back(std::make_unique<TargetRowsInterval>(64));
  policies.push_back(std::make_unique<TargetRowsInterval>(64));
  RollingPropagator prop(env.views(), view, std::move(policies));
  Worker propagate_worker(
      [&prop]() -> Status {
        Result<bool> r = prop.Step();
        if (!r.ok()) return r.status();
        if (!r.value()) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        return Status::OK();
      },
      Worker::Options{.name = "propagate"});

  // Apply chasing the high-water mark.
  Applier applier(env.views(), view);
  Worker apply_worker(
      [&]() -> Status {
        Csn hwm = view->high_water_mark();
        if (hwm > view->mv->csn()) {
          return applier.RollTo(hwm);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(300));
        return Status::OK();
      },
      Worker::Options{.name = "apply"});

  // Readers hammer the MV.
  MvReader reader(env.views(), view);
  Worker read_worker([&reader] { return reader.ReadOnce(); },
                     Worker::Options{.name = "reader"});

  for (auto& u : updaters) u->Start();
  propagate_worker.Start();
  apply_worker.Start();
  read_worker.Start();

  std::this_thread::sleep_for(std::chrono::milliseconds(1500));

  // Stop updates first; let the pipeline drain.
  for (auto& u : updaters) ASSERT_OK(u->Join());
  ASSERT_OK(env.capture()->WaitForCsn(env.db()->stable_csn()));
  Csn target = env.capture()->high_water_mark();
  ASSERT_OK(propagate_worker.Join());
  ASSERT_OK(prop.RunUntil(target));
  ASSERT_OK(apply_worker.Join());
  ASSERT_OK(read_worker.Join());
  ASSERT_OK(applier.RollTo(view->high_water_mark()));

  // Every thread did real work.
  uint64_t total_txns = 0;
  for (auto& s : streams) total_txns += s->stats().txns;
  EXPECT_GT(total_txns, 50u);
  EXPECT_GT(reader.reads(), 10u);
  EXPECT_GT(prop.runner()->stats().queries, 0u);

  // Golden invariant on the full history, plus MV-vs-oracle.
  DeltaRows oracle = OracleViewState(env.db(), view, view->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()));
  Csn hwm = view->high_water_mark();
  EXPECT_GE(hwm, target);
  EXPECT_TRUE(CheckTimedDeltaWindow(env.db(), view, t0, hwm));
  Csn mid = t0 + (hwm - t0) / 2;
  EXPECT_TRUE(CheckTimedDeltaWindow(env.db(), view, t0, mid));
  EXPECT_TRUE(CheckTimedDeltaWindow(env.db(), view, mid, hwm));
}

TEST(ConcurrentTest, PropagationRetriesThroughDeadlocks) {
  // Tight lock timeouts + contended tables force deadlock-victim aborts;
  // the runner's retry loop must still converge to a correct delta.
  DbOptions db_options;
  db_options.lock_options.wait_timeout = std::chrono::milliseconds(500);
  Db db(db_options);
  LogCapture capture(&db);
  ViewManager views(&db, &capture);

  auto created = TwoTableWorkload::Create(&db, 60, 30, 4, 55);
  ASSERT_TRUE(created.ok());
  TwoTableWorkload workload = created.value();
  capture.CatchUp();
  auto vr = views.CreateView("V", workload.ViewDef());
  ASSERT_TRUE(vr.ok());
  View* view = vr.value();
  ASSERT_OK(views.Materialize(view));
  Csn t0 = view->propagate_from.load();

  capture.Start();
  UpdateStream r1(&db, workload.RStream(1, 301), 301);
  UpdateStream r2(&db, workload.RStream(2, 302), 302);
  UpdateStream s1(&db, workload.SStream(3, 303), 303);
  Worker::Options paced;
  paced.target_ops_per_sec = 150.0;
  Worker w1([&r1] { return r1.RunTransaction(); }, paced);
  Worker w2([&r2] { return r2.RunTransaction(); }, paced);
  Worker w3([&s1] { return s1.RunTransaction(); }, paced);

  std::vector<std::unique_ptr<IntervalPolicy>> dl_policies;
  dl_policies.push_back(std::make_unique<TargetRowsInterval>(32));
  dl_policies.push_back(std::make_unique<TargetRowsInterval>(32));
  RollingPropagator prop(&views, view, std::move(dl_policies));
  Worker pw([&prop]() -> Status {
    Result<bool> r = prop.Step();
    if (!r.ok()) return r.status();
    if (!r.value()) std::this_thread::sleep_for(std::chrono::microseconds(200));
    return Status::OK();
  });

  w1.Start();
  w2.Start();
  w3.Start();
  pw.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  ASSERT_OK(w1.Join());
  ASSERT_OK(w2.Join());
  ASSERT_OK(w3.Join());
  ASSERT_OK(pw.Join());
  ASSERT_OK(capture.WaitForCsn(db.stable_csn()));
  Csn target = capture.high_water_mark();
  ASSERT_OK(prop.RunUntil(target));
  capture.Stop();

  EXPECT_TRUE(CheckTimedDeltaWindow(&db, view, t0,
                                    view->high_water_mark()));
}

TEST(ConcurrentTest, GarbageCollectionDuringPropagation) {
  TestEnv env;
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 40, 20, 4, 77));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views()->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views()->Materialize(view));
  Csn t0 = view->propagate_from.load();

  UpdateStream r1(env.db(), workload.RStream(1, 401), 401);
  RollingPropagator prop(env.views(), view, /*uniform_interval=*/3);
  Applier applier(env.views(), view);

  for (int round = 0; round < 8; ++round) {
    ASSERT_OK(r1.RunTransactions(3));
    env.CatchUpCapture();
    ASSERT_OK(prop.RunUntil(env.capture()->high_water_mark()));
    ASSERT_OK(applier.RollTo(view->high_water_mark()));
    // GC below the MV time: propagation and apply never look back there.
    env.db()->GarbageCollect(view->mv->csn());
  }
  DeltaRows oracle = OracleViewState(env.db(), view, view->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()));
  (void)t0;
}

}  // namespace
}  // namespace rollview
