// End-to-end corruption drill: a live system (two views under background
// maintenance, OLTP updaters, MV readers) takes a silent MV bit flip in one
// view. The scheduled scrubber must detect it, quarantine ONLY that view,
// self-heal by replaying the last digest-good checkpoint + WAL suffix, and
// re-verify -- while the sibling view and foreground traffic keep running.
// Plus the last-good-checkpoint fallback: injected checkpoint payload
// corruption is detected at recovery parse time (payload CRC + content
// digest) and skipped in favor of an earlier good checkpoint.

#include <gtest/gtest.h>

#include <chrono>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "harness/mv_reader.h"
#include "harness/worker.h"
#include "ivm/checkpoint.h"
#include "ivm/maintenance.h"
#include "ivm/scrub.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

CaptureOptions KeepWal() {
  CaptureOptions copts;
  copts.truncate_wal = false;  // repair and recovery replay the WAL
  return copts;
}

TEST(ScrubRepairTest, CorruptionDrillHealsOneViewWhileSiblingRuns) {
  TestEnv env(KeepWal());
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 80, 40, 8, 501));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* damaged,
                       env.views()->CreateView("damaged", workload.ViewDef()));
  ASSERT_OK_AND_ASSIGN(View* sibling,
                       env.views()->CreateView("sibling", workload.ViewDef()));
  ASSERT_OK(env.views()->Materialize(damaged));
  ASSERT_OK(env.views()->Materialize(sibling));
  env.StartCapture();

  auto make_opts = [] {
    MaintenanceService::Options mopts;
    mopts.target_rows_per_query = 32;
    mopts.checkpoint_every_steps = 4;
    mopts.scrub_every_steps = 2;
    mopts.scrub.buckets_per_pass = ViewDigest::kBuckets;  // full sweep
    mopts.scrub.deep_check = DeepCheckMode::kOnMismatch;
    mopts.trace_journal_capacity = 256;
    return mopts;
  };
  MaintenanceService damaged_svc(env.views(), damaged, make_opts());
  MaintenanceService sibling_svc(env.views(), sibling, make_opts());
  damaged_svc.Start();
  sibling_svc.Start();

  // Foreground traffic: two updaters and a reader per view.
  std::vector<std::unique_ptr<UpdateStream>> streams;
  streams.push_back(
      std::make_unique<UpdateStream>(env.db(), workload.RStream(1, 601), 601));
  streams.push_back(
      std::make_unique<UpdateStream>(env.db(), workload.SStream(2, 602), 602));
  MvReader damaged_reader(env.views(), damaged);
  MvReader sibling_reader(env.views(), sibling);
  std::vector<std::unique_ptr<Worker>> workers;
  for (auto& stream : streams) {
    UpdateStream* s = stream.get();
    Worker::Options wopts;
    wopts.name = "updater";
    wopts.target_ops_per_sec = 200.0;
    workers.push_back(
        std::make_unique<Worker>([s] { return s->RunTransaction(); }, wopts));
  }
  for (MvReader* r : {&damaged_reader, &sibling_reader}) {
    Worker::Options wopts;
    wopts.name = "reader";
    wopts.target_ops_per_sec = 500.0;
    // The quarantine gate answers a fail-fast transient Busy; the reader
    // retries past the repair instead of dying.
    wopts.retry_transient_errors = true;
    workers.push_back(
        std::make_unique<Worker>([r] { return r->ReadOnce(); }, wopts));
  }
  for (auto& w : workers) w->Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // The drill: flip one stored bit in `damaged` only. Its apply driver is
  // paused first so an OLTP delete of the (re-keyed) tuple cannot reach
  // Merge before the scrubber heals the extent; propagation, the sibling,
  // and all foreground traffic keep running.
  damaged_svc.PauseApply();
  ASSERT_TRUE(damaged->mv->CorruptRowBit(/*seed=*/41));

  // Detection + repair happen on the damaged view's propagate driver (the
  // scrub cadence); wait for the scrubber to report the heal.
  Scrubber* scrubber = damaged_svc.scrubber();
  ASSERT_NE(scrubber, nullptr);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    ScrubStats stats = scrubber->GetStats();
    if (stats.repairs + stats.rebuilds > 0 && !damaged->quarantined()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  damaged_svc.ResumeApply();

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (auto& w : workers) ASSERT_OK(w->Join());

  Csn frontier = env.db()->stable_csn();
  ASSERT_OK(damaged_svc.Drain(frontier));
  ASSERT_OK(sibling_svc.Drain(frontier));

  // The damaged view healed: mismatch seen, quarantine entered and
  // cleared, repair verified, and the extent agrees with the Def. 4.2
  // oracle at its materialization time.
  ScrubStats stats = scrubber->GetStats();
  EXPECT_GE(stats.mismatches, 1u);
  EXPECT_GE(stats.quarantines, 1u);
  EXPECT_GE(stats.repairs + stats.rebuilds, 1u);
  EXPECT_FALSE(damaged->quarantined());
  EXPECT_TRUE(NetEquivalent(
      OracleViewState(env.db(), damaged, damaged->mv->csn()),
      damaged->mv->AsDeltaRows()))
      << "damaged view diverges from oracle after repair";

  // The sibling never noticed: no mismatches, never quarantined, its
  // readers never bounced off a quarantine gate, and it matches its own
  // oracle.
  ASSERT_NE(sibling_svc.scrubber(), nullptr);
  ScrubStats sibling_stats = sibling_svc.scrubber()->GetStats();
  EXPECT_GT(sibling_stats.passes, 0u);
  EXPECT_EQ(sibling_stats.mismatches, 0u);
  EXPECT_EQ(sibling_stats.quarantines, 0u);
  EXPECT_FALSE(sibling->quarantined());
  EXPECT_EQ(sibling_reader.quarantine_rejects(), 0u);
  EXPECT_TRUE(NetEquivalent(
      OracleViewState(env.db(), sibling, sibling->mv->csn()),
      sibling->mv->AsDeltaRows()));

  // Foreground traffic survived the whole drill (the damaged view's reader
  // may have absorbed fail-fast rejects as transient retries).
  for (auto& w : workers) EXPECT_GT(w->iterations(), 0u);
  EXPECT_GT(damaged_reader.reads(), 0u);

  // Maintenance health: nobody died. (The damaged view's drivers may have
  // absorbed transients during the repair window.)
  EXPECT_NE(damaged_svc.propagate_health(), DriverHealth::kFailed);
  EXPECT_NE(damaged_svc.apply_health(), DriverHealth::kFailed);
  EXPECT_EQ(sibling_svc.Health(), DriverHealth::kRunning);
  ASSERT_OK(damaged_svc.Stop());
  ASSERT_OK(sibling_svc.Stop());

  // The WAL carries the audit trail for the damaged view only.
  std::vector<WalRecord> records;
  env.db()->wal()->ReadFrom(0, std::numeric_limits<size_t>::max(), &records);
  int mismatches = 0, repairs = 0, enters = 0, clears = 0;
  for (const WalRecord& rec : records) {
    if (rec.kind == WalRecord::Kind::kViewScrub) {
      ViewScrubBlob blob;
      ASSERT_TRUE(rec.blob != nullptr && DecodeViewScrubBlob(*rec.blob, &blob));
      EXPECT_EQ(blob.view_name, "damaged");
      if (blob.outcome == "mismatch") ++mismatches;
      if (blob.outcome == "repaired" || blob.outcome == "rebuilt") ++repairs;
    } else if (rec.kind == WalRecord::Kind::kViewQuarantine) {
      ViewQuarantineBlob blob;
      ASSERT_TRUE(rec.blob != nullptr &&
                  DecodeViewQuarantineBlob(*rec.blob, &blob));
      EXPECT_EQ(blob.view_name, "damaged");
      blob.entered ? ++enters : ++clears;
    }
  }
  EXPECT_GE(mismatches, 1);
  EXPECT_GE(repairs, 1);
  EXPECT_GE(enters, 1);
  EXPECT_GE(clears, 1);

  // The scrub cadence left root-level kScrub traces in the journal.
  ASSERT_NE(damaged_svc.trace_journal(), nullptr);
  bool saw_scrub_trace = false;
  for (const obs::StepTrace& t : damaged_svc.trace_journal()->Snapshot()) {
    if (t.root_kind == obs::SpanKind::kScrub) saw_scrub_trace = true;
  }
  EXPECT_TRUE(saw_scrub_trace);
}

TEST(ScrubRepairTest, RepairFallsBackToLastGoodCheckpoint) {
  TestEnv env(KeepWal());
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 60, 30, 8, 502));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views()->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views()->Materialize(view));  // good checkpoint #1

  UpdateStream updates(env.db(), workload.RStream(1, 603), 603);
  ASSERT_OK(updates.RunTransactions(15));
  env.CatchUpCapture();
  {
    MaintenanceService::Options mopts;
    mopts.target_rows_per_query = 8;
    MaintenanceService service(env.views(), view, mopts);
    ASSERT_OK(service.Drain(env.db()->stable_csn()));
    ASSERT_OK(service.Stop());
  }
  CheckpointManager cpm(env.db(), view, CheckpointManager::Options{});
  ASSERT_OK(cpm.CheckpointNow());  // good checkpoint #2 at the frontier

  // Every checkpoint written from here on has one payload bit flipped
  // AFTER encoding -- undetectable by the record framing, caught only by
  // the blob's trailing CRC / content digest at decode time.
  FaultInjector::Options fopts;
  fopts.seed = 88;
  fopts.checkpoint_corrupt_probability = 1.0;
  FaultInjector fi(fopts);
  env.db()->SetFaultInjector(&fi);
  {
    FaultInjector::Scope scope;  // checkpoint writes are scoped sites
    ASSERT_OK(cpm.CheckpointNow());
    ASSERT_OK(cpm.CheckpointNow());
  }
  env.db()->SetFaultInjector(nullptr);
  ASSERT_GT(fi.GetStats().injected_checkpoint_corruptions, 0u);

  // Single-view repair must skip the two corrupt checkpoints, restore from
  // good checkpoint #2, and land exactly on the live frontier.
  CountMap before = view->mv->Contents();
  Csn csn_before = view->mv->csn();
  std::vector<WalRecord> records;
  env.db()->wal()->ReadFrom(0, std::numeric_limits<size_t>::max(), &records);
  ViewManager::RecoveryReport report;
  ASSERT_OK(env.views()->RecoverView(view, records, &report));
  EXPECT_EQ(report.checkpoints_corrupt, 2u);
  EXPECT_EQ(view->mv->csn(), csn_before);
  EXPECT_EQ(view->mv->Contents(), before);
  EXPECT_EQ(view->mv->digest(), ViewDigest::Compute(view->mv->Contents()));

  // The same fallback protects full crash recovery: the parse layer counts
  // and skips the damaged checkpoints for Recover too. (RecoverView just
  // wrote a fresh good checkpoint, so corrupt ones are now shadowed; the
  // report above is the proof the skip logic ran.)
}

TEST(ScrubRepairTest, RepairEscalatesToRebuildWhenNoCheckpointDecodes) {
  TestEnv env(KeepWal());
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 50, 25, 8, 503));
  env.CatchUpCapture();

  // Every checkpoint this view ever writes is corrupted, including the one
  // Materialize writes: replay has nothing to start from.
  FaultInjector::Options fopts;
  fopts.seed = 89;
  fopts.checkpoint_corrupt_probability = 1.0;
  FaultInjector fi(fopts);
  env.db()->SetFaultInjector(&fi);

  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views()->CreateView("V", workload.ViewDef()));
  {
    FaultInjector::Scope scope;
    ASSERT_OK(env.views()->Materialize(view));
  }

  ASSERT_TRUE(view->mv->CorruptRowBit(/*seed=*/17));
  ScrubOptions sopts;
  sopts.buckets_per_pass = ViewDigest::kBuckets;
  Scrubber scrubber(env.views(), view, sopts);
  ScrubOutcome outcome = ScrubOutcome::kClean;
  ASSERT_OK(scrubber.Pass(&outcome));
  EXPECT_EQ(outcome, ScrubOutcome::kRebuilt);
  EXPECT_FALSE(view->quarantined());
  EXPECT_EQ(scrubber.GetStats().rebuilds, 1u);
  EXPECT_TRUE(NetEquivalent(
      OracleViewState(env.db(), view, view->mv->csn()),
      view->mv->AsDeltaRows()));
  env.db()->SetFaultInjector(nullptr);
}

}  // namespace
}  // namespace rollview
