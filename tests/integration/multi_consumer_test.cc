// Integration: every consumer type the library offers draining ONE view's
// timestamped delta simultaneously -- the point-in-time applier, an
// aggregate dashboard, and a union spanning two views -- while a
// maintenance service propagates in the background and retention prunes.
// The decoupling claims of Figs 2-3 stressed end to end.

#include <gtest/gtest.h>

#include "ivm/aggregate_view.h"
#include "ivm/maintenance.h"
#include "ivm/union_view.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

TEST(MultiConsumerTest, ApplierAggregateAndUnionShareOneDelta) {
  TestEnv env;
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 40, 25, 6, 123));
  env.CatchUpCapture();

  // Two branch views (selection split on S.sval sign bit) form a union;
  // the first branch also feeds an aggregate and a plain applier.
  SpjViewDef low = workload.ViewDef();
  low.selection = Expr::Compare(Expr::CmpOp::kLt, Expr::Column(5),
                                Expr::Literal(Value(int64_t{1} << 62)));
  SpjViewDef high = workload.ViewDef();
  high.selection = Expr::Compare(Expr::CmpOp::kGe, Expr::Column(5),
                                 Expr::Literal(Value(int64_t{1} << 62)));
  ASSERT_OK_AND_ASSIGN(View* b1, env.views()->CreateView("b1", low));
  ASSERT_OK_AND_ASSIGN(View* b2, env.views()->CreateView("b2", high));
  ASSERT_OK(env.views()->Materialize(b1));
  ASSERT_OK(env.views()->Materialize(b2));

  ASSERT_OK_AND_ASSIGN(auto uview, UnionView::Create({b1, b2}));
  ASSERT_OK(uview->AlignAndInitialize(env.views()));

  AggSpec spec;
  spec.group_columns = {1};  // R.jkey
  spec.sum_columns = {2};    // R.rval
  ASSERT_OK_AND_ASSIGN(auto agg, AggregateView::Create(b1, spec));
  ASSERT_OK(agg->InitializeFromBaseMv());

  env.StartCapture();
  MaintenanceService::Options mopts;
  mopts.apply_continuously = false;   // consumers roll themselves
  mopts.prune_view_delta = false;
  MaintenanceService m1(env.views(), b1, mopts);
  MaintenanceService m2(env.views(), b2, mopts);
  m1.Start();
  m2.Start();

  UpdateStream r_stream(env.db(), workload.RStream(1, 7), 7);
  UpdateStream s_stream(env.db(), workload.SStream(2, 8), 8);
  for (int round = 0; round < 6; ++round) {
    ASSERT_OK(r_stream.RunTransactions(4));
    ASSERT_OK(s_stream.RunTransactions(2));
    Csn target = env.db()->stable_csn();
    ASSERT_OK(m1.Drain(target));
    ASSERT_OK(m2.Drain(target));

    // Consumers roll to different points, all from the same deltas.
    Csn hwm = std::min(b1->high_water_mark(), b2->high_water_mark());
    Csn mid = b1->mv->csn() + (hwm - b1->mv->csn()) / 2;
    if (mid > b1->mv->csn()) {
      Applier applier(env.views(), b1);
      ASSERT_OK(applier.RollTo(mid));
      ASSERT_TRUE(NetEquivalent(OracleViewState(env.db(), b1, mid),
                                b1->mv->AsDeltaRows()));
    }
    ASSERT_OK(agg->RollTo(hwm));
    ASSERT_OK(uview->RollTo(hwm));
    DeltaRows union_oracle =
        NetEffect(Union(OracleViewState(env.db(), b1, hwm),
                        OracleViewState(env.db(), b2, hwm)));
    ASSERT_TRUE(NetEquivalent(union_oracle, uview->mv()->AsDeltaRows()))
        << "round " << round;
  }
  ASSERT_OK(m1.Stop());
  ASSERT_OK(m2.Stop());

  // Final aggregate cross-check against a fresh oracle aggregation.
  auto groups = agg->Contents();
  std::unordered_map<Tuple, int64_t, TupleHasher> counts;
  for (const DeltaRow& row : OracleViewState(env.db(), b1, agg->csn())) {
    counts[Tuple{row.tuple[1]}] += row.count;
  }
  ASSERT_EQ(groups.size(), counts.size());
  for (const auto& [key, st] : groups) {
    EXPECT_EQ(st.count, counts[key]) << TupleToString(key);
  }
}

}  // namespace
}  // namespace rollview
