// Copyright 2026 The rollview Authors.
//
// Crash consistency of the compiled delta programs' auxiliary half-join
// views. Half-join state is volatile and DERIVED: it is never checkpointed,
// so every crash image by construction captures the state "between the
// main-view apply and the half-join apply" -- the WAL holds the view's
// committed strips while the auxiliary indexes are simply gone. Recovery
// must (a) recompile the programs at view re-registration, (b) reset any
// derived state (ViewManager::Recover calls ViewPrograms::Reset), and
// (c) let the first compiled forward query rebuild each half-join view from
// base-table snapshots at exactly the state the main view's high-water mark
// implies -- proven here by resuming compiled maintenance after seeded
// crash points and checking the MV against from-scratch recomputation plus
// the Definition 4.2 timed-delta windows.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/rng.h"
#include "harness/crash_harness.h"
#include "ivm/maintenance.h"
#include "ra/delta_program.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

struct CompiledHistory {
  std::unique_ptr<TestEnv> env;
  TwoTableWorkload workload;
  View* view = nullptr;
  // Seeded crash images taken between a completed drain (main-view strips
  // durable in the WAL) and the next round's half-join maintenance.
  std::vector<std::string> snapshots;
  std::string final_wal;
  Csn frontier = kNullCsn;
};

CompiledHistory BuildCompiledHistory(uint64_t seed) {
  CompiledHistory h;
  CaptureOptions copts;
  copts.truncate_wal = false;
  h.env = std::make_unique<TestEnv>(copts);
  Db* db = h.env->db();

  auto workload = TwoTableWorkload::Create(db, 60, 40, 8, seed);
  EXPECT_TRUE(workload.ok());
  h.workload = workload.value();
  h.env->CatchUpCapture();
  auto view = h.env->views()->CreateView("V", h.workload.ViewDef());
  EXPECT_TRUE(view.ok());
  h.view = view.value();
  EXPECT_TRUE(h.env->views()->Materialize(h.view).ok());
  EXPECT_NE(h.view->programs, nullptr);
  EXPECT_EQ(h.view->programs->num_compiled(), 2u);

  MaintenanceService::Options mopts;
  mopts.checkpoint_every_steps = 3;
  mopts.target_rows_per_query = 6;
  mopts.apply_continuously = true;
  mopts.prune_view_delta = false;
  MaintenanceService service(h.env->views(), h.view, mopts);

  FaultInjector::Options fopts;
  fopts.seed = seed ^ 0x48414C46;  // "HALF"
  fopts.crash_probability = 0.5;
  FaultInjector fi(fopts);

  UpdateStream r_updates(db, h.workload.RStream(1, seed + 1), seed + 1);
  UpdateStream s_updates(db, h.workload.SStream(2, seed + 2), seed + 2);
  for (int round = 0; round < 8; ++round) {
    EXPECT_TRUE(r_updates.RunTransactions(3).ok());
    EXPECT_TRUE(s_updates.RunTransactions(2).ok());
    h.env->CatchUpCapture();
    EXPECT_TRUE(service.Drain(db->stable_csn()).ok());
    if (fi.MaybeCrashPoint()) {
      h.snapshots.push_back(SnapshotEncodedWal(db));
    }
  }
  // The compiled path must actually have run during the history (the
  // half-joins are resident), or this file proves nothing.
  EXPECT_GT(h.view->programs->half_join_rows(), 0u);
  h.frontier = h.view->high_water_mark();
  h.final_wal = SnapshotEncodedWal(db);
  return h;
}

// Recovers `damaged`, verifies the derived half-join state was reset and
// is rebuilt by resumed COMPILED maintenance to a view identical to
// recomputation. Returns false only when the cut predates the base tables.
bool RecoverAndVerifyCompiled(const CompiledHistory& h,
                              const std::string& damaged, bool deep,
                              uint64_t seed) {
  auto recovered = CrashAndRecover(damaged, {{"V", h.workload.ViewDef()}});
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
  if (!recovered.ok()) return true;
  RecoveredSystem sys = std::move(recovered).value();

  View* view = sys.views->Find("V");
  if (view == nullptr) {
    EXPECT_FALSE(sys.unregistered_views.empty());
    return false;
  }
  // Programs are recompiled at re-registration (definitions live in code);
  // the half-join state starts EMPTY -- nothing derived survives a crash,
  // whether or not a checkpoint did.
  EXPECT_NE(view->programs, nullptr);
  EXPECT_EQ(view->programs->num_compiled(), 2u);
  EXPECT_EQ(view->programs->half_join_rows(), 0u)
      << "derived half-join state must not be restored from the log";
  if (sys.report.views_recovered == 0) {
    EXPECT_TRUE(sys.views->Materialize(view).ok());
    EXPECT_EQ(view->programs->half_join_rows(), 0u);  // Reset on rebuild
  }

  // Resume maintenance on the compiled path (the default), push fresh
  // updates through it, and drain: the first forward query per term
  // rebuilds its half-joins from snapshots at the lock-frozen state --
  // which must line up exactly with the main view's recovered hwm, or the
  // oracle comparison below breaks.
  MaintenanceService::Options mopts;
  mopts.checkpoint_every_steps = 3;
  mopts.target_rows_per_query = 6;
  mopts.apply_continuously = true;
  mopts.prune_view_delta = false;
  MaintenanceService service(sys.views.get(), view, mopts);

  UpdateStream r_fresh(sys.db.get(), h.workload.RStream(5, seed), seed);
  UpdateStream s_fresh(sys.db.get(), h.workload.SStream(6, seed + 1),
                       seed + 1);
  EXPECT_TRUE(r_fresh.RunTransactions(4).ok());
  EXPECT_TRUE(s_fresh.RunTransactions(2).ok());
  sys.capture->CatchUp();
  Csn frontier = sys.db->stable_csn();
  EXPECT_TRUE(service.Drain(frontier).ok());
  EXPECT_GE(view->high_water_mark(), frontier);
  EXPECT_GE(view->mv->csn(), frontier);

  // The compiled path ran post-recovery: the half-joins are resident again.
  EXPECT_GT(view->programs->half_join_rows(), 0u)
      << "resumed maintenance did not rebuild the half-join views";

  DeltaRows oracle = OracleViewState(sys.db.get(), view, view->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()))
      << "recovered+resumed compiled MV diverges from recomputation";

  if (deep) {
    Csn from = view->propagate_from.load(std::memory_order_acquire);
    Csn to = view->high_water_mark();
    if (to > from) {
      EXPECT_TRUE(CheckTimedDeltaSweep(sys.db.get(), view, from, to,
                                       std::max<Csn>(1, (to - from) / 7)));
    }
  }
  return true;
}

class CompiledCrashTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    history_ = new CompiledHistory(BuildCompiledHistory(0x4A4F494E));
  }
  static void TearDownTestSuite() {
    delete history_;
    history_ = nullptr;
  }
  static CompiledHistory* history_;
};

CompiledHistory* CompiledCrashTest::history_ = nullptr;

// The seeded schedule: every image was taken right after a drain committed
// main-view strips -- the exact "between main-view apply and half-join
// apply" window, since the half-joins are volatile. Each must recover to a
// view identical to recomputation with the half-joins rebuilt at the hwm.
TEST_F(CompiledCrashTest, SeededCrashPointsRebuildHalfJoinsAtHwm) {
  const CompiledHistory& h = *history_;
  ASSERT_GE(h.snapshots.size(), 2u) << "crash schedule fired too rarely";
  for (size_t i = 0; i < h.snapshots.size(); ++i) {
    SCOPED_TRACE("seeded crash point " + std::to_string(i));
    EXPECT_TRUE(RecoverAndVerifyCompiled(h, h.snapshots[i], /*deep=*/i == 0,
                                         /*seed=*/0xB00 + 16 * i));
    if (HasFatalFailure()) return;
  }
}

// Arbitrary byte cuts (torn tails) and bit flips across the final log: the
// compiled recovery path holds at any damage point, not just the seeded
// post-drain boundaries.
TEST_F(CompiledCrashTest, RandomCutsRecoverCompiledConsistently) {
  const CompiledHistory& h = *history_;
  ASSERT_GT(h.final_wal.size(), 1000u);
  Rng rng(0x68616C66);  // "half"
  int verified = 0;
  const int kTrials = 18;
  for (int trial = 0; trial < kTrials; ++trial) {
    CrashSpec spec;
    spec.keep_bytes = rng.Uniform(h.final_wal.size() / 4, h.final_wal.size());
    if (trial % 3 == 2) {
      spec.flip_bit = true;
      spec.flip_offset = rng.Uniform(0, h.final_wal.size() - 1);
    }
    std::string damaged = ApplyCrashSpec(h.final_wal, spec);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": keep " +
                 std::to_string(spec.keep_bytes) + "/" +
                 std::to_string(h.final_wal.size()) +
                 (spec.flip_bit ? " flip@" + std::to_string(spec.flip_offset)
                                : ""));
    if (RecoverAndVerifyCompiled(h, damaged, /*deep=*/trial == 0,
                                 /*seed=*/0xD0D0 + 16 * trial)) {
      ++verified;
    }
    if (HasFatalFailure()) return;
  }
  EXPECT_GE(verified, kTrials / 2);
}

// A clean recovery (full log, no damage) still starts the half-joins empty
// -- derived state is never trusted across a restart -- and the resumed
// compiled pipeline converges without re-propagating anything.
TEST_F(CompiledCrashTest, CleanRecoveryResetsDerivedState) {
  const CompiledHistory& h = *history_;
  auto recovered =
      CrashAndRecover(h.final_wal, {{"V", h.workload.ViewDef()}});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  RecoveredSystem sys = std::move(recovered).value();
  EXPECT_FALSE(sys.torn_tail);
  EXPECT_EQ(sys.report.views_recovered, 1u);

  View* view = sys.views->Find("V");
  ASSERT_NE(view, nullptr);
  ASSERT_NE(view->programs, nullptr);
  EXPECT_EQ(view->programs->half_join_rows(), 0u);
  EXPECT_EQ(view->programs->half_join_bytes(), 0u);
  EXPECT_GE(view->high_water_mark(), h.frontier);

  MaintenanceService service(sys.views.get(), view);
  ASSERT_OK(service.Drain(sys.db->stable_csn()));
  DeltaRows oracle = OracleViewState(sys.db.get(), view, view->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()));
}

}  // namespace
}  // namespace rollview
