// File-backed crash harness: a live engine writing a durable segmented WAL
// (group-commit flusher, rotation, periodic durable checkpoints with
// segment pruning) is power-cut at seeded crash points -- every durability
// transition the store exposes (segment create/append/sync, seal rotation,
// checkpoint temp-write/rename/dir-sync, prune unlink) -- and recovered
// from the surviving directory via RecoverFromWalDir. After every crash the
// recovered view must converge to from-scratch recomputation; crashing a
// recovered system again (including immediately) must be idempotent.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "harness/crash_harness.h"
#include "ivm/checkpoint.h"
#include "ivm/maintenance.h"
#include "storage/wal_segment.h"
#include "tests/test_util.h"
#include "workload/update_stream.h"

namespace rollview {
namespace {

constexpr size_t kSegmentBytes = 2048;  // small: force frequent rotation

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "file_crash_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

struct BuildOutcome {
  int64_t crash_points_visited = 0;  // hook invocations during the build
  bool crashed = false;              // the scheduled crash fired
  bool completed = false;            // the full workload script ran
};

// Runs the standard history against a durable WAL directory: bulk load,
// view materialization, rounds of updates + drains, mid-workload durable
// checkpoints (which also prune covered segments). The store's crash hook
// counts every crash-point visit and fires at visit `crash_at` (-1 =
// never). The whole engine is torn down before returning -- whatever the
// directory holds afterwards is the "disk after the power cut".
BuildOutcome BuildFileHistory(const std::string& dir, uint64_t seed,
                              int64_t crash_at,
                              std::set<std::string>* points_seen = nullptr) {
  BuildOutcome out;
  auto visits = std::make_shared<std::atomic<int64_t>>(0);
  auto seen_mu = std::make_shared<std::mutex>();

  Db db;  // in-memory construction: the hook must install before Start
  DurableWalOptions wopts;
  wopts.dir = dir;
  wopts.segment_bytes = kSegmentBytes;
  EXPECT_OK(db.wal()->OpenDurable(wopts, /*generation=*/1,
                                  /*require_empty=*/true));
  db.wal()->store()->SetCrashHook(
      [visits, seen_mu, points_seen, crash_at](const char* point) {
        if (points_seen != nullptr) {
          std::lock_guard<std::mutex> lk(*seen_mu);
          points_seen->insert(point);
        }
        return visits->fetch_add(1) == crash_at;
      });
  db.wal()->store()->Start();

  CaptureOptions copts;
  copts.truncate_wal = false;
  LogCapture capture(&db, copts);
  ViewManager views(&db, &capture);

  auto finish = [&](bool completed) {
    out.completed = completed;
    out.crashed = db.wal()->store()->crashed();
    out.crash_points_visited = visits->load();
    return out;
  };

  auto workload = TwoTableWorkload::Create(&db, 40, 30, 8, seed);
  if (!workload.ok()) return finish(false);
  capture.CatchUp();
  auto view = views.CreateView("V", workload->ViewDef());
  if (!view.ok()) return finish(false);
  if (!views.Materialize(*view).ok()) return finish(false);

  MaintenanceService::Options mopts;
  mopts.checkpoint_every_steps = 4;
  mopts.target_rows_per_query = 8;
  mopts.prune_view_delta = false;
  MaintenanceService service(&views, *view, mopts);

  UpdateStream r_updates(&db, workload->RStream(1, seed + 1), seed + 1);
  UpdateStream s_updates(&db, workload->SStream(2, seed + 2), seed + 2);
  for (int round = 0; round < 4; ++round) {
    if (!r_updates.RunTransactions(3).ok()) return finish(false);
    if (!s_updates.RunTransactions(2).ok()) return finish(false);
    capture.CatchUp();
    if (!service.Drain(db.stable_csn()).ok()) return finish(false);
    if (round % 2 == 1) {
      // Quiescent here (manual drains, no background drivers): publish a
      // durable checkpoint, which also prunes fully covered segments --
      // the checkpoint/rename/prune crash points live on this path.
      if (!PublishDurableCheckpoint(&db, &views).ok()) return finish(false);
    }
  }
  return finish(true);
}

SpjViewDef TheViewDef(uint64_t seed) {
  // The view definition depends only on the (seed-deterministic) schema;
  // rebuild it from a scratch in-memory engine.
  Db db;
  auto workload = TwoTableWorkload::Create(&db, 1, 1, 8, seed);
  EXPECT_TRUE(workload.ok());
  return workload->ViewDef();
}

// Recovers `dir` and verifies the view against recomputation. Returns
// false (without failing) only when the crash predates the base tables.
bool RecoverAndVerify(const std::string& dir, const SpjViewDef& def,
                      bool deep, uint64_t seed) {
  DbOptions dopts;
  dopts.wal_segment_bytes = kSegmentBytes;
  auto recovered = RecoverFromWalDir(dir, {{"V", def}}, dopts);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
  if (!recovered.ok()) return true;  // failure recorded above
  RecoveredSystem sys = std::move(recovered).value();

  View* view = sys.views->Find("V");
  if (view == nullptr) {
    EXPECT_FALSE(sys.unregistered_views.empty());
    return false;
  }
  if (sys.report.views_recovered == 0) {
    // Crash before the first durable view checkpoint: cold-start fallback.
    EXPECT_TRUE(sys.views->Materialize(view).ok());
  }

  MaintenanceService::Options mopts;
  mopts.checkpoint_every_steps = 3;
  mopts.prune_view_delta = false;
  MaintenanceService service(sys.views.get(), view, mopts);
  Csn frontier = sys.db->stable_csn();
  EXPECT_TRUE(service.Drain(frontier).ok());
  EXPECT_GE(view->high_water_mark(), frontier);

  DeltaRows oracle = OracleViewState(sys.db.get(), view, view->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()))
      << "recovered MV diverges from recomputation";

  if (deep) {
    // The recovered engine is live: fresh updates flow end to end, and the
    // reattached store keeps acknowledging durably.
    Db* db = sys.db.get();
    EXPECT_TRUE(db->wal()->durable());
    EXPECT_OK(db->wal()->CheckWritable());
    Db scratch;
    auto workload = TwoTableWorkload::Create(&scratch, 1, 1, 8, seed);
    EXPECT_TRUE(workload.ok());
    UpdateStream fresh(db, workload->RStream(9, seed), seed);
    EXPECT_TRUE(fresh.RunTransactions(3).ok());
    sys.capture->CatchUp();
    Csn frontier2 = db->stable_csn();
    EXPECT_TRUE(service.Drain(frontier2).ok());
    DeltaRows oracle2 = OracleViewState(db, view, view->mv->csn());
    EXPECT_TRUE(NetEquivalent(oracle2, view->mv->AsDeltaRows()))
        << "post-recovery updates diverge from recomputation";
  }
  return true;
}

// The acceptance property: the build visits >= 80 distinct crash-point
// opportunities spanning every durability transition, and a power cut at a
// broad sample of them recovers to a view identical to recomputation.
TEST(FileCrashTest, SeededCrashPointsAcrossAllTransitionsRecover) {
  const uint64_t kSeed = 0xF11E;
  SpjViewDef def = TheViewDef(kSeed);

  // Pass 1: count the crash-point opportunities of a clean build.
  std::set<std::string> seen;
  std::string clean = FreshDir("clean");
  BuildOutcome baseline = BuildFileHistory(clean, kSeed, /*crash_at=*/-1,
                                           &seen);
  ASSERT_TRUE(baseline.completed);
  ASSERT_FALSE(baseline.crashed);
  ASSERT_GE(baseline.crash_points_visited, 80)
      << "the workload script must expose >= 80 seeded crash points";
  for (const char* must : {"segment.create", "segment.append", "segment.sync",
                           "rotate.pre_seal", "rotate.post_seal",
                           "checkpoint.pre_temp", "checkpoint.post_temp_sync",
                           "checkpoint.pre_rename", "checkpoint.post_rename",
                           "checkpoint.dir_sync"}) {
    EXPECT_TRUE(seen.count(must)) << "never visited: " << must;
  }
  EXPECT_TRUE(seen.count("prune.pre_unlink"))
      << "checkpoint publishes never pruned a covered segment";

  // The clean directory itself recovers (pure restart, no damage).
  EXPECT_TRUE(RecoverAndVerify(clean, def, /*deep=*/true, 0xD00D));

  // Pass 2: crash at a sample of visit indices spread across the build
  // (batching makes visit order timing-dependent, so index i names "the
  // i-th durability transition of this run", which is exactly the point).
  const int64_t n = baseline.crash_points_visited;
  std::vector<int64_t> sample = {0, 1, 2, 3, 5, 9, n - 2, n - 1};
  for (int64_t i = 13; i < n - 2; i += std::max<int64_t>(1, n / 20)) {
    sample.push_back(i);
  }
  int trial = 0;
  int verified = 0;
  for (int64_t crash_at : sample) {
    SCOPED_TRACE("crash at visit " + std::to_string(crash_at));
    std::string dir = FreshDir("trial" + std::to_string(trial));
    BuildOutcome out = BuildFileHistory(dir, kSeed, crash_at);
    // Later indices can exceed a faster run's visit count; then the build
    // simply completes and the trial degenerates to a clean recovery.
    EXPECT_TRUE(out.crashed || out.completed);
    if (RecoverAndVerify(dir, def, /*deep=*/trial % 7 == 0,
                         /*seed=*/0xAB0 + trial)) {
      ++verified;
    }
    if (HasFatalFailure()) return;
    ++trial;
  }
  // The first few visits predate the base tables (the bulk load's own
  // flushes), so those trials legitimately have nothing view-shaped to
  // verify; everything past them must.
  EXPECT_GE(verified, trial - 6)
      << "too few crash points produced a verifiable view";
  EXPECT_GE(verified, 15);
}

// Crashing a recovered system again -- immediately, with zero new work --
// is idempotent: recovery publishes its own generation's checkpoint as the
// commit point, so generation N+1 starts from exactly the state generation
// N recovered to, even when generation N itself died mid-reattach.
TEST(FileCrashTest, RecrashIsIdempotent) {
  const uint64_t kSeed = 0x1D3A;
  SpjViewDef def = TheViewDef(kSeed);

  for (int64_t crash_at : {40, 90, 150}) {
    SCOPED_TRACE("first crash at visit " + std::to_string(crash_at));
    std::string dir = FreshDir("recrash" + std::to_string(crash_at));
    BuildOutcome out = BuildFileHistory(dir, kSeed, crash_at);
    EXPECT_TRUE(out.crashed || out.completed);

    DbOptions dopts;
    dopts.wal_segment_bytes = kSegmentBytes;
    Csn mv1 = kNullCsn;
    Csn hwm1 = kNullCsn;
    DeltaRows rows1;
    size_t recovered1 = 0;
    bool had_view = false;
    {
      auto gen1 = RecoverFromWalDir(dir, {{"V", def}}, dopts);
      ASSERT_TRUE(gen1.ok()) << gen1.status().ToString();
      View* v1 = gen1.value().views->Find("V");
      if (v1 != nullptr) {
        had_view = true;
        mv1 = v1->mv->csn();
        hwm1 = v1->high_water_mark();
        rows1 = v1->mv->AsDeltaRows();
        recovered1 = gen1.value().report.views_recovered;
      }
      // Power-cut generation one on the spot: the scope end drops every
      // in-memory structure (the store dtor stops the flusher; nothing new
      // was committed).
    }
    if (!had_view) continue;  // crash predates the base tables

    auto gen2 = RecoverFromWalDir(dir, {{"V", def}}, dopts);
    ASSERT_TRUE(gen2.ok()) << gen2.status().ToString();
    View* v2 = gen2.value().views->Find("V");
    ASSERT_NE(v2, nullptr);
    EXPECT_EQ(gen2.value().report.views_recovered, recovered1);
    if (recovered1 > 0) {
      // Nothing generation one recovered may be re-lost or re-propagated.
      EXPECT_EQ(v2->mv->csn(), mv1);
      EXPECT_EQ(v2->high_water_mark(), hwm1);
      EXPECT_TRUE(NetEquivalent(rows1, v2->mv->AsDeltaRows()));
    }

    // Both generations converge to the same recomputation.
    if (gen2.value().report.views_recovered == 0) {
      ASSERT_OK(gen2.value().views->Materialize(v2));
    }
    MaintenanceService service(gen2.value().views.get(), v2);
    ASSERT_OK(service.Drain(gen2.value().db->stable_csn()));
    DeltaRows oracle =
        OracleViewState(gen2.value().db.get(), v2, v2->mv->csn());
    EXPECT_TRUE(NetEquivalent(oracle, v2->mv->AsDeltaRows()));
  }
}

}  // namespace
}  // namespace rollview
