// Storage-fault storms against a live engine on a durable segmented WAL:
// an ENOSPC storm must park the group-commit flusher, fail OLTP commits
// fast (transient Busy), drive maintenance into kDegraded/kShedding --
// and NEVER kFailed, even past Options::failed_after, because a full
// device is an environmental condition, not a bug -- then recover
// completely once space returns. An EIO burst must poison-and-rotate
// segments (fsyncgate semantics) without losing an acknowledged record.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/fault_injector.h"
#include "harness/crash_harness.h"
#include "ivm/checkpoint.h"
#include "ivm/maintenance.h"
#include "storage/wal_segment.h"
#include "tests/test_util.h"
#include "workload/update_stream.h"

namespace rollview {
namespace {

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "fault_storm_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 5000) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

// Engine bundle over a file-backed WAL directory, attached manually so the
// test controls the store's options and fault injector.
struct DurableEnv {
  std::string dir;
  std::unique_ptr<Db> db;
  std::unique_ptr<LogCapture> capture;
  std::unique_ptr<ViewManager> views;

  explicit DurableEnv(const std::string& wal_dir) : dir(wal_dir) {
    db = std::make_unique<Db>();
    DurableWalOptions wopts;
    wopts.dir = wal_dir;
    wopts.segment_bytes = 8192;
    wopts.enospc_retry = std::chrono::milliseconds(1);
    EXPECT_OK(db->wal()->OpenDurable(wopts, 1, true));
    db->wal()->store()->Start();
    CaptureOptions copts;
    copts.truncate_wal = false;
    capture = std::make_unique<LogCapture>(db.get(), copts);
    views = std::make_unique<ViewManager>(db.get(), capture.get());
  }
};

TEST(StorageFaultStormTest, EnospcStormDegradesShedsAndRecovers) {
  std::string dir = FreshDir("enospc");
  DurableEnv env(dir);
  Db* db = env.db.get();
  WalSegmentStore* store = db->wal()->store();

  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(db, 40, 30, 8, 0xE205));
  env.capture->CatchUp();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views->Materialize(view));
  env.capture->Start();

  MaintenanceService::Options mopts;
  mopts.target_rows_per_query = 8;
  mopts.degraded_after = 1;
  mopts.failed_after = 3;  // low on purpose: the storm must NOT trip it
  mopts.prune_view_delta = false;
  MaintenanceService service(env.views.get(), view, mopts);

  // Seed un-propagated work so maintenance has commits to attempt while
  // the device is full. The service starts only after the storm latches:
  // a driver that happened to be mid-sync at that instant would simply
  // park with the flusher until space returns (a legitimate casualty,
  // played by the pump thread below) instead of exercising the
  // fail-fast/degrade path this test is about.
  UpdateStream updates(db, workload.RStream(1, 0x51), 0x51);
  ASSERT_OK(updates.RunTransactions(4));

  // The storm: every flusher write hits ENOSPC. Installed on the store
  // only -- the in-memory append path stays clean, so commits reach the
  // real fail-fast gate (CheckWritable) instead of an injected abort.
  FaultInjector::Options fopts;
  fopts.seed = 0x5702;
  fopts.storage_enospc_probability = 1.0;
  fopts.scoped_only = false;  // the flusher thread never enters a Scope
  FaultInjector fi(fopts);
  store->SetFaultInjector(&fi);

  // A committer caught mid-sync when the device fills simply blocks until
  // space returns (it is the group whose batch is parked), so that
  // casualty runs on its own thread. The guard disarms the injector before
  // joining so an assertion failure on the main thread cannot deadlock
  // behind the parked flusher.
  std::atomic<bool> pump_done{false};
  std::thread pump([&] {
    UpdateStream storm(db, workload.RStream(3, 0x52), 0x52);
    for (int i = 0; i < 200 && !pump_done.load(); ++i) {
      Status s = storm.RunTransaction(/*max_retries=*/1);
      EXPECT_TRUE(s.ok() || s.IsTransient()) << s.ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    pump_done.store(true);
  });
  struct PumpGuard {
    FaultInjector& fi;
    std::atomic<bool>& done;
    std::thread& t;
    ~PumpGuard() {
      fi.set_armed(false);
      done.store(true);
      if (t.joinable()) t.join();
    }
  } pump_guard{fi, pump_done, pump};

  ASSERT_TRUE(WaitFor([&] { return store->out_of_space(); }));
  // Fail-fast gate: once the device is known-full, new commits bounce with
  // transient Busy from Db::Commit's CheckWritable check -- they do not
  // pile up behind the parked flusher (the pump thread above is the one
  // committer allowed to block: it was already inside the sync).
  {
    Status gate = db->wal()->CheckWritable();
    EXPECT_TRUE(gate.IsBusy()) << gate.ToString();
    EXPECT_TRUE(gate.IsTransient()) << gate.ToString();
    UpdateStream probe(db, workload.RStream(7, 0x54), 0x54);
    Status s = probe.RunTransaction(/*max_retries=*/0);
    EXPECT_TRUE(s.IsBusy()) << "commit did not fail fast: " << s.ToString();
  }

  // Now that the gate is provably closed, start maintenance: every
  // propagation attempt hits the fail-fast gate deterministically.
  service.Start();

  // Maintenance degrades (or sheds) but never dies: watch both drivers
  // across the storm window, well past failed_after consecutive failures.
  bool saw_degraded_or_shedding = false;
  auto until = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < until) {
    DriverHealth p = service.propagate_health();
    DriverHealth a = service.apply_health();
    ASSERT_NE(p, DriverHealth::kFailed) << "propagate died during ENOSPC";
    ASSERT_NE(a, DriverHealth::kFailed) << "apply died during ENOSPC";
    if (p == DriverHealth::kDegraded || p == DriverHealth::kShedding ||
        a == DriverHealth::kDegraded || service.shedding()) {
      saw_degraded_or_shedding = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(saw_degraded_or_shedding)
      << "storm never surfaced as degraded/shedding";
  EXPECT_GE(store->counters().faults_enospc, 1u);
  EXPECT_FALSE(store->crashed());

  // Space returns: the parked batch drains, the gate reopens, shedding
  // clears, and the pipeline converges.
  fi.set_armed(false);
  ASSERT_TRUE(WaitFor([&] { return !store->out_of_space(); }));
  pump_done.store(true);
  pump.join();
  ASSERT_TRUE(WaitFor([&] { return db->wal()->CheckWritable().ok(); }));
  UpdateStream after(db, workload.RStream(5, 0x53), 0x53);
  ASSERT_OK(after.RunTransactions(3));
  Csn frontier = db->stable_csn();
  ASSERT_OK(service.Drain(frontier));
  EXPECT_NE(service.propagate_health(), DriverHealth::kFailed);
  EXPECT_NE(service.apply_health(), DriverHealth::kFailed);
  ASSERT_TRUE(WaitFor([&] { return !service.shedding(); }));
  ASSERT_OK(service.Stop());
  env.capture->Stop();
  store->SetFaultInjector(nullptr);

  DeltaRows oracle = OracleViewState(db, view, view->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()))
      << "view diverged across the ENOSPC storm";

  // Durability survived the storm: recovery reproduces the post-storm view.
  ASSERT_OK(PublishDurableCheckpoint(db, env.views.get()).status());
  DeltaRows live = view->mv->AsDeltaRows();
  Csn live_csn = view->mv->csn();
  env.views.reset();
  env.capture.reset();
  env.db.reset();
  ASSERT_OK_AND_ASSIGN(RecoveredSystem sys,
                       RecoverFromWalDir(dir, {{"V", workload.ViewDef()}}));
  View* rv = sys.views->Find("V");
  ASSERT_NE(rv, nullptr);
  EXPECT_EQ(rv->mv->csn(), live_csn);
  EXPECT_TRUE(NetEquivalent(live, rv->mv->AsDeltaRows()));
}

TEST(StorageFaultStormTest, EioBurstPoisonsSegmentsWithoutLosingRecords) {
  std::string dir = FreshDir("eio");
  DurableEnv env(dir);
  Db* db = env.db.get();
  WalSegmentStore* store = db->wal()->store();

  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(db, 30, 20, 8, 0xE10B));
  env.capture->CatchUp();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views->Materialize(view));

  // Burst: every other write around fails with EIO. Each failure poisons
  // the active segment and rotates; the unacked batch is re-appended, so
  // every commit below still succeeds (slowly).
  FaultInjector::Options fopts;
  fopts.seed = 0xE10;
  fopts.storage_eio_probability = 0.5;
  fopts.scoped_only = false;
  FaultInjector fi(fopts);
  store->SetFaultInjector(&fi);

  UpdateStream updates(db, workload.RStream(1, 0x61), 0x61);
  ASSERT_OK(updates.RunTransactions(8));
  fi.set_armed(false);
  store->SetFaultInjector(nullptr);

  auto c = store->counters();
  EXPECT_GE(c.segments_poisoned, 1u) << "burst never poisoned a segment";
  EXPECT_GE(c.faults_eio, 1u);
  EXPECT_FALSE(store->crashed());
  EXPECT_OK(db->wal()->CheckWritable());

  env.capture->CatchUp();
  MaintenanceService service(env.views.get(), view);
  ASSERT_OK(service.Drain(db->stable_csn()));
  DeltaRows oracle = OracleViewState(db, view, view->mv->csn());
  ASSERT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()));

  // Every acknowledged commit is on disk despite the poisoned segments:
  // tear down without a checkpoint and replay the raw directory.
  DeltaRows live = view->mv->AsDeltaRows();
  Csn live_csn = view->mv->csn();
  env.views.reset();
  env.capture.reset();
  env.db.reset();
  ASSERT_OK_AND_ASSIGN(RecoveredSystem sys,
                       RecoverFromWalDir(dir, {{"V", workload.ViewDef()}}));
  View* rv = sys.views->Find("V");
  ASSERT_NE(rv, nullptr);
  MaintenanceService rservice(sys.views.get(), rv);
  if (sys.report.views_recovered == 0) {
    ASSERT_OK(sys.views->Materialize(rv));
  }
  ASSERT_OK(rservice.Drain(sys.db->stable_csn()));
  EXPECT_GE(rv->mv->csn(), live_csn);
  EXPECT_TRUE(
      NetEquivalent(live, OracleViewState(sys.db.get(), rv, live_csn)));
  DeltaRows roracle = OracleViewState(sys.db.get(), rv, rv->mv->csn());
  EXPECT_TRUE(NetEquivalent(roracle, rv->mv->AsDeltaRows()));
}

}  // namespace
}  // namespace rollview
