// Full-system fault recovery: updater threads, background capture, and a
// supervised MaintenanceService running against an armed FaultInjector --
// injected deadlock-victim aborts on the propagation transactions, injected
// lock-timeout Busy results, injected WAL write errors, and capture-lag
// spikes that stall the high-water mark. The drivers must absorb every
// transient, back off, and still converge: at quiescence the HWM reaches
// the update frontier, the MV matches the oracle, health is kRunning, and
// zero drivers died permanently. Deterministic fault sequence under the
// fixed injector seed.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/fault_injector.h"
#include "harness/worker.h"
#include "ivm/maintenance.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

TEST(FaultRecoveryTest, MaintenanceSurvivesInjectedFaultStorm) {
  TestEnv env;

  // Well above the acceptance floor of 5% injected transient aborts on
  // propagation transactions, plus lock/WAL/capture faults.
  FaultInjector::Options fopts;
  fopts.seed = 0xfa017;
  fopts.commit_abort_probability = 0.10;
  fopts.lock_busy_probability = 0.05;
  fopts.wal_error_probability = 0.02;
  fopts.capture_lag_probability = 0.02;
  fopts.capture_lag_polls = 10;  // ~10 ms stall per spike at 1 ms polls
  FaultInjector fi(fopts);
  env.db()->SetFaultInjector(&fi);

  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 80, 40, 8, 301));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views()->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views()->Materialize(view));
  env.StartCapture();

  MaintenanceService::Options mopts;
  mopts.runner.max_retries = 0;  // every transient reaches the supervisor
  // A capture-lag spike must surface quickly as a transient Busy rather
  // than stalling a propagation query for the default 10 s.
  mopts.runner.capture_wait_timeout = std::chrono::milliseconds(50);
  mopts.target_rows_per_query = 32;
  mopts.backoff.initial = std::chrono::microseconds(100);
  mopts.backoff.max = std::chrono::microseconds(5000);
  MaintenanceService service(env.views(), view, mopts);
  service.Start();

  // Updaters run clean (scoped injection) and keep committing throughout
  // the storm.
  std::vector<std::unique_ptr<UpdateStream>> streams;
  streams.push_back(std::make_unique<UpdateStream>(
      env.db(), workload.RStream(1, 401), 401));
  streams.push_back(std::make_unique<UpdateStream>(
      env.db(), workload.SStream(2, 402), 402));
  std::vector<std::unique_ptr<Worker>> updaters;
  for (auto& stream : streams) {
    UpdateStream* s = stream.get();
    Worker::Options opts;
    opts.name = "updater";
    opts.target_ops_per_sec = 150.0;
    updaters.push_back(std::make_unique<Worker>(
        [s] { return s->RunTransaction(); }, opts));
  }
  for (auto& w : updaters) w->Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  for (auto& w : updaters) ASSERT_OK(w->Join());

  // Quiesce with the injector still armed: recovery, not luck, gets the
  // drivers to the frontier.
  Csn frontier = env.db()->stable_csn();
  ASSERT_OK(service.Drain(frontier));
  EXPECT_GE(view->high_water_mark(), frontier);
  EXPECT_GE(view->mv->csn(), frontier);

  // Disarm and settle so the health check cannot race a fresh injected
  // failure between Drain and the assertion.
  fi.set_armed(false);
  ASSERT_OK(service.Drain(env.db()->stable_csn()));
  // A driver whose last injected fault landed just before the device healed
  // may still be sleeping out its backoff; health clears on its next (now
  // clean) step, so give it a bounded window rather than one instant check.
  for (int i = 0; i < 500 && service.Health() != DriverHealth::kRunning; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(service.Health(), DriverHealth::kRunning);
  EXPECT_EQ(service.propagate_health(), DriverHealth::kRunning);
  EXPECT_EQ(service.apply_health(), DriverHealth::kRunning);
  ASSERT_OK(service.Stop());  // zero permanent driver deaths

  // The storm actually happened and the recovery counters saw it.
  FaultInjector::Stats fs = fi.GetStats();
  EXPECT_GT(fs.injected_aborts, 0u);
  DriverStats ps = service.propagate_driver_stats();
  DriverStats as = service.apply_driver_stats();
  EXPECT_GT(ps.steps, 0u);
  EXPECT_GT(ps.transient_errors + as.transient_errors, 0u);
  EXPECT_GT(ps.recoveries + as.recoveries, 0u);
  EXPECT_GT(ps.backoff_nanos + as.backoff_nanos, 0u);
  // Injected aborts on propagation commits relative to committed queries:
  // the >= 5% fault-rate floor from the acceptance criterion.
  const RunnerStats* rs = service.runner_stats();
  EXPECT_GE(static_cast<double>(fs.injected_aborts),
            0.05 * static_cast<double>(rs->queries));

  // Correctness after the storm: MV == oracle at the MV's CSN.
  DeltaRows oracle = OracleViewState(env.db(), view, view->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()))
      << "MV diverges from oracle after fault storm";
  env.db()->SetFaultInjector(nullptr);
}

TEST(FaultRecoveryTest, StorageFaultStormDegradesAndRecovers) {
  // Storage-fault classes (EIO, short write, ENOSPC) on the WAL append and
  // checkpoint write paths: maintenance must treat every one as transient,
  // walk through kDegraded, and still converge once the device "heals".
  TestEnv env;
  FaultInjector::Options fopts;
  fopts.seed = 0xe10;
  fopts.storage_eio_probability = 0.10;
  fopts.storage_short_write_probability = 0.05;
  fopts.storage_enospc_probability = 0.05;
  FaultInjector fi(fopts);
  env.db()->SetFaultInjector(&fi);

  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 60, 30, 8, 311));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views()->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views()->Materialize(view));
  env.StartCapture();

  MaintenanceService::Options mopts;
  mopts.runner.max_retries = 0;       // every transient reaches the supervisor
  mopts.degraded_after = 1;           // one streaked failure shows as degraded
  mopts.target_rows_per_query = 16;
  mopts.checkpoint_every_steps = 2;   // exercise the checkpoint write path
  mopts.backoff.initial = std::chrono::microseconds(100);
  mopts.backoff.max = std::chrono::microseconds(5000);
  MaintenanceService service(env.views(), view, mopts);
  service.Start();

  UpdateStream updates(env.db(), workload.RStream(1, 411), 411);
  Worker::Options wopts;
  wopts.name = "updater";
  wopts.target_ops_per_sec = 200.0;
  Worker updater([&updates] { return updates.RunTransaction(); }, wopts);
  updater.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_OK(updater.Join());

  // Converge with the storm still blowing, then heal the device and settle.
  Csn frontier = env.db()->stable_csn();
  ASSERT_OK(service.Drain(frontier));
  fi.set_armed(false);
  ASSERT_OK(service.Drain(env.db()->stable_csn()));
  // A driver whose last injected fault landed just before the device healed
  // may still be sleeping out its backoff; health clears on its next (now
  // clean) step, so give it a bounded window rather than one instant check.
  for (int i = 0; i < 500 && service.Health() != DriverHealth::kRunning; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(service.Health(), DriverHealth::kRunning);
  ASSERT_OK(service.Stop());  // no driver died permanently

  // The storm fired across the storage classes and supervision absorbed it.
  FaultInjector::Stats fs = fi.GetStats();
  EXPECT_GT(fs.injected_eio + fs.injected_short_writes + fs.injected_enospc,
            0u);
  DriverStats ps = service.propagate_driver_stats();
  DriverStats as = service.apply_driver_stats();
  EXPECT_GT(ps.transient_errors + as.transient_errors, 0u);
  EXPECT_GT(ps.recoveries + as.recoveries, 0u);
  EXPECT_GT(ps.degraded_entries + as.degraded_entries, 0u);

  DeltaRows oracle = OracleViewState(env.db(), view, view->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()))
      << "MV diverges from oracle after storage-fault storm";
  env.db()->SetFaultInjector(nullptr);
}

TEST(FaultRecoveryTest, FaultSequenceIsDeterministicUnderFixedSeed) {
  // Two injectors with the same seed fed the same draw sequence produce
  // identical fault schedules -- the property that makes storm runs
  // reproducible (the draw *sites* are scheduling-dependent, the per-site
  // sequence is not).
  FaultInjector::Options fopts;
  fopts.seed = 99;
  fopts.commit_abort_probability = 0.2;
  fopts.capture_lag_probability = 0.1;
  fopts.capture_lag_polls = 4;
  FaultInjector a(fopts), b(fopts);
  FaultInjector::Scope scope;
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.MaybeCommitAbort().ok(), b.MaybeCommitAbort().ok());
    EXPECT_EQ(a.MaybeCaptureLag(), b.MaybeCaptureLag());
  }
  FaultInjector::Stats sa = a.GetStats(), sb = b.GetStats();
  EXPECT_EQ(sa.injected_aborts, sb.injected_aborts);
  EXPECT_EQ(sa.lag_spikes, sb.lag_spikes);
  EXPECT_EQ(sa.lag_polls, sb.lag_polls);
}

}  // namespace
}  // namespace rollview
