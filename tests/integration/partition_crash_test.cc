// Crash-injection over PARTITIONED propagation: a history driven by two
// concurrent partition strips is cut at cursor-record boundaries chosen so
// that one partition's cursor is durable while the other partition's step is
// mid-flight (its rows logged, its covering cursor lost). Recovery must
// resume the durable partition idempotently (no re-propagated strip), roll
// the mid-flight partition back exactly (its uncovered rows discarded), and
// land the view high-water mark at the minimum over partition compensation
// frontiers. A forged-log arm checks that replay keyed by (view, partition,
// seq) fails loudly on duplicate/ambiguous and regressing cursor chains
// instead of silently taking the last record.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "harness/crash_harness.h"
#include "ivm/checkpoint.h"
#include "ivm/maintenance.h"
#include "storage/wal_codec.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

constexpr uint32_t kPartitions = 2;

struct PartitionHistory {
  std::unique_ptr<TestEnv> env;
  TwoTableWorkload workload;
  View* view = nullptr;
  std::string encoded_wal;  // the full log at quiescence
  Csn frontier = kNullCsn;
};

// Like crash_recovery_test's BuildHistory, but the drains run two partition
// strips concurrently, so the log braids two independent cursor chains
// (restarting step sequences per partition) through the same suffix.
PartitionHistory BuildPartitionHistory(uint64_t seed) {
  PartitionHistory h;
  CaptureOptions copts;
  copts.truncate_wal = false;  // the log IS the durable state
  h.env = std::make_unique<TestEnv>(copts);
  Db* db = h.env->db();

  auto workload = TwoTableWorkload::Create(db, 60, 40, 8, seed);
  EXPECT_TRUE(workload.ok());
  h.workload = workload.value();
  h.env->CatchUpCapture();
  auto view = h.env->views()->CreateView("V", h.workload.ViewDef());
  EXPECT_TRUE(view.ok());
  h.view = view.value();
  EXPECT_TRUE(h.env->views()->Materialize(h.view).ok());

  MaintenanceService::Options mopts;
  mopts.checkpoint_every_steps = 5;
  mopts.target_rows_per_query = 8;  // several strips per partition per round
  mopts.apply_continuously = true;
  mopts.prune_view_delta = false;
  mopts.propagate_partitions = kPartitions;
  MaintenanceService service(h.env->views(), h.view, mopts);
  EXPECT_EQ(service.propagate_partitions(), kPartitions);

  UpdateStream r_updates(db, h.workload.RStream(1, seed + 1), seed + 1);
  UpdateStream s_updates(db, h.workload.SStream(2, seed + 2), seed + 2);
  for (int round = 0; round < 6; ++round) {
    EXPECT_TRUE(r_updates.RunTransactions(3).ok());
    EXPECT_TRUE(s_updates.RunTransactions(2).ok());
    h.env->CatchUpCapture();
    EXPECT_TRUE(service.Drain(db->stable_csn()).ok());
  }
  h.frontier = h.view->high_water_mark();
  h.encoded_wal = SnapshotEncodedWal(db);
  return h;
}

// One decoded record plus where its encoding ends: cutting the log at `end`
// keeps this record and loses everything after it.
struct LoggedRecord {
  WalRecord rec;
  size_t end = 0;
  // kViewCursor / kViewDeltaAppend payloads, pre-decoded.
  uint32_t partition = 0;
  uint64_t step_seq = 0;
};

std::vector<LoggedRecord> WalkWal(const std::string& encoded) {
  std::vector<LoggedRecord> out;
  size_t offset = 0;
  while (offset < encoded.size()) {
    size_t consumed = 0;
    auto rec = DecodeWalRecord(encoded, offset, &consumed);
    if (!rec.ok()) break;  // quiescent snapshot: should not happen
    LoggedRecord lr;
    lr.rec = std::move(rec).value();
    lr.end = offset + consumed;
    if (lr.rec.kind == WalRecord::Kind::kViewCursor && lr.rec.blob != nullptr) {
      ViewCursorBlob blob;
      if (DecodeViewCursorBlob(*lr.rec.blob, &blob)) {
        lr.partition = blob.partition;
        lr.step_seq = blob.completed_step_seq;
      }
    } else if (lr.rec.kind == WalRecord::Kind::kViewDeltaAppend &&
               lr.rec.blob != nullptr) {
      DeltaRow row;
      DecodeViewDeltaBlob(*lr.rec.blob, &row, &lr.step_seq, &lr.partition);
    }
    offset = lr.end;
    out.push_back(std::move(lr));
  }
  return out;
}

// The Theorem 4.3 acceptance invariant, checked BEFORE any resumed
// propagation: when every final-generation partition recovered a valid
// cursor chain, the view hwm is exactly min over partitions of min_i
// tcomp[i]. With a chainless partition the mark falls back to checkpointed
// floors, which only understate it -- those schedules don't qualify and the
// check reports `checked = false`. Returns true iff no violation.
bool CheckHwmIsMinPartitionTcomp(View* view, bool* checked) {
  *checked = false;
  std::map<uint32_t, CursorState> states = view->LoadAllCursors();
  Csn min_tcomp = kMaxCsn;
  bool all_valid = !states.empty();
  uint32_t num_partitions = 1;
  for (const auto& [p, state] : states) {
    if (!state.valid) {
      all_valid = false;
      break;
    }
    num_partitions = std::max(num_partitions, state.num_partitions);
    for (Csn t : state.tcomp) min_tcomp = std::min(min_tcomp, t);
  }
  if (!(all_valid && states.size() == static_cast<size_t>(num_partitions) &&
        min_tcomp != kMaxCsn && min_tcomp >= view->mv->csn())) {
    return true;  // schedule doesn't qualify; nothing to refute
  }
  *checked = true;
  EXPECT_EQ(view->high_water_mark(), min_tcomp)
      << "recovered hwm is not the min over partition t_comp";
  return view->high_water_mark() == min_tcomp;
}

// Recovers from `damaged`, checks the recovered (pre-resume) partition
// invariants, then resumes PARTITIONED maintenance and verifies against
// recomputation. Returns rows_discarded so callers can assert the mid-flight
// partition was actually rolled back somewhere in the schedule.
uint64_t RecoverVerifyPartitioned(const PartitionHistory& h,
                                  const std::string& damaged, bool deep,
                                  uint64_t seed) {
  auto recovered = CrashAndRecover(damaged, {{"V", h.workload.ViewDef()}});
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
  if (!recovered.ok()) return 0;
  RecoveredSystem sys = std::move(recovered).value();

  View* view = sys.views->Find("V");
  if (view == nullptr) {
    EXPECT_FALSE(sys.unregistered_views.empty());
    return 0;
  }
  if (sys.report.views_recovered == 0) {
    EXPECT_TRUE(sys.views->Materialize(view).ok());
  } else {
    bool checked = false;
    CheckHwmIsMinPartitionTcomp(view, &checked);
    EXPECT_LE(view->high_water_mark(), h.frontier)
        << "recovery overstated the frontier past the live engine's";
    // The recovered window is already a complete timed delta: rolling the
    // oracle across [propagate_from, hwm] must succeed before resume.
    Csn from = view->propagate_from.load(std::memory_order_acquire);
    Csn to = view->high_water_mark();
    if (to > from) {
      EXPECT_TRUE(CheckTimedDeltaWindow(sys.db.get(), view, from, to))
          << "pre-resume recovered window [" << from << ", " << to
          << "] is not a complete timed delta";
    }
  }

  MaintenanceService::Options mopts;
  mopts.checkpoint_every_steps = 3;
  mopts.apply_continuously = true;
  mopts.prune_view_delta = false;
  mopts.propagate_partitions = kPartitions;
  MaintenanceService service(sys.views.get(), view, mopts);
  Csn frontier = sys.db->stable_csn();
  EXPECT_TRUE(service.Drain(frontier).ok());
  EXPECT_GE(view->high_water_mark(), frontier);

  // A re-propagated strip from the durable partition would double-count
  // here; a leftover row from the rolled-back partition would too.
  DeltaRows oracle = OracleViewState(sys.db.get(), view, view->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()))
      << "recovered+resumed MV diverges from recomputation";

  if (deep) {
    // Strongest duplicate/leftover detector: every sub-window of the
    // resumed delta rolls the oracle correctly (Definition 4.2).
    Csn from = view->propagate_from.load(std::memory_order_acquire);
    Csn to = view->high_water_mark();
    if (to > from) {
      EXPECT_TRUE(CheckTimedDeltaSweep(sys.db.get(), view, from, to,
                                       std::max<Csn>(1, (to - from) / 7)));
    }
    UpdateStream fresh(sys.db.get(), h.workload.RStream(9, seed), seed);
    EXPECT_TRUE(fresh.RunTransactions(4).ok());
    sys.capture->CatchUp();
    Csn frontier2 = sys.db->stable_csn();
    EXPECT_TRUE(service.Drain(frontier2).ok());
    DeltaRows oracle2 = OracleViewState(sys.db.get(), view, view->mv->csn());
    EXPECT_TRUE(NetEquivalent(oracle2, view->mv->AsDeltaRows()))
        << "post-recovery updates diverge from recomputation";
  }
  return sys.report.rows_discarded;
}

class PartitionCrashTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    history_ = new PartitionHistory(BuildPartitionHistory(0x5EED2));
  }
  static void TearDownTestSuite() {
    delete history_;
    history_ = nullptr;
  }
  static PartitionHistory* history_;
};

PartitionHistory* PartitionCrashTest::history_ = nullptr;

// The satellite schedule: a propagation step is durable only once its
// kViewCursor record lands, and the step's view-delta rows become visible at
// its kCommit record -- so every byte position between B's step-commit and
// B's cursor is a window where B is mid-undo. Cut right after such a commit,
// at points where partition A's cursor IS durable in the prefix: partition A
// durable, partition B's step mid-undo. Recovery must resume A from its
// durable cursors (no duplicate strip) and cancel B's step by discarding
// its uncovered rows.
TEST_F(PartitionCrashTest, DurableAMidFlightBCutsRecoverExactly) {
  const PartitionHistory& h = *history_;
  std::vector<LoggedRecord> records = WalkWal(h.encoded_wal);
  ASSERT_GT(records.size(), 50u);
  // Whole log decoded: the quiescent snapshot has no torn tail.
  ASSERT_EQ(records.back().end, h.encoded_wal.size());

  // A cut at records[i].end keeps records [0, i]. Walk once, maintaining
  // per-partition covered sequences and per-txn pending appends exactly as
  // replay does; a kCommit that lands appends of partition b beyond b's
  // covered sequence -- while some other partition a has a durable cursor --
  // is a skewed cut (A durable, B mid-undo). Cursor-record boundaries (the
  // step fully durable) are kept as the control sample.
  std::vector<size_t> skewed_cuts;
  std::vector<size_t> cursor_cuts;
  std::map<uint32_t, uint64_t> covered;     // partition -> last durable seq
  std::map<uint32_t, size_t> cursor_count;  // partition -> cursors seen
  std::map<TxnId, std::vector<std::pair<uint32_t, uint64_t>>> pending;
  for (size_t i = 0; i < records.size(); ++i) {
    const LoggedRecord& lr = records[i];
    switch (lr.rec.kind) {
      case WalRecord::Kind::kViewDeltaAppend:
        pending[lr.rec.txn].emplace_back(lr.partition, lr.step_seq);
        break;
      case WalRecord::Kind::kAbort:
        pending.erase(lr.rec.txn);
        break;
      case WalRecord::Kind::kViewCursor: {
        uint64_t& cov = covered[lr.partition];
        cov = std::max(cov, lr.step_seq);
        cursor_count[lr.partition]++;
        cursor_cuts.push_back(i);
        break;
      }
      case WalRecord::Kind::kCommit: {
        auto it = pending.find(lr.rec.txn);
        if (it == pending.end()) break;
        bool mid_flight_b = false;
        for (const auto& [b, seq] : it->second) {
          auto cov = covered.find(b);
          bool uncovered = cov == covered.end() || seq > cov->second;
          if (!uncovered) continue;
          // Some OTHER partition must already be durable in the prefix.
          for (const auto& [a, count] : cursor_count) {
            if (a != b && count > 0) mid_flight_b = true;
          }
        }
        if (mid_flight_b) skewed_cuts.push_back(i);
        pending.erase(it);
        break;
      }
      default:
        break;
    }
  }
  ASSERT_FALSE(cursor_cuts.empty()) << "history logged no cursor records";
  ASSERT_FALSE(skewed_cuts.empty())
      << "no commit landed one partition's uncovered rows while another "
         "partition was durable; widen the history";

  // Exercise skewed cuts spread across the history, plus an even sample of
  // fully-durable cursor boundaries as the control arm.
  std::vector<size_t> selected;
  for (size_t i = 0; i < skewed_cuts.size() && selected.size() < 8;
       i += std::max<size_t>(1, skewed_cuts.size() / 8)) {
    selected.push_back(skewed_cuts[i]);
  }
  for (size_t i = 0; i < cursor_cuts.size() && selected.size() < 12;
       i += std::max<size_t>(1, cursor_cuts.size() / 4)) {
    selected.push_back(cursor_cuts[i]);
  }

  uint64_t total_discarded = 0;
  bool did_deep = false;
  for (size_t idx : selected) {
    CrashSpec spec;
    spec.keep_bytes = records[idx].end;
    std::string damaged = ApplyCrashSpec(h.encoded_wal, spec);
    SCOPED_TRACE("cut after cursor record " + std::to_string(idx) +
                 " (partition " + std::to_string(records[idx].partition) +
                 ", seq " + std::to_string(records[idx].step_seq) + ")");
    bool deep = !did_deep;  // full sweep once; endpoint checks everywhere
    did_deep = true;
    total_discarded +=
        RecoverVerifyPartitioned(h, damaged, deep, 0xAB5EED + idx);
    if (HasFatalFailure()) return;
  }
  // At least one cut rolled the mid-flight partition back by discarding its
  // uncovered rows (the durable-by-omission StepUndoLog replay).
  EXPECT_GT(total_discarded, 0u)
      << "no cut discarded mid-flight partition rows";
}

// Random byte cuts over the partitioned history: torn tails and interior
// boundaries, all recover to recomputation just like the serial harness.
TEST_F(PartitionCrashTest, RandomCutsOverPartitionedHistoryRecover) {
  const PartitionHistory& h = *history_;
  ASSERT_GT(h.encoded_wal.size(), 1000u);
  Rng rng(0x70637261);  // "pcra"
  for (int trial = 0; trial < 12; ++trial) {
    CrashSpec spec;
    spec.keep_bytes = rng.Uniform(0, h.encoded_wal.size());
    std::string damaged = ApplyCrashSpec(h.encoded_wal, spec);
    SCOPED_TRACE("trial " + std::to_string(trial) + ": keep " +
                 std::to_string(spec.keep_bytes) + "/" +
                 std::to_string(h.encoded_wal.size()));
    RecoverVerifyPartitioned(h, damaged, /*deep=*/trial == 5,
                             /*seed=*/0xFACE + trial);
    if (HasFatalFailure()) return;
  }
}

// Property-style arm: the hwm = min_p t_comp[p] invariant must hold not
// just for hand-picked cuts but under ARBITRARY crash/restart schedules --
// each generation cuts the previous generation's log at a seeded-random
// byte, recovers, checks the invariant, then resumes partitioned
// maintenance with fresh updates and becomes the next generation's durable
// history. Three seeds x three generations; every qualifying recovery
// (all final-generation partitions recovered valid chains) is counted so
// the test fails if the property never actually engaged.
TEST(PartitionCrashPropertyTest, HwmIsMinTcompUnderRandomCrashSchedules) {
  size_t qualifying = 0;
  for (uint64_t seed : {0x9E001u, 0x9E777u, 0x9EF00u}) {
    PartitionHistory h = BuildPartitionHistory(seed);
    if (::testing::Test::HasFatalFailure()) return;
    Rng rng(seed ^ 0xC4A54ULL);
    std::string log = h.encoded_wal;
    for (int gen = 0; gen < 3; ++gen) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " generation " +
                   std::to_string(gen));
      CrashSpec spec;
      // Keep at least a quarter of the log so the schedule usually reaches
      // the post-checkpoint cursor braid instead of degenerating to an
      // empty engine every time.
      spec.keep_bytes = rng.Uniform(log.size() / 4, log.size());
      std::string damaged = ApplyCrashSpec(log, spec);
      auto recovered = CrashAndRecover(damaged, {{"V", h.workload.ViewDef()}});
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      RecoveredSystem sys = std::move(recovered).value();
      View* view = sys.views->Find("V");
      if (view == nullptr) break;  // registration lost to the cut: dead end
      if (sys.report.views_recovered == 0) {
        ASSERT_TRUE(sys.views->Materialize(view).ok());
      } else {
        bool checked = false;
        EXPECT_TRUE(CheckHwmIsMinPartitionTcomp(view, &checked));
        if (checked) ++qualifying;
      }

      // Restart: resume partitioned maintenance over the survivor, push
      // fresh updates through, and make this engine the next generation.
      MaintenanceService::Options mopts;
      mopts.checkpoint_every_steps = 4;
      mopts.target_rows_per_query = 8;
      mopts.apply_continuously = true;
      mopts.prune_view_delta = false;
      mopts.propagate_partitions = kPartitions;
      MaintenanceService service(sys.views.get(), view, mopts);
      UpdateStream fresh(sys.db.get(),
                         h.workload.RStream(5 + gen, seed + 31 * gen + 7),
                         seed + 31 * gen + 7);
      ASSERT_TRUE(fresh.RunTransactions(4).ok());
      sys.capture->CatchUp();
      Csn frontier = sys.db->stable_csn();
      ASSERT_TRUE(service.Drain(frontier).ok());
      DeltaRows oracle = OracleViewState(sys.db.get(), view, view->mv->csn());
      EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()))
          << "generation " << gen << " diverges from recomputation";
      log = SnapshotEncodedWal(sys.db.get());
    }
  }
  EXPECT_GT(qualifying, 0u)
      << "no random schedule produced a fully-chained recovery; the "
         "property never engaged";
}

// A clean recovery of the full partitioned log reconstructs both cursor
// chains and the frontier without re-running a single strip.
TEST_F(PartitionCrashTest, CleanPartitionedShutdownRecoversBothChains) {
  const PartitionHistory& h = *history_;
  auto recovered = CrashAndRecover(h.encoded_wal, {{"V", h.workload.ViewDef()}});
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  RecoveredSystem sys = std::move(recovered).value();
  EXPECT_FALSE(sys.torn_tail);
  EXPECT_EQ(sys.report.views_recovered, 1u);
  EXPECT_GT(sys.report.cursor_records, 0u);

  View* view = sys.views->Find("V");
  ASSERT_NE(view, nullptr);
  EXPECT_GE(view->high_water_mark(), h.frontier);
  std::map<uint32_t, CursorState> states = view->LoadAllCursors();
  ASSERT_EQ(states.size(), static_cast<size_t>(kPartitions));
  uint64_t next_seq = 0;
  for (const auto& [p, state] : states) {
    EXPECT_TRUE(state.valid);
    EXPECT_EQ(state.num_partitions, kPartitions);
    if (next_seq == 0) next_seq = state.next_step_seq;
    // Recovery reseeds one GLOBAL continuation sequence across partitions
    // so replayed rows can never collide with a future step's.
    EXPECT_EQ(state.next_step_seq, next_seq);
  }
}

// Locates the state recovery would fold for `partition` from the full log:
// the last checkpoint's baseline advanced by every later cursor record of
// that partition. The forged-record tests construct contradictions of
// exactly this state.
struct ChainTail {
  bool found = false;
  uint64_t last_completed_seq = 0;
  ViewCursorBlob blob;       // template for forging (from a real record)
  uint32_t view_id = 0;
  Lsn last_lsn = 0;
};

ChainTail TailOf(const std::vector<LoggedRecord>& records, uint32_t partition) {
  ChainTail tail;
  size_t cp_idx = 0;
  ViewCheckpointBlob cp;
  bool has_cp = false;
  for (size_t i = 0; i < records.size(); ++i) {
    tail.last_lsn = std::max(tail.last_lsn, records[i].rec.lsn);
    if (records[i].rec.kind == WalRecord::Kind::kViewCheckpoint &&
        records[i].rec.blob != nullptr) {
      ViewCheckpointBlob blob;
      if (DecodeViewCheckpointBlob(*records[i].rec.blob, &blob)) {
        cp = std::move(blob);
        has_cp = true;
        cp_idx = i;
      }
    }
  }
  if (has_cp) {
    if (partition == 0) {
      tail.found = true;
      tail.last_completed_seq = cp.next_step_seq - 1;
      tail.blob.view_name = cp.view_name;
      tail.blob.tfwd = cp.tfwd;
      tail.blob.tcomp = cp.tcomp;
    } else {
      for (const PartitionCursorBlob& pcb : cp.extra_partitions) {
        if (pcb.partition != partition) continue;
        tail.found = true;
        tail.last_completed_seq = pcb.next_step_seq - 1;
        tail.blob.view_name = cp.view_name;
        tail.blob.tfwd = pcb.tfwd;
        tail.blob.tcomp = pcb.tcomp;
      }
    }
  }
  for (size_t i = has_cp ? cp_idx + 1 : 0; i < records.size(); ++i) {
    if (records[i].rec.kind != WalRecord::Kind::kViewCursor) continue;
    if (records[i].partition != partition) continue;
    ViewCursorBlob blob;
    if (!DecodeViewCursorBlob(*records[i].rec.blob, &blob)) continue;
    tail.found = true;
    tail.view_id = records[i].rec.view;
    tail.last_completed_seq =
        std::max(tail.last_completed_seq, blob.completed_step_seq);
    tail.blob = std::move(blob);
  }
  tail.blob.partition = partition;
  tail.blob.num_partitions = kPartitions;
  return tail;
}

std::string AppendForgedCursor(const std::string& encoded,
                               const ChainTail& tail,
                               const ViewCursorBlob& forged) {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kViewCursor;
  rec.lsn = tail.last_lsn + 1;
  rec.view = tail.view_id;
  rec.blob = std::make_shared<std::string>(EncodeViewCursorBlob(forged));
  std::string out = encoded;
  EncodeWalRecord(rec, &out);
  return out;
}

// Satellite fail-loud arm #1: a second cursor record for a (view, partition)
// chain claiming an EARLIER completed step than the durable one is
// ambiguous -- replay must refuse the log, not fold last-record-wins.
TEST_F(PartitionCrashTest, ForgedDuplicateCursorFailsLoudly) {
  const PartitionHistory& h = *history_;
  std::vector<LoggedRecord> records = WalkWal(h.encoded_wal);
  ChainTail tail = TailOf(records, 0);
  ASSERT_TRUE(tail.found);
  ASSERT_GE(tail.last_completed_seq, 1u);

  ViewCursorBlob forged = tail.blob;
  forged.completed_step_seq = tail.last_completed_seq - 1;
  std::string damaged = AppendForgedCursor(h.encoded_wal, tail, forged);

  auto recovered = CrashAndRecover(damaged, {{"V", h.workload.ViewDef()}});
  ASSERT_FALSE(recovered.ok())
      << "recovery accepted a duplicate/regressing cursor record";
  EXPECT_NE(recovered.status().ToString().find("duplicate/ambiguous cursor"),
            std::string::npos)
      << recovered.status().ToString();
}

// Satellite fail-loud arm #2: a cursor record whose forward frontier moves
// BACKWARD within its partition's chain (same completed step, regressed
// tfwd) contradicts frontier monotonicity and must also fail loudly.
TEST_F(PartitionCrashTest, ForgedFrontierRegressionFailsLoudly) {
  const PartitionHistory& h = *history_;
  std::vector<LoggedRecord> records = WalkWal(h.encoded_wal);
  ChainTail tail = TailOf(records, 1);
  ASSERT_TRUE(tail.found);
  ASSERT_FALSE(tail.blob.tfwd.empty());
  ASSERT_GT(tail.blob.tfwd[0], 0u);

  ViewCursorBlob forged = tail.blob;
  forged.completed_step_seq = tail.last_completed_seq;  // passes the dup gate
  forged.tfwd[0] -= 1;                                  // frontier regression
  std::string damaged = AppendForgedCursor(h.encoded_wal, tail, forged);

  auto recovered = CrashAndRecover(damaged, {{"V", h.workload.ViewDef()}});
  ASSERT_FALSE(recovered.ok())
      << "recovery accepted a regressing cursor frontier";
  EXPECT_NE(recovered.status().ToString().find("cursor frontier regression"),
            std::string::npos)
      << recovered.status().ToString();
}

}  // namespace
}  // namespace rollview
