// Overload soak: the full closed loop under sustained antagonist load. An
// adaptive MaintenanceService (AIMD interval controller + staleness SLO)
// runs against paced OLTP updater workers and an armed FaultInjector
// (injected aborts, lock-busy spikes, capture lag). The shedding wiring is
// live: entering kShedding pauses retention and backpressures the updater
// workers; recovery resumes both. Acceptance: after the storm quiesces the
// MV converges to the full-recompute oracle, no driver ends kFailed, and
// the controller demonstrably observed the run. Seeded and time-bounded;
// runs under TSan via the "concurrency" label and under `ctest -L soak`.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/fault_injector.h"
#include "harness/worker.h"
#include "ivm/maintenance.h"
#include "tests/test_util.h"

namespace rollview {
namespace {

TEST(OverloadSoakTest, AdaptiveMaintenanceSurvivesAntagonistLoad) {
  TestEnv env;

  FaultInjector::Options fopts;
  fopts.seed = 0x50a4;  // fixed seed; the fault schedule reproduces
  fopts.commit_abort_probability = 0.08;
  fopts.lock_busy_probability = 0.04;
  fopts.capture_lag_probability = 0.02;
  fopts.capture_lag_polls = 5;
  FaultInjector fi(fopts);
  env.db()->SetFaultInjector(&fi);

  ASSERT_OK_AND_ASSIGN(TwoTableWorkload workload,
                       TwoTableWorkload::Create(env.db(), 100, 50, 8, 501));
  env.CatchUpCapture();
  ASSERT_OK_AND_ASSIGN(View* view,
                       env.views()->CreateView("V", workload.ViewDef()));
  ASSERT_OK(env.views()->Materialize(view));
  env.StartCapture();

  RetentionService retention(env.views(), RetentionOptions{},
                             std::chrono::milliseconds(10));

  MaintenanceService::Options mopts;
  mopts.interval_mode = MaintenanceService::Options::IntervalMode::kAdaptive;
  mopts.controller.initial_target_rows = 64;
  mopts.controller.min_target_rows = 4;
  mopts.controller.staleness_slo = 25;  // CSN units; tight enough to trip
  mopts.controller.violations_to_shed = 2;
  mopts.controller.ok_to_recover = 2;
  mopts.runner.max_retries = 0;  // the supervisor owns all retrying
  mopts.runner.capture_wait_timeout = std::chrono::milliseconds(50);
  mopts.backoff.initial = std::chrono::microseconds(100);
  mopts.backoff.max = std::chrono::microseconds(5000);
  mopts.checkpoint_every_steps = 8;
  // Shedding wiring: retention pauses while the service sheds. (Worker
  // backpressure is wired below through Worker::Options::backpressure.)
  mopts.on_shedding = [&retention](bool on) {
    if (on) {
      retention.Pause();
    } else {
      retention.Resume();
    }
  };
  MaintenanceService service(env.views(), view, mopts);
  MaintenanceService* svc = &service;

  std::vector<std::unique_ptr<UpdateStream>> streams;
  streams.push_back(std::make_unique<UpdateStream>(
      env.db(), workload.RStream(1, 601), 601));
  streams.push_back(std::make_unique<UpdateStream>(
      env.db(), workload.SStream(2, 602), 602));
  std::vector<std::unique_ptr<Worker>> updaters;
  for (auto& stream : streams) {
    UpdateStream* s = stream.get();
    Worker::Options wopts;
    wopts.name = "antagonist";
    wopts.target_ops_per_sec = 250.0;
    // The graceful-degradation loop: while maintenance sheds, update intake
    // slows so the backlog can drain.
    wopts.backpressure = [svc] { return svc->shedding(); };
    wopts.backpressure_delay = std::chrono::microseconds(500);
    updaters.push_back(std::make_unique<Worker>(
        [s] { return s->RunTransaction(); }, wopts));
  }

  service.Start();
  retention.Start();
  for (auto& w : updaters) w->Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  for (auto& w : updaters) ASSERT_OK(w->Join());

  // Quiesce with the injector still armed: recovery, not luck.
  Csn frontier = env.db()->stable_csn();
  ASSERT_OK(service.Drain(frontier));
  EXPECT_GE(view->high_water_mark(), frontier);

  fi.set_armed(false);
  ASSERT_OK(service.Drain(env.db()->stable_csn()));
  // If the storm ended mid-shed, trickle a little clean work through: with
  // the backlog gone every window is under the SLO, so the hysteresis must
  // close out the episode.
  for (int i = 0; i < 20 && service.shedding(); ++i) {
    UpdateStream trickle(env.db(), workload.RStream(3, 700 + i), 700 + i);
    ASSERT_OK(trickle.RunTransaction());
    ASSERT_OK(service.Drain(env.db()->stable_csn()));
  }
  retention.Stop();
  EXPECT_NE(service.propagate_health(), DriverHealth::kFailed);
  EXPECT_NE(service.apply_health(), DriverHealth::kFailed);
  ASSERT_OK(service.Stop());  // zero permanent driver deaths

  // The controller ran the loop: every successful advanced step fed it.
  const IntervalController* ctl = service.interval_controller();
  ASSERT_NE(ctl, nullptr);
  IntervalController::Stats cs = ctl->GetStats();
  EXPECT_GT(cs.observations, 0u);
  EXPECT_GE(ctl->target_rows(), mopts.controller.min_target_rows);
  EXPECT_LE(ctl->target_rows(), mopts.controller.max_target_rows);
  // Shedding episodes (if any) always closed out and unwound their actions.
  EXPECT_EQ(cs.shed_entries, cs.shed_exits);
  EXPECT_FALSE(service.shedding());
  EXPECT_FALSE(retention.paused());

  // Workers stayed alive through backpressure and transient aborts.
  for (auto& w : updaters) {
    EXPECT_GT(w->iterations(), 0u);
  }

  // Correctness after the storm: MV == full-recompute oracle, and the timed
  // view delta still satisfies Definition 4.2 across the settled window.
  DeltaRows oracle = OracleViewState(env.db(), view, view->mv->csn());
  EXPECT_TRUE(NetEquivalent(oracle, view->mv->AsDeltaRows()))
      << "MV diverges from oracle after overload soak";
  env.db()->SetFaultInjector(nullptr);
}

}  // namespace
}  // namespace rollview
