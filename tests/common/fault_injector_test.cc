// FaultInjector: deterministic seeding, scope gating, arm/disarm, and
// capture-lag spike semantics.

#include "common/fault_injector.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace rollview {
namespace {

#define EXPECT_OK(expr) EXPECT_TRUE((expr).ok())

TEST(FaultInjectorTest, DeterministicUnderFixedSeed) {
  FaultInjector::Options opts;
  opts.seed = 42;
  opts.commit_abort_probability = 0.3;
  FaultInjector a(opts), b(opts);
  FaultInjector::Scope scope;
  std::vector<bool> seq_a, seq_b;
  for (int i = 0; i < 1000; ++i) seq_a.push_back(!a.MaybeCommitAbort().ok());
  for (int i = 0; i < 1000; ++i) seq_b.push_back(!b.MaybeCommitAbort().ok());
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_EQ(a.GetStats().injected_aborts, b.GetStats().injected_aborts);
  // ~300 expected; the point is it fired at all and not always.
  EXPECT_GT(a.GetStats().injected_aborts, 100u);
  EXPECT_LT(a.GetStats().injected_aborts, 500u);
}

TEST(FaultInjectorTest, FaultsAreTransientStatuses) {
  FaultInjector::Options opts;
  opts.commit_abort_probability = 1.0;
  opts.lock_busy_probability = 1.0;
  opts.wal_error_probability = 1.0;
  FaultInjector fi(opts);
  FaultInjector::Scope scope;
  Status abort = fi.MaybeCommitAbort();
  EXPECT_TRUE(abort.IsTxnAborted());
  EXPECT_TRUE(abort.IsTransient());
  Status busy = fi.MaybeLockBusy();
  EXPECT_TRUE(busy.IsBusy());
  EXPECT_TRUE(busy.IsTransient());
  Status wal = fi.MaybeWalError();
  EXPECT_TRUE(wal.IsBusy());
  EXPECT_TRUE(wal.IsTransient());
  // Permanent errors are not transient.
  EXPECT_FALSE(Status::Internal("x").IsTransient());
  EXPECT_FALSE(Status::InvalidArgument("x").IsTransient());
}

TEST(FaultInjectorTest, ScopedOnlySparesUnscopedThreads) {
  FaultInjector::Options opts;
  opts.commit_abort_probability = 1.0;
  FaultInjector fi(opts);
  // This thread never entered a Scope: no faults.
  EXPECT_OK(fi.MaybeCommitAbort());
  {
    FaultInjector::Scope scope;
    EXPECT_TRUE(fi.MaybeCommitAbort().IsTxnAborted());
  }
  // Scope exited: clean again.
  EXPECT_OK(fi.MaybeCommitAbort());
  // Scope is per-thread: a scoped main thread does not taint a worker.
  FaultInjector::Scope scope;
  Status worker_status = Status::TxnAborted("unset");
  std::thread t([&] { worker_status = fi.MaybeCommitAbort(); });
  t.join();
  EXPECT_OK(worker_status);
  EXPECT_EQ(fi.GetStats().injected_aborts, 1u);
}

TEST(FaultInjectorTest, UnscopedModeHitsEveryThread) {
  FaultInjector::Options opts;
  opts.commit_abort_probability = 1.0;
  opts.scoped_only = false;
  FaultInjector fi(opts);
  EXPECT_TRUE(fi.MaybeCommitAbort().IsTxnAborted());
}

TEST(FaultInjectorTest, DisarmSilencesFaultsWithoutTouchingStats) {
  FaultInjector::Options opts;
  opts.commit_abort_probability = 1.0;
  FaultInjector fi(opts);
  FaultInjector::Scope scope;
  EXPECT_TRUE(fi.MaybeCommitAbort().IsTxnAborted());
  fi.set_armed(false);
  for (int i = 0; i < 10; ++i) EXPECT_OK(fi.MaybeCommitAbort());
  EXPECT_FALSE(fi.MaybeCaptureLag());
  EXPECT_EQ(fi.GetStats().injected_aborts, 1u);
  fi.set_armed(true);
  EXPECT_TRUE(fi.MaybeCommitAbort().IsTxnAborted());
}

TEST(FaultInjectorTest, CaptureLagSpikeSwallowsARunOfPolls) {
  FaultInjector::Options opts;
  opts.capture_lag_probability = 1.0;
  opts.capture_lag_polls = 3;
  FaultInjector fi(opts);
  // No Scope: lag ignores scoping by design.
  EXPECT_TRUE(fi.MaybeCaptureLag());  // starts a spike
  EXPECT_TRUE(fi.MaybeCaptureLag());
  EXPECT_TRUE(fi.MaybeCaptureLag());  // spike exhausted...
  FaultInjector::Stats stats = fi.GetStats();
  EXPECT_EQ(stats.lag_spikes, 1u);
  EXPECT_EQ(stats.lag_polls, 3u);
  // ...and with p = 1.0 the very next poll starts a fresh spike.
  EXPECT_TRUE(fi.MaybeCaptureLag());
  EXPECT_EQ(fi.GetStats().lag_spikes, 2u);
}

TEST(FaultInjectorTest, StorageFaultClassesAreTransientAndOrdered) {
  // EIO is checked before short write before ENOSPC; each class surfaces
  // as a transient Busy naming the failure so supervision logs read true.
  FaultInjector::Options opts;
  opts.storage_eio_probability = 1.0;
  opts.storage_short_write_probability = 1.0;
  opts.storage_enospc_probability = 1.0;
  FaultInjector fi(opts);
  // Unscoped threads are spared, like every other storage fault point
  // (checked before entering the Scope: scoping is thread-local, not
  // per-injector).
  EXPECT_OK(fi.MaybeStorageFault());
  FaultInjector::Scope scope;
  Status s = fi.MaybeStorageFault();
  EXPECT_TRUE(s.IsBusy());
  EXPECT_TRUE(s.IsTransient());
  EXPECT_NE(s.ToString().find("EIO"), std::string::npos) << s.ToString();
  EXPECT_EQ(fi.GetStats().injected_eio, 1u);
  EXPECT_EQ(fi.GetStats().injected_short_writes, 0u);

  FaultInjector::Options short_only;
  short_only.storage_short_write_probability = 1.0;
  FaultInjector fi2(short_only);
  s = fi2.MaybeStorageFault();
  EXPECT_TRUE(s.IsTransient());
  EXPECT_NE(s.ToString().find("short write"), std::string::npos)
      << s.ToString();
  EXPECT_EQ(fi2.GetStats().injected_short_writes, 1u);

  FaultInjector::Options enospc_only;
  enospc_only.storage_enospc_probability = 1.0;
  FaultInjector fi3(enospc_only);
  s = fi3.MaybeStorageFault();
  EXPECT_TRUE(s.IsTransient());
  EXPECT_NE(s.ToString().find("ENOSPC"), std::string::npos) << s.ToString();
  EXPECT_EQ(fi3.GetStats().injected_enospc, 1u);
}

TEST(FaultInjectorTest, CorruptionSeedsAreDeterministic) {
  // Two injectors under the same seed emit the same corruption schedule
  // AND the same per-fire corruption seeds, so a drill's damage is exactly
  // reproducible.
  FaultInjector::Options opts;
  opts.seed = 7;
  opts.mv_corrupt_probability = 0.5;
  opts.digest_tamper_probability = 0.5;
  opts.checkpoint_corrupt_probability = 0.5;
  FaultInjector a(opts), b(opts);
  FaultInjector::Scope scope;
  for (int i = 0; i < 200; ++i) {
    uint64_t sa = 0, sb = 0;
    EXPECT_EQ(a.MaybeCorruptMvRow(&sa), b.MaybeCorruptMvRow(&sb));
    EXPECT_EQ(sa, sb);
    EXPECT_EQ(a.MaybeTamperDigest(&sa), b.MaybeTamperDigest(&sb));
    EXPECT_EQ(sa, sb);
    EXPECT_EQ(a.MaybeCorruptCheckpoint(&sa), b.MaybeCorruptCheckpoint(&sb));
    EXPECT_EQ(sa, sb);
  }
  FaultInjector::Stats sa = a.GetStats(), sb = b.GetStats();
  EXPECT_EQ(sa.injected_mv_corruptions, sb.injected_mv_corruptions);
  EXPECT_EQ(sa.injected_digest_tampers, sb.injected_digest_tampers);
  EXPECT_EQ(sa.injected_checkpoint_corruptions,
            sb.injected_checkpoint_corruptions);
  EXPECT_GT(sa.injected_mv_corruptions, 0u);
}

}  // namespace
}  // namespace rollview
