// Tests of WorkerPool: the RunAll barrier completes regardless of pool
// capacity (the caller steals work), Submit is fire-and-forget, nested
// RunAll from worker threads cannot deadlock, and concurrent RunAll
// batches from several callers all finish.

#include "common/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

namespace rollview {
namespace {

std::vector<std::function<void()>> CountingTasks(size_t n,
                                                 std::atomic<int>* counter) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    tasks.push_back([counter] {
      counter->fetch_add(1, std::memory_order_relaxed);
    });
  }
  return tasks;
}

TEST(WorkerPoolTest, RunAllExecutesEveryTask) {
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  pool.RunAll(CountingTasks(64, &ran));
  EXPECT_EQ(ran.load(), 64);
}

TEST(WorkerPoolTest, ZeroThreadPoolRunsOnCaller) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.threads(), 0u);
  std::atomic<int> ran{0};
  std::set<std::thread::id> tids;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&] {
      tids.insert(std::this_thread::get_id());
      ran.fetch_add(1);
    });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(ran.load(), 8);
  // No workers exist, so every task ran inline on this thread.
  ASSERT_EQ(tids.size(), 1u);
  EXPECT_EQ(*tids.begin(), std::this_thread::get_id());
}

TEST(WorkerPoolTest, MoreTasksThanThreads) {
  WorkerPool pool(2);
  std::atomic<int> ran{0};
  pool.RunAll(CountingTasks(100, &ran));
  EXPECT_EQ(ran.load(), 100);
}

TEST(WorkerPoolTest, EmptyBatchReturnsImmediately) {
  WorkerPool pool(2);
  pool.RunAll({});
}

TEST(WorkerPoolTest, SubmitDrainsEventually) {
  std::atomic<int> ran{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destructor drains or the tasks finish first; either way all 16 ran
    // by the time the pool is gone.
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(WorkerPoolTest, NestedRunAllFromWorkerDoesNotDeadlock) {
  WorkerPool pool(2);
  std::atomic<int> inner_ran{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&] {
      // A barrier inside a barrier: the nested caller must drain its own
      // batch inline even when every pool thread is busy in the outer one.
      pool.RunAll(CountingTasks(8, &inner_ran));
    });
  }
  pool.RunAll(std::move(outer));
  EXPECT_EQ(inner_ran.load(), 32);
}

TEST(WorkerPoolTest, ConcurrentBarriersFromManyCallers) {
  WorkerPool pool(3);
  std::atomic<int> ran{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        pool.RunAll(CountingTasks(7, &ran));
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(ran.load(), 4 * 10 * 7);
}

TEST(WorkerPoolTest, BarrierIsABarrier) {
  // RunAll must not return while any task is still running.
  WorkerPool pool(4);
  std::atomic<int> running{0};
  std::atomic<bool> overlap{false};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&] {
      running.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      running.fetch_sub(1);
    });
  }
  pool.RunAll(std::move(tasks));
  if (running.load() != 0) overlap.store(true);
  EXPECT_FALSE(overlap.load());
}

}  // namespace
}  // namespace rollview
