#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "common/status.h"
#include "common/result.h"

namespace rollview {
namespace {

TEST(CounterTest, ConcurrentAdds) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), 80000u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(LatencyHistogramTest, PercentilesAndStats) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v * 1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max_nanos(), 100000u);
  EXPECT_DOUBLE_EQ(h.mean_nanos(), 50500.0);
  EXPECT_NEAR(h.Percentile(0.5), 50000, 1500);
  EXPECT_NEAR(h.Percentile(0.99), 99000, 1500);
  EXPECT_EQ(h.Percentile(0.0), 1000u);
  EXPECT_EQ(h.Percentile(1.0), 100000u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(LatencyHistogramTest, ReservoirBoundsMemoryWithExactAggregates) {
  LatencyHistogram h;
  constexpr uint64_t kSamples = 3 * LatencyHistogram::kReservoirCapacity;
  uint64_t expected_sum = 0;
  for (uint64_t v = 1; v <= kSamples; ++v) {
    h.Record(v);
    expected_sum += v;
  }
  // Aggregates stay exact while storage is capped at the reservoir size.
  EXPECT_EQ(h.count(), kSamples);
  EXPECT_EQ(h.max_nanos(), kSamples);
  EXPECT_DOUBLE_EQ(h.mean_nanos(),
                   static_cast<double>(expected_sum) / kSamples);
  EXPECT_EQ(h.reservoir_size(), LatencyHistogram::kReservoirCapacity);
  // Percentiles are estimates over a uniform sample; the median of
  // 1..kSamples should land well inside the middle half.
  uint64_t p50 = h.Percentile(0.5);
  EXPECT_GT(p50, kSamples / 4);
  EXPECT_LT(p50, 3 * kSamples / 4);
  EXPECT_LE(h.Percentile(1.0), kSamples);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.reservoir_size(), 0u);
}

TEST(ScopedTimerTest, RecordsElapsed) {
  LatencyHistogram h;
  {
    ScopedTimer t(&h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max_nanos(), 1000000u);
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::NotFound("thing");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(), "NotFound: thing");
  EXPECT_TRUE(Status::Busy("b").IsBusy());
  EXPECT_TRUE(Status::TxnAborted("t").IsTxnAborted());
  EXPECT_TRUE(Status::Internal("i").IsInternal());
  EXPECT_TRUE(Status::OutOfRange("o").IsOutOfRange());
  EXPECT_TRUE(Status::InvalidArgument("a").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("e").IsAlreadyExists());
  EXPECT_TRUE(Status::NotSupported("n").IsNotSupported());
}

TEST(StatusTest, TransientTaxonomy) {
  // Transient: the caller (or a supervised driver) may retry.
  EXPECT_TRUE(Status::TxnAborted("deadlock victim").IsTransient());
  EXPECT_TRUE(Status::Busy("lock wait timeout").IsTransient());
  // Everything else is permanent.
  EXPECT_FALSE(Status::OK().IsTransient());
  EXPECT_FALSE(Status::NotFound("x").IsTransient());
  EXPECT_FALSE(Status::Internal("x").IsTransient());
  EXPECT_FALSE(Status::InvalidArgument("x").IsTransient());
  EXPECT_FALSE(Status::OutOfRange("x").IsTransient());
  EXPECT_FALSE(Status::NotSupported("x").IsTransient());
  EXPECT_FALSE(Status::AlreadyExists("x").IsTransient());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UseParse(int v, int* out) {
  ROLLVIEW_ASSIGN_OR_RETURN(*out, ParsePositive(v));
  return Status::OK();
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(*good, 5);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());

  int out = 0;
  EXPECT_TRUE(UseParse(7, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(UseParse(-3, &out).IsInvalidArgument());
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    int64_t x = a.Uniform(-5, 5);
    EXPECT_EQ(x, b.Uniform(-5, 5));
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
  double d = a.NextDouble();
  EXPECT_GE(d, 0.0);
  EXPECT_LT(d, 1.0);
  // Fork produces a different stream.
  Rng c(a.Fork());
  EXPECT_NE(c.Uniform(0, 1u << 30), a.Uniform(0, 1u << 30));
}

}  // namespace
}  // namespace rollview
