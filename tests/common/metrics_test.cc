#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/rng.h"
#include "common/status.h"
#include "common/result.h"

namespace rollview {
namespace {

TEST(CounterTest, ConcurrentAdds) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), 80000u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(LatencyHistogramTest, PercentilesAndStats) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v * 1000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max_nanos(), 100000u);
  EXPECT_DOUBLE_EQ(h.mean_nanos(), 50500.0);
  EXPECT_NEAR(h.Percentile(0.5), 50000, 1500);
  EXPECT_NEAR(h.Percentile(0.99), 99000, 1500);
  EXPECT_EQ(h.Percentile(0.0), 1000u);
  EXPECT_EQ(h.Percentile(1.0), 100000u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(LatencyHistogramTest, ReservoirBoundsMemoryWithExactAggregates) {
  LatencyHistogram h;
  constexpr uint64_t kSamples = 3 * LatencyHistogram::kReservoirCapacity;
  uint64_t expected_sum = 0;
  for (uint64_t v = 1; v <= kSamples; ++v) {
    h.Record(v);
    expected_sum += v;
  }
  // Aggregates stay exact while storage is capped at the reservoir size.
  EXPECT_EQ(h.count(), kSamples);
  EXPECT_EQ(h.max_nanos(), kSamples);
  EXPECT_DOUBLE_EQ(h.mean_nanos(),
                   static_cast<double>(expected_sum) / kSamples);
  EXPECT_EQ(h.reservoir_size(), LatencyHistogram::kReservoirCapacity);
  // Percentiles are estimates over a uniform sample; the median of
  // 1..kSamples should land well inside the middle half.
  uint64_t p50 = h.Percentile(0.5);
  EXPECT_GT(p50, kSamples / 4);
  EXPECT_LT(p50, 3 * kSamples / 4);
  EXPECT_LE(h.Percentile(1.0), kSamples);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.reservoir_size(), 0u);
}

TEST(LatencyHistogramTest, ReservoirIsDeterministicAcrossReset) {
  // Reset() restores the reservoir's seeded RNG, so replaying the same
  // sample stream retains the identical sample set -- the property that
  // keeps bench percentiles reproducible run to run.
  LatencyHistogram h;
  constexpr uint64_t kSamples = 2 * LatencyHistogram::kReservoirCapacity;
  for (uint64_t v = 1; v <= kSamples; ++v) h.Record(v * 3);
  uint64_t p50 = h.Percentile(0.5);
  uint64_t p95 = h.Percentile(0.95);
  uint64_t p99 = h.Percentile(0.99);

  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  for (uint64_t v = 1; v <= kSamples; ++v) h.Record(v * 3);
  EXPECT_EQ(h.Percentile(0.5), p50);
  EXPECT_EQ(h.Percentile(0.95), p95);
  EXPECT_EQ(h.Percentile(0.99), p99);
}

TEST(LatencyHistogramTest, MergeFromPoolsAggregatesAndSamples) {
  LatencyHistogram a, b;
  a.Record(1000);
  a.Record(2000);
  b.Record(3000);
  b.Record(9000);
  a.MergeFrom(b);
  // Aggregates are exact after a merge...
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.max_nanos(), 9000u);
  EXPECT_DOUBLE_EQ(a.mean_nanos(), 3750.0);
  // ...and below reservoir capacity the pooled percentiles are too.
  EXPECT_EQ(a.Percentile(0.0), 1000u);
  EXPECT_EQ(a.Percentile(1.0), 9000u);
  // rank = 0.5 * (4 - 1) = 1.5, rounded half-away-from-zero to index 2.
  EXPECT_EQ(a.Percentile(0.5), 3000u);
  // The source is unchanged.
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.max_nanos(), 9000u);
}

TEST(LatencyHistogramTest, MergeFromEmptyAndIntoEmpty) {
  LatencyHistogram a, b;
  a.Record(5000);
  a.MergeFrom(b);  // merging an empty histogram changes nothing
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.Percentile(0.5), 5000u);
  b.MergeFrom(a);  // merging into an empty histogram copies it
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.max_nanos(), 5000u);
  EXPECT_DOUBLE_EQ(b.mean_nanos(), 5000.0);
}

TEST(LatencyHistogramTest, MergeFromSelfIsANoOp) {
  LatencyHistogram h;
  h.Record(1000);
  h.Record(2000);
  h.MergeFrom(h);  // must not deadlock or double-count
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.mean_nanos(), 1500.0);
}

TEST(LatencyHistogramTest, MergeFromKeepsExactAggregatesPastCapacity) {
  LatencyHistogram a, b;
  constexpr uint64_t kSamples = 2 * LatencyHistogram::kReservoirCapacity;
  uint64_t expected_sum = 0;
  for (uint64_t v = 1; v <= kSamples; ++v) {
    (v % 2 == 0 ? a : b).Record(v);
    expected_sum += v;
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), kSamples);
  EXPECT_EQ(a.max_nanos(), kSamples);
  EXPECT_DOUBLE_EQ(a.mean_nanos(),
                   static_cast<double>(expected_sum) / kSamples);
  EXPECT_EQ(a.reservoir_size(), LatencyHistogram::kReservoirCapacity);
}

TEST(GaugeTest, SetAddAndConcurrentAdds) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(10);
  g.Add(-3);
  g.Add(5);
  EXPECT_EQ(g.value(), 12);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < 1000; ++i) g.Add(1);
      for (int i = 0; i < 1000; ++i) g.Add(-1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(g.value(), 12);
}

TEST(ScopedTimerTest, RecordsElapsed) {
  LatencyHistogram h;
  {
    ScopedTimer t(&h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max_nanos(), 1000000u);
}

TEST(ScopedTimerTest, NullHistogramIsANoOp) {
  // Instrumentation sites pass a null histogram when a metric is disabled;
  // the timer must tolerate it on both construction and destruction.
  ScopedTimer t(nullptr);
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::NotFound("thing");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(), "NotFound: thing");
  EXPECT_TRUE(Status::Busy("b").IsBusy());
  EXPECT_TRUE(Status::TxnAborted("t").IsTxnAborted());
  EXPECT_TRUE(Status::Internal("i").IsInternal());
  EXPECT_TRUE(Status::OutOfRange("o").IsOutOfRange());
  EXPECT_TRUE(Status::InvalidArgument("a").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("e").IsAlreadyExists());
  EXPECT_TRUE(Status::NotSupported("n").IsNotSupported());
}

TEST(StatusTest, TransientTaxonomy) {
  // Transient: the caller (or a supervised driver) may retry.
  EXPECT_TRUE(Status::TxnAborted("deadlock victim").IsTransient());
  EXPECT_TRUE(Status::Busy("lock wait timeout").IsTransient());
  // Everything else is permanent.
  EXPECT_FALSE(Status::OK().IsTransient());
  EXPECT_FALSE(Status::NotFound("x").IsTransient());
  EXPECT_FALSE(Status::Internal("x").IsTransient());
  EXPECT_FALSE(Status::InvalidArgument("x").IsTransient());
  EXPECT_FALSE(Status::OutOfRange("x").IsTransient());
  EXPECT_FALSE(Status::NotSupported("x").IsTransient());
  EXPECT_FALSE(Status::AlreadyExists("x").IsTransient());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UseParse(int v, int* out) {
  ROLLVIEW_ASSIGN_OR_RETURN(*out, ParsePositive(v));
  return Status::OK();
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 5);
  EXPECT_EQ(*good, 5);

  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());

  int out = 0;
  EXPECT_TRUE(UseParse(7, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(UseParse(-3, &out).IsInvalidArgument());
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    int64_t x = a.Uniform(-5, 5);
    EXPECT_EQ(x, b.Uniform(-5, 5));
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
  double d = a.NextDouble();
  EXPECT_GE(d, 0.0);
  EXPECT_LT(d, 1.0);
  // Fork produces a different stream.
  Rng c(a.Fork());
  EXPECT_NE(c.Uniform(0, 1u << 30), a.Uniform(0, 1u << 30));
}

}  // namespace
}  // namespace rollview
