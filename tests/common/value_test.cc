#include "common/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/csn.h"

namespace rollview {
namespace {

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("abc").type(), ValueType::kString);
  EXPECT_TRUE(Value::Null().is_null());
}

TEST(ValueTest, EqualityWithinType) {
  EXPECT_EQ(Value(int64_t{7}), Value(int64_t{7}));
  EXPECT_NE(Value(int64_t{7}), Value(int64_t{8}));
  EXPECT_EQ(Value("x"), Value(std::string("x")));
  EXPECT_NE(Value("x"), Value("y"));
  EXPECT_EQ(Value::Null(), Value::Null());  // multiset-grouping semantics
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_NE(Value(int64_t{3}), Value(3.5));
  // Equal values must hash equally, even across numeric types.
  EXPECT_EQ(Value(int64_t{3}).Hash(), Value(3.0).Hash());
}

TEST(ValueTest, OrderingTotalAndTypeRanked) {
  EXPECT_LT(Value::Null(), Value(int64_t{0}));
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(1.5), Value(int64_t{2}));
  EXPECT_LT(Value(int64_t{5}), Value("a"));  // numerics before strings
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_FALSE(Value("b") < Value("a"));
}

TEST(ValueTest, HashDistinguishesCommonValues) {
  std::unordered_set<size_t> hashes;
  for (int64_t i = 0; i < 1000; ++i) {
    hashes.insert(Value(i).Hash());
  }
  EXPECT_GT(hashes.size(), 990u);  // no catastrophic collisions
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
}

TEST(CsnTest, MinTimestampIgnoresNull) {
  EXPECT_EQ(MinTimestamp(kNullCsn, kNullCsn), kNullCsn);
  EXPECT_EQ(MinTimestamp(kNullCsn, 5), 5u);
  EXPECT_EQ(MinTimestamp(5, kNullCsn), 5u);
  EXPECT_EQ(MinTimestamp(3, 5), 3u);
  EXPECT_EQ(MinTimestamp(5, 3), 3u);
}

TEST(CsnTest, RangeSemantics) {
  CsnRange r{3, 7};  // (3, 7]
  EXPECT_FALSE(r.Contains(3));
  EXPECT_TRUE(r.Contains(4));
  EXPECT_TRUE(r.Contains(7));
  EXPECT_FALSE(r.Contains(8));
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.length(), 4u);
  EXPECT_TRUE((CsnRange{5, 5}).empty());
  EXPECT_TRUE((CsnRange{6, 5}).empty());
  EXPECT_EQ((CsnRange{6, 5}).length(), 0u);
}

}  // namespace
}  // namespace rollview
