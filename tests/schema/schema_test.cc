#include "schema/schema.h"

#include <gtest/gtest.h>

#include "schema/tuple.h"

namespace rollview {
namespace {

Schema TestSchema() {
  return Schema({Column{"id", ValueType::kInt64},
                 Column{"name", ValueType::kString},
                 Column{"score", ValueType::kDouble}});
}

TEST(SchemaTest, LookupByName) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.IndexOf("name"), std::optional<size_t>(1));
  EXPECT_EQ(s.IndexOf("missing"), std::nullopt);
  EXPECT_EQ(s.column(2).type, ValueType::kDouble);
}

TEST(SchemaTest, ConcatPreservesOrderAndAllowsDuplicates) {
  Schema joined = TestSchema().Concat(TestSchema());
  EXPECT_EQ(joined.num_columns(), 6u);
  EXPECT_EQ(joined.column(0).name, "id");
  EXPECT_EQ(joined.column(3).name, "id");  // positional resolution
  // IndexOf finds the first occurrence.
  EXPECT_EQ(joined.IndexOf("id"), std::optional<size_t>(0));
}

TEST(SchemaTest, Project) {
  Schema p = TestSchema().Project({2, 0});
  EXPECT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.column(0).name, "score");
  EXPECT_EQ(p.column(1).name, "id");
}

TEST(SchemaTest, ValidateTuple) {
  Schema s = TestSchema();
  EXPECT_TRUE(s.ValidateTuple({Value(int64_t{1}), Value("x"), Value(0.5)})
                  .ok());
  // NULL allowed in any column.
  EXPECT_TRUE(
      s.ValidateTuple({Value::Null(), Value::Null(), Value::Null()}).ok());
  // Wrong arity.
  EXPECT_TRUE(s.ValidateTuple({Value(int64_t{1})}).IsInvalidArgument());
  // Wrong type.
  EXPECT_TRUE(s.ValidateTuple({Value("no"), Value("x"), Value(0.5)})
                  .IsInvalidArgument());
  // int64 is not silently coerced to double.
  EXPECT_TRUE(
      s.ValidateTuple({Value(int64_t{1}), Value("x"), Value(int64_t{5})})
          .IsInvalidArgument());
}

TEST(SchemaTest, ToString) {
  EXPECT_EQ(TestSchema().ToString(),
            "(id INT64, name STRING, score DOUBLE)");
}

TEST(TupleTest, HashEqualTuplesEqualHashes) {
  Tuple a{Value(int64_t{3}), Value("x")};
  Tuple b{Value(3.0), Value("x")};  // cross-type numeric equality
  EXPECT_EQ(a, b);
  EXPECT_EQ(HashTuple(a), HashTuple(b));
  Tuple c{Value(int64_t{4}), Value("x")};
  EXPECT_NE(a, c);
}

TEST(TupleTest, DeltaRowToString) {
  DeltaRow r(Tuple{Value(int64_t{1})}, -2, 7);
  EXPECT_EQ(r.ToString(), "{[1], count=-2, ts=7}");
  DeltaRow base(Tuple{Value(int64_t{1})}, 1, kNullCsn);
  EXPECT_EQ(base.ToString(), "{[1], count=1, ts=null}");
}

}  // namespace
}  // namespace rollview
