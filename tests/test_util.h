// Copyright 2026 The rollview Authors.
//
// Shared test fixtures: an engine + capture + view-manager bundle, scripted
// update helpers, and the golden timed-delta-table invariant checker
// (Definition 4.2): for all a < b within the settled window,
//   phi(sigma_{a,b}(Delta^V) + V_a) = phi(V_b),
// where V_t is recomputed from MVCC snapshots (the engine retains versions
// so the oracle never depends on the code under test).

#ifndef ROLLVIEW_TESTS_TEST_UTIL_H_
#define ROLLVIEW_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "capture/log_capture.h"
#include "ivm/apply.h"
#include "ivm/baselines.h"
#include "ivm/view_manager.h"
#include "ra/net_effect.h"
#include "storage/db.h"
#include "workload/schemas.h"

namespace rollview {

// Engine + capture + views, wired together. Capture is stepped manually by
// default (deterministic); call StartCapture() for background mode.
class TestEnv {
 public:
  explicit TestEnv(CaptureOptions capture_options = CaptureOptions{})
      : db_(std::make_unique<Db>()),
        capture_(std::make_unique<LogCapture>(db_.get(), capture_options)),
        views_(std::make_unique<ViewManager>(db_.get(), capture_.get())) {}

  Db* db() { return db_.get(); }
  LogCapture* capture() { return capture_.get(); }
  ViewManager* views() { return views_.get(); }

  void StartCapture() { capture_->Start(); }

  // Drains the WAL into the delta tables.
  void CatchUpCapture() { capture_->CatchUp(); }

 private:
  std::unique_ptr<Db> db_;
  std::unique_ptr<LogCapture> capture_;
  std::unique_ptr<ViewManager> views_;
};

// phi(V_t) recomputed from snapshots; FATAL on engine errors.
inline DeltaRows OracleViewState(Db* db, const View* view, Csn t) {
  Result<DeltaRows> r = SnapshotViewState(db, view->resolved, t);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : DeltaRows{};
}

// Checks Definition 4.2 for the window (a, b].
inline ::testing::AssertionResult CheckTimedDeltaWindow(Db* db,
                                                        const View* view,
                                                        Csn a, Csn b) {
  DeltaRows va = OracleViewState(db, view, a);
  DeltaRows vb = OracleViewState(db, view, b);
  DeltaRows window = view->view_delta->Scan(CsnRange{a, b});
  DeltaRows rolled = ApplyDelta(va, window);
  if (!NetEquivalent(rolled, vb)) {
    return ::testing::AssertionFailure()
           << "phi(sigma_{" << a << "," << b << "}(Delta^V) + V_" << a
           << ") != phi(V_" << b << "): rolled " << rolled.size()
           << " distinct tuples, expected " << vb.size() << " (window has "
           << window.size() << " delta rows)";
  }
  return ::testing::AssertionSuccess();
}

// Checks Definition 4.2 across a sweep of sub-windows of [from, to]:
// consecutive pairs of sample points spaced `stride` apart, plus the full
// window and a few straddling windows.
inline ::testing::AssertionResult CheckTimedDeltaSweep(Db* db,
                                                       const View* view,
                                                       Csn from, Csn to,
                                                       Csn stride = 1) {
  if (to < from) {
    return ::testing::AssertionFailure()
           << "bad sweep window (" << from << ", " << to << "]";
  }
  for (Csn a = from; a <= to; a += stride) {
    Csn b = std::min<Csn>(a + stride, to);
    if (b <= a) break;
    auto r = CheckTimedDeltaWindow(db, view, a, b);
    if (!r) return r;
  }
  // The whole window and two asymmetric straddles.
  auto r = CheckTimedDeltaWindow(db, view, from, to);
  if (!r) return r;
  if (to - from >= 3) {
    Csn mid = from + (to - from) / 3;
    r = CheckTimedDeltaWindow(db, view, from, mid);
    if (!r) return r;
    r = CheckTimedDeltaWindow(db, view, mid, to);
    if (!r) return r;
  }
  return ::testing::AssertionSuccess();
}

#define ASSERT_OK(expr)                                         \
  do {                                                          \
    ::rollview::Status status_ = (expr);                        \
    ASSERT_TRUE(status_.ok()) << status_.ToString();            \
  } while (false)

#define EXPECT_OK(expr)                                         \
  do {                                                          \
    ::rollview::Status status_ = (expr);                        \
    EXPECT_TRUE(status_.ok()) << status_.ToString();            \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                         \
  ASSERT_OK_AND_ASSIGN_IMPL(ROLLVIEW_CONCAT(r__, __LINE__), lhs, expr)
#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)               \
  auto tmp = (expr);                                            \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();             \
  lhs = std::move(tmp).value();

}  // namespace rollview

#endif  // ROLLVIEW_TESTS_TEST_UTIL_H_
