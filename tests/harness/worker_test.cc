#include "harness/worker.h"

#include <gtest/gtest.h>

#include <atomic>

namespace rollview {
namespace {

TEST(WorkerTest, RunsBodyUntilStopped) {
  std::atomic<int> runs{0};
  Worker w([&runs]() -> Status {
    runs++;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    return Status::OK();
  });
  w.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(w.Join().ok());
  EXPECT_GT(runs.load(), 10);
  EXPECT_EQ(w.iterations(), static_cast<uint64_t>(runs.load()));
  EXPECT_EQ(w.latency().count(), w.iterations());
}

TEST(WorkerTest, ErrorStopsTheLoopAndIsReported) {
  std::atomic<int> runs{0};
  Worker w([&runs]() -> Status {
    if (++runs == 3) return Status::Internal("boom");
    return Status::OK();
  });
  w.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Status s = w.Join();
  EXPECT_TRUE(s.IsInternal());
  EXPECT_EQ(runs.load(), 3);
}

TEST(WorkerTest, PacingLimitsThroughput) {
  std::atomic<int> runs{0};
  Worker::Options opts;
  opts.target_ops_per_sec = 100.0;  // ~10ms period
  Worker w([&runs]() -> Status {
    runs++;
    return Status::OK();
  }, opts);
  w.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_TRUE(w.Join().ok());
  // ~30 expected; allow generous slack for scheduling noise.
  EXPECT_GE(runs.load(), 15);
  EXPECT_LE(runs.load(), 60);
}

TEST(WorkerTest, TransientErrorsAreRetriedWhenOptedIn) {
  std::atomic<int> runs{0};
  Worker::Options opts;
  opts.retry_transient_errors = true;
  Worker w([&runs]() -> Status {
    int n = ++runs;
    if (n % 3 == 1) return Status::TxnAborted("deadlock victim");
    if (n % 3 == 2) return Status::Busy("lock wait timeout");
    return Status::OK();
  }, opts);
  w.Start();
  while (w.transient_errors() < 6) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(w.Join().ok());
  EXPECT_GE(w.transient_errors(), 6u);
  EXPECT_GE(w.iterations(), w.transient_errors());
}

TEST(WorkerTest, PermanentErrorStillStopsARetryingWorker) {
  std::atomic<int> runs{0};
  Worker::Options opts;
  opts.retry_transient_errors = true;
  Worker w([&runs]() -> Status {
    if (++runs < 3) return Status::TxnAborted("transient");
    return Status::Internal("fatal");
  }, opts);
  w.Start();
  while (runs.load() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Status s = w.Join();
  EXPECT_TRUE(s.IsInternal());
  EXPECT_EQ(runs.load(), 3);
  EXPECT_EQ(w.transient_errors(), 2u);
}

TEST(WorkerTest, DoubleStartAndJoinAreSafe) {
  Worker w([]() -> Status { return Status::OK(); });
  w.Start();
  w.Start();  // no-op
  ASSERT_TRUE(w.Join().ok());
  ASSERT_TRUE(w.Join().ok());  // idempotent
}

TEST(WorkerTest, DestructorStopsThread) {
  std::atomic<bool> alive{true};
  {
    Worker w([&alive]() -> Status {
      alive.store(true);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      return Status::OK();
    });
    w.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }  // destructor Stop()s; Join happens in ~Worker via Stop+join? (Stop only)
  SUCCEED();
}

}  // namespace
}  // namespace rollview
