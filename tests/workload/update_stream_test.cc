#include "workload/update_stream.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "workload/schemas.h"

namespace rollview {
namespace {

class UpdateStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_OK_AND_ASSIGN(
        workload_, TwoTableWorkload::Create(env_.db(), 20, 10, 4, 1));
    env_.CatchUpCapture();
  }

  TestEnv env_;
  TwoTableWorkload workload_;
};

TEST_F(UpdateStreamTest, OperationsMatchMirrorAndTable) {
  UpdateStream stream(env_.db(), workload_.RStream(1, 7), 7);
  ASSERT_OK(stream.RunTransactions(50));
  const UpdateStream::Stats& st = stream.stats();
  EXPECT_EQ(st.txns, 50u);
  EXPECT_EQ(st.ops, st.inserts + st.deletes + st.updates);
  EXPECT_GT(st.inserts, 0u);
  EXPECT_GT(st.deletes + st.updates, 0u);

  // live_rows (mirror) must equal the stream's net contribution to R.
  auto txn = env_.db()->Begin();
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> rows,
                       env_.db()->Scan(txn.get(), workload_.r));
  ASSERT_OK(env_.db()->Commit(txn.get()));
  // 20 preloaded rows belong to no stream.
  EXPECT_EQ(rows.size(), 20u + stream.live_rows());
}

TEST_F(UpdateStreamTest, DeterministicGivenSeed) {
  TestEnv env2;
  ASSERT_OK_AND_ASSIGN(TwoTableWorkload w2,
                       TwoTableWorkload::Create(env2.db(), 20, 10, 4, 1));
  UpdateStream a(env_.db(), workload_.RStream(1, 7), 7);
  UpdateStream b(env2.db(), w2.RStream(1, 7), 7);
  ASSERT_OK(a.RunTransactions(30));
  ASSERT_OK(b.RunTransactions(30));
  EXPECT_EQ(a.stats().inserts, b.stats().inserts);
  EXPECT_EQ(a.stats().deletes, b.stats().deletes);
  EXPECT_EQ(a.stats().updates, b.stats().updates);

  auto t1 = env_.db()->Begin();
  auto t2 = env2.db()->Begin();
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> r1,
                       env_.db()->Scan(t1.get(), workload_.r));
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> r2,
                       env2.db()->Scan(t2.get(), w2.r));
  ASSERT_OK(env_.db()->Commit(t1.get()));
  ASSERT_OK(env2.db()->Commit(t2.get()));
  EXPECT_TRUE(NetEquivalent(FromTuples(r1), FromTuples(r2)));
}

TEST_F(UpdateStreamTest, DisjointPartitionsNeverCollide) {
  UpdateStream a(env_.db(), workload_.RStream(1, 7), 7);
  UpdateStream b(env_.db(), workload_.RStream(2, 8), 8);
  ASSERT_OK(a.RunTransactions(20));
  ASSERT_OK(b.RunTransactions(20));
  // Both streams' deletes found their victims (no cross-partition theft);
  // RunTransactions would have failed otherwise.
  EXPECT_EQ(a.stats().txns, 20u);
  EXPECT_EQ(b.stats().txns, 20u);
}

TEST_F(UpdateStreamTest, MutateTuplePreservesKey) {
  UpdateStreamConfig cfg = workload_.RStream(1, 7);
  cfg.delete_prob = 0.0;
  cfg.update_prob = 1.0;
  cfg.ops_per_txn = 1;  // one mirror row: each txn updates it exactly once
  cfg.mutate_tuple = [](const Tuple& old_tuple, int64_t) {
    Tuple t = old_tuple;
    t[2] = Value(t[2].AsInt64() + 1);
    return t;
  };
  UpdateStream stream(env_.db(), cfg, 7);
  // Seed with one known row (inserted out of band).
  {
    auto txn = env_.db()->Begin();
    ASSERT_OK(env_.db()->Insert(
        txn.get(), workload_.r,
        Tuple{Value(int64_t{7777}), Value(int64_t{0}), Value(int64_t{1})}));
    ASSERT_OK(env_.db()->Commit(txn.get()));
  }
  stream.SeedMirror({Tuple{Value(int64_t{7777}), Value(int64_t{0}),
                           Value(int64_t{1})}});
  ASSERT_OK(stream.RunTransactions(12, /*max_retries=*/4));
  // Key preserved through 12 single-op mutations.
  auto txn = env_.db()->Begin();
  ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> rows,
      env_.db()->ScanWhere(txn.get(), workload_.r, [](const Tuple& t) {
        return t[0] == Value(int64_t{7777});
      }));
  ASSERT_OK(env_.db()->Commit(txn.get()));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][2].AsInt64(), 13);
}

TEST(StarWorkloadTest, CreateAndViewDefResolve) {
  Db db;
  StarSchemaConfig config;
  config.num_dims = 3;
  config.dim_rows = 20;
  config.fact_rows = 100;
  auto star = StarSchemaWorkload::Create(&db, config, 3);
  ASSERT_TRUE(star.ok()) << star.status().ToString();
  EXPECT_EQ(star->dims.size(), 3u);
  EXPECT_EQ(db.table(star->fact)->LiveSize(), 100u);
  EXPECT_EQ(db.table(star->dims[0])->LiveSize(), 20u);

  auto resolved = ResolvedView::Resolve(&db, star->ViewDef());
  ASSERT_TRUE(resolved.ok());
  // fact(1 + 3 fks + amount) + 3 dims x 3 cols.
  EXPECT_EQ(resolved->view_schema().num_columns(), 5u + 9u);
}

TEST(ZipfTest, SkewConcentratesMass) {
  Rng rng(1);
  Zipf zipf(100, 1.0);
  int head = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(rng) < 10) ++head;
  }
  // With theta=1, the top-10 of 100 keys draw well over a third of samples.
  EXPECT_GT(head, kSamples / 3);

  Zipf uniformish(100, 0.01);
  head = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (uniformish.Sample(rng) < 10) ++head;
  }
  EXPECT_LT(head, kSamples / 5);  // near-uniform: ~10%
}

}  // namespace
}  // namespace rollview
