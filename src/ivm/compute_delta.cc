#include "ivm/compute_delta.h"

#include <cassert>

namespace rollview {

Status ComputeDeltaOp::Run(const PropQuery& q,
                           const std::vector<Csn>& tau_old, Csn t_new) {
  return RunAtDepth(q, tau_old, t_new, 1);
}

Status ComputeDeltaOp::PropagateInterval(const View* view, Csn from,
                                         Csn to) {
  PropQuery q = PropQuery::AllBase(view);
  std::vector<Csn> tau_old(q.num_terms(), from);
  return Run(q, tau_old, to);
}

Status ComputeDeltaOp::RunAtDepth(const PropQuery& q,
                                  const std::vector<Csn>& tau_old, Csn t_new,
                                  uint64_t depth) {
  assert(tau_old.size() == q.num_terms());
  stats_.invocations++;
  if (depth > stats_.max_depth) stats_.max_depth = depth;

  // Emptiness of a delta range is only final once capture has published
  // everything up to t_new; wait before deciding to skip subtrees.
  if (options_.skip_empty_ranges && runner_->views()->capture() != nullptr) {
    ROLLVIEW_RETURN_NOT_OK(runner_->views()->capture()->WaitForCsn(t_new));
  }

  for (size_t i = 0; i < q.num_terms(); ++i) {
    if (q.terms[i].is_delta) continue;    // fixed delta term: does not evolve
    if (!(tau_old[i] < t_new)) continue;  // this term needs no delta here

    PropQuery fwd = q;
    fwd.terms[i] = PropTerm::Delta(tau_old[i], t_new);

    if (options_.skip_empty_ranges) {
      DeltaTable* dt = runner_->views()->db()->delta(q.view->resolved.table(i));
      if (dt->CountInRange(CsnRange{tau_old[i], t_new}) == 0) {
        stats_.queries_skipped++;
        continue;  // Q' is identically empty: skip it and its compensation
      }
    }

    // The query's compensation subtree nests inside its span, so the trace
    // mirrors the Figure 4 recursion. Depth counts compensation nesting:
    // the forward query of a plain propagation step is depth 1, each
    // recursive compensation level adds one.
    obs::ScopedSpan span(tracer_, fwd.NumDeltaTerms() == 1
                                      ? obs::SpanKind::kForward
                                      : obs::SpanKind::kCompensation);
    span.Attr("relation", static_cast<int64_t>(i));
    span.Attr("depth", static_cast<int64_t>(depth));
    Result<Csn> exec = runner_->Execute(fwd);
    if (!exec.ok()) {
      span.set_ok(false);
      return exec.status();
    }
    Csn t_exec = exec.value();
    stats_.queries_issued++;

    if (fwd.HasBaseTerm()) {
      // Tables left of i were intended at their tau_old; tables right of i
      // at t_new (the Eq. 2 convention). The query actually saw all of them
      // at t_exec; recursively compensate the difference.
      std::vector<Csn> tau_intended(q.num_terms());
      for (size_t j = 0; j < q.num_terms(); ++j) {
        tau_intended[j] = (j < i) ? tau_old[j] : t_new;
      }
      Status s = RunAtDepth(fwd.Negated(), tau_intended, t_exec, depth + 1);
      if (!s.ok()) {
        span.set_ok(false);
        return s;
      }
    }
  }
  return Status::OK();
}

}  // namespace rollview
