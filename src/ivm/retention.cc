#include "ivm/retention.h"

#include <algorithm>
#include <unordered_map>

namespace rollview {

RetentionManager::PruneReport RetentionManager::PruneOnce() {
  PruneReport report;
  std::vector<View*> views = views_->AllViews();
  if (views.empty()) return report;

  // Per-base-table floor: the minimum retention point over every view that
  // reads the table's delta. Tables no view reads keep everything (their
  // deltas may serve future views); a production system would expose a
  // separate policy for them.
  std::unordered_map<TableId, Csn> floors;
  Csn global_floor = kMaxCsn;
  for (View* v : views) {
    Csn floor =
        options_.base_delta_policy ==
                RetentionOptions::BaseDeltaPolicy::kApplied
            ? v->mv->csn()
            : v->high_water_mark();
    global_floor = std::min(global_floor, floor);
    for (size_t i = 0; i < v->resolved.num_terms(); ++i) {
      TableId t = v->resolved.table(i);
      auto [it, inserted] = floors.try_emplace(t, floor);
      if (!inserted) it->second = std::min(it->second, floor);
    }
  }
  report.base_floor = global_floor == kMaxCsn ? kNullCsn : global_floor;

  Db* db = views_->db();
  for (const auto& [table, floor] : floors) {
    if (floor == kNullCsn) continue;
    report.base_delta_rows += db->delta(table)->Prune(floor);
    if (options_.gc_versions) {
      db->table(table)->GarbageCollect(floor);
    }
  }
  if (options_.prune_view_deltas) {
    for (View* v : views) {
      Csn floor = v->mv->csn();
      if (floor == kNullCsn) continue;
      report.view_delta_rows += v->view_delta->Prune(floor);
    }
  }
  return report;
}

}  // namespace rollview
