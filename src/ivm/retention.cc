#include "ivm/retention.h"

#include <algorithm>
#include <unordered_map>

namespace rollview {

RetentionManager::PruneReport RetentionManager::PruneOnce() {
  PruneReport report;
  std::vector<View*> views = views_->AllViews();
  if (views.empty()) return report;

  // Per-base-table floor: the minimum retention point over every view that
  // reads the table's delta. Tables no view reads keep everything (their
  // deltas may serve future views); a production system would expose a
  // separate policy for them.
  std::unordered_map<TableId, Csn> floors;
  Csn global_floor = kMaxCsn;
  for (View* v : views) {
    Csn floor =
        options_.base_delta_policy ==
                RetentionOptions::BaseDeltaPolicy::kApplied
            ? v->mv->csn()
            : v->high_water_mark();
    global_floor = std::min(global_floor, floor);
    for (size_t i = 0; i < v->resolved.num_terms(); ++i) {
      TableId t = v->resolved.table(i);
      auto [it, inserted] = floors.try_emplace(t, floor);
      if (!inserted) it->second = std::min(it->second, floor);
    }
  }
  report.base_floor = global_floor == kMaxCsn ? kNullCsn : global_floor;

  Db* db = views_->db();
  // Durable-WAL coupling: the file-backed log retains only the suffix above
  // the latest durable checkpoint, and that suffix is replayed against the
  // checkpoint's image of the versioned tables. Destroying in-memory state
  // above the image's coverage (a version whose delete the suffix still
  // replays, a delta row the recovered capture re-reads) would make the
  // NEXT checkpoint's image incomplete -- so every floor is clamped to the
  // coverage CSN. Without a durable backend the clamp is kMaxCsn (no-op).
  // The unclamped floor still reaches the segment store so it can hold
  // covered segments a lagging view may want for diagnostics.
  Csn durable_clamp = db->wal()->durable_covered_csn();
  report.durable_clamp_applied = durable_clamp < global_floor;
  db->wal()->SetRetentionFloor(report.base_floor);
  for (const auto& [table, floor] : floors) {
    Csn clamped = std::min(floor, durable_clamp);
    if (clamped == kNullCsn) continue;
    report.base_delta_rows += db->delta(table)->Prune(clamped);
    if (options_.gc_versions) {
      db->table(table)->GarbageCollect(clamped);
    }
  }
  if (options_.prune_view_deltas) {
    for (View* v : views) {
      Csn floor = std::min(v->mv->csn(), durable_clamp);
      if (floor == kNullCsn) continue;
      report.view_delta_rows += v->view_delta->Prune(floor);
    }
  }
  return report;
}

}  // namespace rollview
