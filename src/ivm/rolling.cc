#include "ivm/rolling.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "ivm/checkpoint.h"

namespace rollview {

RollingPropagator::RollingPropagator(
    ViewManager* views, View* view,
    std::vector<std::unique_ptr<IntervalPolicy>> policies,
    RollingOptions options)
    : views_(views),
      view_(view),
      policies_(std::move(policies)),
      runner_(views, view, options.runner),
      compute_delta_(&runner_, options.compute_delta),
      skip_empty_(options.compute_delta.skip_empty_ranges),
      mode_(options.compensation),
      partition_(std::move(options.partition)),
      n_(view->resolved.num_terms()) {
  assert(policies_.size() == n_ && "one interval policy per base relation");
  if (partition_.enabled()) {
    assert(partition_.columns.size() == n_ &&
           "partition slice must cover every term");
    filters_.reserve(n_);
    for (size_t i = 0; i < n_; ++i) {
      filters_.push_back(partition_.FilterFor(i));
    }
    runner_.set_partition(&partition_);
  }
  querylist_.resize(n_);
  // Resume from the view's cursor control state when it exists (a previous
  // propagator over this view, or crash recovery, left it there); otherwise
  // start fresh at the materialization point. Without this, a second
  // propagator would re-propagate strips already covered by the first one.
  CursorState resume = view->LoadCursors(partition_.index);
  if (resume.valid && resume.tfwd.size() == n_ && resume.tcomp.size() == n_) {
    tfwd_ = resume.tfwd;
    tcomp_ = resume.tcomp;
    step_seq_ = resume.next_step_seq;
    if (resume.strips.size() == n_) {
      for (size_t j = 0; j < n_; ++j) {
        querylist_[j].assign(resume.strips[j].begin(),
                             resume.strips[j].end());
      }
    }
  } else {
    Csn start = view->propagate_from.load(std::memory_order_acquire);
    tfwd_.assign(n_, start);
    tcomp_.assign(n_, start);
  }
  CursorState init;
  init.tfwd = tfwd_;
  init.tcomp = tcomp_;
  init.next_step_seq = step_seq_;
  init.strips = SnapshotStrips();
  init.num_partitions = partition_.count;
  view->StoreCursors(std::move(init), partition_.index);
}

std::vector<std::vector<ForwardStrip>> RollingPropagator::SnapshotStrips()
    const {
  std::vector<std::vector<ForwardStrip>> out(n_);
  for (size_t j = 0; j < n_; ++j) {
    out[j].assign(querylist_[j].begin(), querylist_[j].end());
  }
  return out;
}

void RollingPropagator::PublishHwm() {
  if (hwm_hook_) {
    hwm_hook_(high_water_mark());
  } else {
    view_->AdvanceHwm(high_water_mark());
  }
}

void RollingPropagator::PublishCursors(uint64_t completed_seq) {
  CursorState state;
  state.tfwd = tfwd_;
  state.tcomp = tcomp_;
  state.next_step_seq = step_seq_;
  state.strips = SnapshotStrips();
  state.num_partitions = partition_.count;
  WalRecord rec =
      MakeViewCursorRecord(*view_, completed_seq, state, partition_.index);
  view_->StoreCursors(std::move(state), partition_.index);
  // Record first, hwm second: recovery recomputes the mark from durable
  // cursors, so an advance must never be observable without its cursor.
  views_->db()->wal()->Append(std::move(rec));
  PublishHwm();
}

RollingPropagator::RollingPropagator(ViewManager* views, View* view,
                                     Csn uniform_interval,
                                     RollingOptions options)
    : RollingPropagator(
          views, view,
          [&] {
            std::vector<std::unique_ptr<IntervalPolicy>> ps;
            for (size_t i = 0; i < view->resolved.num_terms(); ++i) {
              ps.push_back(std::make_unique<FixedInterval>(uniform_interval));
            }
            return ps;
          }(),
          std::move(options)) {}

void RollingPropagator::PruneQueryLists(Csn t) {
  // A forward query whose execution time is <= every frontier can no longer
  // overlap any future forward query (future queries start at frontiers and
  // a strip extends only to its execution time on foreign axes), so it is
  // fully compensated (paper footnote 4).
  for (size_t j = 0; j < n_; ++j) {
    while (!querylist_[j].empty() && querylist_[j].front().exec <= t) {
      querylist_[j].pop_front();
    }
  }
  RecomputeTcomp();
}

Csn RollingPropagator::CompTime(size_t j, Csn t) const {
  // Oldest not-fully-compensated forward query of R^j still covering
  // heights above t (exec > t); records are in increasing exec *and*
  // increasing lo order, so the covering set is a suffix and its x-union
  // starts at that record's lo. If none, only future strips (starting at
  // tfwd[j]) can overlap.
  for (const ForwardRecord& r : querylist_[j]) {
    if (r.exec > t) return r.lo;
  }
  return tfwd_[j];
}

Csn RollingPropagator::SegmentEnd(size_t i, Csn t, Csn cap) const {
  Csn end = cap;
  for (size_t j = 0; j < i; ++j) {
    for (const ForwardRecord& r : querylist_[j]) {
      if (r.exec > t && r.exec < end) end = r.exec;
    }
  }
  return end;
}

void RollingPropagator::RecomputeTcomp() {
  for (size_t j = 0; j < n_; ++j) {
    tcomp_[j] = querylist_[j].empty() ? tfwd_[j] : querylist_[j].front().lo;
  }
}

Csn RollingPropagator::high_water_mark() const {
  // Frontier mode settles each strip completely before advancing, so the
  // mark is the frontier minimum (the Theorem 4.2 argument); deferred mode
  // trails at the oldest uncompensated strip start (Theorem 4.3).
  Csn hwm = kMaxCsn;
  for (size_t j = 0; j < n_; ++j) {
    hwm = std::min(hwm, mode_ == CompensationMode::kFrontier ? tfwd_[j]
                                                             : tcomp_[j]);
  }
  return hwm == kMaxCsn ? kNullCsn : hwm;
}

void RollingPropagator::set_tracer(obs::StepTracer* tracer) {
  tracer_ = tracer;
  runner_.set_tracer(tracer);
  compute_delta_.set_tracer(tracer);
}

uint64_t RollingPropagator::BacklogRows() const {
  Csn ready = views_->DeltaReadyCsn();
  uint64_t total = 0;
  for (size_t i = 0; i < n_; ++i) {
    if (tfwd_[i] >= ready) continue;
    const DeltaTable* dt = views_->db()->delta(view_->resolved.table(i));
    total += dt->CountInRange(CsnRange{tfwd_[i], ready}, FilterFor(i));
  }
  return total;
}

Result<bool> RollingPropagator::Step() {
  // If a previous step failed AND its cancellation failed, the undo log
  // still holds the partial step's rows. Retry the cancellation before
  // anything else -- clearing the log here instead would let those rows
  // stand uncancelled forever.
  if (!undo_log_.empty()) {
    ROLLVIEW_RETURN_NOT_OK(runner_.CancelFailedStep(&undo_log_));
  }

  Csn ready = views_->DeltaReadyCsn();

  // Choose the base relation with the smallest forward frontier.
  size_t i = 0;
  for (size_t j = 1; j < n_; ++j) {
    if (tfwd_[j] < tfwd_[i]) i = j;
  }
  if (tfwd_[i] >= ready) return false;  // every frontier is caught up

  PruneQueryLists(tfwd_[i]);

  DeltaTable* dt = views_->db()->delta(view_->resolved.table(i));
  Csn y1 = tfwd_[i];
  Csn y2 = policies_[i]->NextBoundaryFiltered(y1, ready, *dt, FilterFor(i));
  if (y2 <= y1) return false;
  stats_.steps++;

  // From here on the step does work, so it gets a trace: root span with
  // the chosen relation and interval, ended on every exit path below.
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->BeginStep(obs::SpanKind::kStep, view_->id, view_->name,
                       step_seq_);
    tracer_->Attr(1, "relation", static_cast<int64_t>(i));
    tracer_->Attr(1, "t_a", static_cast<int64_t>(y1));
    tracer_->Attr(1, "t_b", static_cast<int64_t>(y2));
    if (partition_.enabled()) {
      tracer_->Attr(1, "partition", static_cast<int64_t>(partition_.index));
    }
  }

  // Exact skip: an empty delta range makes the forward query (and every
  // compensation involving this strip) identically empty. The frontier
  // still advances. DeltaReadyCsn() >= y2 makes the emptiness final.
  if (skip_empty_ && dt->CountInRange(CsnRange{y1, y2}, FilterFor(i)) == 0) {
    tfwd_[i] = y2;
    stats_.forward_skipped++;
    RecomputeTcomp();
    // An empty step publishes no rows but still consumes a sequence number
    // and logs its frontier advance -- the advance must survive a crash.
    PublishCursors(step_seq_++);
    if (tracer_ != nullptr) {
      tracer_->EndStep(obs::StepOutcome::kSkippedEmpty);
    }
    return true;
  }

  // A step is a multi-transaction protocol: the forward query and each
  // compensation segment commit independently. If one of them fails after
  // earlier ones committed, retrying the step verbatim would duplicate the
  // committed rows -- so run the fallible body under a step-undo log and
  // cancel exactly what the failed step published before surfacing the
  // error to the supervisor.
  size_t pre_step_records = querylist_[i].size();
  uint64_t seq = step_seq_++;
  runner_.set_step_seq(seq);
  undo_log_.Clear();
  runner_.set_undo_log(&undo_log_);
  Status s = ForwardAndCompensate(i, y1, y2);
  runner_.set_undo_log(nullptr);
  if (!s.ok()) {
    querylist_[i].resize(pre_step_records);  // drop this step's ForwardRecord
    // The undo span (and the trace's undone flag) is recorded by
    // CancelFailedStep while this step's trace is still active.
    Status cancel = runner_.CancelFailedStep(&undo_log_);
    Status out = cancel.ok() ? s : cancel;
    if (tracer_ != nullptr) {
      tracer_->EndStep(out.IsTransient() ? obs::StepOutcome::kTransientError
                                         : obs::StepOutcome::kPermanentError,
                       out.ToString());
    }
    return out;
  }
  // Success: the log's contents are committed view rows, not pending undo
  // work. A populated log past this point would be cancelled (negated) at
  // the next Step's entry check, corrupting the delta.
  undo_log_.Clear();

  tfwd_[i] = y2;
  RecomputeTcomp();
  PublishCursors(seq);
  if (tracer_ != nullptr) tracer_->EndStep(obs::StepOutcome::kOk);
  return true;
}

Status RollingPropagator::ForwardAndCompensate(size_t i, Csn y1, Csn y2) {
  // Forward query for R^i over (y1, y2].
  PropQuery fwd = PropQuery::AllBase(view_);
  fwd.terms[i] = PropTerm::Delta(y1, y2);
  Csn t_exec;
  {
    obs::ScopedSpan fwd_span(tracer_, obs::SpanKind::kForward);
    fwd_span.Attr("relation", static_cast<int64_t>(i));
    Result<Csn> exec = runner_.Execute(fwd);
    if (!exec.ok()) {
      fwd_span.set_ok(false);
      return exec.status();
    }
    t_exec = exec.value();
  }
  stats_.forward_queries++;

  if (mode_ == CompensationMode::kFrontier) {
    // Compensate every other relation's drift back from the execution time
    // to its current frontier; the strip's net contribution becomes the
    // exact staircase rectangle (y1, y2] x prod_{j != i} (0, tfwd_j].
    std::vector<Csn> tau(n_, t_exec);
    for (size_t j = 0; j < n_; ++j) {
      if (j != i) tau[j] = tfwd_[j];
    }
    ROLLVIEW_RETURN_NOT_OK(compute_delta_.Run(fwd.Negated(), tau, t_exec));
    stats_.compensation_segments++;
  } else {
    // Deferred (Figure 10): remember the strip so higher-numbered relations
    // compensate against it later ("if i < n"; 0-based: all but the last
    // relation), and eagerly compensate overlap with lower-numbered
    // relations, splitting (y1, y2] into rectangular segments at querylist
    // execution times (the repeat/until of Figure 10).
    if (i + 1 < n_) {
      querylist_[i].push_back(ForwardRecord{y1, y2, t_exec});
    }
    if (i > 0) {
      Csn t = y1;
      while (t < y2) {
        Csn seg_end = SegmentEnd(i, t, y2);
        PropQuery comp = PropQuery::AllBase(view_, /*sign=*/-1);
        comp.terms[i] = PropTerm::Delta(t, seg_end);
        std::vector<Csn> tau(n_, t_exec);
        for (size_t j = 0; j < i; ++j) tau[j] = CompTime(j, t);
        ROLLVIEW_RETURN_NOT_OK(compute_delta_.Run(comp, tau, t_exec));
        stats_.compensation_segments++;
        t = seg_end;
      }
    }
  }
  return Status::OK();
}

Result<bool> RollingPropagator::TryFinish() {
  Csn max_exec = kNullCsn;
  for (const auto& list : querylist_) {
    for (const ForwardRecord& r : list) {
      if (r.exec > max_exec) max_exec = r.exec;
    }
  }
  if (max_exec != kNullCsn && views_->capture() != nullptr) {
    // The exec CSNs are commits of our own propagation queries; capture
    // reaches them by draining the log, after which the range counts below
    // are final.
    ROLLVIEW_RETURN_NOT_OK(views_->capture()->WaitForCsn(max_exec));
  }
  for (size_t j = 0; j < n_; ++j) {
    for (const ForwardRecord& strip : querylist_[j]) {
      for (size_t k = j + 1; k < n_; ++k) {
        DeltaTable* dk = views_->db()->delta(view_->resolved.table(k));
        if (dk->CountInRange(CsnRange{tfwd_[k], strip.exec}, FilterFor(k)) >
            0) {
          return false;  // real overlap remains; keep stepping
        }
      }
    }
  }
  bool retired_any = false;
  for (auto& list : querylist_) {
    retired_any = retired_any || !list.empty();
    list.clear();
  }
  RecomputeTcomp();
  if (retired_any) {
    // Retiring strips lifts tcomp (and possibly the hwm); make the new
    // cursor state durable like any step would.
    PublishCursors(step_seq_ - 1);
  } else {
    PublishHwm();
  }
  return true;
}

Status RollingPropagator::RunUntil(Csn target) {
  while (high_water_mark() < target) {
    ROLLVIEW_ASSIGN_OR_RETURN(bool advanced, Step());
    if (advanced) continue;
    ROLLVIEW_ASSIGN_OR_RETURN(bool settled, TryFinish());
    if (settled && high_water_mark() >= target) break;
    if (views_->capture() != nullptr) {
      ROLLVIEW_RETURN_NOT_OK(views_->capture()->WaitForCsn(
          std::min(target, views_->db()->stable_csn())));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return Status::OK();
}

}  // namespace rollview
