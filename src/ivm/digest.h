// Copyright 2026 The rollview Authors.
//
// ViewDigest: a cheap, order-independent content digest of a materialized
// view extent, maintained incrementally alongside the MV and verified by the
// online scrubber (ivm/scrub.h).
//
// The digest is bucketed: every tuple hashes to one of kBuckets buckets
// (HashTuple modulo kBuckets), and each bucket keeps two independent
// add-mod-2^64 lanes plus a row-count tally. A tuple with multiplicity c
// contributes Mix(h) * c to the bucket's lanes, which makes the digest
// *count-linear*: changing a tuple's multiplicity from c1 to c2 updates the
// digest with the single term Mix(h) * (c2 - c1), independent of every other
// row and of application order -- exactly the phi-multiset algebra of the
// paper's delta tables (a digest of V_b equals the digest of V_a updated by
// any legal sigma_{a,b} delta, per Def. 4.2). Tuples at multiplicity zero
// contribute nothing, so erasing a zeroed tuple needs no special casing.
//
// Bucketing localizes damage: a scrub pass can verify a sampled subset of
// buckets, and a mismatch quarantines only the damaged bucket's key range
// rather than the whole view.

#ifndef ROLLVIEW_IVM_DIGEST_H_
#define ROLLVIEW_IVM_DIGEST_H_

#include <array>
#include <cstdint>
#include <string>

#include "ra/net_effect.h"
#include "schema/tuple.h"

namespace rollview {

class ViewDigest {
 public:
  static constexpr uint32_t kBuckets = 16;

  struct Bucket {
    uint64_t sum = 0;  // sum of Mix1(HashTuple(t)) * count(t), mod 2^64
    uint64_t alt = 0;  // sum of Mix2(HashTuple(t)) * count(t), mod 2^64
    int64_t rows = 0;  // sum of count(t): the bucket's multiset size

    friend bool operator==(const Bucket& a, const Bucket& b) {
      return a.sum == b.sum && a.alt == b.alt && a.rows == b.rows;
    }
    friend bool operator!=(const Bucket& a, const Bucket& b) {
      return !(a == b);
    }
  };

  // The bucket a tuple's content belongs to.
  static uint32_t BucketOf(const Tuple& tuple);

  // Incremental update: tuple's multiplicity changed old_count -> new_count.
  void Update(const Tuple& tuple, int64_t old_count, int64_t new_count);

  // Full recomputation from a phi contents map.
  static ViewDigest Compute(const CountMap& contents);
  // Recomputes only bucket `b` of `contents` (the scrub pass verifies a
  // sampled bucket without touching the others).
  static Bucket ComputeBucket(const CountMap& contents, uint32_t b);

  const Bucket& bucket(uint32_t b) const { return buckets_[b % kBuckets]; }
  // Mutable access for codecs (ivm/checkpoint.cc) reconstituting a digest
  // from the wire.
  Bucket& mutable_bucket(uint32_t b) { return buckets_[b % kBuckets]; }
  // Multiset size summed across buckets (equals the MV's TotalCount when
  // the digest is intact).
  int64_t total_rows() const;

  void Clear() { buckets_ = {}; }

  // Corruption drill hook: flips one bit of one bucket's primary lane,
  // chosen deterministically from `seed`. The scrubber must detect the
  // tamper and rebuild the digest from verified contents.
  void FlipBitForTest(uint64_t seed);

  // Short hex rendering ("b3:sum/alt/rows ..."), for logs and errors.
  std::string ToString() const;

  friend bool operator==(const ViewDigest& a, const ViewDigest& b) {
    return a.buckets_ == b.buckets_;
  }
  friend bool operator!=(const ViewDigest& a, const ViewDigest& b) {
    return !(a == b);
  }

 private:
  std::array<Bucket, kBuckets> buckets_{};
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_DIGEST_H_
