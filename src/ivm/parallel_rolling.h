// Copyright 2026 The rollview Authors.
//
// PartitionedRollingPropagator: hash-partitioned parallel rolling
// propagation. The view's delta streams are split into P disjoint slices by
// a join-equivalence-class key (ivm/partition.h); each slice gets its own
// RollingPropagator strip with private cursors, undo log, interval policies
// and step-sequence chain, and the strips run concurrently on a worker
// pool. Because two delta rows can join only when they agree on the join
// key, a strip's forward and compensation queries over its slice produce
// exactly the view rows whose key hashes to its partition -- the strips'
// outputs tile the serial propagator's output, each strip's sub-interval
// refresh is independently legal (Def. 4.2 applied per slice), and the
// view-level high-water mark is the minimum over the strips' local marks.
//
// Durability: every strip logs kViewCursor records tagged with its
// partition index and stamps its view-delta rows with (partition,
// step_seq), so crash recovery (ViewManager::Recover) rebuilds each
// partition's chain independently and restores hwm = min over partitions.
// A crash can leave the strips at different frontiers; recovery resumes
// each exactly where its durable chain ends.

#ifndef ROLLVIEW_IVM_PARALLEL_ROLLING_H_
#define ROLLVIEW_IVM_PARALLEL_ROLLING_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/worker_pool.h"
#include "ivm/rolling.h"

namespace rollview {

namespace obs {
class ViewFreshness;
}  // namespace obs

struct ParallelRollingOptions {
  // Per-strip propagation options; the partition slice field is filled in
  // per strip by Create.
  RollingOptions rolling;
  // Number of partition strips. Must be >= 1; 1 degenerates to a serial
  // propagator behind the same interface (still at partition slot 0 with
  // count 1, i.e. bit-compatible with the single-driver WAL framing).
  uint32_t partitions = 2;
  // Optional shared worker pool; when null the coordinator owns a pool of
  // `partitions` threads. A shared pool must outlive the coordinator.
  WorkerPool* pool = nullptr;
};

class PartitionedRollingPropagator {
 public:
  // Builds the per-relation interval policies of one strip. Called once per
  // partition; strips must not share policy objects (policies are stateful
  // per strip only via the shared IntervalController, which is
  // thread-safe).
  using PolicyFactory =
      std::function<std::vector<std::unique_ptr<IntervalPolicy>>()>;

  // Fails with InvalidArgument when the view has no join-equivalence class
  // covering every term (it cannot be hash-partitioned -- fall back to a
  // serial propagator), or when durable cursors from a different partition
  // count exist that have not settled to one uniform frontier
  // (repartitioning is only legal from a settled state).
  static Result<std::unique_ptr<PartitionedRollingPropagator>> Create(
      ViewManager* views, View* view, const PolicyFactory& make_policies,
      ParallelRollingOptions options);

  // One parallel round: every strip performs one Step() concurrently.
  // Returns true if any strip advanced. On strip errors the round still
  // completes (the pool is a barrier) and the first error is returned;
  // failed strips have already cancelled or retained their undo state
  // exactly like the serial driver.
  Result<bool> Step();

  // Settles every strip's pending querylists (see
  // RollingPropagator::TryFinish); true when all strips settled.
  Result<bool> TryFinish();

  // Steps rounds until the view-level mark reaches `target`.
  Status RunUntil(Csn target);

  // min over strips of the strip-local mark (Theorem 4.3 per slice).
  Csn high_water_mark() const;

  // Sum of the strips' captured-but-unpropagated row counts. Call between
  // rounds (same threading contract as the strips' own BacklogRows).
  uint64_t BacklogRows() const;

  uint32_t partitions() const {
    return static_cast<uint32_t>(strips_.size());
  }
  RollingPropagator* strip(uint32_t p) { return strips_[p].get(); }

  // Aggregates over all strips; call between rounds.
  RollingPropagator::Stats rolling_stats() const;
  RunnerStats runner_stats() const;
  ComputeDeltaStats compute_delta_stats() const;

  // Per-strip step tracers (strip p uses tracers[p]; a StepTracer is a
  // single-threaded builder, so concurrent strips must not share one).
  // Size must equal partitions(); null entries detach.
  void SetTracers(const std::vector<obs::StepTracer*>& tracers);

  // Freshness channel (obs/freshness.h): each hwm fold stamps the t_comp
  // boundary *before* publishing the advance, so the apply driver can
  // never make an unstamped commit visible. Atomic -- attachable while
  // rounds run; nullptr detaches.
  void set_freshness(obs::ViewFreshness* channel) {
    freshness_.store(channel, std::memory_order_release);
  }

  // The published local mark of partition p (what the strip last folded
  // into the view-level minimum); starts at the strip's resumed mark.
  Csn partition_hwm(uint32_t p) const {
    return hwm_slots_[p].load(std::memory_order_acquire);
  }

 private:
  PartitionedRollingPropagator() = default;

  // Strip p's hwm hook: fold `local` into slot p, advance the view to the
  // new minimum over slots. Runs on pool threads.
  void FoldHwm(uint32_t p, Csn local);

  ViewManager* views_ = nullptr;
  View* view_ = nullptr;
  std::vector<std::unique_ptr<RollingPropagator>> strips_;
  // Monotone per-partition marks; a racy minimum over them only ever
  // under-approximates, and View::AdvanceHwm is itself monotone.
  std::unique_ptr<std::atomic<Csn>[]> hwm_slots_;
  std::atomic<obs::ViewFreshness*> freshness_{nullptr};
  WorkerPool* pool_ = nullptr;
  std::unique_ptr<WorkerPool> owned_pool_;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_PARALLEL_ROLLING_H_
