// Copyright 2026 The rollview Authors.
//
// MaintenanceService: the deployment shape of the paper's prototype
// (Figure 11) as a managed component -- one background propagation driver
// and one background apply driver per view, independently pausable, plus a
// ViewManager-wide retention service. The propagate and apply drivers are
// "completely independent" apart from producer/consumer ordering (Sec. 1);
// pausing either (e.g. during load spikes) never affects correctness, only
// staleness.
//
// The drivers are *supervised*: transient errors (Status::IsTransient --
// deadlock-victim aborts, lock/capture timeouts) never kill a driver.
// Instead the driver backs off with capped, seeded-jitter exponential
// delays and retries, walking a per-driver health state machine:
//
//   kRunning --(degraded_after consecutive transient failures)--> kDegraded
//   kDegraded --(next success)--> kRunning
//   any --(permanent error, or failed_after consecutive failures)--> kFailed
//
// A kFailed driver exits its loop with the error recorded; Health() and
// last_error() make that observable long before Stop(). Recovery work is
// counted in per-driver DriverStats (transient errors by cause, recoveries,
// time spent backing off).

#ifndef ROLLVIEW_IVM_MAINTENANCE_H_
#define ROLLVIEW_IVM_MAINTENANCE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "ivm/apply.h"
#include "ivm/checkpoint.h"
#include "ivm/interval_policy.h"
#include "ivm/parallel_rolling.h"
#include "ivm/propagate.h"
#include "ivm/retention.h"
#include "ivm/rolling.h"
#include "ivm/scrub.h"
#include "obs/freshness.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "storage/lock_manager.h"

namespace rollview {

// Health of one background driver. kStopped: not started or cleanly
// stopped. kShedding: making progress but the staleness SLO is violated
// under contention, so non-critical work is paused (see
// Options::controller). kFailed is terminal until the next Start().
enum class DriverHealth { kStopped, kRunning, kShedding, kDegraded, kFailed };

const char* DriverHealthName(DriverHealth health);

// Capped exponential backoff with symmetric jitter: the n-th consecutive
// failure sleeps min(initial * multiplier^(n-1), max) scaled by a uniform
// factor in [1 - jitter, 1 + jitter] drawn from a seeded per-driver RNG.
struct BackoffPolicy {
  std::chrono::microseconds initial{200};
  std::chrono::microseconds max{50000};  // 50 ms
  double multiplier = 2.0;
  double jitter = 0.25;
};

// Recovery bookkeeping for one driver.
struct DriverStats {
  uint64_t steps = 0;             // successful step iterations
  uint64_t transient_errors = 0;  // transient failures absorbed
  uint64_t errors_aborted = 0;    //   ... of which TxnAborted
  uint64_t errors_busy = 0;       //   ... of which Busy
  uint64_t recoveries = 0;        // successes ending a failure streak
  uint64_t degraded_entries = 0;  // kRunning/... -> kDegraded transitions
  uint64_t backoff_nanos = 0;     // total time spent backing off
};

class MaintenanceService {
 public:
  struct Options {
    enum class Algorithm { kRolling, kPropagate };
    Algorithm algorithm = Algorithm::kRolling;
    // Interval sizing. kTargetRows is the open-loop policy (a fixed
    // rows-per-query target); kAdaptive closes the loop with an
    // IntervalController fed by post-step ContentionSnapshots -- AIMD on
    // the row target plus the staleness-SLO shedding machine.
    enum class IntervalMode { kTargetRows, kAdaptive };
    IntervalMode interval_mode = IntervalMode::kTargetRows;
    // Open-loop target (delta rows per forward query), applied to every
    // relation. For custom per-relation policies construct a
    // RollingPropagator directly. Ignored in kAdaptive mode: configure
    // controller.initial_target_rows (and its bounds) instead.
    size_t target_rows_per_query = 256;
    // Number of hash partitions for rolling propagation (kRolling only).
    // > 1 splits the view's delta streams into that many disjoint slices by
    // join key and runs one propagation strip per slice concurrently on a
    // worker pool (ivm/parallel_rolling.h); the view-level high-water mark
    // is the minimum over the strips. Views without a join-equivalence
    // class covering every term cannot be partitioned; the service then
    // falls back to the serial propagator and records the reason (see
    // partition_fallback()).
    uint32_t propagate_partitions = 1;
    // kAdaptive configuration, including the staleness SLO
    // (controller.staleness_slo, CSN units; 0 keeps shedding disabled).
    IntervalController::Options controller;
    // Run the apply driver (roll the MV to the high-water mark as it
    // advances). Point-in-time users leave this off and roll manually.
    bool apply_continuously = true;
    bool prune_view_delta = true;  // applier prunes applied windows
    std::chrono::milliseconds idle_sleep{1};
    RunnerOptions runner;

    // --- Supervision ---
    BackoffPolicy backoff;
    // Consecutive transient failures before the driver reports kDegraded.
    int degraded_after = 3;
    // Consecutive transient failures before the driver gives up (kFailed).
    // 0 means never: the driver retries transient errors forever.
    int failed_after = 64;
    // Seeds the per-driver jitter RNGs (runs reproduce under a fixed seed).
    uint64_t backoff_seed = 0x726f6c6c;

    // --- Durability ---
    // Write a kViewCheckpoint record every N successful propagation steps
    // (bounding the WAL suffix recovery must replay). 0 disables periodic
    // checkpoints; the view still gets one at Materialize and Recover.
    uint64_t checkpoint_every_steps = 0;

    // --- Consistency scrubbing ---
    // Run one scrub pass (ivm/scrub.h) every N propagate-driver step
    // iterations -- counted over every iteration, advanced or idle, so an
    // idle system still gets scrubbed. 0 disables scrubbing. Scrub errors
    // are recorded (last_error(), metrics, the kScrub trace) but never
    // propagated as step failures: a broken scrub must not take down
    // propagation.
    uint64_t scrub_every_steps = 0;
    ScrubOptions scrub;

    // --- Shedding actions (kAdaptive with a staleness SLO only) ---
    // While shedding: checkpoint cadence is multiplied by this factor
    // (checkpoints are a safety net, not progress) and build-cache
    // admission is turned off (memory/CPU for foreground work).
    uint64_t shedding_checkpoint_stretch = 4;
    // Invoked on every shedding transition (true = entered, false =
    // recovered), from the propagate driver thread, outside internal
    // locks. Harness wiring point for retention pause and UpdateStream
    // worker backpressure.
    std::function<void(bool)> on_shedding;

    // --- Telemetry ---
    // Capacity of the step-trace journal: how many finished step / apply /
    // checkpoint traces are retained (ring buffer, O(1) memory). 0 keeps
    // tracing compiled in but disabled -- no journal is allocated and the
    // propagators run with a null tracer, so the hot path pays one branch.
    size_t trace_journal_capacity = 0;

    // --- Freshness (obs/freshness.h) ---
    // When set, the drivers stamp the per-CSN freshness pipeline: strip
    // pickup and t_comp on propagation, MV visibility on apply, exporting
    // per-view commit-to-visibility histograms with a per-stage
    // decomposition and the time-domain staleness gauge. The tracker must
    // outlive this service (commit/durable stamps come from the Db/WAL,
    // wired separately via Db::SetFreshnessTracker).
    obs::FreshnessTracker* freshness = nullptr;
    // Time-domain staleness SLO over the freshness tracker's staleness
    // signal (ignored unless `freshness` is set). When its burn rate trips,
    // the service sheds exactly like the controller's CSN-unit SLO machine
    // (same ApplyShedding actions, same on_shedding hook, kShedding
    // health); target_staleness_nanos == 0 (the default) disables it.
    obs::FreshnessSloOptions freshness_slo;
  };

  MaintenanceService(ViewManager* views, View* view)
      : MaintenanceService(views, view, Options{}) {}
  MaintenanceService(ViewManager* views, View* view, Options options);
  ~MaintenanceService();

  MaintenanceService(const MaintenanceService&) = delete;
  MaintenanceService& operator=(const MaintenanceService&) = delete;

  // Starts the background drivers. Clears any error and health state left
  // over from a previous run (a stopped service can be restarted).
  void Start();
  // Stops both drivers and joins their threads. Returns the first
  // *terminal* error either driver hit (transient errors that were
  // recovered from do not surface here; see last_error()).
  Status Stop();

  // Suspend/resume individual drivers ("either process, or both, can be
  // suspended during periods of high system load", Sec. 1).
  void PausePropagation() { propagate_paused_.store(true); }
  void ResumePropagation();
  void PauseApply() { apply_paused_.store(true); }
  void ResumeApply();

  // Blocks until the view delta covers `target` and (if apply is enabled)
  // the MV has been rolled there. Works whether or not Start() was called.
  // Returns Busy instead of livelocking when the driver that must make the
  // progress is paused, and the driver's error if it permanently failed.
  Status Drain(Csn target);

  // --- Observability ---

  // Worst health across the two drivers (kFailed > kDegraded > kRunning >
  // kStopped), so a single check answers "is maintenance alive".
  DriverHealth Health() const;
  DriverHealth propagate_health() const {
    return propagate_driver_.health.load(std::memory_order_acquire);
  }
  DriverHealth apply_health() const {
    return apply_driver_.health.load(std::memory_order_acquire);
  }
  // Most recent error either driver observed (transient or terminal);
  // OK if none since the last Start().
  Status last_error() const;

  DriverStats propagate_driver_stats() const;
  DriverStats apply_driver_stats() const;

  View* view() const { return view_; }
  const RunnerStats* runner_stats() const;
  // Actual number of concurrent propagation strips (1 when serial).
  uint32_t propagate_partitions() const {
    return parallel_ != nullptr ? parallel_->partitions() : 1;
  }
  // The partitioned propagator; null when propagation runs serial.
  PartitionedRollingPropagator* parallel() const { return parallel_.get(); }
  // Non-OK when Options::propagate_partitions > 1 was requested but the
  // view has no join-equivalence class covering every term, so the service
  // fell back to the serial propagator. Purely informational.
  const Status& partition_fallback() const { return partition_fallback_; }
  const Applier::Stats& apply_stats() const { return applier_->stats(); }
  // Null unless checkpoint_every_steps > 0.
  CheckpointManager* checkpointer() { return checkpointer_.get(); }
  // Null unless scrub_every_steps > 0.
  Scrubber* scrubber() { return scrubber_.get(); }

  // Overload control (null / false unless interval_mode == kAdaptive).
  const IntervalController* interval_controller() const {
    return controller_.get();
  }
  // True while load is being shed: the staleness-SLO machine tripped, or
  // the durable WAL is out of space (maintenance then runs at reduced cost
  // until the flusher drains). Mirrored into propagate_health() as
  // kShedding.
  bool shedding() const {
    return wal_shedding_.load(std::memory_order_acquire) ||
           slo_shedding_.load(std::memory_order_acquire) ||
           (controller_ != nullptr && controller_->shedding());
  }
  // Level gauges sampled at each contention observation (kAdaptive only):
  // view staleness in CSN units, the controller's current rows-per-query
  // target, and the captured-but-unpropagated backlog.
  const Gauge& staleness_gauge() const { return staleness_gauge_; }
  const Gauge& target_rows_gauge() const { return target_rows_gauge_; }
  const Gauge& backlog_gauge() const { return backlog_gauge_; }

  // The step-trace journal; null unless Options::trace_journal_capacity
  // > 0. Thread-safe (see obs::TraceJournal).
  obs::TraceJournal* trace_journal() const { return journal_.get(); }

  // This view's freshness channel; null unless Options::freshness was set.
  obs::ViewFreshness* freshness() const { return freshness_ch_; }
  // The time-domain SLO evaluator; null unless configured (freshness set
  // and freshness_slo.target_staleness_nanos > 0).
  const obs::FreshnessSlo* freshness_slo() const { return slo_.get(); }

  // Registers this view's maintenance telemetry on `registry` under
  // rollview_* names labeled {view="<name>"} (see docs/ALGORITHMS.md §10):
  // per-driver step outcomes and supervision counters, derived per-view
  // gauges (staleness in CSNs, hwm, backlog, shedding state), propagation
  // query/exec/compute-delta counters, apply and checkpoint counters, and
  // the interval-controller events. Safe to call before or after Start();
  // snapshots may be taken while the drivers run (driver-local stats are
  // scraped from post-step mirrors, never the hot structs). The registry
  // must outlive this service; the destructor deregisters via DropOwner.
  void RegisterMetrics(obs::MetricsRegistry* registry);

 private:
  struct Driver {
    explicit Driver(const char* n) : name(n) {}
    const char* name;
    std::atomic<DriverHealth> health{DriverHealth::kStopped};
    DriverStats stats;  // guarded by stats_mu_
    // Current consecutive transient-failure streak, mirrored out of the
    // driver loop so step traces can carry the retry count.
    std::atomic<int> consecutive{0};
  };

  Status PropagateStep(bool* advanced);
  Status ApplyStep(bool* advanced);
  // Builds a ContentionSnapshot from windowed deltas of the lock-manager
  // per-class stats and the driver counters, feeds the controller, and
  // applies shedding transitions. Propagate driver thread only.
  void ObserveContention();
  void ApplyShedding(bool on);
  // The health a healthy propagate step should report: kShedding while the
  // controller is shedding, else kRunning.
  DriverHealth SteadyHealth(const Driver* driver) const;
  // The supervised driver loop: runs `step` until stopped, absorbing
  // transient errors per the backoff policy and health state machine.
  void DriverLoop(Driver* driver, std::atomic<bool>* paused,
                  const std::function<Status(bool*)>& step, uint64_t salt);
  // True while the durable WAL backend reports ENOSPC (always false for the
  // in-memory log).
  bool WalOutOfSpace() const;
  // Sleeps up to `d`, waking early on Stop().
  void InterruptibleSleep(std::chrono::nanoseconds d);
  void RecordError(const Status& s, bool terminal);
  // Non-OK when a drain waiting on `driver` cannot make progress: the
  // driver failed (its error) or is paused (Busy).
  Status CheckDrainProgress(const Driver& driver,
                            const std::atomic<bool>& paused);

  ViewManager* views_;
  View* view_;
  Options options_;

  std::unique_ptr<RollingPropagator> rolling_;
  std::unique_ptr<PartitionedRollingPropagator> parallel_;
  std::unique_ptr<Propagator> plain_;
  // Why partitioned propagation degraded to serial (view not
  // partitionable); OK when partitioning was not requested or succeeded.
  Status partition_fallback_;
  // Set when the view IS partitionable but the partitioned propagator
  // could not be constructed (durable cursors from a different partition
  // count that have not settled -- see PartitionedRollingPropagator::
  // Create). Resuming those chains serially could double-propagate, so
  // PropagateStep surfaces this as a permanent error instead of running.
  Status partition_error_;
  std::unique_ptr<Applier> applier_;
  std::unique_ptr<CheckpointManager> checkpointer_;  // propagate-driver only
  // Online consistency scrubbing (null unless scrub_every_steps > 0).
  // Driven from PropagateStep on the propagate-driver thread, like the
  // checkpointer.
  std::unique_ptr<Scrubber> scrubber_;
  uint64_t steps_since_scrub_ = 0;        // propagate-driver thread only
  std::atomic<uint64_t> scrub_errors_{0};

  // Overload control (kAdaptive only). The windowed-delta baselines below
  // are touched only on the thread driving PropagateStep (the propagate
  // driver, or the caller of a synchronous Drain).
  std::unique_ptr<IntervalController> controller_;
  LockManager::Stats last_lock_stats_;
  uint64_t last_window_transient_errors_ = 0;
  uint64_t last_window_steps_ = 0;
  Gauge staleness_gauge_;
  Gauge target_rows_gauge_;
  Gauge backlog_gauge_;

  // Telemetry. The tracers are single-threaded builders, one per driver
  // (the journal they feed is shared and thread-safe). The mirrors are
  // post-step copies of driver-thread-local component stats, updated under
  // stats_mu_ so registry callbacks can read them from any thread without
  // racing the hot structs.
  std::unique_ptr<obs::TraceJournal> journal_;
  obs::StepTracer propagate_tracer_;
  obs::StepTracer apply_tracer_;
  // One tracer per partition strip (parallel propagation only): a
  // StepTracer is a single-threaded builder, so concurrent strips cannot
  // share propagate_tracer_ (which keeps owning root-level checkpoint
  // traces). All feed the shared, thread-safe journal.
  std::vector<std::unique_ptr<obs::StepTracer>> strip_tracers_;
  obs::MetricsRegistry* registry_ = nullptr;
  // Aggregate-over-strips snapshot backing runner_stats() in parallel mode.
  mutable RunnerStats parallel_runner_stats_;
  RunnerStats runner_mirror_;                // guarded by stats_mu_
  ComputeDeltaStats compute_delta_mirror_;   // guarded by stats_mu_
  RollingPropagator::Stats rolling_mirror_;  // guarded by stats_mu_
  Applier::Stats apply_mirror_;              // guarded by stats_mu_

  std::thread propagate_thread_;
  std::thread apply_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> propagate_paused_{false};
  std::atomic<bool> apply_paused_{false};

  // Wakes drivers sleeping on idle/backoff/pause.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  // Freshness pipeline (null/false when Options::freshness is unset). The
  // SLO latch is flipped only by the propagate driver (or a synchronous
  // Drain caller); read by shedding().
  obs::ViewFreshness* freshness_ch_ = nullptr;
  std::unique_ptr<obs::FreshnessSlo> slo_;
  std::atomic<bool> slo_shedding_{false};

  Driver propagate_driver_{"propagate"};
  // Latched by the propagate driver on an ENOSPC-stalled WAL; cleared on
  // the first successful step once space returns. Read by shedding().
  std::atomic<bool> wal_shedding_{false};
  Driver apply_driver_{"apply"};
  mutable std::mutex stats_mu_;

  mutable std::mutex error_mu_;
  Status error_;       // first terminal error (what Stop() returns)
  Status last_error_;  // most recent error of any kind
};

// Periodic retention passes over every view of a ViewManager.
class RetentionService {
 public:
  RetentionService(ViewManager* views, RetentionOptions options,
                   std::chrono::milliseconds period)
      : manager_(views, options), period_(period) {}
  ~RetentionService() { Stop(); }

  void Start();
  void Stop();
  // One synchronous pass (also usable without Start).
  RetentionManager::PruneReport RunOnce() { return manager_.PruneOnce(); }

  // Shedding hook: while paused, the periodic thread skips pruning passes
  // (explicit RunOnce still works). Retention is the canonical
  // "non-critical work" a shedding MaintenanceService turns off -- wire
  // Options::on_shedding to these.
  void Pause() { paused_.store(true, std::memory_order_relaxed); }
  void Resume() { paused_.store(false, std::memory_order_relaxed); }
  bool paused() const { return paused_.load(std::memory_order_relaxed); }

  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }
  uint64_t skipped_passes() const {
    return skipped_.load(std::memory_order_relaxed);
  }

 private:
  RetentionManager manager_;
  std::chrono::milliseconds period_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> paused_{false};
  std::atomic<uint64_t> passes_{0};
  std::atomic<uint64_t> skipped_{0};
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_MAINTENANCE_H_
