// Copyright 2026 The rollview Authors.
//
// MaintenanceService: the deployment shape of the paper's prototype
// (Figure 11) as a managed component -- one background propagation driver
// and one background apply driver per view, independently pausable, plus a
// ViewManager-wide retention service. The propagate and apply drivers are
// "completely independent" apart from producer/consumer ordering (Sec. 1);
// pausing either (e.g. during load spikes) never affects correctness, only
// staleness.

#ifndef ROLLVIEW_IVM_MAINTENANCE_H_
#define ROLLVIEW_IVM_MAINTENANCE_H_

#include <atomic>
#include <memory>
#include <thread>

#include "ivm/apply.h"
#include "ivm/propagate.h"
#include "ivm/retention.h"
#include "ivm/rolling.h"

namespace rollview {

class MaintenanceService {
 public:
  struct Options {
    enum class Algorithm { kRolling, kPropagate };
    Algorithm algorithm = Algorithm::kRolling;
    // Adaptive interval target (delta rows per forward query), applied to
    // every relation. For custom per-relation policies construct a
    // RollingPropagator directly.
    size_t target_rows_per_query = 256;
    // Run the apply driver (roll the MV to the high-water mark as it
    // advances). Point-in-time users leave this off and roll manually.
    bool apply_continuously = true;
    bool prune_view_delta = true;  // applier prunes applied windows
    std::chrono::milliseconds idle_sleep{1};
    RunnerOptions runner;
  };

  MaintenanceService(ViewManager* views, View* view)
      : MaintenanceService(views, view, Options{}) {}
  MaintenanceService(ViewManager* views, View* view, Options options);
  ~MaintenanceService();

  MaintenanceService(const MaintenanceService&) = delete;
  MaintenanceService& operator=(const MaintenanceService&) = delete;

  void Start();
  // Stops both drivers and joins their threads. Returns the first error
  // either driver hit (they stop on error).
  Status Stop();

  // Suspend/resume individual drivers ("either process, or both, can be
  // suspended during periods of high system load", Sec. 1).
  void PausePropagation() { propagate_paused_.store(true); }
  void ResumePropagation() { propagate_paused_.store(false); }
  void PauseApply() { apply_paused_.store(true); }
  void ResumeApply() { apply_paused_.store(false); }

  // Blocks until the view delta covers `target` and (if apply is enabled)
  // the MV has been rolled there. Works whether or not Start() was called.
  Status Drain(Csn target);

  View* view() const { return view_; }
  const RunnerStats* runner_stats() const;
  const Applier::Stats& apply_stats() const { return applier_->stats(); }

 private:
  Status PropagateStep(bool* advanced);
  void PropagateLoop();
  void ApplyLoop();

  ViewManager* views_;
  View* view_;
  Options options_;

  std::unique_ptr<RollingPropagator> rolling_;
  std::unique_ptr<Propagator> plain_;
  std::unique_ptr<Applier> applier_;

  std::thread propagate_thread_;
  std::thread apply_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> propagate_paused_{false};
  std::atomic<bool> apply_paused_{false};
  std::mutex error_mu_;
  Status error_;
};

// Periodic retention passes over every view of a ViewManager.
class RetentionService {
 public:
  RetentionService(ViewManager* views, RetentionOptions options,
                   std::chrono::milliseconds period)
      : manager_(views, options), period_(period) {}
  ~RetentionService() { Stop(); }

  void Start();
  void Stop();
  // One synchronous pass (also usable without Start).
  RetentionManager::PruneReport RunOnce() { return manager_.PruneOnce(); }

  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }

 private:
  RetentionManager manager_;
  std::chrono::milliseconds period_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> passes_{0};
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_MAINTENANCE_H_
