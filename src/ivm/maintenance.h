// Copyright 2026 The rollview Authors.
//
// MaintenanceService: the deployment shape of the paper's prototype
// (Figure 11) as a managed component -- one background propagation driver
// and one background apply driver per view, independently pausable, plus a
// ViewManager-wide retention service. The propagate and apply drivers are
// "completely independent" apart from producer/consumer ordering (Sec. 1);
// pausing either (e.g. during load spikes) never affects correctness, only
// staleness.
//
// The drivers are *supervised*: transient errors (Status::IsTransient --
// deadlock-victim aborts, lock/capture timeouts) never kill a driver.
// Instead the driver backs off with capped, seeded-jitter exponential
// delays and retries, walking a per-driver health state machine:
//
//   kRunning --(degraded_after consecutive transient failures)--> kDegraded
//   kDegraded --(next success)--> kRunning
//   any --(permanent error, or failed_after consecutive failures)--> kFailed
//
// A kFailed driver exits its loop with the error recorded; Health() and
// last_error() make that observable long before Stop(). Recovery work is
// counted in per-driver DriverStats (transient errors by cause, recoveries,
// time spent backing off).

#ifndef ROLLVIEW_IVM_MAINTENANCE_H_
#define ROLLVIEW_IVM_MAINTENANCE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <thread>

#include "common/rng.h"
#include "ivm/apply.h"
#include "ivm/checkpoint.h"
#include "ivm/propagate.h"
#include "ivm/retention.h"
#include "ivm/rolling.h"

namespace rollview {

// Health of one background driver. kStopped: not started or cleanly
// stopped. kFailed is terminal until the next Start().
enum class DriverHealth { kStopped, kRunning, kDegraded, kFailed };

const char* DriverHealthName(DriverHealth health);

// Capped exponential backoff with symmetric jitter: the n-th consecutive
// failure sleeps min(initial * multiplier^(n-1), max) scaled by a uniform
// factor in [1 - jitter, 1 + jitter] drawn from a seeded per-driver RNG.
struct BackoffPolicy {
  std::chrono::microseconds initial{200};
  std::chrono::microseconds max{50000};  // 50 ms
  double multiplier = 2.0;
  double jitter = 0.25;
};

// Recovery bookkeeping for one driver.
struct DriverStats {
  uint64_t steps = 0;             // successful step iterations
  uint64_t transient_errors = 0;  // transient failures absorbed
  uint64_t errors_aborted = 0;    //   ... of which TxnAborted
  uint64_t errors_busy = 0;       //   ... of which Busy
  uint64_t recoveries = 0;        // successes ending a failure streak
  uint64_t degraded_entries = 0;  // kRunning/... -> kDegraded transitions
  uint64_t backoff_nanos = 0;     // total time spent backing off
};

class MaintenanceService {
 public:
  struct Options {
    enum class Algorithm { kRolling, kPropagate };
    Algorithm algorithm = Algorithm::kRolling;
    // Adaptive interval target (delta rows per forward query), applied to
    // every relation. For custom per-relation policies construct a
    // RollingPropagator directly.
    size_t target_rows_per_query = 256;
    // Run the apply driver (roll the MV to the high-water mark as it
    // advances). Point-in-time users leave this off and roll manually.
    bool apply_continuously = true;
    bool prune_view_delta = true;  // applier prunes applied windows
    std::chrono::milliseconds idle_sleep{1};
    RunnerOptions runner;

    // --- Supervision ---
    BackoffPolicy backoff;
    // Consecutive transient failures before the driver reports kDegraded.
    int degraded_after = 3;
    // Consecutive transient failures before the driver gives up (kFailed).
    // 0 means never: the driver retries transient errors forever.
    int failed_after = 64;
    // Seeds the per-driver jitter RNGs (runs reproduce under a fixed seed).
    uint64_t backoff_seed = 0x726f6c6c;

    // --- Durability ---
    // Write a kViewCheckpoint record every N successful propagation steps
    // (bounding the WAL suffix recovery must replay). 0 disables periodic
    // checkpoints; the view still gets one at Materialize and Recover.
    uint64_t checkpoint_every_steps = 0;
  };

  MaintenanceService(ViewManager* views, View* view)
      : MaintenanceService(views, view, Options{}) {}
  MaintenanceService(ViewManager* views, View* view, Options options);
  ~MaintenanceService();

  MaintenanceService(const MaintenanceService&) = delete;
  MaintenanceService& operator=(const MaintenanceService&) = delete;

  // Starts the background drivers. Clears any error and health state left
  // over from a previous run (a stopped service can be restarted).
  void Start();
  // Stops both drivers and joins their threads. Returns the first
  // *terminal* error either driver hit (transient errors that were
  // recovered from do not surface here; see last_error()).
  Status Stop();

  // Suspend/resume individual drivers ("either process, or both, can be
  // suspended during periods of high system load", Sec. 1).
  void PausePropagation() { propagate_paused_.store(true); }
  void ResumePropagation();
  void PauseApply() { apply_paused_.store(true); }
  void ResumeApply();

  // Blocks until the view delta covers `target` and (if apply is enabled)
  // the MV has been rolled there. Works whether or not Start() was called.
  // Returns Busy instead of livelocking when the driver that must make the
  // progress is paused, and the driver's error if it permanently failed.
  Status Drain(Csn target);

  // --- Observability ---

  // Worst health across the two drivers (kFailed > kDegraded > kRunning >
  // kStopped), so a single check answers "is maintenance alive".
  DriverHealth Health() const;
  DriverHealth propagate_health() const {
    return propagate_driver_.health.load(std::memory_order_acquire);
  }
  DriverHealth apply_health() const {
    return apply_driver_.health.load(std::memory_order_acquire);
  }
  // Most recent error either driver observed (transient or terminal);
  // OK if none since the last Start().
  Status last_error() const;

  DriverStats propagate_driver_stats() const;
  DriverStats apply_driver_stats() const;

  View* view() const { return view_; }
  const RunnerStats* runner_stats() const;
  const Applier::Stats& apply_stats() const { return applier_->stats(); }
  // Null unless checkpoint_every_steps > 0.
  CheckpointManager* checkpointer() { return checkpointer_.get(); }

 private:
  struct Driver {
    explicit Driver(const char* n) : name(n) {}
    const char* name;
    std::atomic<DriverHealth> health{DriverHealth::kStopped};
    DriverStats stats;  // guarded by stats_mu_
  };

  Status PropagateStep(bool* advanced);
  Status ApplyStep(bool* advanced);
  // The supervised driver loop: runs `step` until stopped, absorbing
  // transient errors per the backoff policy and health state machine.
  void DriverLoop(Driver* driver, std::atomic<bool>* paused,
                  const std::function<Status(bool*)>& step, uint64_t salt);
  // Sleeps up to `d`, waking early on Stop().
  void InterruptibleSleep(std::chrono::nanoseconds d);
  void RecordError(const Status& s, bool terminal);
  // Non-OK when a drain waiting on `driver` cannot make progress: the
  // driver failed (its error) or is paused (Busy).
  Status CheckDrainProgress(const Driver& driver,
                            const std::atomic<bool>& paused);

  ViewManager* views_;
  View* view_;
  Options options_;

  std::unique_ptr<RollingPropagator> rolling_;
  std::unique_ptr<Propagator> plain_;
  std::unique_ptr<Applier> applier_;
  std::unique_ptr<CheckpointManager> checkpointer_;  // propagate-driver only

  std::thread propagate_thread_;
  std::thread apply_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> propagate_paused_{false};
  std::atomic<bool> apply_paused_{false};

  // Wakes drivers sleeping on idle/backoff/pause.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  Driver propagate_driver_{"propagate"};
  Driver apply_driver_{"apply"};
  mutable std::mutex stats_mu_;

  mutable std::mutex error_mu_;
  Status error_;       // first terminal error (what Stop() returns)
  Status last_error_;  // most recent error of any kind
};

// Periodic retention passes over every view of a ViewManager.
class RetentionService {
 public:
  RetentionService(ViewManager* views, RetentionOptions options,
                   std::chrono::milliseconds period)
      : manager_(views, options), period_(period) {}
  ~RetentionService() { Stop(); }

  void Start();
  void Stop();
  // One synchronous pass (also usable without Start).
  RetentionManager::PruneReport RunOnce() { return manager_.PruneOnce(); }

  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }

 private:
  RetentionManager manager_;
  std::chrono::milliseconds period_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> passes_{0};
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_MAINTENANCE_H_
