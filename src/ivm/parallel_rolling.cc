#include "ivm/parallel_rolling.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "ivm/partition.h"
#include "obs/freshness.h"

namespace rollview {

Result<std::unique_ptr<PartitionedRollingPropagator>>
PartitionedRollingPropagator::Create(ViewManager* views, View* view,
                                     const PolicyFactory& make_policies,
                                     ParallelRollingOptions options) {
  if (options.partitions == 0) {
    return Status::InvalidArgument("partitions must be >= 1");
  }
  const uint32_t count = options.partitions;
  const size_t n = view->resolved.num_terms();

  // Repartition guard: durable cursor chains written under a different
  // partition count are only reusable when the whole durable state has
  // settled to ONE uniform frontier -- every chain at the same per-relation
  // frontier vector, fully compensated (tcomp == tfwd, no pending strips).
  // Below that bar the old chains describe propagation progress of slices
  // that no longer exist, and resuming would double- or under-propagate.
  {
    std::map<uint32_t, CursorState> stored = view->LoadAllCursors();
    bool mismatch = false;
    for (const auto& [p, state] : stored) {
      if (state.valid && (state.num_partitions != count || p >= count)) {
        mismatch = true;
        break;
      }
    }
    if (mismatch) {
      const std::vector<Csn>* frontier = nullptr;
      uint64_t next_seq = 1;
      for (const auto& [p, state] : stored) {
        if (!state.valid) continue;
        bool settled = state.tfwd == state.tcomp;
        for (const auto& list : state.strips) {
          if (!list.empty()) settled = false;
        }
        if (!settled || state.tfwd.size() != n ||
            (frontier != nullptr && state.tfwd != *frontier)) {
          return Status::InvalidArgument(
              "cannot repartition view '" + view->name +
              "': durable cursors from a different partition count have "
              "not settled to a uniform frontier");
        }
        frontier = &state.tfwd;
        next_seq = std::max(next_seq, state.next_step_seq);
      }
      if (frontier != nullptr) {
        // Reseed: every new strip starts at the settled frontier, and the
        // step-sequence chains continue past the old generation's maximum
        // so recovery never sees a per-partition sequence regress.
        std::vector<Csn> start = *frontier;
        view->ClearCursors();
        for (uint32_t p = 0; p < count; ++p) {
          CursorState seed;
          seed.tfwd = start;
          seed.tcomp = start;
          seed.next_step_seq = next_seq;
          seed.num_partitions = count;
          view->StoreCursors(std::move(seed), p);
        }
      } else {
        view->ClearCursors();
      }
    }
  }

  std::unique_ptr<PartitionedRollingPropagator> out(
      new PartitionedRollingPropagator());
  out->views_ = views;
  out->view_ = view;
  out->hwm_slots_ = std::make_unique<std::atomic<Csn>[]>(count);
  out->strips_.reserve(count);
  for (uint32_t p = 0; p < count; ++p) {
    RollingOptions strip_options = options.rolling;
    ROLLVIEW_ASSIGN_OR_RETURN(
        strip_options.partition,
        ResolvePartitionSlice(view->resolved, p, count));
    std::vector<std::unique_ptr<IntervalPolicy>> policies = make_policies();
    if (policies.size() != n) {
      return Status::InvalidArgument(
          "policy factory must produce one policy per base relation");
    }
    out->strips_.push_back(std::make_unique<RollingPropagator>(
        views, view, std::move(policies), std::move(strip_options)));
    out->hwm_slots_[p].store(out->strips_[p]->high_water_mark(),
                             std::memory_order_release);
    out->strips_[p]->set_hwm_hook(
        [coord = out.get(), p](Csn local) { coord->FoldHwm(p, local); });
  }
  if (options.pool != nullptr) {
    out->pool_ = options.pool;
  } else {
    out->owned_pool_ = std::make_unique<WorkerPool>(count);
    out->pool_ = out->owned_pool_.get();
  }
  return out;
}

void PartitionedRollingPropagator::FoldHwm(uint32_t p, Csn local) {
  std::atomic<Csn>& slot = hwm_slots_[p];
  Csn cur = slot.load(std::memory_order_relaxed);
  while (local > cur &&
         !slot.compare_exchange_weak(cur, local, std::memory_order_acq_rel)) {
  }
  Csn floor = kMaxCsn;
  for (uint32_t q = 0; q < partitions(); ++q) {
    floor = std::min(floor, hwm_slots_[q].load(std::memory_order_acquire));
  }
  if (floor != kMaxCsn) {
    // t_comp freshness stamp before the hwm publishes: once AdvanceHwm
    // returns, the apply driver may make every commit <= floor visible,
    // and its OnVisible must find this boundary already stamped. Re-folds
    // that do not advance the floor are deduped by the channel.
    obs::ViewFreshness* ch = freshness_.load(std::memory_order_acquire);
    if (ch != nullptr) ch->OnHwmAdvance(floor, ch->Now());
    view_->AdvanceHwm(floor);
  }
}

Result<bool> PartitionedRollingPropagator::Step() {
  const size_t P = strips_.size();
  std::vector<Status> statuses(P, Status::OK());
  std::vector<uint8_t> advanced(P, 0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(P);
  for (size_t p = 0; p < P; ++p) {
    tasks.push_back([this, p, &statuses, &advanced] {
      Result<bool> r = strips_[p]->Step();
      if (r.ok()) {
        advanced[p] = r.value() ? 1 : 0;
      } else {
        statuses[p] = r.status();
      }
    });
  }
  pool_->RunAll(std::move(tasks));
  for (size_t p = 0; p < P; ++p) {
    // Surface the first failure; the round itself is a barrier, so every
    // strip has already finished (and, on failure, cancelled or retained
    // its undo state exactly like the serial driver would).
    ROLLVIEW_RETURN_NOT_OK(statuses[p]);
  }
  bool any = false;
  for (uint8_t a : advanced) any = any || a != 0;
  return any;
}

Result<bool> PartitionedRollingPropagator::TryFinish() {
  const size_t P = strips_.size();
  std::vector<Status> statuses(P, Status::OK());
  std::vector<uint8_t> settled(P, 0);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(P);
  for (size_t p = 0; p < P; ++p) {
    tasks.push_back([this, p, &statuses, &settled] {
      Result<bool> r = strips_[p]->TryFinish();
      if (r.ok()) {
        settled[p] = r.value() ? 1 : 0;
      } else {
        statuses[p] = r.status();
      }
    });
  }
  pool_->RunAll(std::move(tasks));
  for (size_t p = 0; p < P; ++p) {
    ROLLVIEW_RETURN_NOT_OK(statuses[p]);
  }
  bool all = true;
  for (uint8_t s : settled) all = all && s != 0;
  return all;
}

Status PartitionedRollingPropagator::RunUntil(Csn target) {
  while (high_water_mark() < target) {
    ROLLVIEW_ASSIGN_OR_RETURN(bool any, Step());
    if (any) continue;
    ROLLVIEW_ASSIGN_OR_RETURN(bool settled, TryFinish());
    if (settled && high_water_mark() >= target) break;
    if (views_->capture() != nullptr) {
      ROLLVIEW_RETURN_NOT_OK(views_->capture()->WaitForCsn(
          std::min(target, views_->db()->stable_csn())));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return Status::OK();
}

Csn PartitionedRollingPropagator::high_water_mark() const {
  Csn hwm = kMaxCsn;
  for (const auto& strip : strips_) {
    hwm = std::min(hwm, strip->high_water_mark());
  }
  return hwm == kMaxCsn ? kNullCsn : hwm;
}

uint64_t PartitionedRollingPropagator::BacklogRows() const {
  uint64_t total = 0;
  for (const auto& strip : strips_) total += strip->BacklogRows();
  return total;
}

RollingPropagator::Stats PartitionedRollingPropagator::rolling_stats() const {
  RollingPropagator::Stats out;
  for (const auto& strip : strips_) {
    const RollingPropagator::Stats& s = strip->rolling_stats();
    out.steps += s.steps;
    out.forward_queries += s.forward_queries;
    out.forward_skipped += s.forward_skipped;
    out.compensation_segments += s.compensation_segments;
  }
  return out;
}

RunnerStats PartitionedRollingPropagator::runner_stats() const {
  RunnerStats out;
  for (const auto& strip : strips_) {
    const RunnerStats& s = strip->runner()->stats();
    out.queries += s.queries;
    out.forward_queries += s.forward_queries;
    out.comp_queries += s.comp_queries;
    out.retries += s.retries;
    out.retries_aborted += s.retries_aborted;
    out.retries_busy += s.retries_busy;
    out.rows_appended += s.rows_appended;
    out.exec.Add(s.exec);
  }
  return out;
}

ComputeDeltaStats PartitionedRollingPropagator::compute_delta_stats() const {
  ComputeDeltaStats out;
  for (const auto& strip : strips_) {
    const ComputeDeltaStats& s = strip->compute_delta_stats();
    out.invocations += s.invocations;
    out.queries_issued += s.queries_issued;
    out.queries_skipped += s.queries_skipped;
    out.max_depth = std::max(out.max_depth, s.max_depth);
  }
  return out;
}

void PartitionedRollingPropagator::SetTracers(
    const std::vector<obs::StepTracer*>& tracers) {
  for (size_t p = 0; p < strips_.size(); ++p) {
    strips_[p]->set_tracer(p < tracers.size() ? tracers[p] : nullptr);
  }
}

}  // namespace rollview
