// Copyright 2026 The rollview Authors.
//
// Applier: the apply driver (paper Figs. 2, 3, 11). Completely independent
// of propagation apart from producer/consumer ordering: at any moment it can
// roll the materialized view forward to *any* point up to the view-delta
// high-water mark by selecting sigma_{mv_time, target}(view_delta) and
// merging the net effect into the stored view -- the paper's point-in-time
// incremental refresh.

#ifndef ROLLVIEW_IVM_APPLY_H_
#define ROLLVIEW_IVM_APPLY_H_

#include "capture/uow_table.h"
#include "common/result.h"
#include "ivm/view_manager.h"

namespace rollview {

struct ApplierOptions {
  // Drop view-delta rows at or below the new materialization time after a
  // successful roll (they can never be selected again). Tests that replay
  // history disable this.
  bool prune_view_delta = false;
};

class Applier {
 public:
  Applier(ViewManager* views, View* view,
          ApplierOptions options = ApplierOptions{})
      : views_(views), view_(view), options_(options) {}

  // Rolls the MV from its current materialization time to `target`.
  // Requires mv_time <= target <= high-water mark. Takes an X lock on the
  // view's resource (readers take S), so rolls serialize with readers.
  Status RollTo(Csn target);

  // RollTo(high-water mark).
  Result<Csn> RollToLatest();

  // Point-in-time refresh by wall-clock time: resolves `t` to the largest
  // CSN committed at or before `t` via the unit-of-work table (Sec. 5),
  // then rolls there. Returns the CSN rolled to.
  Result<Csn> RollToWallTime(WallTime t);

  struct Stats {
    uint64_t rolls = 0;
    uint64_t rows_selected = 0;  // view-delta rows in the applied windows
    uint64_t rows_pruned = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  ViewManager* views_;
  View* view_;
  ApplierOptions options_;
  Stats stats_;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_APPLY_H_
