// Copyright 2026 The rollview Authors.
//
// Scrubber: online consistency scrubbing and self-healing repair for one
// materialized view.
//
// The MV carries an incrementally maintained content digest (ivm/digest.h)
// that every Merge/Replace folds in under the MV latch. A scrub pass, run
// from the propagation driver between steps, cross-checks a sampled set of
// digest buckets against a recompute from the stored contents -- catching
// silent damage (bit flips in row storage, a tampered digest) that the
// transaction machinery cannot see because it never manifests as a failed
// operation.
//
// On mismatch the pass adjudicates WHICH side is damaged with a three-way
// check against the Def. 4.2 oracle: SnapshotViewState recomputes the view
// at the MV's materialization time from base-table versions. If the oracle
// agrees with the stored contents, only the digest was damaged -- rebuild
// it in place and move on. Otherwise (or when the oracle is unavailable and
// the check must stay conservative) the view's contents are damaged: the
// view is quarantined (reads obey DbOptions::quarantine_read_policy) and
// repaired by replaying the last digest-good checkpoint plus the WAL
// suffix through ViewManager::RecoverView -- the same machinery crash
// recovery uses, applied to a live view. Repair is legal at any step
// boundary, not only settled frontiers: between steps the durable
// cursor/applied state equals the live state, so Def. 4.2's sub-interval
// property makes the replayed roll land exactly on the live frontier. If
// no digest-good checkpoint survives in the log, repair escalates to a
// full recomputation (ViewManager::Materialize).
//
// Threading contract: Pass() and Repair() must run on the thread driving
// propagation (or while propagation is quiescent) -- the WriteViewCheckpoint
// contract, inherited through RecoverView. Apply and readers are excluded
// through the lock manager (S lock for the snapshot, X for the repair), so
// OLTP wins conflicts exactly as it does against the apply driver.

#ifndef ROLLVIEW_IVM_SCRUB_H_
#define ROLLVIEW_IVM_SCRUB_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"
#include "ivm/digest.h"
#include "ivm/view_manager.h"

namespace rollview {

// When to run the expensive Def. 4.2 oracle (point-in-time recompute from
// base-table versions).
enum class DeepCheckMode : uint8_t {
  // Never consult the oracle: any digest mismatch conservatively counts as
  // content damage (quarantine + repair, even if only the digest was bad).
  kNever = 0,
  // Consult the oracle only to adjudicate an observed mismatch (default:
  // steady-state passes stay cheap, the oracle runs only on findings).
  kOnMismatch = 1,
  // Consult the oracle on every pass, mismatch or not -- maximal paranoia
  // for drills and acceptance tests.
  kAlways = 2,
};

struct ScrubOptions {
  // Digest buckets verified per pass, round-robin over ViewDigest::kBuckets.
  // The full digest is covered every kBuckets/buckets_per_pass passes.
  uint32_t buckets_per_pass = 4;
  DeepCheckMode deep_check = DeepCheckMode::kOnMismatch;
  // Repair in the same pass that detects damage. Off leaves the view
  // quarantined for a later pass (or an operator) to repair.
  bool repair = true;
};

// What one scrub pass concluded. Order matters for "worst outcome" folds.
enum class ScrubOutcome : uint8_t {
  kClean = 0,          // sampled buckets verified
  kDigestRepaired,     // digest damage only: rebuilt from verified contents
  kRepaired,           // content damage: checkpoint + WAL-suffix replay
  kRebuilt,            // content damage: full recomputation fallback
  kQuarantined,        // damage detected, repair disabled or deferred
  kRepairFailed,       // repair ran and re-verification still fails
};

const char* ScrubOutcomeName(ScrubOutcome outcome);

struct ScrubStats {
  uint64_t passes = 0;            // Pass() invocations that ran a check
  uint64_t buckets_checked = 0;   // sampled bucket verifications
  uint64_t mismatches = 0;        // digest-vs-contents disagreements seen
  uint64_t deep_checks = 0;       // oracle recomputations run
  uint64_t digest_resets = 0;     // digest-only damage repaired in place
  uint64_t quarantines = 0;       // quarantine transitions entered
  uint64_t repairs = 0;           // checkpoint + suffix replays that verified
  uint64_t rebuilds = 0;          // full-recompute escalations that verified
  uint64_t repair_failures = 0;   // repair attempts that failed to verify
};

class Scrubber {
 public:
  Scrubber(ViewManager* views, View* view, ScrubOptions options)
      : views_(views), view_(view), options_(options) {}

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  // One scrub pass: snapshot the MV (S lock), verify the next
  // buckets_per_pass digest buckets, adjudicate and repair any finding per
  // the options. An already-quarantined view skips detection and goes
  // straight to repair (a previous pass deferred it, or a repair failed and
  // is being retried). Returns non-OK only when the pass itself could not
  // run or repair left the view quarantined -- transient errors (lock
  // timeouts, injected faults) surface as-is so a supervised caller
  // retries. `*outcome` (optional) reports what the pass concluded.
  Status Pass(ScrubOutcome* outcome = nullptr);

  // Forced repair, regardless of current health: X-lock the view, replay
  // last-good-checkpoint + WAL suffix (RecoverView), escalate to full
  // recompute if no digest-good checkpoint exists or re-verification
  // fails, re-verify, and clear the quarantine. Sets `*outcome` to
  // kRepaired / kRebuilt / kRepairFailed.
  Status Repair(ScrubOutcome* outcome);

  ScrubStats GetStats() const;
  View* view() const { return view_; }

 private:
  // Compares the next sampled buckets (all of them under kAlways) of the
  // recomputed digest against the incremental one; reports the first
  // mismatching bucket in *bad_bucket and advances the round-robin cursor.
  bool SampledBucketsOk(const ViewDigest& recomputed,
                        const ViewDigest& incremental, uint32_t* bad_bucket);
  // Runs the Def. 4.2 oracle at `mv_csn`; true when it could run, with
  // *oracle_digest the digest of the recomputed truth.
  bool RunDeepCheck(Csn mv_csn, ViewDigest* oracle_digest);
  // Quarantines + (optionally) repairs after content damage was diagnosed.
  Status QuarantineAndRepair(uint32_t bucket, const std::string& reason,
                             ScrubOutcome* outcome);
  // Post-repair verification: digest-vs-contents plus (when enabled and
  // available) the oracle.
  bool VerifyRepaired();

  ViewManager* views_;
  View* view_;
  ScrubOptions options_;

  uint32_t bucket_cursor_ = 0;  // round-robin sample position

  mutable std::mutex stats_mu_;
  ScrubStats stats_;  // guarded by stats_mu_
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_SCRUB_H_
