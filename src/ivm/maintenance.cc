#include "ivm/maintenance.h"

#include <algorithm>

namespace rollview {

const char* DriverHealthName(DriverHealth health) {
  switch (health) {
    case DriverHealth::kStopped:
      return "stopped";
    case DriverHealth::kRunning:
      return "running";
    case DriverHealth::kDegraded:
      return "degraded";
    case DriverHealth::kFailed:
      return "failed";
  }
  return "?";
}

MaintenanceService::MaintenanceService(ViewManager* views, View* view,
                                       Options options)
    : views_(views), view_(view), options_(options) {
  auto make_policy = [&] {
    return std::make_unique<TargetRowsInterval>(
        options_.target_rows_per_query);
  };
  if (options_.algorithm == Options::Algorithm::kRolling) {
    std::vector<std::unique_ptr<IntervalPolicy>> policies;
    for (size_t i = 0; i < view->resolved.num_terms(); ++i) {
      policies.push_back(make_policy());
    }
    RollingOptions ropts;
    ropts.runner = options_.runner;
    rolling_ = std::make_unique<RollingPropagator>(views, view,
                                                   std::move(policies),
                                                   std::move(ropts));
  } else {
    PropagatorOptions popts;
    popts.runner = options_.runner;
    plain_ = std::make_unique<Propagator>(views, view, make_policy(), popts);
  }
  ApplierOptions aopts;
  aopts.prune_view_delta = options_.prune_view_delta;
  applier_ = std::make_unique<Applier>(views, view, aopts);
  if (options_.checkpoint_every_steps > 0) {
    CheckpointManager::Options copts;
    copts.every_steps = options_.checkpoint_every_steps;
    checkpointer_ = std::make_unique<CheckpointManager>(views->db(), view,
                                                        copts);
  }
}

MaintenanceService::~MaintenanceService() {
  // The final error (if any) stays readable through last_error() until
  // destruction; Stop()'s return value here has nowhere to go.
  Stop().ok();
}

const RunnerStats* MaintenanceService::runner_stats() const {
  return rolling_ != nullptr ? &rolling_->runner()->stats()
                             : &plain_->runner()->stats();
}

Status MaintenanceService::PropagateStep(bool* advanced) {
  if (rolling_ != nullptr) {
    Result<bool> r = rolling_->Step();
    if (!r.ok()) return r.status();
    *advanced = r.value();
    if (!*advanced) {
      // Settle the tail so the HWM can reach the frontier at quiescence.
      Result<bool> settled = rolling_->TryFinish();
      if (!settled.ok()) return settled.status();
    }
  } else {
    Result<bool> r = plain_->Step();
    if (!r.ok()) return r.status();
    *advanced = r.value();
  }
  if (*advanced && checkpointer_ != nullptr) {
    // On the propagate driver thread, between steps: exactly the threading
    // contract WriteViewCheckpoint requires.
    ROLLVIEW_RETURN_NOT_OK(checkpointer_->OnStep());
  }
  return Status::OK();
}

Status MaintenanceService::ApplyStep(bool* advanced) {
  Csn hwm = view_->high_water_mark();
  if (hwm > view_->mv->csn()) {
    *advanced = true;
    return applier_->RollTo(hwm);
  }
  *advanced = false;
  return Status::OK();
}

void MaintenanceService::RecordError(const Status& s, bool terminal) {
  std::lock_guard<std::mutex> lk(error_mu_);
  last_error_ = s;
  if (terminal && error_.ok()) error_ = s;
}

void MaintenanceService::InterruptibleSleep(std::chrono::nanoseconds d) {
  std::unique_lock<std::mutex> lk(wake_mu_);
  wake_cv_.wait_for(lk, d, [&] {
    return !running_.load(std::memory_order_relaxed);
  });
}

void MaintenanceService::DriverLoop(Driver* driver,
                                    std::atomic<bool>* paused,
                                    const std::function<Status(bool*)>& step,
                                    uint64_t salt) {
  Rng jitter_rng(options_.backoff_seed ^ salt);
  const BackoffPolicy& policy = options_.backoff;
  std::chrono::nanoseconds backoff =
      std::chrono::duration_cast<std::chrono::nanoseconds>(policy.initial);
  const std::chrono::nanoseconds backoff_cap =
      std::chrono::duration_cast<std::chrono::nanoseconds>(policy.max);
  int consecutive_failures = 0;

  while (running_.load(std::memory_order_relaxed)) {
    if (paused->load(std::memory_order_relaxed)) {
      std::unique_lock<std::mutex> lk(wake_mu_);
      wake_cv_.wait(lk, [&] {
        return !running_.load(std::memory_order_relaxed) ||
               !paused->load(std::memory_order_relaxed);
      });
      continue;
    }

    bool advanced = false;
    Status s = step(&advanced);

    if (s.ok()) {
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        driver->stats.steps++;
        if (consecutive_failures > 0) driver->stats.recoveries++;
      }
      consecutive_failures = 0;
      backoff =
          std::chrono::duration_cast<std::chrono::nanoseconds>(policy.initial);
      driver->health.store(DriverHealth::kRunning, std::memory_order_release);
      if (!advanced) InterruptibleSleep(options_.idle_sleep);
      continue;
    }

    ++consecutive_failures;
    bool terminal =
        !s.IsTransient() || (options_.failed_after > 0 &&
                             consecutive_failures >= options_.failed_after);
    RecordError(s, terminal);
    if (terminal) {
      driver->health.store(DriverHealth::kFailed, std::memory_order_release);
      return;
    }

    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      driver->stats.transient_errors++;
      if (s.IsTxnAborted()) {
        driver->stats.errors_aborted++;
      } else {
        driver->stats.errors_busy++;
      }
    }
    if (consecutive_failures >= options_.degraded_after &&
        driver->health.load(std::memory_order_relaxed) !=
            DriverHealth::kDegraded) {
      driver->health.store(DriverHealth::kDegraded,
                           std::memory_order_release);
      std::lock_guard<std::mutex> lk(stats_mu_);
      driver->stats.degraded_entries++;
    }

    double factor =
        1.0 + policy.jitter * (2.0 * jitter_rng.NextDouble() - 1.0);
    auto delay = std::chrono::nanoseconds(static_cast<int64_t>(
        static_cast<double>(backoff.count()) * factor));
    if (delay < std::chrono::nanoseconds(1)) delay = std::chrono::nanoseconds(1);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      driver->stats.backoff_nanos += static_cast<uint64_t>(delay.count());
    }
    InterruptibleSleep(delay);
    backoff = std::min(
        backoff_cap,
        std::chrono::nanoseconds(static_cast<int64_t>(
            static_cast<double>(backoff.count()) * policy.multiplier)));
  }
  driver->health.store(DriverHealth::kStopped, std::memory_order_release);
}

void MaintenanceService::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  {
    // A restarted service must not report a previous run's error.
    std::lock_guard<std::mutex> lk(error_mu_);
    error_ = Status::OK();
    last_error_ = Status::OK();
  }
  propagate_driver_.health.store(DriverHealth::kRunning,
                                 std::memory_order_release);
  propagate_thread_ = std::thread([this] {
    DriverLoop(&propagate_driver_, &propagate_paused_,
               [this](bool* advanced) { return PropagateStep(advanced); },
               /*salt=*/0x70726f70ULL);  // "prop"
  });
  if (options_.apply_continuously) {
    apply_driver_.health.store(DriverHealth::kRunning,
                               std::memory_order_release);
    apply_thread_ = std::thread([this] {
      DriverLoop(&apply_driver_, &apply_paused_,
                 [this](bool* advanced) { return ApplyStep(advanced); },
                 /*salt=*/0x6170706cULL);  // "appl"
    });
  }
}

Status MaintenanceService::Stop() {
  running_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_all();
  if (propagate_thread_.joinable()) propagate_thread_.join();
  if (apply_thread_.joinable()) apply_thread_.join();
  std::lock_guard<std::mutex> lk(error_mu_);
  return error_;
}

void MaintenanceService::ResumePropagation() {
  propagate_paused_.store(false);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_all();
}

void MaintenanceService::ResumeApply() {
  apply_paused_.store(false);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_all();
}

DriverHealth MaintenanceService::Health() const {
  auto rank = [](DriverHealth h) {
    switch (h) {
      case DriverHealth::kFailed:
        return 3;
      case DriverHealth::kDegraded:
        return 2;
      case DriverHealth::kRunning:
        return 1;
      case DriverHealth::kStopped:
        return 0;
    }
    return 0;
  };
  DriverHealth p = propagate_health();
  DriverHealth a = apply_health();
  return rank(p) >= rank(a) ? p : a;
}

Status MaintenanceService::last_error() const {
  std::lock_guard<std::mutex> lk(error_mu_);
  return last_error_;
}

DriverStats MaintenanceService::propagate_driver_stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return propagate_driver_.stats;
}

DriverStats MaintenanceService::apply_driver_stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return apply_driver_.stats;
}

Status MaintenanceService::CheckDrainProgress(
    const Driver& driver, const std::atomic<bool>& paused) {
  {
    std::lock_guard<std::mutex> lk(error_mu_);
    ROLLVIEW_RETURN_NOT_OK(error_);
  }
  if (driver.health.load(std::memory_order_acquire) ==
      DriverHealth::kFailed) {
    std::lock_guard<std::mutex> lk(error_mu_);
    if (!error_.ok()) return error_;
    if (!last_error_.ok()) return last_error_;
    return Status::Internal(std::string(driver.name) + " driver failed");
  }
  if (paused.load(std::memory_order_relaxed)) {
    return Status::Busy(std::string("drain cannot make progress: ") +
                        driver.name + " driver is paused");
  }
  return Status::OK();
}

Status MaintenanceService::Drain(Csn target) {
  bool was_running = running_.load(std::memory_order_relaxed);
  if (was_running) {
    // Let the background drivers do the work; wait for them. Bail out with
    // Busy instead of livelocking if the driver is paused, and with the
    // driver's error if it died.
    while (view_->high_water_mark() < target) {
      ROLLVIEW_RETURN_NOT_OK(
          CheckDrainProgress(propagate_driver_, propagate_paused_));
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  } else {
    // Synchronous drain: drive the same PropagateStep the background driver
    // runs, so the checkpoint cadence fires and step counts accrue exactly
    // as they would under Start().
    while (view_->high_water_mark() < target) {
      bool advanced = false;
      ROLLVIEW_RETURN_NOT_OK(PropagateStep(&advanced));
      if (advanced) {
        std::lock_guard<std::mutex> lk(stats_mu_);
        propagate_driver_.stats.steps++;
      } else {
        if (views_->capture() != nullptr) {
          // Give capture a chance to publish more of the log.
          ROLLVIEW_RETURN_NOT_OK(views_->capture()->WaitForCsn(
              std::min(target, views_->db()->stable_csn())));
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }
  if (!options_.apply_continuously) return Status::OK();
  if (was_running) {
    while (view_->mv->csn() < target) {
      ROLLVIEW_RETURN_NOT_OK(CheckDrainProgress(apply_driver_, apply_paused_));
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return Status::OK();
  }
  return applier_->RollTo(view_->high_water_mark());
}

void RetentionService::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_relaxed)) {
      manager_.PruneOnce();
      passes_.fetch_add(1, std::memory_order_relaxed);
      auto deadline = std::chrono::steady_clock::now() + period_;
      while (running_.load(std::memory_order_relaxed) &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
}

void RetentionService::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

}  // namespace rollview
