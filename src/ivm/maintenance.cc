#include "ivm/maintenance.h"

#include <algorithm>
#include <string>
#include <utility>

#include "ivm/partition.h"
#include "storage/wal_segment.h"

namespace rollview {

const char* DriverHealthName(DriverHealth health) {
  switch (health) {
    case DriverHealth::kStopped:
      return "stopped";
    case DriverHealth::kRunning:
      return "running";
    case DriverHealth::kShedding:
      return "shedding";
    case DriverHealth::kDegraded:
      return "degraded";
    case DriverHealth::kFailed:
      return "failed";
  }
  return "?";
}

MaintenanceService::MaintenanceService(ViewManager* views, View* view,
                                       Options options)
    : views_(views), view_(view), options_(options) {
  if (options_.interval_mode == Options::IntervalMode::kAdaptive) {
    controller_ = std::make_unique<IntervalController>(options_.controller);
    last_lock_stats_ = views_->db()->lock_manager()->GetStats();
  }
  auto make_policy = [&]() -> std::unique_ptr<IntervalPolicy> {
    if (controller_ != nullptr) {
      return std::make_unique<AdaptiveContentionInterval>(controller_.get());
    }
    return std::make_unique<TargetRowsInterval>(
        options_.target_rows_per_query);
  };
  if (options_.algorithm == Options::Algorithm::kRolling) {
    auto make_policies = [&]() {
      std::vector<std::unique_ptr<IntervalPolicy>> policies;
      for (size_t i = 0; i < view->resolved.num_terms(); ++i) {
        policies.push_back(make_policy());
      }
      return policies;
    };
    RollingOptions ropts;
    ropts.runner = options_.runner;
    if (options_.propagate_partitions > 1) {
      // Partitionability is a property of the view's join shape; check it
      // separately so a non-partitionable view degrades to the serial
      // driver, while a partitionable view whose durable cursors conflict
      // with the requested count refuses to run (resuming mismatched
      // chains could double-propagate; see partition_error_).
      Result<std::vector<size_t>> cols =
          ResolvePartitionColumns(view->resolved);
      if (!cols.ok()) {
        partition_fallback_ = cols.status();
      } else {
        ParallelRollingOptions popts;
        popts.rolling = ropts;
        popts.partitions = options_.propagate_partitions;
        Result<std::unique_ptr<PartitionedRollingPropagator>> built =
            PartitionedRollingPropagator::Create(views, view, make_policies,
                                                 std::move(popts));
        if (built.ok()) {
          parallel_ = std::move(built).value();
        } else {
          partition_error_ = built.status();
        }
      }
    }
    if (parallel_ == nullptr) {
      rolling_ = std::make_unique<RollingPropagator>(
          views, view, make_policies(), std::move(ropts));
    }
  } else {
    PropagatorOptions popts;
    popts.runner = options_.runner;
    plain_ = std::make_unique<Propagator>(views, view, make_policy(), popts);
  }
  ApplierOptions aopts;
  aopts.prune_view_delta = options_.prune_view_delta;
  applier_ = std::make_unique<Applier>(views, view, aopts);
  if (options_.checkpoint_every_steps > 0) {
    CheckpointManager::Options copts;
    copts.every_steps = options_.checkpoint_every_steps;
    checkpointer_ = std::make_unique<CheckpointManager>(views->db(), view,
                                                        copts);
  }
  if (options_.scrub_every_steps > 0) {
    scrubber_ = std::make_unique<Scrubber>(views, view, options_.scrub);
  }
  if (options_.trace_journal_capacity > 0) {
    journal_ =
        std::make_unique<obs::TraceJournal>(options_.trace_journal_capacity);
    propagate_tracer_.set_journal(journal_.get());
    apply_tracer_.set_journal(journal_.get());
    if (parallel_ != nullptr) {
      std::vector<obs::StepTracer*> tracers;
      for (uint32_t p = 0; p < parallel_->partitions(); ++p) {
        strip_tracers_.push_back(std::make_unique<obs::StepTracer>());
        strip_tracers_.back()->set_journal(journal_.get());
        tracers.push_back(strip_tracers_.back().get());
      }
      parallel_->SetTracers(tracers);
    } else if (rolling_ != nullptr) {
      rolling_->set_tracer(&propagate_tracer_);
    } else {
      plain_->set_tracer(&propagate_tracer_);
    }
  }
  if (options_.freshness != nullptr) {
    // Seed visibility at the current MV position: commits already applied
    // predate tracking and never enter the histograms.
    freshness_ch_ =
        options_.freshness->RegisterView(view_->name, view_->mv->csn());
    if (parallel_ != nullptr) {
      // Parallel strips stamp t_comp at the fold site, before the hwm
      // publishes (so the apply driver can never consume an unstamped
      // advance); the serial paths stamp from PropagateStep.
      parallel_->set_freshness(freshness_ch_);
    }
    if (options_.freshness_slo.target_staleness_nanos > 0) {
      slo_ = std::make_unique<obs::FreshnessSlo>(options_.freshness_slo);
    }
  }
}

MaintenanceService::~MaintenanceService() {
  // The final error (if any) stays readable through last_error() until
  // destruction; Stop()'s return value here has nowhere to go.
  Stop().ok();
  if (registry_ != nullptr) registry_->DropOwner(this);
}

const RunnerStats* MaintenanceService::runner_stats() const {
  if (parallel_ != nullptr) {
    // Aggregate over the strips into a stable snapshot; same threading
    // contract as the strips' own stats (read between rounds -- for
    // cross-thread scrapes use the mirrors via RegisterMetrics).
    parallel_runner_stats_ = parallel_->runner_stats();
    return &parallel_runner_stats_;
  }
  return rolling_ != nullptr ? &rolling_->runner()->stats()
                             : &plain_->runner()->stats();
}

Status MaintenanceService::PropagateStep(bool* advanced) {
  // A requested partitioning that conflicts with durable state never runs:
  // permanent error, so the supervisor fails the driver on the first step.
  ROLLVIEW_RETURN_NOT_OK(partition_error_);
  if (journal_ != nullptr) {
    // Supervision context for the trace the propagator is about to open: a
    // retried step carries its position in the failure streak and the
    // health the supervisor reported when scheduling it. In parallel mode
    // every strip of the round runs under the same supervision context.
    const uint64_t streak = static_cast<uint64_t>(
        propagate_driver_.consecutive.load(std::memory_order_relaxed));
    const char* health = DriverHealthName(propagate_health());
    const int64_t target =
        controller_ != nullptr
            ? static_cast<int64_t>(controller_->target_rows())
            : static_cast<int64_t>(options_.target_rows_per_query);
    if (parallel_ != nullptr) {
      for (const auto& tracer : strip_tracers_) {
        tracer->SetNextStepContext(streak, health, target);
      }
    } else {
      propagate_tracer_.SetNextStepContext(streak, health, target);
    }
  }
  // Freshness pickup stamp: the strip's start time, taken before the step
  // runs so time spent inside the strip counts as propagation, not pickup.
  // The boundary it consumed up to is only known afterwards.
  const Csn fresh_hwm_before =
      freshness_ch_ != nullptr ? view_->high_water_mark() : kNullCsn;
  const uint64_t fresh_t0 =
      freshness_ch_ != nullptr ? freshness_ch_->Now() : 0;
  Status s = [&]() -> Status {
    if (parallel_ != nullptr) {
      Result<bool> r = parallel_->Step();
      if (!r.ok()) return r.status();
      *advanced = r.value();
      if (!*advanced) {
        Result<bool> settled = parallel_->TryFinish();
        if (!settled.ok()) return settled.status();
      }
    } else if (rolling_ != nullptr) {
      Result<bool> r = rolling_->Step();
      if (!r.ok()) return r.status();
      *advanced = r.value();
      if (!*advanced) {
        // Settle the tail so the HWM can reach the frontier at quiescence.
        Result<bool> settled = rolling_->TryFinish();
        if (!settled.ok()) return settled.status();
      }
    } else {
      Result<bool> r = plain_->Step();
      if (!r.ok()) return r.status();
      *advanced = r.value();
    }
    if (*advanced && checkpointer_ != nullptr) {
      // On the propagate driver thread, between steps: exactly the
      // threading contract WriteViewCheckpoint requires.
      uint64_t before = checkpointer_->checkpoints_written();
      Status cs = checkpointer_->OnStep();
      if (journal_ != nullptr &&
          (!cs.ok() || checkpointer_->checkpoints_written() != before)) {
        // Cadence checkpoints run between step traces, not inside them, so
        // a fired (or failed) checkpoint gets its own root-level trace.
        propagate_tracer_.BeginStep(obs::SpanKind::kCheckpoint, view_->id,
                                    view_->name,
                                    checkpointer_->checkpoints_written());
        propagate_tracer_.EndStep(
            cs.ok() ? obs::StepOutcome::kOk
                    : (cs.IsTransient() ? obs::StepOutcome::kTransientError
                                        : obs::StepOutcome::kPermanentError),
            cs.ok() ? std::string() : cs.ToString());
      }
      ROLLVIEW_RETURN_NOT_OK(cs);
    }
    return Status::OK();
  }();

  if (freshness_ch_ != nullptr && s.ok() && *advanced) {
    const Csn hwm_after = view_->high_water_mark();
    if (hwm_after > fresh_hwm_before) {
      freshness_ch_->OnStripStart(fresh_t0, hwm_after);
      if (parallel_ == nullptr) {
        // Serial propagators publish the hwm inside Step; t_comp is now.
        // (Parallel strips stamped it at FoldHwm, per partition fold.)
        freshness_ch_->OnHwmAdvance(hwm_after, freshness_ch_->Now());
      }
    }
  }

  // Scrub cadence: counted over every successful iteration -- advanced or
  // idle -- so a quiescent system still gets scrubbed. Runs here, on the
  // thread driving PropagateStep between steps (the WriteViewCheckpoint /
  // RecoverView threading contract). Scrub errors are recorded for
  // last_error() and telemetry but never returned as the step's status: a
  // broken scrub must not take down propagation.
  if (s.ok() && scrubber_ != nullptr &&
      ++steps_since_scrub_ >= options_.scrub_every_steps) {
    steps_since_scrub_ = 0;
    ScrubOutcome outcome = ScrubOutcome::kClean;
    Status sc = scrubber_->Pass(&outcome);
    if (journal_ != nullptr) {
      // Like cadence checkpoints, a scrub pass gets its own root-level
      // trace between step traces.
      propagate_tracer_.BeginStep(obs::SpanKind::kScrub, view_->id,
                                  view_->name,
                                  scrubber_->GetStats().passes);
      propagate_tracer_.Attr(1, "outcome", static_cast<int64_t>(outcome));
      propagate_tracer_.EndStep(
          sc.ok() ? obs::StepOutcome::kOk
                  : (sc.IsTransient() ? obs::StepOutcome::kTransientError
                                      : obs::StepOutcome::kPermanentError),
          sc.ok() ? std::string() : sc.ToString());
    }
    if (!sc.ok()) {
      scrub_errors_.fetch_add(1, std::memory_order_relaxed);
      RecordError(sc, /*terminal=*/false);
    }
  }

  {
    // Mirror the driver-thread-local propagation stats for cross-thread
    // metric scrapes (the hot structs are unsynchronized by design).
    std::lock_guard<std::mutex> lk(stats_mu_);
    if (parallel_ != nullptr) {
      // Round barrier has passed: the strips are quiescent, so their
      // thread-local stats are safe to aggregate here.
      runner_mirror_ = parallel_->runner_stats();
      compute_delta_mirror_ = parallel_->compute_delta_stats();
      rolling_mirror_ = parallel_->rolling_stats();
    } else {
      runner_mirror_ = *runner_stats();
      if (rolling_ != nullptr) {
        compute_delta_mirror_ = rolling_->compute_delta_stats();
        rolling_mirror_ = rolling_->rolling_stats();
      } else {
        compute_delta_mirror_ = plain_->compute_delta_stats();
      }
    }
  }

  if (controller_ != nullptr) {
    if (!s.ok() && s.IsTransient()) {
      // Shrink *before* the supervisor's retry: the step re-runs with the
      // smaller interval instead of re-colliding at the old size.
      controller_->OnTransientStepFailure();
    } else if (s.ok() && *advanced) {
      ObserveContention();
      // Contention pacing: space the next strip out in time. At the row
      // floor this is the controller's only remaining lever against
      // lock-order collisions with foreground transactions; it decays to
      // zero within a few calm windows.
      std::chrono::microseconds pause = controller_->recommended_pause();
      if (pause.count() > 0) InterruptibleSleep(pause);
    }
  }

  // Time-domain SLO: evaluated every iteration (advanced or idle -- a
  // stalled pipeline is exactly when staleness grows), on the thread
  // driving PropagateStep, where the strips are quiescent and shedding
  // transitions are race-free (the ApplyShedding contract).
  if (slo_ != nullptr && s.ok()) {
    const bool flipped =
        slo_->Observe(freshness_ch_->StalenessNanos(), freshness_ch_->Now());
    // Mirror every iteration (not just on flips) so a Start() after a
    // stop-while-shedding re-converges with the evaluator's latch.
    slo_shedding_.store(slo_->shedding(), std::memory_order_release);
    if (flipped) ApplyShedding(shedding());
  }
  return s;
}

void MaintenanceService::ObserveContention() {
  // Saturating deltas: a concurrent ResetStats (benchmarks do this between
  // phases) must not produce wrapped-around windows.
  auto delta = [](uint64_t now, uint64_t then) {
    return now >= then ? now - then : now;
  };
  LockManager::Stats now = views_->db()->lock_manager()->GetStats();
  const LockManager::ClassStats& o = now.cls(TxnClass::kOltp);
  const LockManager::ClassStats& m = now.cls(TxnClass::kMaintenance);
  const LockManager::ClassStats& o0 = last_lock_stats_.cls(TxnClass::kOltp);
  const LockManager::ClassStats& m0 =
      last_lock_stats_.cls(TxnClass::kMaintenance);

  ContentionSnapshot snap;
  snap.oltp_waits = delta(o.waits, o0.waits);
  snap.oltp_timeouts = delta(o.timeouts, o0.timeouts);
  snap.oltp_deadlock_victims = delta(o.deadlock_victims, o0.deadlock_victims);
  snap.oltp_wait_nanos = delta(o.wait_nanos, o0.wait_nanos);
  snap.maintenance_waits = delta(m.waits, m0.waits);
  snap.maintenance_timeouts = delta(m.timeouts, m0.timeouts);
  snap.maintenance_deadlock_victims =
      delta(m.deadlock_victims, m0.deadlock_victims);
  last_lock_stats_ = now;

  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    const DriverStats& ds = propagate_driver_.stats;
    snap.steps = delta(ds.steps, last_window_steps_);
    snap.step_transient_failures =
        delta(ds.transient_errors, last_window_transient_errors_);
    last_window_steps_ = ds.steps;
    last_window_transient_errors_ = ds.transient_errors;
  }

  if (parallel_ != nullptr) {
    snap.backlog_rows = parallel_->BacklogRows();
  } else if (rolling_ != nullptr) {
    snap.backlog_rows = rolling_->BacklogRows();
  }
  Csn stable = views_->db()->stable_csn();
  Csn hwm = view_->high_water_mark();
  snap.staleness = stable > hwm ? stable - hwm : 0;

  staleness_gauge_.Set(static_cast<int64_t>(snap.staleness));
  backlog_gauge_.Set(static_cast<int64_t>(snap.backlog_rows));
  // shedding() (not the controller's own state) so a controller recovery
  // cannot lift shedding while the WAL device is still full.
  if (controller_->Observe(snap)) ApplyShedding(shedding());
  target_rows_gauge_.Set(static_cast<int64_t>(controller_->target_rows()));
}

void MaintenanceService::ApplyShedding(bool on) {
  // Build-cache admission off while shedding (its memory and build CPU go
  // back to foreground work); restore the *configured* value on recovery.
  // In parallel mode the strips are quiescent here (shedding transitions
  // fire from ObserveContention, between rounds), so flipping each strip's
  // runner is race-free.
  const bool use_cache = on ? false : options_.runner.use_build_cache;
  if (parallel_ != nullptr) {
    for (uint32_t p = 0; p < parallel_->partitions(); ++p) {
      parallel_->strip(p)->runner()->set_use_build_cache(use_cache);
    }
  } else {
    QueryRunner* runner =
        rolling_ != nullptr ? rolling_->runner() : plain_->runner();
    runner->set_use_build_cache(use_cache);
  }
  if (checkpointer_ != nullptr && options_.checkpoint_every_steps > 0 &&
      options_.shedding_checkpoint_stretch > 1) {
    checkpointer_->set_every_steps(
        on ? options_.checkpoint_every_steps *
                 options_.shedding_checkpoint_stretch
           : options_.checkpoint_every_steps);
  }
  // Reflect the mode in health immediately (the driver loop also refreshes
  // after every successful step). Do not mask kDegraded/kFailed.
  DriverHealth cur =
      propagate_driver_.health.load(std::memory_order_acquire);
  if (cur == DriverHealth::kRunning || cur == DriverHealth::kShedding) {
    propagate_driver_.health.store(
        on ? DriverHealth::kShedding : DriverHealth::kRunning,
        std::memory_order_release);
  }
  if (options_.on_shedding) options_.on_shedding(on);
}

bool MaintenanceService::WalOutOfSpace() const {
  Wal* wal = views_->db()->wal();
  return wal->durable() && wal->store()->out_of_space();
}

DriverHealth MaintenanceService::SteadyHealth(const Driver* driver) const {
  if (driver == &propagate_driver_ && shedding()) {
    return DriverHealth::kShedding;
  }
  return DriverHealth::kRunning;
}

Status MaintenanceService::ApplyStep(bool* advanced) {
  Csn hwm = view_->high_water_mark();
  if (hwm <= view_->mv->csn()) {
    *advanced = false;
    return Status::OK();
  }
  *advanced = true;
  const Applier::Stats& astats = applier_->stats();
  if (journal_ != nullptr) {
    uint64_t rows_before = astats.rows_selected;
    apply_tracer_.SetNextStepContext(
        static_cast<uint64_t>(
            apply_driver_.consecutive.load(std::memory_order_relaxed)),
        DriverHealthName(apply_health()), /*target_rows=*/0);
    apply_tracer_.BeginStep(obs::SpanKind::kApply, view_->id, view_->name,
                            astats.rolls + 1);
    apply_tracer_.Attr(1, "t_a", static_cast<int64_t>(view_->mv->csn()));
    apply_tracer_.Attr(1, "t_b", static_cast<int64_t>(hwm));
    Status s = applier_->RollTo(hwm);
    apply_tracer_.AddStepRows(astats.rows_selected - rows_before);
    if (s.ok() && freshness_ch_ != nullptr) {
      // Close the freshness loop inside the apply trace: the commit range
      // that just became visible, decomposed into the stage histograms.
      obs::ViewFreshness::VisibleReport rep =
          freshness_ch_->OnVisible(view_->mv->csn());
      uint32_t span = apply_tracer_.OpenSpan(obs::SpanKind::kFreshness);
      apply_tracer_.Attr(span, "commits",
                         static_cast<int64_t>(rep.commits));
      apply_tracer_.Attr(span, "evicted",
                         static_cast<int64_t>(rep.evicted));
      apply_tracer_.Attr(span, "max_e2e_us",
                         static_cast<int64_t>(rep.max_e2e_nanos / 1000));
      apply_tracer_.CloseSpan(span, true);
    }
    apply_tracer_.EndStep(
        s.ok() ? obs::StepOutcome::kOk
               : (s.IsTransient() ? obs::StepOutcome::kTransientError
                                  : obs::StepOutcome::kPermanentError),
        s.ok() ? std::string() : s.ToString());
    std::lock_guard<std::mutex> lk(stats_mu_);
    apply_mirror_ = astats;
    return s;
  }
  Status s = applier_->RollTo(hwm);
  if (s.ok() && freshness_ch_ != nullptr) {
    freshness_ch_->OnVisible(view_->mv->csn());
  }
  std::lock_guard<std::mutex> lk(stats_mu_);
  apply_mirror_ = astats;
  return s;
}

void MaintenanceService::RecordError(const Status& s, bool terminal) {
  std::lock_guard<std::mutex> lk(error_mu_);
  last_error_ = s;
  if (terminal && error_.ok()) error_ = s;
}

void MaintenanceService::InterruptibleSleep(std::chrono::nanoseconds d) {
  std::unique_lock<std::mutex> lk(wake_mu_);
  wake_cv_.wait_for(lk, d, [&] {
    return !running_.load(std::memory_order_relaxed);
  });
}

void MaintenanceService::DriverLoop(Driver* driver,
                                    std::atomic<bool>* paused,
                                    const std::function<Status(bool*)>& step,
                                    uint64_t salt) {
  Rng jitter_rng(options_.backoff_seed ^ salt);
  const BackoffPolicy& policy = options_.backoff;
  std::chrono::nanoseconds backoff =
      std::chrono::duration_cast<std::chrono::nanoseconds>(policy.initial);
  const std::chrono::nanoseconds backoff_cap =
      std::chrono::duration_cast<std::chrono::nanoseconds>(policy.max);
  int consecutive_failures = 0;
  driver->consecutive.store(0, std::memory_order_relaxed);

  while (running_.load(std::memory_order_relaxed)) {
    if (paused->load(std::memory_order_relaxed)) {
      std::unique_lock<std::mutex> lk(wake_mu_);
      wake_cv_.wait(lk, [&] {
        return !running_.load(std::memory_order_relaxed) ||
               !paused->load(std::memory_order_relaxed);
      });
      continue;
    }

    bool advanced = false;
    Status s = step(&advanced);

    if (s.ok()) {
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        driver->stats.steps++;
        if (consecutive_failures > 0) driver->stats.recoveries++;
      }
      consecutive_failures = 0;
      driver->consecutive.store(0, std::memory_order_relaxed);
      backoff =
          std::chrono::duration_cast<std::chrono::nanoseconds>(policy.initial);
      if (driver == &propagate_driver_ &&
          wal_shedding_.load(std::memory_order_relaxed) && !WalOutOfSpace()) {
        // Space came back and a step went through: hand shedding control
        // back to the staleness-SLO machine.
        wal_shedding_.store(false, std::memory_order_release);
        ApplyShedding(shedding());
      }
      driver->health.store(SteadyHealth(driver), std::memory_order_release);
      if (!advanced) InterruptibleSleep(options_.idle_sleep);
      continue;
    }

    ++consecutive_failures;
    driver->consecutive.store(consecutive_failures,
                              std::memory_order_relaxed);
    // A full WAL device is an environmental stall, not a driver defect:
    // the flusher retries while space is reclaimed, so the failure streak
    // must never trip the kFailed latch (which would strand the view after
    // the disk drains). Shed load and keep retrying instead.
    bool wal_full = WalOutOfSpace();
    bool terminal =
        !s.IsTransient() ||
        (!wal_full && options_.failed_after > 0 &&
         consecutive_failures >= options_.failed_after);
    RecordError(s, terminal);
    if (terminal) {
      driver->health.store(DriverHealth::kFailed, std::memory_order_release);
      return;
    }
    if (wal_full && driver == &propagate_driver_ &&
        !wal_shedding_.load(std::memory_order_relaxed)) {
      wal_shedding_.store(true, std::memory_order_release);
      ApplyShedding(true);
    }

    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      driver->stats.transient_errors++;
      if (s.IsTxnAborted()) {
        driver->stats.errors_aborted++;
      } else {
        driver->stats.errors_busy++;
      }
    }
    if (consecutive_failures >= options_.degraded_after &&
        driver->health.load(std::memory_order_relaxed) !=
            DriverHealth::kDegraded) {
      driver->health.store(DriverHealth::kDegraded,
                           std::memory_order_release);
      std::lock_guard<std::mutex> lk(stats_mu_);
      driver->stats.degraded_entries++;
    }

    double factor =
        1.0 + policy.jitter * (2.0 * jitter_rng.NextDouble() - 1.0);
    auto delay = std::chrono::nanoseconds(static_cast<int64_t>(
        static_cast<double>(backoff.count()) * factor));
    if (delay < std::chrono::nanoseconds(1)) delay = std::chrono::nanoseconds(1);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      driver->stats.backoff_nanos += static_cast<uint64_t>(delay.count());
    }
    InterruptibleSleep(delay);
    backoff = std::min(
        backoff_cap,
        std::chrono::nanoseconds(static_cast<int64_t>(
            static_cast<double>(backoff.count()) * policy.multiplier)));
  }
  driver->health.store(DriverHealth::kStopped, std::memory_order_release);
}

void MaintenanceService::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  if (controller_ != nullptr &&
      propagate_driver_.health.load(std::memory_order_acquire) ==
          DriverHealth::kFailed) {
    // Restart after a terminal failure: the backoff streak resets below,
    // and the AIMD controller must reset with it -- its row target, pacing
    // and shedding posture were tuned for (or collapsed by) the regime
    // that killed the driver, and resuming them would start the new run
    // throttled for no observed reason. Cumulative controller stats
    // survive, so the restart stays visible in telemetry.
    controller_->Reset();
  }
  {
    // A restarted service must not report a previous run's error.
    std::lock_guard<std::mutex> lk(error_mu_);
    error_ = Status::OK();
    last_error_ = Status::OK();
  }
  // The time-domain SLO latch is regime state, like the controller's: a
  // restart re-evaluates from fresh observations.
  slo_shedding_.store(false, std::memory_order_release);
  propagate_driver_.health.store(DriverHealth::kRunning,
                                 std::memory_order_release);
  propagate_thread_ = std::thread([this] {
    DriverLoop(&propagate_driver_, &propagate_paused_,
               [this](bool* advanced) { return PropagateStep(advanced); },
               /*salt=*/0x70726f70ULL);  // "prop"
  });
  if (options_.apply_continuously) {
    apply_driver_.health.store(DriverHealth::kRunning,
                               std::memory_order_release);
    apply_thread_ = std::thread([this] {
      DriverLoop(&apply_driver_, &apply_paused_,
                 [this](bool* advanced) { return ApplyStep(advanced); },
                 /*salt=*/0x6170706cULL);  // "appl"
    });
  }
}

Status MaintenanceService::Stop() {
  running_.store(false, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_all();
  if (propagate_thread_.joinable()) propagate_thread_.join();
  if (apply_thread_.joinable()) apply_thread_.join();
  std::lock_guard<std::mutex> lk(error_mu_);
  return error_;
}

void MaintenanceService::ResumePropagation() {
  propagate_paused_.store(false);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_all();
}

void MaintenanceService::ResumeApply() {
  apply_paused_.store(false);
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  wake_cv_.notify_all();
}

DriverHealth MaintenanceService::Health() const {
  auto rank = [](DriverHealth h) {
    switch (h) {
      case DriverHealth::kFailed:
        return 4;
      case DriverHealth::kDegraded:
        return 3;
      case DriverHealth::kShedding:
        return 2;
      case DriverHealth::kRunning:
        return 1;
      case DriverHealth::kStopped:
        return 0;
    }
    return 0;
  };
  DriverHealth p = propagate_health();
  DriverHealth a = apply_health();
  return rank(p) >= rank(a) ? p : a;
}

Status MaintenanceService::last_error() const {
  std::lock_guard<std::mutex> lk(error_mu_);
  return last_error_;
}

DriverStats MaintenanceService::propagate_driver_stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return propagate_driver_.stats;
}

DriverStats MaintenanceService::apply_driver_stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return apply_driver_.stats;
}

void MaintenanceService::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry_ = registry;
  const std::string& v = view_->name;
  const void* owner = this;

  // Supervision: per-driver step outcomes and recovery bookkeeping. The
  // DriverStats accessors copy under stats_mu_, so every callback here is
  // safe from any scraping thread.
  struct DriverSource {
    const char* name;
    std::function<DriverStats()> stats;
    const Driver* driver;
  };
  const DriverSource drivers[] = {
      {"propagate", [this] { return propagate_driver_stats(); },
       &propagate_driver_},
      {"apply", [this] { return apply_driver_stats(); }, &apply_driver_},
  };
  for (const DriverSource& d : drivers) {
    const std::string dn = d.name;
    auto get = d.stats;
    registry->RegisterCounterFn(
        "rollview_step_total", {{"view", v}, {"driver", dn}, {"outcome", "ok"}},
        [get] { return get().steps; }, owner);
    registry->RegisterCounterFn(
        "rollview_step_total",
        {{"view", v}, {"driver", dn}, {"outcome", "transient_error"}},
        [get] { return get().transient_errors; }, owner);
    registry->RegisterCounterFn(
        "rollview_driver_errors_total",
        {{"view", v}, {"driver", dn}, {"cause", "aborted"}},
        [get] { return get().errors_aborted; }, owner);
    registry->RegisterCounterFn(
        "rollview_driver_errors_total",
        {{"view", v}, {"driver", dn}, {"cause", "busy"}},
        [get] { return get().errors_busy; }, owner);
    registry->RegisterCounterFn(
        "rollview_driver_recoveries_total", {{"view", v}, {"driver", dn}},
        [get] { return get().recoveries; }, owner);
    registry->RegisterCounterFn(
        "rollview_driver_degraded_total", {{"view", v}, {"driver", dn}},
        [get] { return get().degraded_entries; }, owner);
    registry->RegisterCounterFn(
        "rollview_driver_backoff_nanos_total", {{"view", v}, {"driver", dn}},
        [get] { return get().backoff_nanos; }, owner);
    const Driver* drv = d.driver;
    registry->RegisterGaugeFn(
        "rollview_driver_health", {{"view", v}, {"driver", dn}},
        [drv] {
          return static_cast<int64_t>(
              drv->health.load(std::memory_order_acquire));
        },
        owner);
  }

  // Derived per-view gauges: how stale the view is and why.
  const obs::Labels lv{{"view", v}};
  registry->RegisterGaugeFn(
      "rollview_view_staleness_csn", lv,
      [this] {
        Csn stable = views_->db()->stable_csn();
        Csn hwm = view_->high_water_mark();
        return static_cast<int64_t>(stable > hwm ? stable - hwm : 0);
      },
      owner);
  registry->RegisterGaugeFn(
      "rollview_view_hwm_csn", lv,
      [this] { return static_cast<int64_t>(view_->high_water_mark()); },
      owner);
  registry->RegisterGaugeFn(
      "rollview_view_mv_csn", lv,
      [this] { return static_cast<int64_t>(view_->mv->csn()); }, owner);
  registry->RegisterGaugeFn(
      "rollview_view_target_rows", lv,
      [this] {
        return controller_ != nullptr
                   ? static_cast<int64_t>(controller_->target_rows())
                   : static_cast<int64_t>(options_.target_rows_per_query);
      },
      owner);
  // Sampled at contention observations (kAdaptive only); stays 0 otherwise.
  registry->RegisterGauge("rollview_view_backlog_rows", lv, &backlog_gauge_,
                          owner);
  registry->RegisterGaugeFn(
      "rollview_view_shedding", lv,
      [this] { return static_cast<int64_t>(shedding() ? 1 : 0); }, owner);

  // Propagation-side counters, read from the post-step mirrors.
  auto runner = [this] {
    std::lock_guard<std::mutex> lk(stats_mu_);
    return runner_mirror_;
  };
  registry->RegisterCounterFn(
      "rollview_queries_total", {{"view", v}, {"kind", "forward"}},
      [runner] { return runner().forward_queries; }, owner);
  registry->RegisterCounterFn(
      "rollview_queries_total", {{"view", v}, {"kind", "compensation"}},
      [runner] { return runner().comp_queries; }, owner);
  registry->RegisterCounterFn(
      "rollview_query_retries_total", {{"view", v}, {"cause", "aborted"}},
      [runner] { return runner().retries_aborted; }, owner);
  registry->RegisterCounterFn(
      "rollview_query_retries_total", {{"view", v}, {"cause", "busy"}},
      [runner] { return runner().retries_busy; }, owner);
  registry->RegisterCounterFn(
      "rollview_view_delta_rows_total", lv,
      [runner] { return runner().rows_appended; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_rows_total", {{"view", v}, {"dir", "in"}},
      [runner] { return runner().exec.input_rows; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_rows_total", {{"view", v}, {"dir", "out"}},
      [runner] { return runner().exec.output_rows; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_index_probes_total", lv,
      [runner] { return runner().exec.index_probes; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_pushdown_filtered_total", lv,
      [runner] { return runner().exec.pushdown_filtered; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_rows_moved_total", {{"view", v}, {"path", "copied"}},
      [runner] { return runner().exec.rows_copied; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_rows_moved_total", {{"view", v}, {"path", "borrowed"}},
      [runner] { return runner().exec.rows_borrowed; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_bytes_moved_total", {{"view", v}, {"path", "copied"}},
      [runner] { return runner().exec.bytes_copied; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_bytes_moved_total", {{"view", v}, {"path", "borrowed"}},
      [runner] { return runner().exec.bytes_borrowed; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_nanos_total", lv,
      [runner] { return runner().exec.exec_nanos; }, owner);
  registry->RegisterCounterFn(
      "rollview_build_cache_queries_total", {{"view", v}, {"outcome", "hit"}},
      [runner] { return runner().exec.build_cache_hits; }, owner);
  registry->RegisterCounterFn(
      "rollview_build_cache_queries_total", {{"view", v}, {"outcome", "miss"}},
      [runner] { return runner().exec.build_cache_misses; }, owner);
  registry->RegisterCounterFn(
      "rollview_build_nanos_total", lv,
      [runner] { return runner().exec.build_nanos; }, owner);
  registry->RegisterCounterFn(
      "rollview_compiled_queries_total", lv,
      [runner] { return runner().exec.compiled_queries; }, owner);
  registry->RegisterCounterFn(
      "rollview_compiled_probe_rows_total", lv,
      [runner] { return runner().exec.compiled_probe_rows; }, owner);
  registry->RegisterCounterFn(
      "rollview_compiled_kernel_evals_total", lv,
      [runner] { return runner().exec.compiled_kernel_evals; }, owner);
  registry->RegisterCounterFn(
      "rollview_half_join_probes_total", {{"view", v}, {"outcome", "hit"}},
      [runner] { return runner().exec.half_join_hits; }, owner);
  registry->RegisterCounterFn(
      "rollview_half_join_probes_total", {{"view", v}, {"outcome", "miss"}},
      [runner] { return runner().exec.half_join_misses; }, owner);
  registry->RegisterCounterFn(
      "rollview_half_join_maintenance_total",
      {{"view", v}, {"kind", "advance"}},
      [runner] { return runner().exec.half_join_advances; }, owner);
  registry->RegisterCounterFn(
      "rollview_half_join_maintenance_total",
      {{"view", v}, {"kind", "rebuild"}},
      [runner] { return runner().exec.half_join_rebuilds; }, owner);
  registry->RegisterCounterFn(
      "rollview_half_join_advance_rows_total", lv,
      [runner] { return runner().exec.half_join_advance_rows; }, owner);
  if (view_->programs != nullptr) {
    // Half-join residency gauges read the views' atomics directly -- safe
    // to scrape live, unlike the unsynchronized stats mirrors above.
    ViewPrograms* programs = view_->programs.get();
    registry->RegisterGaugeFn(
        "rollview_half_join_rows", lv,
        [programs] { return static_cast<int64_t>(programs->half_join_rows()); },
        owner);
    registry->RegisterGaugeFn(
        "rollview_half_join_bytes", lv,
        [programs] {
          return static_cast<int64_t>(programs->half_join_bytes());
        },
        owner);
  }

  auto compute = [this] {
    std::lock_guard<std::mutex> lk(stats_mu_);
    return compute_delta_mirror_;
  };
  registry->RegisterCounterFn(
      "rollview_compute_delta_total", {{"view", v}, {"event", "invocation"}},
      [compute] { return compute().invocations; }, owner);
  registry->RegisterCounterFn(
      "rollview_compute_delta_total", {{"view", v}, {"event", "query_issued"}},
      [compute] { return compute().queries_issued; }, owner);
  registry->RegisterCounterFn(
      "rollview_compute_delta_total", {{"view", v}, {"event", "query_skipped"}},
      [compute] { return compute().queries_skipped; }, owner);
  registry->RegisterGaugeFn(
      "rollview_compute_delta_max_depth", lv,
      [compute] { return static_cast<int64_t>(compute().max_depth); }, owner);

  if (rolling_ != nullptr || parallel_ != nullptr) {
    auto roll = [this] {
      std::lock_guard<std::mutex> lk(stats_mu_);
      return rolling_mirror_;
    };
    registry->RegisterCounterFn(
        "rollview_rolling_forward_total",
        {{"view", v}, {"outcome", "executed"}},
        [roll] { return roll().forward_queries; }, owner);
    registry->RegisterCounterFn(
        "rollview_rolling_forward_total", {{"view", v}, {"outcome", "skipped"}},
        [roll] { return roll().forward_skipped; }, owner);
    registry->RegisterCounterFn(
        "rollview_rolling_compensation_segments_total", lv,
        [roll] { return roll().compensation_segments; }, owner);
  }

  if (parallel_ != nullptr) {
    // Partitioned propagation: strip count and each strip's published local
    // mark. The view-level hwm gauge above is the minimum over these; a
    // straggler partition shows up as the slot pinning that minimum.
    PartitionedRollingPropagator* par = parallel_.get();
    registry->RegisterGaugeFn(
        "rollview_view_partitions", lv,
        [par] { return static_cast<int64_t>(par->partitions()); }, owner);
    for (uint32_t p = 0; p < par->partitions(); ++p) {
      registry->RegisterGaugeFn(
          "rollview_view_partition_hwm_csn",
          {{"view", v}, {"partition", std::to_string(p)}},
          [par, p] { return static_cast<int64_t>(par->partition_hwm(p)); },
          owner);
    }
  }

  auto apply = [this] {
    std::lock_guard<std::mutex> lk(stats_mu_);
    return apply_mirror_;
  };
  registry->RegisterCounterFn(
      "rollview_apply_rolls_total", lv, [apply] { return apply().rolls; },
      owner);
  registry->RegisterCounterFn(
      "rollview_apply_rows_total", {{"view", v}, {"event", "selected"}},
      [apply] { return apply().rows_selected; }, owner);
  registry->RegisterCounterFn(
      "rollview_apply_rows_total", {{"view", v}, {"event", "pruned"}},
      [apply] { return apply().rows_pruned; }, owner);

  if (checkpointer_ != nullptr) {
    CheckpointManager* cp = checkpointer_.get();
    registry->RegisterCounterFn(
        "rollview_checkpoints_total", lv,
        [cp] { return cp->checkpoints_written(); }, owner);
  }

  // Scrub / quarantine health. The gauge registers regardless of the scrub
  // cadence: a view can also be quarantined by an out-of-band Scrubber.
  registry->RegisterGaugeFn(
      "rollview_view_quarantined", lv,
      [this] { return static_cast<int64_t>(view_->quarantined() ? 1 : 0); },
      owner);
  if (scrubber_ != nullptr) {
    Scrubber* sc = scrubber_.get();
    registry->RegisterCounterFn(
        "rollview_scrub_passes_total", lv,
        [sc] { return sc->GetStats().passes; }, owner);
    registry->RegisterCounterFn(
        "rollview_scrub_buckets_checked_total", lv,
        [sc] { return sc->GetStats().buckets_checked; }, owner);
    registry->RegisterCounterFn(
        "rollview_scrub_mismatches_total", lv,
        [sc] { return sc->GetStats().mismatches; }, owner);
    registry->RegisterCounterFn(
        "rollview_scrub_deep_checks_total", lv,
        [sc] { return sc->GetStats().deep_checks; }, owner);
    registry->RegisterCounterFn(
        "rollview_scrub_quarantines_total", lv,
        [sc] { return sc->GetStats().quarantines; }, owner);
    registry->RegisterCounterFn(
        "rollview_scrub_repairs_total", {{"view", v}, {"kind", "digest_reset"}},
        [sc] { return sc->GetStats().digest_resets; }, owner);
    registry->RegisterCounterFn(
        "rollview_scrub_repairs_total", {{"view", v}, {"kind", "replay"}},
        [sc] { return sc->GetStats().repairs; }, owner);
    registry->RegisterCounterFn(
        "rollview_scrub_repairs_total", {{"view", v}, {"kind", "rebuild"}},
        [sc] { return sc->GetStats().rebuilds; }, owner);
    registry->RegisterCounterFn(
        "rollview_scrub_repairs_total", {{"view", v}, {"kind", "failed"}},
        [sc] { return sc->GetStats().repair_failures; }, owner);
    registry->RegisterCounterFn(
        "rollview_scrub_errors_total", lv,
        [this] { return scrub_errors_.load(std::memory_order_relaxed); },
        owner);
  }
  if (journal_ != nullptr) {
    obs::TraceJournal* j = journal_.get();
    registry->RegisterCounterFn(
        "rollview_trace_steps_total", lv, [j] { return j->recorded(); },
        owner);
  }
  if (freshness_ch_ != nullptr) {
    // End-to-end commit-to-visibility latency plus the four-stage
    // decomposition (docs/ALGORITHMS.md §15). The histograms are owned by
    // the channel, which outlives this service (it lives on the tracker);
    // borrowed registration, dropped with the rest of `owner`.
    obs::ViewFreshness* ch = freshness_ch_;
    registry->RegisterHistogram("rollview_freshness_e2e_nanos", lv,
                                ch->e2e_hist(), owner);
    for (size_t i = 0; i < obs::kFreshnessStageCount; ++i) {
      const obs::FreshnessStage stage = static_cast<obs::FreshnessStage>(i);
      registry->RegisterHistogram(
          "rollview_freshness_stage_nanos",
          {{"view", v}, {"stage", obs::FreshnessStageName(stage)}},
          ch->stage_hist(stage), owner);
    }
    registry->RegisterHistogram("rollview_read_staleness_nanos", lv,
                                ch->read_staleness_hist(), owner);
    registry->RegisterCounterFn(
        "rollview_freshness_commits_total", lv,
        [ch] { return ch->commits_total(); }, owner);
    registry->RegisterCounterFn(
        "rollview_freshness_evicted_total", lv,
        [ch] { return ch->evicted_total(); }, owner);
    // Time-domain sibling of rollview_view_staleness_csn (microseconds:
    // gauges are integral and sub-second lags are the interesting regime).
    registry->RegisterGaugeFn(
        "rollview_view_staleness_usec", lv,
        [ch] { return ch->StalenessMicros(); }, owner);
  }
  if (slo_ != nullptr) {
    const obs::FreshnessSlo* slo = slo_.get();
    registry->RegisterGaugeFn(
        "rollview_slo_target_usec", lv,
        [slo] {
          return static_cast<int64_t>(
              slo->options().target_staleness_nanos / 1000);
        },
        owner);
    registry->RegisterGaugeFn(
        "rollview_slo_burn_x1000", lv, [slo] { return slo->burn_x1000(); },
        owner);
    registry->RegisterGaugeFn(
        "rollview_slo_breaching", lv,
        [slo] { return static_cast<int64_t>(slo->breaching() ? 1 : 0); },
        owner);
    struct SloEvent {
      const char* name;
      uint64_t obs::FreshnessSlo::Stats::* field;
    };
    const SloEvent slo_events[] = {
        {"eval", &obs::FreshnessSlo::Stats::evals},
        {"violation", &obs::FreshnessSlo::Stats::violations},
        {"shed_entry", &obs::FreshnessSlo::Stats::shed_entries},
        {"shed_exit", &obs::FreshnessSlo::Stats::shed_exits},
    };
    for (const SloEvent& e : slo_events) {
      auto field = e.field;
      registry->RegisterCounterFn(
          "rollview_slo_events_total", {{"view", v}, {"event", e.name}},
          [slo, field] { return slo->stats().*field; }, owner);
    }
  }
  if (controller_ != nullptr) {
    // AIMD / shedding state machine events (GetStats copies under the
    // controller's own mutex).
    const IntervalController* ic = controller_.get();
    struct IcEvent {
      const char* name;
      uint64_t IntervalController::Stats::* field;
    };
    const IcEvent events[] = {
        {"observation", &IntervalController::Stats::observations},
        {"shrink", &IntervalController::Stats::shrinks},
        {"grow", &IntervalController::Stats::grows},
        {"transient_shrink", &IntervalController::Stats::transient_shrinks},
        {"pace_escalation", &IntervalController::Stats::pace_escalations},
        {"slo_violation", &IntervalController::Stats::slo_violations},
        {"shed_entry", &IntervalController::Stats::shed_entries},
        {"shed_exit", &IntervalController::Stats::shed_exits},
    };
    for (const IcEvent& e : events) {
      auto field = e.field;
      registry->RegisterCounterFn(
          "rollview_interval_events_total", {{"view", v}, {"event", e.name}},
          [ic, field] { return ic->GetStats().*field; }, owner);
    }
  }
}

Status MaintenanceService::CheckDrainProgress(
    const Driver& driver, const std::atomic<bool>& paused) {
  {
    std::lock_guard<std::mutex> lk(error_mu_);
    ROLLVIEW_RETURN_NOT_OK(error_);
  }
  if (driver.health.load(std::memory_order_acquire) ==
      DriverHealth::kFailed) {
    std::lock_guard<std::mutex> lk(error_mu_);
    if (!error_.ok()) return error_;
    if (!last_error_.ok()) return last_error_;
    return Status::Internal(std::string(driver.name) + " driver failed");
  }
  if (paused.load(std::memory_order_relaxed)) {
    return Status::Busy(std::string("drain cannot make progress: ") +
                        driver.name + " driver is paused");
  }
  return Status::OK();
}

Status MaintenanceService::Drain(Csn target) {
  bool was_running = running_.load(std::memory_order_relaxed);
  if (was_running) {
    // Let the background drivers do the work; wait for them. Bail out with
    // Busy instead of livelocking if the driver is paused, and with the
    // driver's error if it died.
    while (view_->high_water_mark() < target) {
      ROLLVIEW_RETURN_NOT_OK(
          CheckDrainProgress(propagate_driver_, propagate_paused_));
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  } else {
    // Synchronous drain: drive the same PropagateStep the background driver
    // runs, so the checkpoint cadence fires and step counts accrue exactly
    // as they would under Start().
    while (view_->high_water_mark() < target) {
      bool advanced = false;
      ROLLVIEW_RETURN_NOT_OK(PropagateStep(&advanced));
      if (advanced) {
        std::lock_guard<std::mutex> lk(stats_mu_);
        propagate_driver_.stats.steps++;
      } else {
        if (views_->capture() != nullptr) {
          // Give capture a chance to publish more of the log.
          ROLLVIEW_RETURN_NOT_OK(views_->capture()->WaitForCsn(
              std::min(target, views_->db()->stable_csn())));
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }
  if (!options_.apply_continuously) return Status::OK();
  if (was_running) {
    while (view_->mv->csn() < target) {
      ROLLVIEW_RETURN_NOT_OK(CheckDrainProgress(apply_driver_, apply_paused_));
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return Status::OK();
  }
  Status s = applier_->RollTo(view_->high_water_mark());
  if (s.ok() && freshness_ch_ != nullptr) {
    freshness_ch_->OnVisible(view_->mv->csn());
  }
  return s;
}

void RetentionService::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_relaxed)) {
      if (paused_.load(std::memory_order_relaxed)) {
        skipped_.fetch_add(1, std::memory_order_relaxed);
      } else {
        manager_.PruneOnce();
        passes_.fetch_add(1, std::memory_order_relaxed);
      }
      auto deadline = std::chrono::steady_clock::now() + period_;
      while (running_.load(std::memory_order_relaxed) &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
}

void RetentionService::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

}  // namespace rollview
