#include "ivm/maintenance.h"

namespace rollview {

MaintenanceService::MaintenanceService(ViewManager* views, View* view,
                                       Options options)
    : views_(views), view_(view), options_(options) {
  auto make_policy = [&] {
    return std::make_unique<TargetRowsInterval>(
        options_.target_rows_per_query);
  };
  if (options_.algorithm == Options::Algorithm::kRolling) {
    std::vector<std::unique_ptr<IntervalPolicy>> policies;
    for (size_t i = 0; i < view->resolved.num_terms(); ++i) {
      policies.push_back(make_policy());
    }
    RollingOptions ropts;
    ropts.runner = options_.runner;
    rolling_ = std::make_unique<RollingPropagator>(views, view,
                                                   std::move(policies),
                                                   std::move(ropts));
  } else {
    PropagatorOptions popts;
    popts.runner = options_.runner;
    plain_ = std::make_unique<Propagator>(views, view, make_policy(), popts);
  }
  ApplierOptions aopts;
  aopts.prune_view_delta = options_.prune_view_delta;
  applier_ = std::make_unique<Applier>(views, view, aopts);
}

MaintenanceService::~MaintenanceService() { Stop().ok(); }

const RunnerStats* MaintenanceService::runner_stats() const {
  return rolling_ != nullptr ? &rolling_->runner()->stats()
                             : &plain_->runner()->stats();
}

Status MaintenanceService::PropagateStep(bool* advanced) {
  if (rolling_ != nullptr) {
    Result<bool> r = rolling_->Step();
    if (!r.ok()) return r.status();
    *advanced = r.value();
    if (!*advanced) {
      // Settle the tail so the HWM can reach the frontier at quiescence.
      Result<bool> settled = rolling_->TryFinish();
      if (!settled.ok()) return settled.status();
    }
    return Status::OK();
  }
  Result<bool> r = plain_->Step();
  if (!r.ok()) return r.status();
  *advanced = r.value();
  return Status::OK();
}

void MaintenanceService::PropagateLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    if (propagate_paused_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(options_.idle_sleep);
      continue;
    }
    bool advanced = false;
    Status s = PropagateStep(&advanced);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lk(error_mu_);
      if (error_.ok()) error_ = s;
      return;
    }
    if (!advanced) std::this_thread::sleep_for(options_.idle_sleep);
  }
}

void MaintenanceService::ApplyLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    if (apply_paused_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(options_.idle_sleep);
      continue;
    }
    Csn hwm = view_->high_water_mark();
    if (hwm > view_->mv->csn()) {
      Status s = applier_->RollTo(hwm);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lk(error_mu_);
        if (error_.ok()) error_ = s;
        return;
      }
    } else {
      std::this_thread::sleep_for(options_.idle_sleep);
    }
  }
}

void MaintenanceService::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  propagate_thread_ = std::thread([this] { PropagateLoop(); });
  if (options_.apply_continuously) {
    apply_thread_ = std::thread([this] { ApplyLoop(); });
  }
}

Status MaintenanceService::Stop() {
  running_.store(false, std::memory_order_relaxed);
  if (propagate_thread_.joinable()) propagate_thread_.join();
  if (apply_thread_.joinable()) apply_thread_.join();
  std::lock_guard<std::mutex> lk(error_mu_);
  return error_;
}

Status MaintenanceService::Drain(Csn target) {
  bool was_running = running_.load(std::memory_order_relaxed);
  if (was_running) {
    // Let the background drivers do the work; wait for them.
    while (view_->high_water_mark() < target) {
      {
        std::lock_guard<std::mutex> lk(error_mu_);
        ROLLVIEW_RETURN_NOT_OK(error_);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  } else if (rolling_ != nullptr) {
    ROLLVIEW_RETURN_NOT_OK(rolling_->RunUntil(target));
  } else {
    ROLLVIEW_RETURN_NOT_OK(plain_->RunUntil(target));
  }
  if (!options_.apply_continuously) return Status::OK();
  if (was_running) {
    while (view_->mv->csn() < target) {
      {
        std::lock_guard<std::mutex> lk(error_mu_);
        ROLLVIEW_RETURN_NOT_OK(error_);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return Status::OK();
  }
  return applier_->RollTo(view_->high_water_mark());
}

void RetentionService::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_relaxed)) {
      manager_.PruneOnce();
      passes_.fetch_add(1, std::memory_order_relaxed);
      auto deadline = std::chrono::steady_clock::now() + period_;
      while (running_.load(std::memory_order_relaxed) &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
}

void RetentionService::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

}  // namespace rollview
