// Copyright 2026 The rollview Authors.
//
// Baselines the paper argues against or builds on:
//
//  * SyncRefresher::RefreshEq1 -- classic synchronous incremental refresh
//    (Figure 1): one atomic transaction that S-locks every base table,
//    evaluates the 2^n - 1 propagation queries of Equation 1 against the
//    *current* base tables, and applies the result directly to the MV. This
//    is the "long transaction" whose contention with updaters motivates the
//    paper; experiment E3 measures it.
//
//    The Eq. 1 expansion used here is the inclusion-exclusion form with all
//    base terms at the refresh time t_b: since R_a = R_b - Delta,
//      V_b - V_a = sum over nonempty subsets T of (-1)^{|T|+1}
//                  (join of Delta_i for i in T, R^i_b for i not in T),
//    one query per nonempty subset, every one realizable exactly at t_b --
//    matching the paper's remark that all of Eq. 1's queries (except the
//    all-delta one) are synchronous.
//
//  * SyncRefresher::RefreshFull -- non-incremental: recompute the join,
//    replace the MV.
//
//  * ComputeDeltaEq2Snapshot -- Equation 2's n-query method, which needs
//    base tables "to the left of the delta" at t_a and "to the right" at
//    t_b. The paper notes these queries are not realizable by serializable
//    transactions "unless historical snapshots of base relations are
//    maintained"; our MVCC engine maintains them, so this baseline runs via
//    lock-free time travel. Used by tests and the E1 query-plan benchmark.
//
//  * ComputeDeltaEq1Snapshot -- Eq. 1 evaluated via snapshots at t_b
//    (reference implementation for correctness tests).

#ifndef ROLLVIEW_IVM_BASELINES_H_
#define ROLLVIEW_IVM_BASELINES_H_

#include "common/result.h"
#include "ivm/view_manager.h"
#include "ra/executor.h"
#include "ra/net_effect.h"

namespace rollview {

class SyncRefresher {
 public:
  SyncRefresher(ViewManager* views, View* view)
      : views_(views), view_(view) {}

  // Atomically refreshes the MV from its materialization time to "now".
  // Returns the new materialization CSN. Writers to the base tables block
  // for the duration (S table locks).
  Result<Csn> RefreshEq1();

  // Atomic full recomputation (same locking footprint, more work).
  Result<Csn> RefreshFull();

  struct Stats {
    uint64_t refreshes = 0;
    uint64_t queries = 0;  // propagation queries inside refresh txns
    ExecStats exec;
  };
  const Stats& stats() const { return stats_; }

 private:
  // Waits (while holding the base-table S locks via `txn`) until capture
  // has published every delta row up to the engine's stable CSN; returns
  // that CSN. With writers blocked, this converges immediately.
  Result<Csn> DrainCapture();

  ViewManager* views_;
  View* view_;
  Stats stats_;
};

// V_{a,b} by Equation 2 (n queries) over MVCC snapshots: term i's query
// joins R^1_a..R^{i-1}_a, Delta_i(a,b], R^{i+1}_b..R^n_b. Timestamps follow
// the min rule; the result is a timed delta table for V from a to b.
Result<DeltaRows> ComputeDeltaEq2Snapshot(Db* db, const ResolvedView& view,
                                          Csn a, Csn b,
                                          ExecStats* stats = nullptr);

// V_{a,b} by Equation 1 (2^n - 1 signed queries) with base terms at b.
Result<DeltaRows> ComputeDeltaEq1Snapshot(Db* db, const ResolvedView& view,
                                          Csn a, Csn b,
                                          ExecStats* stats = nullptr);

// Reference: phi(V_t) recomputed from snapshots (for test oracles).
Result<DeltaRows> SnapshotViewState(Db* db, const ResolvedView& view, Csn t,
                                    ExecStats* stats = nullptr);

}  // namespace rollview

#endif  // ROLLVIEW_IVM_BASELINES_H_
