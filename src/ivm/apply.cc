#include "ivm/apply.h"

#include "common/fault_injector.h"
#include "ivm/checkpoint.h"

namespace rollview {

Status Applier::RollTo(Csn target) {
  // Apply transactions opt into scoped fault injection alongside
  // propagation (see common/fault_injector.h).
  FaultInjector::Scope fault_scope;
  Csn from = view_->mv->csn();
  if (target < from) {
    return Status::InvalidArgument(
        "cannot roll view backwards (mv at " + std::to_string(from) +
        ", target " + std::to_string(target) + ")");
  }
  if (target > view_->high_water_mark()) {
    return Status::OutOfRange(
        "target " + std::to_string(target) +
        " beyond view-delta high-water mark " +
        std::to_string(view_->high_water_mark()));
  }
  if (target == from) return Status::OK();

  // The transaction exists to serialize with MV readers through the lock
  // manager (X on the view resource); the MV itself is not an engine table.
  std::unique_ptr<Txn> txn = views_->db()->Begin(TxnClass::kMaintenance);
  Status s = views_->db()->LockNamedExclusive(txn.get(),
                                              view_->mv_lock_resource);
  if (!s.ok()) {
    views_->db()->Abort(txn.get()).ok();
    return s;
  }

  DeltaRows window = view_->view_delta->Scan(CsnRange{from, target});
  s = view_->mv->Merge(window, target);
  if (!s.ok()) {
    views_->db()->Abort(txn.get()).ok();
    return s;
  }
  s = views_->db()->Commit(txn.get());
  if (!s.ok()) {
    // The txn is still active after a failed commit; abort it so the X lock
    // on the view resource is released before the supervisor retries (a
    // leaked lock would starve every later roll).
    views_->db()->Abort(txn.get()).ok();
    return s;
  }

  // Durable applied mark: recovery rolls the restored MV back to this CSN
  // (never past it -- point-in-time users must not find their view advanced
  // by a crash). The cursor records justifying `target` necessarily precede
  // this record in the WAL, since RollTo only targets the high-water mark.
  views_->db()->wal()->Append(MakeViewAppliedRecord(*view_, target));

  stats_.rolls++;
  stats_.rows_selected += window.size();
  if (options_.prune_view_delta) {
    stats_.rows_pruned += view_->view_delta->Prune(target);
  }

  // Corruption drills (scrub tests): a latent bit flip lands in the freshly
  // rolled extent -- after the commit, so it models silent storage damage
  // the transaction machinery cannot see, only the scrubber can.
  if (FaultInjector* fi = views_->db()->fault_injector()) {
    uint64_t seed = 0;
    if (fi->MaybeCorruptMvRow(&seed)) view_->mv->CorruptRowBit(seed);
    if (fi->MaybeTamperDigest(&seed)) view_->mv->TamperDigest(seed);
  }
  return Status::OK();
}

Result<Csn> Applier::RollToLatest() {
  Csn target = view_->high_water_mark();
  ROLLVIEW_RETURN_NOT_OK(RollTo(target));
  return target;
}

Result<Csn> Applier::RollToWallTime(WallTime t) {
  Csn csn = views_->db()->uow()->CsnAtOrBefore(t);
  if (csn == kNullCsn) {
    return Status::NotFound("no transaction committed at or before the "
                            "requested time");
  }
  // Clamp into the legal window.
  Csn from = view_->mv->csn();
  Csn hwm = view_->high_water_mark();
  if (csn < from) {
    return Status::InvalidArgument("requested time precedes the view's "
                                   "materialization time");
  }
  if (csn > hwm) {
    return Status::OutOfRange("requested time beyond the view-delta "
                              "high-water mark");
  }
  ROLLVIEW_RETURN_NOT_OK(RollTo(csn));
  return csn;
}

}  // namespace rollview
