// Copyright 2026 The rollview Authors.
//
// ComputeDelta (paper Figure 4): asynchronous view-delta propagation by
// recursive compensation.
//
// ComputeDelta(Q, tau_old, t_new) computes Q_{tau_old, t_new} -- the delta
// of query Q from the vector time tau_old to t_new -- as a series of
// independently committed propagation queries, each executed *after* t_new:
//
//   for each base term R^i of Q with tau_old[i] < t_new:
//     Q' <- Q with R^i replaced by R^i_{tau_old[i], t_new}
//     t_exec <- Execute(Q')          // runs now; sees base tables at t_exec
//     if Q' still has base terms:
//       tau_intended <- [tau_old[1..i-1], t_new, ..., t_new]
//       ComputeDelta(-Q', tau_intended, t_exec)   // compensate the drift
//
// The recursion terminates because each level has one fewer base term.
//
// Optimization (exact, not approximate): when the delta range
// (tau_old[i], t_new] of the i-th term contains no rows, Q' is identically
// empty at every evaluation time, so both the query and its entire
// compensation subtree are skipped.

#ifndef ROLLVIEW_IVM_COMPUTE_DELTA_H_
#define ROLLVIEW_IVM_COMPUTE_DELTA_H_

#include <vector>

#include "ivm/query_runner.h"

namespace rollview {

struct ComputeDeltaOptions {
  bool skip_empty_ranges = true;
};

struct ComputeDeltaStats {
  uint64_t invocations = 0;      // ComputeDelta calls (incl. recursive)
  uint64_t queries_issued = 0;   // Execute calls
  uint64_t queries_skipped = 0;  // empty-range skips
  uint64_t max_depth = 0;        // deepest compensation nesting
};

class ComputeDeltaOp {
 public:
  ComputeDeltaOp(QueryRunner* runner,
                 ComputeDeltaOptions options = ComputeDeltaOptions{})
      : runner_(runner), options_(options) {}

  // Appends the delta of `q` from `tau_old` to `t_new` to the view delta.
  // tau_old entries for delta terms of `q` are ignored (delta tables do not
  // evolve, Sec. 2).
  Status Run(const PropQuery& q, const std::vector<Csn>& tau_old, Csn t_new);

  // Convenience: the view delta V_{from,to} (paper's
  // ComputeDelta(V, [a,...,a], t_b)).
  Status PropagateInterval(const View* view, Csn from, Csn to);

  const ComputeDeltaStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ComputeDeltaStats{}; }

  // Step tracing: each issued query opens a span (forward when it has one
  // delta term, compensation otherwise) tagged with its relation and
  // recursion depth; the compensation subtree nests inside it.
  void set_tracer(obs::StepTracer* tracer) { tracer_ = tracer; }

 private:
  Status RunAtDepth(const PropQuery& q, const std::vector<Csn>& tau_old,
                    Csn t_new, uint64_t depth);

  QueryRunner* runner_;
  ComputeDeltaOptions options_;
  ComputeDeltaStats stats_;
  obs::StepTracer* tracer_ = nullptr;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_COMPUTE_DELTA_H_
