#include "ivm/snapshot_propagate.h"

#include <thread>

namespace rollview {

SnapshotPropagator::SnapshotPropagator(ViewManager* views, View* view,
                                       std::unique_ptr<IntervalPolicy> policy,
                                       SnapshotForm form)
    : views_(views),
      view_(view),
      policy_(std::move(policy)),
      form_(form),
      t_cur_(view->propagate_from.load(std::memory_order_acquire)) {
  boundaries_.push_back(t_cur_);
}

Result<bool> SnapshotPropagator::Step() {
  // Snapshots exist up to the stable CSN; delta completeness up to the
  // capture mark. Both bound the interval end.
  Csn ready = std::min(views_->DeltaReadyCsn(), views_->db()->stable_csn());
  if (ready <= t_cur_) return false;

  Csn t_next = ready;
  for (size_t i = 0; i < view_->resolved.num_terms(); ++i) {
    DeltaTable* dt = views_->db()->delta(view_->resolved.table(i));
    Csn b = policy_->NextBoundary(t_cur_, ready, *dt);
    if (b > t_cur_ && b < t_next) t_next = b;
  }
  if (t_next <= t_cur_) return false;

  DeltaRows rows;
  if (form_ == SnapshotForm::kEq1Timed) {
    ROLLVIEW_ASSIGN_OR_RETURN(
        rows, ComputeDeltaEq1Snapshot(views_->db(), view_->resolved, t_cur_,
                                      t_next, &stats_.exec));
  } else {
    ROLLVIEW_ASSIGN_OR_RETURN(
        rows, ComputeDeltaEq2Snapshot(views_->db(), view_->resolved, t_cur_,
                                      t_next, &stats_.exec));
  }
  stats_.rows_appended += rows.size();
  view_->view_delta->AppendBatch(std::move(rows));
  stats_.intervals++;

  t_cur_ = t_next;
  boundaries_.push_back(t_cur_);
  view_->AdvanceHwm(t_cur_);
  return true;
}

Status SnapshotPropagator::RunUntil(Csn target) {
  while (t_cur_ < target) {
    ROLLVIEW_ASSIGN_OR_RETURN(bool advanced, Step());
    if (!advanced) {
      if (views_->capture() != nullptr) {
        ROLLVIEW_RETURN_NOT_OK(views_->capture()->WaitForCsn(
            std::min(target, views_->db()->stable_csn())));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  return Status::OK();
}

}  // namespace rollview
