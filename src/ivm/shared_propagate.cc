#include "ivm/shared_propagate.h"

#include <algorithm>

namespace rollview {

Result<std::unique_ptr<SharedViewGroup>> SharedViewGroup::Create(
    ViewManager* views, const std::string& name, SpjViewDef carrier_def,
    Options options) {
  if (carrier_def.selection != nullptr || !carrier_def.projection.empty()) {
    return Status::InvalidArgument(
        "the carrier must be the unfiltered, unprojected join");
  }
  ROLLVIEW_ASSIGN_OR_RETURN(View* carrier,
                            views->CreateView(name, carrier_def));
  auto group =
      std::unique_ptr<SharedViewGroup>(new SharedViewGroup(views, carrier));
  group->options_ = options;
  return group;
}

Result<View*> SharedViewGroup::AddMember(const std::string& name,
                                         SpjViewDef def) {
  const SpjViewDef& base = carrier_->resolved.def();
  if (def.tables != base.tables) {
    return Status::InvalidArgument("member tables differ from the carrier");
  }
  if (def.joins.size() != base.joins.size()) {
    return Status::InvalidArgument("member joins differ from the carrier");
  }
  for (size_t i = 0; i < def.joins.size(); ++i) {
    const EquiJoin& a = def.joins[i];
    const EquiJoin& b = base.joins[i];
    if (a.left_term != b.left_term || a.left_col != b.left_col ||
        a.right_term != b.right_term || a.right_col != b.right_col) {
      return Status::InvalidArgument("member joins differ from the carrier");
    }
  }
  ROLLVIEW_ASSIGN_OR_RETURN(View* member, views_->CreateView(name, def));
  members_.push_back(member);
  return member;
}

DeltaRows SharedViewGroup::DeriveMemberRows(
    const View* member, const DeltaRows& carrier_rows) const {
  const SpjViewDef& def = member->resolved.def();
  DeltaRows out;
  out.reserve(carrier_rows.size());
  for (const DeltaRow& row : carrier_rows) {
    if (def.selection != nullptr && !def.selection->EvalBool(row.tuple)) {
      continue;
    }
    if (def.projection.empty()) {
      out.push_back(row);
    } else {
      Tuple projected;
      projected.reserve(def.projection.size());
      for (size_t idx : def.projection) projected.push_back(row.tuple[idx]);
      out.emplace_back(std::move(projected), row.count, row.ts);
    }
  }
  return out;
}

Status SharedViewGroup::MaterializeAll() {
  ROLLVIEW_RETURN_NOT_OK(views_->Materialize(carrier_));
  // The propagator snapshots the carrier's propagation origin at
  // construction, so it must be created only now -- a propagator built
  // before materialization would start its frontiers at CSN 0 and
  // re-propagate the entire initial bulk load on its first strips.
  std::vector<std::unique_ptr<IntervalPolicy>> policies;
  for (size_t i = 0; i < carrier_->resolved.num_terms(); ++i) {
    policies.push_back(std::make_unique<TargetRowsInterval>(256));
  }
  propagator_ = std::make_unique<RollingPropagator>(views_, carrier_,
                                                    std::move(policies));
  Csn csn = carrier_->mv->csn();
  DeltaRows carrier_rows = carrier_->mv->AsDeltaRows();
  for (View* member : members_) {
    member->mv->Replace(ToCountMap(DeriveMemberRows(member, carrier_rows)),
                        csn);
    member->propagate_from.store(csn, std::memory_order_release);
    member->delta_hwm.store(csn, std::memory_order_release);
  }
  distributed_to_ = csn;
  return Status::OK();
}

Status SharedViewGroup::Distribute(Csn up_to) {
  if (up_to <= distributed_to_) return Status::OK();
  // Rows in (distributed_to_, up_to] are final: the carrier's mark passed
  // up_to, and no future propagation query emits timestamps at or below it.
  DeltaRows window =
      carrier_->view_delta->Scan(CsnRange{distributed_to_, up_to});
  stats_.carrier_rows_distributed += window.size();
  for (View* member : members_) {
    DeltaRows rows = DeriveMemberRows(member, window);
    stats_.member_rows_emitted += rows.size();
    member->view_delta->AppendBatch(std::move(rows));
    member->AdvanceHwm(up_to);
  }
  distributed_to_ = up_to;
  if (options_.prune_carrier_delta) {
    carrier_->view_delta->Prune(up_to);
  }
  return Status::OK();
}

Result<bool> SharedViewGroup::Step() {
  if (propagator_ == nullptr) {
    return Status::InvalidArgument("call MaterializeAll before Step");
  }
  ROLLVIEW_ASSIGN_OR_RETURN(bool advanced, propagator_->Step());
  ROLLVIEW_RETURN_NOT_OK(Distribute(carrier_->high_water_mark()));
  return advanced;
}

Status SharedViewGroup::RunUntil(Csn target) {
  if (propagator_ == nullptr) {
    return Status::InvalidArgument("call MaterializeAll before RunUntil");
  }
  ROLLVIEW_RETURN_NOT_OK(propagator_->RunUntil(target));
  return Distribute(carrier_->high_water_mark());
}

}  // namespace rollview
