#include "ivm/aggregate_view.h"

#include <mutex>

namespace rollview {

namespace {

Tuple GroupKey(const Tuple& row, const AggSpec& spec) {
  Tuple key;
  key.reserve(spec.group_columns.size());
  for (size_t c : spec.group_columns) key.push_back(row[c]);
  return key;
}

// Accumulates one (tuple, count) contribution into `state`.
void Accumulate(AggState* state, const Tuple& row, int64_t count,
                const AggSpec& spec) {
  state->count += count;
  if (state->sums.size() != spec.sum_columns.size()) {
    state->sums.resize(spec.sum_columns.size(), 0.0);
  }
  for (size_t i = 0; i < spec.sum_columns.size(); ++i) {
    state->sums[i] +=
        static_cast<double>(count) * row[spec.sum_columns[i]].NumericValue();
  }
}

}  // namespace

Result<SummaryDelta> ComputeSummaryDelta(const DeltaRows& window,
                                         const AggSpec& spec) {
  SummaryDelta out;
  for (const DeltaRow& row : window) {
    for (size_t c : spec.group_columns) {
      if (c >= row.tuple.size()) {
        return Status::InvalidArgument("group column out of range");
      }
    }
    Accumulate(&out[GroupKey(row.tuple, spec)], row.tuple, row.count, spec);
  }
  // Drop no-op groups (pure churn within the window).
  for (auto it = out.begin(); it != out.end();) {
    bool zero = it->second.count == 0;
    for (double s : it->second.sums) {
      if (s != 0.0) zero = false;
    }
    it = zero ? out.erase(it) : ++it;
  }
  return out;
}

Result<std::unique_ptr<AggregateView>> AggregateView::Create(const View* base,
                                                             AggSpec spec) {
  const Schema& schema = base->resolved.view_schema();
  if (spec.group_columns.empty()) {
    return Status::InvalidArgument("aggregate view needs group columns");
  }
  for (size_t c : spec.group_columns) {
    if (c >= schema.num_columns()) {
      return Status::InvalidArgument("group column out of range");
    }
  }
  for (size_t c : spec.sum_columns) {
    if (c >= schema.num_columns()) {
      return Status::InvalidArgument("sum column out of range");
    }
    ValueType t = schema.column(c).type;
    if (t != ValueType::kInt64 && t != ValueType::kDouble) {
      return Status::InvalidArgument("SUM column '" + schema.column(c).name +
                                     "' is not numeric");
    }
  }
  return std::unique_ptr<AggregateView>(
      new AggregateView(base, std::move(spec)));
}

Status AggregateView::InitializeFromBaseMv() {
  Csn base_csn = base_->mv->csn();
  if (base_csn == kNullCsn) {
    return Status::InvalidArgument("base view is not materialized");
  }
  std::unique_lock<std::shared_mutex> lk(latch_);
  groups_.clear();
  for (const DeltaRow& row : base_->mv->AsDeltaRows()) {
    Accumulate(&groups_[GroupKey(row.tuple, spec_)], row.tuple, row.count,
               spec_);
  }
  csn_ = base_csn;
  return Status::OK();
}

Status AggregateView::RollTo(Csn target) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  if (csn_ == kNullCsn) {
    return Status::InvalidArgument("aggregate view not initialized");
  }
  if (target < csn_) {
    return Status::InvalidArgument("cannot roll aggregate view backwards");
  }
  if (target > base_->high_water_mark()) {
    return Status::OutOfRange("target beyond base view's high-water mark");
  }
  if (target == csn_) return Status::OK();

  DeltaRows window = base_->view_delta->Scan(CsnRange{csn_, target});
  ROLLVIEW_ASSIGN_OR_RETURN(SummaryDelta summary,
                            ComputeSummaryDelta(window, spec_));
  // Validate before mutating.
  for (const auto& [key, delta] : summary) {
    auto it = groups_.find(key);
    int64_t existing = it == groups_.end() ? 0 : it->second.count;
    if (existing + delta.count < 0) {
      return Status::Internal("aggregate group count would go negative");
    }
  }
  for (const auto& [key, delta] : summary) {
    AggState& state = groups_[key];
    if (state.sums.size() != spec_.sum_columns.size()) {
      state.sums.resize(spec_.sum_columns.size(), 0.0);
    }
    state.count += delta.count;
    for (size_t i = 0; i < delta.sums.size(); ++i) {
      state.sums[i] += delta.sums[i];
    }
    if (state.count == 0) groups_.erase(key);
  }
  csn_ = target;
  stats_.rolls++;
  stats_.window_rows += window.size();
  stats_.groups_touched += summary.size();
  return Status::OK();
}

std::unordered_map<Tuple, AggState, TupleHasher> AggregateView::Contents()
    const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  return groups_;
}

size_t AggregateView::num_groups() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  return groups_.size();
}

AggregateView::Stats AggregateView::stats() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  return stats_;
}

}  // namespace rollview
