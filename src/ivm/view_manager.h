// Copyright 2026 The rollview Authors.
//
// ViewManager: registers views against a Db + LogCapture pair, performs
// initial (full) materialization, and -- after a crash -- rebuilds every
// registered view from its latest durable checkpoint plus the WAL suffix
// (Recover), so maintenance resumes from the recovered cursors instead of
// recomputing the view from scratch.

#ifndef ROLLVIEW_IVM_VIEW_MANAGER_H_
#define ROLLVIEW_IVM_VIEW_MANAGER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "capture/log_capture.h"
#include "ivm/view.h"
#include "ra/executor.h"
#include "storage/db.h"

namespace rollview {

class ViewManager {
 public:
  // `capture` may be null only if every base table uses trigger capture.
  ViewManager(Db* db, LogCapture* capture) : db_(db), capture_(capture) {}

  Db* db() const { return db_; }
  LogCapture* capture() const { return capture_; }

  // Registers a view. The view starts unmaterialized; call Materialize.
  Result<View*> CreateView(const std::string& name, SpjViewDef def);

  View* Find(const std::string& name) const;

  // All registered views (stable pointers; views are never dropped).
  std::vector<View*> AllViews() const;

  // Fully computes the view in one transaction (S locks on all base tables)
  // and installs the result. Sets the materialization time, the propagation
  // start, and the view-delta high-water mark to the commit CSN, and writes
  // an initial durable checkpoint so the view is recoverable from this
  // moment on.
  Status Materialize(View* view);

  // --- Crash recovery ---

  struct RecoveryReport {
    size_t views_recovered = 0;    // restored from a checkpoint
    size_t views_unrecovered = 0;  // registered but not restorable (no
                                   // checkpoint in the log, or a definition
                                   // mismatch); caller re-Materializes
    size_t checkpoints_seen = 0;
    size_t checkpoints_corrupt = 0;  // undecodable or digest-failed
                                     // checkpoints, skipped in favor of an
                                     // earlier good one
    size_t cursor_records = 0;
    size_t delta_rows_restored = 0;  // checkpoint rows + replayed appends
    size_t rows_discarded = 0;  // committed rows of steps with no durable
                                // cursor (mid-flight strips, cancelled by
                                // omission)
  };

  // Rebuilds every *registered* view from `records` -- the same decoded
  // record list handed to Db::Recover. Call order after a crash:
  //
  //   1. Db::Recover(records)            base tables, catalog, WAL
  //   2. LogCapture::CatchUp()           base delta tables, UOW table
  //   3. re-register view defs by name   (SpjViewDef holds expression
  //      via CreateView                   trees; it is not serialized)
  //   4. ViewManager::Recover(records)
  //
  // For each view (matched by name; view ids restart per crash generation
  // and are remapped through the kCreateView records in log order), finds
  // the latest complete checkpoint, restores MV/view-delta/cursors from it,
  // replays the WAL suffix (committed kViewDeltaAppend rows of steps whose
  // kViewCursor advance is durable, cursor advances, applied marks),
  // recomputes the high-water mark as min_i t_comp[i], rolls the MV to the
  // last durable applied CSN, and seeds the view's cursor state so the next
  // propagator resumes idempotently. Finishes each recovered view with a
  // fresh checkpoint, which shadows any discarded mid-flight rows still
  // sitting in the re-emitted log (they would otherwise need this same
  // discard logic again after a second crash).
  //
  // A registered view with no usable checkpoint is left unmaterialized and
  // counted in the report; the caller decides whether to Materialize it.
  Status Recover(const std::vector<WalRecord>& records,
                 RecoveryReport* report = nullptr);

  // Single-view repair: rebuilds ONE live view from its latest digest-good
  // checkpoint in `records` plus the log suffix -- the scrubber's
  // self-healing primitive (ivm/scrub.h). Same restore machinery Recover
  // uses after a crash, applied while the rest of the engine keeps running;
  // the caller must hold the view's maintenance exclusion (X lock on
  // mv_lock_resource) and guarantee the propagation driver is between steps,
  // so live cursor/delta state equals the durable state being replayed.
  // Returns NotFound when the log holds no usable checkpoint for the view
  // (the caller escalates to a full Materialize). Clears the view's
  // quarantine state on success.
  Status RecoverView(View* view, const std::vector<WalRecord>& records,
                     RecoveryReport* report = nullptr);

  // Largest CSN whose base-delta rows are guaranteed published: capture's
  // high-water mark, or the engine's stable CSN when there is no capture
  // (all-trigger configurations publish delta rows at commit).
  Csn DeltaReadyCsn() const {
    return capture_ != nullptr ? capture_->high_water_mark()
                               : db_->stable_csn();
  }

 private:
  Db* db_;
  LogCapture* capture_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<View>> views_;
  ViewId next_id_ = 1;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_VIEW_MANAGER_H_
