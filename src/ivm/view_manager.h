// Copyright 2026 The rollview Authors.
//
// ViewManager: registers views against a Db + LogCapture pair and performs
// initial (full) materialization.

#ifndef ROLLVIEW_IVM_VIEW_MANAGER_H_
#define ROLLVIEW_IVM_VIEW_MANAGER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "capture/log_capture.h"
#include "ivm/view.h"
#include "ra/executor.h"
#include "storage/db.h"

namespace rollview {

class ViewManager {
 public:
  // `capture` may be null only if every base table uses trigger capture.
  ViewManager(Db* db, LogCapture* capture) : db_(db), capture_(capture) {}

  Db* db() const { return db_; }
  LogCapture* capture() const { return capture_; }

  // Registers a view. The view starts unmaterialized; call Materialize.
  Result<View*> CreateView(const std::string& name, SpjViewDef def);

  View* Find(const std::string& name) const;

  // All registered views (stable pointers; views are never dropped).
  std::vector<View*> AllViews() const;

  // Fully computes the view in one transaction (S locks on all base tables)
  // and installs the result. Sets the materialization time, the propagation
  // start, and the view-delta high-water mark to the commit CSN.
  Status Materialize(View* view);

  // Largest CSN whose base-delta rows are guaranteed published: capture's
  // high-water mark, or the engine's stable CSN when there is no capture
  // (all-trigger configurations publish delta rows at commit).
  Csn DeltaReadyCsn() const {
    return capture_ != nullptr ? capture_->high_water_mark()
                               : db_->stable_csn();
  }

 private:
  Db* db_;
  LogCapture* capture_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<View>> views_;
  ViewId next_id_ = 1;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_VIEW_MANAGER_H_
