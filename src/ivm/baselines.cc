#include "ivm/baselines.h"

#include <cassert>

namespace rollview {

namespace {

JoinQuery SkeletonFor(const ResolvedView& rv) {
  JoinQuery q;
  q.equi_joins = rv.def().joins;
  q.residual = rv.def().selection;
  q.projection = rv.def().projection;
  return q;
}

}  // namespace

Result<DeltaRows> SnapshotViewState(Db* db, const ResolvedView& view, Csn t,
                                    ExecStats* stats) {
  JoinQuery q = SkeletonFor(view);
  for (size_t i = 0; i < view.num_terms(); ++i) {
    q.terms.push_back(TermSource::BaseSnapshot(view.table(i), t));
  }
  JoinExecutor exec(db);
  ROLLVIEW_ASSIGN_OR_RETURN(DeltaRows rows, exec.Execute(q, nullptr, stats));
  return NetEffect(rows);
}

Result<DeltaRows> ComputeDeltaEq2Snapshot(Db* db, const ResolvedView& view,
                                          Csn a, Csn b, ExecStats* stats) {
  JoinExecutor exec(db);
  DeltaRows out;
  const size_t n = view.num_terms();
  std::vector<DeltaRows> scans(n);
  for (size_t i = 0; i < n; ++i) {
    scans[i] = db->delta(view.table(i))->Scan(CsnRange{a, b});
    JoinQuery q = SkeletonFor(view);
    for (size_t j = 0; j < n; ++j) {
      if (j < i) {
        q.terms.push_back(TermSource::BaseSnapshot(view.table(j), a));
      } else if (j == i) {
        q.terms.push_back(TermSource::Rows(view.table(j), &scans[i]));
      } else {
        q.terms.push_back(TermSource::BaseSnapshot(view.table(j), b));
      }
    }
    ROLLVIEW_ASSIGN_OR_RETURN(DeltaRows rows, exec.Execute(q, nullptr, stats));
    out.insert(out.end(), rows.begin(), rows.end());
  }
  return out;
}

Result<DeltaRows> ComputeDeltaEq1Snapshot(Db* db, const ResolvedView& view,
                                          Csn a, Csn b, ExecStats* stats) {
  const size_t n = view.num_terms();
  assert(n <= 20 && "Eq. 1 expansion is exponential in the term count");
  JoinExecutor exec(db);
  DeltaRows out;
  std::vector<DeltaRows> scans(n);
  for (size_t i = 0; i < n; ++i) {
    scans[i] = db->delta(view.table(i))->Scan(CsnRange{a, b});
  }
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    JoinQuery q = SkeletonFor(view);
    int popcount = 0;
    for (size_t j = 0; j < n; ++j) {
      if (mask & (1u << j)) {
        ++popcount;
        q.terms.push_back(TermSource::Rows(view.table(j), &scans[j]));
      } else {
        q.terms.push_back(TermSource::BaseSnapshot(view.table(j), b));
      }
    }
    q.sign = (popcount % 2 == 1) ? +1 : -1;
    ROLLVIEW_ASSIGN_OR_RETURN(DeltaRows rows, exec.Execute(q, nullptr, stats));
    out.insert(out.end(), rows.begin(), rows.end());
  }
  return out;
}

Result<Csn> SyncRefresher::DrainCapture() {
  Csn stable = views_->db()->stable_csn();
  if (views_->capture() != nullptr) {
    ROLLVIEW_RETURN_NOT_OK(views_->capture()->WaitForCsn(stable));
  }
  return stable;
}

Result<Csn> SyncRefresher::RefreshEq1() {
  Db* db = views_->db();
  const ResolvedView& rv = view_->resolved;
  const size_t n = rv.num_terms();
  Csn t_old = view_->mv->csn();

  std::unique_ptr<Txn> txn = db->Begin(TxnClass::kMaintenance);
  auto fail = [&](Status s) -> Result<Csn> {
    db->Abort(txn.get()).ok();
    return s;
  };

  // The long atomic refresh transaction: freeze every base table, then let
  // capture drain so the delta tables are complete up to t_b.
  for (size_t i = 0; i < n; ++i) {
    Status s = db->LockTableShared(txn.get(), rv.table(i));
    if (!s.ok()) return fail(s);
    s = db->LockDeltaShared(txn.get(), rv.table(i));
    if (!s.ok()) return fail(s);
  }
  Result<Csn> drained = DrainCapture();
  if (!drained.ok()) return fail(drained.status());
  Csn t_b = drained.value();

  JoinExecutor exec(db);
  DeltaRows accumulated;
  std::vector<DeltaRows> scans(n);
  for (size_t i = 0; i < n; ++i) {
    scans[i] = db->delta(rv.table(i))->Scan(CsnRange{t_old, t_b});
  }
  uint64_t queries = 0;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    JoinQuery q = SkeletonFor(rv);
    // Every base table is frozen by its S lock and this transaction does
    // not write them, so current state == the snapshot at t_b.
    q.current_snapshot_hint = t_b;
    int popcount = 0;
    for (size_t j = 0; j < n; ++j) {
      if (mask & (1u << j)) {
        ++popcount;
        q.terms.push_back(TermSource::Rows(rv.table(j), &scans[j]));
      } else {
        q.terms.push_back(TermSource::BaseCurrent(rv.table(j)));
      }
    }
    q.sign = (popcount % 2 == 1) ? +1 : -1;
    Result<DeltaRows> rows = exec.Execute(q, txn.get(), &stats_.exec);
    if (!rows.ok()) return fail(rows.status());
    accumulated.insert(accumulated.end(), rows.value().begin(),
                       rows.value().end());
    ++queries;
  }

  // Apply within the same atomic transaction (Figure 1's single refresh
  // operation): X-lock the view so readers see old-or-new, never partial.
  Status s = db->LockNamedExclusive(txn.get(), view_->mv_lock_resource);
  if (!s.ok()) return fail(s);
  s = view_->mv->Merge(accumulated, t_b);
  if (!s.ok()) return fail(s);
  s = db->Commit(txn.get());
  if (!s.ok()) return fail(s);

  stats_.refreshes++;
  stats_.queries += queries;
  view_->AdvanceHwm(t_b);
  return t_b;
}

Result<Csn> SyncRefresher::RefreshFull() {
  Db* db = views_->db();
  const ResolvedView& rv = view_->resolved;

  std::unique_ptr<Txn> txn = db->Begin(TxnClass::kMaintenance);
  auto fail = [&](Status s) -> Result<Csn> {
    db->Abort(txn.get()).ok();
    return s;
  };

  // Freeze the base tables, then fix t_b.
  for (size_t i = 0; i < rv.num_terms(); ++i) {
    Status s = db->LockTableShared(txn.get(), rv.table(i));
    if (!s.ok()) return fail(s);
  }
  Result<Csn> drained = DrainCapture();
  if (!drained.ok()) return fail(drained.status());
  Csn t_b = drained.value();

  JoinQuery q = SkeletonFor(rv);
  q.current_snapshot_hint = t_b;  // base tables frozen by their S locks
  for (size_t i = 0; i < rv.num_terms(); ++i) {
    q.terms.push_back(TermSource::BaseCurrent(rv.table(i)));
  }
  JoinExecutor exec(db);
  Result<DeltaRows> rows = exec.Execute(q, txn.get(), &stats_.exec);
  if (!rows.ok()) return fail(rows.status());

  Status s = db->LockNamedExclusive(txn.get(), view_->mv_lock_resource);
  if (!s.ok()) return fail(s);
  view_->mv->Replace(ToCountMap(rows.value()), t_b);
  s = db->Commit(txn.get());
  if (!s.ok()) return fail(s);
  stats_.refreshes++;
  stats_.queries += 1;
  view_->AdvanceHwm(t_b);
  return t_b;
}

}  // namespace rollview
