// Copyright 2026 The rollview Authors.
//
// Join-key partitioning of a view's delta streams. Two delta rows can join
// only when they agree on every equi-join column, so hash-partitioning each
// relation's delta by a column from one join-*equivalence class* that
// touches every term makes the P partitions propagate independently: a
// forward query over partition p's delta slice joined with partition p's
// slices (and full base tables) produces exactly the view rows whose join
// key hashes to p, and the union over partitions tiles the unpartitioned
// result. The heavy/light partitioning line of work (PAPERS.md) and
// DBToaster's delta-program decomposition rest on the same observation.
//
// ResolvePartitioning runs a union-find over (term, column) pairs connected
// by the view's EquiJoins and picks a class with a member in every term.
// Views without such a class (e.g. a star join, where dimensions share no
// common key) cannot be partitioned this way and get an error -- callers
// fall back to the serial driver.

#ifndef ROLLVIEW_IVM_PARTITION_H_
#define ROLLVIEW_IVM_PARTITION_H_

#include <cstdint>
#include <vector>

#include "capture/delta_table.h"
#include "common/result.h"
#include "ivm/view_def.h"

namespace rollview {

// One strip's slice of a partitioned view: partition `index` of `count`,
// with `columns[i]` the hash column of term i's delta rows. count <= 1
// means unpartitioned (columns may be empty).
struct PartitionSlice {
  uint32_t index = 0;
  uint32_t count = 1;
  std::vector<size_t> columns;  // per-term; size == num_terms when count > 1

  bool enabled() const { return count > 1; }
  // The delta filter for term i under this slice.
  DeltaPartitionFilter FilterFor(size_t term) const {
    DeltaPartitionFilter f;
    if (enabled()) {
      f.column = columns[term];
      f.count = count;
      f.index = index;
    }
    return f;
  }
};

// The per-term hash columns of one join-equivalence class covering every
// term of `view`, or InvalidArgument when no class touches all terms.
Result<std::vector<size_t>> ResolvePartitionColumns(const ResolvedView& view);

// Convenience: the full slice for partition `index` of `count`.
Result<PartitionSlice> ResolvePartitionSlice(const ResolvedView& view,
                                             uint32_t index, uint32_t count);

}  // namespace rollview

#endif  // ROLLVIEW_IVM_PARTITION_H_
