// Copyright 2026 The rollview Authors.
//
// SpjViewDef: the definition of a select-project-join view
//   V = pi(sigma(R^1 |><| R^2 |><| ... |><| R^n))
// (paper Sec. 2), plus ResolvedView, the definition bound to a Db with
// schemas and concatenated-tuple offsets resolved.

#ifndef ROLLVIEW_IVM_VIEW_DEF_H_
#define ROLLVIEW_IVM_VIEW_DEF_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ra/expr.h"
#include "ra/join_query.h"
#include "schema/schema.h"
#include "storage/db.h"

namespace rollview {

struct SpjViewDef {
  // The base relations R^1..R^n, in join order.
  std::vector<TableId> tables;
  // Equi-join predicates between terms (term indexes into `tables`).
  std::vector<EquiJoin> joins;
  // Optional extra selection over the concatenated tuple (term order). Must
  // not reference count or timestamp -- those are not addressable.
  ExprPtr selection;
  // Optional projection: indexes into the concatenated tuple; empty = all
  // columns. Projection must not eliminate count or timestamp (they are
  // implicit and always preserved).
  std::vector<size_t> projection;
};

class ResolvedView {
 public:
  // An unresolved placeholder; usable only after assignment from Resolve.
  ResolvedView() = default;

  // Validates the definition against `db` and resolves offsets/schemas.
  static Result<ResolvedView> Resolve(Db* db, SpjViewDef def);

  const SpjViewDef& def() const { return def_; }
  size_t num_terms() const { return def_.tables.size(); }
  TableId table(size_t term) const { return def_.tables[term]; }

  // Offset of term `i`'s first column in the concatenated tuple.
  size_t term_offset(size_t term) const { return offsets_[term]; }
  size_t term_width(size_t term) const { return widths_[term]; }
  // Concatenated-tuple index of (term, col).
  size_t ConcatIndex(size_t term, size_t col) const {
    return offsets_[term] + col;
  }

  // Schema of the view's output tuples (after projection).
  const Schema& view_schema() const { return view_schema_; }

 private:
  SpjViewDef def_;
  std::vector<size_t> offsets_;
  std::vector<size_t> widths_;
  Schema view_schema_;
};

// Convenience builder: a chain join R^1.rkey = R^2.lkey, R^2.rkey = R^3.lkey,
// ... where each link gives (left term's column, right term's column).
SpjViewDef ChainJoin(std::vector<TableId> tables,
                     std::vector<std::pair<size_t, size_t>> links);

// Convenience builder: a star join -- every dimension table d joins the fact
// table on fact_cols[d] = dim_key_cols[d].
SpjViewDef StarJoin(TableId fact, std::vector<TableId> dims,
                    std::vector<size_t> fact_cols,
                    std::vector<size_t> dim_key_cols);

}  // namespace rollview

#endif  // ROLLVIEW_IVM_VIEW_DEF_H_
