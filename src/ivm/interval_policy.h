// Copyright 2026 The rollview Authors.
//
// Interval policies: "choose a propagation interval length delta" (Figures
// 5 and 10). The interval is the paper's tuning knob balancing per-query
// cost against query count and contention (Sec. 3.3); RollingPropagate
// allows one policy per base relation (Sec. 3.4).

#ifndef ROLLVIEW_IVM_INTERVAL_POLICY_H_
#define ROLLVIEW_IVM_INTERVAL_POLICY_H_

#include <algorithm>
#include <memory>

#include "capture/delta_table.h"
#include "common/csn.h"

namespace rollview {

class IntervalPolicy {
 public:
  virtual ~IntervalPolicy() = default;

  // The end of the next propagation interval starting at `from`, given that
  // delta rows are published up to `ready` (the capture high-water mark).
  // Must return a value in [from, ready]; returning `from` means "cannot
  // advance yet".
  virtual Csn NextBoundary(Csn from, Csn ready, const DeltaTable& delta) = 0;
};

// Fixed interval length in commit-sequence units.
class FixedInterval : public IntervalPolicy {
 public:
  explicit FixedInterval(Csn length) : length_(length) {}

  Csn NextBoundary(Csn from, Csn ready, const DeltaTable&) override {
    return std::min<Csn>(from + length_, ready);
  }

 private:
  Csn length_;
};

// Adaptive: size each interval to roughly `target_rows` delta rows, so
// frequently-updated relations get short (in time) intervals and
// rarely-updated ones get long intervals -- the star-schema motivation of
// Sec. 3.4 expressed as a per-relation policy.
class TargetRowsInterval : public IntervalPolicy {
 public:
  explicit TargetRowsInterval(size_t target_rows)
      : target_rows_(target_rows) {}

  Csn NextBoundary(Csn from, Csn ready, const DeltaTable& delta) override {
    if (from >= ready) return from;
    return delta.TsAfterRows(from, target_rows_, ready);
  }

 private:
  size_t target_rows_;
};

// Greedy: always consume everything captured so far (one big interval).
class DrainInterval : public IntervalPolicy {
 public:
  Csn NextBoundary(Csn from, Csn ready, const DeltaTable&) override {
    return std::max(from, ready);
  }
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_INTERVAL_POLICY_H_
